//===- examples/durable_kv.cpp - The sharded KV service, crash-audited ----===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The crash-and-audit demo on the real KV service (src/kv/): a two-shard
// kv::KvStore holding byte-string values, each mutation one Crafty
// transaction on its shard. The demo writes a guaranteed phase (ended by
// a persist barrier), layers speculative overwrites on top, kills the
// machine mid-workload, recovers every shard's undo log, and audits the
// recovered store against a ledger: every guaranteed write present and
// untorn, speculative writes either absent or complete.
//
//===----------------------------------------------------------------------===//

#include "kv/KvStore.h"

#include <cstdio>
#include <map>
#include <string>

using namespace crafty;
using namespace crafty::kv;

namespace {

std::string valueOf(uint64_t Key, unsigned Gen) {
  std::string V = "gen" + std::to_string(Gen) + "-key" +
                  std::to_string(Key) + "-";
  V.append(24 + Key % 17, (char)('a' + (Key + Gen) % 26));
  return V;
}

} // namespace

int main() {
  KvConfig Cfg;
  Cfg.NumShards = 2;
  Cfg.SlotsPerShard = 1 << 12;
  Cfg.Mode = PMemMode::Tracked;
  Cfg.EvictionPerMillion = 5000; // Spontaneous cache write-backs.
  KvStore Store(Cfg);

  std::map<uint64_t, std::string> Ledger; // What is guaranteed durable.

  // Phase 1: 500 sets, then persist barriers on every shard: everything
  // so far must survive any later crash.
  for (uint64_t K = 0; K != 500; ++K) {
    if (Store.set(0, K, valueOf(K, 1)) != KvStatus::Ok) {
      std::printf("phase-1 set failed\n");
      return 1;
    }
    Ledger[K] = valueOf(K, 1);
  }
  Store.persistAll();

  // Phase 2: overwrites and inserts that a crash may or may not keep.
  for (uint64_t K = 400; K != 700; ++K)
    Store.set(0, K, valueOf(K, 2));

  std::printf("crash after %zu guaranteed and 300 speculative sets...\n",
              Ledger.size());
  Store.simulateCrash();
  size_t RolledBack = Store.recover();
  std::printf("recovery rolled back %zu undo-log sequences across %u "
              "shards\n",
              RolledBack, Store.numShards());

  // Audit: every guaranteed key present with its ledger value or a
  // complete phase-2 overwrite -- never absent, never torn.
  unsigned Overwrites = 0;
  for (const auto &[K, V] : Ledger) {
    std::string Got;
    if (!Store.shard(Store.shardOf(K)).peek(K, Got)) {
      std::printf("DURABILITY VIOLATION: key %llu lost\n",
                  (unsigned long long)K);
      return 1;
    }
    if (Got != V) {
      if (Got != valueOf(K, 2)) {
        std::printf("ATOMICITY VIOLATION: key %llu has torn value\n",
                    (unsigned long long)K);
        return 1;
      }
      ++Overwrites;
    }
  }
  std::printf("audit OK: all %zu guaranteed keys present, %u committed "
              "overwrites retained\n",
              Ledger.size(), Overwrites);

  // The store keeps serving after recovery.
  std::string Out;
  if (Store.set(0, 9999, "post-recovery") != KvStatus::Ok ||
      Store.get(0, 9999, Out) != KvStatus::Ok || Out != "post-recovery") {
    std::printf("post-recovery set/get failed\n");
    return 1;
  }
  std::printf("durable_kv OK\n");
  return 0;
}
