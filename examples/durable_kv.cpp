//===- examples/durable_kv.cpp - A crash-safe key-value store -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A small persistent key-value store built on Crafty transactions: a
// fixed-capacity open-addressed hash table in persistent memory. Each
// put/erase is one ACID transaction, so the store survives simulated
// power failures; the demo crashes it mid-workload, recovers, and audits
// the table against a ledger of transactions known to have committed
// before the last persist barrier.
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "recovery/Recovery.h"

#include <cstdio>
#include <map>

using namespace crafty;

namespace {

/// A persistent open-addressed hash table: slots of ⟨key+1, value⟩.
class DurableKv {
public:
  static constexpr size_t Slots = 1 << 12;

  DurableKv(CraftyRuntime &Rt) : Rt(Rt) {
    Table = static_cast<uint64_t *>(Rt.carve(Slots * 16));
  }

  void put(unsigned Tid, uint64_t Key, uint64_t Value) {
    Rt.run(Tid, [&](TxnContext &Tx) {
      size_t I = probe(Tx, Key, /*ForInsert=*/true);
      Tx.store(keyWord(I), Key + 1);
      Tx.store(valWord(I), Value);
    });
  }

  bool get(unsigned Tid, uint64_t Key, uint64_t *Out) {
    bool Found = false;
    Rt.run(Tid, [&](TxnContext &Tx) {
      size_t I = probe(Tx, Key, /*ForInsert=*/false);
      Found = I != Slots;
      if (Found && Out)
        *Out = Tx.load(valWord(I));
    });
    return Found;
  }

  /// Direct (non-transactional) read for post-recovery audits.
  bool peek(uint64_t Key, uint64_t *Out) const {
    for (size_t P = 0; P != Slots; ++P) {
      size_t I = (slotOf(Key) + P) % Slots;
      if (Table[2 * I] == 0)
        return false;
      if (Table[2 * I] == Key + 1) {
        *Out = Table[2 * I + 1];
        return true;
      }
    }
    return false;
  }

private:
  static size_t slotOf(uint64_t Key) {
    return (Key * 0x9e3779b97f4a7c15ull >> 32) % Slots;
  }
  uint64_t *keyWord(size_t I) { return &Table[2 * I]; }
  uint64_t *valWord(size_t I) { return &Table[2 * I + 1]; }

  /// Returns the slot holding Key, or (ForInsert) the first free slot.
  /// Returns Slots when a lookup misses.
  size_t probe(TxnContext &Tx, uint64_t Key, bool ForInsert) {
    for (size_t P = 0; P != Slots; ++P) {
      size_t I = (slotOf(Key) + P) % Slots;
      uint64_t K = Tx.load(keyWord(I));
      if (K == Key + 1)
        return I;
      if (K == 0)
        return ForInsert ? I : Slots;
    }
    fatalError("durable_kv: table full");
  }

  CraftyRuntime &Rt;
  uint64_t *Table = nullptr;
};

} // namespace

int main() {
  PMemConfig PoolCfg;
  PoolCfg.PoolBytes = 16 << 20;
  PoolCfg.Mode = PMemMode::Tracked;
  PoolCfg.EvictionPerMillion = 5000; // Spontaneous cache write-backs.
  PMemPool Pool(PoolCfg);
  HtmRuntime Htm{HtmConfig{}};
  CraftyConfig Cfg;
  Cfg.NumThreads = 1;
  CraftyRuntime Crafty(Pool, Htm, Cfg);

  DurableKv Kv(Crafty);
  std::map<uint64_t, uint64_t> Ledger; // What is guaranteed durable.

  // Phase 1: 500 puts, then a persist barrier: everything so far must
  // survive any later crash.
  for (uint64_t K = 0; K != 500; ++K) {
    Kv.put(0, K, K * 3 + 1);
    Ledger[K] = K * 3 + 1;
  }
  Crafty.persistBarrier(0);

  // Phase 2: more puts and overwrites that a crash may or may not keep.
  for (uint64_t K = 400; K != 700; ++K)
    Kv.put(0, K, K * 7 + 5);

  std::printf("crash after %zu guaranteed and 300 speculative puts...\n",
              Ledger.size());
  Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  std::printf("recovery rolled back %zu of %zu sequences (threshold ts "
              "%llu)\n",
              Rep.SequencesRolledBack, Rep.SequencesFound,
              (unsigned long long)Rep.ThresholdTs);

  // Audit: every pre-barrier put must be present with a sane value (the
  // original, or a committed overwrite from phase 2).
  unsigned Overwrites = 0;
  for (const auto &[K, V] : Ledger) {
    uint64_t Got = 0;
    if (!Kv.peek(K, &Got)) {
      std::printf("DURABILITY VIOLATION: key %llu lost\n",
                  (unsigned long long)K);
      return 1;
    }
    if (Got != V) {
      if (Got != K * 7 + 5) {
        std::printf("ATOMICITY VIOLATION: key %llu has torn value\n",
                    (unsigned long long)K);
        return 1;
      }
      ++Overwrites;
    }
  }
  std::printf("audit OK: all %zu guaranteed keys present, %u committed "
              "overwrites retained\n",
              Ledger.size(), Overwrites);

  // The store keeps working after recovery.
  Kv.put(0, 9999, 42);
  uint64_t V = 0;
  if (!Kv.get(0, 9999, &V) || V != 42) {
    std::printf("post-recovery put/get failed\n");
    return 1;
  }
  std::printf("durable_kv OK\n");
  return 0;
}
