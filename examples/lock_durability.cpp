//===- examples/lock_durability.cpp - Thread-unsafe mode with locks -------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Crafty's thread-unsafe mode (paper Section 4.4 and Figure 4): the
// application already provides atomicity with its own locks, and Crafty
// adds only durability, executing each region through the chunked
// Log/Redo flow -- hardware transactions of up to k persistent writes,
// halving k after aborts, down to a no-HTM k = 1 path. The demo guards a
// persistent append-only event journal with a mutex, crashes, recovers,
// and checks that the journal is a clean prefix.
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "recovery/Recovery.h"

#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

using namespace crafty;

int main() {
  constexpr unsigned NumThreads = 3;
  constexpr int EventsPerThread = 400;

  PMemConfig PoolCfg;
  PoolCfg.PoolBytes = 32 << 20;
  PoolCfg.Mode = PMemMode::Tracked;
  PMemPool Pool(PoolCfg);
  HtmRuntime Htm{HtmConfig{}};
  CraftyConfig Cfg;
  Cfg.Mode = CraftyMode::ThreadUnsafe; // Locks provide atomicity.
  Cfg.NumThreads = NumThreads;
  Cfg.MaxLag = 1000; // Bound rollback of idle threads (Section 5.2).
  CraftyRuntime Crafty(Pool, Htm, Cfg);

  // Persistent journal: [0] = length, then ⟨producer, seq⟩ pairs.
  auto *Journal = static_cast<uint64_t *>(Crafty.carve(1 << 20));
  std::mutex JournalLock;

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I != EventsPerThread; ++I) {
        std::lock_guard<std::mutex> G(JournalLock);
        // The critical section is the failure-atomic unit.
        Crafty.thread(T).run([&](TxnContext &Tx) {
          uint64_t Len = Tx.load(&Journal[0]);
          Tx.store(&Journal[1 + 2 * Len], T + 1);
          Tx.store(&Journal[2 + 2 * Len], (uint64_t)I);
          Tx.store(&Journal[0], Len + 1);
        });
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();

  std::printf("journal length before crash: %llu\n",
              (unsigned long long)Journal[0]);
  Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  std::printf("recovery rolled back %zu sequences\n",
              Rep.SequencesRolledBack);

  // The recovered journal must be a clean prefix: length L, and entries
  // 1..L fully populated with per-producer sequence numbers in order.
  uint64_t Len = Journal[0];
  uint64_t NextSeq[NumThreads + 1] = {};
  for (uint64_t E = 0; E != Len; ++E) {
    uint64_t Producer = Journal[1 + 2 * E];
    uint64_t Seq = Journal[2 + 2 * E];
    if (Producer == 0 || Producer > NumThreads) {
      std::printf("CORRUPT JOURNAL: bad producer at entry %llu\n",
                  (unsigned long long)E);
      return 1;
    }
    if (Seq != NextSeq[Producer]++) {
      std::printf("CORRUPT JOURNAL: producer %llu out of order\n",
                  (unsigned long long)Producer);
      return 1;
    }
  }
  std::printf("recovered journal is a clean prefix of length %llu\n",
              (unsigned long long)Len);
  std::printf("lock_durability OK\n");
  return 0;
}
