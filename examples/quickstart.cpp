//===- examples/quickstart.cpp - Crafty in five minutes -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Quickstart: create a persistent pool, run ACID transactions through
// Crafty, simulate a power failure, and recover.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "recovery/Recovery.h"

#include <cstdio>

using namespace crafty;

int main() {
  // 1. A simulated persistent-memory pool. Tracked mode maintains the
  //    "what would survive a power failure" image, so we can crash it.
  PMemConfig PoolCfg;
  PoolCfg.PoolBytes = 16 << 20;
  PoolCfg.Mode = PMemMode::Tracked;
  PMemPool Pool(PoolCfg);

  // 2. The emulated commodity HTM and the Crafty runtime (thread-safe
  //    mode: full ACID transactions).
  HtmRuntime Htm{HtmConfig{}};
  CraftyConfig Cfg;
  Cfg.NumThreads = 1;
  CraftyRuntime Crafty(Pool, Htm, Cfg);

  // 3. Persistent application state: a tiny key-value array.
  auto *Table = static_cast<uint64_t *>(Crafty.carve(64 * 8));

  // 4. Transactions: all-or-nothing updates, even across power failures.
  for (uint64_t I = 0; I != 10; ++I) {
    Crafty.run(0, [&](TxnContext &Tx) {
      Tx.store(&Table[I], I * I);        // Value...
      Tx.store(&Table[32 + I], I);       // ...and its index, atomically.
    });
  }
  std::printf("before crash: Table[9] = %llu, Table[41] = %llu\n",
              (unsigned long long)Table[9], (unsigned long long)Table[41]);

  // 5. Power failure! Everything not yet persisted is lost.
  Pool.crash();

  // 6. Recovery: roll incomplete transactions back. Crafty trades
  //    immediate persistence for speed, so the *last* transaction is
  //    rolled back too (use persistBarrier() before irrevocable actions).
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  std::printf("recovery: %zu sequences found, %zu rolled back\n",
              Rep.SequencesFound, Rep.SequencesRolledBack);

  // 7. Each transaction either happened entirely or not at all.
  for (uint64_t I = 0; I != 10; ++I) {
    bool HasValue = Table[I] == I * I && Table[32 + I] == I;
    bool Empty = Table[I] == 0 && Table[32 + I] == 0;
    if (!HasValue && !Empty && I != 0) {
      std::printf("ATOMICITY VIOLATION at %llu!\n", (unsigned long long)I);
      return 1;
    }
  }
  std::printf("after crash + recovery: Table[9] = %llu (transaction 9 was "
              "the last: rolled back)\n",
              (unsigned long long)Table[9]);
  std::printf("quickstart OK\n");
  return 0;
}
