//===- examples/job_scheduler.cpp - Exactly-once durable jobs -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// An exactly-once job scheduler built from the persistent data-structure
// layer: a DurableQueue of pending jobs, a DurableHashMap of results and
// a DurableVector completion journal. The trick is composition — each
// worker claims a job, computes, and records the result in ONE
// persistent transaction, so a crash can never lose a claimed job or
// execute one twice. The demo crashes mid-run, recovers, re-attaches,
// finishes the backlog and proves every job ran exactly once.
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "pds/DurableHashMap.h"
#include "pds/DurableQueue.h"
#include "pds/DurableVector.h"
#include "recovery/Recovery.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace crafty;

namespace {

constexpr unsigned NumWorkers = 3;
constexpr uint64_t NumJobs = 900;

uint64_t computeJob(uint64_t Job) { return Job * Job + 7; }

void workUntil(CraftyRuntime &Rt, DurableQueue &Queue, DurableHashMap &Done,
               DurableVector &Journal, uint64_t StopAfter) {
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != NumWorkers; ++W) {
    Workers.emplace_back([&, W] {
      for (;;) {
        bool Empty = false;
        Rt.run(W, [&](TxnContext &Tx) {
          auto Job = Queue.dequeueTx(Tx);
          Empty = !Job.has_value();
          if (Empty)
            return;
          // Claim + result + journal entry: one atomic, durable unit.
          Done.putTx(Tx, *Job, computeJob(*Job));
          Journal.pushBackTx(Tx, *Job);
        });
        if (Empty || Journal.rawSize() >= StopAfter)
          return;
      }
    });
  }
  for (auto &T : Workers)
    T.join();
}

} // namespace

int main() {
  PMemConfig PoolCfg;
  PoolCfg.PoolBytes = 32 << 20;
  PoolCfg.Mode = PMemMode::Tracked;
  PoolCfg.EvictionPerMillion = 10000;
  PMemPool Pool(PoolCfg);
  CraftyConfig Cfg;
  Cfg.NumThreads = NumWorkers;
  Cfg.MaxLag = 2000; // Bound rollback of idle workers.

  HtmRuntime Htm{HtmConfig{}};
  CraftyRuntime Rt(Pool, Htm, Cfg);
  DurableQueue Queue(Pool, 2048);
  DurableHashMap Done(Pool, 4096);
  DurableVector Journal(Pool, 2048);

  for (uint64_t J = 1; J <= NumJobs; ++J)
    if (!Queue.enqueue(Rt, 0, J))
      return 1;

  // Phase 1: process about half the jobs, then the machine dies.
  workUntil(Rt, Queue, Done, Journal, NumJobs / 2);
  std::printf("power failure after ~%llu completions...\n",
              (unsigned long long)Journal.rawSize());
  Pool.crash();

  // Restart: recover, re-attach, finish the backlog.
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  std::printf("recovery: %zu sequences rolled back; journal now %llu\n",
              Rep.SequencesRolledBack,
              (unsigned long long)Journal.rawSize());
  HtmRuntime Htm2{HtmConfig{}};
  std::unique_ptr<CraftyRuntime> Rt2 = CraftyRuntime::attach(Pool, Htm2, Cfg);
  workUntil(*Rt2, Queue, Done, Journal, NumJobs);

  // Audit: exactly-once execution of every job, with correct results.
  if (Journal.rawSize() != NumJobs || Done.auditCount() != NumJobs) {
    std::printf("LOST OR DUPLICATED JOBS: journal %llu, map %llu\n",
                (unsigned long long)Journal.rawSize(),
                (unsigned long long)Done.auditCount());
    return 1;
  }
  std::vector<bool> Seen(NumJobs + 1, false);
  for (uint64_t I = 0; I != Journal.rawSize(); ++I) {
    uint64_t J = Journal.rawAt(I);
    if (J == 0 || J > NumJobs || Seen[J]) {
      std::printf("JOURNAL CORRUPT at index %llu\n", (unsigned long long)I);
      return 1;
    }
    Seen[J] = true;
  }
  for (uint64_t J = 1; J <= NumJobs; ++J) {
    uint64_t Result = 0;
    bool Found = false;
    Rt2->run(0, [&](TxnContext &Tx) {
      if (auto V = Done.getTx(Tx, J)) {
        Found = true;
        Result = *V;
      }
    });
    if (!Found || Result != computeJob(J)) {
      std::printf("WRONG RESULT for job %llu\n", (unsigned long long)J);
      return 1;
    }
  }
  std::printf("all %llu jobs ran exactly once across the crash\n",
              (unsigned long long)NumJobs);
  std::printf("job_scheduler OK\n");
  return 0;
}
