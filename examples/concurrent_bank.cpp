//===- examples/concurrent_bank.cpp - Concurrent durable transfers --------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating scenario end to end: several threads run ACID
// transfer transactions against persistent accounts while the simulated
// cache spontaneously evicts lines to NVM; the machine then loses power
// mid-run. Recovery must restore a state in which no money was created
// or destroyed, and a final audit re-runs the books.
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "recovery/Recovery.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace crafty;

int main() {
  constexpr unsigned NumThreads = 4;
  constexpr unsigned NumAccounts = 128;
  constexpr uint64_t InitialBalance = 10000;
  constexpr int OpsPerThread = 2000;

  PMemConfig PoolCfg;
  PoolCfg.PoolBytes = 32 << 20;
  PoolCfg.Mode = PMemMode::Tracked;
  PoolCfg.EvictionPerMillion = 20000; // Aggressive spontaneous eviction.
  PMemPool Pool(PoolCfg);
  HtmRuntime Htm{HtmConfig{}};
  CraftyConfig Cfg;
  Cfg.NumThreads = NumThreads;
  // Bound how far back recovery may roll (paper Section 5.2): threads
  // that fall idle get empty commits forced into their logs, keeping the
  // recovery threshold close to the crash point.
  Cfg.MaxLag = 2000;
  CraftyRuntime Crafty(Pool, Htm, Cfg);

  auto *Accounts =
      static_cast<uint64_t *>(Crafty.carve(NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I) {
    uint64_t V = InitialBalance;
    Pool.persistDirect(&Accounts[I * 8], &V, sizeof(V));
  }

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Rng R(T * 31 + 5);
      for (int I = 0; I != OpsPerThread; ++I) {
        unsigned From = (unsigned)R.nextBounded(NumAccounts);
        unsigned To = (unsigned)((From + 1 + R.nextBounded(NumAccounts - 1)) %
                                 NumAccounts);
        uint64_t Amount = 1 + R.nextBounded(50);
        Crafty.thread(T).run([&](TxnContext &Tx) {
          uint64_t F = Tx.load(&Accounts[From * 8]);
          uint64_t G = Tx.load(&Accounts[To * 8]);
          Tx.store(&Accounts[From * 8], F - Amount);
          Tx.store(&Accounts[To * 8], G + Amount);
        });
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();

  PtmStats St = Crafty.txnStats();
  std::printf("ran %llu transactions (%llu via Redo, %llu via Validate, "
              "%llu under the SGL)\n",
              (unsigned long long)St.transactions(),
              (unsigned long long)St.Redo, (unsigned long long)St.Validate,
              (unsigned long long)St.Sgl);

  std::printf("power failure!\n");
  Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  std::printf("recovery: threshold ts %llu, %zu sequences rolled back, "
              "%zu words restored\n",
              (unsigned long long)Rep.ThresholdTs, Rep.SequencesRolledBack,
              Rep.WordsRestored);

  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  if (Total != (uint64_t)InitialBalance * NumAccounts) {
    std::printf("AUDIT FAILED: total %llu != %llu\n",
                (unsigned long long)Total,
                (unsigned long long)InitialBalance * NumAccounts);
    return 1;
  }
  std::printf("audit OK: %u accounts still total %llu\n", NumAccounts,
              (unsigned long long)Total);
  std::printf("concurrent_bank OK\n");
  return 0;
}
