//===- tools/crafty-lint/Model.cpp - Lightweight C++ source model ---------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Model.h"

#include "Syntax.h"

#include <algorithm>
#include <cctype>

namespace craftylint {

namespace {

bool isOpener(const Token &T) {
  return T.Kind == TokKind::Punct &&
         (T.Text == "(" || T.Text == "[" || T.Text == "{");
}
bool isCloser(const Token &T) {
  return T.Kind == TokKind::Punct &&
         (T.Text == ")" || T.Text == "]" || T.Text == "}");
}

/// Annotation macro spellings (support/Annotations.h).
bool applyAnnotationMacro(const std::string &Name, Annotations &A) {
  if (Name == "CRAFTY_PMEM")
    A.Pmem = true;
  else if (Name == "CRAFTY_TX_SAFE")
    A.TxSafe = true;
  else if (Name == "CRAFTY_HTM_UNSAFE")
    A.HtmUnsafe = true;
  else if (Name == "CRAFTY_TX_BODY")
    A.TxBody = true;
  else if (Name == "CRAFTY_TX_STORE_API")
    A.TxStoreApi = true;
  else if (Name == "CRAFTY_FLUSH_API")
    A.FlushApi = true;
  else if (Name == "CRAFTY_DRAIN_API")
    A.DrainApi = true;
  else if (Name == "CRAFTY_DRAIN_DEFERRED")
    A.DrainDeferred = true;
  else if (Name == "CRAFTY_PM_PUBLISH")
    A.PmPublish = true;
  else
    return false;
  return true;
}

bool isAllCapsIdent(const std::string &S) {
  bool SawAlpha = false;
  for (char C : S) {
    if (std::isupper((unsigned char)C))
      SawAlpha = true;
    else if (!std::isdigit((unsigned char)C) && C != '_')
      return false;
  }
  return SawAlpha;
}

const char *const NotAFunctionName[] = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "new", "delete", "throw", "co_return", "co_await", "assert",
    "static_assert", "defined",
};

bool isDisqualifiedName(const std::string &S) {
  for (const char *K : NotAFunctionName)
    if (S == K)
      return true;
  return false;
}

} // namespace

size_t matchForward(const std::vector<Token> &T, size_t I, size_t End) {
  int Depth = 0;
  for (size_t J = I; J < End; ++J) {
    if (isOpener(T[J]))
      ++Depth;
    else if (isCloser(T[J])) {
      --Depth;
      if (Depth == 0)
        return J;
      if (Depth < 0)
        return End;
    }
  }
  return End;
}

Annotations Registry::lookupCall(const std::string &ClassName,
                                 const std::string &Name) const {
  if (!ClassName.empty()) {
    auto It = AnnByQual.find(ClassName + "::" + Name);
    if (It != AnnByQual.end())
      return It->second;
  }
  auto It = AnnBySimple.find(Name);
  if (It != AnnBySimple.end())
    return It->second;
  return Annotations();
}

void Registry::add(const ParsedFile &PF) {
  for (const FunctionInfo &F : PF.Funcs) {
    if (F.Ann.any()) {
      AnnByQual[F.QualName].merge(F.Ann);
      AnnBySimple[F.Name].merge(F.Ann);
    }
    if (F.hasBody())
      DefsBySimple[F.Name].push_back(&F);
  }
  for (const PmVar &V : PF.PmFields) {
    auto It = PmFieldIsPtr.find(V.Name);
    if (It == PmFieldIsPtr.end())
      PmFieldIsPtr[V.Name] = V.IsPtr;
    else
      It->second = It->second || V.IsPtr;
    PmFieldNames.insert(V.Name);
    if (!V.ClassName.empty()) {
      std::string Q = V.ClassName + "::" + V.Name;
      PmFieldQual.insert(Q);
      auto QIt = PmFieldQualIsPtr.find(Q);
      if (QIt == PmFieldQualIsPtr.end())
        PmFieldQualIsPtr[Q] = V.IsPtr;
      else
        QIt->second = QIt->second || V.IsPtr;
    }
  }
  for (const PmVar &V : PF.PublishFields) {
    PublishFieldNames.insert(V.Name);
    if (!V.ClassName.empty())
      PublishFieldQual.insert(V.ClassName + "::" + V.Name);
  }
  for (const auto &CF : PF.FieldsByClass)
    ClassFields[CF.first].insert(CF.second.begin(), CF.second.end());
  ConstNames.insert(PF.ConstNames.begin(), PF.ConstNames.end());
  for (const auto &KV : PF.IntConsts)
    IntConstValues.emplace(KV.first, KV.second);
}

namespace {

/// Scope scanner building the ParsedFile model. Chunks the token stream at
/// declaration granularity and classifies each chunk.
class ScopeScanner {
public:
  ScopeScanner(const LexedFile &Lex, ParsedFile &Out) : T(Lex.Toks), Out(Out) {}

  void run() { scanScope(0, T.size(), /*ClassName=*/""); }

private:
  const std::vector<Token> &T;
  ParsedFile &Out;

  /// Scans declarations in [I, End). \p ClassName is the innermost class
  /// whose body this is ("" at namespace scope).
  void scanScope(size_t I, size_t End, const std::string &ClassName) {
    while (I < End) {
      // Access labels.
      if (T[I].isIdent() &&
          (T[I].is("public") || T[I].is("private") || T[I].is("protected")) &&
          I + 1 < End && T[I + 1].isPunct(":")) {
        I += 2;
        continue;
      }
      if (T[I].isPunct(";")) {
        ++I;
        continue;
      }
      if (T[I].isPunct("}")) {
        ++I;
        continue;
      }
      I = scanDeclaration(I, End, ClassName);
    }
  }

  /// Collects one declaration chunk starting at \p I; returns the index
  /// just past it.
  size_t scanDeclaration(size_t Start, size_t End, const std::string &Class) {
    // Find the chunk terminator: first ';' or '{' at joint depth 0.
    size_t I = Start;
    int Depth = 0;
    size_t Term = End;
    for (; I < End; ++I) {
      if (isOpener(T[I])) {
        if (T[I].isPunct("{") && Depth == 0) {
          Term = I;
          break;
        }
        ++Depth;
      } else if (isCloser(T[I])) {
        if (Depth == 0) { // Stray scope close: let the caller handle it.
          return I;
        }
        --Depth;
      } else if (T[I].isPunct(";") && Depth == 0) {
        Term = I;
        break;
      }
    }
    if (Term == End)
      return End;

    bool EndsWithBrace = T[Term].isPunct("{");
    size_t ChunkBegin = Start;

    // Strip a leading template<...> header.
    if (T[ChunkBegin].is("template") && ChunkBegin + 1 < Term &&
        T[ChunkBegin + 1].isPunct("<")) {
      int Angle = 0;
      size_t J = ChunkBegin + 1;
      for (; J < Term; ++J) {
        if (T[J].isPunct("<"))
          ++Angle;
        else if (T[J].isPunct(">")) {
          if (--Angle == 0) {
            ++J;
            break;
          }
        } else if (T[J].isPunct(">>")) {
          Angle -= 2;
          if (Angle <= 0) {
            ++J;
            break;
          }
        }
      }
      ChunkBegin = J;
      if (ChunkBegin >= Term)
        return skipPastChunk(Term, End, EndsWithBrace);
    }

    const std::string &Lead =
        T[ChunkBegin].isIdent() ? T[ChunkBegin].Text : std::string();

    if (Lead == "namespace" || (Lead == "extern" && EndsWithBrace)) {
      if (!EndsWithBrace)
        return Term + 1; // namespace alias
      size_t Close = matchForward(T, Term, End);
      scanScope(Term + 1, Close, Class);
      return Close + 1;
    }

    if (Lead == "using" || Lead == "typedef" || Lead == "friend" ||
        Lead == "static_assert")
      return skipPastChunk(Term, End, EndsWithBrace);

    if (Lead == "enum") {
      if (EndsWithBrace) {
        size_t Close = matchForward(T, Term, End);
        collectEnumerators(Term + 1, Close);
        // Consume a trailing ';' (and any variable name before it).
        size_t J = Close + 1;
        while (J < End && !T[J].isPunct(";"))
          ++J;
        return J + 1;
      }
      return Term + 1;
    }

    if (Lead == "class" || Lead == "struct" || Lead == "union") {
      if (!EndsWithBrace)
        return handleSimpleDecl(ChunkBegin, Term, Class);
      std::string Name = classNameOf(ChunkBegin, Term);
      size_t Close = matchForward(T, Term, End);
      scanScope(Term + 1, Close, Name);
      size_t J = Close + 1;
      while (J < End && !T[J].isPunct(";"))
        ++J;
      return J + 1;
    }

    // Function definition or prototype?
    if (tryFunction(ChunkBegin, Term, End, Class, EndsWithBrace)) {
      if (!EndsWithBrace)
        return Term + 1;
      size_t Close = matchForward(T, Term, End);
      return Close + 1;
    }

    if (!EndsWithBrace)
      return handleSimpleDecl(ChunkBegin, Term, Class);

    // Unclassified brace (aggregate initializer, lambda initializer...):
    // note any field/const declared before it, then skip to the ';'.
    handleSimpleDecl(ChunkBegin, Term, Class);
    return skipPastChunk(Term, End, EndsWithBrace);
  }

  size_t skipPastChunk(size_t Term, size_t End, bool EndsWithBrace) {
    if (!EndsWithBrace)
      return Term + 1;
    size_t J = matchForward(T, Term, End) + 1;
    while (J < End && !T[J].isPunct(";") && !T[J].isPunct("}"))
      J = isOpener(T[J]) ? matchForward(T, J, End) + 1 : J + 1;
    return J < End && T[J].isPunct(";") ? J + 1 : J;
  }

  void collectEnumerators(size_t Begin, size_t End) {
    int Depth = 0;
    bool ExpectName = true;
    for (size_t J = Begin; J < End; ++J) {
      if (isOpener(T[J]))
        ++Depth;
      else if (isCloser(T[J]))
        --Depth;
      else if (Depth == 0 && T[J].isPunct(","))
        ExpectName = true;
      else if (Depth == 0 && ExpectName && T[J].isIdent()) {
        Out.ConstNames.insert(T[J].Text);
        ExpectName = false;
      }
    }
  }

  /// Class-head name: the identifier before the base-clause ':' if there
  /// is one, else the last identifier before the '{' (skipping "final").
  std::string classNameOf(size_t Begin, size_t Term) {
    int Depth = 0;
    for (size_t J = Begin; J < Term; ++J) {
      if (isOpener(T[J]))
        ++Depth;
      else if (isCloser(T[J]))
        --Depth;
      else if (Depth == 0 && T[J].isPunct(":")) {
        for (size_t K = J; K > Begin; --K)
          if (T[K - 1].isIdent() && !T[K - 1].is("final"))
            return T[K - 1].Text;
        return "";
      }
    }
    for (size_t K = Term; K > Begin; --K)
      if (T[K - 1].isIdent() && !T[K - 1].is("final"))
        return T[K - 1].Text;
    return "";
  }

  /// Attempts to read [Begin, Term) as a function header. On success
  /// records a FunctionInfo (with body [Term+1, close) when \p IsDef).
  bool tryFunction(size_t Begin, size_t Term, size_t End,
                   const std::string &Class, bool IsDef) {
    // Find the parameter-list '(': the first depth-0 '(' preceded by a
    // usable name, with no depth-0 '=' before it. Annotation macros that
    // take arguments (CRAFTY_TX_CAPACITY(n)) are skipped as a group so
    // their '(' is not mistaken for the parameter list.
    int Depth = 0;
    size_t ParamOpen = 0;
    size_t CapB = 0, CapE = 0;
    for (size_t J = Begin; J < Term; ++J) {
      if (T[J].isPunct("(") && Depth == 0 && J > Begin &&
          T[J - 1].isIdent() && T[J - 1].Text.rfind("CRAFTY_", 0) == 0) {
        size_t Close = matchForward(T, J, Term);
        if (T[J - 1].is("CRAFTY_TX_CAPACITY")) {
          CapB = J + 1;
          CapE = Close;
        }
        J = Close;
        continue;
      }
      if (T[J].isPunct("=") && Depth == 0)
        return false;
      if (T[J].isPunct("(") && Depth == 0 && J > Begin) {
        const Token &Prev = T[J - 1];
        if (Prev.isIdent() && !isDisqualifiedName(Prev.Text)) {
          ParamOpen = J;
          break;
        }
        // "operator==(" and friends: treat as a function named by the
        // operator tokens so the body is skipped correctly.
        size_t K = J;
        while (K > Begin && T[K - 1].Kind == TokKind::Punct &&
               !isCloser(T[K - 1]) && !T[K - 1].isPunct("("))
          --K;
        if (K > Begin && T[K - 1].is("operator")) {
          ParamOpen = J;
          break;
        }
      }
      if (isOpener(T[J]))
        ++Depth;
      else if (isCloser(T[J]))
        --Depth;
    }
    if (ParamOpen == 0)
      return false;
    size_t ParamClose = matchForward(T, ParamOpen, Term);
    if (ParamClose >= Term && IsDef) {
      // Parameter list runs to the '{': only legal for a function def
      // whose last param has a brace default? Not in this codebase.
      return false;
    }

    // Validate the tokens between ')' and the chunk end.
    for (size_t J = ParamClose + 1; J < Term; ++J) {
      const Token &Tk = T[J];
      if (Tk.isIdent()) {
        if (Tk.is("const") || Tk.is("noexcept") || Tk.is("override") ||
            Tk.is("final") || Tk.is("mutable") || Tk.is("try") ||
            isAllCapsIdent(Tk.Text))
          continue;
        return false;
      }
      if (Tk.isPunct("&") || Tk.isPunct("&&") || Tk.isPunct("[") ||
          Tk.isPunct("]"))
        continue;
      if (Tk.isPunct("(")) { // noexcept(...) / macro(...) arguments.
        J = matchForward(T, J, Term);
        continue;
      }
      if (Tk.isPunct("->") || Tk.isPunct(":")) {
        // Trailing return type / ctor initializer: everything to the
        // body is part of the header.
        J = Term;
        break;
      }
      if (Tk.isPunct("=")) {
        // "= default" / "= delete" / "= 0" prototypes.
        J = Term;
        break;
      }
      return false;
    }

    FunctionInfo F;
    F.Owner = &Out.Lex;
    F.Line = T[ParamOpen].Line;

    // Name (walking back over A::B:: qualifiers).
    size_t NameIdx = ParamOpen - 1;
    if (T[NameIdx].isIdent()) {
      F.Name = T[NameIdx].Text;
      std::vector<std::string> Quals;
      size_t K = NameIdx;
      while (K >= 2 && T[K - 1].isPunct("::") && T[K - 2].isIdent()) {
        Quals.push_back(T[K - 2].Text);
        K -= 2;
      }
      if (!Quals.empty())
        F.ClassName = Quals.front(); // Innermost qualifier.
    } else {
      F.Name = "operator?";
    }
    if (F.ClassName.empty())
      F.ClassName = Class;
    F.QualName = F.ClassName.empty() ? F.Name : F.ClassName + "::" + F.Name;

    // Annotations: chunk tokens outside the parameter list.
    for (size_t J = Begin; J < Term; ++J) {
      if (J == ParamOpen) {
        J = ParamClose;
        continue;
      }
      if (T[J].isIdent())
        applyAnnotationMacro(T[J].Text, F.Ann);
    }

    if (CapB < CapE)
      F.CapacityToks.assign(T.begin() + CapB, T.begin() + CapE);

    // Parameters: names of all of them, plus the CRAFTY_PMEM subset.
    size_t PStart = ParamOpen + 1;
    int PDepth = 0;
    bool PmHere = false, PtrHere = false;
    std::string LastIdent;
    auto flushParam = [&]() {
      if (!LastIdent.empty())
        F.Params.push_back(LastIdent);
      if (PmHere && !LastIdent.empty())
        F.PmParams.push_back(PmVar{LastIdent, PtrHere, ""});
      PmHere = PtrHere = false;
      LastIdent.clear();
    };
    for (size_t J = PStart; J < ParamClose; ++J) {
      if (isOpener(T[J]))
        ++PDepth;
      else if (isCloser(T[J]))
        --PDepth;
      else if (PDepth == 0 && T[J].isPunct(","))
        flushParam();
      else if (PDepth == 0 && T[J].isPunct("="))
        PDepth = 1000; // Ignore default-argument tokens (until ',').
      else if (PDepth >= 1000 && T[J].isPunct(","))
        PDepth = 0, flushParam();
      else if (PDepth == 0 && T[J].isIdent()) {
        if (T[J].is("CRAFTY_PMEM"))
          PmHere = true;
        else {
          if (T[J].is("TxnContext") || T[J].is("HtmTx"))
            F.TakesTxContext = true;
          LastIdent = T[J].Text;
        }
      } else if (PDepth == 0 && T[J].isPunct("*"))
        PtrHere = true;
    }
    flushParam();

    if (IsDef) {
      size_t Close = matchForward(T, Term, End);
      F.BodyBegin = Term + 1;
      F.BodyEnd = Close;
      Out.Funcs.push_back(std::move(F));
      return true;
    }
    // Prototype: only interesting when annotated.
    if (F.Ann.any() || !F.PmParams.empty())
      Out.Funcs.push_back(std::move(F));
    return true;
  }

  /// Field / variable / constant declaration (chunk without a function
  /// header). Records CRAFTY_PMEM / CRAFTY_PM_PUBLISH fields (scoped by
  /// \p Class), compile-time-constant names with their integer values
  /// when the initializer is evaluable, and every class field name for
  /// scoped lookups.
  size_t handleSimpleDecl(size_t Begin, size_t Term, const std::string &Class) {
    bool Pm = false, Ptr = false, Const = false, Publish = false;
    size_t AssignIdx = 0;
    std::string Name;
    int Depth = 0;
    for (size_t J = Begin; J < Term; ++J) {
      const Token &Tk = T[J];
      if (isOpener(Tk)) {
        ++Depth;
        continue;
      }
      if (isCloser(Tk)) {
        --Depth;
        continue;
      }
      if (Depth != 0)
        continue;
      if (Tk.isPunct("=")) {
        AssignIdx = J;
        break;
      }
      if (Tk.isPunct("[") || Tk.isPunct(":"))
        break;
      if (Tk.isIdent()) {
        if (Tk.is("CRAFTY_PMEM"))
          Pm = true;
        else if (Tk.is("CRAFTY_PM_PUBLISH"))
          Publish = true;
        else if (Tk.is("constexpr"))
          Const = true;
        else if (Tk.is("const"))
          Const = true;
        else
          Name = Tk.Text;
      } else if (Tk.isPunct("*"))
        Ptr = true;
    }
    if (!Name.empty()) {
      if (Pm)
        Out.PmFields.push_back(PmVar{Name, Ptr, Class});
      if (Publish)
        Out.PublishFields.push_back(PmVar{Name, Ptr, Class});
      if (Const)
        Out.ConstNames.insert(Name);
      if (!Class.empty())
        Out.FieldsByClass[Class].insert(Name);
      if (AssignIdx && AssignIdx + 1 < Term) {
        // `size_t MaxValueBytes = 248;` / `Magic = 0xC7AF...;` -- record
        // the value for the static tx-capacity evaluator.
        auto V = evalConstExpr(T, AssignIdx + 1, Term, Out.IntConsts);
        if (V)
          Out.IntConsts.emplace(Name, *V);
      }
    }
    return Term + 1;
  }
};

} // namespace

void parseFile(ParsedFile &PF) {
  // The scanner reads tokens from PF.Lex in place; FunctionInfo::Owner and
  // body indices refer to PF's own storage, so PF must not be moved after
  // parsing (callers keep ParsedFiles at stable addresses).
  ScopeScanner S(PF.Lex, PF);
  S.run();
}

} // namespace craftylint
