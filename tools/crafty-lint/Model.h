//===- tools/crafty-lint/Model.h - Lightweight C++ source model -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight declaration-level model of a C++ translation unit, built
/// from the token stream: function definitions and prototypes with their
/// crafty-lint annotations (support/Annotations.h), persistent-annotated
/// fields and parameters, and compile-time-constant names. It is not a
/// full parser -- templates, operators and exotic declarators are handled
/// conservatively (skipped rather than misread) -- but it is precise
/// enough to drive the four analyzer rules over this codebase and the
/// fixture corpus, with the annotation macros carrying the semantic load.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_MODEL_H
#define CRAFTY_LINT_MODEL_H

#include "Lexer.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace craftylint {

/// The crafty-lint annotation set attached to a declaration.
struct Annotations {
  bool Pmem = false;
  bool TxSafe = false;
  bool HtmUnsafe = false;
  bool TxBody = false;
  bool TxStoreApi = false;
  bool FlushApi = false;
  bool DrainApi = false;
  bool DrainDeferred = false;
  /// CRAFTY_PM_PUBLISH: a commit-marker / pointer-publish store target
  /// (field) or a function performing such a publish.
  bool PmPublish = false;

  void merge(const Annotations &O) {
    Pmem |= O.Pmem;
    TxSafe |= O.TxSafe;
    HtmUnsafe |= O.HtmUnsafe;
    TxBody |= O.TxBody;
    TxStoreApi |= O.TxStoreApi;
    FlushApi |= O.FlushApi;
    DrainApi |= O.DrainApi;
    DrainDeferred |= O.DrainDeferred;
    PmPublish |= O.PmPublish;
  }
  bool any() const {
    return Pmem || TxSafe || HtmUnsafe || TxBody || TxStoreApi || FlushApi ||
           DrainApi || DrainDeferred || PmPublish;
  }
};

/// A CRAFTY_PMEM-annotated variable (parameter, local or field).
struct PmVar {
  std::string Name;
  /// True when the declarator is a pointer: the *pointee* is persistent,
  /// so only stores through the pointer (deref/index/arrow) are flagged;
  /// re-pointing the variable itself is volatile. False means the
  /// variable's own storage is persistent.
  bool IsPtr = false;
  /// Enclosing class for fields ("" for parameters/locals/globals).
  std::string ClassName;
};

struct FunctionInfo {
  const LexedFile *Owner = nullptr;
  int Line = 0;
  std::string Name;      // Simple name.
  std::string ClassName; // Innermost enclosing (or qualifying) class, "".
  std::string QualName;  // ClassName::Name, or Name for free functions.
  Annotations Ann;
  std::vector<PmVar> PmParams;
  /// Every parameter name, in declaration order (best effort: for unnamed
  /// prototype parameters the last type token stands in). Positional
  /// param<->argument matching in the interprocedural summaries.
  std::vector<std::string> Params;
  /// Takes a TxnContext& / HtmTx& parameter: a CRAFTY_TX_BODY function
  /// with one runs inside its *caller's* transaction (its stores add to
  /// that write set); without one it begins a transaction of its own.
  bool TakesTxContext = false;
  /// CRAFTY_TX_CAPACITY(expr): declared per-transaction write budget.
  /// The expression tokens are kept for evaluation against the registry's
  /// constant pool at check time; empty when unannotated.
  std::vector<Token> CapacityToks;
  /// Token index range of the body's contents (exclusive of braces);
  /// BodyBegin == BodyEnd == 0 for a prototype.
  size_t BodyBegin = 0;
  size_t BodyEnd = 0;

  bool hasBody() const { return BodyEnd > BodyBegin; }
};

/// One parsed file: its lexed form plus the declaration model.
struct ParsedFile {
  LexedFile Lex;
  std::vector<FunctionInfo> Funcs; // Definitions and prototypes.
  std::vector<PmVar> PmFields;     // CRAFTY_PMEM fields, any class.
  std::vector<PmVar> PublishFields; // CRAFTY_PM_PUBLISH fields.
  std::set<std::string> ConstNames; // const/constexpr/enum value names.
  /// Every field name declared per class (pm or not), for scoped lookup.
  std::map<std::string, std::set<std::string>> FieldsByClass;
  /// Integer values of constants with evaluable initializers.
  std::map<std::string, long long> IntConsts;
};

/// The cross-file model the checks run against.
struct Registry {
  /// Annotation union per qualified name ("Class::name") and simple name.
  std::map<std::string, Annotations> AnnByQual;
  std::map<std::string, Annotations> AnnBySimple;
  /// Function *definitions* (bodies) by simple name, for call-graph walks.
  std::map<std::string, std::vector<const FunctionInfo *>> DefsBySimple;
  /// CRAFTY_PMEM fields by name; value IsPtr (OR over all declarations,
  /// so the merge is order-independent under parallel loading).
  std::map<std::string, bool> PmFieldIsPtr;
  std::set<std::string> PmFieldNames;
  /// Class-scoped field model: every declared field per class, plus the
  /// pm subset as "Class::Field" qualified names. Lets `this->f` stores
  /// resolve against the enclosing class instead of the global name pool.
  std::map<std::string, std::set<std::string>> ClassFields;
  std::set<std::string> PmFieldQual;
  std::map<std::string, bool> PmFieldQualIsPtr;
  /// CRAFTY_PM_PUBLISH commit-marker / pointer-publish fields.
  std::set<std::string> PublishFieldNames;
  std::set<std::string> PublishFieldQual;
  /// Compile-time-constant names from every scanned file.
  std::set<std::string> ConstNames;
  /// Integer values for constants with evaluable initializers (first
  /// registration wins; files are registered in sorted path order).
  std::map<std::string, long long> IntConstValues;

  /// Merged annotations for a call to \p Name, optionally qualified by
  /// \p ClassName (tried first). Returns a default (empty) set when the
  /// name is unknown.
  Annotations lookupCall(const std::string &ClassName,
                         const std::string &Name) const;

  void add(const ParsedFile &PF);
};

/// Parses \p PF.Lex into the declaration model, in place. \p PF must stay
/// at a stable address afterwards (FunctionInfo::Owner points into it).
void parseFile(ParsedFile &PF);

/// Finds the matching closer for the opener at \p I ('(' / '[' / '{' / any
/// token opening a balanced region) scanning [I, End); returns End if
/// unbalanced. Openers and closers of all three bracket kinds nest jointly.
size_t matchForward(const std::vector<Token> &T, size_t I, size_t End);

} // namespace craftylint

#endif // CRAFTY_LINT_MODEL_H
