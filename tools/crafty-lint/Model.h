//===- tools/crafty-lint/Model.h - Lightweight C++ source model -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight declaration-level model of a C++ translation unit, built
/// from the token stream: function definitions and prototypes with their
/// crafty-lint annotations (support/Annotations.h), persistent-annotated
/// fields and parameters, and compile-time-constant names. It is not a
/// full parser -- templates, operators and exotic declarators are handled
/// conservatively (skipped rather than misread) -- but it is precise
/// enough to drive the four analyzer rules over this codebase and the
/// fixture corpus, with the annotation macros carrying the semantic load.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_MODEL_H
#define CRAFTY_LINT_MODEL_H

#include "Lexer.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace craftylint {

/// The crafty-lint annotation set attached to a declaration.
struct Annotations {
  bool Pmem = false;
  bool TxSafe = false;
  bool HtmUnsafe = false;
  bool TxBody = false;
  bool TxStoreApi = false;
  bool FlushApi = false;
  bool DrainApi = false;
  bool DrainDeferred = false;

  void merge(const Annotations &O) {
    Pmem |= O.Pmem;
    TxSafe |= O.TxSafe;
    HtmUnsafe |= O.HtmUnsafe;
    TxBody |= O.TxBody;
    TxStoreApi |= O.TxStoreApi;
    FlushApi |= O.FlushApi;
    DrainApi |= O.DrainApi;
    DrainDeferred |= O.DrainDeferred;
  }
  bool any() const {
    return Pmem || TxSafe || HtmUnsafe || TxBody || TxStoreApi || FlushApi ||
           DrainApi || DrainDeferred;
  }
};

/// A CRAFTY_PMEM-annotated variable (parameter, local or field).
struct PmVar {
  std::string Name;
  /// True when the declarator is a pointer: the *pointee* is persistent,
  /// so only stores through the pointer (deref/index/arrow) are flagged;
  /// re-pointing the variable itself is volatile. False means the
  /// variable's own storage is persistent.
  bool IsPtr = false;
};

struct FunctionInfo {
  const LexedFile *Owner = nullptr;
  int Line = 0;
  std::string Name;      // Simple name.
  std::string ClassName; // Innermost enclosing (or qualifying) class, "".
  std::string QualName;  // ClassName::Name, or Name for free functions.
  Annotations Ann;
  std::vector<PmVar> PmParams;
  /// Token index range of the body's contents (exclusive of braces);
  /// BodyBegin == BodyEnd == 0 for a prototype.
  size_t BodyBegin = 0;
  size_t BodyEnd = 0;

  bool hasBody() const { return BodyEnd > BodyBegin; }
};

/// One parsed file: its lexed form plus the declaration model.
struct ParsedFile {
  LexedFile Lex;
  std::vector<FunctionInfo> Funcs; // Definitions and prototypes.
  std::vector<PmVar> PmFields;     // CRAFTY_PMEM fields, any class.
  std::set<std::string> ConstNames; // const/constexpr/enum value names.
};

/// The cross-file model the checks run against.
struct Registry {
  /// Annotation union per qualified name ("Class::name") and simple name.
  std::map<std::string, Annotations> AnnByQual;
  std::map<std::string, Annotations> AnnBySimple;
  /// Function *definitions* (bodies) by simple name, for call-graph walks.
  std::map<std::string, std::vector<const FunctionInfo *>> DefsBySimple;
  /// CRAFTY_PMEM fields by name; value IsPtr. A name annotated as both
  /// pointer and non-pointer anywhere is treated as both.
  std::map<std::string, bool> PmFieldIsPtr;
  std::set<std::string> PmFieldNames;
  /// Compile-time-constant names from every scanned file.
  std::set<std::string> ConstNames;

  /// Merged annotations for a call to \p Name, optionally qualified by
  /// \p ClassName (tried first). Returns a default (empty) set when the
  /// name is unknown.
  Annotations lookupCall(const std::string &ClassName,
                         const std::string &Name) const;

  void add(const ParsedFile &PF);
};

/// Parses \p PF.Lex into the declaration model, in place. \p PF must stay
/// at a stable address afterwards (FunctionInfo::Owner points into it).
void parseFile(ParsedFile &PF);

/// Finds the matching closer for the opener at \p I ('(' / '[' / '{' / any
/// token opening a balanced region) scanning [I, End); returns End if
/// unbalanced. Openers and closers of all three bracket kinds nest jointly.
size_t matchForward(const std::vector<Token> &T, size_t I, size_t End);

} // namespace craftylint

#endif // CRAFTY_LINT_MODEL_H
