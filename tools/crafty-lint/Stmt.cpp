//===- tools/crafty-lint/Stmt.cpp - Statement tree over tokens ------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Stmt.h"

#include "Model.h"
#include "Syntax.h"

namespace craftylint {

namespace {

class StmtParser {
public:
  explicit StmtParser(const std::vector<Token> &T) : T(T) {}

  Stmt parseSeq(size_t B, size_t E) {
    Stmt S;
    S.Kind = Stmt::Seq;
    S.Line = B < E ? T[B].Line : 0;
    size_t I = B;
    while (I < E) {
      size_t Prev = I;
      S.Kids.push_back(parseStmt(I, E));
      if (I <= Prev) // Safety: never loop without progress.
        I = Prev + 1;
    }
    return S;
  }

private:
  const std::vector<Token> &T;

  /// Parses the parenthesized header following the keyword at \p I (which
  /// is advanced past the closing paren). Returns {B, E} of the contents.
  std::pair<size_t, size_t> parseHeader(size_t &I, size_t E) {
    while (I < E && !T[I].isPunct("("))
      ++I;
    if (I >= E)
      return {E, E};
    size_t Close = matchForward(T, I, E);
    std::pair<size_t, size_t> R{I + 1, Close};
    I = Close < E ? Close + 1 : E;
    return R;
  }

  Stmt parseStmt(size_t &I, size_t E) {
    Stmt S;
    S.Line = T[I].Line;
    const std::string &W = T[I].Text;

    if (T[I].isPunct("{")) {
      size_t Close = matchForward(T, I, E);
      S = parseSeq(I + 1, Close);
      S.Line = T[I].Line;
      I = Close < E ? Close + 1 : E;
      return S;
    }
    if (T[I].isIdent() && W == "if") {
      S.Kind = Stmt::If;
      ++I;
      if (I < E && T[I].isIdent() && T[I].Text == "constexpr")
        ++I;
      auto H = parseHeader(I, E);
      S.HdrB = H.first;
      S.HdrE = H.second;
      S.Kids.push_back(parseStmt(I, E));
      if (I < E && T[I].isIdent() && T[I].Text == "else") {
        ++I;
        S.Kids.push_back(parseStmt(I, E));
      }
      return S;
    }
    if (T[I].isIdent() && (W == "while" || W == "for")) {
      S.Kind = Stmt::Loop;
      ++I;
      auto H = parseHeader(I, E);
      S.HdrB = H.first;
      S.HdrE = H.second;
      S.Kids.push_back(parseStmt(I, E));
      return S;
    }
    if (T[I].isIdent() && W == "do") {
      S.Kind = Stmt::Loop;
      S.PostCond = true;
      ++I;
      S.Kids.push_back(parseStmt(I, E));
      if (I < E && T[I].isIdent() && T[I].Text == "while") {
        ++I;
        auto H = parseHeader(I, E);
        S.HdrB = H.first;
        S.HdrE = H.second;
      }
      if (I < E && T[I].isPunct(";"))
        ++I;
      return S;
    }
    if (T[I].isIdent() && W == "switch") {
      S.Kind = Stmt::Switch;
      ++I;
      auto H = parseHeader(I, E);
      S.HdrB = H.first;
      S.HdrE = H.second;
      S.Kids.push_back(parseStmt(I, E));
      return S;
    }
    if (T[I].isIdent() && (W == "case" || W == "default")) {
      ++I;
      while (I < E && !T[I].isPunct(":")) {
        if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{"))
          I = matchForward(T, I, E);
        ++I;
      }
      if (I < E)
        ++I; // The ':'.
      S.Kind = Stmt::Case;
      return S;
    }
    if (T[I].isIdent() && W == "return") {
      S.Kind = Stmt::Return;
      ++I;
      S.ExprB = I;
      S.ExprE = scanToSemi(I, E, S);
      return S;
    }
    if (T[I].isIdent() && (W == "break" || W == "continue")) {
      S.Kind = W == "break" ? Stmt::Break : Stmt::Continue;
      ++I;
      if (I < E && T[I].isPunct(";"))
        ++I;
      return S;
    }
    if (T[I].isIdent() && W == "try") {
      // try/catch approximated as straight-line composition of the blocks.
      S.Kind = Stmt::Seq;
      ++I;
      S.Kids.push_back(parseStmt(I, E));
      while (I < E && T[I].isIdent() && T[I].Text == "catch") {
        ++I;
        parseHeader(I, E);
        S.Kids.push_back(parseStmt(I, E));
      }
      return S;
    }
    if (T[I].isPunct(";")) { // Empty statement.
      ++I;
      S.Kind = Stmt::Expr;
      return S;
    }
    // Label?  ident ':' (not '::', which is one token).
    if (T[I].isIdent() && I + 1 < E && T[I + 1].isPunct(":") &&
        !isKeyword(W)) {
      I += 2;
      return parseStmt(I, E);
    }
    // Expression statement (includes declarations).
    S.Kind = Stmt::Expr;
    S.ExprB = I;
    S.ExprE = scanToSemi(I, E, S);
    return S;
  }

  /// Advances \p I to just past the terminating ';' of an expression
  /// statement, recording each top-level braced region as a Lambda kid of
  /// \p S and as a hole in S's token range. Parens are NOT jumped: a ';'
  /// can only hide inside braces (lambda bodies), which are.
  size_t scanToSemi(size_t &I, size_t E, Stmt &S) {
    while (I < E) {
      if (T[I].isPunct(";")) {
        size_t SemIdx = I;
        ++I;
        return SemIdx;
      }
      if (T[I].isPunct("{")) {
        size_t Close = matchForward(T, I, E);
        Stmt L;
        L.Kind = Stmt::Lambda;
        L.Line = T[I].Line;
        L.Kids.push_back(parseSeq(I + 1, Close));
        S.Kids.push_back(std::move(L));
        S.Holes.push_back({I, Close + 1});
        I = Close < E ? Close + 1 : E;
        continue;
      }
      ++I;
    }
    return E;
  }
};

} // namespace

Stmt parseStmtTree(const std::vector<Token> &T, size_t B, size_t E) {
  StmtParser P(T);
  return P.parseSeq(B, E);
}

void forEachTok(size_t B, size_t E,
                const std::vector<std::pair<size_t, size_t>> &Holes,
                const std::function<void(size_t)> &Fn) {
  size_t H = 0;
  for (size_t I = B; I < E; ++I) {
    while (H < Holes.size() && Holes[H].second <= I)
      ++H;
    if (H < Holes.size() && I >= Holes[H].first) {
      I = Holes[H].second - 1; // Loop ++ lands on the first post-hole token.
      continue;
    }
    Fn(I);
  }
}

} // namespace craftylint
