//===- tools/crafty-lint/Checks.cpp - The four analyzer rules -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Checks.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace craftylint {

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

const char *const RulePmRawStore = "pm-raw-store";
const char *const RuleHtmUnsafeCall = "htm-unsafe-call";
const char *const RuleFlushWithoutDrain = "flush-without-drain";
const char *const RuleUnboundedTxWrites = "unbounded-tx-writes";

/// Free functions that abort hardware transactions (syscalls, page faults
/// from the allocator, unbounded blocking) regardless of annotation. Only
/// consulted for *unresolved free* calls -- methods go through annotation
/// lookup and call-graph descent instead.
const std::set<std::string> &builtinUnsafe() {
  static const std::set<std::string> S = {
      // Allocation (may mmap / take locks / fault).
      "malloc", "calloc", "realloc", "free", "aligned_alloc",
      "posix_memalign",
      // stdio / I/O.
      "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
      "puts", "putchar", "fputs", "fputc", "fwrite", "fread", "fopen",
      "fclose", "fflush", "getline", "scanf", "fscanf", "perror",
      // POSIX I/O and memory syscalls.
      "open", "close", "read", "write", "pread", "pwrite", "lseek", "mmap",
      "munmap", "msync", "mprotect", "ftruncate", "fsync", "fdatasync",
      "ioctl", "syscall",
      // Sockets.
      "socket", "send", "recv", "sendto", "recvfrom", "accept", "connect",
      "bind", "listen",
      // Scheduling / blocking.
      "sleep", "usleep", "nanosleep", "sched_yield",
      "pthread_mutex_lock", "pthread_mutex_unlock", "pthread_cond_wait",
      "pthread_cond_signal", "pthread_cond_broadcast", "pthread_create",
      "pthread_join",
      // Process control.
      "abort", "exit", "_exit", "quick_exit", "atexit", "fork", "execve",
      "system",
  };
  return S;
}

/// memcpy-family sinks whose first argument is a write destination.
const std::set<std::string> &memWriteFns() {
  static const std::set<std::string> S = {
      "memcpy",  "memmove", "memset",  "strcpy",
      "strncpy", "strcat",  "strncat", "__builtin_memcpy",
      "__builtin_memmove", "__builtin_memset",
  };
  return S;
}

/// Raw flush/drain intrinsic spellings, recognized alongside the annotated
/// wrappers so hand-rolled code does not slip past flush-without-drain.
bool isRawFlushName(const std::string &N) {
  return N == "_mm_clwb" || N == "_mm_clflushopt" || N == "_mm_clflush" ||
         N == "__builtin_ia32_clwb" || N == "__builtin_ia32_clflushopt";
}
bool isRawDrainName(const std::string &N) {
  return N == "_mm_sfence" || N == "__builtin_ia32_sfence";
}

bool isKeyword(const std::string &S) {
  static const std::set<std::string> K = {
      "if",       "else",    "for",      "while",   "do",       "switch",
      "case",     "default", "return",   "break",   "continue", "sizeof",
      "alignof",  "new",     "delete",   "throw",   "try",      "catch",
      "goto",     "const",   "constexpr", "static",  "auto",     "struct",
      "class",    "enum",    "union",    "typename", "template", "using",
      "namespace", "public",  "private",  "protected", "noexcept", "co_await",
      "co_return", "co_yield", "static_assert", "decltype", "assert",
  };
  return K.count(S) > 0;
}

bool isAllCapsName(const std::string &S) {
  if (S.size() < 2)
    return false;
  bool HasAlpha = false;
  for (char C : S) {
    if (std::islower((unsigned char)C))
      return false;
    if (std::isupper((unsigned char)C))
      HasAlpha = true;
  }
  return HasAlpha;
}

bool isKConstName(const std::string &S) {
  return S.size() >= 2 && S[0] == 'k' && std::isupper((unsigned char)S[1]);
}

/// A call site or HTM-hostile keyword inside a function body.
struct CallSite {
  enum SiteKind { Call, KwNew, KwDelete, KwThrow } Kind = Call;
  std::string Name;      // Callee simple name (Call only).
  std::string ClassHint; // Qualifier before :: if present, else "".
  bool IsFree = false;   // No . / -> / :: receiver.
  size_t TokIdx = 0;
  int Line = 0;
};

/// Extracts every call site / hostile keyword in [B, E) of \p T.
std::vector<CallSite> collectSites(const std::vector<Token> &T, size_t B,
                                   size_t E) {
  std::vector<CallSite> Sites;
  for (size_t I = B; I < E; ++I) {
    const Token &Tk = T[I];
    if (!Tk.isIdent())
      continue;
    if (Tk.Text == "new" || Tk.Text == "delete" || Tk.Text == "throw") {
      // `throw;` rethrow counts too; `= delete` never appears inside a body.
      CallSite S;
      S.Kind = Tk.Text == "new"      ? CallSite::KwNew
               : Tk.Text == "delete" ? CallSite::KwDelete
                                     : CallSite::KwThrow;
      S.TokIdx = I;
      S.Line = Tk.Line;
      Sites.push_back(S);
      continue;
    }
    if (I + 1 >= E || !T[I + 1].isPunct("(") || isKeyword(Tk.Text))
      continue;
    if (Tk.Text.rfind("CRAFTY_", 0) == 0) // Annotation / bound macros.
      continue;
    CallSite S;
    S.Name = Tk.Text;
    S.TokIdx = I;
    S.Line = Tk.Line;
    if (I >= B + 1 && (T[I - 1].isPunct(".") || T[I - 1].isPunct("->"))) {
      S.IsFree = false;
    } else if (I >= B + 2 && T[I - 1].isPunct("::") && T[I - 2].isIdent()) {
      S.ClassHint = T[I - 2].Text;
      // std-qualified calls behave like free calls for the builtin list
      // (std::malloc, std::fopen, ...).
      S.IsFree = (S.ClassHint == "std");
    } else {
      S.IsFree = true;
    }
    Sites.push_back(S);
  }
  return Sites;
}

//===----------------------------------------------------------------------===//
// Statement tree (for flush-without-drain and unbounded-tx-writes)
//===----------------------------------------------------------------------===//

struct Stmt {
  enum StmtKind {
    Seq,
    If,
    Loop,
    Switch,
    Return,
    Break,
    Continue,
    Expr,
    Lambda, // A braced body embedded in an expression: lambda or init-list.
  } Kind = Seq;
  int Line = 0;
  bool PostCond = false;      // do/while: body runs before the condition.
  size_t HdrB = 0, HdrE = 0;  // Condition/header tokens (If/Loop/Switch).
  size_t ExprB = 0, ExprE = 0; // Token range (Expr/Return), incl. holes.
  std::vector<std::pair<size_t, size_t>> Holes; // Embedded-body subranges.
  std::vector<Stmt> Kids;
};

class StmtParser {
public:
  explicit StmtParser(const std::vector<Token> &T) : T(T) {}

  Stmt parseSeq(size_t B, size_t E) {
    Stmt S;
    S.Kind = Stmt::Seq;
    S.Line = B < E ? T[B].Line : 0;
    size_t I = B;
    while (I < E) {
      size_t Prev = I;
      S.Kids.push_back(parseStmt(I, E));
      if (I <= Prev) // Safety: never loop without progress.
        I = Prev + 1;
    }
    return S;
  }

private:
  const std::vector<Token> &T;

  /// Parses the parenthesized header following the keyword at \p I (which
  /// is advanced past the closing paren). Returns {B, E} of the contents.
  std::pair<size_t, size_t> parseHeader(size_t &I, size_t E) {
    while (I < E && !T[I].isPunct("("))
      ++I;
    if (I >= E)
      return {E, E};
    size_t Close = matchForward(T, I, E);
    std::pair<size_t, size_t> R{I + 1, Close};
    I = Close < E ? Close + 1 : E;
    return R;
  }

  Stmt parseStmt(size_t &I, size_t E) {
    Stmt S;
    S.Line = T[I].Line;
    const std::string &W = T[I].Text;

    if (T[I].isPunct("{")) {
      size_t Close = matchForward(T, I, E);
      S = parseSeq(I + 1, Close);
      S.Line = T[I].Line;
      I = Close < E ? Close + 1 : E;
      return S;
    }
    if (T[I].isIdent() && W == "if") {
      S.Kind = Stmt::If;
      ++I;
      if (I < E && T[I].isIdent() && T[I].Text == "constexpr")
        ++I;
      auto H = parseHeader(I, E);
      S.HdrB = H.first;
      S.HdrE = H.second;
      S.Kids.push_back(parseStmt(I, E));
      if (I < E && T[I].isIdent() && T[I].Text == "else") {
        ++I;
        S.Kids.push_back(parseStmt(I, E));
      }
      return S;
    }
    if (T[I].isIdent() && (W == "while" || W == "for")) {
      S.Kind = Stmt::Loop;
      ++I;
      auto H = parseHeader(I, E);
      S.HdrB = H.first;
      S.HdrE = H.second;
      S.Kids.push_back(parseStmt(I, E));
      return S;
    }
    if (T[I].isIdent() && W == "do") {
      S.Kind = Stmt::Loop;
      S.PostCond = true;
      ++I;
      S.Kids.push_back(parseStmt(I, E));
      if (I < E && T[I].isIdent() && T[I].Text == "while") {
        ++I;
        auto H = parseHeader(I, E);
        S.HdrB = H.first;
        S.HdrE = H.second;
      }
      if (I < E && T[I].isPunct(";"))
        ++I;
      return S;
    }
    if (T[I].isIdent() && W == "switch") {
      S.Kind = Stmt::Switch;
      ++I;
      auto H = parseHeader(I, E);
      S.HdrB = H.first;
      S.HdrE = H.second;
      S.Kids.push_back(parseStmt(I, E));
      return S;
    }
    if (T[I].isIdent() && (W == "case" || W == "default")) {
      ++I;
      while (I < E && !T[I].isPunct(":")) {
        if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{"))
          I = matchForward(T, I, E);
        ++I;
      }
      if (I < E)
        ++I; // The ':'.
      S.Kind = Stmt::Expr;
      return S;
    }
    if (T[I].isIdent() && W == "return") {
      S.Kind = Stmt::Return;
      ++I;
      S.ExprB = I;
      S.ExprE = scanToSemi(I, E, S);
      return S;
    }
    if (T[I].isIdent() && (W == "break" || W == "continue")) {
      S.Kind = W == "break" ? Stmt::Break : Stmt::Continue;
      ++I;
      if (I < E && T[I].isPunct(";"))
        ++I;
      return S;
    }
    if (T[I].isIdent() && W == "try") {
      // try/catch approximated as straight-line composition of the blocks.
      S.Kind = Stmt::Seq;
      ++I;
      S.Kids.push_back(parseStmt(I, E));
      while (I < E && T[I].isIdent() && T[I].Text == "catch") {
        ++I;
        parseHeader(I, E);
        S.Kids.push_back(parseStmt(I, E));
      }
      return S;
    }
    if (T[I].isPunct(";")) { // Empty statement.
      ++I;
      S.Kind = Stmt::Expr;
      return S;
    }
    // Label?  ident ':' (not '::', which is one token).
    if (T[I].isIdent() && I + 1 < E && T[I + 1].isPunct(":") &&
        !isKeyword(W)) {
      I += 2;
      return parseStmt(I, E);
    }
    // Expression statement (includes declarations).
    S.Kind = Stmt::Expr;
    S.ExprB = I;
    S.ExprE = scanToSemi(I, E, S);
    return S;
  }

  /// Advances \p I to just past the terminating ';' of an expression
  /// statement, recording each top-level braced region as a Lambda kid of
  /// \p S and as a hole in S's token range. Parens are NOT jumped: a ';'
  /// can only hide inside braces (lambda bodies), which are.
  size_t scanToSemi(size_t &I, size_t E, Stmt &S) {
    while (I < E) {
      if (T[I].isPunct(";")) {
        size_t SemIdx = I;
        ++I;
        return SemIdx;
      }
      if (T[I].isPunct("{")) {
        size_t Close = matchForward(T, I, E);
        Stmt L;
        L.Kind = Stmt::Lambda;
        L.Line = T[I].Line;
        L.Kids.push_back(parseSeq(I + 1, Close));
        S.Kids.push_back(std::move(L));
        S.Holes.push_back({I, Close + 1});
        I = Close < E ? Close + 1 : E;
        continue;
      }
      ++I;
    }
    return E;
  }
};

/// Iterates tokens of [B, E) minus \p Holes, invoking \p Fn(index).
void forEachTok(size_t B, size_t E,
                const std::vector<std::pair<size_t, size_t>> &Holes,
                const std::function<void(size_t)> &Fn) {
  size_t H = 0;
  for (size_t I = B; I < E; ++I) {
    while (H < Holes.size() && Holes[H].second <= I)
      ++H;
    if (H < Holes.size() && I >= Holes[H].first) {
      I = Holes[H].second - 1; // Loop ++ lands on the first post-hole token.
      continue;
    }
    Fn(I);
  }
}

//===----------------------------------------------------------------------===//
// Check engine
//===----------------------------------------------------------------------===//

class Checker {
public:
  Checker(const std::vector<const ParsedFile *> &Targets, const Registry &Reg)
      : Targets(Targets), Reg(Reg) {}

  std::vector<Diagnostic> run() {
    for (const ParsedFile *PF : Targets)
      for (const FunctionInfo &F : PF->Funcs)
        if (F.hasBody())
          checkFunction(*PF, F);
    finalize();
    return std::move(Diags);
  }

private:
  const std::vector<const ParsedFile *> &Targets;
  const Registry &Reg;
  std::vector<Diagnostic> Diags;
  std::set<std::string> Emitted; // rule|file|line|func dedup.

  // Per-function scratch, rebuilt by checkFunction.
  const ParsedFile *PF = nullptr;
  const FunctionInfo *F = nullptr;
  Annotations FAnn; // Effective annotations: definition + header decls.
  std::map<std::string, bool> PmVars; // name -> IsPtr (params + locals).
  std::set<std::string> LocalConsts;

  /// Annotations usually live on the in-class declaration, not the
  /// out-of-line definition; union the definition's own set with every
  /// declaration registered under the same qualified name.
  Annotations effectiveAnn(const FunctionInfo &Fn) const {
    Annotations A = Fn.Ann;
    auto It = Reg.AnnByQual.find(Fn.QualName);
    if (It != Reg.AnnByQual.end())
      A.merge(It->second);
    return A;
  }

  void checkFunction(const ParsedFile &File, const FunctionInfo &Fn) {
    PF = &File;
    F = &Fn;
    FAnn = effectiveAnn(Fn);
    collectLocals();

    StmtParser P(File.Lex.Toks);
    Stmt Body = P.parseSeq(Fn.BodyBegin, Fn.BodyEnd);

    checkPmRawStore();
    checkHtmUnsafe();
    checkFlushWithoutDrain(Body);
    checkUnboundedTxWrites(Body, /*InLambda=*/false);
  }

  void diag(const char *Rule, const LexedFile &Where, int Line,
            const std::string &Func, std::string Msg) {
    if (isSuppressed(Where, Rule, Line))
      return;
    std::string Key = std::string(Rule) + "|" + Where.Path + "|" +
                      std::to_string(Line) + "|" + Func;
    if (!Emitted.insert(Key).second)
      return;
    Diags.push_back(Diagnostic{Rule, Where.Path, Line, Func, std::move(Msg),
                               /*Baselined=*/false});
  }

  /// `// crafty-lint: suppress(<rule>) <why>` on the same line or the line
  /// directly above silences the finding.
  bool isSuppressed(const LexedFile &Where, const char *Rule, int Line) const {
    const std::string Needle = std::string("crafty-lint: suppress(") + Rule +
                               ")";
    for (const Comment &C : Where.Comments) {
      if (C.Line != Line && C.Line != Line - 1)
        continue;
      if (C.Text.find(Needle) != std::string::npos)
        return true;
    }
    return false;
  }

  void finalize() {
    std::sort(Diags.begin(), Diags.end(),
              [](const Diagnostic &A, const Diagnostic &B) {
                if (A.File != B.File)
                  return A.File < B.File;
                if (A.Line != B.Line)
                  return A.Line < B.Line;
                return A.Rule < B.Rule;
              });
  }

  //===--------------------------------------------------------------------===//
  // Local declaration scan
  //===--------------------------------------------------------------------===//

  void collectLocals() {
    PmVars.clear();
    LocalConsts.clear();
    for (const PmVar &V : F->PmParams)
      PmVars[V.Name] = V.IsPtr;

    const std::vector<Token> &T = PF->Lex.Toks;
    for (size_t I = F->BodyBegin; I < F->BodyEnd; ++I) {
      if (!T[I].isIdent())
        continue;
      if (T[I].Text == "CRAFTY_PMEM") {
        bool IsPtr = false;
        std::string Name;
        for (size_t J = I + 1; J < F->BodyEnd; ++J) {
          if (T[J].isPunct(";") || T[J].isPunct("=") || T[J].isPunct("{") ||
              T[J].isPunct("("))
            break;
          if (T[J].isPunct("*"))
            IsPtr = true;
          if (T[J].isIdent() && !isKeyword(T[J].Text))
            Name = T[J].Text;
        }
        if (!Name.empty())
          PmVars[Name] = IsPtr;
      } else if (T[I].Text == "const" || T[I].Text == "constexpr") {
        std::string Name;
        for (size_t J = I + 1; J < F->BodyEnd; ++J) {
          if (T[J].isPunct(";") || T[J].isPunct("=") || T[J].isPunct("(") ||
              T[J].isPunct("{") || T[J].isPunct(":") || T[J].isPunct(")"))
            break;
          if (T[J].isIdent() && !isKeyword(T[J].Text))
            Name = T[J].Text;
        }
        if (!Name.empty())
          LocalConsts.insert(Name);
      }
    }
  }

  bool isConstName(const std::string &N) const {
    return LocalConsts.count(N) || PF->ConstNames.count(N) ||
           Reg.ConstNames.count(N) || isAllCapsName(N) || isKConstName(N);
  }

  //===--------------------------------------------------------------------===//
  // Rule 1: pm-raw-store
  //===--------------------------------------------------------------------===//

  /// One member/subscript step in an lvalue chain.
  struct Access {
    enum Op { Dot, Arrow, Index } Kind;
    std::string Field; // Empty for Index.
  };

  struct Lvalue {
    bool Valid = false;
    int Derefs = 0; // Leading '*' count.
    std::string Root;
    std::vector<Access> Chain;
  };

  Lvalue parseLvalue(const std::vector<Token> &T, size_t B, size_t E) const {
    Lvalue L;
    size_t I = B;
    while (I < E && (T[I].isPunct("*") || T[I].isPunct("(") ||
                     T[I].isPunct("&"))) {
      if (T[I].isPunct("*"))
        ++L.Derefs;
      ++I;
    }
    if (I >= E || !T[I].isIdent())
      return L;
    L.Root = T[I].Text;
    ++I;
    while (I < E) {
      if (T[I].isPunct("->") || T[I].isPunct(".")) {
        Access A;
        A.Kind = T[I].isPunct("->") ? Access::Arrow : Access::Dot;
        if (I + 1 < E && T[I + 1].isIdent()) {
          A.Field = T[I + 1].Text;
          I += 2;
        } else {
          ++I;
        }
        L.Chain.push_back(A);
      } else if (T[I].isPunct("[")) {
        L.Chain.push_back(Access{Access::Index, ""});
        size_t Close = matchForward(T, I, E);
        I = Close < E ? Close + 1 : E;
      } else {
        ++I; // ')' closers from stripped '(' prefixes, etc.
      }
    }
    L.Valid = true;
    return L;
  }

  /// Decides whether storing into \p L hits persistent memory, and why.
  /// \p ForMemWrite relaxes the pointer rules: a pm pointer passed as a
  /// memcpy/memset destination is written through even with no deref.
  std::string classifyPmStore(const Lvalue &L, bool ForMemWrite) const {
    if (!L.Valid)
      return "";
    auto PV = PmVars.find(L.Root);
    if (PV != PmVars.end()) {
      if (!PV->second) // Whole variable is persistent.
        return "CRAFTY_PMEM variable '" + L.Root + "'";
      bool Through = L.Derefs > 0 || ForMemWrite;
      if (!Through && !L.Chain.empty() &&
          (L.Chain[0].Kind == Access::Index ||
           L.Chain[0].Kind == Access::Arrow))
        Through = true;
      if (Through)
        return "CRAFTY_PMEM pointer '" + L.Root + "'";
      return ""; // Re-pointing the variable itself is a volatile store.
    }
    for (size_t I = 0; I < L.Chain.size(); ++I) {
      const Access &A = L.Chain[I];
      if (A.Kind == Access::Index || A.Field.empty())
        continue;
      if (!Reg.PmFieldNames.count(A.Field))
        continue;
      auto FP = Reg.PmFieldIsPtr.find(A.Field);
      bool FieldIsPtr = FP != Reg.PmFieldIsPtr.end() && FP->second;
      if (FieldIsPtr) {
        // Writing *through* the pointer field: a later chain step
        // dereferences it, a leading '*' applies to it as the final
        // element (e.g. `*R.Slots = v`), or it is a memcpy destination.
        if (I + 1 < L.Chain.size() || ForMemWrite ||
            (L.Derefs > 0 && I + 1 == L.Chain.size()))
          return "CRAFTY_PMEM pointer field '" + A.Field + "'";
        continue; // Re-pointing the field via '.', volatile struct copy etc.
      }
      // Non-pointer persistent field: only '->' access proves the object
      // lives in the pool (a '.' store may target a stack copy).
      if (A.Kind == Access::Arrow && I + 1 >= L.Chain.size())
        return "persistent field '" + A.Field + "'";
    }
    return "";
  }

  void checkPmRawStore() {
    const std::vector<Token> &T = PF->Lex.Toks;
    static const std::set<std::string> AssignOps = {
        "=",  "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "<<=", ">>=",
    };
    for (size_t I = F->BodyBegin; I < F->BodyEnd; ++I) {
      const Token &Tk = T[I];
      // memcpy-family destination argument.
      if (Tk.isIdent() && memWriteFns().count(Tk.Text) && I + 1 < F->BodyEnd &&
          T[I + 1].isPunct("(")) {
        size_t ArgB = I + 2;
        size_t Depth = 0;
        size_t ArgE = ArgB;
        while (ArgE < F->BodyEnd) {
          if (T[ArgE].isPunct("(") || T[ArgE].isPunct("[")) {
            ++Depth;
          } else if (T[ArgE].isPunct(")") || T[ArgE].isPunct("]")) {
            if (Depth == 0)
              break;
            --Depth;
          } else if (T[ArgE].isPunct(",") && Depth == 0) {
            break;
          }
          ++ArgE;
        }
        size_t LvB = ArgB;
        while (LvB < ArgE && T[LvB].isPunct("&"))
          ++LvB; // &obj->field is the same lvalue with an explicit &.
        Lvalue L = parseLvalue(T, LvB, ArgE);
        std::string What = classifyPmStore(L, /*ForMemWrite=*/true);
        if (!What.empty())
          diag(RulePmRawStore, PF->Lex, Tk.Line, F->QualName,
               Tk.Text + " into " + What +
                   " bypasses the Crafty undo log; persistent writes must go "
                   "through the transactional store API (HtmTx::store / "
                   "TxnContext::store) or persistDirect during "
                   "format/recovery");
        continue;
      }
      if (!AssignOps.count(Tk.Text) || Tk.Kind != TokKind::Punct)
        continue;
      // Skip lambda-capture '[=]' and defaulted-parameter '=' noise.
      if (I > F->BodyBegin &&
          (T[I - 1].isPunct("[") || T[I - 1].isPunct(",")) )
        continue;
      // Walk the left-hand side back to the nearest statement boundary.
      size_t B = I;
      while (B > F->BodyBegin) {
        const Token &Pt = T[B - 1];
        if (Pt.isPunct(";") || Pt.isPunct("{") || Pt.isPunct("}") ||
            Pt.isPunct("(") || Pt.isPunct(")") || Pt.isPunct(",") ||
            (Pt.Kind == TokKind::Punct && AssignOps.count(Pt.Text)))
          break;
        --B;
      }
      // A declaration with CRAFTY_PMEM on the left is initializing the
      // annotated variable itself, not storing through it.
      bool IsPmDecl = false;
      for (size_t J = B; J < I; ++J)
        if (T[J].isIdent() && T[J].Text == "CRAFTY_PMEM")
          IsPmDecl = true;
      if (IsPmDecl)
        continue;
      Lvalue L = parseLvalue(T, B, I);
      std::string What = classifyPmStore(L, /*ForMemWrite=*/false);
      if (!What.empty())
        diag(RulePmRawStore, PF->Lex, Tk.Line, F->QualName,
             "raw store through " + What +
                 " bypasses the Crafty undo log; persistent writes must go "
                 "through the transactional store API (HtmTx::store / "
                 "TxnContext::store) or persistDirect during "
                 "format/recovery");
    }
  }

  //===--------------------------------------------------------------------===//
  // Rule 2: htm-unsafe-call
  //===--------------------------------------------------------------------===//

  void checkHtmUnsafe() {
    if (!FAnn.TxBody)
      return;
    std::set<const FunctionInfo *> Visited;
    std::vector<std::string> Chain{F->QualName};
    walkTx(*F, Visited, Chain, /*Depth=*/0);
  }

  void walkTx(const FunctionInfo &Fn, std::set<const FunctionInfo *> &Visited,
              std::vector<std::string> &Chain, int Depth) {
    if (Depth > 32 || !Visited.insert(&Fn).second)
      return;
    const std::vector<Token> &T = Fn.Owner->Toks;
    // Owner LexedFile belongs to some ParsedFile; comments for suppression
    // come from it directly.
    for (const CallSite &S : collectSites(T, Fn.BodyBegin, Fn.BodyEnd)) {
      if (S.Kind != CallSite::Call) {
        const char *What = S.Kind == CallSite::KwNew      ? "operator new"
                           : S.Kind == CallSite::KwDelete ? "operator delete"
                                                          : "throw";
        emitUnsafe(Fn, S.Line, What,
                   std::string(What) +
                       " allocates or unwinds, which aborts hardware "
                       "transactions",
                   Chain);
        continue;
      }
      Annotations Ann =
          Reg.lookupCall(!S.ClassHint.empty() ? S.ClassHint : Fn.ClassName,
                         S.Name);
      if (Ann.HtmUnsafe) {
        emitUnsafe(Fn, S.Line, S.Name,
                   "'" + S.Name + "' is annotated CRAFTY_HTM_UNSAFE", Chain);
        continue;
      }
      if (Ann.TxSafe || Ann.TxStoreApi || Ann.DrainApi)
        continue; // Trusted barrier; do not descend.
      // Descend into known definitions. Without a `Class::` qualifier the
      // receiver's type is unknown at token level, so descend only into
      // same-class methods and free functions -- a bare `insert(...)` in
      // class A must not pull in B::insert just because the names match.
      auto DIt = Reg.DefsBySimple.find(S.Name);
      if (DIt != Reg.DefsBySimple.end()) {
        std::vector<const FunctionInfo *> Cands;
        for (const FunctionInfo *D : DIt->second)
          if (!S.ClassHint.empty()
                  ? D->ClassName == S.ClassHint
                  : (D->ClassName.empty() || D->ClassName == Fn.ClassName))
            Cands.push_back(D);
        if (!Cands.empty()) {
          for (const FunctionInfo *D : Cands) {
            Chain.push_back(D->QualName);
            walkTx(*D, Visited, Chain, Depth + 1);
            Chain.pop_back();
          }
          continue;
        }
      }
      if (S.IsFree && builtinUnsafe().count(S.Name))
        emitUnsafe(Fn, S.Line, S.Name,
                   "'" + S.Name +
                       "' may allocate, block or enter the kernel, any of "
                       "which aborts hardware transactions",
                   Chain);
    }
  }

  void emitUnsafe(const FunctionInfo &Site, int Line, const std::string &What,
                  const std::string &Why, const std::vector<std::string> &Chain) {
    std::ostringstream Msg;
    Msg << "transaction body '" << Chain.front() << "' reaches HTM-unsafe "
        << "operation '" << What << "'";
    if (Chain.size() > 1) {
      Msg << " via ";
      for (size_t I = 0; I < Chain.size(); ++I) {
        if (I)
          Msg << " -> ";
        Msg << Chain[I];
      }
    }
    Msg << ": " << Why
        << "; hoist it out of the transaction or mark an intentional "
           "boundary CRAFTY_TX_SAFE";
    // Attribute to the tx-body root, locate at the offending call site.
    diagAt(Site, RuleHtmUnsafeCall, Line, Chain.front(), Msg.str());
  }

  /// diag() variant that resolves the LexedFile from a (possibly non-target)
  /// function's Owner pointer.
  void diagAt(const FunctionInfo &Site, const char *Rule, int Line,
              const std::string &Func, std::string Msg) {
    diag(Rule, *Site.Owner, Line, Func, std::move(Msg));
  }

  //===--------------------------------------------------------------------===//
  // Rule 3: flush-without-drain
  //===--------------------------------------------------------------------===//

  struct FState {
    bool Reach = true;
    bool Pending = false;
    int FlushLine = 0;
    std::string FlushName;
  };

  static FState joinF(const FState &A, const FState &B) {
    if (!A.Reach)
      return B;
    if (!B.Reach)
      return A;
    FState R;
    R.Pending = A.Pending || B.Pending;
    const FState &Src = A.Pending ? A : B;
    R.FlushLine = Src.FlushLine;
    R.FlushName = Src.FlushName;
    return R;
  }

  struct LoopCtx {
    std::vector<FState> Breaks;
    std::vector<FState> Continues;
  };

  void checkFlushWithoutDrain(const Stmt &Body) {
    if (FAnn.DrainDeferred || FAnn.FlushApi || FAnn.DrainApi)
      return; // Primitive or deliberately-deferred (HTM commit fences).
    std::vector<LoopCtx *> Loops;
    FState Out = flowStmt(Body, FState{}, Loops);
    if (Out.Reach && Out.Pending)
      diag(RuleFlushWithoutDrain, PF->Lex, Out.FlushLine, F->QualName,
           "cache-line write-back '" + Out.FlushName + "' (line " +
               std::to_string(Out.FlushLine) +
               ") can reach the end of '" + F->QualName +
               "' with no drain; clwb only *schedules* the write-back -- "
               "call drain()/persistBarrier(), or mark the function "
               "CRAFTY_DRAIN_DEFERRED if the next HTM commit fence is the "
               "drain");
  }

  FState applyFlow(FState S, size_t B, size_t E,
                   const std::vector<std::pair<size_t, size_t>> &Holes) {
    const std::vector<Token> &T = PF->Lex.Toks;
    forEachTok(B, E, Holes, [&](size_t I) {
      if (!T[I].isIdent() || I + 1 >= PF->Lex.Toks.size() ||
          !T[I + 1].isPunct("("))
        return;
      if (isKeyword(T[I].Text))
        return;
      std::string ClassHint;
      if (I >= 2 && T[I - 1].isPunct("::") && T[I - 2].isIdent())
        ClassHint = T[I - 2].Text;
      Annotations Ann = Reg.lookupCall(
          !ClassHint.empty() ? ClassHint : F->ClassName, T[I].Text);
      bool Flush = Ann.FlushApi || isRawFlushName(T[I].Text);
      bool Drain = Ann.DrainApi || isRawDrainName(T[I].Text);
      if (Flush) {
        S.Pending = true;
        S.FlushLine = T[I].Line;
        S.FlushName = T[I].Text;
      }
      if (Drain)
        S.Pending = false;
    });
    return S;
  }

  FState flowStmt(const Stmt &S, FState In, std::vector<LoopCtx *> &Loops) {
    switch (S.Kind) {
    case Stmt::Seq: {
      FState Cur = In;
      for (const Stmt &K : S.Kids)
        Cur = flowStmt(K, Cur, Loops);
      return Cur;
    }
    case Stmt::Expr:
      return applyFlow(In, S.ExprB, S.ExprE, S.Holes);
    case Stmt::Return: {
      FState R = applyFlow(In, S.ExprB, S.ExprE, S.Holes);
      if (R.Reach && R.Pending)
        diag(RuleFlushWithoutDrain, PF->Lex, R.FlushLine, F->QualName,
             "cache-line write-back '" + R.FlushName + "' (line " +
                 std::to_string(R.FlushLine) + ") can leave '" +
                 F->QualName + "' through the return at line " +
                 std::to_string(S.Line) +
                 " with no drain; clwb only *schedules* the write-back -- "
                 "call drain()/persistBarrier(), or mark the function "
                 "CRAFTY_DRAIN_DEFERRED if the next HTM commit fence is "
                 "the drain");
      R.Reach = false;
      return R;
    }
    case Stmt::Break: {
      if (!Loops.empty())
        Loops.back()->Breaks.push_back(In);
      FState R = In;
      R.Reach = false;
      return R;
    }
    case Stmt::Continue: {
      if (!Loops.empty())
        Loops.back()->Continues.push_back(In);
      FState R = In;
      R.Reach = false;
      return R;
    }
    case Stmt::If: {
      FState H = applyFlow(In, S.HdrB, S.HdrE, {});
      FState A = S.Kids.empty() ? H : flowStmt(S.Kids[0], H, Loops);
      FState B = S.Kids.size() > 1 ? flowStmt(S.Kids[1], H, Loops) : H;
      return joinF(A, B);
    }
    case Stmt::Switch: {
      FState H = applyFlow(In, S.HdrB, S.HdrE, {});
      LoopCtx Ctx; // Breaks inside a switch exit the switch.
      Loops.push_back(&Ctx);
      FState B = S.Kids.empty() ? H : flowStmt(S.Kids[0], H, Loops);
      Loops.pop_back();
      FState Out = joinF(H, B);
      for (const FState &BS : Ctx.Breaks)
        Out = joinF(Out, BS);
      return Out;
    }
    case Stmt::Loop: {
      LoopCtx Ctx;
      Loops.push_back(&Ctx);
      FState Out;
      if (!S.PostCond) {
        FState H = applyFlow(In, S.HdrB, S.HdrE, {});
        FState B1 = S.Kids.empty() ? H : flowStmt(S.Kids[0], H, Loops);
        for (const FState &CS : Ctx.Continues)
          B1 = joinF(B1, CS);
        Ctx.Continues.clear();
        // Second pass so a flush late in iteration N reaches the header
        // and body of iteration N+1 (fixpoint for a boolean lattice).
        FState H2 = applyFlow(B1, S.HdrB, S.HdrE, {});
        FState B2 = S.Kids.empty() ? H2
                                   : flowStmt(S.Kids[0], joinF(H, H2), Loops);
        for (const FState &CS : Ctx.Continues)
          B2 = joinF(B2, CS);
        Out = joinF(H, applyFlow(joinF(B1, B2), S.HdrB, S.HdrE, {}));
      } else {
        FState B1 = S.Kids.empty() ? In : flowStmt(S.Kids[0], In, Loops);
        for (const FState &CS : Ctx.Continues)
          B1 = joinF(B1, CS);
        Ctx.Continues.clear();
        FState H1 = applyFlow(B1, S.HdrB, S.HdrE, {});
        FState B2 = S.Kids.empty() ? H1 : flowStmt(S.Kids[0], H1, Loops);
        for (const FState &CS : Ctx.Continues)
          B2 = joinF(B2, CS);
        Out = applyFlow(joinF(B1, B2), S.HdrB, S.HdrE, {});
      }
      Loops.pop_back();
      for (const FState &BS : Ctx.Breaks)
        Out = joinF(Out, BS);
      return Out;
    }
    case Stmt::Lambda:
      // A lambda body executes elsewhere (often as the transaction body
      // under an HTM commit fence); its flushes are not part of this
      // function's flow. Rules 1, 2 and 4 still see inside it.
      return In;
    }
    return In;
  }

  //===--------------------------------------------------------------------===//
  // Rule 4: unbounded-tx-writes
  //===--------------------------------------------------------------------===//

  void checkUnboundedTxWrites(const Stmt &S, bool InLambda) {
    if (S.Kind == Stmt::Loop && !S.Kids.empty()) {
      if (subtreeHasTxStore(S.Kids[0]) && !loopBounded(S) &&
          !subtreeHasTxBound(S))
        diag(RuleUnboundedTxWrites, PF->Lex, S.Line, F->QualName,
             "loop at line " + std::to_string(S.Line) +
                 " issues transactional stores with no visible iteration "
                 "bound; HTM write capacity is finite (the reason for "
                 "KvConfig::BatchTxnLimit) -- chunk the loop or assert the "
                 "bound with CRAFTY_TX_BOUND(n)");
    }
    for (const Stmt &K : S.Kids)
      checkUnboundedTxWrites(K, InLambda || S.Kind == Stmt::Lambda);
  }

  /// `std::atomic<T>::store` collides with the TX-store simple name; it is
  /// recognized (and ignored) by the std::memory_order argument every
  /// atomic store in this codebase spells out.
  static bool isAtomicStoreCall(const std::vector<Token> &T, size_t LParen) {
    size_t Close = matchForward(T, LParen, T.size());
    for (size_t J = LParen + 1; J < Close && J < T.size(); ++J)
      if (T[J].isIdent() && T[J].Text.rfind("memory_order", 0) == 0)
        return true;
    return false;
  }

  /// Does this subtree directly issue CRAFTY_TX_STORE_API calls? Lambda
  /// bodies are excluded: a lambda is a transaction-body boundary (the
  /// enclosing loop typically spans *multiple* transactions, as in
  /// KvShard::setBatch), and its own loops are visited separately.
  bool subtreeHasTxStore(const Stmt &S) const {
    if (S.Kind == Stmt::Lambda)
      return false;
    if (S.Kind == Stmt::Expr || S.Kind == Stmt::Return) {
      const std::vector<Token> &T = PF->Lex.Toks;
      bool Found = false;
      forEachTok(S.ExprB, S.ExprE, S.Holes, [&](size_t I) {
        if (Found || !T[I].isIdent() || I + 1 >= T.size() ||
            !T[I + 1].isPunct("("))
          return;
        std::string ClassHint;
        if (I >= 2 && T[I - 1].isPunct("::") && T[I - 2].isIdent())
          ClassHint = T[I - 2].Text;
        Annotations Ann = Reg.lookupCall(
            !ClassHint.empty() ? ClassHint : F->ClassName, T[I].Text);
        if (Ann.TxStoreApi && !isAtomicStoreCall(T, I + 1))
          Found = true;
      });
      if (Found)
        return true;
    }
    for (const Stmt &K : S.Kids)
      if (subtreeHasTxStore(K))
        return true;
    return false;
  }

  bool subtreeHasTxBound(const Stmt &S) const {
    const std::vector<Token> &T = PF->Lex.Toks;
    if (S.Kind == Stmt::Lambda)
      return false;
    auto RangeHas = [&](size_t B, size_t E,
                        const std::vector<std::pair<size_t, size_t>> &Holes) {
      bool Found = false;
      forEachTok(B, E, Holes, [&](size_t I) {
        if (T[I].isIdent() && T[I].Text == "CRAFTY_TX_BOUND")
          Found = true;
      });
      return Found;
    };
    if (RangeHas(S.HdrB, S.HdrE, {}) || RangeHas(S.ExprB, S.ExprE, S.Holes))
      return true;
    for (const Stmt &K : S.Kids)
      if (subtreeHasTxBound(K))
        return true;
    return false;
  }

  /// A loop is visibly bounded when its condition compares against a
  /// compile-time-constant-looking expression: a literal, a known
  /// const/constexpr/enum name, kCamelCase or ALL_CAPS.
  bool loopBounded(const Stmt &S) const {
    const std::vector<Token> &T = PF->Lex.Toks;
    size_t B = S.HdrB, E = S.HdrE;
    if (B >= E)
      return false; // for(;;) / empty condition: unbounded.
    // For a `for`, isolate the condition between the depth-0 semicolons;
    // for a range-for, the range expression after the depth-0 ':'.
    std::vector<size_t> Semis;
    size_t Colon = 0;
    size_t Depth = 0;
    for (size_t I = B; I < E; ++I) {
      if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{")) {
        ++Depth;
      } else if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
        if (Depth)
          --Depth;
      } else if (Depth == 0 && T[I].isPunct(";")) {
        Semis.push_back(I);
      } else if (Depth == 0 && T[I].isPunct(":") && !Colon) {
        Colon = I;
      }
    }
    if (Semis.size() >= 2) {
      B = Semis[0] + 1;
      E = Semis[1];
    } else if (Semis.empty() && Colon) {
      // Range-for: bounded iff the range expression itself is const-like
      // (e.g. a fixed std::array constant) -- rarely provable; usually the
      // fix is CRAFTY_TX_BOUND.
      return constLikeRange(Colon + 1, E);
    }
    if (B >= E)
      return false;
    // Any depth-0 comparison with a const-like side counts as a bound.
    Depth = 0;
    size_t SideB = B;
    static const std::set<std::string> CmpOps = {"<", "<=", ">", ">=", "!="};
    static const std::set<std::string> SplitOps = {"&&", "||", ","};
    for (size_t I = B; I <= E; ++I) {
      bool AtEnd = I == E;
      if (!AtEnd) {
        if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{")) {
          ++Depth;
          continue;
        }
        if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
          if (Depth)
            --Depth;
          continue;
        }
        if (Depth != 0)
          continue;
      }
      bool IsCmp = !AtEnd && T[I].Kind == TokKind::Punct &&
                   CmpOps.count(T[I].Text);
      bool IsSplit = AtEnd || (T[I].Kind == TokKind::Punct &&
                               SplitOps.count(T[I].Text));
      if (IsCmp) {
        if (constLikeRange(SideB, I))
          return true;
        SideB = I + 1;
      } else if (IsSplit) {
        if (SideB > B && constLikeRange(SideB, I))
          return true; // Right side of the last comparison in this clause.
        SideB = I + 1;
      }
    }
    return false;
  }

  /// Every identifier is const-like and only arithmetic/grouping appears.
  bool constLikeRange(size_t B, size_t E) const {
    const std::vector<Token> &T = PF->Lex.Toks;
    if (B >= E)
      return false;
    static const std::set<std::string> OkPunct = {"+", "-", "*", "/", "%",
                                                  "(", ")", "<<", ">>", "::"};
    bool SawOperand = false;
    for (size_t I = B; I < E; ++I) {
      const Token &Tk = T[I];
      if (Tk.Kind == TokKind::Number) {
        SawOperand = true;
        continue;
      }
      if (Tk.isIdent()) {
        if (Tk.Text == "sizeof" || isConstName(Tk.Text)) {
          SawOperand = true;
          continue;
        }
        return false;
      }
      if (Tk.Kind == TokKind::Punct && OkPunct.count(Tk.Text))
        continue;
      return false;
    }
    return SawOperand;
  }
};

} // namespace

std::vector<Diagnostic> runChecks(const std::vector<const ParsedFile *> &Targets,
                                  const Registry &Reg) {
  Checker C(Targets, Reg);
  return C.run();
}

} // namespace craftylint
