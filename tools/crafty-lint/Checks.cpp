//===- tools/crafty-lint/Checks.cpp - The analyzer rules ------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Checks.h"

#include "Cfg.h"
#include "Dataflow.h"
#include "Stmt.h"
#include "Syntax.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

namespace craftylint {

namespace {

const char *const RulePmRawStore = "pm-raw-store";
const char *const RuleHtmUnsafeCall = "htm-unsafe-call";
const char *const RuleFlushWithoutDrain = "flush-without-drain";
const char *const RuleUnboundedTxWrites = "unbounded-tx-writes";
const char *const RulePersistOrdering = "persist-ordering";
const char *const RulePmEscape = "pm-escape";
const char *const RuleTxCapacity = "tx-capacity";

//===----------------------------------------------------------------------===//
// flush-without-drain dataflow state
//===----------------------------------------------------------------------===//

/// "A write-back was scheduled and no fence has retired it yet", with the
/// scheduling site for the diagnostic.
struct FlushState {
  bool Pending = false;
  int FlushLine = 0;
  std::string FlushName;
};

//===----------------------------------------------------------------------===//
// persist-ordering dataflow state
//===----------------------------------------------------------------------===//

/// One not-yet-durable persistent store: where it happened and whether its
/// line has at least been flushed (scheduled) since.
struct PendEntry {
  int Line = 0;
  bool Flushed = false;
};

/// Entity key (printable lvalue spelling) -> pending store.
using PersistState = std::map<std::string, PendEntry>;

//===----------------------------------------------------------------------===//
// Check engine
//===----------------------------------------------------------------------===//

class Checker {
public:
  Checker(const std::vector<const ParsedFile *> &Targets,
          const Summaries &Sums, const CheckOptions &Opt)
      : Targets(Targets), Sums(Sums), Reg(Sums.registry()), Opt(Opt) {}

  CheckResult run() {
    for (const ParsedFile *PF : Targets)
      for (const FunctionInfo &F : PF->Funcs)
        if (F.hasBody())
          checkFunction(*PF, F);
    finalize();
    CheckResult R;
    R.Diags = std::move(Diags);
    R.Capacities = std::move(Capacities);
    return R;
  }

private:
  const std::vector<const ParsedFile *> &Targets;
  const Summaries &Sums;
  const Registry &Reg;
  const CheckOptions &Opt;
  std::vector<Diagnostic> Diags;
  std::vector<CapacityEntry> Capacities;
  std::set<std::string> Emitted; // rule|file|line|func dedup.

  // Per-function scratch, rebuilt by checkFunction.
  const ParsedFile *PF = nullptr;
  const FunctionInfo *F = nullptr;
  Annotations FAnn; // Effective annotations: definition + header decls.
  std::map<std::string, bool> PmVars; // name -> IsPtr (params + locals).
  std::set<std::string> LocalConsts;

  StoreContext storeCtx() const {
    StoreContext Ctx;
    Ctx.Reg = &Reg;
    Ctx.PmVars = &PmVars;
    Ctx.ClassName = F->ClassName;
    return Ctx;
  }

  void checkFunction(const ParsedFile &File, const FunctionInfo &Fn) {
    PF = &File;
    F = &Fn;
    FAnn = Sums.effectiveAnn(Fn);
    collectLocals();

    const FuncIR *IR = Sums.ir(&Fn);
    if (!IR)
      return; // Parsed after summaries were computed; cannot happen here.

    checkPmRawStore();
    checkHtmUnsafe();
    checkFlushWithoutDrain(*IR);
    checkUnboundedTxWrites(IR->Tree, /*InLambda=*/false);
    checkPersistOrdering(*IR);
    checkPmEscape();
    checkTxCapacity();
  }

  void diag(const char *Rule, const LexedFile &Where, int Line,
            const std::string &Func, std::string Msg) {
    if (isSuppressed(Where, Rule, Line))
      return;
    std::string Key = std::string(Rule) + "|" + Where.Path + "|" +
                      std::to_string(Line) + "|" + Func;
    if (!Emitted.insert(Key).second)
      return;
    Diags.push_back(Diagnostic{Rule, Where.Path, Line, Func, std::move(Msg),
                               /*Baselined=*/false});
  }

  /// `// crafty-lint: suppress(<rule>) <why>` on the same line or the line
  /// directly above silences the finding.
  bool isSuppressed(const LexedFile &Where, const char *Rule, int Line) const {
    const std::string Needle = std::string("crafty-lint: suppress(") + Rule +
                               ")";
    for (const Comment &C : Where.Comments) {
      if (C.Line != Line && C.Line != Line - 1)
        continue;
      if (C.Text.find(Needle) != std::string::npos)
        return true;
    }
    return false;
  }

  void finalize() {
    std::sort(Diags.begin(), Diags.end(),
              [](const Diagnostic &A, const Diagnostic &B) {
                if (A.File != B.File)
                  return A.File < B.File;
                if (A.Line != B.Line)
                  return A.Line < B.Line;
                return A.Rule < B.Rule;
              });
  }

  //===--------------------------------------------------------------------===//
  // Local declaration scan
  //===--------------------------------------------------------------------===//

  void collectLocals() {
    PmVars.clear();
    LocalConsts.clear();
    for (const PmVar &V : F->PmParams)
      PmVars[V.Name] = V.IsPtr;

    const std::vector<Token> &T = PF->Lex.Toks;
    for (size_t I = F->BodyBegin; I < F->BodyEnd; ++I) {
      if (!T[I].isIdent())
        continue;
      if (T[I].Text == "CRAFTY_PMEM") {
        bool IsPtr = false;
        std::string Name;
        for (size_t J = I + 1; J < F->BodyEnd; ++J) {
          if (T[J].isPunct(";") || T[J].isPunct("=") || T[J].isPunct("{") ||
              T[J].isPunct("("))
            break;
          if (T[J].isPunct("*"))
            IsPtr = true;
          if (T[J].isIdent() && !isKeyword(T[J].Text))
            Name = T[J].Text;
        }
        if (!Name.empty())
          PmVars[Name] = IsPtr;
      } else if (T[I].Text == "const" || T[I].Text == "constexpr") {
        std::string Name;
        for (size_t J = I + 1; J < F->BodyEnd; ++J) {
          if (T[J].isPunct(";") || T[J].isPunct("=") || T[J].isPunct("(") ||
              T[J].isPunct("{") || T[J].isPunct(":") || T[J].isPunct(")"))
            break;
          if (T[J].isIdent() && !isKeyword(T[J].Text))
            Name = T[J].Text;
        }
        if (!Name.empty())
          LocalConsts.insert(Name);
      }
    }
  }

  bool isConstName(const std::string &N) const {
    return LocalConsts.count(N) || PF->ConstNames.count(N) ||
           Reg.ConstNames.count(N) || isAllCapsName(N) || isKConstName(N);
  }

  //===--------------------------------------------------------------------===//
  // Rule 1: pm-raw-store
  //===--------------------------------------------------------------------===//

  void checkPmRawStore() {
    const std::vector<Token> &T = PF->Lex.Toks;
    for (size_t I = F->BodyBegin; I < F->BodyEnd; ++I) {
      const Token &Tk = T[I];
      // memcpy-family destination argument.
      if (Tk.isIdent() && memWriteFns().count(Tk.Text) && I + 1 < F->BodyEnd &&
          T[I + 1].isPunct("(")) {
        size_t ArgB = I + 2;
        size_t Depth = 0;
        size_t ArgE = ArgB;
        while (ArgE < F->BodyEnd) {
          if (T[ArgE].isPunct("(") || T[ArgE].isPunct("[")) {
            ++Depth;
          } else if (T[ArgE].isPunct(")") || T[ArgE].isPunct("]")) {
            if (Depth == 0)
              break;
            --Depth;
          } else if (T[ArgE].isPunct(",") && Depth == 0) {
            break;
          }
          ++ArgE;
        }
        size_t LvB = ArgB;
        while (LvB < ArgE && T[LvB].isPunct("&"))
          ++LvB; // &obj->field is the same lvalue with an explicit &.
        Lvalue L = parseLvalue(T, LvB, ArgE);
        std::string What = classifyPmStore(storeCtx(), L, /*ForMemWrite=*/true);
        if (!What.empty())
          diag(RulePmRawStore, PF->Lex, Tk.Line, F->QualName,
               Tk.Text + " into " + What +
                   " bypasses the Crafty undo log; persistent writes must go "
                   "through the transactional store API (HtmTx::store / "
                   "TxnContext::store) or persistDirect during "
                   "format/recovery");
        continue;
      }
      if (Tk.Kind != TokKind::Punct || !assignOps().count(Tk.Text))
        continue;
      // Skip lambda-capture '[=]' and defaulted-parameter '=' noise.
      if (I > F->BodyBegin &&
          (T[I - 1].isPunct("[") || T[I - 1].isPunct(",")))
        continue;
      // Walk the left-hand side back to the nearest statement boundary.
      size_t B = I;
      while (B > F->BodyBegin) {
        const Token &Pt = T[B - 1];
        if (Pt.isPunct(";") || Pt.isPunct("{") || Pt.isPunct("}") ||
            Pt.isPunct("(") || Pt.isPunct(")") || Pt.isPunct(",") ||
            (Pt.Kind == TokKind::Punct && assignOps().count(Pt.Text)))
          break;
        --B;
      }
      // A declaration with CRAFTY_PMEM on the left is initializing the
      // annotated variable itself, not storing through it.
      bool IsPmDecl = false;
      for (size_t J = B; J < I; ++J)
        if (T[J].isIdent() && T[J].Text == "CRAFTY_PMEM")
          IsPmDecl = true;
      if (IsPmDecl)
        continue;
      Lvalue L = parseLvalue(T, B, I);
      std::string What = classifyPmStore(storeCtx(), L, /*ForMemWrite=*/false);
      if (!What.empty())
        diag(RulePmRawStore, PF->Lex, Tk.Line, F->QualName,
             "raw store through " + What +
                 " bypasses the Crafty undo log; persistent writes must go "
                 "through the transactional store API (HtmTx::store / "
                 "TxnContext::store) or persistDirect during "
                 "format/recovery");
    }
  }

  //===--------------------------------------------------------------------===//
  // Rule 2: htm-unsafe-call
  //===--------------------------------------------------------------------===//

  void checkHtmUnsafe() {
    if (!FAnn.TxBody)
      return;
    std::set<const FunctionInfo *> Visited;
    std::vector<std::string> Chain{F->QualName};
    walkTx(*F, Visited, Chain, /*Depth=*/0);
  }

  void walkTx(const FunctionInfo &Fn, std::set<const FunctionInfo *> &Visited,
              std::vector<std::string> &Chain, int Depth) {
    if (Depth > 32 || !Visited.insert(&Fn).second)
      return;
    const std::vector<Token> &T = Fn.Owner->Toks;
    for (const CallSite &S : collectSites(T, Fn.BodyBegin, Fn.BodyEnd)) {
      if (S.Kind != CallSite::Call) {
        const char *What = S.Kind == CallSite::KwNew      ? "operator new"
                           : S.Kind == CallSite::KwDelete ? "operator delete"
                                                          : "throw";
        emitUnsafe(Fn, S.Line, What,
                   std::string(What) +
                       " allocates or unwinds, which aborts hardware "
                       "transactions",
                   Chain);
        continue;
      }
      Annotations Ann =
          Reg.lookupCall(!S.ClassHint.empty() ? S.ClassHint : Fn.ClassName,
                         S.Name);
      if (Ann.HtmUnsafe) {
        emitUnsafe(Fn, S.Line, S.Name,
                   "'" + S.Name + "' is annotated CRAFTY_HTM_UNSAFE", Chain);
        continue;
      }
      if (Ann.TxSafe || Ann.TxStoreApi || Ann.DrainApi)
        continue; // Trusted barrier; do not descend.
      std::vector<const FunctionInfo *> Cands =
          Sums.resolveCallees(Fn.ClassName, S);
      if (!Cands.empty()) {
        for (const FunctionInfo *D : Cands) {
          Chain.push_back(D->QualName);
          walkTx(*D, Visited, Chain, Depth + 1);
          Chain.pop_back();
        }
        continue;
      }
      if (S.IsFree && builtinUnsafe().count(S.Name))
        emitUnsafe(Fn, S.Line, S.Name,
                   "'" + S.Name +
                       "' may allocate, block or enter the kernel, any of "
                       "which aborts hardware transactions",
                   Chain);
    }
  }

  void emitUnsafe(const FunctionInfo &Site, int Line, const std::string &What,
                  const std::string &Why,
                  const std::vector<std::string> &Chain) {
    std::ostringstream Msg;
    Msg << "transaction body '" << Chain.front() << "' reaches HTM-unsafe "
        << "operation '" << What << "'";
    if (Chain.size() > 1) {
      Msg << " via ";
      for (size_t I = 0; I < Chain.size(); ++I) {
        if (I)
          Msg << " -> ";
        Msg << Chain[I];
      }
    }
    Msg << ": " << Why
        << "; hoist it out of the transaction or mark an intentional "
           "boundary CRAFTY_TX_SAFE";
    // Attribute to the tx-body root, locate at the offending call site.
    diag(RuleHtmUnsafeCall, *Site.Owner, Line, Chain.front(), Msg.str());
  }

  //===--------------------------------------------------------------------===//
  // Rule 3: flush-without-drain (forward may-analysis over the CFG)
  //===--------------------------------------------------------------------===//

  /// Applies the flush/drain calls in [B, E) to \p S in token order. A
  /// callee known to drain on every path (AlwaysDrains summary) counts as
  /// a drain, so `persist()`-style wrappers are understood without a raw
  /// fence at the call site.
  void applyFlushEvents(FlushState &S, size_t B, size_t E,
                        const std::vector<std::pair<size_t, size_t>> *Holes)
      const {
    static const std::vector<std::pair<size_t, size_t>> NoHoles;
    const std::vector<Token> &T = PF->Lex.Toks;
    forEachTok(B, E, Holes ? *Holes : NoHoles, [&](size_t I) {
      if (!T[I].isIdent() || I + 1 >= T.size() || !T[I + 1].isPunct("("))
        return;
      if (isKeyword(T[I].Text))
        return;
      CallSite CS;
      CS.Name = T[I].Text;
      classifyReceiver(T, I, B, CS);
      Annotations Ann = Reg.lookupCall(
          !CS.ClassHint.empty() ? CS.ClassHint : F->ClassName, CS.Name);
      bool Flush = Ann.FlushApi || isRawFlushName(T[I].Text);
      bool Drain = Ann.DrainApi || isRawDrainName(T[I].Text);
      if (!Flush && !Drain && calleeAlwaysDrains(CS))
        Drain = true;
      if (Flush) {
        S.Pending = true;
        S.FlushLine = T[I].Line;
        S.FlushName = T[I].Text;
      }
      if (Drain)
        S.Pending = false;
    });
  }

  bool calleeAlwaysDrains(const CallSite &CS) const {
    std::vector<const FunctionInfo *> Cands =
        Sums.resolveCallees(F->ClassName, CS);
    if (Cands.empty())
      return false;
    for (const FunctionInfo *D : Cands)
      if (!Sums.get(D).AlwaysDrains)
        return false;
    return true;
  }

  struct FlushAnalysis {
    using State = FlushState;
    const Checker &C;
    const Cfg &G;

    State boundary() const { return State{}; }
    bool join(State &Dst, const State &Src) const {
      if (Src.Pending && !Dst.Pending) {
        Dst = Src;
        return true;
      }
      return false;
    }
    State transfer(int B, State In) const {
      for (const CfgAtom &A : G.Blocks[B].Atoms)
        C.applyFlushEvents(In, A.B, A.E, A.Holes);
      return In;
    }
  };

  void checkFlushWithoutDrain(const FuncIR &IR) {
    if (FAnn.DrainDeferred || FAnn.FlushApi || FAnn.DrainApi)
      return; // Primitive or deliberately-deferred (HTM commit fences).
    const Cfg &G = IR.G;
    FlushAnalysis A{*this, G};
    DataflowResult<FlushState> R = solveForward(G, A);

    // Returns: replay each reached block and look at the state right
    // after each Ret atom's expression.
    for (size_t B = 0; B < G.Blocks.size(); ++B) {
      if (!R.Reached[B])
        continue;
      FlushState S = R.In[B];
      for (const CfgAtom &At : G.Blocks[B].Atoms) {
        applyFlushEvents(S, At.B, At.E, At.Holes);
        if (At.Kind == CfgAtom::Ret && S.Pending)
          diag(RuleFlushWithoutDrain, PF->Lex, S.FlushLine, F->QualName,
               "cache-line write-back '" + S.FlushName + "' (line " +
                   std::to_string(S.FlushLine) + ") can leave '" +
                   F->QualName + "' through the return at line " +
                   std::to_string(At.Line) +
                   " with no drain; clwb only *schedules* the write-back -- "
                   "call drain()/persistBarrier(), or mark the function "
                   "CRAFTY_DRAIN_DEFERRED if the next HTM commit fence is "
                   "the drain");
      }
    }
    // End of function: join the out-states of blocks that fall through to
    // the synthetic exit (returns already reported above).
    FlushState End;
    for (int P : G.Blocks[G.Exit].Preds) {
      if (!G.Blocks[P].FallsToExit || !R.Reached[P])
        continue;
      FlushState S = R.In[P];
      for (const CfgAtom &At : G.Blocks[P].Atoms)
        applyFlushEvents(S, At.B, At.E, At.Holes);
      if (S.Pending && !End.Pending)
        End = S;
    }
    if (End.Pending)
      diag(RuleFlushWithoutDrain, PF->Lex, End.FlushLine, F->QualName,
           "cache-line write-back '" + End.FlushName + "' (line " +
               std::to_string(End.FlushLine) +
               ") can reach the end of '" + F->QualName +
               "' with no drain; clwb only *schedules* the write-back -- "
               "call drain()/persistBarrier(), or mark the function "
               "CRAFTY_DRAIN_DEFERRED if the next HTM commit fence is the "
               "drain");
  }

  //===--------------------------------------------------------------------===//
  // Rule 4: unbounded-tx-writes
  //===--------------------------------------------------------------------===//

  void checkUnboundedTxWrites(const Stmt &S, bool InLambda) {
    if (S.Kind == Stmt::Loop && !S.Kids.empty()) {
      if (subtreeHasTxStore(S.Kids[0]) && !loopBounded(S) &&
          !subtreeHasTxBound(S))
        diag(RuleUnboundedTxWrites, PF->Lex, S.Line, F->QualName,
             "loop at line " + std::to_string(S.Line) +
                 " issues transactional stores with no visible iteration "
                 "bound; HTM write capacity is finite (the reason for "
                 "KvConfig::BatchTxnLimit) -- chunk the loop or assert the "
                 "bound with CRAFTY_TX_BOUND(n)");
    }
    for (const Stmt &K : S.Kids)
      checkUnboundedTxWrites(K, InLambda || S.Kind == Stmt::Lambda);
  }

  /// Does this subtree issue CRAFTY_TX_STORE_API calls, directly or
  /// through a resolvable callee whose summary says it does? Lambda bodies
  /// are excluded: a lambda is a transaction-body boundary (the enclosing
  /// loop typically spans *multiple* transactions, as in KvShard::setBatch),
  /// and its own loops are visited separately.
  bool subtreeHasTxStore(const Stmt &S) const {
    if (S.Kind == Stmt::Lambda)
      return false;
    if (S.Kind == Stmt::Expr || S.Kind == Stmt::Return) {
      const std::vector<Token> &T = PF->Lex.Toks;
      bool Found = false;
      forEachTok(S.ExprB, S.ExprE, S.Holes, [&](size_t I) {
        if (Found || !T[I].isIdent() || I + 1 >= T.size() ||
            !T[I + 1].isPunct("(") || isKeyword(T[I].Text))
          return;
        std::string ClassHint;
        if (I >= 2 && T[I - 1].isPunct("::") && T[I - 2].isIdent())
          ClassHint = T[I - 2].Text;
        Annotations Ann = Reg.lookupCall(
            !ClassHint.empty() ? ClassHint : F->ClassName, T[I].Text);
        if (Ann.TxStoreApi && !isAtomicStoreCall(T, I + 1)) {
          Found = true;
          return;
        }
        if (Ann.TxSafe || Ann.FlushApi || Ann.DrainApi)
          return;
        // Interprocedural: the callee's own (non-lambda) stores execute
        // inside whatever transaction surrounds this loop.
        CallSite CS;
        CS.Name = T[I].Text;
        classifyReceiver(T, I, S.ExprB, CS);
        for (const FunctionInfo *D : Sums.resolveCallees(F->ClassName, CS))
          if (!(Sums.effectiveAnn(*D).TxBody && !D->TakesTxContext) &&
              Sums.get(D).MayTxStore)
            Found = true;
      });
      if (Found)
        return true;
    }
    for (const Stmt &K : S.Kids)
      if (subtreeHasTxStore(K))
        return true;
    return false;
  }

  bool subtreeHasTxBound(const Stmt &S) const {
    const std::vector<Token> &T = PF->Lex.Toks;
    if (S.Kind == Stmt::Lambda)
      return false;
    auto RangeHas = [&](size_t B, size_t E,
                        const std::vector<std::pair<size_t, size_t>> &Holes) {
      bool Found = false;
      forEachTok(B, E, Holes, [&](size_t I) {
        if (T[I].isIdent() && T[I].Text == "CRAFTY_TX_BOUND")
          Found = true;
      });
      return Found;
    };
    if (RangeHas(S.HdrB, S.HdrE, {}) || RangeHas(S.ExprB, S.ExprE, S.Holes))
      return true;
    for (const Stmt &K : S.Kids)
      if (subtreeHasTxBound(K))
        return true;
    return false;
  }

  /// A loop is visibly bounded when its condition compares against a
  /// compile-time-constant-looking expression: a literal, a known
  /// const/constexpr/enum name, kCamelCase or ALL_CAPS.
  bool loopBounded(const Stmt &S) const {
    const std::vector<Token> &T = PF->Lex.Toks;
    size_t B = S.HdrB, E = S.HdrE;
    if (B >= E)
      return false; // for(;;) / empty condition: unbounded.
    // For a `for`, isolate the condition between the depth-0 semicolons;
    // for a range-for, the range expression after the depth-0 ':'.
    std::vector<size_t> Semis;
    size_t Colon = 0;
    size_t Depth = 0;
    for (size_t I = B; I < E; ++I) {
      if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{")) {
        ++Depth;
      } else if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
        if (Depth)
          --Depth;
      } else if (Depth == 0 && T[I].isPunct(";")) {
        Semis.push_back(I);
      } else if (Depth == 0 && T[I].isPunct(":") && !Colon) {
        Colon = I;
      }
    }
    if (Semis.size() >= 2) {
      B = Semis[0] + 1;
      E = Semis[1];
    } else if (Semis.empty() && Colon) {
      // Range-for: bounded iff the range expression itself is const-like
      // (e.g. a fixed std::array constant) -- rarely provable; usually the
      // fix is CRAFTY_TX_BOUND.
      return constLikeRange(Colon + 1, E);
    }
    if (B >= E)
      return false;
    // Any depth-0 comparison with a const-like side counts as a bound.
    Depth = 0;
    size_t SideB = B;
    static const std::set<std::string> CmpOps = {"<", "<=", ">", ">=", "!="};
    static const std::set<std::string> SplitOps = {"&&", "||", ","};
    for (size_t I = B; I <= E; ++I) {
      bool AtEnd = I == E;
      if (!AtEnd) {
        if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{")) {
          ++Depth;
          continue;
        }
        if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
          if (Depth)
            --Depth;
          continue;
        }
        if (Depth != 0)
          continue;
      }
      bool IsCmp = !AtEnd && T[I].Kind == TokKind::Punct &&
                   CmpOps.count(T[I].Text);
      bool IsSplit = AtEnd || (T[I].Kind == TokKind::Punct &&
                               SplitOps.count(T[I].Text));
      if (IsCmp) {
        if (constLikeRange(SideB, I))
          return true;
        SideB = I + 1;
      } else if (IsSplit) {
        if (SideB > B && constLikeRange(SideB, I))
          return true; // Right side of the last comparison in this clause.
        SideB = I + 1;
      }
    }
    return false;
  }

  /// Every identifier is const-like and only arithmetic/grouping appears.
  bool constLikeRange(size_t B, size_t E) const {
    const std::vector<Token> &T = PF->Lex.Toks;
    if (B >= E)
      return false;
    static const std::set<std::string> OkPunct = {"+", "-", "*", "/", "%",
                                                  "(", ")", "<<", ">>", "::"};
    bool SawOperand = false;
    for (size_t I = B; I < E; ++I) {
      const Token &Tk = T[I];
      if (Tk.Kind == TokKind::Number) {
        SawOperand = true;
        continue;
      }
      if (Tk.isIdent()) {
        if (Tk.Text == "sizeof" || isConstName(Tk.Text)) {
          SawOperand = true;
          continue;
        }
        return false;
      }
      if (Tk.Kind == TokKind::Punct && OkPunct.count(Tk.Text))
        continue;
      return false;
    }
    return SawOperand;
  }

  //===--------------------------------------------------------------------===//
  // Rule 5: persist-ordering (forward may-analysis over the CFG)
  //===--------------------------------------------------------------------===//

  /// Printable key for a store target, e.g. "hdr->Magic" or "pool.Gen".
  static std::string lvalueKey(const Lvalue &L) {
    std::string K = L.Root;
    for (const Access &A : L.Chain) {
      if (A.Kind == Access::Index)
        K += "[]";
      else
        K += (A.Kind == Access::Arrow ? "->" : ".") + A.Field;
    }
    return K;
  }

  /// Applies the persistent-store / flush / drain / publish events in
  /// [B, E) to \p S in token order. With \p Emit set, a publish store
  /// executed while some earlier store is not yet durable is diagnosed.
  void applyPersistEvents(PersistState &S, size_t B, size_t E,
                          const std::vector<std::pair<size_t, size_t>>
                              *Holes,
                          bool Emit) {
    static const std::vector<std::pair<size_t, size_t>> NoHoles;
    const std::vector<Token> &T = PF->Lex.Toks;
    forEachTok(B, E, Holes ? *Holes : NoHoles, [&](size_t I) {
      // Calls: flush schedules matched (or, unmatched, all) entries;
      // drain retires everything pending.
      if (T[I].isIdent() && I + 1 < T.size() && T[I + 1].isPunct("(") &&
          !isKeyword(T[I].Text)) {
        CallSite CS;
        CS.Name = T[I].Text;
        classifyReceiver(T, I, B, CS);
        Annotations Ann = Reg.lookupCall(
            !CS.ClassHint.empty() ? CS.ClassHint : F->ClassName, CS.Name);
        bool Drain = Ann.DrainApi || isRawDrainName(T[I].Text) ||
                     calleeAlwaysDrains(CS);
        if (Drain) {
          S.clear();
          return;
        }
        if (Ann.FlushApi || isRawFlushName(T[I].Text)) {
          std::set<std::string> ArgIds;
          for (auto &R : callArgRanges(T, I + 1, T.size()))
            for (size_t J = R.first; J < R.second; ++J)
              if (T[J].isIdent())
                ArgIds.insert(T[J].Text);
          bool Matched = false;
          for (auto &KV : S) {
            if (keyMatchesIds(KV.first, ArgIds)) {
              KV.second.Flushed = true;
              Matched = true;
            }
          }
          if (!Matched) // Bulk or unrecognized flush: assume it covers all.
            for (auto &KV : S)
              KV.second.Flushed = true;
          return;
        }
        // memcpy-family destination: a persistent store.
        if (memWriteFns().count(T[I].Text)) {
          auto Args = callArgRanges(T, I + 1, T.size());
          if (!Args.empty()) {
            size_t LvB = Args[0].first;
            while (LvB < Args[0].second && T[LvB].isPunct("&"))
              ++LvB;
            Lvalue L = parseLvalue(T, LvB, Args[0].second);
            if (!classifyPmStore(storeCtx(), L, /*ForMemWrite=*/true)
                     .empty())
              S[lvalueKey(L)] = PendEntry{T[I].Line, false};
          }
          return;
        }
        return;
      }
      // Assignments.
      if (T[I].Kind != TokKind::Punct || !assignOps().count(T[I].Text))
        return;
      if (I > B && (T[I - 1].isPunct("[") || T[I - 1].isPunct(",")))
        return;
      size_t LvB = I;
      while (LvB > B) {
        const Token &Pt = T[LvB - 1];
        if (Pt.isPunct(";") || Pt.isPunct("{") || Pt.isPunct("}") ||
            Pt.isPunct("(") || Pt.isPunct(")") || Pt.isPunct(",") ||
            (Pt.Kind == TokKind::Punct && assignOps().count(Pt.Text)))
          break;
        --LvB;
      }
      bool IsPmDecl = false;
      for (size_t J = LvB; J < I; ++J)
        if (T[J].isIdent() && T[J].Text == "CRAFTY_PMEM")
          IsPmDecl = true;
      if (IsPmDecl)
        return;
      Lvalue L = parseLvalue(T, LvB, I);
      if (!L.Valid)
        return;
      bool Publish = isPublishStore(storeCtx(), L);
      std::string PubKey = lvalueKey(L);
      if (Publish && Emit && !S.empty()) {
        // Report against the oldest pending store (ignoring the publish
        // target itself, which may legitimately be rewritten).
        const std::string *Key = nullptr;
        const PendEntry *Ent = nullptr;
        for (const auto &KV : S) {
          if (KV.first == PubKey)
            continue;
          if (!Ent || KV.second.Line < Ent->Line) {
            Key = &KV.first;
            Ent = &KV.second;
          }
        }
        if (Ent) {
          std::string Why =
              Ent->Flushed
                  ? "is flushed but not drained; clwb only *schedules* the "
                    "write-back -- drain (persistBarrier) before publishing"
                  : "is not even flushed; flush and drain it before "
                    "publishing";
          diag(RulePersistOrdering, PF->Lex, T[I].Line, F->QualName,
               "publish store to '" + PubKey + "' can execute while the "
                   "persistent store to '" + *Key + "' (line " +
                   std::to_string(Ent->Line) + ") " + Why +
                   ", or a crash makes the commit marker durable before "
                   "the data it covers");
        }
      }
      if (!classifyPmStore(storeCtx(), L, /*ForMemWrite=*/false).empty())
        S[PubKey] = PendEntry{T[I].Line, false};
    });
  }

  static bool keyMatchesIds(const std::string &Key,
                            const std::set<std::string> &Ids) {
    // Split the key back into identifiers and match any of them.
    std::string Cur;
    for (char C : Key + "\n") {
      if (std::isalnum((unsigned char)C) || C == '_') {
        Cur.push_back(C);
      } else {
        if (!Cur.empty() && Ids.count(Cur))
          return true;
        Cur.clear();
      }
    }
    return false;
  }

  struct PersistAnalysis {
    using State = PersistState;
    Checker &C;
    const Cfg &G;

    State boundary() const { return State{}; }
    bool join(State &Dst, const State &Src) const {
      bool Changed = false;
      for (const auto &KV : Src) {
        auto It = Dst.find(KV.first);
        if (It == Dst.end()) {
          Dst.insert(KV);
          Changed = true;
        } else if (It->second.Flushed && !KV.second.Flushed) {
          // Unflushed-on-some-path is the more hazardous fact.
          It->second.Flushed = false;
          Changed = true;
        }
      }
      return Changed;
    }
    State transfer(int B, State In) {
      for (const CfgAtom &A : G.Blocks[B].Atoms)
        C.applyPersistEvents(In, A.B, A.E, A.Holes, /*Emit=*/false);
      return In;
    }
  };

  void checkPersistOrdering(const FuncIR &IR) {
    // Transaction bodies order their stores through the HTM commit fence;
    // deferred-drain and trusted primitives are the mechanism itself.
    if (FAnn.TxBody || FAnn.DrainDeferred || FAnn.FlushApi || FAnn.DrainApi ||
        FAnn.TxSafe || FAnn.TxStoreApi)
      return;
    if (Reg.PublishFieldNames.empty())
      return; // Nothing to order against.
    const Cfg &G = IR.G;
    PersistAnalysis A{*this, G};
    DataflowResult<PersistState> R = solveForward(G, A);
    for (size_t B = 0; B < G.Blocks.size(); ++B) {
      if (!R.Reached[B])
        continue;
      PersistState S = R.In[B];
      for (const CfgAtom &At : G.Blocks[B].Atoms)
        applyPersistEvents(S, At.B, At.E, At.Holes, /*Emit=*/true);
    }
  }

  //===--------------------------------------------------------------------===//
  // Rule 6: pm-escape
  //===--------------------------------------------------------------------===//

  void checkPmEscape() {
    // Outside the transaction cone a stashed pm pointer is ordinary
    // (recovery/setup code passes pool pointers around freely); inside it,
    // the pointer outlives the undo log's protection.
    if (!Sums.inTxCone(F))
      return;
    if (FAnn.TxSafe || FAnn.TxStoreApi || FAnn.FlushApi || FAnn.DrainApi)
      return;
    diagnoseEscapes(*F, Sums, [&](int Line, const std::string &What) {
      diag(RulePmEscape, PF->Lex, Line, F->QualName,
           What + "; a raw pointer into the pool that outlives the "
                  "transaction bypasses undo logging -- copy the value out, "
                  "or keep the pointer inside the transaction scope");
    });
  }

  //===--------------------------------------------------------------------===//
  // Rule 7: tx-capacity
  //===--------------------------------------------------------------------===//

  void checkTxCapacity() {
    if (!FAnn.TxBody)
      return;
    TxBound Bound = Sums.get(F).TxnBound;
    CapacityEntry CE;
    CE.QualName = F->QualName;
    CE.File = PF->Lex.Path;
    CE.Line = F->Line;
    CE.Bound = Bound.str();
    Capacities.push_back(CE);

    if (Bound.K == TxBound::Unbounded) {
      diag(RuleTxCapacity, PF->Lex, F->Line, F->QualName,
           "no static write-set bound for transaction body '" + F->QualName +
               "': a store-issuing path has no visible iteration bound, so "
               "the transaction can exceed HTM write capacity -- bound every "
               "loop (CRAFTY_TX_BOUND) or split the transaction");
      return;
    }
    if (Bound.K != TxBound::Finite)
      return; // Asserted: the author vouches, nothing to compare.
    if (Bound.N > Opt.TxCapacityBudget)
      diag(RuleTxCapacity, PF->Lex, F->Line, F->QualName,
           "transaction body '" + F->QualName + "' can issue up to " +
               std::to_string(Bound.N) +
               " transactional stores, over the HTM write-capacity budget "
               "of " + std::to_string(Opt.TxCapacityBudget) +
               " words -- split the transaction or chunk its loops");
    auto Declared = Sums.declaredCapacity(*F);
    if (Declared && Bound.N > *Declared)
      diag(RuleTxCapacity, PF->Lex, F->Line, F->QualName,
           "transaction body '" + F->QualName + "' can issue up to " +
               std::to_string(Bound.N) +
               " transactional stores, over its declared "
               "CRAFTY_TX_CAPACITY(" + std::to_string(*Declared) + ")");
  }
};

} // namespace

CheckResult runChecks(const std::vector<const ParsedFile *> &Targets,
                      const Summaries &Sums, const CheckOptions &Opt) {
  Checker C(Targets, Sums, Opt);
  return C.run();
}

} // namespace craftylint
