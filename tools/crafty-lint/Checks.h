//===- tools/crafty-lint/Checks.h - The analyzer rules ---------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crafty-lint rules (see DESIGN.md Sections 5.3/5.4 for semantics):
///
///  - pm-raw-store: an assignment (or memcpy/memset-family write) through
///    a CRAFTY_PMEM pointer or into a CRAFTY_PMEM field bypasses the undo
///    log; persistent stores must go through the transactional store APIs
///    (or persistDirect during setup/recovery).
///
///  - htm-unsafe-call: call-graph reachability from CRAFTY_TX_BODY entry
///    points to functions marked CRAFTY_HTM_UNSAFE or to intrinsically
///    HTM-aborting operations (malloc family, operator new/delete, I/O,
///    syscalls, sleeps, throw). CRAFTY_TX_SAFE functions are trusted
///    barriers the traversal does not descend into.
///
///  - flush-without-drain: a CFG path from a CRAFTY_FLUSH_API call to
///    function exit with no CRAFTY_DRAIN_API call (and no call to a
///    function that drains on every path) claims durability that was never
///    established. Functions that defer the drain to the next HTM commit
///    fence by design carry CRAFTY_DRAIN_DEFERRED.
///
///  - unbounded-tx-writes: a loop issuing CRAFTY_TX_STORE_API stores (or
///    calling functions that do) with no visible compile-time bound in its
///    condition and no CRAFTY_TX_BOUND assertion risks exceeding HTM write
///    capacity (the hazard that forced KvConfig::BatchTxnLimit).
///
///  - persist-ordering: a CFG path on which a persistent store's cache
///    line has not been drained (flushed-but-not-fenced, or never flushed)
///    when a CRAFTY_PM_PUBLISH commit-marker / pointer-publish store
///    executes. Crash between the two leaves the marker durable while the
///    data it covers is not.
///
///  - pm-escape: the address of CRAFTY_PMEM data flows into a volatile
///    location that outlives the transaction scope (a volatile field, an
///    out-parameter, an escaping callee argument). Tracked with gen/kill
///    taint masks and interprocedural escape summaries; diagnosed in
///    functions reachable from CRAFTY_TX_BODY roots.
///
///  - tx-capacity: the interprocedural static upper bound on transactional
///    stores reachable from each CRAFTY_TX_BODY root, checked against the
///    HTM write-capacity budget and any CRAFTY_TX_CAPACITY declaration.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_CHECKS_H
#define CRAFTY_LINT_CHECKS_H

#include "Model.h"
#include "Summary.h"

#include <string>
#include <vector>

namespace craftylint {

struct Diagnostic {
  std::string Rule;
  std::string File; // Normalized (root-relative) path.
  int Line = 0;
  std::string Func; // Qualified name of the attributed function.
  std::string Message;
  bool Baselined = false;
};

struct CheckOptions {
  /// HTM write-capacity budget for tx-capacity, in 8-byte words. Default
  /// matches HtmConfig::MaxWriteSetLines (512 cache lines) at 8 words per
  /// line.
  long long TxCapacityBudget = 4096;
};

/// The static write-set bound of one CRAFTY_TX_BODY root (reported for
/// every root, violation or not, so tests can cross-check the static
/// figure against dynamic HtmStats).
struct CapacityEntry {
  std::string QualName;
  std::string File;
  int Line = 0;
  std::string Bound; // TxBound::str(): a number, "asserted" or "unbounded".
};

struct CheckResult {
  std::vector<Diagnostic> Diags;
  std::vector<CapacityEntry> Capacities;
};

/// Runs all seven rules over every function defined in \p Targets, using
/// \p Sums (computed over targets plus their include closure) for
/// annotation lookup, callee resolution and interprocedural summaries.
/// In-source `// crafty-lint: suppress(<rule>)` comments on the diagnosed
/// line or the line above it silence a finding before it is returned.
/// Diagnostics are sorted by (file, line, rule).
CheckResult runChecks(const std::vector<const ParsedFile *> &Targets,
                      const Summaries &Sums, const CheckOptions &Opt);

} // namespace craftylint

#endif // CRAFTY_LINT_CHECKS_H
