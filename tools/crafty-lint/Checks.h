//===- tools/crafty-lint/Checks.h - The four analyzer rules ----*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crafty-lint rules (see DESIGN.md Section 5.3 for full semantics):
///
///  - pm-raw-store: an assignment (or memcpy/memset-family write) through
///    a CRAFTY_PMEM pointer or into a CRAFTY_PMEM field bypasses the undo
///    log; persistent stores must go through the transactional store APIs
///    (or persistDirect during setup/recovery).
///
///  - htm-unsafe-call: call-graph reachability from CRAFTY_TX_BODY entry
///    points to functions marked CRAFTY_HTM_UNSAFE or to intrinsically
///    HTM-aborting operations (malloc family, operator new/delete, I/O,
///    syscalls, sleeps, throw). CRAFTY_TX_SAFE functions are trusted
///    barriers the traversal does not descend into.
///
///  - flush-without-drain: an intra-procedural CFG path from a
///    CRAFTY_FLUSH_API call to function exit with no CRAFTY_DRAIN_API call
///    claims durability that was never established. Functions that defer
///    the drain to the next HTM commit fence by design carry
///    CRAFTY_DRAIN_DEFERRED.
///
///  - unbounded-tx-writes: a loop issuing CRAFTY_TX_STORE_API stores with
///    no visible compile-time bound in its condition and no CRAFTY_TX_BOUND
///    assertion risks exceeding HTM write capacity (the hazard that forced
///    KvConfig::BatchTxnLimit).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_CHECKS_H
#define CRAFTY_LINT_CHECKS_H

#include "Model.h"

#include <string>
#include <vector>

namespace craftylint {

struct Diagnostic {
  std::string Rule;
  std::string File; // Normalized (root-relative) path.
  int Line = 0;
  std::string Func; // Qualified name of the attributed function.
  std::string Message;
  bool Baselined = false;
};

/// Runs all four rules over every function defined in \p Targets, using
/// \p Reg (built from targets plus their include closure) for annotation
/// and call resolution. In-source `// crafty-lint: suppress(<rule>)`
/// comments on the diagnosed line or the line above it silence a finding
/// before it is returned. Diagnostics are sorted by (file, line, rule).
std::vector<Diagnostic> runChecks(const std::vector<const ParsedFile *> &Targets,
                                  const Registry &Reg);

} // namespace craftylint

#endif // CRAFTY_LINT_CHECKS_H
