//===- tools/crafty-lint/Cfg.h - Basic-block control-flow graph -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a Stmt tree into a per-function control-flow graph of basic
/// blocks. Blocks hold *atoms* -- token subranges (expression statements,
/// branch/loop headers, return expressions) in execution order -- and the
/// edges realize branches, loop back edges, switch dispatch with
/// fallthrough, break/continue, and early returns into a synthetic exit
/// block. Lambda bodies are excluded (they execute elsewhere, typically as
/// the transaction body under an HTM commit fence); rules that must see
/// inside them walk the Stmt tree directly.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_CFG_H
#define CRAFTY_LINT_CFG_H

#include "Stmt.h"

#include <string>
#include <vector>

namespace craftylint {

struct CfgAtom {
  enum AtomKind {
    Code,   // Expression statement (range may contain holes).
    Header, // if/loop/switch condition tokens.
    Ret,    // Return expression; control leaves to the exit block after it.
  } Kind = Code;
  size_t B = 0, E = 0;
  /// Embedded-body holes of the originating statement (null when none).
  const std::vector<std::pair<size_t, size_t>> *Holes = nullptr;
  int Line = 0;
};

struct CfgBlock {
  std::vector<CfgAtom> Atoms;
  std::vector<int> Succs;
  std::vector<int> Preds;
  /// True when this block has an implicit (non-return) edge to the exit
  /// block: end-of-function fallthrough or a stray break/continue.
  bool FallsToExit = false;
};

struct Cfg {
  std::vector<CfgBlock> Blocks;
  int Entry = 0;
  int Exit = 1;

  /// Compact textual form for golden tests:
  ///   B0(entry) -> 2
  ///   B2 [hdr@4 code@5] -> 3 1
  ///   B1(exit)
  std::string dump() const;
};

/// Builds the CFG for \p Body (a Stmt::Seq as returned by parseStmtTree).
/// The Stmt tree must outlive the graph: atoms alias its Holes storage.
Cfg buildCfg(const Stmt &Body);

} // namespace craftylint

#endif // CRAFTY_LINT_CFG_H
