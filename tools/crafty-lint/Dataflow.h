//===- tools/crafty-lint/Dataflow.h - Worklist dataflow solver -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward worklist solver over the Cfg. An Analysis supplies:
///
///   using State = ...;               // copyable lattice element
///   State boundary();                // entry-block input
///   bool  join(State &Dst, const State &Src);  // Dst |= Src; changed?
///   State transfer(int BlockId, State In);     // flow through the block
///
/// The solver propagates to fixpoint from the entry block; blocks never
/// reached keep Reached == 0 and their In state is meaningless. After the
/// fixpoint the caller typically makes one reporting pass, re-running its
/// transfer over each reached block's atoms with the final In state to
/// emit diagnostics at the precise program points.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_DATAFLOW_H
#define CRAFTY_LINT_DATAFLOW_H

#include "Cfg.h"

#include <deque>
#include <vector>

namespace craftylint {

template <class State> struct DataflowResult {
  std::vector<State> In;
  std::vector<char> Reached;
};

template <class Analysis>
DataflowResult<typename Analysis::State> solveForward(const Cfg &G,
                                                      Analysis &A) {
  using State = typename Analysis::State;
  DataflowResult<State> R;
  R.In.assign(G.Blocks.size(), State{});
  R.Reached.assign(G.Blocks.size(), 0);
  if (G.Blocks.empty())
    return R;
  R.In[G.Entry] = A.boundary();
  R.Reached[G.Entry] = 1;

  std::deque<int> Worklist{G.Entry};
  std::vector<char> Queued(G.Blocks.size(), 0);
  Queued[G.Entry] = 1;
  // Safety valve: a correct monotone analysis converges far below this;
  // a buggy non-monotone transfer must not hang the analyzer.
  size_t Steps = 0, MaxSteps = G.Blocks.size() * 64 + 1024;

  while (!Worklist.empty() && Steps++ < MaxSteps) {
    int B = Worklist.front();
    Worklist.pop_front();
    Queued[B] = 0;
    State Out = A.transfer(B, R.In[B]);
    for (int S : G.Blocks[B].Succs) {
      bool Changed = false;
      if (!R.Reached[S]) {
        R.In[S] = Out;
        R.Reached[S] = 1;
        Changed = true;
      } else {
        Changed = A.join(R.In[S], Out);
      }
      if (Changed && !Queued[S]) {
        Worklist.push_back(S);
        Queued[S] = 1;
      }
    }
  }
  return R;
}

} // namespace craftylint

#endif // CRAFTY_LINT_DATAFLOW_H
