//===- tools/crafty-lint/Syntax.h - Token-level syntax helpers -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-level syntactic utilities shared by the rules, the statement
/// parser and the summary layer: call-site extraction, lvalue chains,
/// persistent-store classification with class-scoped field resolution, and
/// a small integer-constant-expression evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_SYNTAX_H
#define CRAFTY_LINT_SYNTAX_H

#include "Lexer.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace craftylint {

struct Registry;

bool isKeyword(const std::string &S);
bool isAllCapsName(const std::string &S);
bool isKConstName(const std::string &S);

/// Free functions that abort hardware transactions (syscalls, page faults
/// from the allocator, unbounded blocking) regardless of annotation. Only
/// consulted for *unresolved free* calls -- methods go through annotation
/// lookup and call-graph descent instead.
const std::set<std::string> &builtinUnsafe();

/// memcpy-family sinks whose first argument is a write destination.
const std::set<std::string> &memWriteFns();

/// Raw flush/drain intrinsic spellings, recognized alongside the annotated
/// wrappers so hand-rolled code does not slip past flush-without-drain.
bool isRawFlushName(const std::string &N);
bool isRawDrainName(const std::string &N);

/// Compound/simple assignment operator spellings.
const std::set<std::string> &assignOps();

/// A call site or HTM-hostile keyword inside a function body.
struct CallSite {
  enum SiteKind { Call, KwNew, KwDelete, KwThrow } Kind = Call;
  std::string Name;      // Callee simple name (Call only).
  std::string ClassHint; // Qualifier before :: if present, else "".
  bool IsFree = false;   // No . / -> / :: receiver (this-> counts as free).
  bool GlobalScope = false; // `::name(...)`: explicitly a free function.
  size_t TokIdx = 0;
  int Line = 0;

  size_t lparen() const { return TokIdx + 1; }
};

/// Fills \p S's receiver classification (IsFree / ClassHint / GlobalScope)
/// from the tokens preceding the callee name at index \p I; \p B is the
/// first index it may look at. `this->f()` classifies as a free
/// (same-class) call; `x.f()` / `p->f()` as a member call with unknown
/// receiver; `K::f()` carries the class hint; `::f()` is global scope.
void classifyReceiver(const std::vector<Token> &T, size_t I, size_t B,
                      CallSite &S);

/// Extracts every call site / hostile keyword in [B, E) of \p T. When
/// \p Holes is given, tokens inside the holes (embedded lambda bodies)
/// are skipped.
std::vector<CallSite>
collectSites(const std::vector<Token> &T, size_t B, size_t E,
             const std::vector<std::pair<size_t, size_t>> *Holes = nullptr);

/// Token ranges of the arguments of the call whose '(' is at \p LParen,
/// split at depth-0 commas. Empty for `()`.
std::vector<std::pair<size_t, size_t>>
callArgRanges(const std::vector<Token> &T, size_t LParen, size_t End);

/// `std::atomic<T>::store` collides with the TX-store simple name; it is
/// recognized (and ignored) by the std::memory_order argument every atomic
/// store in this codebase spells out.
bool isAtomicStoreCall(const std::vector<Token> &T, size_t LParen);

/// One member/subscript step in an lvalue chain.
struct Access {
  enum Op { Dot, Arrow, Index } Kind;
  std::string Field; // Empty for Index.
};

struct Lvalue {
  bool Valid = false;
  int Derefs = 0; // Leading '*' count.
  std::string Root;
  std::vector<Access> Chain;
};

Lvalue parseLvalue(const std::vector<Token> &T, size_t B, size_t E);

/// Resolution context for store classification: the registry's cross-file
/// field model plus the enclosing function's pm-annotated variables and
/// class (for scoped `this->field` lookups).
struct StoreContext {
  const Registry *Reg = nullptr;
  const std::map<std::string, bool> *PmVars = nullptr; // name -> IsPtr
  std::string ClassName; // Enclosing class, for this-> resolution.
};

/// Decides whether storing into \p L hits persistent memory, and why
/// (empty string when it does not). \p ForMemWrite relaxes the pointer
/// rules: a pm pointer passed as a memcpy/memset destination is written
/// through even with no deref. Field lookups are scoped: a `this->f` store
/// resolves `f` against the enclosing class first, so an unrelated
/// CRAFTY_PMEM field of the same name elsewhere does not taint it.
std::string classifyPmStore(const StoreContext &Ctx, const Lvalue &L,
                            bool ForMemWrite);

/// True when \p L targets a CRAFTY_PM_PUBLISH-annotated field through
/// pool-resident access (an '->' step, or a pm variable root) -- i.e. a
/// commit-marker / pointer-publish store for the persist-ordering rule.
bool isPublishStore(const StoreContext &Ctx, const Lvalue &L);

/// Evaluates [B, E) as an integer constant expression over literals and
/// the names in \p Consts (qualified chains `A::B` / `x.B` resolve through
/// their last component). Supports + - * / % << >> and parentheses.
std::optional<long long>
evalConstExpr(const std::vector<Token> &T, size_t B, size_t E,
              const std::map<std::string, long long> &Consts);

} // namespace craftylint

#endif // CRAFTY_LINT_SYNTAX_H
