//===- tools/crafty-lint/Summary.cpp - Call-graph summaries ---------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Summary.h"

#include "Dataflow.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <set>

namespace craftylint {

std::string TxBound::str() const {
  switch (K) {
  case Finite:
    return std::to_string(N);
  case Asserted:
    return "asserted";
  case Unbounded:
    return "unbounded";
  }
  return "?";
}

const FuncSummary &Summaries::get(const FunctionInfo *F) const {
  static const FuncSummary Empty;
  auto It = Map.find(F);
  return It != Map.end() ? It->second : Empty;
}

Annotations Summaries::effectiveAnn(const FunctionInfo &F) const {
  Annotations A = F.Ann;
  auto It = Reg.AnnByQual.find(F.QualName);
  if (It != Reg.AnnByQual.end())
    A.merge(It->second);
  return A;
}

const FuncIR *Summaries::ir(const FunctionInfo *F) const {
  auto It = IRs.find(F);
  return It != IRs.end() ? It->second.get() : nullptr;
}

std::optional<long long>
Summaries::declaredCapacity(const FunctionInfo &F) const {
  // The annotation may sit on the in-class declaration rather than the
  // out-of-line definition, so fall back to the qualified-name index
  // (filled from prototypes too).
  const std::vector<Token> *Toks = F.CapacityToks.empty() ? nullptr
                                                          : &F.CapacityToks;
  if (!Toks) {
    auto It = CapacityByQual.find(F.QualName);
    if (It != CapacityByQual.end())
      Toks = &It->second->CapacityToks;
  }
  if (!Toks)
    return std::nullopt;
  return evalConstExpr(*Toks, 0, Toks->size(), Reg.IntConstValues);
}

/// Method names shared with the standard library containers, strings,
/// streams and atomics. An unknown-receiver call spelled `X.size()` is
/// overwhelmingly more likely to be a std::vector than the one project
/// class that happens to define a `size`, so these names never take the
/// unambiguous-simple-name upgrade below.
static bool isGenericMethodName(const std::string &N) {
  static const std::set<std::string> G = {
      "size",       "empty",      "clear",       "begin",      "end",
      "rbegin",     "rend",       "front",       "back",       "push_back",
      "pop_back",   "emplace_back", "emplace",   "emplace_front", "insert",
      "erase",      "find",       "count",       "at",         "data",
      "c_str",      "str",        "append",      "substr",     "resize",
      "reserve",    "capacity",   "swap",        "reset",      "release",
      "get",        "load",       "store",       "exchange",   "fetch_add",
      "fetch_sub",  "fetch_or",   "fetch_and",   "lock",       "unlock",
      "try_lock",   "wait",       "notify_one",  "notify_all", "open",
      "close",      "good",       "fail",        "eof",        "read",
      "write",      "run",        "first",       "second",     "value",
      "has_value",  "value_or",   "push",        "pop",        "top",
      "length",     "compare",    "assign",      "copy",       "fill",
      "compare_exchange_weak", "compare_exchange_strong",
  };
  return G.count(N) != 0;
}

std::vector<const FunctionInfo *>
Summaries::resolveCallees(const std::string &CallerClass,
                          const CallSite &S) const {
  std::vector<const FunctionInfo *> Cands;
  auto DIt = Reg.DefsBySimple.find(S.Name);
  if (DIt == Reg.DefsBySimple.end())
    return Cands;
  for (const FunctionInfo *D : DIt->second) {
    bool Match;
    if (!S.ClassHint.empty())
      Match = D->ClassName == S.ClassHint;
    else if (S.GlobalScope)
      Match = D->ClassName.empty();
    else if (S.IsFree) // Unqualified: same class or a free function.
      Match = D->ClassName.empty() || D->ClassName == CallerClass;
    else // Member call through an unknown receiver.
      Match = false;
    if (Match)
      Cands.push_back(D);
  }
  // Unambiguous-simple-name upgrade: `Map->putTx(...)` has an unknown
  // receiver type at token level, but when the whole program holds exactly
  // one definition of `putTx` the call can only mean it. Names the
  // standard library also uses are exempt -- there the receiver is usually
  // a std type, not the one project class sharing the name.
  if (Cands.empty() && S.ClassHint.empty() && !S.GlobalScope &&
      DIt->second.size() == 1 && !isGenericMethodName(S.Name))
    Cands.push_back(DIt->second.front());
  return Cands;
}

//===----------------------------------------------------------------------===//
// Capacity bounds
//===----------------------------------------------------------------------===//

namespace {

/// Finds a CRAFTY_TX_BOUND(n) asserting this loop's iteration count:
/// anywhere in the loop subtree, but not under a nested Loop or Lambda
/// (those bound the inner construct). Returns the strongest evaluable
/// value, or Asserted when present but not evaluable.
std::optional<TxBound> findTxBound(const std::vector<Token> &T, const Stmt &S,
                                   const Registry &Reg, bool IsRoot) {
  if (!IsRoot && (S.Kind == Stmt::Loop || S.Kind == Stmt::Lambda))
    return std::nullopt;
  std::optional<TxBound> Best;
  auto Consider = [&](size_t B, size_t E,
                      const std::vector<std::pair<size_t, size_t>> &Holes) {
    forEachTok(B, E, Holes, [&](size_t I) {
      if (!T[I].isIdent() || !T[I].is("CRAFTY_TX_BOUND"))
        return;
      if (I + 1 >= T.size() || !T[I + 1].isPunct("("))
        return;
      size_t Close = matchForward(T, I + 1, T.size());
      auto V = evalConstExpr(T, I + 2, Close, Reg.IntConstValues);
      TxBound Bd = V ? TxBound::finite(*V) : TxBound::asserted();
      if (!Best)
        Best = Bd;
      else if (Best->K == TxBound::Asserted && Bd.K == TxBound::Finite)
        Best = Bd;
      else if (Best->K == TxBound::Finite && Bd.K == TxBound::Finite &&
               Bd.N > Best->N)
        Best = Bd;
    });
  };
  Consider(S.HdrB, S.HdrE, {});
  Consider(S.ExprB, S.ExprE, S.Holes);
  for (const Stmt &K : S.Kids) {
    auto Sub = findTxBound(T, K, Reg, /*IsRoot=*/false);
    if (Sub) {
      if (!Best)
        Best = Sub;
      else if (Best->K == TxBound::Asserted && Sub->K == TxBound::Finite)
        Best = Sub;
      else if (Best->K == TxBound::Finite && Sub->K == TxBound::Finite &&
               Sub->N > Best->N)
        Best = Sub;
    }
  }
  return Best;
}

/// Constant trip count for `for (i = C0; i < C1; ...)`-shaped headers.
std::optional<long long> constTripCount(const std::vector<Token> &T, size_t B,
                                        size_t E, const Registry &Reg) {
  // Split init; cond; step at depth-0 semicolons.
  std::vector<size_t> Semis;
  int Depth = 0;
  for (size_t I = B; I < E; ++I) {
    if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{"))
      ++Depth;
    else if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
      if (Depth)
        --Depth;
    } else if (Depth == 0 && T[I].isPunct(";"))
      Semis.push_back(I);
  }
  size_t CondB = B, CondE = E;
  long long Init = 0;
  bool HaveInit = false;
  if (Semis.size() >= 2) {
    CondB = Semis[0] + 1;
    CondE = Semis[1];
    // Init: `... i = <expr>`.
    for (size_t I = B; I < Semis[0]; ++I)
      if (T[I].isPunct("=")) {
        auto V = evalConstExpr(T, I + 1, Semis[0], Reg.IntConstValues);
        if (V) {
          Init = *V;
          HaveInit = true;
        }
        break;
      }
  } else if (!Semis.empty()) {
    return std::nullopt;
  } else {
    // `while (i < C)`: unknown start value.
    return std::nullopt;
  }
  // Cond: `<ident> <cmp> <expr>` with an evaluable right side.
  for (size_t I = CondB; I < CondE; ++I) {
    if (T[I].Kind != TokKind::Punct)
      continue;
    const std::string &Op = T[I].Text;
    if (Op != "<" && Op != "<=" && Op != "!=")
      continue;
    auto Limit = evalConstExpr(T, I + 1, CondE, Reg.IntConstValues);
    if (!Limit || !HaveInit)
      return std::nullopt;
    long long Trips = *Limit - Init + (Op == "<=" ? 1 : 0);
    return Trips >= 0 ? std::optional<long long>(Trips) : std::nullopt;
  }
  return std::nullopt;
}

} // namespace

TxBound Summaries::costRange(const FunctionInfo &F, size_t B, size_t E,
                             const std::vector<std::pair<size_t, size_t>>
                                 *Holes) {
  const std::vector<Token> &T = F.Owner->Toks;
  TxBound C = TxBound::finite(0);
  for (const CallSite &CS : collectSites(T, B, E, Holes)) {
    if (CS.Kind != CallSite::Call)
      continue;
    Annotations Ann = Reg.lookupCall(
        !CS.ClassHint.empty() ? CS.ClassHint : F.ClassName, CS.Name);
    if (Ann.TxStoreApi) {
      if (!isAtomicStoreCall(T, CS.lparen()))
        C = C + TxBound::finite(1);
      continue;
    }
    if (Ann.TxSafe || Ann.FlushApi || Ann.DrainApi || Ann.HtmUnsafe)
      continue; // Trusted primitive / already diagnosed elsewhere.
    TxBound CalleeMax = TxBound::finite(0);
    for (const FunctionInfo *D : resolveCallees(F.ClassName, CS)) {
      // A TX_BODY callee with no TxnContext parameter begins its own
      // transaction; its stores are not part of this write set. With one
      // it runs inside ours, so its inline stores count.
      if (effectiveAnn(*D).TxBody && !D->TakesTxContext)
        continue;
      CalleeMax = TxBound::max(CalleeMax, inlineBoundOf(D));
    }
    C = C + CalleeMax;
  }
  return C;
}

TxBound Summaries::costStmt(const FunctionInfo &F, const Stmt &S) {
  const std::vector<Token> &T = F.Owner->Toks;
  switch (S.Kind) {
  case Stmt::Seq: {
    TxBound C = TxBound::finite(0);
    for (const Stmt &K : S.Kids)
      C = C + costStmt(F, K);
    return C;
  }
  case Stmt::Expr:
  case Stmt::Return:
    return costRange(F, S.ExprB, S.ExprE, &S.Holes);
  case Stmt::If: {
    TxBound H = costRange(F, S.HdrB, S.HdrE, nullptr);
    TxBound A = S.Kids.empty() ? TxBound::finite(0) : costStmt(F, S.Kids[0]);
    TxBound B = S.Kids.size() > 1 ? costStmt(F, S.Kids[1])
                                  : TxBound::finite(0);
    return H + TxBound::max(A, B);
  }
  case Stmt::Switch: {
    TxBound C = costRange(F, S.HdrB, S.HdrE, nullptr);
    for (const Stmt &K : S.Kids)
      C = C + costStmt(F, K);
    return C;
  }
  case Stmt::Loop: {
    TxBound Per = costRange(F, S.HdrB, S.HdrE, nullptr);
    if (!S.Kids.empty())
      Per = Per + costStmt(F, S.Kids[0]);
    if (Per.isZero())
      return Per;
    auto Asserted = findTxBound(T, S, Reg, /*IsRoot=*/true);
    if (Asserted) {
      if (Asserted->K == TxBound::Finite)
        return Per.scaled(Asserted->N);
      return Per.K == TxBound::Unbounded ? TxBound::unbounded()
                                         : TxBound::asserted();
    }
    auto Trips = constTripCount(T, S.HdrB, S.HdrE, Reg);
    if (Trips)
      return Per.scaled(*Trips);
    return TxBound::unbounded();
  }
  case Stmt::Case:
  case Stmt::Break:
  case Stmt::Continue:
  case Stmt::Lambda: // Transaction boundary: not part of this invocation.
    return TxBound::finite(0);
  }
  return TxBound::finite(0);
}

TxBound Summaries::inlineBoundOf(const FunctionInfo *F) {
  auto MIt = InlineMemo.find(F);
  if (MIt != InlineMemo.end())
    return MIt->second;
  if (!F->hasBody())
    return TxBound::finite(0);
  if (!Visiting.insert(F).second) {
    // Recursion back-edge: seed zero so a store-free recursive walker
    // (audit/count traversals) stays zero; the cycle head promotes to
    // Unbounded below if any stores exist in the cycle body.
    CycleHit.insert(F);
    return TxBound::finite(0);
  }
  const FuncIR *IR = ir(F);
  TxBound B = IR ? costStmt(*F, IR->Tree) : TxBound::finite(0);
  Visiting.erase(F);
  if (CycleHit.erase(F) && !B.isZero())
    B = TxBound::unbounded(); // Recursion that stores: no static bound.
  InlineMemo[F] = B;
  return B;
}

TxBound Summaries::lambdaMax(const FunctionInfo &F, const Stmt &S) {
  TxBound Best = TxBound::finite(0);
  if (S.Kind == Stmt::Lambda && !S.Kids.empty())
    Best = TxBound::max(Best, costStmt(F, S.Kids[0]));
  for (const Stmt &K : S.Kids)
    Best = TxBound::max(Best, lambdaMax(F, K));
  return Best;
}

TxBound Summaries::txnBoundOf(const FunctionInfo *F) {
  auto MIt = TxnMemo.find(F);
  if (MIt != TxnMemo.end())
    return MIt->second;
  if (!Visiting.insert(F).second)
    return inlineBoundOf(F);
  TxBound B = inlineBoundOf(F);
  const FuncIR *IR = ir(F);
  if (IR) {
    B = TxBound::max(B, lambdaMax(*F, IR->Tree));
    const std::vector<Token> &T = F->Owner->Toks;
    for (const CallSite &CS : collectSites(T, F->BodyBegin, F->BodyEnd)) {
      if (CS.Kind != CallSite::Call)
        continue;
      Annotations Ann = Reg.lookupCall(
          !CS.ClassHint.empty() ? CS.ClassHint : F->ClassName, CS.Name);
      if (Ann.TxStoreApi || Ann.TxSafe || Ann.FlushApi || Ann.DrainApi)
        continue;
      for (const FunctionInfo *D : resolveCallees(F->ClassName, CS))
        B = TxBound::max(B, txnBoundOf(D));
    }
  }
  Visiting.erase(F);
  TxnMemo[F] = B;
  return B;
}

//===----------------------------------------------------------------------===//
// AlwaysDrains (must-analysis over the CFG, to call-graph fixpoint)
//===----------------------------------------------------------------------===//

namespace {

struct DrainState {
  bool Drained = false;
};

struct DrainAnalysis {
  using State = DrainState;
  const Cfg &G;
  const FunctionInfo &F;
  const Registry &Reg;
  const Summaries &Sums;
  const std::map<const FunctionInfo *, FuncSummary> &Cur;

  State boundary() { return State{}; }
  bool join(State &Dst, const State &Src) {
    // Must-analysis: drained only when drained on every incoming path.
    if (Dst.Drained && !Src.Drained) {
      Dst.Drained = false;
      return true;
    }
    return false;
  }
  State transfer(int B, State In) {
    const std::vector<Token> &T = F.Owner->Toks;
    for (const CfgAtom &A : G.Blocks[B].Atoms) {
      for (const CallSite &CS : collectSites(T, A.B, A.E, A.Holes)) {
        if (CS.Kind != CallSite::Call)
          continue;
        Annotations Ann = Reg.lookupCall(
            !CS.ClassHint.empty() ? CS.ClassHint : F.ClassName, CS.Name);
        if (Ann.DrainApi || isRawDrainName(CS.Name)) {
          In.Drained = true;
          continue;
        }
        auto Cands = Sums.resolveCallees(F.ClassName, CS);
        if (!Cands.empty()) {
          bool All = true;
          for (const FunctionInfo *D : Cands) {
            auto It = Cur.find(D);
            if (It == Cur.end() || !It->second.AlwaysDrains)
              All = false;
          }
          if (All)
            In.Drained = true;
        }
      }
    }
    return In;
  }
};

} // namespace

void Summaries::computeDrains() {
  bool Changed = true;
  int Rounds = 0;
  while (Changed && Rounds++ < 6) {
    Changed = false;
    for (const FunctionInfo *F : Defs) {
      FuncSummary &S = Map[F];
      if (S.AlwaysDrains)
        continue;
      Annotations Ann = effectiveAnn(*F);
      bool Now = false;
      if (Ann.DrainApi) {
        Now = true;
      } else if (const FuncIR *IR = ir(F)) {
        DrainAnalysis A{IR->G, *F, Reg, *this, Map};
        auto R = solveForward(IR->G, A);
        Now = R.Reached[IR->G.Exit] && R.In[IR->G.Exit].Drained;
      }
      if (Now && !S.AlwaysDrains) {
        S.AlwaysDrains = true;
        Changed = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Escape analysis (gen/kill pointer tracking, interprocedural masks)
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t PmBit = 1u << 31;
constexpr uint32_t ParamBits = ~PmBit;

/// Flow-insensitive taint engine over one function body. In summary mode
/// the seeds are the parameters (bit i); in diagnosis mode additionally
/// every pm-derived source seeds PmBit and sinks are reported.
class EscapeEngine {
public:
  EscapeEngine(const FunctionInfo &F, const Registry &Reg,
               const Summaries &Sums,
               const std::map<const FunctionInfo *, FuncSummary> *CurMap)
      : F(F), Reg(Reg), Sums(Sums), CurMap(CurMap), T(F.Owner->Toks) {}

  uint32_t EscapesParam = 0;
  uint32_t ReturnsParam = 0;
  bool ReturnsPmAddr = false;
  std::vector<std::pair<int, std::string>> Sinks; // Diagnosis mode.

  void run(const Stmt &Tree, bool Diagnose) {
    DiagMode = Diagnose;
    collectVars(Tree);
    for (size_t I = 0; I < F.Params.size() && I < 31; ++I) {
      Taint[F.Params[I]] |= 1u << I;
      Locals.insert(F.Params[I]);
    }
    if (Diagnose)
      for (const PmVar &P : F.PmParams)
        if (P.IsPtr)
          Taint[P.Name] |= PmBit;
    // Flow-insensitive fixpoint: masks only grow, so iterate until a
    // round adds nothing, then (in diagnosis mode) one reporting pass
    // over the stable state.
    for (int Round = 0; Round < 4; ++Round) {
      DirtyRound = false;
      walk(Tree);
      if (!DirtyRound)
        break;
    }
    if (Diagnose) {
      Emit = true;
      walk(Tree);
    }
  }

private:
  const FunctionInfo &F;
  const Registry &Reg;
  const Summaries &Sums;
  const std::map<const FunctionInfo *, FuncSummary> *CurMap;
  const std::vector<Token> &T;
  bool DiagMode = false;
  bool DirtyRound = false;
  bool Emit = false;
  std::map<std::string, uint32_t> Taint;
  std::map<std::string, bool> PmVars; // pm params + locals -> IsPtr.
  std::set<std::string> Locals;

  const FuncSummary *summaryOf(const FunctionInfo *D) const {
    if (CurMap) {
      auto It = CurMap->find(D);
      return It != CurMap->end() ? &It->second : nullptr;
    }
    const FuncSummary &S = Sums.get(D);
    return &S;
  }

  void addTaint(const std::string &Name, uint32_t Mask) {
    if (!Mask)
      return;
    uint32_t &Cur = Taint[Name];
    if ((Cur | Mask) != Cur) {
      Cur |= Mask;
      DirtyRound = true;
    }
  }

  /// `Type [*&]* name [= ...]`: two or more depth-0 non-keyword
  /// identifiers before the '='/';', and no member access, declare the
  /// last one. Returns "" for non-declarations.
  std::string declTarget(size_t B, size_t E,
                         const std::vector<std::pair<size_t, size_t>>
                             &Holes) {
    std::vector<std::string> Ids;
    int Depth = 0;
    bool Simple = true;
    forEachTok(B, E, Holes, [&](size_t I) {
      if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{"))
        ++Depth;
      else if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
        if (Depth)
          --Depth;
      } else if (Depth == 0 && T[I].isIdent() && !isKeyword(T[I].Text) &&
                 T[I].Text.rfind("CRAFTY_", 0) != 0)
        Ids.push_back(T[I].Text);
      else if (Depth == 0 && (T[I].isPunct(".") || T[I].isPunct("->")))
        Simple = false; // Member store, not a declaration.
    });
    return Simple && Ids.size() >= 2 ? Ids.back() : std::string();
  }

  /// Local-declaration heuristic plus pm-var collection (mirrors the
  /// Checker's collectLocals).
  void collectVars(const Stmt &S) {
    if (S.Kind == Stmt::Expr && S.ExprB < S.ExprE) {
      size_t AI = findAssign(S.ExprB, S.ExprE, S.Holes);
      std::string D = declTarget(S.ExprB, AI ? AI : S.ExprE, S.Holes);
      if (!D.empty())
        Locals.insert(D);
      // CRAFTY_PMEM locals: `CRAFTY_PMEM Type [*] name ...`.
      bool Pm = false, Ptr = false, Stop = false;
      std::string Name;
      forEachTok(S.ExprB, S.ExprE, S.Holes, [&](size_t I) {
        if (Stop)
          return;
        if (T[I].isPunct("=") || T[I].isPunct("(")) {
          Stop = true;
          return;
        }
        if (T[I].is("CRAFTY_PMEM"))
          Pm = true;
        else if (T[I].isPunct("*"))
          Ptr = true;
        else if (T[I].isIdent() && !isKeyword(T[I].Text))
          Name = T[I].Text;
      });
      if (Pm && !Name.empty()) {
        PmVars[Name] = Ptr;
        Locals.insert(Name);
      }
    }
    for (const Stmt &K : S.Kids)
      if (K.Kind != Stmt::Lambda)
        collectVars(K);
  }

  size_t findAssign(size_t B, size_t E,
                    const std::vector<std::pair<size_t, size_t>> &Holes) {
    size_t Found = 0;
    int Depth = 0;
    forEachTok(B, E, Holes, [&](size_t I) {
      if (Found)
        return;
      if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{")) {
        ++Depth;
        return;
      }
      if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
        if (Depth)
          --Depth;
        return;
      }
      if (Depth != 0 || T[I].Kind != TokKind::Punct)
        return;
      if (!assignOps().count(T[I].Text))
        return;
      if (I > B && (T[I - 1].isPunct("[") || T[I - 1].isPunct(",")))
        return; // Lambda capture '[=]' / defaulted-argument noise.
      Found = I;
    });
    return Found;
  }

  StoreContext storeCtx() const {
    StoreContext Ctx;
    Ctx.Reg = &Reg;
    Ctx.PmVars = &PmVars;
    Ctx.ClassName = F.ClassName;
    return Ctx;
  }

  /// Taint mask of an expression range: identifiers outside call-argument
  /// lists contribute their taint; calls contribute through the callee's
  /// return-alias summary (their argument lists are walked for escaping
  /// arguments as a side effect); pm sources contribute PmBit.
  uint32_t maskOfRange(size_t B, size_t E,
                       const std::vector<std::pair<size_t, size_t>> &Holes) {
    uint32_t Mask = 0;
    std::vector<size_t> Idx;
    forEachTok(B, E, Holes, [&](size_t I) { Idx.push_back(I); });
    for (size_t P = 0; P < Idx.size(); ++P) {
      size_t I = Idx[P];
      const Token &Tk = T[I];
      // Address-of a persistent lvalue.
      if (Tk.isPunct("&") && P + 1 < Idx.size() && T[Idx[P + 1]].isIdent()) {
        size_t LvE = lvalueEnd(Idx[P + 1]);
        Lvalue L = parseLvalue(T, Idx[P + 1], LvE);
        if (!classifyPmStore(storeCtx(), L, /*ForMemWrite=*/true).empty())
          Mask |= PmBit;
        continue;
      }
      if (!Tk.isIdent() || isKeyword(Tk.Text))
        continue;
      // Call?
      if (P + 1 < Idx.size() && T[Idx[P + 1]].isPunct("(") &&
          Tk.Text.rfind("CRAFTY_", 0) != 0) {
        size_t LParen = Idx[P + 1];
        Mask |= processCall(I, LParen);
        size_t Close = matchForward(T, LParen, E);
        while (P + 1 < Idx.size() && Idx[P + 1] <= Close)
          ++P; // Skip the argument tokens; processCall handled them.
        continue;
      }
      // pm pointer variable used as a value.
      auto PV = PmVars.find(Tk.Text);
      if (PV != PmVars.end() && PV->second)
        Mask |= PmBit;
      // pm pointer *field* read (R.Slots / this->Slots).
      if (I > 0 && (T[I - 1].isPunct(".") || T[I - 1].isPunct("->"))) {
        auto FP = Reg.PmFieldIsPtr.find(Tk.Text);
        if (FP != Reg.PmFieldIsPtr.end() && FP->second &&
            Reg.PmFieldNames.count(Tk.Text))
          Mask |= PmBit;
        continue; // Field names do not resolve through local taint.
      }
      auto TI = Taint.find(Tk.Text);
      if (TI != Taint.end())
        Mask |= TI->second;
    }
    return Mask;
  }

  /// End of the lvalue token run starting at \p I (ident, then any
  /// sequence of ./-> member steps and [..] subscripts).
  size_t lvalueEnd(size_t I) {
    size_t J = I + 1;
    while (J < T.size()) {
      if ((T[J].isPunct(".") || T[J].isPunct("->")) && J + 1 < T.size() &&
          T[J + 1].isIdent()) {
        J += 2;
      } else if (T[J].isPunct("[")) {
        J = matchForward(T, J, T.size()) + 1;
      } else {
        break;
      }
    }
    return J;
  }

  /// Handles one call: argument escape checks; returns the return-value
  /// taint mask.
  uint32_t processCall(size_t NameIdx, size_t LParen) {
    std::string ClassHint;
    if (NameIdx >= 2 && T[NameIdx - 1].isPunct("::") &&
        T[NameIdx - 2].isIdent())
      ClassHint = T[NameIdx - 2].Text;
    Annotations Ann = Reg.lookupCall(
        !ClassHint.empty() ? ClassHint : F.ClassName, T[NameIdx].Text);
    auto Args = callArgRanges(T, LParen, T.size());
    std::vector<uint32_t> ArgMasks;
    for (auto &A : Args) {
      // Lambda-literal arguments are their own transaction scope;
      // captured-pointer flow through them is out of this engine's reach.
      if (A.first < A.second && T[A.first].isPunct("["))
        ArgMasks.push_back(0);
      else
        ArgMasks.push_back(maskOfRange(A.first, A.second, {}));
    }
    // Trusted transactional/persist primitives do not leak their
    // arguments (HtmTx::store records the address in its write set by
    // design; that is the sanctioned path, not an escape).
    if (Ann.TxStoreApi || Ann.TxSafe || Ann.FlushApi || Ann.DrainApi)
      return 0;
    CallSite CS;
    CS.Name = T[NameIdx].Text;
    CS.TokIdx = NameIdx;
    CS.Line = T[NameIdx].Line;
    classifyReceiver(T, NameIdx, 0, CS);
    uint32_t Ret = 0;
    auto Cands = Sums.resolveCallees(F.ClassName, CS);
    for (const FunctionInfo *D : Cands) {
      const FuncSummary *DS = summaryOf(D);
      if (!DS)
        continue;
      if (DS->Trusted)
        continue;
      for (size_t J = 0; J < ArgMasks.size() && J < 31; ++J) {
        if (DS->EscapesParam & (1u << J))
          escapeEvent(ArgMasks[J], T[NameIdx].Line,
                      "argument " + std::to_string(J + 1) + " of '" +
                          CS.Name + "' (which stores it beyond the call)");
        if (DS->ReturnsParam & (1u << J))
          Ret |= ArgMasks[J];
      }
      if (DS->ReturnsPmAddr)
        Ret |= PmBit;
    }
    return Ret;
  }

  void escapeEvent(uint32_t Mask, int Line, const std::string &Where) {
    EscapesParam |= Mask & ParamBits;
    if (DiagMode && Emit && (Mask & PmBit))
      Sinks.push_back(
          {Line, "address of CRAFTY_PMEM data escapes the transaction scope "
                 "via " +
                     Where});
  }

  void walk(const Stmt &S) {
    if (S.Kind == Stmt::Lambda)
      return; // Captured-pointer tracking across lambdas: out of scope.
    if (S.Kind == Stmt::Return && S.ExprB < S.ExprE) {
      uint32_t M = maskOfRange(S.ExprB, S.ExprE, S.Holes);
      uint32_t NewRet = ReturnsParam | (M & ParamBits);
      if (NewRet != ReturnsParam) {
        ReturnsParam = NewRet;
        DirtyRound = true;
      }
      if ((M & PmBit) && !ReturnsPmAddr) {
        ReturnsPmAddr = true;
        DirtyRound = true;
      }
    } else if (S.Kind == Stmt::Expr && S.ExprB < S.ExprE) {
      size_t AI = findAssign(S.ExprB, S.ExprE, S.Holes);
      if (AI) {
        uint32_t M = maskOfRange(AI + 1, S.ExprE, S.Holes);
        // Declaration with initializer: gen the fresh local directly
        // (its left side is `Type *p`, not a parseable lvalue).
        std::string D = declTarget(S.ExprB, AI, S.Holes);
        if (!D.empty()) {
          addTaint(D, M);
        } else {
          Lvalue L = parseLvalue(T, S.ExprB, AI);
          handleStore(L, M, T[AI].Line);
        }
      } else {
        // Statement-level calls (argument escapes handled inside).
        maskOfRange(S.ExprB, S.ExprE, S.Holes);
      }
    } else if (S.Kind == Stmt::If || S.Kind == Stmt::Loop ||
               S.Kind == Stmt::Switch) {
      if (S.HdrB < S.HdrE)
        maskOfRange(S.HdrB, S.HdrE, {});
    }
    for (const Stmt &K : S.Kids)
      walk(K);
  }

  void handleStore(const Lvalue &L, uint32_t Mask, int Line) {
    if (!L.Valid || !Mask)
      return;
    // Plain local (or parameter) scalar: gen/kill propagation, no sink.
    if (L.Chain.empty() && L.Derefs == 0 && Locals.count(L.Root)) {
      addTaint(L.Root, Mask);
      return;
    }
    // Storing INTO persistent memory is persistence, not an escape (and
    // pm-raw-store owns the raw-store diagnosis).
    if (!classifyPmStore(storeCtx(), L, /*ForMemWrite=*/false).empty())
      return;
    // Volatile field store (x.f / x->f / this->f): outlives the txn.
    if (!L.Chain.empty() && !L.Chain.back().Field.empty()) {
      escapeEvent(Mask, Line,
                  "volatile field '" + L.Chain.back().Field + "'");
      return;
    }
    // Out-parameter store (*out = p).
    if (L.Derefs > 0 && Taint.count(L.Root) && Locals.count(L.Root)) {
      bool IsParam = false;
      for (const std::string &P : F.Params)
        if (P == L.Root)
          IsParam = true;
      if (IsParam) {
        escapeEvent(Mask, Line, "out-parameter '*" + L.Root + "'");
        return;
      }
    }
    // Bare member store in a member function (`Cache = p;`).
    if (L.Chain.empty() && L.Derefs == 0 && !Locals.count(L.Root) &&
        !F.ClassName.empty()) {
      auto CI = Reg.ClassFields.find(F.ClassName);
      if (CI != Reg.ClassFields.end() && CI->second.count(L.Root) &&
          !Reg.PmFieldQual.count(F.ClassName + "::" + L.Root))
        escapeEvent(Mask, Line, "volatile member '" + L.Root + "'");
    }
  }
};

} // namespace

void Summaries::computeEscapes() {
  bool Changed = true;
  int Rounds = 0;
  while (Changed && Rounds++ < 5) {
    Changed = false;
    for (const FunctionInfo *F : Defs) {
      FuncSummary &S = Map[F];
      if (S.Trusted)
        continue;
      const FuncIR *IR = ir(F);
      if (!IR)
        continue;
      EscapeEngine E(*F, Reg, *this, &Map);
      E.run(IR->Tree, /*Diagnose=*/false);
      if ((E.EscapesParam | S.EscapesParam) != S.EscapesParam ||
          (E.ReturnsParam | S.ReturnsParam) != S.ReturnsParam ||
          (E.ReturnsPmAddr && !S.ReturnsPmAddr)) {
        S.EscapesParam |= E.EscapesParam;
        S.ReturnsParam |= E.ReturnsParam;
        S.ReturnsPmAddr |= E.ReturnsPmAddr;
        Changed = true;
      }
    }
  }
}

void diagnoseEscapes(const FunctionInfo &F, const Summaries &Sums,
                     const std::function<void(int, const std::string &)>
                         &Diag) {
  const FuncIR *IR = Sums.ir(&F);
  if (!IR)
    return;
  EscapeEngine E(F, Sums.registry(), Sums, nullptr);
  E.run(IR->Tree, /*Diagnose=*/true);
  for (auto &S : E.Sinks)
    Diag(S.first, S.second);
}

//===----------------------------------------------------------------------===//
// Transaction cone
//===----------------------------------------------------------------------===//

void Summaries::computeTxCone() {
  std::deque<const FunctionInfo *> Work;
  for (const FunctionInfo *F : Defs)
    if (effectiveAnn(*F).TxBody && TxCone.insert(F).second)
      Work.push_back(F);
  while (!Work.empty()) {
    const FunctionInfo *F = Work.front();
    Work.pop_front();
    const std::vector<Token> &T = F->Owner->Toks;
    for (const CallSite &CS :
         collectSites(T, F->BodyBegin, F->BodyEnd)) {
      if (CS.Kind != CallSite::Call)
        continue;
      Annotations Ann = Reg.lookupCall(
          !CS.ClassHint.empty() ? CS.ClassHint : F->ClassName, CS.Name);
      if (Ann.TxSafe || Ann.TxStoreApi || Ann.FlushApi || Ann.DrainApi)
        continue; // Trusted boundary, same as the htm-unsafe walk.
      for (const FunctionInfo *D : resolveCallees(F->ClassName, CS))
        if (TxCone.insert(D).second)
          Work.push_back(D);
    }
  }
}

//===----------------------------------------------------------------------===//
// Top-level driver
//===----------------------------------------------------------------------===//

void Summaries::compute(const std::vector<const ParsedFile *> &Files) {
  for (const ParsedFile *PF : Files)
    for (const FunctionInfo &F : PF->Funcs) {
      if (F.hasBody())
        Defs.push_back(&F);
      if (!F.CapacityToks.empty())
        CapacityByQual.emplace(F.QualName, &F);
    }
  // Deterministic order regardless of load order.
  std::sort(Defs.begin(), Defs.end(),
            [](const FunctionInfo *A, const FunctionInfo *B) {
              if (A->Owner->Path != B->Owner->Path)
                return A->Owner->Path < B->Owner->Path;
              return A->BodyBegin < B->BodyBegin;
            });
  for (const FunctionInfo *F : Defs) {
    auto IR = std::make_unique<FuncIR>();
    IR->Tree = parseStmtTree(F->Owner->Toks, F->BodyBegin, F->BodyEnd);
    IR->G = buildCfg(IR->Tree);
    IRs.emplace(F, std::move(IR));
    Annotations Ann = effectiveAnn(*F);
    FuncSummary S;
    S.Trusted = Ann.TxSafe || Ann.TxStoreApi || Ann.FlushApi || Ann.DrainApi;
    Map.emplace(F, S);
  }
  for (const FunctionInfo *F : Defs) {
    FuncSummary &S = Map[F];
    S.InlineBound = inlineBoundOf(F);
    S.MayTxStore = !S.InlineBound.isZero();
    if (std::getenv("CRAFTY_LINT_DEBUG_SUMMARIES") && S.MayTxStore)
      std::fprintf(stderr, "summary: %s inline=%s\n", F->QualName.c_str(),
                   S.InlineBound.str().c_str());
  }
  for (const FunctionInfo *F : Defs)
    Map[F].TxnBound = txnBoundOf(F);
  computeDrains();
  computeEscapes();
  computeTxCone();
}

} // namespace craftylint
