//===- tools/crafty-lint/Lexer.h - C++ token scanner -----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ tokenizer for crafty-lint's built-in frontend. It produces a
/// comment-free token stream (comments are kept on the side so suppression
/// directives stay addressable by line), records quoted #include targets
/// for project-local include-closure loading, and strips all other
/// preprocessor directives. String/char/raw-string literals are single
/// tokens, so downstream brace/paren matching is reliable.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_LEXER_H
#define CRAFTY_LINT_LEXER_H

#include <string>
#include <vector>

namespace craftylint {

enum class TokKind : unsigned char {
  Ident,   // Identifiers and keywords.
  Number,  // Numeric literals (integer and floating).
  String,  // "...", R"(...)", '...'.
  Punct,   // Operators and punctuation (multi-char ops are one token).
};

struct Token {
  TokKind Kind;
  std::string Text;
  int Line = 0;

  bool is(const char *T) const { return Text == T; }
  bool isIdent() const { return Kind == TokKind::Ident; }
  bool isPunct(const char *T) const {
    return Kind == TokKind::Punct && Text == T;
  }
};

struct Comment {
  std::string Text; // Without the // or /* */ delimiters, trimmed.
  int Line = 0;     // Line the comment starts on.
};

/// One lexed source file.
struct LexedFile {
  std::string Path;                  // As given to the lexer.
  std::vector<Token> Toks;
  std::vector<Comment> Comments;
  std::vector<std::string> Includes; // Quoted-form #include targets only.
};

/// Tokenizes \p Content (the text of \p Path). Never fails: unrecognized
/// bytes become single-character punct tokens.
LexedFile lexFile(const std::string &Path, const std::string &Content);

} // namespace craftylint

#endif // CRAFTY_LINT_LEXER_H
