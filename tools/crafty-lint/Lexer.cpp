//===- tools/crafty-lint/Lexer.cpp - C++ token scanner --------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Lexer.h"

#include <cctype>
#include <cstring>

namespace craftylint {

namespace {

bool isIdentStart(char C) { return std::isalpha((unsigned char)C) || C == '_'; }
bool isIdentChar(char C) { return std::isalnum((unsigned char)C) || C == '_'; }

/// Multi-character operators, longest first so greedy matching is correct.
const char *const MultiPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*",
};

std::string trimmed(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

} // namespace

LexedFile lexFile(const std::string &Path, const std::string &Content) {
  LexedFile F;
  F.Path = Path;
  const char *P = Content.c_str();
  const char *End = P + Content.size();
  int Line = 1;
  bool AtLineStart = true; // Only whitespace seen since the last newline.

  auto push = [&](TokKind K, std::string Text, int L) {
    F.Toks.push_back(Token{K, std::move(Text), L});
  };

  while (P < End) {
    char C = *P;
    if (C == '\n') {
      ++Line;
      ++P;
      AtLineStart = true;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == '\v' || C == '\f') {
      ++P;
      continue;
    }

    // Comments.
    if (C == '/' && P + 1 < End && P[1] == '/') {
      const char *S = P + 2;
      while (P < End && *P != '\n')
        ++P;
      F.Comments.push_back(Comment{trimmed(std::string(S, P)), Line});
      continue;
    }
    if (C == '/' && P + 1 < End && P[1] == '*') {
      int StartLine = Line;
      const char *S = P + 2;
      P += 2;
      while (P + 1 < End && !(P[0] == '*' && P[1] == '/')) {
        if (*P == '\n')
          ++Line;
        ++P;
      }
      F.Comments.push_back(
          Comment{trimmed(std::string(S, P < End ? P : End)), StartLine});
      P = (P + 1 < End) ? P + 2 : End;
      AtLineStart = false;
      continue;
    }

    // Preprocessor directive: record quoted includes, drop the rest
    // (honoring line continuations).
    if (C == '#' && AtLineStart) {
      const char *S = P;
      while (P < End) {
        if (*P == '\\' && P + 1 < End && P[1] == '\n') {
          Line += 1;
          P += 2;
          continue;
        }
        if (*P == '\n')
          break;
        // Comments inside directives would confuse the continuation scan;
        // a // comment ends the directive's interesting part anyway.
        ++P;
      }
      std::string Directive(S, P);
      size_t Inc = Directive.find("include");
      if (Inc != std::string::npos) {
        size_t Q1 = Directive.find('"', Inc);
        if (Q1 != std::string::npos) {
          size_t Q2 = Directive.find('"', Q1 + 1);
          if (Q2 != std::string::npos)
            F.Includes.push_back(Directive.substr(Q1 + 1, Q2 - Q1 - 1));
        }
      }
      continue;
    }
    AtLineStart = false;

    // Raw string literal.
    if (C == 'R' && P + 1 < End && P[1] == '"') {
      const char *S = P;
      P += 2;
      std::string Delim;
      while (P < End && *P != '(')
        Delim.push_back(*P++);
      std::string Close = ")" + Delim + "\"";
      const char *Found = nullptr;
      for (const char *Q = P; Q + Close.size() <= End; ++Q) {
        if (std::memcmp(Q, Close.c_str(), Close.size()) == 0) {
          Found = Q + Close.size();
          break;
        }
        if (*Q == '\n')
          ++Line;
      }
      P = Found ? Found : End;
      push(TokKind::String, std::string(S, P), Line);
      continue;
    }

    // String / char literal.
    if (C == '"' || C == '\'') {
      const char *S = P;
      char Quote = C;
      ++P;
      while (P < End && *P != Quote) {
        if (*P == '\\' && P + 1 < End)
          ++P;
        if (*P == '\n')
          ++Line;
        ++P;
      }
      if (P < End)
        ++P;
      push(TokKind::String, std::string(S, P), Line);
      continue;
    }

    // Number.
    if (std::isdigit((unsigned char)C) ||
        (C == '.' && P + 1 < End && std::isdigit((unsigned char)P[1]))) {
      const char *S = P;
      while (P < End &&
             (std::isalnum((unsigned char)*P) || *P == '.' || *P == '\'' ||
              ((*P == '+' || *P == '-') && P > S &&
               (P[-1] == 'e' || P[-1] == 'E' || P[-1] == 'p' ||
                P[-1] == 'P'))))
        ++P;
      push(TokKind::Number, std::string(S, P), Line);
      continue;
    }

    // Identifier / keyword.
    if (isIdentStart(C)) {
      const char *S = P;
      while (P < End && isIdentChar(*P))
        ++P;
      push(TokKind::Ident, std::string(S, P), Line);
      continue;
    }

    // Punctuation: longest multi-char match first.
    bool Matched = false;
    for (const char *Op : MultiPuncts) {
      size_t N = std::strlen(Op);
      if (P + N <= End && std::memcmp(P, Op, N) == 0) {
        push(TokKind::Punct, Op, Line);
        P += N;
        Matched = true;
        break;
      }
    }
    if (!Matched) {
      push(TokKind::Punct, std::string(1, C), Line);
      ++P;
    }
  }
  return F;
}

} // namespace craftylint
