//===- tools/crafty-lint/Driver.cpp - crafty-lint entry point -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver: loads the requested translation units (explicit
/// files, --scan directories, or a compile_commands.json via -p) plus
/// their project-local include closure, builds the cross-file Registry,
/// runs the four rules, filters against a committed baseline, and emits
/// text plus an optional CheckReport-style JSON artifact.
///
/// Exit codes: 0 clean (baselined findings allowed), 1 new findings,
/// 2 usage or I/O error.
///
//===----------------------------------------------------------------------===//

#include "Checks.h"
#include "Model.h"

#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace craftylint;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reader (for compile_commands.json and the baseline file)
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum Type { Null, Bool, Num, Str, Arr, Obj } T = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<JsonValue> A;
  std::map<std::string, JsonValue> O;

  const JsonValue *get(const std::string &Key) const {
    auto It = O.find(Key);
    return It == O.end() ? nullptr : &It->second;
  }
  std::string str(const std::string &Key) const {
    const JsonValue *V = get(Key);
    return V && V->T == Str ? V->S : "";
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : P(Text.c_str()),
                                                 End(P + Text.size()) {}

  bool parse(JsonValue &Out) { return value(Out) && (ws(), P == End); }

private:
  const char *P;
  const char *End;

  void ws() {
    while (P < End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (P + N <= End && std::memcmp(P, L, N) == 0) {
      P += N;
      return true;
    }
    return false;
  }
  bool string(std::string &S) {
    ws();
    if (P >= End || *P != '"')
      return false;
    ++P;
    S.clear();
    while (P < End && *P != '"') {
      if (*P == '\\' && P + 1 < End) {
        ++P;
        switch (*P) {
        case 'n': S.push_back('\n'); break;
        case 't': S.push_back('\t'); break;
        case 'r': S.push_back('\r'); break;
        case 'b': S.push_back('\b'); break;
        case 'f': S.push_back('\f'); break;
        case 'u': // Keep the escape verbatim; paths never need it.
          S += "\\u";
          break;
        default: S.push_back(*P); break;
        }
        ++P;
      } else {
        S.push_back(*P++);
      }
    }
    if (P >= End)
      return false;
    ++P;
    return true;
  }
  bool value(JsonValue &V) {
    ws();
    if (P >= End)
      return false;
    if (*P == '"') {
      V.T = JsonValue::Str;
      return string(V.S);
    }
    if (*P == '{') {
      ++P;
      V.T = JsonValue::Obj;
      ws();
      if (P < End && *P == '}') {
        ++P;
        return true;
      }
      while (P < End) {
        std::string Key;
        if (!string(Key))
          return false;
        ws();
        if (P >= End || *P != ':')
          return false;
        ++P;
        JsonValue Sub;
        if (!value(Sub))
          return false;
        V.O.emplace(std::move(Key), std::move(Sub));
        ws();
        if (P < End && *P == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= End || *P != '}')
        return false;
      ++P;
      return true;
    }
    if (*P == '[') {
      ++P;
      V.T = JsonValue::Arr;
      ws();
      if (P < End && *P == ']') {
        ++P;
        return true;
      }
      while (P < End) {
        JsonValue Sub;
        if (!value(Sub))
          return false;
        V.A.push_back(std::move(Sub));
        ws();
        if (P < End && *P == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= End || *P != ']')
        return false;
      ++P;
      return true;
    }
    if (lit("true")) {
      V.T = JsonValue::Bool;
      V.B = true;
      return true;
    }
    if (lit("false")) {
      V.T = JsonValue::Bool;
      V.B = false;
      return true;
    }
    if (lit("null")) {
      V.T = JsonValue::Null;
      return true;
    }
    // Number.
    const char *S = P;
    if (P < End && (*P == '-' || *P == '+'))
      ++P;
    while (P < End && (std::isdigit((unsigned char)*P) || *P == '.' ||
                       *P == 'e' || *P == 'E' || *P == '-' || *P == '+'))
      ++P;
    if (P == S)
      return false;
    V.T = JsonValue::Num;
    V.N = std::strtod(std::string(S, P).c_str(), nullptr);
    return true;
  }
};

std::string jsonEscape(const std::string &S) {
  std::string R;
  for (char C : S) {
    switch (C) {
    case '"': R += "\\\""; break;
    case '\\': R += "\\\\"; break;
    case '\n': R += "\\n"; break;
    case '\t': R += "\\t"; break;
    case '\r': R += "\\r"; break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        R += Buf;
      } else {
        R.push_back(C);
      }
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// File loading
//===----------------------------------------------------------------------===//

bool readFile(const fs::path &P, std::string &Out) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool isSourceFile(const fs::path &P) {
  std::string E = P.extension().string();
  return E == ".h" || E == ".hpp" || E == ".cc" || E == ".cpp" || E == ".cxx";
}

/// \p P normalized to a root-relative generic path, or its absolute form
/// when it lives outside \p Root.
std::string normPathTo(const fs::path &P, const fs::path &Root) {
  std::error_code EC;
  fs::path Canon = fs::weakly_canonical(fs::absolute(P), EC);
  if (EC)
    Canon = fs::absolute(P);
  fs::path CRoot = fs::weakly_canonical(fs::absolute(Root), EC);
  fs::path Rel = Canon.lexically_relative(CRoot);
  std::string S = Rel.generic_string();
  if (S.empty() || S[0] == '.')
    return Canon.generic_string();
  return S;
}

struct Options {
  fs::path Root = fs::current_path();
  std::vector<fs::path> IncludeDirs;
  std::vector<fs::path> ScanDirs;
  std::vector<fs::path> Files;
  fs::path CompDb;       // Directory holding compile_commands.json.
  fs::path BaselinePath;
  fs::path WriteBaselinePath;
  fs::path JsonPath;
  std::string Restrict; // Normalized-path prefix filter for diagnosis.
  bool Verbose = false;
};

/// Loads, lexes and parses every requested file plus the project-local
/// include closure, keeping ParsedFiles at stable addresses.
class Corpus {
public:
  Corpus(const Options &Opt) : Opt(Opt) {}

  /// Canonical-path keyed; returns nullptr if unreadable.
  const ParsedFile *load(const fs::path &P, bool IsTarget) {
    std::error_code EC;
    fs::path Canon = fs::weakly_canonical(fs::absolute(P), EC);
    if (EC)
      Canon = fs::absolute(P);
    std::string Key = Canon.generic_string();
    auto It = ByPath.find(Key);
    if (It != ByPath.end()) {
      if (IsTarget)
        TargetSet.insert(It->second);
      return It->second;
    }
    std::string Text;
    if (!readFile(Canon, Text))
      return nullptr;
    Files.emplace_back();
    ParsedFile &PF = Files.back();
    PF.Lex = lexFile(normPath(Canon), Text);
    parseFile(PF);
    ByPath[Key] = &PF;
    if (IsTarget)
      TargetSet.insert(&PF);
    // Project-local include closure (registry context only).
    for (const std::string &Inc : PF.Lex.Includes) {
      fs::path Resolved = resolveInclude(Canon.parent_path(), Inc);
      if (!Resolved.empty())
        load(Resolved, /*IsTarget=*/false);
    }
    return &PF;
  }

  std::string normPath(const fs::path &Canon) const {
    return normPathTo(Canon, Opt.Root);
  }

  std::vector<const ParsedFile *> targets(const std::string &Restrict) const {
    std::vector<const ParsedFile *> Out;
    for (const ParsedFile &PF : Files) {
      if (!TargetSet.count(&PF))
        continue;
      if (!Restrict.empty() && PF.Lex.Path.rfind(Restrict, 0) != 0)
        continue;
      Out.push_back(&PF);
    }
    return Out;
  }

  Registry buildRegistry() const {
    Registry Reg;
    for (const ParsedFile &PF : Files)
      Reg.add(PF);
    return Reg;
  }

  size_t size() const { return Files.size(); }

private:
  const Options &Opt;
  std::deque<ParsedFile> Files; // Deque: stable addresses (Owner pointers).
  std::map<std::string, ParsedFile *> ByPath;
  std::set<const ParsedFile *> TargetSet;

  fs::path resolveInclude(const fs::path &IncluderDir,
                          const std::string &Name) const {
    std::vector<fs::path> Dirs;
    Dirs.push_back(IncluderDir);
    for (const fs::path &D : Opt.IncludeDirs)
      Dirs.push_back(D);
    std::error_code EC;
    fs::path Root = fs::weakly_canonical(fs::absolute(Opt.Root), EC);
    for (const fs::path &D : Dirs) {
      fs::path Cand = fs::weakly_canonical(D / Name, EC);
      if (EC || !fs::exists(Cand, EC))
        continue;
      // Stay inside the project: never chase system headers.
      if (Cand.generic_string().rfind(Root.generic_string(), 0) != 0)
        continue;
      return Cand;
    }
    return {};
  }
};

//===----------------------------------------------------------------------===//
// Baseline
//===----------------------------------------------------------------------===//

struct BaselineEntry {
  std::string Rule;
  std::string File;
  std::string Function; // Empty matches any function in File.
  std::string Justification;
  int Matched = 0;
};

bool loadBaseline(const fs::path &Path, std::vector<BaselineEntry> &Out) {
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  JsonValue Root;
  if (!JsonParser(Text).parse(Root) || Root.T != JsonValue::Obj)
    return false;
  const JsonValue *Entries = Root.get("entries");
  if (!Entries || Entries->T != JsonValue::Arr)
    return false;
  for (const JsonValue &E : Entries->A) {
    if (E.T != JsonValue::Obj)
      continue;
    BaselineEntry B;
    B.Rule = E.str("rule");
    B.File = E.str("file");
    B.Function = E.str("function");
    B.Justification = E.str("justification");
    if (!B.Rule.empty() && !B.File.empty())
      Out.push_back(std::move(B));
  }
  return true;
}

void applyBaseline(std::vector<Diagnostic> &Diags,
                   std::vector<BaselineEntry> &Baseline) {
  for (Diagnostic &D : Diags) {
    for (BaselineEntry &B : Baseline) {
      if (B.Rule != D.Rule || B.File != D.File)
        continue;
      if (!B.Function.empty() && B.Function != D.Func)
        continue;
      D.Baselined = true;
      ++B.Matched;
      break;
    }
  }
}

bool writeBaseline(const fs::path &Path, const std::vector<Diagnostic> &Diags) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << "{\n  \"tool\": \"crafty-lint\",\n  \"entries\": [";
  std::set<std::string> Seen;
  bool First = true;
  for (const Diagnostic &D : Diags) {
    std::string Key = D.Rule + "|" + D.File + "|" + D.Func;
    if (!Seen.insert(Key).second)
      continue;
    if (!First)
      Out << ",";
    First = false;
    Out << "\n    { \"rule\": \"" << jsonEscape(D.Rule) << "\", \"file\": \""
        << jsonEscape(D.File) << "\", \"function\": \"" << jsonEscape(D.Func)
        << "\",\n      \"justification\": \"TODO: justify or fix\" }";
  }
  Out << "\n  ]\n}\n";
  return Out.good();
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

bool writeJsonReport(const fs::path &Path,
                     const std::vector<Diagnostic> &Diags) {
  size_t NewCount = 0, BaseCount = 0;
  std::map<std::string, uint64_t> Counts;
  for (const Diagnostic &D : Diags) {
    ++Counts[D.Rule];
    (D.Baselined ? BaseCount : NewCount)++;
  }
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  // Mirrors src/check/CheckReport.h: checker/violations/lints/counts/reports.
  Out << "{ \"checker\": \"crafty-lint\", \"violations\": " << NewCount
      << ", \"lints\": " << BaseCount << ",\n  \"counts\": {";
  bool First = true;
  for (const auto &KV : Counts) {
    if (!First)
      Out << ", ";
    First = false;
    Out << "\"" << jsonEscape(KV.first) << "\": " << KV.second;
  }
  Out << "},\n  \"reports\": [";
  First = true;
  for (const Diagnostic &D : Diags) {
    if (!First)
      Out << ",";
    First = false;
    Out << "\n    { \"kind\": \"" << jsonEscape(D.Rule)
        << "\", \"violation\": " << (D.Baselined ? "false" : "true")
        << ", \"file\": \"" << jsonEscape(D.File) << "\", \"line\": " << D.Line
        << ",\n      \"function\": \"" << jsonEscape(D.Func)
        << "\", \"baselined\": " << (D.Baselined ? "true" : "false")
        << ",\n      \"message\": \"" << jsonEscape(D.Message) << "\" }";
  }
  Out << "\n  ]\n}\n";
  return Out.good();
}

//===----------------------------------------------------------------------===//
// main
//===----------------------------------------------------------------------===//

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] [files...]\n"
      "\n"
      "Crafty persistence & HTM-discipline analyzer. Options:\n"
      "  -p <dir>              read targets from <dir>/compile_commands.json\n"
      "  --scan <dir>          recursively lint *.h/*.hpp/*.cc/*.cpp/*.cxx\n"
      "  --restrict <prefix>   only diagnose files under this (root-relative)\n"
      "                        prefix; others still feed the call graph\n"
      "  --root <dir>          path-normalization base (default: cwd)\n"
      "  --include-dir <dir>   include-closure search dir (repeatable;\n"
      "                        default: root and root/src)\n"
      "  --baseline <file>     accepted-findings file; matches are reported\n"
      "                        as baselined, not as new findings\n"
      "  --write-baseline <f>  write current findings as a baseline and exit\n"
      "  --json <file>         CheckReport-style JSON artifact\n"
      "  --verbose             loading/statistics chatter on stderr\n"
      "\n"
      "Suppress one finding in source with:\n"
      "  // crafty-lint: suppress(<rule>) <justification>\n"
      "on the diagnosed line or the line above it.\n"
      "Exit: 0 clean, 1 new findings, 2 usage/IO error.\n",
      Prog);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "crafty-lint: %s requires an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (A == "-p") {
      const char *V = Next("-p");
      if (!V)
        return 2;
      Opt.CompDb = V;
    } else if (A == "--scan") {
      const char *V = Next("--scan");
      if (!V)
        return 2;
      Opt.ScanDirs.push_back(V);
    } else if (A == "--restrict") {
      const char *V = Next("--restrict");
      if (!V)
        return 2;
      Opt.Restrict = V;
    } else if (A == "--root") {
      const char *V = Next("--root");
      if (!V)
        return 2;
      Opt.Root = V;
    } else if (A == "--include-dir") {
      const char *V = Next("--include-dir");
      if (!V)
        return 2;
      Opt.IncludeDirs.push_back(V);
    } else if (A == "--baseline") {
      const char *V = Next("--baseline");
      if (!V)
        return 2;
      Opt.BaselinePath = V;
    } else if (A == "--write-baseline") {
      const char *V = Next("--write-baseline");
      if (!V)
        return 2;
      Opt.WriteBaselinePath = V;
    } else if (A == "--json") {
      const char *V = Next("--json");
      if (!V)
        return 2;
      Opt.JsonPath = V;
    } else if (A == "--verbose") {
      Opt.Verbose = true;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "crafty-lint: unknown option '%s'\n", A.c_str());
      return usage(argv[0]);
    } else {
      Opt.Files.push_back(A);
    }
  }
  if (Opt.IncludeDirs.empty()) {
    Opt.IncludeDirs.push_back(Opt.Root);
    Opt.IncludeDirs.push_back(Opt.Root / "src");
  }

  // Gather target files.
  std::vector<fs::path> TargetPaths = Opt.Files;
  std::error_code EC;
  for (const fs::path &Dir : Opt.ScanDirs) {
    if (!fs::is_directory(Dir, EC)) {
      std::fprintf(stderr, "crafty-lint: --scan '%s' is not a directory\n",
                   Dir.string().c_str());
      return 2;
    }
    for (auto It = fs::recursive_directory_iterator(Dir, EC);
         It != fs::recursive_directory_iterator(); It.increment(EC)) {
      if (EC)
        break;
      const fs::directory_entry &E = *It;
      std::string Name = E.path().filename().string();
      if (E.is_directory(EC) &&
          (Name == "build" || (!Name.empty() && Name[0] == '.'))) {
        It.disable_recursion_pending();
        continue;
      }
      if (E.is_regular_file(EC) && isSourceFile(E.path()))
        TargetPaths.push_back(E.path());
    }
  }
  if (!Opt.CompDb.empty()) {
    fs::path DbPath = Opt.CompDb / "compile_commands.json";
    std::string Text;
    if (!readFile(DbPath, Text)) {
      std::fprintf(stderr, "crafty-lint: cannot read %s\n",
                   DbPath.string().c_str());
      return 2;
    }
    JsonValue Db;
    if (!JsonParser(Text).parse(Db) || Db.T != JsonValue::Arr) {
      std::fprintf(stderr, "crafty-lint: cannot parse %s\n",
                   DbPath.string().c_str());
      return 2;
    }
    for (const JsonValue &Entry : Db.A) {
      if (Entry.T != JsonValue::Obj)
        continue;
      std::string File = Entry.str("file");
      if (File.empty())
        continue;
      fs::path FP = File;
      if (FP.is_relative())
        FP = fs::path(Entry.str("directory")) / FP;
      TargetPaths.push_back(FP);
    }
  }
  if (TargetPaths.empty()) {
    std::fprintf(stderr, "crafty-lint: no input files\n");
    return usage(argv[0]);
  }
  if (!Opt.Restrict.empty()) {
    // Don't even load out-of-scope TUs (e.g. third-party sources a compdb
    // drags in); the in-scope files' include closure is all the registry
    // context the checks need.
    std::vector<fs::path> Kept;
    for (const fs::path &P : TargetPaths)
      if (normPathTo(P, Opt.Root).rfind(Opt.Restrict, 0) == 0)
        Kept.push_back(P);
    TargetPaths.swap(Kept);
    if (TargetPaths.empty()) {
      std::fprintf(stderr, "crafty-lint: no input files under --restrict "
                           "prefix '%s'\n",
                   Opt.Restrict.c_str());
      return 2;
    }
  }

  // Load everything (targets + include closure) and analyze.
  Corpus C(Opt);
  size_t Unreadable = 0;
  for (const fs::path &P : TargetPaths)
    if (!C.load(P, /*IsTarget=*/true))
      ++Unreadable;
  if (Unreadable)
    std::fprintf(stderr, "crafty-lint: warning: %zu input file(s) unreadable\n",
                 Unreadable);
  std::vector<const ParsedFile *> Targets = C.targets(Opt.Restrict);
  if (Targets.empty()) {
    std::fprintf(stderr, "crafty-lint: no target files after --restrict\n");
    return 2;
  }
  Registry Reg = C.buildRegistry();
  if (Opt.Verbose)
    std::fprintf(stderr,
                 "crafty-lint: %zu file(s) loaded, %zu target(s), "
                 "%zu annotated name(s)\n",
                 C.size(), Targets.size(), Reg.AnnBySimple.size());

  std::vector<Diagnostic> Diags = runChecks(Targets, Reg);

  if (!Opt.WriteBaselinePath.empty()) {
    if (!writeBaseline(Opt.WriteBaselinePath, Diags)) {
      std::fprintf(stderr, "crafty-lint: cannot write %s\n",
                   Opt.WriteBaselinePath.string().c_str());
      return 2;
    }
    std::printf("crafty-lint: wrote %zu baseline entr%s to %s\n", Diags.size(),
                Diags.size() == 1 ? "y" : "ies",
                Opt.WriteBaselinePath.string().c_str());
    return 0;
  }

  std::vector<BaselineEntry> Baseline;
  if (!Opt.BaselinePath.empty()) {
    if (!loadBaseline(Opt.BaselinePath, Baseline)) {
      std::fprintf(stderr, "crafty-lint: cannot read baseline %s\n",
                   Opt.BaselinePath.string().c_str());
      return 2;
    }
    applyBaseline(Diags, Baseline);
  }

  size_t NewCount = 0, BaseCount = 0;
  for (const Diagnostic &D : Diags) {
    if (D.Baselined) {
      ++BaseCount;
      continue;
    }
    ++NewCount;
    std::printf("%s:%d: %s: %s [in %s]\n", D.File.c_str(), D.Line,
                D.Rule.c_str(), D.Message.c_str(), D.Func.c_str());
  }
  size_t Stale = 0;
  for (const BaselineEntry &B : Baseline) {
    if (B.Matched)
      continue;
    ++Stale;
    std::fprintf(stderr,
                 "crafty-lint: warning: stale baseline entry %s %s %s "
                 "(no longer fires -- remove it)\n",
                 B.Rule.c_str(), B.File.c_str(), B.Function.c_str());
  }

  if (!Opt.JsonPath.empty() && !writeJsonReport(Opt.JsonPath, Diags)) {
    std::fprintf(stderr, "crafty-lint: cannot write %s\n",
                 Opt.JsonPath.string().c_str());
    return 2;
  }

  std::printf("crafty-lint: %zu finding(s): %zu new, %zu baselined, "
              "%zu stale baseline entr%s, %zu file(s) analyzed\n",
              NewCount + BaseCount, NewCount, BaseCount, Stale,
              Stale == 1 ? "y" : "ies", Targets.size());
  return NewCount ? 1 : 0;
}
