//===- tools/crafty-lint/Driver.cpp - crafty-lint entry point -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver: loads the requested translation units (explicit
/// files, --scan directories, or a compile_commands.json via -p) plus
/// their project-local include closure -- in parallel across a small
/// thread pool -- builds the cross-file Registry and interprocedural
/// summaries, runs the seven rules (also parallel, partitioned by file),
/// filters against a committed baseline, and emits text plus optional
/// CheckReport-style JSON, SARIF 2.1.0, and a static-capacity report.
///
/// Exit codes: 0 clean (baselined findings allowed), 1 new findings or
/// stale baseline entries, 2 usage or I/O error.
///
//===----------------------------------------------------------------------===//

#include "Checks.h"
#include "Model.h"
#include "Summary.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fs = std::filesystem;
using namespace craftylint;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reader (for compile_commands.json and the baseline file)
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum Type { Null, Bool, Num, Str, Arr, Obj } T = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<JsonValue> A;
  std::map<std::string, JsonValue> O;

  const JsonValue *get(const std::string &Key) const {
    auto It = O.find(Key);
    return It == O.end() ? nullptr : &It->second;
  }
  std::string str(const std::string &Key) const {
    const JsonValue *V = get(Key);
    return V && V->T == Str ? V->S : "";
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : P(Text.c_str()),
                                                 End(P + Text.size()) {}

  bool parse(JsonValue &Out) { return value(Out) && (ws(), P == End); }

private:
  const char *P;
  const char *End;

  void ws() {
    while (P < End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (P + N <= End && std::memcmp(P, L, N) == 0) {
      P += N;
      return true;
    }
    return false;
  }
  bool string(std::string &S) {
    ws();
    if (P >= End || *P != '"')
      return false;
    ++P;
    S.clear();
    while (P < End && *P != '"') {
      if (*P == '\\' && P + 1 < End) {
        ++P;
        switch (*P) {
        case 'n': S.push_back('\n'); break;
        case 't': S.push_back('\t'); break;
        case 'r': S.push_back('\r'); break;
        case 'b': S.push_back('\b'); break;
        case 'f': S.push_back('\f'); break;
        case 'u': // Keep the escape verbatim; paths never need it.
          S += "\\u";
          break;
        default: S.push_back(*P); break;
        }
        ++P;
      } else {
        S.push_back(*P++);
      }
    }
    if (P >= End)
      return false;
    ++P;
    return true;
  }
  bool value(JsonValue &V) {
    ws();
    if (P >= End)
      return false;
    if (*P == '"') {
      V.T = JsonValue::Str;
      return string(V.S);
    }
    if (*P == '{') {
      ++P;
      V.T = JsonValue::Obj;
      ws();
      if (P < End && *P == '}') {
        ++P;
        return true;
      }
      while (P < End) {
        std::string Key;
        if (!string(Key))
          return false;
        ws();
        if (P >= End || *P != ':')
          return false;
        ++P;
        JsonValue Sub;
        if (!value(Sub))
          return false;
        V.O.emplace(std::move(Key), std::move(Sub));
        ws();
        if (P < End && *P == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= End || *P != '}')
        return false;
      ++P;
      return true;
    }
    if (*P == '[') {
      ++P;
      V.T = JsonValue::Arr;
      ws();
      if (P < End && *P == ']') {
        ++P;
        return true;
      }
      while (P < End) {
        JsonValue Sub;
        if (!value(Sub))
          return false;
        V.A.push_back(std::move(Sub));
        ws();
        if (P < End && *P == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= End || *P != ']')
        return false;
      ++P;
      return true;
    }
    if (lit("true")) {
      V.T = JsonValue::Bool;
      V.B = true;
      return true;
    }
    if (lit("false")) {
      V.T = JsonValue::Bool;
      V.B = false;
      return true;
    }
    if (lit("null")) {
      V.T = JsonValue::Null;
      return true;
    }
    // Number.
    const char *S = P;
    if (P < End && (*P == '-' || *P == '+'))
      ++P;
    while (P < End && (std::isdigit((unsigned char)*P) || *P == '.' ||
                       *P == 'e' || *P == 'E' || *P == '-' || *P == '+'))
      ++P;
    if (P == S)
      return false;
    V.T = JsonValue::Num;
    V.N = std::strtod(std::string(S, P).c_str(), nullptr);
    return true;
  }
};

std::string jsonEscape(const std::string &S) {
  std::string R;
  for (char C : S) {
    switch (C) {
    case '"': R += "\\\""; break;
    case '\\': R += "\\\\"; break;
    case '\n': R += "\\n"; break;
    case '\t': R += "\\t"; break;
    case '\r': R += "\\r"; break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        R += Buf;
      } else {
        R.push_back(C);
      }
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// File loading
//===----------------------------------------------------------------------===//

bool readFile(const fs::path &P, std::string &Out) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool isSourceFile(const fs::path &P) {
  std::string E = P.extension().string();
  return E == ".h" || E == ".hpp" || E == ".cc" || E == ".cpp" || E == ".cxx";
}

/// \p P normalized to a root-relative generic path, or its absolute form
/// when it lives outside \p Root.
std::string normPathTo(const fs::path &P, const fs::path &Root) {
  std::error_code EC;
  fs::path Canon = fs::weakly_canonical(fs::absolute(P), EC);
  if (EC)
    Canon = fs::absolute(P);
  fs::path CRoot = fs::weakly_canonical(fs::absolute(Root), EC);
  fs::path Rel = Canon.lexically_relative(CRoot);
  std::string S = Rel.generic_string();
  if (S.empty() || S[0] == '.')
    return Canon.generic_string();
  return S;
}

struct Options {
  fs::path Root = fs::current_path();
  std::vector<fs::path> IncludeDirs;
  std::vector<fs::path> ScanDirs;
  std::vector<fs::path> Files;
  fs::path CompDb;       // Directory holding compile_commands.json.
  fs::path BaselinePath;
  fs::path WriteBaselinePath;
  fs::path JsonPath;
  fs::path SarifPath;
  fs::path CapacityReportPath;
  std::string Restrict; // Normalized-path prefix filter for diagnosis.
  long long TxCapacityBudget = 4096; // 8-byte words per transaction.
  int Jobs = 0;          // 0: pick from hardware_concurrency.
  bool PruneBaseline = false;
  bool Verbose = false;
};

/// Loads, lexes and parses every requested file plus the project-local
/// include closure, keeping ParsedFiles at stable addresses. Files within
/// one closure round are parsed concurrently; registration (and therefore
/// the Registry) is order-independent by construction, and file iteration
/// is sorted by path so results do not depend on scheduling.
class Corpus {
public:
  Corpus(const Options &Opt) : Opt(Opt) {}

  /// Loads \p Paths (as targets) plus their include closure. Returns the
  /// number of unreadable inputs.
  size_t loadAll(const std::vector<fs::path> &Paths) {
    std::atomic<size_t> Unreadable{0};
    std::vector<std::pair<fs::path, bool>> Round; // (canon, isTarget)
    for (const fs::path &P : Paths)
      Round.push_back({canon(P), true});

    while (!Round.empty()) {
      // Drop paths already loaded or duplicated within the round.
      std::vector<std::pair<fs::path, bool>> Batch;
      std::set<std::string> InBatch;
      for (auto &PB : Round) {
        std::string Key = PB.first.generic_string();
        auto It = ByPath.find(Key);
        if (It != ByPath.end()) {
          if (PB.second)
            TargetSet.insert(It->second);
          continue;
        }
        if (InBatch.insert(Key).second)
          Batch.push_back(PB);
        else if (PB.second)
          for (auto &QB : Batch)
            if (QB.first.generic_string() == Key)
              QB.second = true;
      }
      Round.clear();
      if (Batch.empty())
        break;

      // Parse the batch concurrently into detached ParsedFiles.
      std::vector<std::unique_ptr<ParsedFile>> Parsed(Batch.size());
      std::atomic<size_t> Next{0};
      auto Work = [&]() {
        for (size_t I = Next.fetch_add(1); I < Batch.size();
             I = Next.fetch_add(1)) {
          std::string Text;
          if (!readFile(Batch[I].first, Text)) {
            if (Batch[I].second)
              ++Unreadable;
            continue;
          }
          auto PF = std::make_unique<ParsedFile>();
          PF->Lex = lexFile(normPath(Batch[I].first), Text);
          parseFile(*PF);
          Parsed[I] = std::move(PF);
        }
      };
      size_t NThreads = std::min<size_t>(jobs(), Batch.size());
      if (NThreads <= 1) {
        Work();
      } else {
        std::vector<std::thread> Pool;
        for (size_t I = 0; I < NThreads; ++I)
          Pool.emplace_back(Work);
        for (std::thread &Th : Pool)
          Th.join();
      }

      // Register sequentially and queue the next closure round.
      for (size_t I = 0; I < Batch.size(); ++I) {
        if (!Parsed[I])
          continue;
        Files.push_back(std::move(Parsed[I]));
        ParsedFile *PF = Files.back().get();
        ByPath[Batch[I].first.generic_string()] = PF;
        if (Batch[I].second)
          TargetSet.insert(PF);
        for (const std::string &Inc : PF->Lex.Includes) {
          fs::path Resolved =
              resolveInclude(Batch[I].first.parent_path(), Inc);
          if (!Resolved.empty())
            Round.push_back({Resolved, false});
        }
      }
    }
    return Unreadable.load();
  }

  std::string normPath(const fs::path &Canon) const {
    return normPathTo(Canon, Opt.Root);
  }

  size_t jobs() const {
    if (Opt.Jobs > 0)
      return (size_t)Opt.Jobs;
    unsigned HW = std::thread::hardware_concurrency();
    return HW ? std::min(HW, 8u) : 1;
  }

  std::vector<const ParsedFile *> targets(const std::string &Restrict) const {
    std::vector<const ParsedFile *> Out;
    for (const auto &PF : sorted()) {
      if (!TargetSet.count(PF))
        continue;
      if (!Restrict.empty() && PF->Lex.Path.rfind(Restrict, 0) != 0)
        continue;
      Out.push_back(PF);
    }
    return Out;
  }

  /// All parsed files in path order (deterministic regardless of the load
  /// schedule).
  std::vector<const ParsedFile *> sorted() const {
    std::vector<const ParsedFile *> Out;
    for (const auto &PF : Files)
      Out.push_back(PF.get());
    std::sort(Out.begin(), Out.end(),
              [](const ParsedFile *A, const ParsedFile *B) {
                return A->Lex.Path < B->Lex.Path;
              });
    return Out;
  }

  Registry buildRegistry() const {
    Registry Reg;
    for (const ParsedFile *PF : sorted())
      Reg.add(*PF);
    return Reg;
  }

  size_t size() const { return Files.size(); }

private:
  const Options &Opt;
  std::vector<std::unique_ptr<ParsedFile>> Files; // Stable addresses.
  std::map<std::string, ParsedFile *> ByPath;
  std::set<const ParsedFile *> TargetSet;

  fs::path canon(const fs::path &P) const {
    std::error_code EC;
    fs::path C = fs::weakly_canonical(fs::absolute(P), EC);
    return EC ? fs::absolute(P) : C;
  }

  fs::path resolveInclude(const fs::path &IncluderDir,
                          const std::string &Name) const {
    std::vector<fs::path> Dirs;
    Dirs.push_back(IncluderDir);
    for (const fs::path &D : Opt.IncludeDirs)
      Dirs.push_back(D);
    std::error_code EC;
    fs::path Root = fs::weakly_canonical(fs::absolute(Opt.Root), EC);
    for (const fs::path &D : Dirs) {
      fs::path Cand = fs::weakly_canonical(D / Name, EC);
      if (EC || !fs::exists(Cand, EC))
        continue;
      // Stay inside the project: never chase system headers.
      if (Cand.generic_string().rfind(Root.generic_string(), 0) != 0)
        continue;
      return Cand;
    }
    return {};
  }
};

//===----------------------------------------------------------------------===//
// Baseline
//===----------------------------------------------------------------------===//

struct BaselineEntry {
  std::string Rule;
  std::string File;
  std::string Function; // Empty matches any function in File.
  std::string Justification;
  int Matched = 0;
};

bool loadBaseline(const fs::path &Path, std::vector<BaselineEntry> &Out) {
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  JsonValue Root;
  if (!JsonParser(Text).parse(Root) || Root.T != JsonValue::Obj)
    return false;
  const JsonValue *Entries = Root.get("entries");
  if (!Entries || Entries->T != JsonValue::Arr)
    return false;
  for (const JsonValue &E : Entries->A) {
    if (E.T != JsonValue::Obj)
      continue;
    BaselineEntry B;
    B.Rule = E.str("rule");
    B.File = E.str("file");
    B.Function = E.str("function");
    B.Justification = E.str("justification");
    if (!B.Rule.empty() && !B.File.empty())
      Out.push_back(std::move(B));
  }
  return true;
}

void applyBaseline(std::vector<Diagnostic> &Diags,
                   std::vector<BaselineEntry> &Baseline) {
  for (Diagnostic &D : Diags) {
    for (BaselineEntry &B : Baseline) {
      if (B.Rule != D.Rule || B.File != D.File)
        continue;
      if (!B.Function.empty() && B.Function != D.Func)
        continue;
      D.Baselined = true;
      ++B.Matched;
      break;
    }
  }
}

bool writeBaseline(const fs::path &Path, const std::vector<Diagnostic> &Diags) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << "{\n  \"tool\": \"crafty-lint\",\n  \"entries\": [";
  std::set<std::string> Seen;
  bool First = true;
  for (const Diagnostic &D : Diags) {
    std::string Key = D.Rule + "|" + D.File + "|" + D.Func;
    if (!Seen.insert(Key).second)
      continue;
    if (!First)
      Out << ",";
    First = false;
    Out << "\n    { \"rule\": \"" << jsonEscape(D.Rule) << "\", \"file\": \""
        << jsonEscape(D.File) << "\", \"function\": \"" << jsonEscape(D.Func)
        << "\",\n      \"justification\": \"TODO: justify or fix\" }";
  }
  Out << "\n  ]\n}\n";
  return Out.good();
}

/// Rewrites the baseline keeping only entries that still matched a
/// finding, preserving their justifications.
bool pruneBaseline(const fs::path &Path,
                   const std::vector<BaselineEntry> &Baseline) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << "{\n  \"tool\": \"crafty-lint\",\n  \"entries\": [";
  bool First = true;
  for (const BaselineEntry &B : Baseline) {
    if (!B.Matched)
      continue;
    if (!First)
      Out << ",";
    First = false;
    Out << "\n    { \"rule\": \"" << jsonEscape(B.Rule) << "\", \"file\": \""
        << jsonEscape(B.File) << "\", \"function\": \""
        << jsonEscape(B.Function) << "\",\n      \"justification\": \""
        << jsonEscape(B.Justification) << "\" }";
  }
  Out << "\n  ]\n}\n";
  return Out.good();
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

bool writeJsonReport(const fs::path &Path, const CheckResult &Result) {
  const std::vector<Diagnostic> &Diags = Result.Diags;
  size_t NewCount = 0, BaseCount = 0;
  std::map<std::string, uint64_t> Counts;
  for (const Diagnostic &D : Diags) {
    ++Counts[D.Rule];
    (D.Baselined ? BaseCount : NewCount)++;
  }
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  // Mirrors src/check/CheckReport.h: checker/violations/lints/counts/reports.
  Out << "{ \"checker\": \"crafty-lint\", \"violations\": " << NewCount
      << ", \"lints\": " << BaseCount << ",\n  \"counts\": {";
  bool First = true;
  for (const auto &KV : Counts) {
    if (!First)
      Out << ", ";
    First = false;
    Out << "\"" << jsonEscape(KV.first) << "\": " << KV.second;
  }
  Out << "},\n  \"reports\": [";
  First = true;
  for (const Diagnostic &D : Diags) {
    if (!First)
      Out << ",";
    First = false;
    Out << "\n    { \"kind\": \"" << jsonEscape(D.Rule)
        << "\", \"violation\": " << (D.Baselined ? "false" : "true")
        << ", \"file\": \"" << jsonEscape(D.File) << "\", \"line\": " << D.Line
        << ",\n      \"function\": \"" << jsonEscape(D.Func)
        << "\", \"baselined\": " << (D.Baselined ? "true" : "false")
        << ",\n      \"message\": \"" << jsonEscape(D.Message) << "\" }";
  }
  Out << "\n  ],\n  \"capacities\": [";
  First = true;
  for (const CapacityEntry &C : Result.Capacities) {
    if (!First)
      Out << ",";
    First = false;
    Out << "\n    { \"function\": \"" << jsonEscape(C.QualName)
        << "\", \"file\": \"" << jsonEscape(C.File)
        << "\", \"line\": " << C.Line << ", \"bound\": \""
        << jsonEscape(C.Bound) << "\" }";
  }
  Out << "\n  ]\n}\n";
  return Out.good();
}

struct RuleDoc {
  const char *Id;
  const char *Short;
};

const RuleDoc RuleDocs[] = {
    {"pm-raw-store",
     "Persistent store bypasses the transactional store API / undo log"},
    {"htm-unsafe-call",
     "Transaction body reaches an operation that aborts hardware "
     "transactions"},
    {"flush-without-drain",
     "Cache-line write-back can reach function exit without a drain fence"},
    {"unbounded-tx-writes",
     "Loop issues transactional stores with no visible iteration bound"},
    {"persist-ordering",
     "Commit-marker/publish store not ordered after its data is durable"},
    {"pm-escape",
     "Address of persistent memory escapes the transaction scope"},
    {"tx-capacity",
     "Static transaction write-set bound exceeds the HTM capacity budget"},
};

/// SARIF 2.1.0, one run, results carrying root-relative artifact URIs --
/// the layout GitHub code scanning ingests.
bool writeSarif(const fs::path &Path, const std::vector<Diagnostic> &Diags) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [ {\n"
      << "    \"tool\": { \"driver\": {\n"
      << "      \"name\": \"crafty-lint\",\n"
      << "      \"informationUri\": "
         "\"https://example.invalid/crafty/tools/crafty-lint\",\n"
      << "      \"rules\": [";
  bool First = true;
  for (const RuleDoc &R : RuleDocs) {
    if (!First)
      Out << ",";
    First = false;
    Out << "\n        { \"id\": \"" << R.Id
        << "\", \"shortDescription\": { \"text\": \"" << jsonEscape(R.Short)
        << "\" } }";
  }
  Out << "\n      ]\n    } },\n    \"results\": [";
  First = true;
  for (const Diagnostic &D : Diags) {
    if (!First)
      Out << ",";
    First = false;
    Out << "\n      {\n        \"ruleId\": \"" << jsonEscape(D.Rule)
        << "\",\n        \"level\": \"" << (D.Baselined ? "note" : "error")
        << "\",\n        \"message\": { \"text\": \""
        << jsonEscape(D.Message + " [in " + D.Func + "]")
        << "\" },\n        \"locations\": [ { \"physicalLocation\": {\n"
        << "          \"artifactLocation\": { \"uri\": \""
        << jsonEscape(D.File) << "\" },\n          \"region\": { "
        << "\"startLine\": " << (D.Line > 0 ? D.Line : 1)
        << " }\n        } } ]\n      }";
  }
  Out << "\n    ]\n  } ]\n}\n";
  return Out.good();
}

/// `<bound> <qualified-name>` per CRAFTY_TX_BODY root, sorted by name:
/// consumed by tests that cross-check the static bound against dynamic
/// HtmStats counters.
bool writeCapacityReport(const fs::path &Path,
                         const std::vector<CapacityEntry> &Capacities) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  for (const CapacityEntry &C : Capacities)
    Out << C.Bound << " " << C.QualName << "\n";
  return Out.good();
}

//===----------------------------------------------------------------------===//
// main
//===----------------------------------------------------------------------===//

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] [files...]\n"
      "\n"
      "Crafty persistence & HTM-discipline analyzer. Options:\n"
      "  -p <dir>              read targets from <dir>/compile_commands.json\n"
      "                        (missing db: warn and fall back to --scan)\n"
      "  --scan <dir>          recursively lint *.h/*.hpp/*.cc/*.cpp/*.cxx\n"
      "  --restrict <prefix>   only diagnose files under this (root-relative)\n"
      "                        prefix; others still feed the call graph\n"
      "  --root <dir>          path-normalization base (default: cwd)\n"
      "  --include-dir <dir>   include-closure search dir (repeatable;\n"
      "                        default: root and root/src)\n"
      "  --baseline <file>     accepted-findings file; matches are reported\n"
      "                        as baselined, not as new findings. Entries\n"
      "                        that no longer fire FAIL the run (stale)\n"
      "  --prune-baseline      rewrite --baseline dropping stale entries\n"
      "                        instead of failing on them\n"
      "  --write-baseline <f>  write current findings as a baseline and exit\n"
      "  --json <file>         CheckReport-style JSON artifact\n"
      "  --sarif <file>        SARIF 2.1.0 artifact (GitHub code scanning)\n"
      "  --capacity-report <f> write `<bound> <function>` per CRAFTY_TX_BODY\n"
      "  --tx-capacity-budget <n>  HTM write budget in 8-byte words for the\n"
      "                        tx-capacity rule (default 4096 = 512 lines)\n"
      "  --jobs <n>            parser/checker thread count (default: cores,\n"
      "                        capped at 8)\n"
      "  --verbose             loading/statistics chatter on stderr\n"
      "\n"
      "Suppress one finding in source with:\n"
      "  // crafty-lint: suppress(<rule>) <justification>\n"
      "on the diagnosed line or the line above it.\n"
      "Exit: 0 clean, 1 new findings or stale baseline, 2 usage/IO error.\n",
      Prog);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "crafty-lint: %s requires an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (A == "-p") {
      const char *V = Next("-p");
      if (!V)
        return 2;
      Opt.CompDb = V;
    } else if (A == "--scan") {
      const char *V = Next("--scan");
      if (!V)
        return 2;
      Opt.ScanDirs.push_back(V);
    } else if (A == "--restrict") {
      const char *V = Next("--restrict");
      if (!V)
        return 2;
      Opt.Restrict = V;
    } else if (A == "--root") {
      const char *V = Next("--root");
      if (!V)
        return 2;
      Opt.Root = V;
    } else if (A == "--include-dir") {
      const char *V = Next("--include-dir");
      if (!V)
        return 2;
      Opt.IncludeDirs.push_back(V);
    } else if (A == "--baseline") {
      const char *V = Next("--baseline");
      if (!V)
        return 2;
      Opt.BaselinePath = V;
    } else if (A == "--prune-baseline") {
      Opt.PruneBaseline = true;
    } else if (A == "--write-baseline") {
      const char *V = Next("--write-baseline");
      if (!V)
        return 2;
      Opt.WriteBaselinePath = V;
    } else if (A == "--json") {
      const char *V = Next("--json");
      if (!V)
        return 2;
      Opt.JsonPath = V;
    } else if (A == "--sarif") {
      const char *V = Next("--sarif");
      if (!V)
        return 2;
      Opt.SarifPath = V;
    } else if (A == "--capacity-report") {
      const char *V = Next("--capacity-report");
      if (!V)
        return 2;
      Opt.CapacityReportPath = V;
    } else if (A == "--tx-capacity-budget") {
      const char *V = Next("--tx-capacity-budget");
      if (!V)
        return 2;
      Opt.TxCapacityBudget = std::strtoll(V, nullptr, 10);
      if (Opt.TxCapacityBudget <= 0) {
        std::fprintf(stderr,
                     "crafty-lint: --tx-capacity-budget must be positive\n");
        return 2;
      }
    } else if (A == "--jobs") {
      const char *V = Next("--jobs");
      if (!V)
        return 2;
      Opt.Jobs = std::atoi(V);
      if (Opt.Jobs < 1) {
        std::fprintf(stderr, "crafty-lint: --jobs must be >= 1\n");
        return 2;
      }
    } else if (A == "--verbose") {
      Opt.Verbose = true;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "crafty-lint: unknown option '%s'\n", A.c_str());
      return usage(argv[0]);
    } else {
      Opt.Files.push_back(A);
    }
  }
  if (Opt.IncludeDirs.empty()) {
    Opt.IncludeDirs.push_back(Opt.Root);
    Opt.IncludeDirs.push_back(Opt.Root / "src");
  }

  // Gather target files.
  std::vector<fs::path> TargetPaths = Opt.Files;
  std::error_code EC;
  for (const fs::path &Dir : Opt.ScanDirs) {
    if (!fs::is_directory(Dir, EC)) {
      std::fprintf(stderr, "crafty-lint: --scan '%s' is not a directory\n",
                   Dir.string().c_str());
      return 2;
    }
    for (auto It = fs::recursive_directory_iterator(Dir, EC);
         It != fs::recursive_directory_iterator(); It.increment(EC)) {
      if (EC)
        break;
      const fs::directory_entry &E = *It;
      std::string Name = E.path().filename().string();
      if (E.is_directory(EC) &&
          (Name == "build" || (!Name.empty() && Name[0] == '.'))) {
        It.disable_recursion_pending();
        continue;
      }
      if (E.is_regular_file(EC) && isSourceFile(E.path()))
        TargetPaths.push_back(E.path());
    }
  }
  if (!Opt.CompDb.empty()) {
    fs::path DbPath = Opt.CompDb / "compile_commands.json";
    std::string Text;
    if (!readFile(DbPath, Text)) {
      // A missing database downgrades to the --scan/file list so `lint`
      // keeps working in build trees configured without
      // CMAKE_EXPORT_COMPILE_COMMANDS.
      std::fprintf(stderr,
                   "crafty-lint: warning: cannot read %s; falling back to "
                   "--scan/file arguments\n",
                   DbPath.string().c_str());
    } else {
      JsonValue Db;
      if (!JsonParser(Text).parse(Db) || Db.T != JsonValue::Arr) {
        std::fprintf(stderr, "crafty-lint: cannot parse %s\n",
                     DbPath.string().c_str());
        return 2;
      }
      for (const JsonValue &Entry : Db.A) {
        if (Entry.T != JsonValue::Obj)
          continue;
        std::string File = Entry.str("file");
        if (File.empty())
          continue;
        fs::path FP = File;
        if (FP.is_relative())
          FP = fs::path(Entry.str("directory")) / FP;
        TargetPaths.push_back(FP);
      }
    }
  }
  if (TargetPaths.empty()) {
    std::fprintf(stderr, "crafty-lint: no input files\n");
    return usage(argv[0]);
  }
  if (!Opt.Restrict.empty()) {
    // Don't even load out-of-scope TUs (e.g. third-party sources a compdb
    // drags in); the in-scope files' include closure is all the registry
    // context the checks need.
    std::vector<fs::path> Kept;
    for (const fs::path &P : TargetPaths)
      if (normPathTo(P, Opt.Root).rfind(Opt.Restrict, 0) == 0)
        Kept.push_back(P);
    TargetPaths.swap(Kept);
    if (TargetPaths.empty()) {
      std::fprintf(stderr, "crafty-lint: no input files under --restrict "
                           "prefix '%s'\n",
                   Opt.Restrict.c_str());
      return 2;
    }
  }

  // Load everything (targets + include closure) and analyze.
  Corpus C(Opt);
  size_t Unreadable = C.loadAll(TargetPaths);
  if (Unreadable)
    std::fprintf(stderr, "crafty-lint: warning: %zu input file(s) unreadable\n",
                 Unreadable);
  std::vector<const ParsedFile *> Targets = C.targets(Opt.Restrict);
  if (Targets.empty()) {
    std::fprintf(stderr, "crafty-lint: no target files after --restrict\n");
    return 2;
  }
  Registry Reg = C.buildRegistry();
  Summaries Sums(Reg);
  Sums.compute(C.sorted());
  if (Opt.Verbose)
    std::fprintf(stderr,
                 "crafty-lint: %zu file(s) loaded, %zu target(s), "
                 "%zu annotated name(s), %zu thread(s)\n",
                 C.size(), Targets.size(), Reg.AnnBySimple.size(), C.jobs());

  CheckOptions CheckOpt;
  CheckOpt.TxCapacityBudget = Opt.TxCapacityBudget;

  // Partition the targets across the pool; summaries are immutable now and
  // each Checker only touches its own files' diagnostics.
  CheckResult Result;
  {
    size_t NThreads = std::min(C.jobs(), Targets.size());
    if (NThreads <= 1) {
      Result = runChecks(Targets, Sums, CheckOpt);
    } else {
      std::vector<std::vector<const ParsedFile *>> Parts(NThreads);
      for (size_t I = 0; I < Targets.size(); ++I)
        Parts[I % NThreads].push_back(Targets[I]);
      std::vector<CheckResult> PartResults(NThreads);
      std::vector<std::thread> Pool;
      for (size_t I = 0; I < NThreads; ++I)
        Pool.emplace_back([&, I]() {
          PartResults[I] = runChecks(Parts[I], Sums, CheckOpt);
        });
      for (std::thread &Th : Pool)
        Th.join();
      std::set<std::string> Seen; // Cross-partition dedup (htm-unsafe can
                                  // land the same site via two roots).
      for (CheckResult &PR : PartResults) {
        for (Diagnostic &D : PR.Diags) {
          std::string Key =
              D.Rule + "|" + D.File + "|" + std::to_string(D.Line) + "|" +
              D.Func;
          if (Seen.insert(Key).second)
            Result.Diags.push_back(std::move(D));
        }
        for (CapacityEntry &CE : PR.Capacities)
          Result.Capacities.push_back(std::move(CE));
      }
      std::sort(Result.Diags.begin(), Result.Diags.end(),
                [](const Diagnostic &A, const Diagnostic &B) {
                  if (A.File != B.File)
                    return A.File < B.File;
                  if (A.Line != B.Line)
                    return A.Line < B.Line;
                  return A.Rule < B.Rule;
                });
    }
    std::sort(Result.Capacities.begin(), Result.Capacities.end(),
              [](const CapacityEntry &A, const CapacityEntry &B) {
                return A.QualName < B.QualName;
              });
  }
  std::vector<Diagnostic> &Diags = Result.Diags;

  if (!Opt.WriteBaselinePath.empty()) {
    if (!writeBaseline(Opt.WriteBaselinePath, Diags)) {
      std::fprintf(stderr, "crafty-lint: cannot write %s\n",
                   Opt.WriteBaselinePath.string().c_str());
      return 2;
    }
    std::printf("crafty-lint: wrote %zu baseline entr%s to %s\n", Diags.size(),
                Diags.size() == 1 ? "y" : "ies",
                Opt.WriteBaselinePath.string().c_str());
    return 0;
  }

  std::vector<BaselineEntry> Baseline;
  if (!Opt.BaselinePath.empty()) {
    if (!loadBaseline(Opt.BaselinePath, Baseline)) {
      std::fprintf(stderr, "crafty-lint: cannot read baseline %s\n",
                   Opt.BaselinePath.string().c_str());
      return 2;
    }
    applyBaseline(Diags, Baseline);
  }

  size_t NewCount = 0, BaseCount = 0;
  for (const Diagnostic &D : Diags) {
    if (D.Baselined) {
      ++BaseCount;
      continue;
    }
    ++NewCount;
    std::printf("%s:%d: %s: %s [in %s]\n", D.File.c_str(), D.Line,
                D.Rule.c_str(), D.Message.c_str(), D.Func.c_str());
  }
  size_t Stale = 0;
  for (const BaselineEntry &B : Baseline) {
    if (B.Matched)
      continue;
    ++Stale;
    std::fprintf(stderr,
                 "crafty-lint: %s: stale baseline entry %s %s %s "
                 "(no longer fires -- remove it or rerun with "
                 "--prune-baseline)\n",
                 Opt.PruneBaseline ? "pruning" : "error", B.Rule.c_str(),
                 B.File.c_str(), B.Function.c_str());
  }
  if (Stale && Opt.PruneBaseline) {
    if (!pruneBaseline(Opt.BaselinePath, Baseline)) {
      std::fprintf(stderr, "crafty-lint: cannot rewrite %s\n",
                   Opt.BaselinePath.string().c_str());
      return 2;
    }
    std::printf("crafty-lint: pruned %zu stale entr%s from %s\n", Stale,
                Stale == 1 ? "y" : "ies",
                Opt.BaselinePath.string().c_str());
    Stale = 0;
  }

  if (!Opt.JsonPath.empty() && !writeJsonReport(Opt.JsonPath, Result)) {
    std::fprintf(stderr, "crafty-lint: cannot write %s\n",
                 Opt.JsonPath.string().c_str());
    return 2;
  }
  if (!Opt.SarifPath.empty() && !writeSarif(Opt.SarifPath, Diags)) {
    std::fprintf(stderr, "crafty-lint: cannot write %s\n",
                 Opt.SarifPath.string().c_str());
    return 2;
  }
  if (!Opt.CapacityReportPath.empty() &&
      !writeCapacityReport(Opt.CapacityReportPath, Result.Capacities)) {
    std::fprintf(stderr, "crafty-lint: cannot write %s\n",
                 Opt.CapacityReportPath.string().c_str());
    return 2;
  }

  std::printf("crafty-lint: %zu finding(s): %zu new, %zu baselined, "
              "%zu stale baseline entr%s, %zu file(s) analyzed\n",
              NewCount + BaseCount, NewCount, BaseCount, Stale,
              Stale == 1 ? "y" : "ies", Targets.size());
  return (NewCount || Stale) ? 1 : 0;
}
