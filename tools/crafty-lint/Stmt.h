//===- tools/crafty-lint/Stmt.h - Statement tree over tokens ---*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured statement tree over a function body's token range: the
/// common frontend for the control-flow graph (Cfg.h) and the tree-walking
/// rules. Statements keep token subranges (with "holes" for embedded
/// lambda/init-list bodies) rather than a real AST; that is all the rules
/// need, and it keeps the frontend compiler-independent.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_STMT_H
#define CRAFTY_LINT_STMT_H

#include "Lexer.h"

#include <functional>
#include <utility>
#include <vector>

namespace craftylint {

struct Stmt {
  enum StmtKind {
    Seq,
    If,
    Loop,
    Switch,
    Case, // A `case x:` / `default:` label (block leader inside a switch).
    Return,
    Break,
    Continue,
    Expr,
    Lambda, // A braced body embedded in an expression: lambda or init-list.
  } Kind = Seq;
  int Line = 0;
  bool PostCond = false;       // do/while: body runs before the condition.
  size_t HdrB = 0, HdrE = 0;   // Condition/header tokens (If/Loop/Switch).
  size_t ExprB = 0, ExprE = 0; // Token range (Expr/Return), incl. holes.
  std::vector<std::pair<size_t, size_t>> Holes; // Embedded-body subranges.
  std::vector<Stmt> Kids;
};

/// Parses the token range [B, E) of \p T as a statement sequence.
Stmt parseStmtTree(const std::vector<Token> &T, size_t B, size_t E);

/// Iterates tokens of [B, E) minus \p Holes, invoking \p Fn(index).
void forEachTok(size_t B, size_t E,
                const std::vector<std::pair<size_t, size_t>> &Holes,
                const std::function<void(size_t)> &Fn);

} // namespace craftylint

#endif // CRAFTY_LINT_STMT_H
