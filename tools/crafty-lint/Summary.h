//===- tools/crafty-lint/Summary.h - Call-graph summaries ------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural layer over the Registry's call graph: per-function
/// summaries computed to fixpoint before the rules run, shared read-only
/// by every Checker thread.
///
///   - TxBound: static upper bound on transactional stores (tx-capacity).
///   - AlwaysDrains: every path through the callee performs a full drain
///     (kills pending write-backs in flush-without-drain/persist-ordering).
///   - Escape masks: which pointer parameters may be stored to memory that
///     outlives the call (pm-escape), and whether the return value aliases
///     a parameter or a pm-derived address.
///   - The transaction cone: functions reachable from CRAFTY_TX_BODY roots.
///
/// Summaries also centralize callee resolution. On top of the class-scoped
/// rules from the token model (a bare `insert(...)` in class A must not
/// bind to B::insert), a simple name with exactly one definition in the
/// whole program resolves to it even through an unknown receiver
/// (`Map->putTx(...)`): required for capacity bounds to compose across
/// subsystem boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LINT_SUMMARY_H
#define CRAFTY_LINT_SUMMARY_H

#include "Cfg.h"
#include "Model.h"
#include "Syntax.h"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace craftylint {

/// Lattice for static transactional-store counts.
struct TxBound {
  enum BoundKind {
    Finite,    // Known upper bound N.
    Asserted,  // A CRAFTY_TX_BOUND whose expression is not evaluable:
               // the author asserts boundedness, the value is unknown.
    Unbounded, // No visible bound.
  } K = Finite;
  long long N = 0;

  static TxBound finite(long long V) { return TxBound{Finite, V}; }
  static TxBound asserted() { return TxBound{Asserted, 0}; }
  static TxBound unbounded() { return TxBound{Unbounded, 0}; }

  TxBound operator+(const TxBound &O) const {
    if (K == Unbounded || O.K == Unbounded)
      return unbounded();
    if (K == Asserted || O.K == Asserted)
      return asserted();
    return finite(N + O.N);
  }
  static TxBound max(const TxBound &A, const TxBound &B) {
    if (A.K == Unbounded || B.K == Unbounded)
      return unbounded();
    if (A.K == Asserted || B.K == Asserted)
      return asserted();
    return finite(A.N > B.N ? A.N : B.N);
  }
  /// Loop scaling: \p Iters iterations of this per-iteration bound.
  TxBound scaled(long long Iters) const {
    if (K == Finite)
      return finite(N * (Iters < 0 ? 0 : Iters));
    return *this;
  }
  bool isZero() const { return K == Finite && N == 0; }
  std::string str() const;
};

/// Cached per-function IR: statement tree plus its CFG. The tree owns the
/// token ranges the CFG atoms alias, so both live together.
struct FuncIR {
  Stmt Tree;
  Cfg G;
};

struct FuncSummary {
  /// Trusted primitive (TX_SAFE / TX_STORE_API / FLUSH_API / DRAIN_API):
  /// annotation carries the semantics, the body is not analyzed.
  bool Trusted = false;
  /// Every path through the function executes a full persist drain.
  bool AlwaysDrains = false;
  /// Tx stores per invocation, lambda bodies excluded (a lambda is a
  /// transaction boundary).
  TxBound InlineBound;
  /// Per-hardware-transaction bound: the max of InlineBound, any embedded
  /// lambda body (e.g. the `Backend->run(..., [&](TxnContext &Tx) {...})`
  /// pattern), and the same measure over callees.
  TxBound TxnBound;
  bool MayTxStore = false;
  /// Bit i set: parameter i may be stored to memory outliving the call.
  uint32_t EscapesParam = 0;
  /// Bit i set: the return value may alias parameter i.
  uint32_t ReturnsParam = 0;
  /// The return value may be a pm-derived address.
  bool ReturnsPmAddr = false;
};

class Summaries {
public:
  explicit Summaries(const Registry &Reg) : Reg(Reg) {}

  /// Computes every summary to fixpoint over \p Files (the full parsed
  /// corpus, not just the lint targets). Single-threaded; afterwards the
  /// object is immutable and safe to share across Checker threads.
  void compute(const std::vector<const ParsedFile *> &Files);

  const Registry &registry() const { return Reg; }
  const FuncSummary &get(const FunctionInfo *F) const;
  /// The function's annotations unioned with any same-qualified-name
  /// declaration (annotations usually live on the in-class declaration).
  Annotations effectiveAnn(const FunctionInfo &F) const;

  /// Callee definitions the call site \p S may bind to, from a function
  /// of class \p CallerClass.
  std::vector<const FunctionInfo *>
  resolveCallees(const std::string &CallerClass, const CallSite &S) const;

  /// True when \p F is reachable from a CRAFTY_TX_BODY root (including
  /// the roots themselves).
  bool inTxCone(const FunctionInfo *F) const { return TxCone.count(F) > 0; }

  /// Cached statement tree + CFG for a definition (null for prototypes).
  const FuncIR *ir(const FunctionInfo *F) const;

  /// Declared CRAFTY_TX_CAPACITY budget of \p F, if present and evaluable.
  std::optional<long long> declaredCapacity(const FunctionInfo &F) const;

private:
  const Registry &Reg;
  std::vector<const FunctionInfo *> Defs;
  std::map<const FunctionInfo *, FuncSummary> Map;
  std::map<const FunctionInfo *, std::unique_ptr<FuncIR>> IRs;
  std::set<const FunctionInfo *> TxCone;
  /// QualName -> the FunctionInfo (definition or prototype) carrying its
  /// CRAFTY_TX_CAPACITY annotation.
  std::map<std::string, const FunctionInfo *> CapacityByQual;

  // Capacity computation (memoized; Visiting detects recursion cycles).
  std::map<const FunctionInfo *, TxBound> InlineMemo;
  std::map<const FunctionInfo *, TxBound> TxnMemo;
  std::set<const FunctionInfo *> Visiting;
  std::set<const FunctionInfo *> CycleHit; // Back-edge targets seen.

  TxBound inlineBoundOf(const FunctionInfo *F);
  TxBound txnBoundOf(const FunctionInfo *F);
  TxBound costStmt(const FunctionInfo &F, const Stmt &S);
  TxBound costRange(const FunctionInfo &F, size_t B, size_t E,
                    const std::vector<std::pair<size_t, size_t>> *Holes);
  TxBound lambdaMax(const FunctionInfo &F, const Stmt &S);
  void computeDrains();
  void computeEscapes();
  void computeTxCone();
};

/// Runs the gen/kill pointer-escape engine over \p F in diagnosis mode:
/// \p Diag is invoked at each sink where a pm-derived address flows into
/// memory that outlives the transaction scope. (Summary mode -- parameter
/// escape masks -- runs inside Summaries::compute.)
void diagnoseEscapes(const FunctionInfo &F, const Summaries &Sums,
                     const std::function<void(int, const std::string &)> &Diag);

} // namespace craftylint

#endif // CRAFTY_LINT_SUMMARY_H
