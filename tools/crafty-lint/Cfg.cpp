//===- tools/crafty-lint/Cfg.cpp - Basic-block control-flow graph ---------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Cfg.h"

#include <algorithm>
#include <sstream>

namespace craftylint {

namespace {

class CfgBuilder {
public:
  Cfg build(const Stmt &Body) {
    G.Entry = newBlock(); // 0
    G.Exit = newBlock();  // 1
    Cur = G.Entry;
    buildStmt(Body);
    edge(Cur, G.Exit);
    G.Blocks[Cur].FallsToExit = true;
    finalize();
    return std::move(G);
  }

private:
  Cfg G;
  int Cur = 0;
  std::vector<int> BreakTargets;
  std::vector<int> ContinueTargets;

  int newBlock() {
    G.Blocks.emplace_back();
    return (int)G.Blocks.size() - 1;
  }

  void edge(int From, int To) { G.Blocks[From].Succs.push_back(To); }

  void atom(CfgAtom::AtomKind K, size_t B, size_t E,
            const std::vector<std::pair<size_t, size_t>> *Holes, int Line) {
    G.Blocks[Cur].Atoms.push_back(CfgAtom{K, B, E, Holes, Line});
  }

  void buildStmt(const Stmt &S) {
    switch (S.Kind) {
    case Stmt::Seq:
      for (const Stmt &K : S.Kids)
        buildStmt(K);
      return;
    case Stmt::Case:
      // A case label outside switch-body position (nested oddity): no-op.
      return;
    case Stmt::Lambda:
      // Not part of this function's flow.
      return;
    case Stmt::Expr:
      if (S.ExprB < S.ExprE)
        atom(CfgAtom::Code, S.ExprB, S.ExprE, &S.Holes, S.Line);
      return;
    case Stmt::Return: {
      atom(CfgAtom::Ret, S.ExprB, S.ExprE, &S.Holes, S.Line);
      edge(Cur, G.Exit);
      Cur = newBlock(); // Unreachable continuation.
      return;
    }
    case Stmt::Break: {
      if (!BreakTargets.empty()) {
        edge(Cur, BreakTargets.back());
      } else {
        edge(Cur, G.Exit);
        G.Blocks[Cur].FallsToExit = true;
      }
      Cur = newBlock();
      return;
    }
    case Stmt::Continue: {
      if (!ContinueTargets.empty()) {
        edge(Cur, ContinueTargets.back());
      } else {
        edge(Cur, G.Exit);
        G.Blocks[Cur].FallsToExit = true;
      }
      Cur = newBlock();
      return;
    }
    case Stmt::If: {
      atom(CfgAtom::Header, S.HdrB, S.HdrE, nullptr, S.Line);
      int Cond = Cur;
      int Then = newBlock();
      edge(Cond, Then);
      Cur = Then;
      if (!S.Kids.empty())
        buildStmt(S.Kids[0]);
      int ThenEnd = Cur;
      int ElseEnd = -1;
      if (S.Kids.size() > 1) {
        int Else = newBlock();
        edge(Cond, Else);
        Cur = Else;
        buildStmt(S.Kids[1]);
        ElseEnd = Cur;
      }
      int Join = newBlock();
      edge(ThenEnd, Join);
      if (ElseEnd >= 0)
        edge(ElseEnd, Join);
      else
        edge(Cond, Join); // Condition false: straight through.
      Cur = Join;
      return;
    }
    case Stmt::Loop: {
      int ExitB = newBlock();
      if (!S.PostCond) {
        // while / for: header evaluated first; back edge from body end.
        int Hdr = newBlock();
        edge(Cur, Hdr);
        Cur = Hdr;
        atom(CfgAtom::Header, S.HdrB, S.HdrE, nullptr, S.Line);
        int BodyB = newBlock();
        edge(Hdr, BodyB);
        edge(Hdr, ExitB);
        BreakTargets.push_back(ExitB);
        ContinueTargets.push_back(Hdr);
        Cur = BodyB;
        if (!S.Kids.empty())
          buildStmt(S.Kids[0]);
        edge(Cur, Hdr); // Back edge.
        BreakTargets.pop_back();
        ContinueTargets.pop_back();
      } else {
        // do/while: body first, condition after; back edge from header.
        int BodyB = newBlock();
        edge(Cur, BodyB);
        int Hdr = newBlock();
        BreakTargets.push_back(ExitB);
        ContinueTargets.push_back(Hdr);
        Cur = BodyB;
        if (!S.Kids.empty())
          buildStmt(S.Kids[0]);
        edge(Cur, Hdr);
        Cur = Hdr;
        atom(CfgAtom::Header, S.HdrB, S.HdrE, nullptr, S.Line);
        edge(Hdr, BodyB); // Back edge.
        edge(Hdr, ExitB);
        BreakTargets.pop_back();
        ContinueTargets.pop_back();
      }
      Cur = ExitB;
      return;
    }
    case Stmt::Switch: {
      atom(CfgAtom::Header, S.HdrB, S.HdrE, nullptr, S.Line);
      int Cond = Cur;
      int ExitB = newBlock();
      BreakTargets.push_back(ExitB);
      // Pre-case code is unreachable; give it a block with no preds.
      Cur = newBlock();
      bool SawCase = false;
      const Stmt *Body = S.Kids.empty() ? nullptr : &S.Kids[0];
      if (Body && Body->Kind == Stmt::Seq) {
        for (const Stmt &K : Body->Kids) {
          if (K.Kind == Stmt::Case) {
            int Label = newBlock();
            edge(Cond, Label);   // Dispatch from the switch head.
            edge(Cur, Label);    // Fallthrough from the previous case.
            Cur = Label;
            SawCase = true;
          } else {
            buildStmt(K);
          }
        }
      } else if (Body) {
        buildStmt(*Body);
      }
      (void)SawCase;
      BreakTargets.pop_back();
      edge(Cur, ExitB); // Fallthrough off the last case.
      // Without (visible) default coverage the condition may skip the
      // whole switch; keep the conservative may-path.
      edge(Cond, ExitB);
      Cur = ExitB;
      return;
    }
    }
  }

  void finalize() {
    for (CfgBlock &B : G.Blocks) {
      std::sort(B.Succs.begin(), B.Succs.end());
      B.Succs.erase(std::unique(B.Succs.begin(), B.Succs.end()),
                    B.Succs.end());
    }
    for (size_t I = 0; I < G.Blocks.size(); ++I)
      for (int S : G.Blocks[I].Succs)
        G.Blocks[S].Preds.push_back((int)I);
  }
};

} // namespace

Cfg buildCfg(const Stmt &Body) { return CfgBuilder().build(Body); }

std::string Cfg::dump() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    const CfgBlock &B = Blocks[I];
    if ((int)I != Entry && (int)I != Exit && B.Atoms.empty() &&
        B.Preds.empty() && B.Succs.empty())
      continue; // Dead filler block.
    OS << "B" << I;
    if ((int)I == Entry)
      OS << "(entry)";
    if ((int)I == Exit)
      OS << "(exit)";
    if (!B.Atoms.empty()) {
      OS << " [";
      for (size_t A = 0; A < B.Atoms.size(); ++A) {
        if (A)
          OS << " ";
        const CfgAtom &At = B.Atoms[A];
        OS << (At.Kind == CfgAtom::Header ? "hdr"
               : At.Kind == CfgAtom::Ret  ? "ret"
                                          : "code")
           << "@" << At.Line;
      }
      OS << "]";
    }
    if (!B.Succs.empty()) {
      OS << " ->";
      for (int S : B.Succs)
        OS << " " << S;
    }
    OS << "\n";
  }
  return OS.str();
}

} // namespace craftylint
