//===- tools/crafty-lint/Syntax.cpp - Token-level syntax helpers ----------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Syntax.h"

#include "Model.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace craftylint {

bool isKeyword(const std::string &S) {
  static const std::set<std::string> K = {
      "if",       "else",    "for",      "while",   "do",       "switch",
      "case",     "default", "return",   "break",   "continue", "sizeof",
      "alignof",  "new",     "delete",   "throw",   "try",      "catch",
      "goto",     "const",   "constexpr", "static",  "auto",     "struct",
      "class",    "enum",    "union",    "typename", "template", "using",
      "namespace", "public",  "private",  "protected", "noexcept", "co_await",
      "co_return", "co_yield", "static_assert", "decltype", "assert",
  };
  return K.count(S) > 0;
}

bool isAllCapsName(const std::string &S) {
  if (S.size() < 2)
    return false;
  bool HasAlpha = false;
  for (char C : S) {
    if (std::islower((unsigned char)C))
      return false;
    if (std::isupper((unsigned char)C))
      HasAlpha = true;
  }
  return HasAlpha;
}

bool isKConstName(const std::string &S) {
  return S.size() >= 2 && S[0] == 'k' && std::isupper((unsigned char)S[1]);
}

const std::set<std::string> &builtinUnsafe() {
  static const std::set<std::string> S = {
      // Allocation (may mmap / take locks / fault).
      "malloc", "calloc", "realloc", "free", "aligned_alloc",
      "posix_memalign",
      // stdio / I/O.
      "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
      "puts", "putchar", "fputs", "fputc", "fwrite", "fread", "fopen",
      "fclose", "fflush", "getline", "scanf", "fscanf", "perror",
      // POSIX I/O and memory syscalls.
      "open", "close", "read", "write", "pread", "pwrite", "lseek", "mmap",
      "munmap", "msync", "mprotect", "ftruncate", "fsync", "fdatasync",
      "ioctl", "syscall",
      // Sockets.
      "socket", "send", "recv", "sendto", "recvfrom", "accept", "connect",
      "bind", "listen",
      // Scheduling / blocking.
      "sleep", "usleep", "nanosleep", "sched_yield",
      "pthread_mutex_lock", "pthread_mutex_unlock", "pthread_cond_wait",
      "pthread_cond_signal", "pthread_cond_broadcast", "pthread_create",
      "pthread_join",
      // Process control.
      "abort", "exit", "_exit", "quick_exit", "atexit", "fork", "execve",
      "system",
  };
  return S;
}

const std::set<std::string> &memWriteFns() {
  static const std::set<std::string> S = {
      "memcpy",  "memmove", "memset",  "strcpy",
      "strncpy", "strcat",  "strncat", "__builtin_memcpy",
      "__builtin_memmove", "__builtin_memset",
  };
  return S;
}

bool isRawFlushName(const std::string &N) {
  return N == "_mm_clwb" || N == "_mm_clflushopt" || N == "_mm_clflush" ||
         N == "__builtin_ia32_clwb" || N == "__builtin_ia32_clflushopt";
}
bool isRawDrainName(const std::string &N) {
  return N == "_mm_sfence" || N == "__builtin_ia32_sfence";
}

const std::set<std::string> &assignOps() {
  static const std::set<std::string> S = {
      "=",  "+=", "-=", "*=", "/=", "%=",
      "&=", "|=", "^=", "<<=", ">>=",
  };
  return S;
}

void classifyReceiver(const std::vector<Token> &T, size_t I, size_t B,
                      CallSite &S) {
  if (I >= B + 1 && (T[I - 1].isPunct(".") || T[I - 1].isPunct("->"))) {
    // `this->f()` is an unqualified same-class call; any other receiver
    // expression leaves the class unknown at token level.
    S.IsFree = I >= B + 2 && T[I - 1].isPunct("->") && T[I - 2].isIdent() &&
               T[I - 2].Text == "this";
  } else if (I >= B + 2 && T[I - 1].isPunct("::") && T[I - 2].isIdent()) {
    S.ClassHint = T[I - 2].Text;
    // std-qualified calls behave like free calls for the builtin list
    // (std::malloc, std::fopen, ...).
    S.IsFree = (S.ClassHint == "std");
  } else if (I >= B + 1 && T[I - 1].isPunct("::")) {
    S.IsFree = true;
    S.GlobalScope = true;
  } else {
    S.IsFree = true;
  }
}

std::vector<CallSite>
collectSites(const std::vector<Token> &T, size_t B, size_t E,
             const std::vector<std::pair<size_t, size_t>> *Holes) {
  std::vector<CallSite> Sites;
  size_t H = 0;
  for (size_t I = B; I < E; ++I) {
    if (Holes) {
      while (H < Holes->size() && (*Holes)[H].second <= I)
        ++H;
      if (H < Holes->size() && I >= (*Holes)[H].first) {
        I = (*Holes)[H].second - 1;
        continue;
      }
    }
    const Token &Tk = T[I];
    if (!Tk.isIdent())
      continue;
    if (Tk.Text == "new" || Tk.Text == "delete" || Tk.Text == "throw") {
      // `throw;` rethrow counts too; `= delete` never appears inside a body.
      CallSite S;
      S.Kind = Tk.Text == "new"      ? CallSite::KwNew
               : Tk.Text == "delete" ? CallSite::KwDelete
                                     : CallSite::KwThrow;
      S.TokIdx = I;
      S.Line = Tk.Line;
      Sites.push_back(S);
      continue;
    }
    if (I + 1 >= E || !T[I + 1].isPunct("(") || isKeyword(Tk.Text))
      continue;
    if (Tk.Text.rfind("CRAFTY_", 0) == 0) // Annotation / bound macros.
      continue;
    CallSite S;
    S.Name = Tk.Text;
    S.TokIdx = I;
    S.Line = Tk.Line;
    classifyReceiver(T, I, B, S);
    Sites.push_back(S);
  }
  return Sites;
}

std::vector<std::pair<size_t, size_t>>
callArgRanges(const std::vector<Token> &T, size_t LParen, size_t End) {
  std::vector<std::pair<size_t, size_t>> Args;
  if (LParen >= End || !T[LParen].isPunct("("))
    return Args;
  size_t Close = matchForward(T, LParen, End);
  size_t ArgB = LParen + 1;
  int Depth = 0;
  for (size_t I = LParen + 1; I < Close; ++I) {
    if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{")) {
      ++Depth;
    } else if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}")) {
      if (Depth)
        --Depth;
    } else if (Depth == 0 && T[I].isPunct(",")) {
      Args.push_back({ArgB, I});
      ArgB = I + 1;
    }
  }
  if (ArgB < Close)
    Args.push_back({ArgB, Close});
  return Args;
}

bool isAtomicStoreCall(const std::vector<Token> &T, size_t LParen) {
  size_t Close = matchForward(T, LParen, T.size());
  for (size_t J = LParen + 1; J < Close && J < T.size(); ++J)
    if (T[J].isIdent() && T[J].Text.rfind("memory_order", 0) == 0)
      return true;
  return false;
}

Lvalue parseLvalue(const std::vector<Token> &T, size_t B, size_t E) {
  Lvalue L;
  size_t I = B;
  while (I < E && (T[I].isPunct("*") || T[I].isPunct("(") ||
                   T[I].isPunct("&"))) {
    if (T[I].isPunct("*"))
      ++L.Derefs;
    ++I;
  }
  if (I >= E || !T[I].isIdent())
    return L;
  L.Root = T[I].Text;
  ++I;
  while (I < E) {
    if (T[I].isPunct("->") || T[I].isPunct(".")) {
      Access A;
      A.Kind = T[I].isPunct("->") ? Access::Arrow : Access::Dot;
      if (I + 1 < E && T[I + 1].isIdent()) {
        A.Field = T[I + 1].Text;
        I += 2;
      } else {
        ++I;
      }
      L.Chain.push_back(A);
    } else if (T[I].isPunct("[")) {
      L.Chain.push_back(Access{Access::Index, ""});
      size_t Close = matchForward(T, I, E);
      I = Close < E ? Close + 1 : E;
    } else {
      ++I; // ')' closers from stripped '(' prefixes, etc.
    }
  }
  L.Valid = true;
  return L;
}

namespace {

/// Scoped field-pm lookup. \p OwnerClass is the class the receiver is
/// known to be ("" when unknown). Returns: 1 = pm, 0 = definitely not pm
/// (the class declares a non-pm field of that name), -1 = unknown (fall
/// back to the global field-name pool).
int fieldPmInClass(const Registry &Reg, const std::string &OwnerClass,
                   const std::string &Field, bool &IsPtr) {
  if (OwnerClass.empty())
    return -1;
  if (Reg.PmFieldQual.count(OwnerClass + "::" + Field)) {
    auto It = Reg.PmFieldQualIsPtr.find(OwnerClass + "::" + Field);
    IsPtr = It != Reg.PmFieldQualIsPtr.end() && It->second;
    return 1;
  }
  auto CI = Reg.ClassFields.find(OwnerClass);
  if (CI != Reg.ClassFields.end() && CI->second.count(Field))
    return 0; // Declared here, and not CRAFTY_PMEM.
  return -1; // Not visibly declared here (base class, template...).
}

} // namespace

std::string classifyPmStore(const StoreContext &Ctx, const Lvalue &L,
                            bool ForMemWrite) {
  if (!L.Valid || !Ctx.Reg)
    return "";
  const Registry &Reg = *Ctx.Reg;
  if (Ctx.PmVars) {
    auto PV = Ctx.PmVars->find(L.Root);
    if (PV != Ctx.PmVars->end()) {
      if (!PV->second) // Whole variable is persistent.
        return "CRAFTY_PMEM variable '" + L.Root + "'";
      bool Through = L.Derefs > 0 || ForMemWrite;
      if (!Through && !L.Chain.empty() &&
          (L.Chain[0].Kind == Access::Index ||
           L.Chain[0].Kind == Access::Arrow))
        Through = true;
      if (Through)
        return "CRAFTY_PMEM pointer '" + L.Root + "'";
      return ""; // Re-pointing the variable itself is a volatile store.
    }
  }
  for (size_t I = 0; I < L.Chain.size(); ++I) {
    const Access &A = L.Chain[I];
    if (A.Kind == Access::Index || A.Field.empty())
      continue;
    // Scoped resolution: a `this->f` (or bare-member) access is resolved
    // against the enclosing class before consulting the global pool, so
    // an unrelated class's CRAFTY_PMEM field with the same name does not
    // produce a false positive (the Bank.cpp NumThreads collision).
    std::string OwnerClass;
    if (I == 0 && L.Root == "this")
      OwnerClass = Ctx.ClassName;
    bool FieldIsPtr = false;
    int Scoped = fieldPmInClass(Reg, OwnerClass, A.Field, FieldIsPtr);
    if (Scoped == 0)
      continue; // Known volatile field of the enclosing class.
    if (Scoped < 0) {
      if (!Reg.PmFieldNames.count(A.Field))
        continue;
      auto FP = Reg.PmFieldIsPtr.find(A.Field);
      FieldIsPtr = FP != Reg.PmFieldIsPtr.end() && FP->second;
    }
    if (FieldIsPtr) {
      // Writing *through* the pointer field: a later chain step
      // dereferences it, a leading '*' applies to it as the final
      // element (e.g. `*R.Slots = v`), or it is a memcpy destination.
      if (I + 1 < L.Chain.size() || ForMemWrite ||
          (L.Derefs > 0 && I + 1 == L.Chain.size()))
        return "CRAFTY_PMEM pointer field '" + A.Field + "'";
      continue; // Re-pointing the field via '.', volatile struct copy etc.
    }
    // Non-pointer persistent field: only '->' access proves the object
    // lives in the pool (a '.' store may target a stack copy).
    if (A.Kind == Access::Arrow && I + 1 >= L.Chain.size())
      return "persistent field '" + A.Field + "'";
  }
  return "";
}

bool isPublishStore(const StoreContext &Ctx, const Lvalue &L) {
  if (!L.Valid || !Ctx.Reg || L.Chain.empty())
    return false;
  const Registry &Reg = *Ctx.Reg;
  const Access &Last = L.Chain.back();
  if (Last.Kind == Access::Index || Last.Field.empty())
    return false;
  if (!Reg.PublishFieldNames.count(Last.Field))
    return false;
  // Same pool-residency proof as classifyPmStore: an '->' access, or a
  // chain hanging off a CRAFTY_PMEM variable. A '.' store into a stack
  // copy is not a publish.
  if (Last.Kind == Access::Arrow)
    return true;
  return Ctx.PmVars && Ctx.PmVars->count(L.Root) > 0;
}

//===----------------------------------------------------------------------===//
// Integer constant expression evaluator
//===----------------------------------------------------------------------===//

namespace {

class ConstEval {
public:
  ConstEval(const std::vector<Token> &T, size_t B, size_t E,
            const std::map<std::string, long long> &Consts)
      : T(T), I(B), E(E), Consts(Consts) {}

  std::optional<long long> eval() {
    auto V = parseShift();
    if (!V || I != E)
      return std::nullopt;
    return V;
  }

private:
  const std::vector<Token> &T;
  size_t I, E;
  const std::map<std::string, long long> &Consts;

  bool atPunct(const char *P) const { return I < E && T[I].isPunct(P); }

  std::optional<long long> parseShift() {
    auto L = parseAdd();
    while (L && (atPunct("<<") || atPunct(">>"))) {
      bool Left = T[I].isPunct("<<");
      ++I;
      auto R = parseAdd();
      if (!R || *R < 0 || *R > 62)
        return std::nullopt;
      L = Left ? (*L << *R) : (*L >> *R);
    }
    return L;
  }

  std::optional<long long> parseAdd() {
    auto L = parseMul();
    while (L && (atPunct("+") || atPunct("-"))) {
      bool Add = T[I].isPunct("+");
      ++I;
      auto R = parseMul();
      if (!R)
        return std::nullopt;
      L = Add ? *L + *R : *L - *R;
    }
    return L;
  }

  std::optional<long long> parseMul() {
    auto L = parseUnary();
    while (L && (atPunct("*") || atPunct("/") || atPunct("%"))) {
      char Op = T[I].Text[0];
      ++I;
      auto R = parseUnary();
      if (!R || ((Op == '/' || Op == '%') && *R == 0))
        return std::nullopt;
      L = Op == '*' ? *L * *R : Op == '/' ? *L / *R : *L % *R;
    }
    return L;
  }

  std::optional<long long> parseUnary() {
    if (atPunct("-")) {
      ++I;
      auto V = parseUnary();
      return V ? std::optional<long long>(-*V) : std::nullopt;
    }
    if (atPunct("+")) {
      ++I;
      return parseUnary();
    }
    return parsePrimary();
  }

  std::optional<long long> parsePrimary() {
    if (atPunct("(")) {
      ++I;
      auto V = parseShift();
      if (!V || !atPunct(")"))
        return std::nullopt;
      ++I;
      return V;
    }
    if (I >= E)
      return std::nullopt;
    if (T[I].Kind == TokKind::Number)
      return parseNumber(T[I++].Text);
    if (T[I].isIdent() && !isKeyword(T[I].Text)) {
      // Qualified chains (`Cfg.MaxValueBytes`, `KvConfig::BatchTxnLimit`)
      // resolve through the last component; the receiver only names the
      // object holding the constant.
      std::string Name = T[I].Text;
      ++I;
      while (I + 1 < E &&
             (T[I].isPunct("::") || T[I].isPunct(".") || T[I].isPunct("->")) &&
             T[I + 1].isIdent()) {
        Name = T[I + 1].Text;
        I += 2;
      }
      auto It = Consts.find(Name);
      if (It == Consts.end())
        return std::nullopt;
      return It->second;
    }
    return std::nullopt;
  }

  static std::optional<long long> parseNumber(const std::string &S) {
    if (S.find('.') != std::string::npos) // Float literal.
      return std::nullopt;
    char *End = nullptr;
    std::string Clean = S;
    // Strip digit separators.
    Clean.erase(std::remove(Clean.begin(), Clean.end(), '\''), Clean.end());
    long long V = std::strtoll(Clean.c_str(), &End, 0);
    // Allow integer-suffix letters only.
    for (const char *P = End; P && *P; ++P)
      if (*P != 'u' && *P != 'U' && *P != 'l' && *P != 'L')
        return std::nullopt;
    if (End == Clean.c_str())
      return std::nullopt;
    return V;
  }
};

} // namespace

std::optional<long long>
evalConstExpr(const std::vector<Token> &T, size_t B, size_t E,
              const std::map<std::string, long long> &Consts) {
  if (B >= E)
    return std::nullopt;
  return ConstEval(T, B, E, Consts).eval();
}

} // namespace craftylint
