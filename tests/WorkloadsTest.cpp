//===- tests/WorkloadsTest.cpp - Workload x system matrix -----------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Integration matrix: every evaluated workload runs on every evaluated
// system with multiple threads, and its invariants must hold afterwards
// -- the same code paths the figure benches exercise.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

#include "gtest/gtest.h"

#include <tuple>

using namespace crafty;

namespace {

class Matrix
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, SystemKind>> {
};

TEST_P(Matrix, InvariantsHoldUnderConcurrency) {
  auto [Workload, System] = GetParam();
  ExperimentConfig C;
  C.Workload = Workload;
  C.System = System;
  C.Threads = 3;
  C.OpsPerThread = Workload == WorkloadKind::Labyrinth ? 30 : 120;
  C.DrainLatencyNs = 0;
  C.PoolBytes = 512ull << 20;
  ExperimentResult R = runExperiment(C);
  EXPECT_EQ(R.VerifyError, "") << "invariant violated";
  EXPECT_EQ(R.Ops, C.OpsPerThread * C.Threads);
  EXPECT_GT(R.OpsPerSecond, 0.0);
}

std::string
matrixName(const ::testing::TestParamInfo<Matrix::ParamType> &Info) {
  std::string N = workloadKindName(std::get<0>(Info.param));
  N += "_";
  N += systemKindName(std::get<1>(Info.param));
  for (char &C : N)
    if (C == '-' || C == '+')
      C = '_';
  return N;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, Matrix,
    ::testing::Combine(::testing::ValuesIn(AllWorkloads),
                       ::testing::ValuesIn(AllSystems)),
    matrixName);

TEST(WritesPerTxn, MatchTable1Profile) {
  // Table 1 calibration: measured writes per transaction should land in
  // the neighbourhood the paper reports for each workload.
  struct Row {
    WorkloadKind Kind;
    double Lo, Hi;
  };
  const Row Rows[] = {
      {WorkloadKind::BankHigh, 10.0, 10.0},   // Paper: 10.0
      {WorkloadKind::BankMedium, 10.0, 10.0}, // Paper: 10.0
      {WorkloadKind::BankNone, 10.0, 10.0},   // Paper: 10.0
      {WorkloadKind::BTreeInsert, 8.0, 20.0}, // Paper: 14.0
      {WorkloadKind::BTreeMixed, 6.0, 20.0},  // Paper: 13.3
      {WorkloadKind::KMeansHigh, 25.0, 25.0}, // Paper: 25.0
      {WorkloadKind::KMeansLow, 25.0, 25.0},  // Paper: 25.0
      {WorkloadKind::VacationHigh, 6.0, 9.0}, // Paper: 8.0
      {WorkloadKind::VacationLow, 4.0, 7.0},  // Paper: 5.5
      {WorkloadKind::Labyrinth, 80.0, 260.0}, // Paper: ~177 (ours dilutes
       // with failed read-only routes and releases)
      {WorkloadKind::Ssca2, 1.5, 2.5},        // Paper: 2.0
      {WorkloadKind::Genome, 1.0, 2.5},       // Paper: ~2.1
      {WorkloadKind::Intruder, 1.2, 2.5},     // Paper: 1.8
  };
  for (const Row &R : Rows) {
    ExperimentConfig C;
    C.Workload = R.Kind;
    C.System = SystemKind::Crafty;
    C.Threads = 2;
    C.OpsPerThread = R.Kind == WorkloadKind::Labyrinth ? 40 : 300;
    C.DrainLatencyNs = 0;
    ExperimentResult Res = runExperiment(C);
    ASSERT_GT(Res.Txn.transactions(), 0u);
    double Avg = (double)Res.Txn.Writes / (double)Res.Txn.transactions();
    EXPECT_GE(Avg, R.Lo) << workloadKindName(R.Kind);
    EXPECT_LE(Avg, R.Hi) << workloadKindName(R.Kind);
  }
}

} // namespace
