// Clean counterparts for the persist-ordering rule: publishes whose
// covered stores are durable first, and the contexts the rule must trust.
// Must produce no findings.
// Golden: tests/lint/expected/persist_ordering_neg.txt
#include "support/Annotations.h"

#include <cstdint>

struct Pool {
  CRAFTY_FLUSH_API void clwb(const void *Line);
  CRAFTY_DRAIN_API void drain();
};

struct TxnContext {
  CRAFTY_TX_STORE_API void store(uint64_t *Addr, uint64_t Val);
};

struct Ledger {
  CRAFTY_PMEM uint64_t Balance = 0;
  CRAFTY_PMEM CRAFTY_PM_PUBLISH uint64_t Committed = 0;
};

// The correct ordering: flush AND drain the data, then publish.
void publishAfterDrain(Pool &P, Ledger *L, uint64_t V) {
  L->Balance = V; // crafty-lint: suppress(pm-raw-store) recovery-path raw store.
  P.clwb(&L->Balance);
  P.drain();
  L->Committed = 1; // Clean: nothing pending. // crafty-lint: suppress(pm-raw-store) recovery-path raw store.
  P.clwb(&L->Committed);
  P.drain();
}

// Publish with no earlier persistent store at all.
void publishAlone(Pool &P, Ledger *L) {
  L->Committed = 1; // Clean. // crafty-lint: suppress(pm-raw-store) recovery-path raw store.
  P.clwb(&L->Committed);
  P.drain();
}

// Inside a transaction body the HTM commit fence orders the stores; the
// rule must stay silent there.
CRAFTY_TX_BODY void publishInTxn(TxnContext &Tx, Ledger *L, uint64_t V) {
  Tx.store(&L->Balance, V);
  Tx.store(&L->Committed, 1);
}
