// Clean counterpart of htm_unsafe_call_pos.cpp: allocation outside tx
// bodies and trusted CRAFTY_TX_SAFE boundaries must stay silent.
#include "support/Annotations.h"

extern "C" void *malloc(unsigned long);

/// Pre-sized pool allocator: trusted not to abort hardware transactions.
CRAFTY_TX_SAFE void *pooledAlloc(unsigned long Bytes);

static void *viaBarrier(unsigned long Bytes) {
  return pooledAlloc(Bytes); // Walk stops at the TX_SAFE boundary.
}

CRAFTY_TX_BODY void txPooled(unsigned long Bytes) {
  void *P = viaBarrier(Bytes); // Clean: barrier before anything unsafe.
  (void)P;
}

void setupPhase(unsigned long Bytes) {
  void *P = malloc(Bytes); // Clean: not reachable from any tx body.
  (void)P;
}
