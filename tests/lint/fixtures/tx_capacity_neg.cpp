// Clean counterparts for the tx-capacity rule. Must produce no findings.
// Golden: tests/lint/expected/tx_capacity_neg.txt
#include "support/Annotations.h"

#include <cstddef>
#include <cstdint>

struct TxnContext {
  CRAFTY_TX_STORE_API void store(uint64_t *Addr, uint64_t Val);
};

constexpr size_t SmallRows = 64;

// 64 stores: comfortably inside the 4096-word budget.
CRAFTY_TX_BODY void txSmall(TxnContext &Tx, uint64_t *A) {
  for (size_t I = 0; I < SmallRows; ++I)
    Tx.store(A + I, I);
}

// Declared capacity that the static bound respects (2 stores <= 4).
CRAFTY_TX_CAPACITY(4)
CRAFTY_TX_BODY void txDeclaredOk(TxnContext &Tx, uint64_t *A, uint64_t V) {
  Tx.store(A, V);
  Tx.store(A + 1, V + 1);
}

// An author-asserted bound: the rule records it and trusts the author.
CRAFTY_TX_BODY void txAsserted(TxnContext &Tx, uint64_t *A, size_t N) {
  for (size_t I = 0; I < N; ++I) {
    // Callers cap N at one cache line of words.
    CRAFTY_TX_BOUND(8);
    Tx.store(A + I, I);
  }
}

// A TX_BODY callee *without* a TxnContext parameter begins its own
// transaction; its cost must not be charged to the caller.
CRAFTY_TX_BODY void txOwnTxn(uint64_t *A) {
  TxnContext Tx; // Its own transaction scope.
  for (size_t I = 0; I < 32; ++I)
    Tx.store(A + I, I);
}

CRAFTY_TX_BODY void txCallsOwnTxn(TxnContext &Tx, uint64_t *A) {
  Tx.store(A, 1);
  for (size_t R = 0; R < 100000; ++R)
    txOwnTxn(A + R);
}
