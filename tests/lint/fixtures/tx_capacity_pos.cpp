// Seeded violations for the tx-capacity rule: transaction bodies whose
// interprocedural static write-set bound exceeds the HTM write-capacity
// budget (default 4096 words) or their own CRAFTY_TX_CAPACITY declaration.
// Loops carry visible constant bounds so unbounded-tx-writes stays quiet;
// the *magnitude* is the hazard seeded here.
// Golden: tests/lint/expected/tx_capacity_pos.txt
#include "support/Annotations.h"

#include <cstddef>
#include <cstdint>

struct TxnContext {
  CRAFTY_TX_STORE_API void store(uint64_t *Addr, uint64_t Val);
};

constexpr size_t HugeRows = 8192;
constexpr size_t ChunkWords = 16;

// 8192 stores: over the 4096-word HTM budget.
CRAFTY_TX_BODY void txOverBudget(TxnContext &Tx, uint64_t *A) { // VIOLATION
  for (size_t I = 0; I < HugeRows; ++I)
    Tx.store(A + I, I);
}

// Declared budget of 4 words, but the body can issue 16.
CRAFTY_TX_CAPACITY(4)
CRAFTY_TX_BODY void txOverDeclared(TxnContext &Tx, uint64_t *A) { // VIOLATION
  for (size_t I = 0; I < ChunkWords; ++I)
    Tx.store(A + I, 0);
}

// The callee takes the caller's TxnContext, so its stores count toward
// the caller's write set: 128 * 64 = 8192, over budget interprocedurally.
void writeRow(TxnContext &Tx, uint64_t *Row) {
  for (size_t I = 0; I < 64; ++I)
    Tx.store(Row + I, I);
}

CRAFTY_TX_BODY void txOverViaCallee(TxnContext &Tx, uint64_t *A) { // VIOLATION
  for (size_t R = 0; R < 128; ++R)
    writeRow(Tx, A + R * 64);
}
