// Seeded violations for the pm-escape rule: addresses of CRAFTY_PMEM data
// flowing, inside the transaction cone, into storage that outlives the
// transaction scope (volatile fields/members, out-parameters, callees
// that stash their argument).
// Golden: tests/lint/expected/pm_escape_pos.txt
#include "support/Annotations.h"

#include <cstdint>

struct TxnContext {
  CRAFTY_TX_STORE_API void store(uint64_t *Addr, uint64_t Val);
};

struct Node {
  CRAFTY_PMEM uint64_t *Words;
};

struct SideTable {
  uint64_t *Hot; // Volatile (DRAM) cache slot.
};

struct Engine {
  uint64_t *LastCell = nullptr; // Volatile member.

  // Not itself diagnosed (no pm data here), but its summary records that
  // parameter 1 escapes into a member.
  void stash(uint64_t *P) { LastCell = P; }

  CRAFTY_TX_BODY void txCacheMember(TxnContext &Tx, Node *N, uint64_t V) {
    uint64_t *P = N->Words;
    Tx.store(P, V); // Sanctioned: the write-set records it by design.
    LastCell = P;   // VIOLATION: volatile member outlives the txn.
  }

  CRAFTY_TX_BODY void txCacheField(TxnContext &Tx, SideTable &S, Node *N) {
    S.Hot = N->Words; // VIOLATION: volatile field store.
  }

  CRAFTY_TX_BODY void txOutParam(TxnContext &Tx, Node *N, uint64_t **Out) {
    *Out = N->Words; // VIOLATION: out-parameter escape.
  }

  CRAFTY_TX_BODY void txViaCallee(TxnContext &Tx, Node *N) {
    stash(N->Words); // VIOLATION: callee stores its argument beyond the call.
  }
};
