// Seeded violations for the flush-without-drain rule: CLWBs that can
// leave the function with the write-back still pending.
// Golden: tests/lint/expected/flush_without_drain_pos.txt
#include "support/Annotations.h"

struct Pool {
  CRAFTY_FLUSH_API void clwb(const void *Line);
  CRAFTY_DRAIN_API void drain();
};

void leakAtEnd(Pool &P, const void *Line) {
  P.clwb(Line); // VIOLATION: reaches the end with no drain.
}

void leakThroughReturn(Pool &P, const void *Line, bool Fast) {
  P.clwb(Line); // VIOLATION: the Fast path returns before the drain.
  if (Fast)
    return;
  P.drain();
}
