// Seeded violations for the pm-raw-store rule: raw stores that reach
// persistent memory without going through the transactional store API.
// Golden: tests/lint/expected/pm_raw_store_pos.txt
#include "support/Annotations.h"

struct Region {
  CRAFTY_PMEM unsigned long *Slots; // Pointee is persistent.
  unsigned long *Scratch;           // DRAM.
};

void writeSlots(Region &R) {
  *R.Slots = 1;  // VIOLATION: deref store through a persistent pointer.
  R.Slots[2] = 7; // VIOLATION: indexed store through a persistent pointer.
}

void writeParam(CRAFTY_PMEM unsigned long *Cell) {
  Cell[0] = 9; // VIOLATION: persistent-annotated parameter.
}

void bulkWrite(Region &R, const unsigned long *Src) {
  __builtin_memcpy(R.Slots, Src, 64); // VIOLATION: memcpy into pm.
}
