// Seeded violations for the htm-unsafe-call rule: HTM-unsafe operations
// reachable from a CRAFTY_TX_BODY root, directly and through a helper.
// Golden: tests/lint/expected/htm_unsafe_call_pos.txt
#include "support/Annotations.h"

extern "C" void *malloc(unsigned long);
extern "C" void free(void *);

struct Node {
  unsigned long Value;
};

static void *grabBuffer(unsigned long Bytes) {
  return malloc(Bytes); // VIOLATION when reached from a tx body.
}

CRAFTY_TX_BODY void txIndirectAlloc(unsigned long Bytes) {
  void *P = grabBuffer(Bytes); // Chain: txIndirectAlloc -> grabBuffer.
  free(P); // VIOLATION: direct free() inside the tx body.
}

CRAFTY_TX_BODY unsigned long txKeywordAlloc() {
  Node *N = new Node(); // VIOLATION: operator new aborts HTM.
  unsigned long V = N->Value;
  delete N; // VIOLATION: operator delete aborts HTM.
  return V;
}
