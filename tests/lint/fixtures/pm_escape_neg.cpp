// Clean counterparts for the pm-escape rule. Must produce no findings.
// Golden: tests/lint/expected/pm_escape_neg.txt
#include "support/Annotations.h"

#include <cstdint>

struct TxnContext {
  CRAFTY_TX_STORE_API void store(uint64_t *Addr, uint64_t Val);
  CRAFTY_TX_SAFE uint64_t load(const uint64_t *Addr);
};

struct Node {
  CRAFTY_PMEM uint64_t *Words;
};

struct Engine {
  uint64_t *Scratch = nullptr;
  uint64_t LastValue = 0;

  // Pointer stays inside the transaction scope: locals only.
  CRAFTY_TX_BODY void txLocalOnly(TxnContext &Tx, Node *N, uint64_t V) {
    uint64_t *P = N->Words;
    Tx.store(P, V);
    Tx.store(P + 1, V + 1);
  }

  // Copying the *value* out is fine; only the address is hazardous.
  CRAFTY_TX_BODY void txCopyValue(TxnContext &Tx, Node *N) {
    LastValue = Tx.load(N->Words);
  }

  // Passing the address to the trusted transactional API is the
  // sanctioned path, not an escape.
  CRAFTY_TX_BODY void txTrustedSink(TxnContext &Tx, Node *N, uint64_t V) {
    Tx.store(N->Words, V);
  }

  // Outside the transaction cone (setup/recovery), stashing pool
  // pointers is ordinary bookkeeping.
  void setupStash(Node *N) { Scratch = N->Words; }
};
