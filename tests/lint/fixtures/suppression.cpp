// The inline suppression mechanism: a finding silenced by a
// `crafty-lint: suppress(<rule>)` comment with a justification, on the
// line above the flagged store. Must produce no findings.
#include "support/Annotations.h"

struct Region {
  CRAFTY_PMEM unsigned long *Slots;
};

void recoveryRepair(Region &R) {
  // crafty-lint: suppress(pm-raw-store) recovery-only repair; the pool is quiesced and re-flushed wholesale afterwards.
  R.Slots[0] = 0; // Clean: suppressed with justification.
}
