// Clean counterpart of unbounded_tx_writes_pos.cpp: visibly bounded
// loops, asserted bounds, and std::atomic stores (which share the
// `store` spelling but are not transactional writes).
#include "support/Annotations.h"

struct Tx {
  CRAFTY_TX_STORE_API void store(unsigned long *Addr, unsigned long Val);
};

inline constexpr unsigned long kChunkWords = 32;

void literalBound(Tx &T, unsigned long *W) {
  for (int I = 0; I < 8; ++I) // Clean: literal bound.
    T.store(W + I, (unsigned long)I);
}

void constNameBound(Tx &T, unsigned long *W) {
  for (unsigned long I = 0; I != kChunkWords; ++I) // Clean: const bound.
    T.store(W + I, I);
}

void assertedBound(Tx &T, unsigned long *W, unsigned long N) {
  for (unsigned long I = 0; I != N; ++I) {
    CRAFTY_TX_BOUND(kChunkWords); // Clean: bound asserted by the author.
    T.store(W + I, I);
  }
}

namespace std {
enum memory_order { memory_order_relaxed };
}

struct AtomicFlag {
  void store(bool V, std::memory_order O);
};

void atomicReset(AtomicFlag *Flags, unsigned long N) {
  for (unsigned long I = 0; I != N; ++I) // Clean: atomic, not tx, store.
    Flags[I].store(false, std::memory_order_relaxed);
}
