// Seeded violations for the unbounded-tx-writes rule: loops issuing
// transactional stores with no visible iteration bound (the hazard that
// forced KvConfig::BatchTxnLimit).
// Golden: tests/lint/expected/unbounded_tx_writes_pos.txt
#include "support/Annotations.h"

struct Tx {
  CRAFTY_TX_STORE_API void store(unsigned long *Addr, unsigned long Val);
};

void variableCount(Tx &T, unsigned long *W, unsigned long N) {
  for (unsigned long I = 0; I != N; ++I) // VIOLATION: N is unbounded.
    T.store(W + I, I);
}

void pointerChase(Tx &T, unsigned long *W, unsigned long *End) {
  while (W != End) // VIOLATION: distance to End is unbounded.
    T.store(W++, 0);
}
