// Clean counterpart of pm_raw_store_pos.cpp: patterns that look like
// persistent stores but are not, and must stay silent.
#include "support/Annotations.h"

struct Header {
  CRAFTY_PMEM unsigned long Magic;
};

struct Region {
  CRAFTY_PMEM unsigned long *Slots;
  unsigned long *Scratch;
};

void mapRegion(Region &R, unsigned long *Base) {
  R.Slots = Base;   // Clean: re-pointing the (volatile) pointer itself.
  R.Scratch = Base; // Clean: plain DRAM pointer.
}

void formatHeader() {
  Header H;            // Stack staging copy (the formatPool pattern):
  H.Magic = 0x43524654; // Clean: '.' access on a local, persisted later
  (void)H;              // via persistDirect, not a raw pm store.
}

void dramOnly(Region &R) {
  R.Scratch[3] = 11; // Clean: not a persistent-annotated pointer.
}
