// Seeded violations for the persist-ordering rule: a commit-marker
// (CRAFTY_PM_PUBLISH) store that can become durable before the data it
// covers. The raw stores themselves are deliberate recovery-path writes,
// suppressed for pm-raw-store so only the ordering hazard is seeded.
// Golden: tests/lint/expected/persist_ordering_pos.txt
#include "support/Annotations.h"

#include <cstdint>

struct Pool {
  CRAFTY_FLUSH_API void clwb(const void *Line);
  CRAFTY_DRAIN_API void drain();
};

struct Ledger {
  CRAFTY_PMEM uint64_t Balance = 0;
  CRAFTY_PMEM uint64_t Seq = 0;
  CRAFTY_PMEM CRAFTY_PM_PUBLISH uint64_t Committed = 0;
};

void publishUnflushed(Pool &P, Ledger *L, uint64_t V) {
  L->Balance = V; // crafty-lint: suppress(pm-raw-store) recovery-path raw store; ordering is the hazard under test.
  L->Committed = 1; // VIOLATION: Balance is not even flushed. // crafty-lint: suppress(pm-raw-store) recovery-path raw store.
  P.clwb(&L->Committed);
  P.drain();
}

void publishUndrained(Pool &P, Ledger *L, uint64_t V) {
  L->Balance = V; // crafty-lint: suppress(pm-raw-store) recovery-path raw store; ordering is the hazard under test.
  P.clwb(&L->Balance);
  L->Committed = 1; // VIOLATION: clwb only schedules; no drain yet. // crafty-lint: suppress(pm-raw-store) recovery-path raw store.
  P.clwb(&L->Committed);
  P.drain();
}

void publishDrainOnOnePath(Pool &P, Ledger *L, uint64_t V, bool Fast) {
  L->Seq = V; // crafty-lint: suppress(pm-raw-store) recovery-path raw store; ordering is the hazard under test.
  P.clwb(&L->Seq);
  if (!Fast)
    P.drain();
  L->Committed = 1; // VIOLATION: the Fast path reaches here undrained. // crafty-lint: suppress(pm-raw-store) recovery-path raw store.
  P.clwb(&L->Committed);
  P.drain();
}
