// Clean counterpart of flush_without_drain_pos.cpp: every path drains,
// or the function is a deliberate deferred-drain site (the Crafty
// pattern where the next HTM commit fence completes the write-back).
#include "support/Annotations.h"

struct Pool {
  CRAFTY_FLUSH_API void clwb(const void *Line);
  CRAFTY_DRAIN_API void drain();
};

void drainedOnAllPaths(Pool &P, const void *Line, bool Fast) {
  P.clwb(Line);
  if (Fast) {
    P.drain(); // Clean: this path drains...
    return;
  }
  P.drain(); // ...and so does this one.
}

void drainedInLoop(Pool &P, const void *Line, int N) {
  for (int I = 0; I != N; ++I)
    P.clwb(Line); // Clean: drained after the batch.
  P.drain();
}

/// Crafty Section 4.2: the Log phase flushes undo entries and lets the
/// Redo/Validate commit fence drain them.
CRAFTY_DRAIN_DEFERRED void logPhaseStyle(Pool &P, const void *Line) {
  P.clwb(Line); // Clean: annotated deferred-drain function.
}
