//===- tests/SupportTest.cpp - Support utility tests ----------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CacheLine.h"
#include "support/Clock.h"
#include "support/FunctionRef.h"
#include "support/Rng.h"
#include "support/Spin.h"

#include "gtest/gtest.h"

#include <set>

using namespace crafty;

namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  Rng A2(42), C2(43);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(Rng, BoundedStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40})
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBounded(Bound), Bound);
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng R(11);
  int Hits = 0;
  constexpr int Trials = 20000;
  for (int I = 0; I != Trials; ++I)
    if (R.chance(1, 4))
      ++Hits;
  EXPECT_GT(Hits, Trials / 4 - Trials / 20);
  EXPECT_LT(Hits, Trials / 4 + Trials / 20);
}

TEST(Rng, ValuesAreWellSpread) {
  Rng R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(R.next());
  EXPECT_EQ(Seen.size(), 1000u) << "64-bit outputs should not collide";
}

TEST(CacheLine, GeometryHelpers) {
  alignas(64) static uint8_t Buf[192];
  EXPECT_EQ(lineOf(&Buf[0]), reinterpret_cast<uintptr_t>(&Buf[0]));
  EXPECT_EQ(lineOf(&Buf[63]), reinterpret_cast<uintptr_t>(&Buf[0]));
  EXPECT_EQ(lineOf(&Buf[64]), reinterpret_cast<uintptr_t>(&Buf[64]));
  EXPECT_TRUE(isWordAligned(&Buf[0]));
  EXPECT_TRUE(isWordAligned(&Buf[8]));
  EXPECT_FALSE(isWordAligned(&Buf[4]));
}

TEST(Clock, MonotonicNanosAdvances) {
  uint64_t A = monotonicNanos();
  spinForNanos(1000);
  uint64_t B = monotonicNanos();
  EXPECT_GE(B - A, 1000u);
}

TEST(Clock, SpinForZeroIsFree) {
  uint64_t A = monotonicNanos();
  spinForNanos(0);
  EXPECT_LT(monotonicNanos() - A, 1000000u);
}

TEST(FunctionRef, ForwardsArgumentsAndResults) {
  int Calls = 0;
  auto Lambda = [&Calls](int X) {
    ++Calls;
    return X * 2;
  };
  FunctionRef<int(int)> Ref(Lambda);
  EXPECT_EQ(Ref(21), 42);
  EXPECT_EQ(Calls, 1);
  EXPECT_TRUE(static_cast<bool>(Ref));
  FunctionRef<int(int)> Empty;
  EXPECT_FALSE(static_cast<bool>(Empty));
}

TEST(FunctionRef, ReferencesMutableState) {
  uint64_t Sum = 0;
  auto Add = [&Sum](uint64_t V) { Sum += V; };
  FunctionRef<void(uint64_t)> Ref(Add);
  Ref(5);
  Ref(7);
  EXPECT_EQ(Sum, 12u);
}

TEST(Spin, BackoffEventuallyYields) {
  SpinBackoff B;
  for (int I = 0; I != 100; ++I)
    B.pause(); // Must not hang or crash; yields after bursts.
  B.reset();
  B.pause();
}

} // namespace
