//===- tests/TxRaceCheckTest.cpp - TxRaceCheck tests ----------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests of the TxRaceCheck happens-before race and isolation checker.
//
// The first half drives the checker's public event API directly (no
// runtime), seeding each diagnostic class and its adversarial clean twin.
// The second half runs the real Crafty runtime with EnableTxRaceCheck: a
// seeded weak-isolation race the checker must catch, plus contended
// thread-safe, SGL-fallback, validate-path and externally synchronized
// thread-unsafe runs it must keep silent on. The final test sweeps every
// STAMP-style workload under both checkers.
//
// Attribution note for the direct-drive tests: beginTxn(Tid) binds the
// calling OS thread to pool thread Tid and endTxn does not unbind, so a
// single gtest thread can impersonate several pool threads by opening
// their scopes in sequence; nonTxLoad/nonTxStore are attributed to the
// most recently bound id.
//
//===----------------------------------------------------------------------===//

#include "check/TxRaceCheck.h"
#include "check/PersistCheck.h"
#include "core/Crafty.h"
#include "harness/Harness.h"
#include "workloads/Workload.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace crafty;

namespace {

//===----------------------------------------------------------------------===//
// Direct-drive harness
//===----------------------------------------------------------------------===//

struct CheckerFixture {
  PMemPool Pool;
  TxRaceCheck Check;
  uint64_t *W; // Pool data words.

  CheckerFixture() : Pool(poolConfig()), Check(Pool) {
    W = reinterpret_cast<uint64_t *>(Pool.base());
  }

  static PMemConfig poolConfig() {
    PMemConfig PC;
    PC.PoolBytes = 1 << 20;
    PC.Mode = PMemMode::LatencyOnly;
    PC.DrainLatencyNs = 0;
    return PC;
  }
};

TEST(TxRaceCheck, SeededTxNonTxRaceIsReported) {
  CheckerFixture F;
  // Thread 1 stores non-transactionally (stripe version 1), then thread 0
  // commits a transactional write to the same word with a snapshot that
  // predates the store: no happens-before edge in either direction.
  F.Check.beginTxn(1);
  F.Check.nonTxStore(&F.W[0], /*Version=*/1);
  F.Check.endTxn(1);

  F.Check.beginTxn(0);
  F.Check.txBegin(0, /*Snapshot=*/0);
  F.Check.txStore(0, &F.W[0]);
  F.Check.txCommit(0, /*Version=*/2, /*HadWrites=*/true);
  F.Check.endTxn(0);

  EXPECT_EQ(F.Check.count(RaceDiag::TxNonTxRace), 1u);
  EXPECT_EQ(F.Check.violationCount(), 1u);
  EXPECT_EQ(F.Check.lintCount(), 0u);
  ASSERT_EQ(F.Check.reports().size(), 1u);
  TxRaceReport R = F.Check.reports()[0];
  EXPECT_EQ(R.Kind, RaceDiag::TxNonTxRace);
  EXPECT_EQ(R.ThreadId, 0u);
  EXPECT_EQ(R.OtherThreadId, 1u);
  EXPECT_EQ(R.PoolOffset, 0u);
  EXPECT_STREQ(R.Event, "commit");
  EXPECT_NE(F.Check.formatReports().find("tx-nontx-race"), std::string::npos);
}

TEST(TxRaceCheck, SnapshotCoveringTheStoreIsClean) {
  CheckerFixture F;
  // Identical to the seeded case except the transaction's snapshot covers
  // the non-transactional store's stripe version: TL2 validated the read
  // stripe, so the commit is genuinely ordered after the store.
  F.Check.beginTxn(1);
  F.Check.nonTxStore(&F.W[0], /*Version=*/1);
  F.Check.endTxn(1);

  F.Check.beginTxn(0);
  F.Check.txBegin(0, /*Snapshot=*/1);
  F.Check.txStore(0, &F.W[0]);
  F.Check.txCommit(0, /*Version=*/2, /*HadWrites=*/true);
  F.Check.endTxn(0);

  EXPECT_EQ(F.Check.violationCount(), 0u) << F.Check.formatReports();
}

TEST(TxRaceCheck, AbortedTransactionLeavesNoTrace) {
  CheckerFixture F;
  // The aborted speculative write must not race anything: HTM discards it.
  F.Check.beginTxn(0);
  F.Check.txBegin(0, /*Snapshot=*/0);
  F.Check.txStore(0, &F.W[0]);
  F.Check.txAbort(0);
  F.Check.endTxn(0);

  F.Check.beginTxn(1);
  F.Check.nonTxStore(&F.W[0], /*Version=*/1);
  F.Check.endTxn(1);

  EXPECT_EQ(F.Check.violationCount(), 0u) << F.Check.formatReports();
}

TEST(TxRaceCheck, SeededNonTxRaceIsReportedOncePerWord) {
  CheckerFixture F;
  // Two unsynchronized non-transactional stores to the same word from
  // different threads; a third racy store checks per-word deduplication.
  F.Check.beginTxn(1);
  F.Check.nonTxStore(&F.W[0], /*Version=*/1);
  F.Check.endTxn(1);
  F.Check.beginTxn(2);
  F.Check.nonTxStore(&F.W[0], /*Version=*/2);
  F.Check.endTxn(2);
  F.Check.beginTxn(3);
  F.Check.nonTxStore(&F.W[0], /*Version=*/3);
  F.Check.endTxn(3);

  EXPECT_EQ(F.Check.count(RaceDiag::NonTxRace), 1u)
      << F.Check.formatReports();
  EXPECT_EQ(F.Check.lintCount(), 0u); // All stores were inside scopes.
}

TEST(TxRaceCheck, AnnotatedSyncOrdersNonTxStores) {
  CheckerFixture F;
  int LockTag = 0; // Stands in for an application mutex.
  // The same contended pattern as the seeded nontx-race, but each store
  // is bracketed by syncAcquire/syncRelease on a shared object -- the
  // lock_durability.cpp discipline. The release/acquire clock handoff
  // orders the stores, so nothing may be reported.
  for (uint32_t Tid = 1; Tid <= 3; ++Tid) {
    F.Check.beginTxn(Tid);
    F.Check.syncAcquire(Tid, &LockTag);
    F.Check.nonTxStore(&F.W[0], /*Version=*/Tid);
    F.Check.syncRelease(Tid, &LockTag);
    F.Check.endTxn(Tid);
  }
  EXPECT_EQ(F.Check.violationCount(), 0u) << F.Check.formatReports();
}

TEST(TxRaceCheck, SeededChunkedAccessWithoutSglIsReportedOncePerScope) {
  CheckerFixture F;
  // Two chunked-phase scopes concurrently active; scope 1 touches the
  // pool holding neither the SGL nor any annotated sync object.
  F.Check.beginTxn(1);
  F.Check.setPhase(1, "chunked");
  F.Check.beginTxn(2);
  F.Check.setPhase(2, "chunked");

  F.Check.txBegin(1, /*Snapshot=*/0);
  F.Check.txStore(1, &F.W[1]);
  F.Check.txStore(1, &F.W[2]); // Same scope: deduplicated.
  F.Check.txAbort(1);

  EXPECT_EQ(F.Check.count(RaceDiag::SglNotHeld), 1u)
      << F.Check.formatReports();
  ASSERT_FALSE(F.Check.reports().empty());
  EXPECT_STREQ(F.Check.reports()[0].Phase, "chunked");

  F.Check.endTxn(2);
  F.Check.endTxn(1);
}

TEST(TxRaceCheck, LoneChunkedScopeIsClean) {
  CheckerFixture F;
  // Single-threaded thread-unsafe mode is legal: with no other scope
  // concurrently active there is nobody to race.
  F.Check.beginTxn(1);
  F.Check.setPhase(1, "chunked");
  F.Check.txBegin(1, /*Snapshot=*/0);
  F.Check.txStore(1, &F.W[1]);
  F.Check.txCommit(1, /*Version=*/1, /*HadWrites=*/true);
  F.Check.endTxn(1);
  EXPECT_EQ(F.Check.count(RaceDiag::SglNotHeld), 0u)
      << F.Check.formatReports();
}

TEST(TxRaceCheck, ChunkedAccessHoldingSglOrSyncIsClean) {
  CheckerFixture F;
  int LockTag = 0;
  F.Check.beginTxn(1);
  F.Check.setPhase(1, "chunked");
  F.Check.beginTxn(2);
  F.Check.setPhase(2, "chunked");

  // Scope 1 under the SGL.
  F.Check.sglAcquired(1);
  F.Check.txBegin(1, /*Snapshot=*/0);
  F.Check.txStore(1, &F.W[1]);
  F.Check.txCommit(1, /*Version=*/1, /*HadWrites=*/true);
  F.Check.sglReleased(1);

  // Scope 2 under an annotated application lock.
  F.Check.syncAcquire(2, &LockTag);
  F.Check.txBegin(2, /*Snapshot=*/1);
  F.Check.txStore(2, &F.W[2]);
  F.Check.txCommit(2, /*Version=*/2, /*HadWrites=*/true);
  F.Check.syncRelease(2, &LockTag);

  F.Check.endTxn(2);
  F.Check.endTxn(1);
  EXPECT_EQ(F.Check.count(RaceDiag::SglNotHeld), 0u)
      << F.Check.formatReports();
  EXPECT_EQ(F.Check.violationCount(), 0u) << F.Check.formatReports();
}

TEST(TxRaceCheck, SglSectionAndReadOnlyCommitDoNotRace) {
  CheckerFixture F;
  // A read-only transaction publishes no clock, so an SGL section's
  // all-published join cannot cover it; lock subscription still orders
  // the pair, and the checker must know that. The section writes the
  // word the read-only transaction read.
  F.Check.beginTxn(1);
  F.Check.txBegin(1, /*Snapshot=*/0);
  F.Check.txLoad(1, &F.W[3]);
  F.Check.txCommit(1, /*Version=*/0, /*HadWrites=*/false);
  F.Check.endTxn(1);

  F.Check.beginTxn(2);
  F.Check.setPhase(2, "chunked");
  F.Check.sglAcquired(2);
  F.Check.nonTxStore(&F.W[3], /*Version=*/1);
  F.Check.sglReleased(2);
  F.Check.endTxn(2);

  EXPECT_EQ(F.Check.violationCount(), 0u) << F.Check.formatReports();
}

TEST(TxRaceCheck, SeededNondetValidateIsReported) {
  CheckerFixture F;
  // A Validate-phase divergence with no foreign write to the scope's
  // footprint since the Log phase began: the body is nondeterministic.
  F.Check.beginTxn(0);
  F.Check.setPhase(0, "log");
  F.Check.txBegin(0, /*Snapshot=*/0);
  F.Check.txLoad(0, &F.W[3]);
  F.Check.txAbort(0);
  F.Check.setPhase(0, "validate");
  F.Check.noteValidateDivergence(0, &F.W[3], &F.W[4]);
  F.Check.endTxn(0);

  EXPECT_EQ(F.Check.count(RaceDiag::NondetValidate), 1u);
  ASSERT_FALSE(F.Check.reports().empty());
  EXPECT_STREQ(F.Check.reports()[0].Event, "validate");
}

TEST(TxRaceCheck, ForeignWriteExplainsValidateDivergence) {
  CheckerFixture F;
  // Same divergence, but another thread committed a write to the scope's
  // footprint after the Log phase began -- a legitimate conflict, not
  // nondeterminism; Crafty handles it by aborting and retrying.
  F.Check.beginTxn(0);
  F.Check.setPhase(0, "log");
  F.Check.txBegin(0, /*Snapshot=*/0);
  F.Check.txLoad(0, &F.W[3]);

  F.Check.txBegin(1, /*Snapshot=*/0);
  F.Check.txStore(1, &F.W[3]);
  F.Check.txCommit(1, /*Version=*/5, /*HadWrites=*/true);

  F.Check.setPhase(0, "validate");
  F.Check.noteValidateDivergence(0, &F.W[3], &F.W[4]);
  F.Check.txAbort(0);
  F.Check.endTxn(0);

  EXPECT_EQ(F.Check.count(RaceDiag::NondetValidate), 0u)
      << F.Check.formatReports();
}

TEST(TxRaceCheck, UnscopedStoreLintsOnceAndExemptRegionsAreIgnored) {
  CheckerFixture F;
  // No scope was ever opened on this OS thread: the store is attributed
  // to a synthetic thread id and linted (setup code pattern).
  F.Check.nonTxStore(&F.W[5], /*Version=*/1);
  F.Check.nonTxStore(&F.W[5], /*Version=*/2); // Same word: deduplicated.
  EXPECT_EQ(F.Check.count(RaceDiag::UnscopedStore), 1u);
  EXPECT_EQ(F.Check.lintCount(), 1u);
  EXPECT_EQ(F.Check.violationCount(), 0u);
  ASSERT_FALSE(F.Check.reports().empty());
  EXPECT_GE(F.Check.reports()[0].ThreadId, TxRaceCheck::FirstSyntheticTid);

  // Exempt regions (undo logs) and out-of-pool addresses are invisible.
  F.Check.registerExemptRegion(&F.W[8], 64);
  F.Check.nonTxStore(&F.W[8], /*Version=*/3);
  uint64_t Stack = 0;
  F.Check.nonTxStore(&Stack, /*Version=*/4);
  EXPECT_EQ(F.Check.lintCount(), 1u);
  EXPECT_EQ(F.Check.violationCount(), 0u);
}

TEST(TxRaceCheck, CheckReportSerializesToJson) {
  CheckerFixture F;
  F.Check.beginTxn(1);
  F.Check.nonTxStore(&F.W[0], /*Version=*/1);
  F.Check.endTxn(1);
  F.Check.beginTxn(0);
  F.Check.txBegin(0, /*Snapshot=*/0);
  F.Check.txStore(0, &F.W[0]);
  F.Check.txCommit(0, /*Version=*/2, /*HadWrites=*/true);
  F.Check.endTxn(0);

  CheckReport R = F.Check.checkReport();
  EXPECT_STREQ(R.Checker, "txracecheck");
  EXPECT_EQ(R.Violations, 1u);
  std::string Json = R.toJson();
  EXPECT_NE(Json.find("\"checker\""), std::string::npos);
  EXPECT_NE(Json.find("txracecheck"), std::string::npos);
  EXPECT_NE(Json.find("tx-nontx-race"), std::string::npos);

  std::string Path = testing::TempDir() + "txracecheck_test_report.json";
  ASSERT_TRUE(R.writeJson(Path.c_str()));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Json);
  std::remove(Path.c_str());

  F.Check.clearReports();
  EXPECT_EQ(F.Check.violationCount(), 0u);
  EXPECT_TRUE(F.Check.reports().empty());
}

//===----------------------------------------------------------------------===//
// Runtime integration
//===----------------------------------------------------------------------===//

struct RaceSystem {
  PMemPool Pool;
  HtmRuntime Htm;
  CraftyRuntime Rt;

  explicit RaceSystem(CraftyConfig CC, HtmConfig HC = HtmConfig())
      : Pool(poolConfig()), Htm(HC), Rt(Pool, Htm, CC) {}

  ~RaceSystem() {
    if (PersistCheck *PC = Rt.persistCheck()) {
      EXPECT_EQ(PC->violationCount(), 0u) << PC->formatViolations();
    }
  }

  TxRaceCheck &race() { return *Rt.raceCheck(); }

  static PMemConfig poolConfig() {
    PMemConfig PC;
    PC.PoolBytes = 8 << 20;
    PC.Mode = PMemMode::Tracked;
    PC.DrainLatencyNs = 0;
    return PC;
  }
};

CraftyConfig raceConfig(unsigned Threads = 1, bool PersistToo = true) {
  CraftyConfig C;
  C.NumThreads = Threads;
  C.LogEntriesPerThread = 1 << 12;
  C.EnableTxRaceCheck = true;
  C.EnablePersistCheck = PersistToo;
  return C;
}

TEST(TxRaceCheckRuntime, DisabledByDefault) {
  CraftyConfig C;
  C.NumThreads = 1;
  RaceSystem S(C);
  EXPECT_EQ(S.Rt.raceCheck(), nullptr);
}

TEST(TxRaceCheckRuntime, SeededWeakIsolationRaceIsCaught) {
  // EnablePersistCheck off: the seeded raw store is deliberately outside
  // any scope and would (correctly) upset the persist checker too.
  RaceSystem S(raceConfig(1, /*PersistToo=*/false));
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  S.Rt.run(0, [&](TxnContext &Tx) { Tx.store(&Data[0], 7); });

  // A foreign thread stores to the committed word behind Crafty's back:
  // no transaction, no scope, no synchronization. This is the
  // weak-isolation hazard of mixing transactional and plain access.
  std::thread Rogue([&] { S.Htm.nonTxStore(&Data[0], 99); });
  Rogue.join();

  EXPECT_EQ(S.race().count(RaceDiag::TxNonTxRace), 1u)
      << S.race().formatReports();
  EXPECT_EQ(S.race().count(RaceDiag::UnscopedStore), 1u);
  EXPECT_EQ(S.race().violationCount(), 1u);
}

TEST(TxRaceCheckRuntime, ContendedThreadSafeCountersAreRaceFree) {
  constexpr unsigned NumThreads = 4;
  constexpr int OpsPerThread = 250;
  RaceSystem S(raceConfig(NumThreads));
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != OpsPerThread; ++I)
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(*Counter, (uint64_t)NumThreads * OpsPerThread);
  EXPECT_EQ(S.race().violationCount(), 0u) << S.race().formatReports();
  EXPECT_EQ(S.race().lintCount(), 0u) << S.race().formatReports();
}

TEST(TxRaceCheckRuntime, ContendedValidatePathHasNoFalseNondetReports) {
  // DisableRedo forces every writing commit through Validate; under
  // contention the re-execution legitimately diverges (foreign commits
  // land between Log and Validate) and Crafty retries. None of those
  // divergences may be classified as nondeterminism.
  constexpr unsigned NumThreads = 3;
  constexpr int OpsPerThread = 150;
  CraftyConfig C = raceConfig(NumThreads);
  C.DisableRedo = true;
  RaceSystem S(C);
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != OpsPerThread; ++I)
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(*Counter, (uint64_t)NumThreads * OpsPerThread);
  EXPECT_GT(S.Rt.txnStats().Validate, 0u);
  EXPECT_EQ(S.race().count(RaceDiag::NondetValidate), 0u)
      << S.race().formatReports();
  EXPECT_EQ(S.race().violationCount(), 0u) << S.race().formatReports();
}

TEST(TxRaceCheckRuntime, SglFallbackSectionsAreRaceFree) {
  // Every hardware transaction aborts, driving both threads through the
  // SGL chunked path (down to k = 1 plain stores). The SGL edges must
  // order the sections: no races, and no sgl-not-held reports since the
  // lock is genuinely held.
  HtmConfig HC;
  HC.SpuriousAbortPerMillion = 1000000;
  constexpr unsigned NumThreads = 2;
  constexpr int OpsPerThread = 40;
  CraftyConfig C = raceConfig(NumThreads);
  C.SglAttemptThreshold = 2;
  RaceSystem S(C, HC);
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != OpsPerThread; ++I)
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(*Counter, (uint64_t)NumThreads * OpsPerThread);
  EXPECT_GT(S.Rt.txnStats().Sgl, 0u);
  EXPECT_EQ(S.race().violationCount(), 0u) << S.race().formatReports();
}

TEST(TxRaceCheckRuntime, ThreadUnsafeWithoutAnnotationIsReported) {
  // Thread-unsafe mode with k = 1: every write is a plain store. Two
  // threads run strictly one after the other, but the checker cannot see
  // the std::thread join edge -- exactly the situation syncAcquire /
  // syncRelease exist for. Unannotated, this must be flagged.
  CraftyConfig C = raceConfig(2, /*PersistToo=*/true);
  C.Mode = CraftyMode::ThreadUnsafe;
  C.InitialChunkK = 1;
  RaceSystem S(C);
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  std::thread A([&] {
    S.Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  });
  A.join();
  std::thread B([&] {
    S.Rt.run(1, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  });
  B.join();
  EXPECT_EQ(*Counter, 2u);
  EXPECT_GE(S.race().count(RaceDiag::NonTxRace) +
                S.race().count(RaceDiag::TxNonTxRace),
            1u)
      << S.race().formatReports();
}

TEST(TxRaceCheckRuntime, ThreadUnsafeWithAnnotatedLockIsClean) {
  // The lock_durability.cpp discipline: the application provides
  // atomicity with a mutex and declares it via syncAcquire/syncRelease.
  // Same contended counter as the unannotated case; zero reports allowed.
  constexpr unsigned NumThreads = 3;
  constexpr int OpsPerThread = 100;
  CraftyConfig C = raceConfig(NumThreads);
  C.Mode = CraftyMode::ThreadUnsafe;
  C.InitialChunkK = 1;
  RaceSystem S(C);
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  std::mutex Lock;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != OpsPerThread; ++I) {
        std::lock_guard<std::mutex> G(Lock);
        S.race().syncAcquire(T, &Lock);
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
        S.race().syncRelease(T, &Lock);
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(*Counter, (uint64_t)NumThreads * OpsPerThread);
  EXPECT_EQ(S.race().violationCount(), 0u) << S.race().formatReports();
  EXPECT_EQ(S.race().lintCount(), 0u) << S.race().formatReports();
}

//===----------------------------------------------------------------------===//
// Workload sweep under both checkers
//===----------------------------------------------------------------------===//

TEST(TxRaceCheckWorkloads, AllWorkloadsAreRaceFreeUnderChecker) {
  for (WorkloadKind Kind : AllWorkloads) {
    ExperimentConfig C;
    C.Workload = Kind;
    C.System = SystemKind::Crafty;
    C.Threads = 4;
    C.OpsPerThread = Kind == WorkloadKind::Labyrinth ? 8 : 120;
    C.DrainLatencyNs = 0;
    C.EnablePersistCheck = true;
    C.EnableTxRaceCheck = true;
    ExperimentResult R = runExperiment(C);
    std::unique_ptr<Workload> W = createWorkload(Kind);
    EXPECT_EQ(R.VerifyError, "") << W->name();
    EXPECT_EQ(R.CheckViolations, 0u)
        << W->name() << ":\n" << R.CheckReportText;
  }
}

} // namespace
