//===- tests/RedoPipelineTest.cpp - Redo pipeline unit tests --------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/RedoPipeline.h"

#include "gtest/gtest.h"

#include <atomic>

using namespace crafty;

namespace {

PMemConfig pipePool() {
  PMemConfig PC;
  PC.PoolBytes = 1 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  return PC;
}

RedoTxnRecord record(uint64_t Ts, uint64_t *Addr, uint64_t Val) {
  RedoTxnRecord R;
  R.Ts = Ts;
  R.Writes.push_back(RedoEntry{Addr, Val});
  return R;
}

TEST(RedoPipeline, DenseOrderAppliesConsecutiveTimestamps) {
  PMemPool Pool(pipePool());
  auto *W = static_cast<uint64_t *>(Pool.carve(64));
  RedoPipeline Pipe(Pool, 2, PipelineOrder::Dense, /*PersistThreadId=*/3);
  Pipe.start();
  // Out-of-order arrival across producers; dense order must wait for 1.
  Pipe.enqueue(1, record(2, W, 2));
  Pipe.enqueue(1, record(3, W, 3));
  Pipe.enqueue(0, record(1, W, 1));
  Pipe.quiesce();
  EXPECT_EQ(Pipe.appliedTxns(), 3u);
  // The records' lines were persisted: the volatile view holds nothing
  // (records do not write program memory here), but the drains ran.
  EXPECT_GE(Pool.stats().drainsWithWork(), 3u);
  Pipe.stop();
}

struct BoundCtx {
  std::atomic<uint64_t> Bound{0};
};

TEST(RedoPipeline, SafeTsHoldsBackRecordsAboveTheBound) {
  PMemPool Pool(pipePool());
  auto *W = static_cast<uint64_t *>(Pool.carve(64));
  BoundCtx Ctx;
  RedoPipeline Pipe(Pool, 1, PipelineOrder::SafeTs, /*PersistThreadId=*/3);
  Pipe.setSafeTsBound(
      [](void *C) -> uint64_t {
        return static_cast<BoundCtx *>(C)->Bound.load();
      },
      &Ctx);
  Pipe.start();
  Pipe.enqueue(0, record(10, W, 1));
  // Bound below the record: nothing may apply yet.
  Ctx.Bound.store(5);
  for (int I = 0; I != 50; ++I)
    std::this_thread::yield();
  EXPECT_EQ(Pipe.appliedTxns(), 0u);
  // Raise the bound past the record: it applies.
  Ctx.Bound.store(11);
  Pipe.quiesce();
  EXPECT_EQ(Pipe.appliedTxns(), 1u);
  Pipe.stop();
}

TEST(RedoPipeline, BackpressureBlocksUntilConsumed) {
  PMemPool Pool(pipePool());
  auto *W = static_cast<uint64_t *>(Pool.carve(64));
  RedoPipeline Pipe(Pool, 1, PipelineOrder::Dense, /*PersistThreadId=*/3,
                    /*QueueCapacity=*/4);
  Pipe.start();
  for (uint64_t Ts = 1; Ts <= 64; ++Ts)
    Pipe.enqueue(0, record(Ts, W, Ts)); // Blocks transiently when full.
  Pipe.quiesce();
  EXPECT_EQ(Pipe.appliedTxns(), 64u);
  Pipe.stop();
}

} // namespace
