//===- tests/LintCfgTest.cpp - crafty-lint CFG construction ---------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for crafty-lint's control-flow-graph construction
/// (tools/crafty-lint/Cfg.cpp), pinned with golden block/edge dumps.
/// Each case lexes a statement sequence, parses the Stmt tree, lowers it
/// to a CFG and compares Cfg::dump() -- block membership (as atom kinds
/// with source lines), successor lists, and the synthetic entry/exit
/// blocks -- against the expected text. These goldens are what the
/// dataflow rules (flush-without-drain, persist-ordering) solve over, so
/// an edge regression here is a soundness regression there.
///
//===----------------------------------------------------------------------===//

#include "Cfg.h"
#include "Lexer.h"
#include "Stmt.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace craftylint;

std::string dumpOf(const char *Src) {
  LexedFile L = lexFile("cfg_test.cpp", Src);
  Stmt Tree = parseStmtTree(L.Toks, 0, L.Toks.size());
  return buildCfg(Tree).dump();
}

TEST(LintCfg, BranchDiamond) {
  const char *Src = "a = 1;\n"
                    "if (c) {\n"
                    "  b = 2;\n"
                    "} else {\n"
                    "  b = 3;\n"
                    "}\n"
                    "d = 4;\n";
  // Straight-line prefix and the condition share the entry block; then
  // and else each get a block; both rejoin before the trailing store.
  EXPECT_EQ(dumpOf(Src), "B0(entry) [code@1 hdr@2] -> 2 3\n"
                         "B1(exit)\n"
                         "B2 [code@3] -> 4\n"
                         "B3 [code@5] -> 4\n"
                         "B4 [code@7] -> 1\n");
}

TEST(LintCfg, LoopWithBreakAndContinue) {
  const char *Src = "s = 0;\n"
                    "for (i = 0; i < n; ++i) {\n"
                    "  if (skip(i))\n"
                    "    continue;\n"
                    "  if (bad(i))\n"
                    "    break;\n"
                    "  s += i;\n"
                    "}\n"
                    "t = s;\n";
  // B3 is the loop header (condition re-evaluated on the back edge);
  // continue (B5) jumps to it, break (B8) jumps to the loop-exit block
  // B2, and the body tail (B10) closes the back edge.
  EXPECT_EQ(dumpOf(Src), "B0(entry) [code@1] -> 3\n"
                         "B1(exit)\n"
                         "B2 [code@9] -> 1\n"
                         "B3 [hdr@2] -> 2 4\n"
                         "B4 [hdr@3] -> 5 7\n"
                         "B5 -> 3\n"
                         "B6 -> 7\n"
                         "B7 [hdr@5] -> 8 10\n"
                         "B8 -> 2\n"
                         "B9 -> 10\n"
                         "B10 [code@7] -> 3\n");
}

TEST(LintCfg, EarlyReturn) {
  const char *Src = "if (!p)\n"
                    "  return 0;\n"
                    "x = p;\n"
                    "return x;\n";
  // Both returns edge directly into the synthetic exit block; the guard's
  // fall-through path continues into the tail block.
  EXPECT_EQ(dumpOf(Src), "B0(entry) [hdr@1] -> 2 4\n"
                         "B1(exit)\n"
                         "B2 [ret@2] -> 1\n"
                         "B3 -> 4\n"
                         "B4 [code@3 ret@4] -> 1\n"
                         "B5 -> 1\n");
}

TEST(LintCfg, SwitchWithFallthrough) {
  const char *Src = "switch (k) {\n"
                    "case 0:\n"
                    "  a = 1;\n"
                    "  break;\n"
                    "case 1:\n"
                    "  a = 2;\n"
                    "default:\n"
                    "  a = 3;\n"
                    "  break;\n"
                    "}\n"
                    "z = a;\n";
  // Dispatch fans out to every case label (plus the conservative
  // fall-out edge to B2); case 1 falls through into default; breaks
  // edge to the switch-exit block.
  EXPECT_EQ(dumpOf(Src), "B0(entry) [hdr@1] -> 2 4 6 7\n"
                         "B1(exit)\n"
                         "B2 [code@11] -> 1\n"
                         "B3 -> 4\n"
                         "B4 [code@3] -> 2\n"
                         "B5 -> 6\n"
                         "B6 [code@6] -> 7\n"
                         "B7 [code@8] -> 2\n"
                         "B8 -> 2\n");
}

TEST(LintCfg, DoWhilePostCondition) {
  const char *Src = "n = 0;\n"
                    "do {\n"
                    "  n += step();\n"
                    "} while (n < lim);\n"
                    "done(n);\n";
  // Post-condition loop: the entry edge goes to the *body* (B3), which
  // always runs once before the condition (B4) decides exit vs back edge.
  EXPECT_EQ(dumpOf(Src), "B0(entry) [code@1] -> 3\n"
                         "B1(exit)\n"
                         "B2 [code@5] -> 1\n"
                         "B3 [code@3] -> 4\n"
                         "B4 [hdr@2] -> 2 3\n");
}

/// Structural invariants every dump relies on: preds mirror succs, and
/// every non-exit block reaches somewhere.
TEST(LintCfg, EdgeConsistency) {
  const char *Src = "s = 0;\n"
                    "for (i = 0; i < n; ++i) {\n"
                    "  if (skip(i))\n"
                    "    continue;\n"
                    "  s += i;\n"
                    "}\n"
                    "return s;\n";
  LexedFile L = lexFile("cfg_test.cpp", Src);
  Stmt Tree = parseStmtTree(L.Toks, 0, L.Toks.size());
  Cfg G = buildCfg(Tree);
  for (size_t B = 0; B < G.Blocks.size(); ++B) {
    for (int S : G.Blocks[B].Succs) {
      ASSERT_GE(S, 0);
      ASSERT_LT((size_t)S, G.Blocks.size());
      const std::vector<int> &P = G.Blocks[S].Preds;
      EXPECT_NE(std::find(P.begin(), P.end(), (int)B), P.end())
          << "B" << B << " -> " << S << " missing reverse edge";
    }
    if ((int)B != G.Exit && !(G.Blocks[B].Atoms.empty() &&
                              G.Blocks[B].Preds.empty() &&
                              G.Blocks[B].Succs.empty())) {
      EXPECT_FALSE(G.Blocks[B].Succs.empty() && !G.Blocks[B].FallsToExit)
          << "B" << B << " dangles";
    }
  }
}

} // namespace
