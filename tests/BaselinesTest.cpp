//===- tests/BaselinesTest.cpp - Baseline backend tests -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Validates the Non-durable, NV-HTM and DudeTM baselines through the
// backend-generic interface, including the mechanisms the paper's
// analysis hinges on: NV-HTM's commit fence and checkpointer, and
// DudeTM's in-transaction global counter serializing writers.
//
//===----------------------------------------------------------------------===//

#include "baselines/Factory.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace crafty;

namespace {

struct BackendFixture {
  PMemPool Pool;
  HtmRuntime Htm;
  std::unique_ptr<PtmBackend> Backend;

  BackendFixture(SystemKind Kind, unsigned Threads,
                 size_t ArenaBytes = 0)
      : Pool(poolConfig()), Htm(HtmConfig()) {
    BackendOptions O;
    O.NumThreads = Threads;
    O.ArenaBytesPerThread = ArenaBytes;
    O.LogEntriesPerThread = 1 << 12;
    Backend = createBackend(Kind, Pool, Htm, O);
  }

  static PMemConfig poolConfig() {
    PMemConfig PC;
    PC.PoolBytes = 96 << 20;
    PC.Mode = PMemMode::LatencyOnly;
    PC.DrainLatencyNs = 0;
    return PC;
  }
};

class AllBackends : public ::testing::TestWithParam<SystemKind> {};

TEST_P(AllBackends, SingleThreadBasics) {
  BackendFixture F(GetParam(), 1);
  auto *Data = static_cast<uint64_t *>(F.Pool.carve(256));
  F.Backend->run(0, [&](TxnContext &Tx) {
    Tx.store(&Data[0], 7);
    Tx.store(&Data[8], Tx.load(&Data[0]) * 2);
  });
  F.Backend->run(0, [&](TxnContext &Tx) {
    Tx.store(&Data[16], Tx.load(&Data[8]) + 1);
  });
  F.Backend->quiesce();
  EXPECT_EQ(Data[0], 7u);
  EXPECT_EQ(Data[8], 14u);
  EXPECT_EQ(Data[16], 15u);
  EXPECT_EQ(F.Backend->txnStats().transactions(), 2u);
  EXPECT_EQ(F.Backend->txnStats().Writes, 3u);
}

TEST_P(AllBackends, MultithreadedCounterIsExact) {
  constexpr unsigned NumThreads = 4;
  constexpr uint64_t PerThread = 400;
  BackendFixture F(GetParam(), NumThreads);
  auto *Counter = static_cast<uint64_t *>(F.Pool.carve(64));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        F.Backend->run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
    });
  for (auto &Th : Threads)
    Th.join();
  F.Backend->quiesce();
  EXPECT_EQ(*Counter, NumThreads * PerThread);
}

TEST_P(AllBackends, AllocationAndFree) {
  BackendFixture F(GetParam(), 1, /*ArenaBytes=*/64 << 10);
  auto *Slot = static_cast<uint64_t *>(F.Pool.carve(64));
  F.Backend->run(0, [&](TxnContext &Tx) {
    auto *Node = static_cast<uint64_t *>(Tx.alloc(16));
    ASSERT_NE(Node, nullptr);
    Tx.store(&Node[0], 99);
    Tx.store(Slot, reinterpret_cast<uint64_t>(Node));
  });
  F.Backend->quiesce();
  auto *Node = reinterpret_cast<uint64_t *>(*Slot);
  ASSERT_NE(Node, nullptr);
  EXPECT_EQ(Node[0], 99u);
}

INSTANTIATE_TEST_SUITE_P(Systems, AllBackends,
                         ::testing::ValuesIn(AllSystems),
                         [](const auto &Info) {
                           std::string N = systemKindName(Info.param);
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(NvHtm, ReadOnlyTransactionsSkipTheFence) {
  BackendFixture F(SystemKind::NvHtm, 2);
  auto *Data = static_cast<uint64_t *>(F.Pool.carve(64));
  uint64_t Seen = 1;
  F.Backend->run(0, [&](TxnContext &Tx) { Seen = Tx.load(&Data[0]); });
  EXPECT_EQ(Seen, 0u);
  EXPECT_EQ(F.Backend->txnStats().transactions(), 1u);
}

TEST(NvHtm, CheckpointerAppliesInTimestampOrder) {
  // Many writing transactions from two threads; after quiesce the
  // checkpointer must have applied them all.
  BackendFixture F(SystemKind::NvHtm, 2);
  auto *Data = static_cast<uint64_t *>(F.Pool.carve(64));
  std::thread A([&] {
    for (int I = 0; I != 200; ++I)
      F.Backend->run(0, [&](TxnContext &Tx) {
        Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
      });
  });
  std::thread B([&] {
    for (int I = 0; I != 200; ++I)
      F.Backend->run(1, [&](TxnContext &Tx) {
        Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
      });
  });
  A.join();
  B.join();
  F.Backend->quiesce();
  EXPECT_EQ(Data[0], 400u);
  PMemStats S = F.Pool.stats();
  EXPECT_GT(S.drainsWithWork(), 0u) << "checkpointer persists batches";
}

TEST(DudeTm, WritersSerializeOnTheGlobalCounter) {
  // Two overlapping single-thread writers: both commit, and the hardware
  // abort statistics must show conflicts induced by the counter even
  // though the program data is disjoint (one writer per line).
  BackendFixture F(SystemKind::DudeTm, 2);
  auto *Data = static_cast<uint64_t *>(F.Pool.carve(2 * CacheLineBytes));
  constexpr int Ops = 500;
  std::thread A([&] {
    for (int I = 0; I != Ops; ++I)
      F.Backend->run(0, [&](TxnContext &Tx) {
        Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
      });
  });
  std::thread B([&] {
    for (int I = 0; I != Ops; ++I)
      F.Backend->run(1, [&](TxnContext &Tx) {
        Tx.store(&Data[8], Tx.load(&Data[8]) + 1);
      });
  });
  A.join();
  B.join();
  F.Backend->quiesce();
  EXPECT_EQ(Data[0], (uint64_t)Ops);
  EXPECT_EQ(Data[8], (uint64_t)Ops);
}

TEST(DudeTm, DisjointReadOnlyTransactionsDoNotConflict) {
  BackendFixture F(SystemKind::DudeTm, 1);
  auto *Data = static_cast<uint64_t *>(F.Pool.carve(64));
  for (int I = 0; I != 10; ++I) {
    uint64_t V = ~0ull;
    F.Backend->run(0, [&](TxnContext &Tx) { V = Tx.load(&Data[0]); });
    EXPECT_EQ(V, 0u);
  }
  EXPECT_EQ(F.Backend->htmStats().aborts(), 0u);
}

} // namespace

namespace {

// Regression: an SGL section's direct accesses must serialize against
// in-flight hardware-transaction write-backs (a plain load once could
// observe the middle of a commit and lose its update).
TEST(SglRace, FrequentFallbackPreservesAtomicity) {
  PMemConfig PC = BackendFixture::poolConfig();
  PMemPool Pool(PC);
  HtmConfig HC;
  HC.SpuriousAbortPerMillion = 30000; // Frequent spurious aborts...
  HtmRuntime Htm(HC);
  BackendOptions O;
  O.NumThreads = 6;
  O.SglAttemptThreshold = 2; // ...quickly falling back to the SGL.
  std::unique_ptr<PtmBackend> Backend =
      createBackend(SystemKind::NonDurable, Pool, Htm, O);
  constexpr unsigned NumAccounts = 32;
  auto *Accounts =
      static_cast<uint64_t *>(Pool.carve(NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I)
    Accounts[I * 8] = 1000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 6; ++T)
    Threads.emplace_back([&, T] {
      Rng R(T + 21);
      for (int I = 0; I != 1200; ++I) {
        unsigned From = (unsigned)R.nextBounded(NumAccounts);
        unsigned To = (unsigned)((From + 1 + R.nextBounded(NumAccounts - 1)) %
                                 NumAccounts);
        Backend->run(T, [&](TxnContext &Tx) {
          Tx.store(&Accounts[From * 8], Tx.load(&Accounts[From * 8]) - 1);
          Tx.store(&Accounts[To * 8], Tx.load(&Accounts[To * 8]) + 1);
        });
      }
    });
  for (auto &Th : Threads)
    Th.join();
  Backend->quiesce();
  EXPECT_GT(Backend->txnStats().Sgl, 0u) << "the fallback must be hit";
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  EXPECT_EQ(Total, 1000u * NumAccounts);
}

} // namespace

#include "baselines/NvHtm.h"
#include "baselines/NvHtmRecovery.h"

namespace {

// NV-HTM crash recovery: replay COMMIT-marked redo records forward.
TEST(NvHtmRecovery, SingleThreadPrefixReplay) {
  PMemConfig PC;
  PC.PoolBytes = 32 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PMemPool Pool(PC);
  HtmRuntime Htm{HtmConfig{}};
  NvHtmBackend Backend(Pool, Htm, 1);
  auto *Counter = static_cast<uint64_t *>(Pool.carve(64));
  constexpr uint64_t N = 30;
  for (uint64_t I = 0; I != N; ++I)
    Backend.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  Backend.quiesce();
  Pool.crash();
  NvHtmRecoveryReport Rep = replayNvHtmPool(Pool, Backend.layoutOffset());
  ASSERT_TRUE(Rep.HeaderValid);
  // The last transaction's COMMIT marker was flushed but never drained:
  // recovery replays exactly the first N-1 transactions.
  EXPECT_EQ(Rep.RecordsReplayed, N - 1);
  EXPECT_EQ(Rep.TailRecords, 1u);
  EXPECT_EQ(*Counter, N - 1);
}

TEST(NvHtmRecovery, MultithreadedTransfersReplayConsistently) {
  PMemConfig PC;
  PC.PoolBytes = 64 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PMemPool Pool(PC);
  HtmRuntime Htm{HtmConfig{}};
  NvHtmBackend Backend(Pool, Htm, 3, /*ArenaBytesPerThread=*/0,
                       /*LogBytesPerThread=*/8 << 20);
  constexpr unsigned NumAccounts = 32;
  auto *Accounts =
      static_cast<uint64_t *>(Pool.carve(NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I) {
    uint64_t V = 1000;
    Pool.persistDirect(&Accounts[I * 8], &V, sizeof(V));
  }
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 3; ++T)
    Threads.emplace_back([&, T] {
      Rng R(T + 41);
      for (int I = 0; I != 400; ++I) {
        unsigned From = (unsigned)R.nextBounded(NumAccounts);
        unsigned To = (unsigned)((From + 1 + R.nextBounded(NumAccounts - 1)) %
                                 NumAccounts);
        Backend.run(T, [&](TxnContext &Tx) {
          Tx.store(&Accounts[From * 8], Tx.load(&Accounts[From * 8]) - 3);
          Tx.store(&Accounts[To * 8], Tx.load(&Accounts[To * 8]) + 3);
        });
      }
    });
  for (auto &Th : Threads)
    Th.join();
  Backend.quiesce();
  Pool.crash();
  NvHtmRecoveryReport Rep = replayNvHtmPool(Pool, Backend.layoutOffset());
  ASSERT_TRUE(Rep.HeaderValid);
  EXPECT_GT(Rep.RecordsReplayed, 0u);
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  EXPECT_EQ(Total, 1000u * NumAccounts)
      << "the replayed prefix must be transaction consistent";
}

TEST(NvHtmRecovery, GarbageLayoutIsRejected) {
  std::vector<uint8_t> Image(4096, 0xCD);
  NvHtmRecoveryReport Rep = replayNvHtmImage(Image.data(), Image.size(), 0);
  EXPECT_FALSE(Rep.HeaderValid);
}

} // namespace

#include "baselines/DudeTm.h"

namespace {

TEST(DudeTmRecovery, DensePrefixReplay) {
  PMemConfig PC;
  PC.PoolBytes = 64 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PMemPool Pool(PC);
  HtmRuntime Htm{HtmConfig{}};
  DudeTmBackend Backend(Pool, Htm, 2);
  auto *Counter = static_cast<uint64_t *>(Pool.carve(64));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 2; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != 200; ++I)
        Backend.run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
    });
  for (auto &Th : Threads)
    Th.join();
  Backend.quiesce();
  Pool.crash();
  NvHtmRecoveryReport Rep = replayNvHtmPool(Pool, Backend.layoutOffset());
  ASSERT_TRUE(Rep.HeaderValid);
  // The persist stage drains every record, so all 400 transactions are
  // marked and replay in dense timestamp order.
  EXPECT_EQ(Rep.RecordsReplayed, 400u);
  EXPECT_EQ(*Counter, 400u);
}

} // namespace
