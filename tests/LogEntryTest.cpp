//===- tests/LogEntryTest.cpp - Undo-log encoding tests -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "log/LogEntry.h"
#include "log/PoolLayout.h"
#include "pmem/PMemPool.h"

#include "gtest/gtest.h"

#include <cstring>
#include <tuple>

using namespace crafty;

namespace {

TEST(LogEntry, DataRoundTripPreservesAddressAndValue) {
  alignas(8) static uint64_t Var;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Var);
  for (unsigned Pass = 0; Pass != 2; ++Pass) {
    for (uint64_t Value :
         {0ull, 1ull, 2ull, 0xdeadbeefull, ~0ull, 0x8000000000000001ull}) {
      EncodedEntry E = encodeDataEntry(Addr, Value, Pass);
      EXPECT_EQ(E.AddrWord & 1, Pass);
      EXPECT_EQ(E.ValWord & 1, Pass);
      DecodedEntry D = decodeEntry(E.AddrWord, E.ValWord);
      ASSERT_EQ(D.K, DecodedEntry::Kind::Data);
      EXPECT_EQ(D.Addr, Addr);
      EXPECT_EQ(D.Value, Value);
      EXPECT_EQ(D.Pass, Pass);
    }
  }
}

TEST(LogEntry, TagRoundTripPreservesTimestamp) {
  for (uint64_t Tag : {TagLogged, TagCommitted}) {
    for (unsigned Pass = 0; Pass != 2; ++Pass) {
      for (uint64_t Ts : {0ull, 1ull, 12345ull, (1ull << 61) - 1}) {
        EncodedEntry E = encodeTagEntry(Tag, Ts, Pass);
        DecodedEntry D = decodeEntry(E.AddrWord, E.ValWord);
        ASSERT_TRUE(D.isTag());
        EXPECT_EQ(D.K == DecodedEntry::Kind::Logged, Tag == TagLogged);
        EXPECT_EQ(D.Ts, Ts);
        EXPECT_EQ(D.Pass, Pass);
      }
    }
  }
}

TEST(LogEntry, TornEntryIsInvalid) {
  alignas(8) static uint64_t Var;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Var);
  EncodedEntry New = encodeDataEntry(Addr, 77, /*Pass=*/1);
  EncodedEntry Old = encodeDataEntry(Addr, 66, /*Pass=*/0);
  // One word from each pass: wraparound bits disagree -> torn.
  EXPECT_EQ(decodeEntry(New.AddrWord, Old.ValWord).K,
            DecodedEntry::Kind::Invalid);
  EXPECT_EQ(decodeEntry(Old.AddrWord, New.ValWord).K,
            DecodedEntry::Kind::Invalid);
}

TEST(LogEntry, ZeroedSlotIsInvalid) {
  EXPECT_EQ(decodeEntry(0, 0).K, DecodedEntry::Kind::Invalid);
}

TEST(LogEntry, TornTagTimestampCannotBeCorrupted) {
  // The merged LOGGED/COMMITTED entry's timestamp is overwritten at
  // commit; if only one of the two words persists, the entry must either
  // decode with one of the two legitimate timestamps or be torn -- never
  // a third timestamp. The shifted payload guarantees this because the
  // stolen-value bit is always zero for tags.
  uint64_t Ts1 = 1000, Ts2 = 1001;
  EncodedEntry A = encodeTagEntry(TagLogged, Ts1, 1);
  EncodedEntry B = encodeTagEntry(TagLogged, Ts2, 1);
  DecodedEntry D = decodeEntry(A.AddrWord, B.ValWord);
  ASSERT_TRUE(D.isTag());
  EXPECT_EQ(D.Ts, Ts2); // The value word alone carries the timestamp.
  D = decodeEntry(B.AddrWord, A.ValWord);
  ASSERT_TRUE(D.isTag());
  EXPECT_EQ(D.Ts, Ts1);
}

class LogEntrySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {};

TEST_P(LogEntrySweep, ValueBitPatternsSurviveStolenBits) {
  auto [Value, Pass] = GetParam();
  alignas(8) static uint64_t Var;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Var);
  EncodedEntry E = encodeDataEntry(Addr, Value, Pass);
  DecodedEntry D = decodeEntry(E.AddrWord, E.ValWord);
  ASSERT_EQ(D.K, DecodedEntry::Kind::Data);
  EXPECT_EQ(D.Value, Value);
  EXPECT_EQ(D.Addr, Addr);
}

INSTANTIATE_TEST_SUITE_P(
    BitPatterns, LogEntrySweep,
    ::testing::Combine(::testing::Values(0ull, 1ull, 3ull, 0xffull,
                                         0xAAAAAAAAAAAAAAAAull,
                                         0x5555555555555555ull, ~0ull,
                                         1ull << 63, (1ull << 63) | 1),
                       ::testing::Values(0u, 1u)));

TEST(UndoLogRegion, GeometryAndPassBits) {
  UndoLogRegion R;
  alignas(64) static uint64_t Slots[2 * 64];
  R.Slots = Slots;
  R.NumEntries = 64;
  EXPECT_EQ(R.slotFor(0), 0u);
  EXPECT_EQ(R.slotFor(63), 63u);
  EXPECT_EQ(R.slotFor(64), 0u);
  EXPECT_EQ(R.slotFor(65), 1u);
  // First pass writes W = 1; then alternating.
  EXPECT_EQ(R.passFor(0), 1u);
  EXPECT_EQ(R.passFor(63), 1u);
  EXPECT_EQ(R.passFor(64), 0u);
  EXPECT_EQ(R.passFor(128), 1u);
  EXPECT_EQ(R.addrWordAt(3), &Slots[6]);
  EXPECT_EQ(R.valWordAt(3), &Slots[7]);
}

TEST(PoolLayout, FormatAndRelocateRegions) {
  PMemConfig C;
  C.PoolBytes = 1 << 20;
  C.Mode = PMemMode::Tracked;
  C.DrainLatencyNs = 0;
  PMemPool Pool(C);
  PoolHeader *H = formatPool(Pool, 3, 256, 4096);
  EXPECT_EQ(H->Magic, PoolMagic);
  EXPECT_EQ(H->NumThreads, 3u);
  EXPECT_EQ(H->MappedBase, reinterpret_cast<uint64_t>(Pool.base()));
  UndoLogRegion R0 = logRegionFor(Pool.base(), *H, 0);
  UndoLogRegion R2 = logRegionFor(Pool.base(), *H, 2);
  EXPECT_EQ(reinterpret_cast<uint8_t *>(R2.Slots) -
                reinterpret_cast<uint8_t *>(R0.Slots),
            (ptrdiff_t)(2 * R0.regionBytes()));
  // The header is persisted immediately (visible in the image).
  std::vector<uint8_t> Img = Pool.imageSnapshot();
  PoolHeader FromImage;
  std::memcpy(&FromImage, Img.data(), sizeof(FromImage));
  EXPECT_EQ(FromImage.Magic, PoolMagic);
  EXPECT_EQ(FromImage.LogEntriesPerThread, 256u);
}

} // namespace
