//===- tests/LintFixtureTest.cpp - crafty-lint fixture corpus -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden tests for the crafty-lint analyzer (tools/crafty-lint). Each
/// fixture under tests/lint/fixtures/ is one translation unit with either
/// seeded violations of a single rule or the clean counterparts that must
/// stay silent; the expected diagnostics live beside them in
/// tests/lint/expected/ as `line:rule` pairs. A final test runs the tool
/// over the real src/ tree against the committed baseline, pinning the
/// "tree is clean" property CI enforces.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

struct LintRun {
  int ExitCode = -1;
  std::string Output;
};

LintRun runLint(const std::string &Args) {
  LintRun R;
  std::string Cmd = std::string(CRAFTY_LINT_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Rc = pclose(P);
  R.ExitCode = WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
  return R;
}

/// Reduces tool output ("file:line: rule: message [in func]") to the
/// golden form: one "line:rule" entry per finding, in output order.
std::vector<std::string> findings(const std::string &Out) {
  std::vector<std::string> F;
  std::istringstream In(Out);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("crafty-lint:", 0) == 0 || Line.empty())
      continue;
    size_t C1 = Line.find(':');
    if (C1 == std::string::npos)
      continue;
    size_t C2 = Line.find(':', C1 + 1);
    size_t C3 = Line.find(':', C2 + 2);
    if (C2 == std::string::npos || C3 == std::string::npos)
      continue;
    std::string LineNo = Line.substr(C1 + 1, C2 - C1 - 1);
    std::string Rule = Line.substr(C2 + 2, C3 - C2 - 2);
    F.push_back(LineNo + ":" + Rule);
  }
  return F;
}

std::vector<std::string> golden(const std::string &Name) {
  std::ifstream In(std::string(CRAFTY_LINT_EXPECTED_DIR) + "/" + Name +
                   ".txt");
  EXPECT_TRUE(In.good()) << "missing golden file for " << Name;
  std::vector<std::string> G;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      G.push_back(Line);
  return G;
}

class LintFixture : public ::testing::TestWithParam<const char *> {};

TEST_P(LintFixture, MatchesGolden) {
  const std::string Name = GetParam();
  LintRun R = runLint(std::string(CRAFTY_LINT_FIXTURE_DIR) + "/" + Name +
                      ".cpp --root " CRAFTY_LINT_FIXTURE_DIR
                      " --include-dir " CRAFTY_LINT_SRC_DIR);
  std::vector<std::string> Expected = golden(Name);
  EXPECT_EQ(findings(R.Output), Expected) << R.Output;
  // Exit code contract: 1 when findings exist, 0 when clean.
  EXPECT_EQ(R.ExitCode, Expected.empty() ? 0 : 1) << R.Output;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LintFixture,
    ::testing::Values("pm_raw_store_pos", "pm_raw_store_neg",
                      "htm_unsafe_call_pos", "htm_unsafe_call_neg",
                      "flush_without_drain_pos", "flush_without_drain_neg",
                      "unbounded_tx_writes_pos", "unbounded_tx_writes_neg",
                      "suppression"),
    [](const ::testing::TestParamInfo<const char *> &I) {
      return std::string(I.param);
    });

/// The property the CI lint lane enforces: the real tree produces no
/// findings beyond the committed baseline.
TEST(LintTree, SrcIsCleanAgainstBaseline) {
  LintRun R = runLint("--scan " CRAFTY_LINT_SRC_DIR
                      " --restrict src/ --root " CRAFTY_LINT_REPO_ROOT
                      " --baseline " CRAFTY_LINT_REPO_ROOT
                      "/tools/crafty-lint/baseline.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

} // namespace
