//===- tests/LintFixtureTest.cpp - crafty-lint fixture corpus -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden tests for the crafty-lint analyzer (tools/crafty-lint). Each
/// fixture under tests/lint/fixtures/ is one translation unit with either
/// seeded violations of a single rule or the clean counterparts that must
/// stay silent; the expected diagnostics live beside them in
/// tests/lint/expected/ as `line:rule` pairs. A final test runs the tool
/// over the real src/ tree against the committed baseline, pinning the
/// "tree is clean" property CI enforces.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

struct LintRun {
  int ExitCode = -1;
  std::string Output;
};

LintRun runLint(const std::string &Args) {
  LintRun R;
  std::string Cmd = std::string(CRAFTY_LINT_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Rc = pclose(P);
  R.ExitCode = WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
  return R;
}

/// Reduces tool output ("file:line: rule: message [in func]") to the
/// golden form: one "line:rule" entry per finding, in output order.
std::vector<std::string> findings(const std::string &Out) {
  std::vector<std::string> F;
  std::istringstream In(Out);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("crafty-lint:", 0) == 0 || Line.empty())
      continue;
    size_t C1 = Line.find(':');
    if (C1 == std::string::npos)
      continue;
    size_t C2 = Line.find(':', C1 + 1);
    size_t C3 = Line.find(':', C2 + 2);
    if (C2 == std::string::npos || C3 == std::string::npos)
      continue;
    std::string LineNo = Line.substr(C1 + 1, C2 - C1 - 1);
    std::string Rule = Line.substr(C2 + 2, C3 - C2 - 2);
    F.push_back(LineNo + ":" + Rule);
  }
  return F;
}

std::vector<std::string> golden(const std::string &Name) {
  std::ifstream In(std::string(CRAFTY_LINT_EXPECTED_DIR) + "/" + Name +
                   ".txt");
  EXPECT_TRUE(In.good()) << "missing golden file for " << Name;
  std::vector<std::string> G;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      G.push_back(Line);
  return G;
}

class LintFixture : public ::testing::TestWithParam<const char *> {};

TEST_P(LintFixture, MatchesGolden) {
  const std::string Name = GetParam();
  LintRun R = runLint(std::string(CRAFTY_LINT_FIXTURE_DIR) + "/" + Name +
                      ".cpp --root " CRAFTY_LINT_FIXTURE_DIR
                      " --include-dir " CRAFTY_LINT_SRC_DIR);
  std::vector<std::string> Expected = golden(Name);
  EXPECT_EQ(findings(R.Output), Expected) << R.Output;
  // Exit code contract: 1 when findings exist, 0 when clean.
  EXPECT_EQ(R.ExitCode, Expected.empty() ? 0 : 1) << R.Output;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LintFixture,
    ::testing::Values("pm_raw_store_pos", "pm_raw_store_neg",
                      "htm_unsafe_call_pos", "htm_unsafe_call_neg",
                      "flush_without_drain_pos", "flush_without_drain_neg",
                      "unbounded_tx_writes_pos", "unbounded_tx_writes_neg",
                      "persist_ordering_pos", "persist_ordering_neg",
                      "pm_escape_pos", "pm_escape_neg",
                      "tx_capacity_pos", "tx_capacity_neg",
                      "suppression"),
    [](const ::testing::TestParamInfo<const char *> &I) {
      return std::string(I.param);
    });

/// The SARIF artifact the CI code-scanning upload consumes: well-formed,
/// carries all seven rule metadata entries, and locates each finding.
TEST(LintSarif, EmitsFindingsWithRuleMetadata) {
  std::string Path = ::testing::TempDir() + "/crafty_lint_fixture.sarif";
  std::remove(Path.c_str());
  LintRun R = runLint(std::string(CRAFTY_LINT_FIXTURE_DIR) +
                      "/pm_raw_store_pos.cpp --root " CRAFTY_LINT_FIXTURE_DIR
                      " --include-dir " CRAFTY_LINT_SRC_DIR " --sarif " +
                      Path);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << R.Output;
  std::stringstream SS;
  SS << In.rdbuf();
  const std::string S = SS.str();
  EXPECT_NE(S.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(S.find("\"name\": \"crafty-lint\""), std::string::npos);
  for (const char *Rule :
       {"pm-raw-store", "htm-unsafe-call", "flush-without-drain",
        "unbounded-tx-writes", "persist-ordering", "pm-escape",
        "tx-capacity"})
    EXPECT_NE(S.find(std::string("\"id\": \"") + Rule + "\""),
              std::string::npos)
        << "missing rule metadata for " << Rule;
  EXPECT_NE(S.find("pm_raw_store_pos.cpp"), std::string::npos);
  EXPECT_NE(S.find("\"startLine\""), std::string::npos);
}

/// The property the CI lint lane enforces: the real tree produces no
/// findings beyond the committed baseline.
TEST(LintTree, SrcIsCleanAgainstBaseline) {
  LintRun R = runLint("--scan " CRAFTY_LINT_SRC_DIR
                      " --restrict src/ --root " CRAFTY_LINT_REPO_ROOT
                      " --baseline " CRAFTY_LINT_REPO_ROOT
                      "/tools/crafty-lint/baseline.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

/// Baseline hygiene contract: an entry the tree no longer produces is a
/// hard failure, and --prune-baseline is the escape hatch that rewrites
/// the file keeping only entries that still match.
TEST(LintBaseline, StaleEntryFailsAndPruneRemovesIt) {
  std::string Path = ::testing::TempDir() + "/crafty_lint_stale.json";
  {
    std::ofstream Out(Path);
    Out << "{ \"tool\": \"crafty-lint\", \"entries\": [\n"
           "  { \"rule\": \"pm-raw-store\", \"file\": \"no_such_file.cpp\",\n"
           "    \"function\": \"ghost\", \"justification\": \"obsolete\" }\n"
           "] }\n";
  }
  const std::string Args = std::string(CRAFTY_LINT_FIXTURE_DIR) +
                           "/pm_raw_store_neg.cpp --root "
                           CRAFTY_LINT_FIXTURE_DIR
                           " --include-dir " CRAFTY_LINT_SRC_DIR
                           " --baseline " + Path;
  LintRun Stale = runLint(Args);
  EXPECT_EQ(Stale.ExitCode, 1) << Stale.Output;
  EXPECT_NE(Stale.Output.find("stale baseline entry"), std::string::npos)
      << Stale.Output;

  LintRun Pruned = runLint(Args + " --prune-baseline");
  EXPECT_EQ(Pruned.ExitCode, 0) << Pruned.Output;
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str().find("ghost"), std::string::npos)
      << "pruned baseline still holds the stale entry: " << SS.str();
}

/// The static side of the capacity contract that
/// KvStore.TxCapacityStaticBoundCoversDynamicWrites pins dynamically:
/// the analyzer's interprocedural bounds for the shard's annotated
/// transaction bodies equal the CRAFTY_TX_CAPACITY declarations in
/// KvShard.h (33 / 51 words).
TEST(LintTree, CapacityReportMatchesDeclaredShardBudgets) {
  std::string Path = ::testing::TempDir() + "/crafty_lint_capacity.txt";
  std::remove(Path.c_str());
  LintRun R = runLint("--scan " CRAFTY_LINT_SRC_DIR
                      " --restrict src/ --root " CRAFTY_LINT_REPO_ROOT
                      " --baseline " CRAFTY_LINT_REPO_ROOT
                      "/tools/crafty-lint/baseline.json --capacity-report " +
                      Path);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << R.Output;
  std::map<std::string, std::string> Bounds;
  std::string Bound, Name;
  while (In >> Bound >> Name)
    Bounds[Name] = Bound;
  EXPECT_EQ(Bounds["KvShard::writeCellTx"], "33");
  // 33 + map-slot words + displaced-heap-extent free (freeCellExtentTx).
  EXPECT_EQ(Bounds["KvShard::setInTx"], "53");
  // The batched pipeline stays finite only through its CRAFTY_TX_BOUND
  // chunk annotation; a regression there shows up as "unbounded" here.
  EXPECT_EQ(Bounds["KvShard::setBatch"], "1696");
  // The heap's metadata transactions must stay tiny regardless of object
  // size -- that is the whole point of stage-then-publish: 2 bitmap
  // words + epoch counter + 16 page epochs + 3 WAL words.
  EXPECT_EQ(Bounds["DurableHeap::allocInTx"], "22");
  EXPECT_EQ(Bounds["DurableHeap::freeExtentInTx"], "2");
  EXPECT_EQ(Bounds["DurableHeap::closeWalInTx"], "1");
}

} // namespace
