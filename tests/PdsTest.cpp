//===- tests/PdsTest.cpp - Persistent data structure tests ----------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests the persistent data-structures layer (src/pds/): unit behavior,
// backend-generic operation, atomic composition of multiple structures in
// one transaction, concurrency, and crash consistency.
//
//===----------------------------------------------------------------------===//

#include "baselines/Factory.h"
#include "pds/DurableBTree.h"
#include "pds/DurableHashMap.h"
#include "pds/DurableQueue.h"
#include "pds/DurableVector.h"
#include "recovery/Recovery.h"

#include "gtest/gtest.h"

#include <thread>

using namespace crafty;

namespace {

struct PdsFixture {
  PMemPool Pool;
  HtmRuntime Htm;
  std::unique_ptr<PtmBackend> Backend;

  explicit PdsFixture(SystemKind Kind = SystemKind::Crafty,
                      unsigned Threads = 1, bool Tracked = false)
      : Pool(poolConfig(Tracked)), Htm(HtmConfig()) {
    BackendOptions O;
    O.NumThreads = Threads;
    O.ArenaBytesPerThread = 4 << 20;
    O.LogEntriesPerThread = 1 << 12;
    Backend = createBackend(Kind, Pool, Htm, O);
  }

  static PMemConfig poolConfig(bool Tracked) {
    PMemConfig PC;
    PC.PoolBytes = 64 << 20;
    PC.Mode = Tracked ? PMemMode::Tracked : PMemMode::LatencyOnly;
    PC.DrainLatencyNs = 0;
    return PC;
  }
};

//===----------------------------------------------------------------------===//
// DurableHashMap
//===----------------------------------------------------------------------===//

TEST(DurableHashMap, PutGetEraseBasics) {
  PdsFixture F;
  DurableHashMap Map(F.Pool, 256);
  EXPECT_FALSE(Map.get(*F.Backend, 0, 5).has_value());
  EXPECT_TRUE(Map.put(*F.Backend, 0, 5, 55));
  EXPECT_TRUE(Map.put(*F.Backend, 0, 6, 66));
  EXPECT_EQ(Map.get(*F.Backend, 0, 5).value(), 55u);
  EXPECT_EQ(Map.size(*F.Backend, 0), 2u);
  EXPECT_TRUE(Map.put(*F.Backend, 0, 5, 57)); // Overwrite.
  EXPECT_EQ(Map.get(*F.Backend, 0, 5).value(), 57u);
  EXPECT_EQ(Map.size(*F.Backend, 0), 2u);
  EXPECT_TRUE(Map.erase(*F.Backend, 0, 5));
  EXPECT_FALSE(Map.erase(*F.Backend, 0, 5));
  EXPECT_FALSE(Map.get(*F.Backend, 0, 5).has_value());
  EXPECT_EQ(Map.size(*F.Backend, 0), 1u);
  EXPECT_EQ(Map.auditCount(), 1u);
}

TEST(DurableHashMap, TombstoneSlotsAreReused) {
  PdsFixture F;
  DurableHashMap Map(F.Pool, 64);
  // Fill a good chunk, erase everything, refill: must not run out.
  for (int Round = 0; Round != 8; ++Round) {
    for (uint64_t K = 0; K != 40; ++K)
      ASSERT_TRUE(Map.put(*F.Backend, 0, K, K)) << "round " << Round;
    for (uint64_t K = 0; K != 40; ++K)
      ASSERT_TRUE(Map.erase(*F.Backend, 0, K));
  }
  EXPECT_EQ(Map.size(*F.Backend, 0), 0u);
}

TEST(DurableHashMap, FullTableRejectsNewKeys) {
  PdsFixture F;
  DurableHashMap Map(F.Pool, 64);
  for (uint64_t K = 0; K != 64; ++K)
    ASSERT_TRUE(Map.put(*F.Backend, 0, K, K));
  EXPECT_FALSE(Map.put(*F.Backend, 0, 999, 1));
  EXPECT_TRUE(Map.put(*F.Backend, 0, 3, 33)) << "overwrites still work";
}

TEST(DurableHashMap, NonPowerOfTwoSlotCountsRoundUp) {
  static_assert(DurableHashMap::roundUpPow2(1) == 2);
  static_assert(DurableHashMap::roundUpPow2(2) == 2);
  static_assert(DurableHashMap::roundUpPow2(3) == 4);
  static_assert(DurableHashMap::roundUpPow2(64) == 64);
  static_assert(DurableHashMap::roundUpPow2(65) == 128);
  static_assert(DurableHashMap::bytesFor(100) ==
                128 * 16 + CacheLineBytes);
  // A non-power-of-two request is usable, not fatal.
  PdsFixture F;
  DurableHashMap Map(F.Pool, 100);
  EXPECT_EQ(Map.capacity(), 128u);
  for (uint64_t K = 0; K != 100; ++K)
    ASSERT_TRUE(Map.put(*F.Backend, 0, K, K * 3));
  for (uint64_t K = 0; K != 100; ++K)
    EXPECT_EQ(Map.get(*F.Backend, 0, K).value(), K * 3);
}

TEST(DurableHashMap, PeekMatchesTransactionalReads) {
  PdsFixture F;
  DurableHashMap Map(F.Pool, 128);
  for (uint64_t K = 0; K != 80; ++K)
    ASSERT_TRUE(Map.put(*F.Backend, 0, K, K + 7));
  ASSERT_TRUE(Map.erase(*F.Backend, 0, 40));
  F.Backend->quiesce();
  for (uint64_t K = 0; K != 80; ++K) {
    std::optional<uint64_t> V = Map.peek(K);
    if (K == 40) {
      EXPECT_FALSE(V.has_value());
    } else {
      ASSERT_TRUE(V.has_value()) << K;
      EXPECT_EQ(*V, K + 7);
    }
  }
  EXPECT_FALSE(Map.peek(999).has_value());
}

TEST(DurableHashMap, ConcurrentDisjointPuts) {
  PdsFixture F(SystemKind::Crafty, 4);
  DurableHashMap Map(F.Pool, 4096);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&, T] {
      for (uint64_t K = 0; K != 300; ++K)
        Map.put(*F.Backend, T, T * 1000 + K, K);
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Map.auditCount(), 1200u);
}

//===----------------------------------------------------------------------===//
// DurableQueue
//===----------------------------------------------------------------------===//

TEST(DurableQueue, FifoOrderAndBounds) {
  PdsFixture F;
  DurableQueue Q(F.Pool, 8);
  EXPECT_FALSE(Q.dequeue(*F.Backend, 0).has_value());
  for (uint64_t I = 0; I != 8; ++I)
    EXPECT_TRUE(Q.enqueue(*F.Backend, 0, 100 + I));
  EXPECT_FALSE(Q.enqueue(*F.Backend, 0, 999)) << "full";
  for (uint64_t I = 0; I != 8; ++I)
    EXPECT_EQ(Q.dequeue(*F.Backend, 0).value(), 100 + I);
  EXPECT_FALSE(Q.dequeue(*F.Backend, 0).has_value());
  EXPECT_TRUE(Q.auditShape());
}

TEST(DurableQueue, WrapsAroundManyTimes) {
  PdsFixture F;
  DurableQueue Q(F.Pool, 4);
  for (uint64_t I = 0; I != 100; ++I) {
    ASSERT_TRUE(Q.enqueue(*F.Backend, 0, I));
    ASSERT_EQ(Q.dequeue(*F.Backend, 0).value(), I);
  }
  EXPECT_EQ(Q.size(*F.Backend, 0), 0u);
}

TEST(DurableQueue, ConcurrentProducersConsumers) {
  PdsFixture F(SystemKind::Crafty, 4);
  DurableQueue Q(F.Pool, 1024);
  std::atomic<uint64_t> Consumed{0}, Sum{0};
  constexpr uint64_t PerProducer = 400;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 2; ++T)
    Threads.emplace_back([&, T] {
      for (uint64_t I = 0; I != PerProducer; ++I)
        while (!Q.enqueue(*F.Backend, T, I + 1))
          std::this_thread::yield();
    });
  for (unsigned T = 2; T != 4; ++T)
    Threads.emplace_back([&, T] {
      while (Consumed.load() < 2 * PerProducer) {
        if (auto V = Q.dequeue(*F.Backend, T)) {
          Sum.fetch_add(*V);
          Consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Consumed.load(), 2 * PerProducer);
  EXPECT_EQ(Sum.load(), 2 * (PerProducer * (PerProducer + 1) / 2));
}

//===----------------------------------------------------------------------===//
// DurableVector
//===----------------------------------------------------------------------===//

TEST(DurableVector, PushBackAndRecords) {
  PdsFixture F;
  DurableVector V(F.Pool, 64);
  EXPECT_TRUE(V.pushBack(*F.Backend, 0, 10));
  uint64_t Rec[3] = {20, 21, 22};
  bool Ok = false;
  F.Backend->run(0, [&](TxnContext &Tx) {
    Ok = V.appendRecordTx(Tx, Rec, 3);
  });
  EXPECT_TRUE(Ok);
  EXPECT_EQ(V.size(*F.Backend, 0), 4u);
  EXPECT_EQ(V.at(*F.Backend, 0, 0).value(), 10u);
  EXPECT_EQ(V.at(*F.Backend, 0, 3).value(), 22u);
  EXPECT_FALSE(V.at(*F.Backend, 0, 4).has_value());
}

TEST(DurableVector, CapacityIsEnforced) {
  PdsFixture F;
  DurableVector V(F.Pool, 4);
  for (int I = 0; I != 4; ++I)
    EXPECT_TRUE(V.pushBack(*F.Backend, 0, I));
  EXPECT_FALSE(V.pushBack(*F.Backend, 0, 99));
  uint64_t Rec[2] = {1, 2};
  bool Ok = true;
  F.Backend->run(0, [&](TxnContext &Tx) {
    Ok = V.appendRecordTx(Tx, Rec, 2);
  });
  EXPECT_FALSE(Ok);
}

//===----------------------------------------------------------------------===//
// Composition and backend genericity
//===----------------------------------------------------------------------===//

class PdsAllBackends : public ::testing::TestWithParam<SystemKind> {};

TEST_P(PdsAllBackends, StructuresWorkOnEveryBackend) {
  PdsFixture F(GetParam(), 2);
  DurableHashMap Map(F.Pool, 512);
  DurableQueue Q(F.Pool, 64);
  DurableBTree Tree(F.Pool);
  for (uint64_t K = 0; K != 50; ++K) {
    EXPECT_TRUE(Map.put(*F.Backend, 0, K, K * 2));
    EXPECT_TRUE(Q.enqueue(*F.Backend, 1, K));
    EXPECT_TRUE(Tree.insert(*F.Backend, 0, K * 7, K));
  }
  F.Backend->quiesce();
  EXPECT_EQ(Map.auditCount(), 50u);
  EXPECT_EQ(Q.size(*F.Backend, 0), 50u);
  std::string Err;
  EXPECT_EQ(Tree.auditCount(Err), 50u);
  EXPECT_EQ(Err, "");
}

INSTANTIATE_TEST_SUITE_P(Systems, PdsAllBackends,
                         ::testing::ValuesIn(AllSystems),
                         [](const auto &Info) {
                           std::string N = systemKindName(Info.param);
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(PdsComposition, MoveBetweenStructuresIsAtomic) {
  // Dequeue a job, record it in the map and journal it in the vector --
  // all in ONE transaction; under concurrency and crash, a job is never
  // duplicated or lost between structures.
  PdsFixture F(SystemKind::Crafty, 3, /*Tracked=*/true);
  DurableQueue Q(F.Pool, 2048);
  DurableHashMap Done(F.Pool, 4096);
  DurableVector Journal(F.Pool, 4096);
  constexpr uint64_t Jobs = 600;
  for (uint64_t J = 1; J <= Jobs; ++J)
    ASSERT_TRUE(Q.enqueue(*F.Backend, 0, J));

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 3; ++T)
    Threads.emplace_back([&, T] {
      for (;;) {
        bool Empty = false;
        F.Backend->run(T, [&](TxnContext &Tx) {
          auto Job = Q.dequeueTx(Tx);
          Empty = !Job.has_value();
          if (Empty)
            return;
          Done.putTx(Tx, *Job, T + 1);
          Journal.pushBackTx(Tx, *Job);
        });
        if (Empty)
          break;
      }
    });
  for (auto &Th : Threads)
    Th.join();

  F.Pool.crash();
  RecoveryObserver::recoverPool(F.Pool);
  // Post-crash invariant: processed jobs (map) == journaled jobs, and
  // together with the queue remainder they cover each job exactly once.
  uint64_t InMap = Done.auditCount();
  ASSERT_NE(InMap, ~0ull) << "map metadata corrupt";
  EXPECT_EQ(InMap, Journal.rawSize());
  EXPECT_TRUE(Q.auditShape());
  std::vector<bool> Seen(Jobs + 1, false);
  for (uint64_t I = 0; I != Journal.rawSize(); ++I) {
    uint64_t J = Journal.rawAt(I);
    ASSERT_GE(J, 1u);
    ASSERT_LE(J, Jobs);
    EXPECT_FALSE(Seen[J]) << "job duplicated";
    Seen[J] = true;
  }
}

TEST(PdsCrash, MapSurvivesCrashConsistently) {
  PdsFixture F(SystemKind::Crafty, 2, /*Tracked=*/true);
  DurableHashMap Map(F.Pool, 2048);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 2; ++T)
    Threads.emplace_back([&, T] {
      Rng R(T + 5);
      for (int I = 0; I != 400; ++I) {
        uint64_t K = R.nextBounded(500);
        if (R.chance(1, 4))
          Map.erase(*F.Backend, T, K);
        else
          Map.put(*F.Backend, T, K, K + 1);
      }
    });
  for (auto &Th : Threads)
    Th.join();
  F.Pool.crash();
  RecoveryObserver::recoverPool(F.Pool);
  // The count word and the slots must agree after recovery.
  EXPECT_NE(Map.auditCount(), ~0ull);
}

} // namespace
