//===- tests/RecoveryTest.cpp - Recovery observer unit tests --------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests the Section 5 recovery algorithm against hand-crafted log images:
// sequence discovery, the rollback threshold, the closure rule, reverse
// timestamp ordering, torn entries, wraparound, SGL equal-timestamp
// groups, and relocated-image address translation.
//
//===----------------------------------------------------------------------===//

#include "recovery/Recovery.h"

#include "gtest/gtest.h"

#include <cstring>

using namespace crafty;

namespace {

/// A test harness that formats a small tracked pool and lets tests write
/// log entries and heap words directly into the persistent image.
class RecoveryFixture : public ::testing::Test {
protected:
  static constexpr size_t LogEntries = 64;
  static constexpr unsigned NumThreads = 2;

  void SetUp() override {
    PMemConfig PC;
    PC.PoolBytes = 1 << 20;
    PC.Mode = PMemMode::Tracked;
    PC.DrainLatencyNs = 0;
    Pool = std::make_unique<PMemPool>(PC);
    Header = formatPool(*Pool, NumThreads, LogEntries, /*HeapBytes=*/4096);
    Heap = reinterpret_cast<uint64_t *>(Pool->base() + Header->HeapOffset);
  }

  /// Persists heap word \p Idx with \p Val (pre-crash durable state).
  void setHeap(size_t Idx, uint64_t Val) {
    Pool->persistDirect(&Heap[Idx], &Val, sizeof(Val));
  }

  uint64_t *heapAddr(size_t Idx) { return &Heap[Idx]; }

  /// Writes a data entry directly into thread \p Tid's log at absolute
  /// position \p Abs, persisted.
  void putData(unsigned Tid, uint64_t Abs, uint64_t *Addr, uint64_t Old) {
    UndoLogRegion R = logRegionFor(Pool->base(), *Header, Tid);
    EncodedEntry E = encodeDataEntry(reinterpret_cast<uint64_t>(Addr), Old,
                                     R.passFor(Abs));
    size_t S = R.slotFor(Abs);
    Pool->persistDirect(R.addrWordAt(S), &E.AddrWord, 8);
    Pool->persistDirect(R.valWordAt(S), &E.ValWord, 8);
  }

  void putTag(unsigned Tid, uint64_t Abs, uint64_t Tag, uint64_t Ts) {
    UndoLogRegion R = logRegionFor(Pool->base(), *Header, Tid);
    EncodedEntry E = encodeTagEntry(Tag, Ts, R.passFor(Abs));
    size_t S = R.slotFor(Abs);
    Pool->persistDirect(R.addrWordAt(S), &E.AddrWord, 8);
    Pool->persistDirect(R.valWordAt(S), &E.ValWord, 8);
  }

  /// Corrupts an entry so only its addr word carries the current pass
  /// (simulating a torn, partially persisted entry).
  void tearEntry(unsigned Tid, uint64_t Abs) {
    UndoLogRegion R = logRegionFor(Pool->base(), *Header, Tid);
    size_t S = R.slotFor(Abs);
    uint64_t Flipped = *R.valWordAt(S) ^ 1;
    Pool->persistDirect(R.valWordAt(S), &Flipped, 8);
  }

  RecoveryReport recover() {
    Pool->crash();
    return RecoveryObserver::recoverPool(*Pool);
  }

  std::unique_ptr<PMemPool> Pool;
  PoolHeader *Header = nullptr;
  uint64_t *Heap = nullptr;
};

TEST_F(RecoveryFixture, EmptyLogsRecoverNothing) {
  setHeap(0, 42);
  RecoveryReport Rep = recover();
  ASSERT_TRUE(Rep.HeaderValid);
  EXPECT_EQ(Rep.SequencesFound, 0u);
  EXPECT_EQ(Rep.SequencesRolledBack, 0u);
  EXPECT_EQ(Heap[0], 42u);
}

TEST_F(RecoveryFixture, SingleSequenceIsRolledBack) {
  setHeap(0, 10);
  setHeap(1, 20);
  // Transaction (ts=100) wrote heap[0]=11, heap[1]=21; both persisted.
  putData(0, 0, heapAddr(0), 10);
  putData(0, 1, heapAddr(1), 20);
  putTag(0, 2, TagLogged, 100);
  setHeap(0, 11);
  setHeap(1, 21);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Rep.SequencesFound, 1u);
  EXPECT_EQ(Rep.SequencesRolledBack, 1u);
  EXPECT_EQ(Rep.ThresholdTs, 100u);
  EXPECT_EQ(Heap[0], 10u) << "last transaction must be rolled back";
  EXPECT_EQ(Heap[1], 20u);
}

TEST_F(RecoveryFixture, ThresholdIsMinOfPerThreadNewest) {
  // Thread 0: ts 100 then 200. Thread 1: ts 150.
  // Threshold = min(200, 150) = 150: roll back 200 and 150, keep 100.
  setHeap(0, 0);
  setHeap(1, 0);
  setHeap(2, 0);
  putData(0, 0, heapAddr(0), 0); // ts 100 wrote heap[0] = 1.
  putTag(0, 1, TagLogged, 100);
  putData(0, 2, heapAddr(1), 0); // ts 200 wrote heap[1] = 2.
  putTag(0, 3, TagLogged, 200);
  putData(1, 0, heapAddr(2), 0); // ts 150 wrote heap[2] = 3.
  putTag(1, 1, TagLogged, 150);
  setHeap(0, 1);
  setHeap(1, 2);
  setHeap(2, 3);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Rep.SequencesFound, 3u);
  EXPECT_EQ(Rep.ThresholdTs, 150u);
  EXPECT_EQ(Rep.SequencesRolledBack, 2u);
  EXPECT_EQ(Heap[0], 1u) << "ts 100 predates the threshold: kept";
  EXPECT_EQ(Heap[1], 0u) << "ts 200 rolled back";
  EXPECT_EQ(Heap[2], 0u) << "ts 150 rolled back";
}

TEST_F(RecoveryFixture, ReverseTimestampOrderRestoresOldestValues) {
  // Both transactions wrote heap[0]; rollback must end at the value the
  // *older* one logged.
  setHeap(0, 5);
  putData(0, 0, heapAddr(0), 5); // ts 100: 5 -> 6.
  putTag(0, 1, TagLogged, 100);
  putData(1, 0, heapAddr(0), 6); // ts 150: 6 -> 7.
  putTag(1, 1, TagLogged, 150);
  setHeap(0, 7);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Rep.SequencesRolledBack, 2u);
  EXPECT_EQ(Heap[0], 5u);
}

TEST_F(RecoveryFixture, EntriesWithinSequenceUnwindInReverse) {
  // One transaction wrote heap[0] twice: 1 -> 2 -> 3.
  setHeap(0, 3);
  putData(0, 0, heapAddr(0), 1);
  putData(0, 1, heapAddr(0), 2);
  putTag(0, 2, TagLogged, 100);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Rep.SequencesRolledBack, 1u);
  EXPECT_EQ(Heap[0], 1u) << "reverse order: final value is the oldest";
}

TEST_F(RecoveryFixture, TornEntryExcludesSequence) {
  // The transaction's second entry only half-persisted: its sequence is
  // not fully persisted, so nothing from it is applied.
  setHeap(0, 10);
  setHeap(1, 20);
  putData(0, 0, heapAddr(0), 10);
  putData(0, 1, heapAddr(1), 20);
  putTag(0, 2, TagLogged, 100);
  tearEntry(0, 1);
  // Its writes never persisted either (the drain-before-writes ordering).
  recover();
  EXPECT_EQ(Heap[0], 10u);
  EXPECT_EQ(Heap[1], 20u);
}

TEST_F(RecoveryFixture, TornEntryBoundsOlderSequenceWalk) {
  // A torn entry between two sequences must not let the newer sequence
  // absorb the older one's entries.
  setHeap(0, 1);
  setHeap(1, 2);
  putData(0, 0, heapAddr(0), 1);
  putTag(0, 1, TagLogged, 100);
  tearEntry(0, 0); // The ts-100 data entry is torn.
  putData(0, 2, heapAddr(1), 2);
  putTag(0, 3, TagLogged, 200);
  setHeap(1, 22);
  RecoveryReport Rep = recover();
  // ts-200's sequence has exactly one entry; heap[1] reverts, heap[0]
  // keeps its value.
  EXPECT_EQ(Heap[1], 2u);
  EXPECT_EQ(Heap[0], 1u);
  EXPECT_EQ(Rep.WordsRestored, 1u);
}

TEST_F(RecoveryFixture, EqualTimestampChunksUnwindToSectionStart) {
  // An SGL section: three chunks, same ts, each advancing heap[0].
  // 0 -> 10 (chunk A), 10 -> 20 (chunk B), 20 -> 30 (chunk C).
  setHeap(0, 30);
  putData(0, 0, heapAddr(0), 0);
  putTag(0, 1, TagLogged, 500);
  putData(0, 2, heapAddr(0), 10);
  putTag(0, 3, TagLogged, 500);
  putData(0, 4, heapAddr(0), 20);
  putTag(0, 5, TagLogged, 500);
  putTag(0, 6, TagCommitted, 500);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Rep.SequencesRolledBack, 4u);
  EXPECT_EQ(Heap[0], 0u) << "the whole section unwinds";
}

TEST_F(RecoveryFixture, EqualTimestampChunksAcrossWraparound) {
  // Same as above, but the section wraps the circular log: chunks at
  // absolute positions LogEntries-2 .. LogEntries+3.
  setHeap(0, 30);
  uint64_t Base = LogEntries - 2;
  putData(0, Base + 0, heapAddr(0), 0);
  putTag(0, Base + 1, TagLogged, 500);
  putData(0, Base + 2, heapAddr(0), 10); // Slot 0, pass flipped.
  putTag(0, Base + 3, TagLogged, 500);
  putData(0, Base + 4, heapAddr(0), 20);
  putTag(0, Base + 5, TagCommitted, 500);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Heap[0], 0u);
  (void)Rep;
}

TEST_F(RecoveryFixture, AbandonedSequenceRollsBackAsNoOp) {
  // Thread 0's Log phase committed (ts 100) but its Redo never ran (the
  // writes never happened); thread 1 then committed ts 150 writing the
  // same word. Rolling back both must restore the ts-150 old value.
  setHeap(0, 5);
  putData(0, 0, heapAddr(0), 5); // Abandoned: writes never performed.
  putTag(0, 1, TagLogged, 100);
  putData(1, 0, heapAddr(0), 5); // ts 150: 5 -> 9, committed.
  putTag(1, 1, TagLogged, 150);
  setHeap(0, 9);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Rep.SequencesRolledBack, 2u);
  EXPECT_EQ(Heap[0], 5u);
}

TEST_F(RecoveryFixture, PreviousPassSequencesRemainDecodable) {
  // Fill most of the log in pass 1, wrap into pass 0; sequences from the
  // previous pass must still be discovered.
  setHeap(0, 0);
  uint64_t Abs = 0;
  uint64_t Ts = 100;
  // 40 one-write transactions: positions 0..79 (log holds 64).
  for (int I = 0; I != 40; ++I) {
    putData(0, Abs++, heapAddr(0), I);
    putTag(0, Abs++, TagLogged, Ts++);
  }
  setHeap(0, 40);
  RecoveryReport Rep = recover();
  // Only the newest sequence (threshold) rolls back: value 40 -> 39.
  EXPECT_EQ(Rep.ThresholdTs, 139u);
  EXPECT_EQ(Heap[0], 39u);
  EXPECT_GT(Rep.SequencesFound, 20u) << "older-pass sequences observable";
}

TEST_F(RecoveryFixture, RelocatedImageTranslatesAddresses) {
  setHeap(0, 10);
  putData(0, 0, heapAddr(0), 10);
  putTag(0, 1, TagLogged, 100);
  setHeap(0, 11);
  Pool->crash();
  std::vector<uint8_t> Image = Pool->imageSnapshot();
  // Recover on the detached buffer: logged addresses point at the
  // original mapping and must be translated via PoolHeader::MappedBase.
  RecoveryReport Rep = RecoveryObserver::recoverImage(Image);
  ASSERT_TRUE(Rep.HeaderValid);
  EXPECT_EQ(Rep.WordsRestored, 1u);
  uint64_t Recovered;
  std::memcpy(&Recovered, Image.data() + Header->HeapOffset, 8);
  EXPECT_EQ(Recovered, 10u);
  // The live pool is untouched.
  EXPECT_EQ(Heap[0], 11u);
}

TEST_F(RecoveryFixture, RecoveryZeroesLogsForRestart) {
  putData(0, 0, heapAddr(0), 0);
  putTag(0, 1, TagLogged, 100);
  recover();
  UndoLogRegion R = logRegionFor(Pool->base(), *Header, 0);
  for (size_t S = 0; S != LogEntries; ++S) {
    EXPECT_EQ(*R.addrWordAt(S), 0u);
    EXPECT_EQ(*R.valWordAt(S), 0u);
  }
  // A second recovery over the cleaned pool is a no-op.
  RecoveryReport Rep2 = RecoveryObserver::recoverPool(*Pool);
  EXPECT_EQ(Rep2.SequencesFound, 0u);
}

TEST_F(RecoveryFixture, GarbageImageIsRejected) {
  std::vector<uint8_t> Junk(4096, 0xAB);
  RecoveryReport Rep = RecoveryObserver::recoverImage(Junk);
  EXPECT_FALSE(Rep.HeaderValid);
}

TEST_F(RecoveryFixture, CorruptAddressIsSkippedNotFatal) {
  // An entry whose address lies outside the pool is skipped.
  setHeap(0, 1);
  alignas(8) static uint64_t Outside;
  putData(0, 0, &Outside, 99);
  putData(0, 1, heapAddr(0), 1);
  putTag(0, 2, TagLogged, 100);
  setHeap(0, 2);
  RecoveryReport Rep = recover();
  EXPECT_EQ(Rep.WordsRestored, 1u);
  EXPECT_EQ(Heap[0], 1u);
}

} // namespace

namespace {

// Robustness: recovery over arbitrarily corrupted log content must not
// crash, must stay inside the pool, and must be idempotent.
TEST(RecoveryFuzz, RandomLogBytesNeverCrashRecovery) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    PMemConfig PC;
    PC.PoolBytes = 1 << 20;
    PC.Mode = PMemMode::Tracked;
    PC.DrainLatencyNs = 0;
    PMemPool Pool(PC);
    PoolHeader *H = formatPool(Pool, 2, 128, 4096);
    Rng R(Seed * 77);
    // Fill both logs (and a bit of heap) with random bytes, including
    // words that look like tags, torn entries and wild addresses.
    for (unsigned T = 0; T != 2; ++T) {
      UndoLogRegion Region = logRegionFor(Pool.base(), *H, T);
      for (size_t S = 0; S != Region.NumEntries; ++S) {
        uint64_t W0 = R.next(), W1 = R.next();
        if (R.chance(1, 4))
          W0 = (W0 & 1) | (R.chance(1, 2) ? TagLogged : TagCommitted);
        Pool.persistDirect(Region.addrWordAt(S), &W0, 8);
        Pool.persistDirect(Region.valWordAt(S), &W1, 8);
      }
    }
    Pool.crash();
    RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
    EXPECT_TRUE(Rep.HeaderValid);
    // Second recovery is a no-op (logs were zeroed).
    RecoveryReport Rep2 = RecoveryObserver::recoverPool(Pool);
    EXPECT_EQ(Rep2.SequencesFound, 0u);
  }
}

TEST(RecoveryFuzz, TruncatedImageIsRejectedGracefully) {
  for (size_t Bytes : {0ul, 8ul, 63ul, sizeof(PoolHeader) - 1}) {
    std::vector<uint8_t> Image(Bytes, 0x5A);
    RecoveryReport Rep = RecoveryObserver::recoverImage(Image);
    EXPECT_FALSE(Rep.HeaderValid);
  }
}

TEST(RecoveryFuzz, HeaderWithHugeGeometryIsRejected) {
  std::vector<uint8_t> Image(4096, 0);
  PoolHeader H;
  H.Magic = PoolMagic;
  H.NumThreads = 1000;
  H.LogEntriesPerThread = 1 << 20; // Logs would not fit in the image.
  H.LogsOffset = 64;
  std::memcpy(Image.data(), &H, sizeof(H));
  RecoveryReport Rep = RecoveryObserver::recoverImage(Image);
  EXPECT_FALSE(Rep.HeaderValid);
}

} // namespace
