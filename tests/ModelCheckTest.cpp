//===- tests/ModelCheckTest.cpp - Reference-model equivalence -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Randomized reference-model testing: the persistent data structures are
// driven with long random operation sequences mirrored into in-memory STL
// models; results and final contents must match exactly. Runs over
// several seeds and over the Crafty variants (whose Validate phase
// re-executes bodies, exercising determinism requirements).
//
//===----------------------------------------------------------------------===//

#include "baselines/Factory.h"
#include "pds/DurableBTree.h"
#include "pds/DurableHashMap.h"
#include "pds/DurableQueue.h"

#include "gtest/gtest.h"

#include <deque>
#include <map>

using namespace crafty;

namespace {

struct ModelFixture {
  PMemPool Pool;
  HtmRuntime Htm;
  std::unique_ptr<PtmBackend> Backend;

  explicit ModelFixture(SystemKind Kind)
      : Pool(poolConfig()), Htm(HtmConfig()) {
    BackendOptions O;
    O.NumThreads = 1;
    O.ArenaBytesPerThread = 16 << 20;
    Backend = createBackend(Kind, Pool, Htm, O);
  }

  static PMemConfig poolConfig() {
    PMemConfig PC;
    PC.PoolBytes = 64 << 20;
    PC.Mode = PMemMode::LatencyOnly;
    PC.DrainLatencyNs = 0;
    return PC;
  }
};

class ModelCheck
    : public ::testing::TestWithParam<std::tuple<SystemKind, uint64_t>> {};

TEST_P(ModelCheck, BTreeMatchesStdMap) {
  auto [Kind, Seed] = GetParam();
  ModelFixture F(Kind);
  DurableBTree Tree(F.Pool);
  std::map<uint64_t, uint64_t> Model;
  Rng R(Seed);
  for (int Op = 0; Op != 3000; ++Op) {
    uint64_t Key = R.nextBounded(400); // Dense keys: plenty of collisions.
    switch (R.nextBounded(3)) {
    case 0: {
      bool Inserted = Tree.insert(*F.Backend, 0, Key, Key ^ Seed);
      EXPECT_EQ(Inserted, Model.emplace(Key, Key ^ Seed).second);
      break;
    }
    case 1: {
      uint64_t Val = 0;
      bool Found = Tree.lookup(*F.Backend, 0, Key, &Val);
      auto It = Model.find(Key);
      ASSERT_EQ(Found, It != Model.end());
      if (Found) {
        EXPECT_EQ(Val, It->second);
      }
      break;
    }
    case 2: {
      bool Removed = Tree.remove(*F.Backend, 0, Key);
      EXPECT_EQ(Removed, Model.erase(Key) == 1);
      break;
    }
    }
  }
  F.Backend->quiesce();
  // Final structural audit + exact content equality.
  std::string Err;
  uint64_t Count = Tree.auditCount(Err);
  EXPECT_EQ(Err, "");
  EXPECT_EQ(Count, Model.size());
  for (const auto &[K, V] : Model) {
    uint64_t Val = 0;
    ASSERT_TRUE(Tree.lookup(*F.Backend, 0, K, &Val)) << "key " << K;
    EXPECT_EQ(Val, V);
  }
}

TEST_P(ModelCheck, HashMapMatchesStdMap) {
  auto [Kind, Seed] = GetParam();
  ModelFixture F(Kind);
  DurableHashMap Map(F.Pool, 1024);
  std::map<uint64_t, uint64_t> Model;
  Rng R(Seed * 7 + 3);
  for (int Op = 0; Op != 3000; ++Op) {
    uint64_t Key = R.nextBounded(300);
    switch (R.nextBounded(3)) {
    case 0:
      ASSERT_TRUE(Map.put(*F.Backend, 0, Key, Op));
      Model[Key] = (uint64_t)Op;
      break;
    case 1: {
      auto Got = Map.get(*F.Backend, 0, Key);
      auto It = Model.find(Key);
      ASSERT_EQ(Got.has_value(), It != Model.end());
      if (Got) {
        EXPECT_EQ(*Got, It->second);
      }
      break;
    }
    case 2:
      EXPECT_EQ(Map.erase(*F.Backend, 0, Key), Model.erase(Key) == 1);
      break;
    }
  }
  EXPECT_EQ(Map.size(*F.Backend, 0), Model.size());
  EXPECT_EQ(Map.auditCount(), Model.size());
}

TEST_P(ModelCheck, QueueMatchesStdDeque) {
  auto [Kind, Seed] = GetParam();
  ModelFixture F(Kind);
  DurableQueue Q(F.Pool, 64);
  std::deque<uint64_t> Model;
  Rng R(Seed * 13 + 1);
  for (int Op = 0; Op != 4000; ++Op) {
    if (R.chance(1, 2)) {
      bool Ok = Q.enqueue(*F.Backend, 0, Op);
      EXPECT_EQ(Ok, Model.size() < 64);
      if (Ok)
        Model.push_back((uint64_t)Op);
    } else {
      auto Got = Q.dequeue(*F.Backend, 0);
      ASSERT_EQ(Got.has_value(), !Model.empty());
      if (Got) {
        EXPECT_EQ(*Got, Model.front());
        Model.pop_front();
      }
    }
  }
  EXPECT_EQ(Q.size(*F.Backend, 0), Model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelCheck,
    ::testing::Combine(::testing::Values(SystemKind::Crafty,
                                         SystemKind::CraftyNoRedo,
                                         SystemKind::NonDurable),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const auto &Info) {
      std::string N = systemKindName(std::get<0>(Info.param));
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N + "_seed" + std::to_string(std::get<1>(Info.param));
    });

} // namespace
