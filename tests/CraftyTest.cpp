//===- tests/CraftyTest.cpp - Crafty runtime tests ------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of Crafty's Log/Redo/Validate phases, the SGL fallback
// with chunked execution, variants (NoRedo/NoValidate), thread-unsafe
// mode, allocation replay, and crash consistency with recovery.
//
//===----------------------------------------------------------------------===//

#include "check/PersistCheck.h"
#include "check/TxRaceCheck.h"
#include "core/Crafty.h"
#include "recovery/Recovery.h"

#include "gtest/gtest.h"

#include <mutex>
#include <thread>
#include <vector>

using namespace crafty;

namespace {

struct TestSystem {
  PMemPool Pool;
  HtmRuntime Htm;
  CraftyRuntime Rt;

  TestSystem(CraftyConfig CC, HtmConfig HC = HtmConfig(),
             PMemConfig PC = defaultPoolConfig())
      : Pool(PC), Htm(HC), Rt(Pool, Htm, CC) {}

  ~TestSystem() {
    // Every test in this file runs under PersistCheck (see config()); a
    // correct runtime must produce no persist-ordering violations.
    if (PersistCheck *PC = Rt.persistCheck()) {
      EXPECT_EQ(PC->violationCount(), 0u) << PC->formatViolations();
    }
  }

  static PMemConfig defaultPoolConfig() {
    PMemConfig PC;
    PC.PoolBytes = 8 << 20;
    PC.Mode = PMemMode::Tracked;
    PC.DrainLatencyNs = 0;
    return PC;
  }
};

CraftyConfig config(unsigned Threads = 1) {
  CraftyConfig C;
  C.NumThreads = Threads;
  C.LogEntriesPerThread = 1 << 12;
  C.EnablePersistCheck = true;
  return C;
}

TEST(Crafty, BasicTransactionCommitsViaRedo) {
  TestSystem S(config());
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(&Data[0], 11);
    Tx.store(&Data[1], 22);
    Tx.store(&Data[2], Tx.load(&Data[0]) + Tx.load(&Data[1]));
  });
  EXPECT_EQ(Data[0], 11u);
  EXPECT_EQ(Data[1], 22u);
  EXPECT_EQ(Data[2], 33u);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.Redo, 1u);
  EXPECT_EQ(St.Validate, 0u);
  EXPECT_EQ(St.Writes, 3u);
}

TEST(Crafty, ReadOnlyFastPath) {
  TestSystem S(config());
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  Data[0] = 5;
  S.Pool.persistDirect(&Data[0], &Data[0], 8);
  uint64_t Seen = 0;
  S.Rt.run(0, [&](TxnContext &Tx) { Seen = Tx.load(&Data[0]); });
  EXPECT_EQ(Seen, 5u);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.ReadOnly, 1u);
  EXPECT_EQ(St.Redo, 0u);
}

TEST(Crafty, ReadOnlyCommitDoesNotAdvanceClock) {
  // Pins the read-only clock elision: a read-only commit validates
  // against a clock sample and must not fetch_add the global clock --
  // the bump would invalidate every other core's clock line for a
  // transaction that published nothing.
  TestSystem S(config());
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  S.Rt.run(0, [&](TxnContext &Tx) { Tx.store(&Data[0], 5); });
  uint64_t ClockBefore = S.Htm.globalClock();
  for (int I = 0; I != 50; ++I) {
    uint64_t Seen = 0;
    S.Rt.run(0, [&](TxnContext &Tx) { Seen = Tx.load(&Data[0]); });
    EXPECT_EQ(Seen, 5u);
  }
  EXPECT_EQ(S.Htm.globalClock(), ClockBefore);
  EXPECT_EQ(S.Rt.txnStats().ReadOnly, 50u);
}

TEST(Crafty, ReadOnlyClockElisionOffBumpsPerCommit) {
  // The ablation position: with elision off every read-only commit
  // advances the clock once (the naive timestamp-every-commit design).
  CraftyConfig C = config();
  C.ReadOnlyClockElision = false;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  Data[0] = 7;
  S.Pool.persistDirect(&Data[0], &Data[0], 8);
  uint64_t ClockBefore = S.Htm.globalClock();
  for (int I = 0; I != 10; ++I)
    S.Rt.run(0, [&](TxnContext &Tx) { (void)Tx.load(&Data[0]); });
  EXPECT_EQ(S.Htm.globalClock(), ClockBefore + 10);
}

TEST(Crafty, RepeatedWritesToSameWord) {
  TestSystem S(config());
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(&Data[0], 1);
    Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
    Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
  });
  EXPECT_EQ(Data[0], 3u);
}

TEST(Crafty, NoRedoVariantCommitsViaValidate) {
  CraftyConfig C = config();
  C.DisableRedo = true;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  for (int I = 0; I != 10; ++I)
    S.Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
    });
  EXPECT_EQ(Data[0], 10u);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.Validate, 10u);
  EXPECT_EQ(St.Redo, 0u);
}

TEST(Crafty, SequentialTransactionsAccumulate) {
  TestSystem S(config());
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  for (int I = 0; I != 100; ++I)
    S.Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  EXPECT_EQ(*Counter, 100u);
}

TEST(Crafty, MultithreadedBankConservesTotal) {
  constexpr unsigned NumThreads = 4;
  constexpr unsigned NumAccounts = 64;
  constexpr int OpsPerThread = 800;
  TestSystem S(config(NumThreads));
  auto *Accounts =
      static_cast<uint64_t *>(S.Rt.carve(NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I)
    Accounts[I * 8] = 1000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Rng R(T + 3);
      for (int I = 0; I != OpsPerThread; ++I) {
        unsigned From = R.nextBounded(NumAccounts);
        unsigned To =
            (From + 1 + R.nextBounded(NumAccounts - 1)) % NumAccounts;
        S.Rt.run(T, [&](TxnContext &Tx) {
          uint64_t F = Tx.load(&Accounts[From * 8]);
          uint64_t G = Tx.load(&Accounts[To * 8]);
          Tx.store(&Accounts[From * 8], F - 5);
          Tx.store(&Accounts[To * 8], G + 5);
        });
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  EXPECT_EQ(Total, 1000u * NumAccounts);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.transactions(), (uint64_t)NumThreads * OpsPerThread);
  EXPECT_EQ(St.Writes, (uint64_t)NumThreads * OpsPerThread * 2);
}

TEST(Crafty, EightThreadMixedStressUnderBothCheckers) {
  // The contention machinery (backoff, snapshot extension, dense write
  // set, clock elision) under full dynamic checking: 8 threads, 3:1
  // write:read mix over shared accounts, both PersistCheck and
  // TxRaceCheck attached, zero violations required.
  constexpr unsigned NumThreads = 8;
  constexpr unsigned NumAccounts = 32;
  constexpr int OpsPerThread = 250;
  CraftyConfig C = config(NumThreads);
  C.EnableTxRaceCheck = true;
  TestSystem S(C);
  auto *Accounts =
      static_cast<uint64_t *>(S.Rt.carve(NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I)
    Accounts[I * 8] = 1000;
  S.Pool.persistDirect(Accounts, Accounts, NumAccounts * CacheLineBytes);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Rng R(T + 11);
      for (int I = 0; I != OpsPerThread; ++I) {
        unsigned From = R.nextBounded(NumAccounts);
        unsigned To =
            (From + 1 + R.nextBounded(NumAccounts - 1)) % NumAccounts;
        if (I % 4 == 3) { // Read-only balance sum over a window.
          S.Rt.run(T, [&](TxnContext &Tx) {
            uint64_t Sum = 0;
            for (unsigned K = 0; K != 8; ++K)
              Sum += Tx.load(&Accounts[((From + K) % NumAccounts) * 8]);
            (void)Sum;
          });
        } else {
          S.Rt.run(T, [&](TxnContext &Tx) {
            uint64_t F = Tx.load(&Accounts[From * 8]);
            uint64_t G = Tx.load(&Accounts[To * 8]);
            Tx.store(&Accounts[From * 8], F - 3);
            Tx.store(&Accounts[To * 8], G + 3);
          });
        }
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  EXPECT_EQ(Total, 1000u * NumAccounts);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.transactions(), (uint64_t)NumThreads * OpsPerThread);
  ASSERT_NE(S.Rt.raceCheck(), nullptr);
  EXPECT_EQ(S.Rt.raceCheck()->violationCount(), 0u)
      << S.Rt.raceCheck()->formatReports();
  // PersistCheck violations are asserted in ~TestSystem.
}

TEST(Crafty, ContentionKnobsOffStillCorrect) {
  // All contention knobs at their non-default positions must change only
  // performance, never results: 4 threads of transfers with elision,
  // extension and sorting disabled, the dense write set on (spilling
  // every transaction), and backoff degraded to bare yields.
  constexpr unsigned NumThreads = 4;
  constexpr unsigned NumAccounts = 16;
  constexpr int OpsPerThread = 400;
  CraftyConfig C = config(NumThreads);
  C.ReadOnlyClockElision = false;
  C.SnapshotExtension = false;
  C.SortWriteSet = false;
  C.WriteSetHashThreshold = 2;
  C.BackoffMinSpins = 1;
  C.BackoffMaxSpins = 0;
  C.SglWaitSpinBound = 0;
  C.EnableTxRaceCheck = true;
  TestSystem S(C);
  auto *Accounts =
      static_cast<uint64_t *>(S.Rt.carve(NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I)
    Accounts[I * 8] = 500;
  S.Pool.persistDirect(Accounts, Accounts, NumAccounts * CacheLineBytes);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Rng R(T + 29);
      for (int I = 0; I != OpsPerThread; ++I) {
        unsigned From = R.nextBounded(NumAccounts);
        unsigned To =
            (From + 1 + R.nextBounded(NumAccounts - 1)) % NumAccounts;
        S.Rt.run(T, [&](TxnContext &Tx) {
          uint64_t F = Tx.load(&Accounts[From * 8]);
          uint64_t G = Tx.load(&Accounts[To * 8]);
          Tx.store(&Accounts[From * 8], F - 1);
          Tx.store(&Accounts[To * 8], G + 1);
        });
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  EXPECT_EQ(Total, 500u * NumAccounts);
  ASSERT_NE(S.Rt.raceCheck(), nullptr);
  EXPECT_EQ(S.Rt.raceCheck()->violationCount(), 0u)
      << S.Rt.raceCheck()->formatReports();
}

TEST(Crafty, NoValidateVariantUnderContention) {
  constexpr unsigned NumThreads = 4;
  CraftyConfig C = config(NumThreads);
  C.DisableValidate = true;
  TestSystem S(C);
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  constexpr int OpsPerThread = 400;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != OpsPerThread; ++I)
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(*Counter, (uint64_t)NumThreads * OpsPerThread);
  EXPECT_EQ(S.Rt.txnStats().Validate, 0u);
}

TEST(Crafty, SpuriousAbortsForceSglAndStillCommit) {
  HtmConfig HC;
  HC.SpuriousAbortPerMillion = 1000000; // Every operation aborts.
  CraftyConfig C = config();
  C.SglAttemptThreshold = 3;
  TestSystem S(C, HC);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(64));
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(&Data[0], 1);
    Tx.store(&Data[1], 2);
    Tx.store(&Data[2], 3);
  });
  EXPECT_EQ(Data[0], 1u);
  EXPECT_EQ(Data[1], 2u);
  EXPECT_EQ(Data[2], 3u);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.Sgl, 1u) << "must complete under the SGL with k = 1";
  EXPECT_GT(S.Rt.htmStats().AbortZero, 0u);
}

TEST(Crafty, CapacityOverflowFallsBackToChunking) {
  HtmConfig HC;
  HC.MaxWriteSetLines = 8; // Tiny hardware write capacity.
  CraftyConfig C = config();
  C.InitialChunkK = 4;
  TestSystem S(C, HC);
  constexpr unsigned N = 64;
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(N * CacheLineBytes));
  S.Rt.run(0, [&](TxnContext &Tx) {
    for (unsigned I = 0; I != N; ++I) // One line per write: overflows HTM.
      Tx.store(&Data[I * 8], I + 1);
  });
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Data[I * 8], I + 1);
  EXPECT_EQ(S.Rt.txnStats().Sgl, 1u);
}

TEST(CraftyDeath, OversizedTransactionDiesWithDiagnostic) {
  // A transaction writing more words than half the undo log cannot be
  // made failure atomic (its sequences would wrap over themselves); the
  // runtime reports a configuration error rather than corrupting state.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        CraftyConfig C = config();
        C.LogEntriesPerThread = 64; // Max sequence: 24 entries.
        TestSystem S(C);
        auto *Data = static_cast<uint64_t *>(S.Rt.carve(64 * 8));
        S.Rt.run(0, [&](TxnContext &Tx) {
          for (unsigned I = 0; I != 60; ++I)
            Tx.store(&Data[I], I + 1);
        });
      },
      "increase LogEntriesPerThread");
}

TEST(Crafty, ThreadUnsafeModeWithExternalLock) {
  constexpr unsigned NumThreads = 3;
  CraftyConfig C = config(NumThreads);
  C.Mode = CraftyMode::ThreadUnsafe;
  TestSystem S(C);
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  std::mutex Lock; // The program provides atomicity.
  constexpr int OpsPerThread = 300;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != OpsPerThread; ++I) {
        std::lock_guard<std::mutex> G(Lock);
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(*Counter, (uint64_t)NumThreads * OpsPerThread);
  EXPECT_EQ(S.Rt.txnStats().Sgl, (uint64_t)NumThreads * OpsPerThread);
}

TEST(Crafty, AllocationInsideTransaction) {
  CraftyConfig C = config();
  C.ArenaBytesPerThread = 64 << 10;
  TestSystem S(C);
  auto *ListHead = static_cast<uint64_t *>(S.Rt.carve(64));
  for (uint64_t I = 1; I <= 5; ++I) {
    S.Rt.run(0, [&](TxnContext &Tx) {
      auto *Node = static_cast<uint64_t *>(Tx.alloc(16));
      ASSERT_NE(Node, nullptr);
      Tx.store(&Node[0], I);               // Value.
      Tx.store(&Node[1], Tx.load(ListHead)); // Next pointer.
      Tx.store(ListHead, reinterpret_cast<uint64_t>(Node));
    });
  }
  // Walk the list: 5, 4, 3, 2, 1.
  uint64_t Expect = 5;
  for (auto *N = reinterpret_cast<uint64_t *>(*ListHead); N;
       N = reinterpret_cast<uint64_t *>(N[1]))
    EXPECT_EQ(N[0], Expect--);
  EXPECT_EQ(Expect, 0u);
}

TEST(Crafty, AllocationReplayInValidatePhase) {
  CraftyConfig C = config();
  C.ArenaBytesPerThread = 64 << 10;
  C.DisableRedo = true; // Every writing commit re-executes via Validate.
  TestSystem S(C);
  auto *Slot = static_cast<uint64_t *>(S.Rt.carve(64));
  S.Rt.run(0, [&](TxnContext &Tx) {
    auto *Node = static_cast<uint64_t *>(Tx.alloc(32));
    ASSERT_NE(Node, nullptr);
    Tx.store(&Node[0], 123);
    Tx.store(Slot, reinterpret_cast<uint64_t>(Node));
  });
  auto *Node = reinterpret_cast<uint64_t *>(*Slot);
  ASSERT_NE(Node, nullptr);
  EXPECT_EQ(Node[0], 123u);
  EXPECT_EQ(S.Rt.txnStats().Validate, 1u);
}

TEST(Crafty, DeferredFreeSurvivesReexecution) {
  CraftyConfig C = config();
  C.ArenaBytesPerThread = 64 << 10;
  C.DisableRedo = true;
  TestSystem S(C);
  void *Victim = S.Rt.allocator()->alloc(0, 32);
  ASSERT_NE(Victim, nullptr);
  auto *Flag = static_cast<uint64_t *>(S.Rt.carve(64));
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.dealloc(Victim);
    Tx.store(Flag, 1);
  });
  // The block is reusable exactly once.
  void *Again = S.Rt.allocator()->alloc(0, 32);
  EXPECT_EQ(Again, Victim);
}

//===----------------------------------------------------------------------===//
// Crash consistency
//===----------------------------------------------------------------------===//

TEST(CraftyCrash, CleanRunRollsBackOnlyLastTransaction) {
  TestSystem S(config());
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  constexpr uint64_t N = 20;
  for (uint64_t I = 0; I != N; ++I)
    S.Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  S.Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(S.Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  EXPECT_GE(Rep.SequencesRolledBack, 1u);
  // Crafty does not provide immediate persistence: the last transaction
  // is always rolled back (its writes were flushed but never drained).
  EXPECT_EQ(*Counter, N - 1);
}

TEST(CraftyCrash, PersistBarrierMakesEverythingDurable) {
  TestSystem S(config());
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  constexpr uint64_t N = 20;
  for (uint64_t I = 0; I != N; ++I)
    S.Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  S.Rt.persistBarrier(0);
  S.Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(S.Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  EXPECT_EQ(*Counter, N);
}

TEST(CraftyCrash, MultithreadedTransfersRecoverConsistently) {
  constexpr unsigned NumThreads = 4;
  constexpr unsigned NumAccounts = 32;
  constexpr int OpsPerThread = 500;
  PMemConfig PC = TestSystem::defaultPoolConfig();
  PC.EvictionPerMillion = 20000; // Spontaneous cache eviction chaos.
  TestSystem S(config(NumThreads), HtmConfig(), PC);
  auto *Accounts =
      static_cast<uint64_t *>(S.Rt.carve(NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I) {
    Accounts[I * 8] = 1000;
    S.Pool.persistDirect(&Accounts[I * 8], &Accounts[I * 8], 8);
  }
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng R(T + 91);
      for (int I = 0; I != OpsPerThread; ++I) {
        unsigned From = R.nextBounded(NumAccounts);
        unsigned To =
            (From + 1 + R.nextBounded(NumAccounts - 1)) % NumAccounts;
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(&Accounts[From * 8], Tx.load(&Accounts[From * 8]) - 7);
          Tx.store(&Accounts[To * 8], Tx.load(&Accounts[To * 8]) + 7);
        });
      }
    });
  for (auto &Th : Threads)
    Th.join();
  S.Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(S.Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  EXPECT_EQ(Total, 1000u * NumAccounts)
      << "recovered state must reflect whole transactions only";
}

TEST(CraftyCrash, LogWraparoundManyTimes) {
  CraftyConfig C = config();
  C.LogEntriesPerThread = 64; // Wraps every ~10 transactions.
  TestSystem S(C);
  auto *Counter = static_cast<uint64_t *>(S.Rt.carve(64));
  constexpr uint64_t N = 500;
  for (uint64_t I = 0; I != N; ++I)
    S.Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
      Tx.store(Counter + 1, I);
      Tx.store(Counter + 2, I * 2);
    });
  S.Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(S.Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  EXPECT_EQ(*Counter, N - 1);
  EXPECT_EQ(Counter[1], N - 2);
  EXPECT_EQ(Counter[2], (N - 2) * 2);
}

TEST(CraftyCrash, SglSectionIsAllOrNothing) {
  HtmConfig HC;
  HC.MaxWriteSetLines = 8; // Force chunked SGL commits.
  CraftyConfig C = config();
  C.InitialChunkK = 4;
  TestSystem S(C, HC);
  constexpr unsigned N = 64;
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(N * CacheLineBytes));
  // First transaction: fill with a recognizable pattern, chunked.
  S.Rt.run(0, [&](TxnContext &Tx) {
    for (unsigned I = 0; I != N; ++I)
      Tx.store(&Data[I * 8], 100 + I);
  });
  ASSERT_EQ(S.Rt.txnStats().Sgl, 1u);
  // Second transaction, also chunked; it is the last one and must be
  // rolled back in full by recovery, leaving the first intact.
  S.Rt.run(0, [&](TxnContext &Tx) {
    for (unsigned I = 0; I != N; ++I)
      Tx.store(&Data[I * 8], 900 + I);
  });
  S.Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(S.Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Data[I * 8], 100 + I) << "at account " << I;
}

TEST(CraftyCrash, MaxLagForcesIdleThreadsForward) {
  CraftyConfig C = config(2);
  C.MaxLag = 16; // Very tight: expensive checks fire constantly.
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(128));
  // Thread 1 commits once, then goes idle.
  S.Rt.run(1, [&](TxnContext &Tx) { Tx.store(&Data[8], 7); });
  // Thread 0 keeps committing; MAX_LAG forces empty commits into thread
  // 1's log so recovery's threshold keeps advancing.
  constexpr uint64_t N = 200;
  for (uint64_t I = 0; I != N; ++I)
    S.Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
    });
  S.Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(S.Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  // Without forced commits the threshold would be thread 1's single old
  // transaction and nearly all of thread 0's work would be rolled back.
  EXPECT_GE(Data[0], N - 20);
  EXPECT_EQ(Data[8], 7u) << "thread 1's committed transaction survives";
}

} // namespace

namespace {

// Deterministic Log->Redo window interleavings via the test hook.
struct HookState {
  TestSystem *S = nullptr;
  uint64_t *Word = nullptr;
  uint64_t Value = 0;
  bool Armed = false;
};

static void commitConflictingWrite(void *Ctx, unsigned ThreadId) {
  auto *H = static_cast<HookState *>(Ctx);
  if (!H->Armed || ThreadId != 0)
    return;
  H->Armed = false;
  // Thread 1 commits a write in thread 0's Log->Redo window.
  H->S->Rt.run(1, [&](TxnContext &Tx) { Tx.store(H->Word, H->Value); });
}

TEST(CraftyPhases, ValidateCommitsFreshlyComputedValues) {
  // T0 computes Y = f(X); a conflicting commit changes X between T0's Log
  // and Redo phases. The Redo check fails, and the Validate phase's
  // re-execution must commit the *fresh* value (undo entries still match
  // because T0 never wrote X).
  CraftyConfig C = config(2);
  HookState Hook;
  C.TestAfterLogCommit = commitConflictingWrite;
  C.TestHookCtx = &Hook;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(128));
  uint64_t *X = &Data[0], *Y = &Data[8];
  S.Pool.persistDirect(X, &(const uint64_t &)*X, 8);
  S.Rt.run(0, [&](TxnContext &Tx) { Tx.store(X, 1); });
  Hook = HookState{&S, X, 2, true};
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(Y, Tx.load(X) * 10);
  });
  EXPECT_EQ(*X, 2u);
  EXPECT_EQ(*Y, 20u) << "Validate must re-execute with the fresh X";
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.Validate, 1u);
  EXPECT_GE(S.Rt.htmStats().AbortExplicit, 1u) << "failed Redo check";
}

TEST(CraftyPhases, ValidationFailureRestartsTransaction) {
  // The conflicting commit writes the same word T0 writes: the persisted
  // undo entry no longer matches, Validate fails, and the whole
  // transaction restarts from a fresh Log phase.
  CraftyConfig C = config(2);
  HookState Hook;
  C.TestAfterLogCommit = commitConflictingWrite;
  C.TestHookCtx = &Hook;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(128));
  uint64_t *X = &Data[0];
  Hook = HookState{&S, X, 77, true};
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(X, Tx.load(X) + 1);
  });
  EXPECT_EQ(*X, 78u) << "restart must apply the increment on top of 77";
  PtmStats St = S.Rt.txnStats();
  // Thread 0's transaction committed on the retry (via Redo), plus the
  // hook's own transaction on thread 1.
  EXPECT_EQ(St.transactions(), 2u);
}

TEST(CraftyPhases, PersistBarrierUnderConcurrency) {
  constexpr unsigned NumThreads = 3;
  TestSystem S(config(NumThreads));
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(256));
  std::atomic<bool> Stop{false};
  // Two mutator threads keep committing while a third issues barriers.
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 2; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != 300; ++I)
        S.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(&Data[T * 8], Tx.load(&Data[T * 8]) + 1);
        });
    });
  Threads.emplace_back([&] {
    while (!Stop.load(std::memory_order_acquire))
      S.Rt.persistBarrier(2);
  });
  Threads[0].join();
  Threads[1].join();
  Stop.store(true, std::memory_order_release);
  Threads[2].join();
  // A final barrier guarantees everything is durable.
  S.Rt.persistBarrier(2);
  S.Pool.crash();
  RecoveryObserver::recoverPool(S.Pool);
  EXPECT_EQ(Data[0], 300u);
  EXPECT_EQ(Data[8], 300u);
}

} // namespace

namespace {

// The paper's Figure 5, literally: Thread 1 (*p = *q; *r = 1) and
// Thread 2 (*q = 2; *s = 3) both run their Log phases; Thread 1's Redo
// commits first, so Thread 2's Redo check fails and its Validate phase
// re-executes and commits. Final state and phase statistics must match
// the figure.
struct Fig5State {
  TestSystem *S = nullptr;
  uint64_t *P, *Q, *R, *Rs;
  bool Armed = false;
};

static void fig5RunThread1(void *Ctx, unsigned ThreadId) {
  auto *F = static_cast<Fig5State *>(Ctx);
  if (!F->Armed || ThreadId != 0)
    return;
  F->Armed = false;
  // Thread 1's whole transaction lands between Thread 2's Log and Redo.
  F->S->Rt.run(1, [&](TxnContext &Tx) {
    Tx.store(F->P, Tx.load(F->Q));
    Tx.store(F->R, 1);
  });
}

TEST(CraftyPhases, PaperFigure5Interleaving) {
  CraftyConfig C = config(2);
  Fig5State Fig;
  C.TestAfterLogCommit = fig5RunThread1;
  C.TestHookCtx = &Fig;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(4 * CacheLineBytes));
  Fig = Fig5State{&S, &Data[0], &Data[8], &Data[16], &Data[24], true};
  // Thread 2's transaction (thread id 0 here drives the hook window).
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(Fig.Q, 2);
    Tx.store(Fig.Rs, 3);
  });
  // Figure 5's outcome: *p = 0 (read before Thread 2's write), *r = 1,
  // *q = 2, *s = 3.
  EXPECT_EQ(*Fig.P, 0u);
  EXPECT_EQ(*Fig.R, 1u);
  EXPECT_EQ(*Fig.Q, 2u);
  EXPECT_EQ(*Fig.Rs, 3u);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.Redo, 1u) << "Thread 1 commits via Redo";
  EXPECT_EQ(St.Validate, 1u) << "Thread 2 commits via Validate";
}

} // namespace

namespace {

// Log-phase undo coalescing: repeated stores to one word must produce a
// single undo entry carrying the word's first (pre-transaction) old value,
// with the redo value updated in place.

TEST(CraftyCoalesce, RepeatedStoresProduceOneUndoEntryPerWord) {
  TestSystem S(config());
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(2 * CacheLineBytes));
  uint64_t *A = &Data[0], *B = &Data[8];
  uint64_t InitA = 100, InitB = 200;
  S.Pool.persistDirect(A, &InitA, 8);
  S.Pool.persistDirect(B, &InitB, 8);
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(A, 1);
    Tx.store(A, 2);
    Tx.store(B, 3);
    Tx.store(A, 4);
    Tx.store(B, 5);
  });
  EXPECT_EQ(*A, 4u);
  EXPECT_EQ(*B, 5u);
  // Two data entries (first old values, first-store order), then the tag.
  UndoLogRegion Log =
      logRegionFor(S.Pool.base(), *S.Rt.poolHeader(), /*ThreadId=*/0);
  DecodedEntry E0 = decodeEntry(*Log.addrWordAt(0), *Log.valWordAt(0));
  ASSERT_EQ(E0.K, DecodedEntry::Kind::Data);
  EXPECT_EQ(E0.Addr, reinterpret_cast<uint64_t>(A));
  EXPECT_EQ(E0.Value, InitA);
  DecodedEntry E1 = decodeEntry(*Log.addrWordAt(1), *Log.valWordAt(1));
  ASSERT_EQ(E1.K, DecodedEntry::Kind::Data);
  EXPECT_EQ(E1.Addr, reinterpret_cast<uint64_t>(B));
  EXPECT_EQ(E1.Value, InitB);
  DecodedEntry E2 = decodeEntry(*Log.addrWordAt(2), *Log.valWordAt(2));
  EXPECT_TRUE(E2.isTag()) << "coalescing must not emit extra data entries";
  // Table 1 semantics: writes are counted as executed, not as coalesced.
  EXPECT_EQ(S.Rt.txnStats().Writes, 5u);
}

TEST(CraftyCoalesce, FlushesFewerLinesThanClwbCalls) {
  // A transaction writing several distinct words per cache line must
  // schedule fewer line write-backs than it issues flush requests: the
  // undo entries flush as a contiguous slot range and the data flushes
  // coalesce by line in the pool's pending-line filter.
  TestSystem S(config());
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(2 * CacheLineBytes));
  S.Rt.run(0, [&](TxnContext &Tx) {
    for (size_t I = 0; I != 12; ++I) // Six distinct words per line.
      Tx.store(&Data[I % 2 ? 8 + I / 2 : I / 2], I + 1);
  });
  PMemStats PS = S.Pool.stats();
  EXPECT_LT(PS.LinesScheduled, PS.ClwbCalls)
      << "multi-write-per-line transaction must coalesce";
  EXPECT_GT(PS.LinesScheduled, 0u);
  EXPECT_EQ(S.Rt.txnStats().Writes, 12u);
}

TEST(CraftyCoalesce, ValidatePassesOnReExecutionWithRepeats) {
  // A non-conflicting commit in the Log->Redo window forces the Validate
  // phase; the deterministic re-execution repeats the same stores and must
  // match the coalesced undo entries.
  CraftyConfig C = config(2);
  HookState Hook;
  C.TestAfterLogCommit = commitConflictingWrite;
  C.TestHookCtx = &Hook;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(2 * CacheLineBytes));
  uint64_t *X = &Data[0], *Unrelated = &Data[8];
  Hook = HookState{&S, Unrelated, 9, true};
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(X, 1);
    Tx.store(X, Tx.load(X) + 1);
    Tx.store(X, Tx.load(X) + 1);
  });
  EXPECT_EQ(*X, 3u);
  EXPECT_EQ(*Unrelated, 9u);
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.Validate, 1u) << "Redo check must fail, Validate must pass";
}

TEST(CraftyCoalesce, ValidateFailsOnConflictingCommitWithRepeats) {
  // The conflicting commit rewrites the repeatedly-stored word itself: the
  // single coalesced undo entry no longer matches the memory value, the
  // Validate phase fails, and the transaction restarts on the new value.
  CraftyConfig C = config(2);
  HookState Hook;
  C.TestAfterLogCommit = commitConflictingWrite;
  C.TestHookCtx = &Hook;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(CacheLineBytes));
  uint64_t *X = &Data[0];
  Hook = HookState{&S, X, 77, true};
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(X, Tx.load(X) + 1);
    Tx.store(X, Tx.load(X) + 1);
  });
  EXPECT_EQ(*X, 79u) << "restart must re-apply both increments on top of 77";
  PtmStats St = S.Rt.txnStats();
  EXPECT_EQ(St.transactions(), 2u);
  EXPECT_GE(S.Rt.htmStats().AbortExplicit, 2u)
      << "failed Redo check plus failed Validate";
}

TEST(CraftyCoalesce, ChunkedOpenChunkCoalesces) {
  // Thread-unsafe mode uses the chunked flow; repeats within one open
  // chunk share an undo entry while the chunk boundary still splits them.
  CraftyConfig C = config();
  C.Mode = CraftyMode::ThreadUnsafe;
  C.InitialChunkK = 4;
  TestSystem S(C);
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(2 * CacheLineBytes));
  uint64_t *A = &Data[0], *B = &Data[8];
  uint64_t InitA = 50;
  S.Pool.persistDirect(A, &InitA, 8);
  S.Rt.run(0, [&](TxnContext &Tx) {
    Tx.store(A, 1);
    Tx.store(A, 2); // Coalesced into the first entry.
    Tx.store(B, 3);
  });
  EXPECT_EQ(*A, 2u);
  EXPECT_EQ(*B, 3u);
  UndoLogRegion Log =
      logRegionFor(S.Pool.base(), *S.Rt.poolHeader(), /*ThreadId=*/0);
  DecodedEntry E0 = decodeEntry(*Log.addrWordAt(0), *Log.valWordAt(0));
  ASSERT_EQ(E0.K, DecodedEntry::Kind::Data);
  EXPECT_EQ(E0.Addr, reinterpret_cast<uint64_t>(A));
  EXPECT_EQ(E0.Value, InitA);
  DecodedEntry E1 = decodeEntry(*Log.addrWordAt(1), *Log.valWordAt(1));
  ASSERT_EQ(E1.K, DecodedEntry::Kind::Data);
  EXPECT_EQ(E1.Addr, reinterpret_cast<uint64_t>(B));
  EXPECT_EQ(E1.Value, 0u);
  EXPECT_EQ(S.Rt.txnStats().Writes, 3u);
}

TEST(CraftyCoalesce, CrashDuringRepeatedStoreBodyRecoversCleanly) {
  // Commit transactions with heavy repetition, crash, recover: undo replay
  // needs exactly one pre-transaction value per word.
  TestSystem S(config());
  auto *Data = static_cast<uint64_t *>(S.Rt.carve(4 * CacheLineBytes));
  for (int Round = 0; Round != 50; ++Round) {
    S.Rt.run(0, [&](TxnContext &Tx) {
      for (int K = 0; K != 4; ++K)
        for (int W = 0; W != 4; ++W)
          Tx.store(&Data[W * 8], Tx.load(&Data[W * 8]) + 1);
    });
  }
  S.Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(S.Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  // Each surviving round added exactly 4 to every word; recovery must not
  // leave a word mid-round.
  EXPECT_EQ(Data[0] % 4, 0u);
  for (int W = 1; W != 4; ++W)
    EXPECT_EQ(Data[W * 8], Data[0]) << "words must recover to one round";
}

} // namespace
