//===- tests/CrashPropertyTest.cpp - Crash-consistency properties ---------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Property-based crash-consistency tests (DESIGN.md Section 5): random
// multithreaded transaction histories run in tracked persistent memory
// under randomized spontaneous cache eviction; the pool then crashes and
// the recovery observer repairs it. Afterwards:
//
//  (a) every transaction is all-or-nothing (the bank total is conserved
//      and per-account deltas are transfer-consistent);
//  (b) a monotone side structure is a clean prefix (the recovered state
//      corresponds to a serialization prefix);
//  (c) a second crash+recovery immediately after is a no-op fixpoint.
//
// The sweep is parameterized over Crafty variants, thread counts, log
// sizes, MAX_LAG settings and eviction rates, across several seeds each.
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "recovery/Recovery.h"

#include "gtest/gtest.h"

#include <thread>
#include <tuple>
#include <vector>

using namespace crafty;

namespace {

struct CrashParams {
  const char *Name;
  unsigned Threads;
  size_t LogEntries;
  uint64_t MaxLag; // 0 = default (effectively off).
  uint32_t EvictionPerMillion;
  bool DisableRedo;
  bool DisableValidate;
  /// Write lines back at CLWB issue time (the earliest legal instant):
  /// any flush the coalescing filter wrongly suppressed after a re-dirty
  /// becomes lost data here, so recovery would fail loudly.
  bool EagerWriteback = false;
  /// Flip every contention knob to its non-default position (no clock
  /// elision, no snapshot extension, unsorted write set, dense write-set
  /// mode, bare yield backoff): the knobs may change only performance,
  /// so crash consistency must hold at both extremes of the sweep.
  bool NaiveContentionKnobs = false;
};

const CrashParams ParamTable[] = {
    {"single_thread", 1, 1 << 10, 0, 30000, false, false},
    {"two_threads", 2, 1 << 10, 0, 30000, false, false},
    {"four_threads", 4, 1 << 10, 0, 30000, false, false},
    // 8 threads on the default knobs: snapshot extension, dense write
    // sets and abort backoff all fire under real contention, feeding the
    // crash/recovery sweep through the contention-optimized commit paths.
    {"eight_threads", 8, 1 << 10, 0, 30000, false, false},
    {"tiny_log_wraparound", 2, 128, 0, 30000, false, false},
    {"tight_maxlag", 3, 1 << 10, 32, 30000, false, false},
    {"no_redo_variant", 3, 1 << 10, 0, 30000, true, false},
    {"no_validate_variant", 3, 1 << 10, 0, 30000, false, true},
    {"heavy_eviction", 3, 1 << 10, 0, 200000, false, false},
    {"no_eviction", 3, 1 << 10, 0, 0, false, false},
    {"eager_writeback", 3, 1 << 10, 0, 30000, false, false, true},
    {"eager_writeback_tiny_log", 2, 128, 0, 30000, false, false, true},
    {"naive_contention_knobs", 4, 1 << 10, 0, 30000, false, false, false,
     true},
};

class CrashProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(CrashProperty, RecoveredStateIsConsistent) {
  const CrashParams &P = ParamTable[std::get<0>(GetParam())];
  uint64_t Seed = std::get<1>(GetParam());

  PMemConfig PC;
  PC.PoolBytes = 8 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PC.EvictionPerMillion = P.EvictionPerMillion;
  PC.EvictionSeed = Seed * 31 + 7;
  PC.EagerWriteback = P.EagerWriteback;
  PMemPool Pool(PC);
  HtmRuntime Htm{HtmConfig{}};
  CraftyConfig CC;
  CC.NumThreads = P.Threads;
  CC.LogEntriesPerThread = P.LogEntries;
  if (P.MaxLag)
    CC.MaxLag = P.MaxLag;
  CC.DisableRedo = P.DisableRedo;
  CC.DisableValidate = P.DisableValidate;
  if (P.NaiveContentionKnobs) {
    CC.ReadOnlyClockElision = false;
    CC.SnapshotExtension = false;
    CC.SortWriteSet = false;
    CC.WriteSetHashThreshold = 2; // Dense mode, spilling every txn.
    CC.BackoffMinSpins = 1;
    CC.BackoffMaxSpins = 0;
    CC.SglWaitSpinBound = 0;
  }
  CraftyRuntime Rt(Pool, Htm, CC);

  constexpr unsigned NumAccounts = 24;
  constexpr uint64_t Initial = 500;
  auto *Accounts =
      static_cast<uint64_t *>(Rt.carve(NumAccounts * CacheLineBytes));
  // One monotone per-thread journal word: each committed txn writes its
  // op index, so the recovered value names a serialization prefix.
  auto *Journal =
      static_cast<uint64_t *>(Rt.carve(P.Threads * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I) {
    uint64_t V = Initial;
    Pool.persistDirect(&Accounts[I * 8], &V, sizeof(V));
  }

  const int OpsPerThread = 300;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != P.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Rng R(Seed * 1000003 + T);
      for (int I = 0; I != OpsPerThread; ++I) {
        unsigned From = (unsigned)R.nextBounded(NumAccounts);
        unsigned To = (unsigned)((From + 1 + R.nextBounded(NumAccounts - 1)) %
                                 NumAccounts);
        uint64_t Amount = 1 + R.nextBounded(9);
        Rt.run(T, [&](TxnContext &Tx) {
          // The From account is debited in two steps so every transaction
          // repeats a store to the same word, exercising Log-phase undo
          // coalescing in the crash/recovery sweep.
          Tx.store(&Accounts[From * 8], Tx.load(&Accounts[From * 8]) - 1);
          Tx.store(&Accounts[From * 8],
                   Tx.load(&Accounts[From * 8]) - (Amount - 1));
          Tx.store(&Accounts[To * 8], Tx.load(&Accounts[To * 8]) + Amount);
          Tx.store(&Journal[T * 8], (uint64_t)I + 1);
        });
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();

  Pool.crash();
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  ASSERT_TRUE(Rep.HeaderValid);

  // (a) Conservation: partial transactions would break the total.
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += Accounts[I * 8];
  EXPECT_EQ(Total, Initial * NumAccounts) << P.Name << " seed " << Seed;

  // (b) Prefix: journals never exceed the issued op count, and with a
  // tight MAX_LAG the recovered prefix must be near the crash point.
  for (unsigned T = 0; T != P.Threads; ++T) {
    EXPECT_LE(Journal[T * 8], (uint64_t)OpsPerThread);
    if (P.MaxLag && P.MaxLag <= 64) {
      EXPECT_GE(Journal[T * 8], (uint64_t)OpsPerThread / 2)
          << "MAX_LAG must bound rollback (" << P.Name << ")";
    }
  }

  // (c) Crash + recovery again: already-consistent state is a fixpoint.
  Pool.crash();
  RecoveryReport Rep2 = RecoveryObserver::recoverPool(Pool);
  EXPECT_EQ(Rep2.SequencesFound, 0u) << "logs were zeroed by recovery";
  uint64_t Total2 = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total2 += Accounts[I * 8];
  EXPECT_EQ(Total2, Total);
}

std::string crashName(
    const ::testing::TestParamInfo<CrashProperty::ParamType> &Info) {
  return std::string(ParamTable[std::get<0>(Info.param)].Name) + "_seed" +
         std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashProperty,
    ::testing::Combine(::testing::Range(0, (int)std::size(ParamTable)),
                       ::testing::Values(1ull, 2ull, 3ull, 4ull)),
    crashName);

// Continuing to run after a crash and recovery must work: the runtime's
// volatile log cursors point past the zeroed log, which decodes cleanly.
TEST(CrashRestart, RuntimeContinuesAfterRecovery) {
  PMemConfig PC;
  PC.PoolBytes = 8 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PMemPool Pool(PC);
  HtmRuntime Htm{HtmConfig{}};
  CraftyConfig CC;
  CC.NumThreads = 1;
  CC.LogEntriesPerThread = 256;
  CraftyRuntime Rt(Pool, Htm, CC);
  auto *Counter = static_cast<uint64_t *>(Rt.carve(64));
  for (int I = 0; I != 50; ++I)
    Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  Pool.crash();
  RecoveryObserver::recoverPool(Pool);
  uint64_t AfterFirst = *Counter;
  EXPECT_EQ(AfterFirst, 49u);
  // Keep going with the same runtime (its head cursor is volatile state
  // that survived the simulated power failure only because the process
  // did; a real restart would attach fresh).
  for (int I = 0; I != 50; ++I)
    Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  Pool.crash();
  RecoveryObserver::recoverPool(Pool);
  EXPECT_EQ(*Counter, AfterFirst + 49);
}

} // namespace

namespace {

// A full restart: crash, recover, then attach a *fresh* runtime (new HTM
// runtime, new thread contexts) to the surviving pool and keep working.
TEST(CrashRestart, AttachAfterRecovery) {
  PMemConfig PC;
  PC.PoolBytes = 8 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PMemPool Pool(PC);
  CraftyConfig CC;
  CC.NumThreads = 2;
  CC.LogEntriesPerThread = 256;
  uint64_t *Counter = nullptr;
  {
    HtmRuntime Htm{HtmConfig{}};
    CraftyRuntime Rt(Pool, Htm, CC);
    Counter = static_cast<uint64_t *>(Rt.carve(64));
    for (int I = 0; I != 40; ++I)
      Rt.run(0, [&](TxnContext &Tx) {
        Tx.store(Counter, Tx.load(Counter) + 1);
      });
    Pool.crash(); // The first "process" dies here.
  }
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  ASSERT_TRUE(Rep.HeaderValid);
  EXPECT_EQ(*Counter, 39u);
  // Second "process": fresh HTM runtime, attach to the existing layout.
  HtmRuntime Htm2{HtmConfig{}};
  std::unique_ptr<CraftyRuntime> Rt2 = CraftyRuntime::attach(Pool, Htm2, CC);
  for (int I = 0; I != 40; ++I)
    Rt2->run(1, [&](TxnContext &Tx) {
      Tx.store(Counter, Tx.load(Counter) + 1);
    });
  Pool.crash();
  RecoveryObserver::recoverPool(Pool);
  EXPECT_EQ(*Counter, 39u + 39u);
}

TEST(CrashRestartDeath, AttachRejectsMismatchedGeometry) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        PMemConfig PC;
        PC.PoolBytes = 4 << 20;
        PC.Mode = PMemMode::Tracked;
        PMemPool Pool(PC);
        CraftyConfig CC;
        CC.NumThreads = 2;
        CC.LogEntriesPerThread = 256;
        HtmRuntime Htm{HtmConfig{}};
        CraftyRuntime Rt(Pool, Htm, CC);
        CC.LogEntriesPerThread = 512; // Wrong geometry.
        HtmRuntime Htm2{HtmConfig{}};
        auto Rt2 = CraftyRuntime::attach(Pool, Htm2, CC);
      },
      "does not match");
}

} // namespace
