//===- tests/HtmTest.cpp - HTM emulation unit tests -----------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Validates the four HTM properties the Crafty algorithms rely on:
// atomicity/isolation, write buffering until commit, abort discarding all
// writes, and the abort taxonomy (conflict / capacity / explicit / zero).
//
//===----------------------------------------------------------------------===//

#include "htm/Htm.h"

#include "gtest/gtest.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace crafty;

namespace {

class HtmTest : public ::testing::Test {
protected:
  HtmConfig Cfg;
  std::unique_ptr<HtmRuntime> Rt;

  void makeRuntime() { Rt = std::make_unique<HtmRuntime>(Cfg); }
};

TEST_F(HtmTest, CommitPublishesWrites) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t X = 1, Y = 2;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    T.store(&X, 10);
    T.store(&Y, T.load(&X) + 10); // Read-own-write.
  });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(X, 10u);
  EXPECT_EQ(Y, 20u);
  EXPECT_GT(R.CommitVersion, 0u);
  EXPECT_EQ(Tx.stats().Commits, 1u);
}

TEST_F(HtmTest, WritesInvisibleBeforeCommit) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t X = 7;
  runHtmTx(Tx, [&](HtmTx &T) {
    T.store(&X, 99);
    // Memory must still hold the old value while the transaction runs.
    EXPECT_EQ(__atomic_load_n(&X, __ATOMIC_RELAXED), 7u);
  });
  EXPECT_EQ(X, 99u);
}

TEST_F(HtmTest, ExplicitAbortDiscardsWrites) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t X = 7;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    T.store(&X, 99);
    T.abortExplicit(42);
  });
  ASSERT_FALSE(R.Committed);
  EXPECT_EQ(R.Code, AbortCode::Explicit);
  EXPECT_EQ(R.UserCode, 42u);
  EXPECT_EQ(X, 7u);
  EXPECT_EQ(Tx.stats().AbortExplicit, 1u);
}

TEST_F(HtmTest, RollbackInsideTransactionCommitsOriginalValues) {
  // The nondestructive-undo-logging pattern: write, then undo in reverse,
  // then commit. Memory must be unchanged afterwards.
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t X = 5, Y = 6;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    T.store(&X, 50);
    T.store(&Y, 60);
    EXPECT_EQ(T.load(&X), 50u);
    T.store(&Y, 6); // Roll back in reverse order.
    T.store(&X, 5);
  });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(X, 5u);
  EXPECT_EQ(Y, 6u);
}

TEST_F(HtmTest, ConflictingCommitAbortsReader) {
  makeRuntime();
  HtmTx TxA(*Rt, 0), TxB(*Rt, 1);
  alignas(64) uint64_t X = 0, Out = 0;
  // A reads X, then B commits a write to X, then A tries to commit a
  // dependent write: A must abort (its snapshot is stale).
  TxResult RA = runHtmTx(TxA, [&](HtmTx &T) {
    uint64_t V = T.load(&X);
    TxResult RB = runHtmTx(TxB, [&](HtmTx &T2) { T2.store(&X, 1); });
    ASSERT_TRUE(RB.Committed);
    T.store(&Out, V + 1);
  });
  EXPECT_FALSE(RA.Committed);
  EXPECT_EQ(RA.Code, AbortCode::Conflict);
  EXPECT_EQ(Out, 0u);
}

TEST_F(HtmTest, StaleReadAbortsImmediatelyWithoutExtension) {
  makeRuntime();
  HtmTuning Tuning;
  Tuning.SnapshotExtension = false;
  Rt->setTuning(Tuning);
  HtmTx TxA(*Rt, 0), TxB(*Rt, 1);
  alignas(64) uint64_t X = 0;
  TxResult RA = runHtmTx(TxA, [&](HtmTx &T) {
    // Start the snapshot: a harmless read.
    alignas(64) static uint64_t Dummy = 0;
    T.load(&Dummy);
    TxResult RB = runHtmTx(TxB, [&](HtmTx &T2) { T2.store(&X, 1); });
    ASSERT_TRUE(RB.Committed);
    T.load(&X); // Newer than our snapshot: abort here.
    FAIL() << "load of a stale line must abort";
  });
  EXPECT_FALSE(RA.Committed);
  EXPECT_EQ(RA.Code, AbortCode::Conflict);
}

TEST_F(HtmTest, StaleReadRecoveredBySnapshotExtension) {
  // Same interleaving as above, but with snapshot extension (the default):
  // the prior read set (Dummy) is still valid at the current clock, so the
  // snapshot advances past B's commit and the load returns B's value.
  makeRuntime();
  HtmTx TxA(*Rt, 0), TxB(*Rt, 1);
  alignas(64) uint64_t X = 0;
  TxResult RA = runHtmTx(TxA, [&](HtmTx &T) {
    alignas(64) static uint64_t Dummy = 0;
    T.load(&Dummy);
    TxResult RB = runHtmTx(TxB, [&](HtmTx &T2) { T2.store(&X, 1); });
    ASSERT_TRUE(RB.Committed);
    EXPECT_EQ(T.load(&X), 1u); // Extended snapshot sees the new value.
  });
  EXPECT_TRUE(RA.Committed);
  EXPECT_EQ(TxA.stats().SnapshotExtensions, 1u);
}

TEST_F(HtmTest, SnapshotExtensionFailsWhenReadSetChanged) {
  // If a word already read changes, extension must not succeed: the stale
  // read aborts exactly as without extension.
  makeRuntime();
  HtmTx TxA(*Rt, 0), TxB(*Rt, 1);
  alignas(64) uint64_t X = 0, Y = 0;
  TxResult RA = runHtmTx(TxA, [&](HtmTx &T) {
    EXPECT_EQ(T.load(&Y), 0u); // Y joins the read set.
    TxResult RB = runHtmTx(TxB, [&](HtmTx &T2) {
      T2.store(&X, 1);
      T2.store(&Y, 1); // Invalidates A's read of Y.
    });
    ASSERT_TRUE(RB.Committed);
    T.load(&X); // Extension revalidates Y, fails, aborts.
    FAIL() << "extension over a changed read set must abort";
  });
  EXPECT_FALSE(RA.Committed);
  EXPECT_EQ(RA.Code, AbortCode::Conflict);
}

TEST_F(HtmTest, DenseWriteSetSpillsToHashCorrectly) {
  // Cross the dense->hash threshold mid-transaction: reads-own-writes and
  // the committed values must be identical on both sides of the spill.
  makeRuntime();
  HtmTuning Tuning;
  Tuning.WriteSetHashThreshold = 4;
  Rt->setTuning(Tuning);
  HtmTx Tx(*Rt, 0);
  constexpr size_t N = 16; // 4x the threshold.
  alignas(64) uint64_t Words[N] = {};
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    for (size_t I = 0; I != N; ++I)
      T.store(&Words[I], I + 1);
    for (size_t I = 0; I != N; ++I)
      EXPECT_EQ(T.load(&Words[I]), I + 1); // Read-own-write after spill.
    T.store(&Words[0], 100); // Update a pre-spill slot post-spill.
    EXPECT_EQ(T.load(&Words[0]), 100u);
  });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(Words[0], 100u);
  for (size_t I = 1; I != N; ++I)
    EXPECT_EQ(Words[I], I + 1);
}

TEST_F(HtmTest, AlwaysHashWriteSetCommits) {
  // Threshold 0 = dense mode disabled entirely.
  makeRuntime();
  HtmTuning Tuning;
  Tuning.WriteSetHashThreshold = 0;
  Rt->setTuning(Tuning);
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t X = 1, Y = 2;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    T.store(&X, 10);
    T.store(&Y, T.load(&X) + 10);
  });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(X, 10u);
  EXPECT_EQ(Y, 20u);
}

TEST_F(HtmTest, UnsortedWriteSetCommitsAndValidates) {
  // SortWriteSet off: commit locks stripes in insertion order and
  // validation must still recognize self-owned stripes.
  makeRuntime();
  HtmTuning Tuning;
  Tuning.SortWriteSet = false;
  Rt->setTuning(Tuning);
  HtmTx Tx(*Rt, 0);
  constexpr size_t N = 24;
  alignas(64) uint64_t Words[N] = {};
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    for (size_t I = N; I-- > 0;) { // Descending insertion order.
      T.load(&Words[I]);           // Read-then-write: validation must see
      T.store(&Words[I], I + 1);   // the stripe as self-owned at commit.
    }
  });
  ASSERT_TRUE(R.Committed);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Words[I], I + 1);
}

TEST_F(HtmTest, NonTxStoreBatchPublishesAllWordsOneBump) {
  makeRuntime();
  constexpr size_t N = 9;
  alignas(64) uint64_t Words[N] = {};
  uint64_t *Addrs[N];
  uint64_t Vals[N];
  for (size_t I = 0; I != N; ++I) {
    Addrs[I] = &Words[I];
    Vals[I] = I + 1;
  }
  // Repeat a word: the last submitted store must win.
  Addrs[N - 1] = &Words[0];
  Vals[N - 1] = 42;
  uint64_t BumpsBefore = Rt->nonTxClockBumps();
  Rt->nonTxStoreBatch(Addrs, Vals, N);
  EXPECT_EQ(Rt->nonTxClockBumps(), BumpsBefore + 1);
  EXPECT_EQ(Words[0], 42u);
  for (size_t I = 1; I != N - 1; ++I)
    EXPECT_EQ(Words[I], I + 1);
}

TEST_F(HtmTest, NonTxStoreAbortsConflictingReader) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t Sgl = 0, Data = 0;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    EXPECT_EQ(T.load(&Sgl), 0u); // Subscribe to the SGL word.
    Rt->nonTxStore(&Sgl, 1);     // Lock acquired by another thread.
    T.store(&Data, 1);
  });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(Data, 0u);
  EXPECT_EQ(Rt->nonTxLoad(&Sgl), 1u);
}

TEST_F(HtmTest, NonTxCasSemantics) {
  makeRuntime();
  alignas(64) uint64_t W = 0;
  EXPECT_TRUE(Rt->nonTxCas(&W, 0, 1));
  EXPECT_FALSE(Rt->nonTxCas(&W, 0, 2));
  EXPECT_EQ(Rt->nonTxLoad(&W), 1u);
  EXPECT_TRUE(Rt->nonTxCas(&W, 1, 0));
  EXPECT_EQ(Rt->nonTxLoad(&W), 0u);
}

TEST_F(HtmTest, WriteCapacityAbort) {
  Cfg.MaxWriteSetLines = 4;
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  std::vector<uint64_t> Data(64 * 8, 0); // Plenty of cache lines.
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    for (size_t I = 0; I < Data.size(); I += 8) // One word per line.
      T.store(&Data[I], I);
  });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.Code, AbortCode::Capacity);
  for (uint64_t V : Data)
    EXPECT_EQ(V, 0u);
}

TEST_F(HtmTest, ReadCapacityAbort) {
  Cfg.MaxReadSetLines = 4;
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  std::vector<uint64_t> Data(64 * 8, 0);
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    uint64_t Sum = 0;
    for (size_t I = 0; I < Data.size(); I += 8)
      Sum += T.load(&Data[I]);
    (void)Sum;
  });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.Code, AbortCode::Capacity);
}

TEST_F(HtmTest, SpuriousAbortInjection) {
  Cfg.SpuriousAbortPerMillion = 1000000; // Always.
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t X = 0;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) { T.store(&X, 1); });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.Code, AbortCode::Zero);
}

TEST_F(HtmTest, StoreCommitVersionWritesSerializationTimestamp) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t Ts = 0, Shifted = 0, X = 0;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    T.store(&X, 1);
    T.storeCommitVersion(&Ts);
    T.storeCommitVersion(&Shifted, 1, 1);
  });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(Ts, R.CommitVersion);
  EXPECT_EQ(Shifted, (R.CommitVersion << 1) | 1);
  // Commit versions strictly increase across writing transactions.
  TxResult R2 = runHtmTx(Tx, [&](HtmTx &T) { T.store(&X, 2); });
  ASSERT_TRUE(R2.Committed);
  EXPECT_GT(R2.CommitVersion, R.CommitVersion);
}

TEST_F(HtmTest, ReadOnlyCommitNeedsNoClockTick) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) uint64_t X = 3;
  uint64_t Before = Rt->globalClock();
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) { EXPECT_EQ(T.load(&X), 3u); });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(Rt->globalClock(), Before);
}

TEST_F(HtmTest, CommitFenceHookRunsBeforeWriteback) {
  makeRuntime();
  struct HookState {
    uint64_t *Target = nullptr;
    uint64_t SeenAtFence = ~0ull;
    int Fences = 0;
    int Stores = 0;
  } State;
  alignas(64) uint64_t X = 0;
  State.Target = &X;
  MemoryHooks Hooks;
  Hooks.Ctx = &State;
  Hooks.OnCommitFence = [](void *Ctx, uint32_t) {
    auto *S = static_cast<HookState *>(Ctx);
    ++S->Fences;
    S->SeenAtFence = __atomic_load_n(S->Target, __ATOMIC_RELAXED);
  };
  Hooks.OnStore = [](void *Ctx, void *, uint64_t OldVal, uint64_t NewVal) {
    auto *S = static_cast<HookState *>(Ctx);
    ++S->Stores;
    EXPECT_EQ(OldVal, 0u);
    EXPECT_EQ(NewVal, 5u);
  };
  Rt->setMemoryHooks(Hooks);
  HtmTx Tx(*Rt, 0);
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) { T.store(&X, 5); });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(State.Fences, 1);
  EXPECT_EQ(State.Stores, 1);
  EXPECT_EQ(State.SeenAtFence, 0u) << "fence must precede write-back";
}

TEST_F(HtmTest, MultithreadedCounterIsExact) {
  makeRuntime();
  constexpr unsigned NumThreads = 4;
  constexpr uint64_t PerThread = 2000;
  alignas(64) static uint64_t Counter;
  Counter = 0;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([this, T] {
      HtmTx Tx(*Rt, T);
      for (uint64_t I = 0; I != PerThread; ++I) {
        for (;;) {
          TxResult R = runHtmTx(Tx, [&](HtmTx &Txn) {
            Txn.store(&Counter, Txn.load(&Counter) + 1);
          });
          if (R.Committed)
            break;
        }
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Counter, NumThreads * PerThread);
}

TEST_F(HtmTest, MultithreadedTransfersConserveTotal) {
  makeRuntime();
  constexpr unsigned NumThreads = 4;
  constexpr unsigned NumAccounts = 32;
  constexpr uint64_t PerThread = 1500;
  struct alignas(64) Account {
    uint64_t Balance;
  };
  static Account Accounts[NumAccounts];
  for (auto &A : Accounts)
    A.Balance = 100;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([this, T] {
      HtmTx Tx(*Rt, T);
      Rng R(T + 17);
      for (uint64_t I = 0; I != PerThread; ++I) {
        unsigned From = R.nextBounded(NumAccounts);
        unsigned To = (From + 1 + R.nextBounded(NumAccounts - 1)) %
                      NumAccounts; // Distinct from From.
        for (;;) {
          TxResult Res = runHtmTx(Tx, [&](HtmTx &Txn) {
            uint64_t F = Txn.load(&Accounts[From].Balance);
            uint64_t G = Txn.load(&Accounts[To].Balance);
            Txn.store(&Accounts[From].Balance, F - 1);
            Txn.store(&Accounts[To].Balance, G + 1);
          });
          if (Res.Committed)
            break;
        }
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  uint64_t Total = 0;
  for (auto &A : Accounts)
    Total += A.Balance;
  EXPECT_EQ(Total, 100u * NumAccounts);
}

// Conflict granularity: with word-granular detection, writes to different
// words of one cache line do not conflict; with line granularity they do.
TEST_F(HtmTest, GranularityAblation) {
  Cfg.ConflictGranularityShift = 3; // Word granularity.
  makeRuntime();
  HtmTx TxA(*Rt, 0), TxB(*Rt, 1);
  alignas(64) uint64_t Line[8] = {};
  TxResult RA = runHtmTx(TxA, [&](HtmTx &T) {
    T.load(&Line[0]);
    TxResult RB = runHtmTx(TxB, [&](HtmTx &T2) { T2.store(&Line[7], 1); });
    ASSERT_TRUE(RB.Committed);
    T.store(&Line[1], 2);
  });
  EXPECT_TRUE(RA.Committed) << "word granularity: no false sharing";
}

} // namespace

namespace {

TEST_F(HtmTest, StreamingStoresCommitAtomically) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) static uint64_t Log[8];
  for (auto &W : Log)
    W = 0;
  alignas(64) uint64_t Data = 0;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    T.storeStream(&Log[0], 11);
    T.storeStream(&Log[1], 22);
    T.store(&Data, 33);
    EXPECT_EQ(__atomic_load_n(&Log[0], __ATOMIC_RELAXED), 0u)
        << "streaming stores stay buffered until commit";
  });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(Log[0], 11u);
  EXPECT_EQ(Log[1], 22u);
  EXPECT_EQ(Data, 33u);
}

TEST_F(HtmTest, StreamingStoresDiscardedOnAbort) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) static uint64_t Log[2];
  Log[0] = Log[1] = 7;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    T.storeStream(&Log[0], 99);
    T.abortExplicit(5);
  });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(Log[0], 7u);
}

TEST_F(HtmTest, StreamingStoresConflictLikeNormalStores) {
  makeRuntime();
  HtmTx TxA(*Rt, 0), TxB(*Rt, 1);
  alignas(64) static uint64_t Slot;
  Slot = 0;
  // A streams a write to Slot; before A commits, B reads Slot and
  // commits a dependent write: exactly one order survives. Here B
  // commits first, so A's commit must still succeed (write-write only);
  // then flip it: A commits first while B holds a stale read -> B aborts.
  TxResult RB = runHtmTx(TxB, [&](HtmTx &T) {
    T.load(&Slot);
    TxResult RA = runHtmTx(TxA, [&](HtmTx &T2) {
      T2.storeStream(&Slot, 1);
    });
    ASSERT_TRUE(RA.Committed);
    T.store(&Slot, 2); // Stale snapshot: must fail validation.
  });
  EXPECT_FALSE(RB.Committed);
  EXPECT_EQ(RB.Code, AbortCode::Conflict);
  EXPECT_EQ(Slot, 1u);
}

TEST_F(HtmTest, StreamingStoresCountTowardCapacity) {
  Cfg.MaxWriteSetLines = 2;
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  static uint64_t Lines[8 * 8];
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    for (unsigned I = 0; I != 8; ++I)
      T.storeStream(&Lines[I * 8], I); // One cache line each.
  });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.Code, AbortCode::Capacity);
}

TEST_F(HtmTest, NonTxLoadNeverObservesMidCommit) {
  // A committer that writes two words of an invariant (sum constant)
  // with its write-back raced by non-transactional readers: every read
  // pair must satisfy the invariant thanks to stripe-consistent loads.
  makeRuntime();
  struct alignas(64) Pair {
    uint64_t A;
  };
  // Start high enough that 4000 decrements cannot wrap below zero: a
  // wrapped value is a legitimately committed one and would break the
  // monotonicity bounds below.
  static Pair P[2];
  P[0].A = 4500;
  P[1].A = 4500;
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    HtmTx Tx(*Rt, 0);
    for (int I = 0; I != 4000; ++I) {
      runHtmTx(Tx, [&](HtmTx &T) {
        uint64_t X = T.load(&P[0].A);
        uint64_t Y = T.load(&P[1].A);
        T.store(&P[0].A, X - 1);
        T.store(&P[1].A, Y + 1);
      });
    }
    Stop.store(true);
  });
  uint64_t Violations = 0;
  while (!Stop.load()) {
    // Single-word loads are individually consistent; the sum check needs
    // both, so read them in one consistent snapshot loop.
    uint64_t X = Rt->nonTxLoad(&P[0].A);
    uint64_t Y = Rt->nonTxLoad(&P[1].A);
    // X and Y are from different instants; only check bounds here.
    if (X > 4500 || Y < 4500)
      ++Violations; // Mid-write-back values would break monotonicity.
  }
  Writer.join();
  EXPECT_EQ(Violations, 0u);
  EXPECT_EQ(P[0].A + P[1].A, 9000u);
}

TEST_F(HtmTest, AbortDuringCommitRestoresStripeVersions) {
  // Force a validation failure at commit and check that a subsequent
  // transaction can still use the involved stripes normally.
  makeRuntime();
  HtmTx TxA(*Rt, 0), TxB(*Rt, 1);
  alignas(64) static uint64_t X, Y;
  X = Y = 0;
  TxResult RA = runHtmTx(TxA, [&](HtmTx &T) {
    T.load(&X);
    TxResult RB = runHtmTx(TxB, [&](HtmTx &T2) { T2.store(&X, 1); });
    ASSERT_TRUE(RB.Committed);
    T.store(&Y, 1); // Commit-time validation of X must fail.
  });
  EXPECT_FALSE(RA.Committed);
  TxResult R2 = runHtmTx(TxA, [&](HtmTx &T) {
    T.store(&Y, T.load(&X) + 5);
  });
  EXPECT_TRUE(R2.Committed);
  EXPECT_EQ(Y, 6u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Hot-path regression tests: dense read-set validation and the write-filter
// fast path (see DESIGN.md "hot-path engineering").
//===----------------------------------------------------------------------===//

namespace {

TEST_F(HtmTest, CommitValidationScalesWithReadsPerformed) {
  // The dense occupied-slot index makes commit-time validation O(reads
  // performed): a transaction that read N distinct lines walks exactly N
  // read-set slots, never the full MaxReadSetLines-slot table.
  makeRuntime();
  HtmTx Reader(*Rt, 0), Writer(*Rt, 1);
  constexpr size_t N = 64;
  std::vector<uint64_t> Arena((N + 8) * 8, 0); // 64-byte-strided words.
  uint64_t Sink = 0;
  // A same-stripe collision between the bumper word and a read line would
  // abort the reader; cycle through candidate bumper words until committed
  // (with 2^20 stripes the first candidate virtually always works).
  TxResult R{};
  for (size_t Cand = 0; Cand != 4 && !R.Committed; ++Cand) {
    Reader.resetStats();
    R = runHtmTx(Reader, [&](HtmTx &T) {
      for (size_t I = 0; I != N; ++I)
        Sink += T.load(&Arena[I * 8]);
      // An unrelated commit bumps the global clock so the reader's commit
      // cannot take the nothing-happened shortcut and must validate.
      TxResult W = runHtmTx(
          Writer, [&](HtmTx &T2) { T2.store(&Arena[(N + 1 + Cand) * 8], 1); });
      ASSERT_TRUE(W.Committed);
      T.store(&Arena[N * 8], Sink);
    });
  }
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(Reader.stats().ValidatedReadSlots, N);
  EXPECT_LT(N, Cfg.MaxReadSetLines) << "test must not fill the table";
}

TEST_F(HtmTest, WriteFilterHasNoFalseNegatives) {
  // The 64-bit write-set filter may only skip the write-buffer probe when
  // the word is definitely absent. Saturate it with 200 distinct words
  // (guaranteeing every filter bit collides many times over), then read
  // every word back: each load must return its buffered value.
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  constexpr size_t N = 200;
  std::vector<uint64_t> Arena(N * 8, 0);
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    for (size_t I = 0; I != N; ++I)
      T.store(&Arena[I * 8], I + 1000);
    for (size_t I = 0; I != N; ++I)
      EXPECT_EQ(T.load(&Arena[I * 8]), I + 1000) << "lost buffered write " << I;
  });
  ASSERT_TRUE(R.Committed);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Arena[I * 8], I + 1000);
}

TEST_F(HtmTest, WrittenWordTagRoundTrip) {
  makeRuntime();
  HtmTx Tx(*Rt, 0);
  alignas(64) static uint64_t A, B, C;
  A = B = C = 0;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    EXPECT_EQ(T.writtenWordTag(&A), nullptr); // Never written.
    T.storeTagged(&A, 5, 7);
    uint32_t *TagA = T.writtenWordTag(&A);
    ASSERT_NE(TagA, nullptr);
    EXPECT_EQ(*TagA, 7u);
    T.store(&A, 6); // An untagged overwrite preserves the tag.
    EXPECT_EQ(*T.writtenWordTag(&A), 7u);
    T.store(&B, 1); // Untagged stores are found, with no meaningful tag.
    EXPECT_NE(T.writtenWordTag(&B), nullptr);
    T.storeStream(&C, 9); // Stream writes are not read-your-write.
    EXPECT_EQ(T.writtenWordTag(&C), nullptr);
  });
  ASSERT_TRUE(R.Committed);
  EXPECT_EQ(A, 6u);
  EXPECT_EQ(C, 9u);
}

} // namespace
