//===- tests/HeapTest.cpp - Page-managed durable heap tests ---------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests src/heap/DurableHeap: ref packing, the alloc -> stage -> publish
// pipeline, bitmap alloc/free/reopen properties under random workloads,
// barrier-deferred reuse, and a crash sweep at every pipeline boundary.
// Every fixture runs with both dynamic checkers (PersistCheck persist
// ordering, TxRaceCheck isolation) attached and asserts zero violations.
//
//===----------------------------------------------------------------------===//

#include "baselines/Factory.h"
#include "check/PersistCheck.h"
#include "check/TxRaceCheck.h"
#include "core/Crafty.h"
#include "heap/DurableHeap.h"
#include "recovery/Recovery.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <cstring>
#include <map>

using namespace crafty;
using namespace crafty::heap;

namespace {

/// Deterministic self-validating payload: the first bytes carry the seed,
/// the rest an LCG stream from it, so a payload read back after any crash
/// prefix can be checked against nothing but itself and its length.
std::string payloadFor(uint64_t Seed, size_t Len) {
  std::string P(Len, '\0');
  size_t Head = Len < 8 ? Len : 8;
  std::memcpy(P.data(), &Seed, Head);
  uint64_t X = Seed * 0x9e3779b97f4a7c15ull + Len;
  for (size_t I = Head; I < Len; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    P[I] = (char)(X >> 56);
  }
  return P;
}

bool verifyPayload(const std::string &P) {
  uint64_t Seed = 0;
  std::memcpy(&Seed, P.data(), P.size() < 8 ? P.size() : 8);
  return P == payloadFor(Seed, P.size());
}

/// Crafty over a Tracked pool with both checkers attached, plus a heap
/// and a small carved region of "owning cells" for publish targets.
struct HeapFixture {
  PMemPool Pool;
  HtmRuntime Htm;
  std::unique_ptr<PtmBackend> Backend;
  std::unique_ptr<DurableHeap> Heap;
  uint64_t *Cells = nullptr;
  size_t NumCells;

  explicit HeapFixture(size_t HeapPages = 128, size_t WalSlots = 8,
                       size_t Cells = 8)
      : Pool(poolConfig(HeapPages, WalSlots)), Htm(HtmConfig()),
        NumCells(Cells) {
    BackendOptions O;
    O.NumThreads = 2;
    O.LogEntriesPerThread = 1 << 12;
    O.EnablePersistCheck = true;
    O.EnableTxRaceCheck = true;
    Backend = createBackend(SystemKind::Crafty, Pool, Htm, O);
    Heap = std::make_unique<DurableHeap>(Pool, HeapPages, WalSlots,
                                         /*Attach=*/false);
    this->Cells = static_cast<uint64_t *>(Pool.carve(NumCells * 8));
    static const uint64_t Zero[64] = {};
    Pool.persistDirect(this->Cells, Zero, NumCells * 8);
  }

  static PMemConfig poolConfig(size_t HeapPages, size_t WalSlots) {
    PMemConfig PC;
    PC.PoolBytes = DurableHeap::bytesFor(HeapPages, WalSlots) + (8 << 20);
    PC.Mode = PMemMode::Tracked;
    PC.DrainLatencyNs = 0;
    return PC;
  }

  CraftyRuntime &rt() { return *static_cast<CraftyRuntime *>(Backend.get()); }

  /// Publishes a staged extent into cell \p I: the pipeline's one atomic
  /// commit (pointer swing + displaced-extent free + WAL close).
  void publish(unsigned Tid, size_t I, const HeapStaged &S) {
    runPublish(*Backend, Tid, [&](TxnContext &Tx) {
      uint64_t Old = Tx.load(&Cells[I]);
      if (Old)
        Heap->freeExtentInTx(Tx, Old);
      Tx.store(&Cells[I], S.Ref);
      Heap->closeWalInTx(Tx, S.WalSlot);
    });
  }

  /// Transactionally clears cell \p I and frees its extent.
  void erase(unsigned Tid, size_t I) {
    Backend->run(Tid, [&](TxnContext &Tx) {
      uint64_t Old = Tx.load(&Cells[I]);
      if (Old)
        Heap->freeExtentInTx(Tx, Old);
      Tx.store(&Cells[I], 0);
    });
  }

  /// Persist barrier + deferred-reuse release, as KvShard::persistAck.
  void barrier(unsigned Tid) {
    rt().persistBarrier(Tid);
    Heap->barrierReached();
  }

  uint64_t checkerViolations() {
    uint64_t N = 0;
    if (PersistCheck *PC = rt().persistCheck())
      N += PC->violationCount();
    if (TxRaceCheck *RC = rt().raceCheck())
      N += RC->violationCount();
    return N;
  }

  /// The leak-audit invariant that must hold at rest and after recovery:
  /// bitmap population equals exactly the pages owned by live cells, no
  /// WAL record is left Staged, and every live payload validates.
  void auditConsistent(const char *Where) {
    EXPECT_EQ(Heap->stagedWalRecords(), 0u) << Where;
    uint64_t CellPages = 0;
    for (size_t I = 0; I != NumCells; ++I) {
      if (!Cells[I])
        continue;
      CellPages += DurableHeap::pagesFor(DurableHeap::refLen(Cells[I]));
      std::string V;
      ASSERT_TRUE(Heap->readExtent(Cells[I], V)) << Where;
      EXPECT_TRUE(verifyPayload(V)) << Where << " cell " << I;
    }
    EXPECT_EQ(Heap->allocatedPages(), CellPages) << Where;
  }
};

//===----------------------------------------------------------------------===//
// Statics
//===----------------------------------------------------------------------===//

TEST(HeapStatics, RefPackingAndSizing) {
  uint64_t R = DurableHeap::packRef(7, 60000);
  EXPECT_NE(R, 0u);
  EXPECT_EQ(DurableHeap::refPage(R), 7u);
  EXPECT_EQ(DurableHeap::refLen(R), 60000u);
  // Page 0 must still pack to a nonzero ref (null means "no extent").
  EXPECT_NE(DurableHeap::packRef(0, 0), 0u);
  EXPECT_EQ(DurableHeap::pagesFor(0), 1u);
  EXPECT_EQ(DurableHeap::pagesFor(1), 1u);
  EXPECT_EQ(DurableHeap::pagesFor(4096), 1u);
  EXPECT_EQ(DurableHeap::pagesFor(4097), 2u);
  EXPECT_EQ(DurableHeap::pagesFor(DurableHeap::MaxObjectBytes),
            DurableHeap::MaxExtentPages);
  // bytesFor covers metadata + pages + alignment slack.
  EXPECT_GE(DurableHeap::bytesFor(128, 8), 128u * DurableHeap::PageBytes);
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

TEST(HeapPipeline, AllocPublishReadFreeRoundTrip) {
  HeapFixture F;
  for (size_t Len : {size_t(0), size_t(1), size_t(100), size_t(4096),
                     size_t(4097), size_t(60000),
                     DurableHeap::MaxObjectBytes}) {
    std::string P = payloadFor(Len * 7 + 3, Len);
    HeapStaged S = F.Heap->allocAndStage(*F.Backend, 0, P);
    ASSERT_TRUE(S) << Len;
    EXPECT_EQ(F.Heap->stagedWalRecords(), 1u);
    F.publish(0, 0, S);
    EXPECT_EQ(F.Heap->stagedWalRecords(), 0u);
    std::string Out;
    ASSERT_TRUE(F.Heap->readExtent(F.Cells[0], Out));
    EXPECT_EQ(Out, P) << Len;
    EXPECT_EQ(F.Heap->allocatedPages(), DurableHeap::pagesFor(Len));
    F.barrier(0);
  }
  F.erase(0, 0);
  EXPECT_EQ(F.Heap->allocatedPages(), 0u);
  // Over-max objects are rejected, not split.
  HeapStaged S =
      F.Heap->allocAndStage(*F.Backend, 0,
                            payloadFor(1, DurableHeap::MaxObjectBytes + 1));
  EXPECT_FALSE(S);
  EXPECT_EQ(F.checkerViolations(), 0u);
}

TEST(HeapPipeline, AbandonReturnsExtentAndWalSlot) {
  HeapFixture F(/*HeapPages=*/64, /*WalSlots=*/2);
  HeapStaged A = F.Heap->allocAndStage(*F.Backend, 0, payloadFor(1, 9000));
  HeapStaged B = F.Heap->allocAndStage(*F.Backend, 0, payloadFor(2, 9000));
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  // Both WAL slots staged: a third stage must fail cleanly.
  EXPECT_FALSE(F.Heap->allocAndStage(*F.Backend, 0, payloadFor(3, 10)));
  F.Heap->abandon(*F.Backend, 0, A);
  F.Heap->abandon(*F.Backend, 0, B);
  EXPECT_EQ(F.Heap->stagedWalRecords(), 0u);
  // Abandoned resources stay barrier-deferred, then return.
  F.barrier(0);
  EXPECT_EQ(F.Heap->allocatedPages(), 0u);
  HeapStaged C = F.Heap->allocAndStage(*F.Backend, 0, payloadFor(4, 9000));
  EXPECT_TRUE(C);
  F.Heap->abandon(*F.Backend, 0, C);
  EXPECT_EQ(F.checkerViolations(), 0u);
}

TEST(HeapPipeline, EpochsAdvancePerAllocation) {
  HeapFixture F;
  uint64_t E0 = F.Heap->currentEpoch();
  HeapStaged S = F.Heap->allocAndStage(*F.Backend, 0, payloadFor(1, 10000));
  ASSERT_TRUE(S);
  F.publish(0, 0, S);
  uint64_t Page = DurableHeap::refPage(F.Cells[0]);
  // All three pages of the extent carry the same (new) epoch.
  EXPECT_EQ(F.Heap->pageEpoch(Page), E0);
  EXPECT_EQ(F.Heap->pageEpoch(Page + 1), E0);
  EXPECT_EQ(F.Heap->pageEpoch(Page + 2), E0);
  EXPECT_EQ(F.Heap->currentEpoch(), E0 + 1);
  // The snapshot seam: pages untouched since epoch E keep epoch < E.
  F.barrier(0);
  HeapStaged T = F.Heap->allocAndStage(*F.Backend, 0, payloadFor(2, 100));
  ASSERT_TRUE(T);
  F.publish(0, 1, T);
  EXPECT_EQ(F.Heap->pageEpoch(DurableHeap::refPage(F.Cells[1])), E0 + 1);
  EXPECT_EQ(F.Heap->pageEpoch(Page), E0) << "old extent epoch unchanged";
  EXPECT_EQ(F.checkerViolations(), 0u);
}

/// Barrier-deferred reuse: freed pages must NOT be reallocated before a
/// persist barrier (recovery could roll the free back and resurrect a
/// pointer to clobbered bytes), and must become allocatable after one.
TEST(HeapPipeline, FreedPagesDeferUntilBarrier) {
  // 4 pages total: one 3-page extent leaves no room for a second.
  HeapFixture F(/*HeapPages=*/4, /*WalSlots=*/4);
  HeapStaged S = F.Heap->allocAndStage(*F.Backend, 0, payloadFor(1, 9000));
  ASSERT_TRUE(S);
  F.publish(0, 0, S);
  F.barrier(0);
  F.erase(0, 0);
  // Pages are free in the bitmap but the free is not yet barrier-durable.
  EXPECT_EQ(F.Heap->allocatedPages(), 0u);
  EXPECT_FALSE(F.Heap->allocAndStage(*F.Backend, 0, payloadFor(2, 9000)))
      << "deferred pages reused before the barrier";
  F.barrier(0);
  HeapStaged T = F.Heap->allocAndStage(*F.Backend, 0, payloadFor(2, 9000));
  EXPECT_TRUE(T) << "deferral not lifted by the barrier";
  F.Heap->abandon(*F.Backend, 0, T);
  EXPECT_EQ(F.checkerViolations(), 0u);
}

//===----------------------------------------------------------------------===//
// Bitmap property tests
//===----------------------------------------------------------------------===//

/// Random publish/overwrite/erase rounds against a shadow model: the
/// bitmap population, WAL state and every payload must track the model
/// exactly, including across a crash + reopen of the same image.
TEST(HeapProperty, RandomAllocFreeMatchesShadowAndSurvivesReopen) {
  HeapFixture F(/*HeapPages=*/96, /*WalSlots=*/8, /*Cells=*/12);
  Rng R(42);
  std::map<size_t, std::string> Shadow; // cell -> payload
  uint64_t Seq = 1;
  for (int Op = 0; Op != 300; ++Op) {
    size_t I = R.nextBounded(F.NumCells);
    if (R.chance(1, 4) && Shadow.count(I)) {
      F.erase(0, I);
      Shadow.erase(I);
    } else {
      size_t Len = 1 + R.nextBounded(3 * DurableHeap::PageBytes);
      std::string P = payloadFor(Seq++, Len);
      HeapStaged S = F.Heap->allocAndStage(*F.Backend, 0, P);
      if (!S) {
        // Fragmentation/deferral pressure: a barrier must make progress
        // possible again unless the heap is genuinely full.
        F.barrier(0);
        S = F.Heap->allocAndStage(*F.Backend, 0, P);
      }
      if (!S)
        continue; // Genuinely full; the audit below still must hold.
      F.publish(0, I, S);
      Shadow[I] = std::move(P);
    }
    if (Op % 16 == 0)
      F.barrier(0);
  }
  // Quiesced in-session state matches the shadow exactly.
  uint64_t ShadowPages = 0;
  for (auto &[I, P] : Shadow) {
    ShadowPages += DurableHeap::pagesFor(P.size());
    std::string Out;
    ASSERT_TRUE(F.Heap->readExtent(F.Cells[I], Out));
    EXPECT_EQ(Out, P) << "cell " << I;
  }
  EXPECT_EQ(F.Heap->allocatedPages(), ShadowPages);
  EXPECT_EQ(F.Heap->stagedWalRecords(), 0u);
  EXPECT_EQ(F.checkerViolations(), 0u);

  // Reopen: barrier everything durable, crash, replay logs, reclaim.
  // The same image must reproduce the exact shadow state.
  F.barrier(0);
  F.Pool.crash();
  RecoveryObserver::recoverPool(F.Pool);
  EXPECT_EQ(F.Heap->recoverReclaim(), 0u);
  for (auto &[I, P] : Shadow) {
    std::string Out;
    ASSERT_TRUE(F.Heap->readExtent(F.Cells[I], Out)) << "cell " << I;
    EXPECT_EQ(Out, P) << "cell " << I;
  }
  EXPECT_EQ(F.Heap->allocatedPages(), ShadowPages);
  F.auditConsistent("after reopen");
}

/// Exhaustion behaves as a clean failure: a heap with N pages serves at
/// most N pages, rejects the overflow allocation, and recovers full
/// capacity once everything is freed and barriered.
TEST(HeapProperty, ExhaustionAndFullRecovery) {
  HeapFixture F(/*HeapPages=*/8, /*WalSlots=*/8, /*Cells=*/8);
  std::vector<size_t> Published;
  for (size_t I = 0; I != 8; ++I) {
    HeapStaged S =
        F.Heap->allocAndStage(*F.Backend, 0, payloadFor(I + 1, 4096));
    if (!S)
      break;
    F.publish(0, I, S);
    Published.push_back(I);
  }
  EXPECT_EQ(Published.size(), 8u);
  EXPECT_EQ(F.Heap->allocatedPages(), 8u);
  EXPECT_FALSE(F.Heap->allocAndStage(*F.Backend, 0, payloadFor(99, 1)));
  for (size_t I : Published)
    F.erase(0, I);
  F.barrier(0);
  EXPECT_EQ(F.Heap->allocatedPages(), 0u);
  HeapStaged S = F.Heap->allocAndStage(
      *F.Backend, 0, payloadFor(100, 8 * DurableHeap::PageBytes));
  EXPECT_TRUE(S) << "full capacity not recovered";
  F.Heap->abandon(*F.Backend, 0, S);
  EXPECT_EQ(F.checkerViolations(), 0u);
}

//===----------------------------------------------------------------------===//
// Crash sweep
//===----------------------------------------------------------------------===//

/// One scripted run of the pipeline, broken into micro-steps so a crash
/// can be injected at *every* boundary: after an alloc+stage (WAL record
/// live, extent unpublished), after a publish, after an erase, after an
/// abandon, and after a barrier. Whatever prefix executed, recovery must
/// land on a consistent heap: no staged WAL records, bitmap population
/// exactly the live cells' pages (nothing leaked, nothing double-owned),
/// and every live payload intact -- the undo log may roll unbarriered
/// suffixes back, and barrier-deferred reuse guarantees the resurrected
/// extents still hold their bytes.
TEST(HeapCrash, EveryBoundarySweep) {
  // Script: enough traffic to cover publish-over-old (displaced-extent
  // free), erase, abandon and barrier boundaries, on a heap small enough
  // that reuse pressure is real.
  struct Step {
    enum K { Stage, Publish, Erase, Abandon, Barrier } Kind;
    size_t Cell;   // Stage/Publish/Erase target.
    size_t Len;    // Stage length.
  };
  std::vector<Step> Script;
  uint64_t Seq = 1;
  auto publishTo = [&](size_t Cell, size_t Len) {
    Script.push_back({Step::Stage, Cell, Len});
    Script.push_back({Step::Publish, Cell, 0});
  };
  publishTo(0, 100);
  publishTo(1, 9000);
  Script.push_back({Step::Barrier, 0, 0});
  publishTo(0, 5000); // Overwrite: displaced-extent free inside publish.
  Script.push_back({Step::Stage, 2, 12000});
  Script.push_back({Step::Abandon, 2, 0});
  Script.push_back({Step::Erase, 1, 0});
  Script.push_back({Step::Barrier, 0, 0});
  publishTo(1, 16000);
  publishTo(2, 60000);
  Script.push_back({Step::Erase, 0, 0});
  publishTo(0, 4097);

  for (size_t CrashAt = 0; CrashAt <= Script.size(); ++CrashAt) {
    HeapFixture F(/*HeapPages=*/32, /*WalSlots=*/4, /*Cells=*/4);
    HeapStaged Pending; // The script stages at most one extent at a time.
    for (size_t I = 0; I != CrashAt; ++I) {
      const Step &S = Script[I];
      switch (S.Kind) {
      case Step::Stage:
        Pending =
            F.Heap->allocAndStage(*F.Backend, 0, payloadFor(Seq++, S.Len));
        ASSERT_TRUE(Pending) << "script oversubscribed the heap at " << I;
        break;
      case Step::Publish:
        F.publish(0, S.Cell, Pending);
        Pending = {};
        break;
      case Step::Erase:
        F.erase(0, S.Cell);
        break;
      case Step::Abandon:
        F.Heap->abandon(*F.Backend, 0, Pending);
        Pending = {};
        break;
      case Step::Barrier:
        F.barrier(0);
        break;
      }
    }
    EXPECT_EQ(F.checkerViolations(), 0u) << "crash at " << CrashAt;
    F.Pool.crash();
    RecoveryObserver::recoverPool(F.Pool);
    F.Heap->recoverReclaim();
    F.auditConsistent(
        (std::string("crash at ") + std::to_string(CrashAt)).c_str());
    // Recovery is a fixpoint: a second crash+recover changes nothing.
    uint64_t Pages = F.Heap->allocatedPages();
    F.Pool.crash();
    RecoveryObserver::recoverPool(F.Pool);
    EXPECT_EQ(F.Heap->recoverReclaim(), 0u) << "crash at " << CrashAt;
    EXPECT_EQ(F.Heap->allocatedPages(), Pages) << "crash at " << CrashAt;
  }
}

} // namespace
