//===- tests/PMemTest.cpp - Persistent-memory simulator tests -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmem/PMemAllocator.h"
#include "pmem/PMemPool.h"
#include "support/Clock.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <cstring>

using namespace crafty;

namespace {

PMemConfig trackedConfig(size_t Bytes = 1 << 20) {
  PMemConfig C;
  C.PoolBytes = Bytes;
  C.Mode = PMemMode::Tracked;
  C.DrainLatencyNs = 0;
  return C;
}

uint64_t imageWordAt(PMemPool &Pool, const uint64_t *Addr) {
  std::vector<uint8_t> Img = Pool.imageSnapshot();
  size_t Off = reinterpret_cast<const uint8_t *>(Addr) - Pool.base();
  uint64_t V;
  std::memcpy(&V, Img.data() + Off, sizeof(V));
  return V;
}

TEST(PMemPool, CarveIsAlignedAndDisjoint) {
  PMemPool Pool(trackedConfig());
  void *A = Pool.carve(100);
  void *B = Pool.carve(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(A) % CacheLineBytes, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(B) % CacheLineBytes, 0u);
  EXPECT_GE(reinterpret_cast<uint8_t *>(B),
            reinterpret_cast<uint8_t *>(A) + 100);
  EXPECT_TRUE(Pool.contains(A));
  EXPECT_TRUE(Pool.contains(B));
}

TEST(PMemPool, StoreDoesNotPersistWithoutFlush) {
  PMemPool Pool(trackedConfig());
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  *W = 42;
  Pool.onCommittedStore(W);
  EXPECT_EQ(imageWordAt(Pool, W), 0u);
  EXPECT_TRUE(Pool.isLineDirty(W));
}

TEST(PMemPool, ClwbAlonePersistsNothingUntilDrain) {
  PMemPool Pool(trackedConfig());
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  *W = 42;
  Pool.onCommittedStore(W);
  Pool.clwb(0, W);
  EXPECT_EQ(imageWordAt(Pool, W), 0u);
  Pool.drain(0);
  EXPECT_EQ(imageWordAt(Pool, W), 42u);
  EXPECT_FALSE(Pool.isLineDirty(W));
}

TEST(PMemPool, DrainIsPerThread) {
  PMemPool Pool(trackedConfig());
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  *W = 7;
  Pool.onCommittedStore(W);
  Pool.clwb(0, W);
  Pool.drain(1); // A different thread's drain does not complete ours.
  EXPECT_EQ(imageWordAt(Pool, W), 0u);
  Pool.drain(0);
  EXPECT_EQ(imageWordAt(Pool, W), 7u);
}

TEST(PMemPool, CrashDiscardsUnpersistedStores) {
  PMemPool Pool(trackedConfig());
  auto *A = static_cast<uint64_t *>(Pool.carve(8));
  auto *B = static_cast<uint64_t *>(Pool.carve(8));
  *A = 1;
  Pool.onCommittedStore(A);
  Pool.persist(0, A, 8);
  *B = 2;
  Pool.onCommittedStore(B);
  Pool.crash();
  EXPECT_EQ(*A, 1u) << "persisted store survives";
  EXPECT_EQ(*B, 0u) << "unpersisted store is lost";
}

TEST(PMemPool, EvictionCanPersistDirtyLinesSpontaneously) {
  PMemConfig C = trackedConfig(/*Bytes=*/64 << 10);
  PMemPool Pool(C);
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  *W = 9;
  Pool.onCommittedStore(W);
  // Random probing: iterate until the dirty line is chosen.
  for (int I = 0; I != 1000 && imageWordAt(Pool, W) != 9u; ++I)
    Pool.evictRandomLines(64);
  EXPECT_EQ(imageWordAt(Pool, W), 9u);
  EXPECT_GT(Pool.stats().EvictedLines, 0u);
}

TEST(PMemPool, PersistDirectBypassesCache) {
  PMemPool Pool(trackedConfig());
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  uint64_t V = 1234;
  Pool.persistDirect(W, &V, sizeof(V));
  EXPECT_EQ(*W, 1234u);
  EXPECT_EQ(imageWordAt(Pool, W), 1234u);
}

TEST(PMemPool, FlushEverythingPersistsAllDirtyLines) {
  PMemPool Pool(trackedConfig());
  auto *A = static_cast<uint64_t *>(Pool.carve(8));
  auto *B = static_cast<uint64_t *>(Pool.carve(8));
  *A = 5;
  *B = 6;
  Pool.onCommittedStore(A);
  Pool.onCommittedStore(B);
  Pool.flushEverything();
  EXPECT_EQ(imageWordAt(Pool, A), 5u);
  EXPECT_EQ(imageWordAt(Pool, B), 6u);
}

TEST(PMemPool, StatsCountOperations) {
  PMemPool Pool(trackedConfig());
  auto *W = static_cast<uint64_t *>(Pool.carve(128));
  Pool.clwbRange(0, W, 128); // Two cache lines.
  Pool.drain(0);
  Pool.drain(0); // No pending work: an empty drain.
  PMemStats S = Pool.stats();
  EXPECT_EQ(S.ClwbCalls, 2u);
  EXPECT_EQ(S.LinesScheduled, 2u);
  EXPECT_EQ(S.Drains, 2u);
  EXPECT_EQ(S.EmptyDrains, 1u);
  EXPECT_EQ(S.drainsWithWork(), 1u);
}

TEST(PMemPool, RepeatedClwbsOfOneLineCoalesce) {
  PMemPool Pool(trackedConfig());
  auto *W = static_cast<uint64_t *>(Pool.carve(CacheLineBytes));
  *W = 1;
  Pool.onCommittedStore(W);
  for (int I = 0; I != 100; ++I)
    Pool.clwb(0, W);
  PMemStats S = Pool.stats();
  EXPECT_EQ(S.ClwbCalls, 100u);
  EXPECT_EQ(S.LinesScheduled, 1u) << "repeats within one epoch coalesce";
  Pool.drain(0);
  EXPECT_EQ(imageWordAt(Pool, W), 1u);
  Pool.clwb(0, W); // New epoch: re-arms even with no intervening store.
  EXPECT_EQ(Pool.stats().LinesScheduled, 2u);
}

TEST(PMemPool, LinesScheduledBoundedByDistinctDirtyLines) {
  // PendingLines used to accumulate one entry per clwb call; with the
  // filter, repeats of an unchanged line never schedule new write-backs.
  PMemPool Pool(trackedConfig());
  auto *Base = static_cast<uint64_t *>(Pool.carve(3 * CacheLineBytes));
  const size_t WordsPerLine = CacheLineBytes / sizeof(uint64_t);
  std::vector<uint64_t *> Words;
  for (size_t L = 0; L != 3; ++L)
    for (size_t I = 0; I != 4; ++I) {
      uint64_t *W = Base + L * WordsPerLine + I;
      *W = L * 10 + I + 1;
      Pool.onCommittedStore(W);
      Words.push_back(W);
    }
  for (int Round = 0; Round != 50; ++Round)
    for (uint64_t *W : Words)
      Pool.clwb(0, W);
  PMemStats S = Pool.stats();
  EXPECT_EQ(S.ClwbCalls, 50u * Words.size());
  EXPECT_EQ(S.LinesScheduled, 3u) << "<= distinct dirty lines";
  Pool.drain(0);
  for (uint64_t *W : Words)
    EXPECT_EQ(imageWordAt(Pool, W), *W);
}

TEST(PMemPool, RedirtiedLineRearmsWithinEpoch) {
  PMemPool Pool(trackedConfig());
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  *W = 1;
  Pool.onCommittedStore(W);
  Pool.clwb(0, W);
  EXPECT_EQ(Pool.stats().LinesScheduled, 1u);
  *W = 2;
  Pool.onCommittedStore(W); // Bumps the line's store generation.
  Pool.clwb(0, W);          // Same epoch, but the line changed: re-arm.
  EXPECT_EQ(Pool.stats().LinesScheduled, 2u);
  Pool.clwb(0, W); // Unchanged again: coalesced.
  EXPECT_EQ(Pool.stats().LinesScheduled, 2u);
  Pool.drain(0);
  EXPECT_EQ(imageWordAt(Pool, W), 2u);
}

TEST(PMemPool, EagerWritebackExposesRedirtyAfterClwbHazard) {
  // Hardware may write a line back at any instant between the CLWB and
  // the fence. EagerWriteback models the earliest instant: a store after
  // the clwb is then NOT covered by the next drain, so a crash must be
  // allowed to expose it as unpersisted.
  PMemConfig C = trackedConfig();
  C.EagerWriteback = true;
  PMemPool Pool(C);
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  *W = 1;
  Pool.onCommittedStore(W);
  Pool.clwb(0, W); // Written back now.
  *W = 2;
  Pool.onCommittedStore(W); // Re-dirtied after the clwb.
  Pool.drain(0);            // Covers nothing new.
  Pool.crash();
  EXPECT_EQ(*W, 1u) << "second store lost: no covering re-flush";
}

TEST(PMemPool, EagerWritebackHonorsCoveringReflush) {
  // The dual of the hazard test: a fresh clwb after the re-dirtying
  // store must never be coalesced away (same line, same epoch -- only
  // the store generation distinguishes it).
  PMemConfig C = trackedConfig();
  C.EagerWriteback = true;
  PMemPool Pool(C);
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  *W = 1;
  Pool.onCommittedStore(W);
  Pool.clwb(0, W);
  *W = 2;
  Pool.onCommittedStore(W);
  Pool.clwb(0, W); // Covering re-flush.
  Pool.drain(0);
  Pool.crash();
  EXPECT_EQ(*W, 2u) << "re-flush re-armed despite the coalescing filter";
  EXPECT_EQ(Pool.stats().LinesScheduled, 2u);
}

TEST(PMemPool, LatencyModeChargesDrain) {
  PMemConfig C;
  C.PoolBytes = 1 << 16;
  C.Mode = PMemMode::LatencyOnly;
  C.DrainLatencyNs = 200000; // 0.2 ms, measurable.
  PMemPool Pool(C);
  auto *W = static_cast<uint64_t *>(Pool.carve(8));
  // The write-back's deadline starts at the CLWB (drain waits only for
  // the remainder), so time the clwb+drain pair as a whole.
  uint64_t T0 = monotonicNanos();
  Pool.clwb(0, W);
  Pool.drain(0);
  uint64_t Elapsed = monotonicNanos() - T0;
  EXPECT_GE(Elapsed, 200000u);
  // Drain with no pending flush is free.
  T0 = monotonicNanos();
  Pool.drain(0);
  EXPECT_LT(monotonicNanos() - T0, 200000u);
}

TEST(PMemAllocator, AllocFreeReuse) {
  PMemPool Pool(trackedConfig());
  PMemAllocator Alloc(Pool, 2, 64 << 10);
  void *A = Alloc.alloc(0, 24);
  void *B = Alloc.alloc(0, 24);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(A, B);
  EXPECT_TRUE(Pool.contains(A));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(A) % 8, 0u);
  Alloc.dealloc(0, A);
  void *C = Alloc.alloc(0, 20); // Same size class: reuses A.
  EXPECT_EQ(C, A);
  EXPECT_GT(Alloc.bytesInUse(), 0u);
}

TEST(PMemAllocator, PerThreadArenasAreDisjoint) {
  PMemPool Pool(trackedConfig());
  PMemAllocator Alloc(Pool, 2, 4 << 10);
  void *A = Alloc.alloc(0, 64);
  void *B = Alloc.alloc(1, 64);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_GE(std::abs(reinterpret_cast<intptr_t>(A) -
                     reinterpret_cast<intptr_t>(B)),
            (intptr_t)(4 << 10) - 128);
}

TEST(PMemAllocator, ExhaustionReturnsNull) {
  PMemPool Pool(trackedConfig());
  PMemAllocator Alloc(Pool, 1, 1 << 10);
  void *Last = nullptr;
  int Count = 0;
  while (void *P = Alloc.alloc(0, 128)) {
    Last = P;
    ++Count;
  }
  EXPECT_GT(Count, 0);
  EXPECT_NE(Last, nullptr);
}

} // namespace
