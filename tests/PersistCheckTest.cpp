//===- tests/PersistCheckTest.cpp - PersistCheck checker tests ------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests of the PersistCheck persist-ordering checker: one seeded violation
// per diagnostic class (each must yield exactly one source-tagged report),
// false-positive hardening under adversarial eviction schedules, and
// clean runs of the correct Crafty runtimes with the checker attached.
//
//===----------------------------------------------------------------------===//

#include "check/PersistCheck.h"
#include "core/Crafty.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace crafty;

namespace {

/// Direct-drive harness: a Tracked pool with the checker attached, a
/// registered synthetic undo-log region, and helpers that issue hooked
/// stores the way the runtimes do (write the word, then notify the pool).
struct CheckerHarness {
  PMemPool Pool;
  PersistCheck Check;
  uint64_t *LogSlots;
  uint64_t *Data;

  static constexpr size_t LogEntries = 64;

  explicit CheckerHarness(uint32_t EvictionPerMillion = 0)
      : Pool(poolConfig(EvictionPerMillion)), Check(Pool) {
    LogSlots = static_cast<uint64_t *>(
        Pool.carve(LogEntries * 2 * sizeof(uint64_t)));
    Data = static_cast<uint64_t *>(Pool.carve(1024));
    Check.registerLogRegion(0, LogSlots, LogEntries);
    Check.attach();
  }

  static PMemConfig poolConfig(uint32_t EvictionPerMillion) {
    PMemConfig PC;
    PC.PoolBytes = 1 << 20;
    PC.Mode = PMemMode::Tracked;
    PC.DrainLatencyNs = 0;
    PC.EvictionPerMillion = EvictionPerMillion;
    return PC;
  }

  void store(uint64_t *Addr, uint64_t Val) {
    uint64_t Old = *Addr;
    *Addr = Val;
    Pool.onCommittedStore(Addr, Old, Val);
  }

  /// Stages an undo-log entry covering \p Covered into \p Slot, the way
  /// the runtime's write-back does: AddrWord (the covered address with
  /// pass/old bits in the low bits), then ValWord.
  void stageEntry(size_t Slot, uint64_t *Covered, uint64_t OldVal) {
    store(&LogSlots[2 * Slot],
          reinterpret_cast<uint64_t>(Covered) | ((OldVal & 1) << 1) | 1);
    store(&LogSlots[2 * Slot + 1], (OldVal & ~1ull) | 1);
  }
};

TEST(PersistCheckSeeded, UnflushedStoreAtCommit) {
  CheckerHarness H;
  H.Check.beginTxn(0);
  // A properly covered write: the entry is staged, flushed and drained
  // before the program store...
  H.stageEntry(0, &H.Data[0], 0);
  H.Pool.clwb(0, &H.LogSlots[0]);
  H.Pool.drain(0);
  H.Check.setPhase("seeded");
  H.store(&H.Data[0], 41);
  // ...but the write itself is never flushed before commit.
  H.Check.endTxn();
  EXPECT_EQ(H.Check.count(PersistDiag::UnflushedStore), 1u);
  EXPECT_EQ(H.Check.violationCount(), 1u);
  ASSERT_EQ(H.Check.reports().size(), 1u);
  PersistReport R = H.Check.reports()[0];
  EXPECT_EQ(R.Kind, PersistDiag::UnflushedStore);
  EXPECT_EQ(R.ThreadId, 0u);
  EXPECT_STREQ(R.Phase, "seeded");
  EXPECT_STREQ(R.Event, "commit");
  EXPECT_NE(H.Check.formatReports().find("unflushed-store"),
            std::string::npos);
}

TEST(PersistCheckSeeded, RedundantClwbOfCleanLine) {
  CheckerHarness H;
  H.store(&H.Data[0], 7);
  H.Pool.clwb(0, &H.Data[0]);
  H.Pool.drain(0); // Line persisted: now clean.
  H.Pool.clwb(0, &H.Data[0]); // Redundant.
  H.Pool.drain(0);
  EXPECT_EQ(H.Check.lintCount(), 1u);
  EXPECT_EQ(H.Check.violationCount(), 0u);
  ASSERT_EQ(H.Check.reports().size(), 1u);
  EXPECT_EQ(H.Check.reports()[0].Kind, PersistDiag::RedundantClwb);
  EXPECT_STREQ(H.Check.reports()[0].Event, "clwb");
}

TEST(PersistCheckSeeded, LinesNeverStoredAreNotLinted) {
  CheckerHarness H;
  // Setup writes bypass the instrumented store paths, so flushing a line
  // the checker has never seen stored must not lint.
  H.Pool.clwb(0, &H.Data[8]);
  H.Pool.drain(0);
  EXPECT_EQ(H.Check.lintCount(), 0u);
}

TEST(PersistCheckSeeded, EarlyPersistableWrite) {
  CheckerHarness H;
  H.Check.beginTxn(0);
  // The covering entry is staged and even flush-scheduled, but no drain
  // has persisted it when the program write lands in the cache.
  H.stageEntry(0, &H.Data[0], 0);
  H.Pool.clwb(0, &H.LogSlots[0]);
  H.store(&H.Data[0], 41);
  H.store(&H.Data[0], 42); // Same word again: still one report.
  H.Pool.clwb(0, &H.Data[0]); // Keep commit-time checks quiet.
  H.Check.endTxn();
  EXPECT_EQ(H.Check.count(PersistDiag::EarlyWrite), 1u);
  EXPECT_EQ(H.Check.violationCount(), 1u);
  ASSERT_EQ(H.Check.reports().size(), 1u);
  EXPECT_STREQ(H.Check.reports()[0].Event, "store");
  EXPECT_EQ(H.Check.reports()[0].PoolOffset,
            size_t(reinterpret_cast<uint8_t *>(&H.Data[0]) -
                   H.Pool.base()));
}

TEST(PersistCheckSeeded, UnloggedStoreInTransaction) {
  CheckerHarness H;
  H.Check.beginTxn(0);
  H.store(&H.Data[4], 9); // No undo entry covers this word.
  H.store(&H.Data[4], 10); // Deduplicated: one report per word per scope.
  H.Pool.clwb(0, &H.Data[4]);
  H.Check.endTxn();
  EXPECT_EQ(H.Check.count(PersistDiag::UnloggedStore), 1u);
  EXPECT_EQ(H.Check.violationCount(), 1u);
  ASSERT_EQ(H.Check.reports().size(), 1u);
  EXPECT_EQ(H.Check.reports()[0].Kind, PersistDiag::UnloggedStore);
}

TEST(PersistCheckSeeded, BrokenFlushChain) {
  CheckerHarness H;
  H.store(&H.Data[0], 1);
  H.Pool.clwb(0, &H.Data[0]);
  H.store(&H.Data[0], 2); // Dirtied again after the CLWB...
  H.Pool.drain(0); // ...and drained with no covering re-flush.
  EXPECT_EQ(H.Check.count(PersistDiag::BrokenFlushChain), 1u);
  EXPECT_EQ(H.Check.violationCount(), 1u);
  ASSERT_EQ(H.Check.reports().size(), 1u);
  EXPECT_STREQ(H.Check.reports()[0].Event, "drain");
}

TEST(PersistCheck, ReflushedLateStoreIsNotABrokenChain) {
  CheckerHarness H;
  H.store(&H.Data[0], 1);
  H.Pool.clwb(0, &H.Data[0]);
  H.store(&H.Data[0], 2);
  H.Pool.clwb(0, &H.Data[0]); // Covering re-flush closes the chain.
  H.Pool.drain(0);
  EXPECT_EQ(H.Check.violationCount(), 0u);
}

TEST(PersistCheck, CoalescedDuplicateClwbsStayClean) {
  // A repeated clwb of an unchanged pending line is coalesced by the
  // pool (one scheduled write-back, one observed onClwb); the checker
  // must see a perfectly ordinary flush chain.
  CheckerHarness H;
  H.store(&H.Data[0], 1);
  H.Pool.clwb(0, &H.Data[0]);
  H.Pool.clwb(0, &H.Data[0]);
  H.Pool.drain(0);
  EXPECT_EQ(H.Check.violationCount(), 0u) << H.Check.formatReports();
  EXPECT_EQ(H.Check.lintCount(), 0u) << H.Check.formatReports();
  EXPECT_EQ(H.Pool.stats().LinesScheduled, 1u);
  EXPECT_EQ(H.Pool.stats().ClwbCalls, 2u);
}

TEST(PersistCheckSeeded, OverCoalescedDroppedReflushIsCaught) {
  // An over-coalescing bug would treat the covering re-flush after a
  // re-dirtying store as a duplicate and drop it; model the drop at the
  // call site. The drain must still report a broken flush chain -- the
  // checker guards exactly the condition the filter's store-generation
  // test enforces.
  CheckerHarness H;
  H.store(&H.Data[0], 1);
  H.Pool.clwb(0, &H.Data[0]);
  H.store(&H.Data[0], 2);
  // (A correct discipline issues the re-flush here; this run drops it.)
  H.Pool.drain(0);
  EXPECT_EQ(H.Check.count(PersistDiag::BrokenFlushChain), 1u);
  EXPECT_EQ(H.Check.violationCount(), 1u) << H.Check.formatReports();
  // The same sequence with the re-flush actually issued through the
  // coalescing pool is clean: the filter re-arms on the generation
  // change instead of suppressing the call.
  CheckerHarness H2;
  H2.store(&H2.Data[0], 1);
  H2.Pool.clwb(0, &H2.Data[0]);
  H2.store(&H2.Data[0], 2);
  H2.Pool.clwb(0, &H2.Data[0]);
  H2.Pool.drain(0);
  EXPECT_EQ(H2.Check.violationCount(), 0u) << H2.Check.formatReports();
  EXPECT_EQ(H2.Pool.stats().LinesScheduled, 2u);
}

TEST(PersistCheck, NoOpStoresAreInvisible) {
  // Crafty's Log phase relies on the write buffer merging a store and its
  // rollback into a no-op; the checker must not see it as a program write.
  CheckerHarness H;
  H.Check.beginTxn(0);
  H.store(&H.Data[0], 0); // Old == New == 0.
  H.Check.endTxn();
  EXPECT_EQ(H.Check.violationCount(), 0u);
}

TEST(PersistCheck, EvictionCleanedLinesDoNotFalsePositive) {
  // Always-evict pool: every committed store persists spontaneously, the
  // most adversarial early-persist schedule possible. No diagnostic class
  // may misfire.
  CheckerHarness H(/*EvictionPerMillion=*/1000000);
  H.Check.beginTxn(0);
  H.stageEntry(0, &H.Data[0], 0); // Entry persists via eviction at once.
  H.store(&H.Data[0], 41); // Covered and entry persisted: no early-write.
  // Eviction already persisted the write: no unflushed-store at commit
  // even without a CLWB.
  H.Check.endTxn();
  // Flushing a line the evictor cleaned is not a lint: software cannot
  // know the hardware already wrote it back.
  H.Pool.clwb(0, &H.Data[0]);
  H.Pool.drain(0);
  EXPECT_EQ(H.Check.violationCount(), 0u) << H.Check.formatReports();
  EXPECT_EQ(H.Check.lintCount(), 0u) << H.Check.formatReports();
}

TEST(PersistCheck, PersistBetweenEntryWordsDoesNotCountAsCovered) {
  // A persist that catches only the entry's AddrWord (a torn entry) must
  // not count as "entry persisted": the covered write stays early until
  // both entry words are durable.
  CheckerHarness H;
  H.Check.beginTxn(0);
  H.store(&H.LogSlots[0],
          reinterpret_cast<uint64_t>(&H.Data[0]) | 1); // AddrWord.
  H.Pool.flushEverything(); // Persists the torn (AddrWord-only) entry.
  H.store(&H.LogSlots[1], 1); // ValWord lands after the persist.
  H.store(&H.Data[0], 5); // Entry not fully persisted -> early write.
  H.Pool.clwb(0, &H.Data[0]);
  H.Pool.clwb(0, &H.LogSlots[1]); // Keep commit-time checks quiet.
  H.Check.endTxn();
  EXPECT_EQ(H.Check.count(PersistDiag::EarlyWrite), 1u);
  EXPECT_EQ(H.Check.violationCount(), 1u) << H.Check.formatReports();
}

TEST(PersistCheck, CountersSurviveCrashAndReset) {
  CheckerHarness H;
  H.Check.beginTxn(0);
  H.store(&H.Data[4], 9);
  H.Pool.clwb(0, &H.Data[4]);
  H.Check.endTxn();
  EXPECT_EQ(H.Check.violationCount(), 1u);
  H.Pool.crash();
  EXPECT_EQ(H.Check.violationCount(), 1u); // Diagnostics survive.
  H.Check.clearReports();
  EXPECT_EQ(H.Check.violationCount(), 0u);
  EXPECT_TRUE(H.Check.reports().empty());
}

//===----------------------------------------------------------------------===//
// Full-runtime clean runs: the correct Crafty flows, driven hard, must
// report zero violations under any eviction schedule.
//===----------------------------------------------------------------------===//

struct RuntimeHarness {
  PMemPool Pool;
  HtmRuntime Htm;
  CraftyRuntime Rt;

  RuntimeHarness(CraftyConfig CC, uint32_t EvictionPerMillion)
      : Pool(poolConfig(EvictionPerMillion)), Htm(), Rt(Pool, Htm, CC) {}

  static PMemConfig poolConfig(uint32_t EvictionPerMillion) {
    PMemConfig PC;
    PC.PoolBytes = 8 << 20;
    PC.Mode = PMemMode::Tracked;
    PC.DrainLatencyNs = 0;
    PC.EvictionPerMillion = EvictionPerMillion;
    return PC;
  }

  static CraftyConfig runtimeConfig(unsigned Threads) {
    CraftyConfig C;
    C.NumThreads = Threads;
    C.LogEntriesPerThread = 1 << 10;
    C.EnablePersistCheck = true;
    return C;
  }
};

TEST(PersistCheckRuntime, ThreadSafeCleanUnderSeededEvictor) {
  RuntimeHarness H(RuntimeHarness::runtimeConfig(4),
                   /*EvictionPerMillion=*/250000);
  auto *Data = static_cast<uint64_t *>(H.Rt.carve(4 * 64));
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != 4; ++T) {
    Workers.emplace_back([&, T] {
      uint64_t *Mine = Data + T * 8;
      for (uint64_t I = 0; I != 400; ++I) {
        H.Rt.run(T, [&](TxnContext &Tx) {
          Tx.store(&Mine[0], I);
          Tx.store(&Mine[1], Tx.load(&Mine[0]) * 3);
          Tx.store(&Mine[2], I ^ 0xabcd);
        });
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  PersistCheck *PC = H.Rt.persistCheck();
  ASSERT_NE(PC, nullptr);
  EXPECT_EQ(PC->violationCount(), 0u) << PC->formatReports();
}

TEST(PersistCheckRuntime, ChunkedModeCleanUnderSeededEvictor) {
  CraftyConfig C = RuntimeHarness::runtimeConfig(1);
  C.Mode = CraftyMode::ThreadUnsafe;
  C.InitialChunkK = 4; // Exercise chunk boundaries and the k = 1 path.
  RuntimeHarness H(C, /*EvictionPerMillion=*/250000);
  auto *Data = static_cast<uint64_t *>(H.Rt.carve(1024));
  for (uint64_t I = 0; I != 100; ++I) {
    H.Rt.run(0, [&](TxnContext &Tx) {
      for (size_t W = 0; W != 10; ++W)
        Tx.store(&Data[W], I + W);
    });
  }
  PersistCheck *PC = H.Rt.persistCheck();
  ASSERT_NE(PC, nullptr);
  EXPECT_EQ(PC->violationCount(), 0u) << PC->formatReports();
}

TEST(PersistCheckRuntime, VariantsAndPersistBarrierClean) {
  for (bool DisableRedo : {false, true}) {
    CraftyConfig C = RuntimeHarness::runtimeConfig(2);
    C.DisableRedo = DisableRedo;
    RuntimeHarness H(C, /*EvictionPerMillion=*/100000);
    auto *Data = static_cast<uint64_t *>(H.Rt.carve(256));
    for (uint64_t I = 0; I != 50; ++I) {
      H.Rt.run(0, [&](TxnContext &Tx) { Tx.store(&Data[0], I); });
      H.Rt.run(1, [&](TxnContext &Tx) { Tx.store(&Data[8], I); });
    }
    H.Rt.persistBarrier(0);
    PersistCheck *PC = H.Rt.persistCheck();
    ASSERT_NE(PC, nullptr);
    EXPECT_EQ(PC->violationCount(), 0u) << PC->formatReports();
  }
}

TEST(PersistCheckRuntime, DisabledCheckerCostsNothingAndReportsNothing) {
  CraftyConfig C = RuntimeHarness::runtimeConfig(1);
  C.EnablePersistCheck = false;
  RuntimeHarness H(C, /*EvictionPerMillion=*/0);
  EXPECT_EQ(H.Rt.persistCheck(), nullptr);
  EXPECT_EQ(H.Pool.observer(), nullptr);
  auto *Data = static_cast<uint64_t *>(H.Rt.carve(64));
  H.Rt.run(0, [&](TxnContext &Tx) { Tx.store(&Data[0], 1); });
  EXPECT_EQ(Data[0], 1u);
}

} // namespace
