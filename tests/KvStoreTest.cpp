//===- tests/KvStoreTest.cpp - KV service tests ---------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests the sharded durable KV service (src/kv/): engine semantics,
// recoverable full/too-big conditions, the wire protocol's incremental
// parser, a crash-property sweep (crash at every operation boundary on a
// multi-shard store with cache-eviction chaos and both dynamic checkers
// attached), file-backed reopen across store instances, and an in-process
// server/client smoke over loopback TCP.
//
//===----------------------------------------------------------------------===//

#include "kv/KvClient.h"
#include "kv/KvServer.h"
#include "kv/KvShard.h"
#include "kv/KvStore.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <optional>
#include <signal.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace crafty;
using namespace crafty::kv;

namespace {

KvConfig smallConfig(unsigned Shards = 2) {
  KvConfig KC;
  KC.NumShards = Shards;
  KC.SlotsPerShard = 256;
  KC.MaxValueBytes = 120;
  KC.ThreadsPerShard = 2;
  KC.LogEntriesPerThread = 1 << 12;
  KC.Mode = PMemMode::Tracked;
  KC.DrainLatencyNs = 0;
  return KC;
}

std::string valueFor(uint64_t Key, uint64_t Seq) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "value-%llu-%llu-",
                (unsigned long long)Key, (unsigned long long)Seq);
  std::string V = Buf;
  V.append(32 + Key % 29, (char)('a' + Seq % 26));
  return V;
}

/// smallConfig plus a durable page heap: values above MaxValueBytes (120)
/// route through the heap up to its 64 KiB extent cap.
KvConfig heapConfig(unsigned Shards = 2) {
  KvConfig KC = smallConfig(Shards);
  KC.HeapPages = 256;
  // WAL slots bound how many extents can be staged at once; a batched
  // cycle pre-stages up to BatchTxnLimit values per chunk, so keep the
  // default headroom.
  KC.HeapWalSlots = 64;
  return KC;
}

/// valueFor stretched to exactly \p Len bytes (prefix identifies
/// key/seq; tail is a deterministic pad), for heap-sized payloads.
std::string bigValueFor(uint64_t Key, uint64_t Seq, size_t Len) {
  std::string V = valueFor(Key, Seq);
  if (V.size() > Len)
    V.resize(Len);
  while (V.size() < Len)
    V.push_back((char)('A' + (V.size() * 31 + Key + Seq) % 26));
  return V;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

TEST(KvStore, BasicOps) {
  KvStore Store(smallConfig());
  std::string Out;

  EXPECT_EQ(Store.get(0, 7, Out), KvStatus::NotFound);
  EXPECT_EQ(Store.set(0, 7, "hello"), KvStatus::Ok);
  EXPECT_EQ(Store.get(0, 7, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "hello");

  // Overwrite, including size changes in both directions.
  EXPECT_EQ(Store.set(0, 7, "a much longer value than before"),
            KvStatus::Ok);
  EXPECT_EQ(Store.get(0, 7, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "a much longer value than before");
  EXPECT_EQ(Store.set(0, 7, ""), KvStatus::Ok);
  EXPECT_EQ(Store.get(0, 7, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "");

  EXPECT_EQ(Store.del(0, 7), KvStatus::Ok);
  EXPECT_EQ(Store.del(0, 7), KvStatus::NotFound);
  EXPECT_EQ(Store.get(0, 7, Out), KvStatus::NotFound);

  // CAS.
  EXPECT_EQ(Store.cas(0, 9, "x", "y"), KvStatus::NotFound);
  EXPECT_EQ(Store.set(0, 9, "x"), KvStatus::Ok);
  EXPECT_EQ(Store.cas(0, 9, "wrong", "y"), KvStatus::Mismatch);
  EXPECT_EQ(Store.cas(0, 9, "x", "y"), KvStatus::Ok);
  EXPECT_EQ(Store.get(0, 9, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "y");

  // Values over MaxValueBytes are rejected recoverably.
  std::string Huge(200, 'z');
  EXPECT_EQ(Store.set(0, 9, Huge), KvStatus::TooBig);
  EXPECT_EQ(Store.get(0, 9, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "y"); // Unchanged.
}

TEST(KvStore, MgetAndBatchedMset) {
  KvStore Store(smallConfig());
  std::vector<KvBatchItem> Items;
  std::vector<std::string> Vals;
  for (uint64_t K = 0; K != 100; ++K)
    Vals.push_back(valueFor(K, 1));
  for (uint64_t K = 0; K != 100; ++K)
    Items.push_back(KvBatchItem{K, Vals[K], KvStatus::Err});
  Store.msetBatch(0, Items);
  for (const KvBatchItem &Item : Items)
    EXPECT_EQ(Item.Status, KvStatus::Ok);

  std::vector<uint64_t> Keys;
  for (uint64_t K = 0; K != 110; ++K)
    Keys.push_back(K);
  std::vector<KvResult> Results = Store.mget(0, Keys);
  ASSERT_EQ(Results.size(), Keys.size());
  for (uint64_t K = 0; K != 100; ++K) {
    EXPECT_EQ(Results[K].Status, KvStatus::Ok);
    EXPECT_EQ(Results[K].Value, Vals[K]);
  }
  for (uint64_t K = 100; K != 110; ++K)
    EXPECT_EQ(Results[K].Status, KvStatus::NotFound);

  KvOpStats Stats = Store.opStats();
  EXPECT_EQ(Stats.BatchedSets, 100u);
}

TEST(KvStore, FullShardIsRecoverable) {
  KvConfig KC = smallConfig(1);
  KC.SlotsPerShard = 16; // Rounds to 16 cells/slots.
  KvStore Store(KC);
  // Fill beyond capacity: the first failures must be ERR full, and the
  // store must stay fully usable afterwards.
  unsigned Stored = 0, Full = 0;
  for (uint64_t K = 0; K != 32; ++K) {
    KvStatus St = Store.set(0, K, "v");
    if (St == KvStatus::Ok)
      ++Stored;
    else if (St == KvStatus::Full)
      ++Full;
  }
  EXPECT_EQ(Stored, 16u);
  EXPECT_EQ(Full, 16u);
  // Deleting frees capacity again; the freed cell is reused.
  EXPECT_EQ(Store.del(0, 0), KvStatus::Ok);
  EXPECT_EQ(Store.set(0, 100, "w"), KvStatus::Ok);
  std::string Out;
  EXPECT_EQ(Store.get(0, 100, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "w");
}

TEST(KvStore, ShardRoutingCoversAllShards) {
  KvStore Store(smallConfig(4));
  std::vector<unsigned> Hits(4, 0);
  for (uint64_t K = 0; K != 1000; ++K)
    ++Hits[Store.shardOf(K)];
  for (unsigned S = 0; S != 4; ++S)
    EXPECT_GT(Hits[S], 100u) << "shard " << S << " starved";
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(KvProtocol, ParsesIncrementally) {
  std::string Wire;
  appendSet(Wire, 42, "hello\nworld"); // Embedded newline in the value.
  appendGet(Wire, 42);

  // Every split point of the byte stream must frame identically.
  for (size_t Split = 0; Split != Wire.size(); ++Split) {
    std::string Buf = Wire.substr(0, Split);
    KvRequest Req;
    ParseResult R = parseRequest(Buf, Req);
    if (R.St == ParseResult::Ok) {
      ASSERT_EQ(Req.Op, KvOp::Set);
      EXPECT_EQ(Req.Key, 42u);
      EXPECT_EQ(Req.Val, "hello\nworld");
    } else {
      EXPECT_EQ(R.St, ParseResult::NeedMore);
    }
  }
  KvRequest Req;
  ParseResult R = parseRequest(Wire, Req);
  ASSERT_EQ(R.St, ParseResult::Ok);
  EXPECT_EQ(Req.Op, KvOp::Set);
  ParseResult R2 =
      parseRequest(std::string_view(Wire).substr(R.Consumed), Req);
  ASSERT_EQ(R2.St, ParseResult::Ok);
  EXPECT_EQ(Req.Op, KvOp::Get);
  EXPECT_EQ(R.Consumed + R2.Consumed, Wire.size());
}

TEST(KvProtocol, ParsesMultiKeyRequests) {
  std::string Wire;
  appendMset(Wire, {{1, "a"}, {2, "bb"}, {3, std::string(100, 'c')}});
  appendMget(Wire, {1, 2, 3});
  KvRequest Req;
  ParseResult R = parseRequest(Wire, Req);
  ASSERT_EQ(R.St, ParseResult::Ok);
  ASSERT_EQ(Req.Op, KvOp::Mset);
  ASSERT_EQ(Req.Pairs.size(), 3u);
  EXPECT_EQ(Req.Pairs[2].second, std::string(100, 'c'));
  ParseResult R2 =
      parseRequest(std::string_view(Wire).substr(R.Consumed), Req);
  ASSERT_EQ(R2.St, ParseResult::Ok);
  ASSERT_EQ(Req.Op, KvOp::Mget);
  EXPECT_EQ(Req.Keys, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(KvProtocol, RejectsMalformedRequests) {
  KvRequest Req;
  for (const char *Bad :
       {"BOGUS 1\n", "GET\n", "GET notakey\n", "SET 1\n", "SET 1 5\nab\n",
        "MGET 2 7\n", "CAS 1 2\n"}) {
    ParseResult R = parseRequest(Bad, Req);
    EXPECT_NE(R.St, ParseResult::Ok) << Bad;
  }
  // A SET whose payload terminator is wrong is malformed, not NeedMore.
  EXPECT_EQ(parseRequest("SET 1 2\nabX", Req).St, ParseResult::Malformed);
}

//===----------------------------------------------------------------------===//
// Crash-property sweep
//===----------------------------------------------------------------------===//

/// One scripted operation of the crash sweep.
struct SweepOp {
  uint64_t Key;
  bool IsDelete;
  std::string Val;
};

std::vector<SweepOp> sweepScript(size_t N) {
  std::vector<SweepOp> Ops;
  for (size_t I = 0; I != N; ++I) {
    SweepOp Op;
    Op.Key = (I * 7) % 48;
    Op.IsDelete = I % 5 == 4;
    if (!Op.IsDelete)
      Op.Val = valueFor(Op.Key, I);
    Ops.push_back(std::move(Op));
  }
  return Ops;
}

/// Runs the script's first \p RunOps operations, with a persist barrier
/// after every \p AckEvery-th op. Returns the index one past the last
/// op covered by a barrier (everything before it is durable).
size_t runScript(KvStore &Store, const std::vector<SweepOp> &Ops,
                 size_t RunOps, size_t AckEvery) {
  size_t Durable = 0;
  for (size_t I = 0; I != RunOps; ++I) {
    const SweepOp &Op = Ops[I];
    if (Op.IsDelete)
      Store.del(0, Op.Key);
    else
      EXPECT_EQ(Store.set(0, Op.Key, Op.Val), KvStatus::Ok);
    if (I % AckEvery == AckEvery - 1) {
      Store.persistAck(0);
      Durable = I + 1;
    }
  }
  return Durable;
}

/// Audits a recovered store: each key must hold the state left by some
/// script prefix that includes every durable op (acked writes survive;
/// the undurable tail may roll back atomically per key, but values are
/// never torn or fabricated).
void auditRecovered(KvStore &Store, const std::vector<SweepOp> &Ops,
                    size_t RunOps, size_t Durable) {
  // Per-key state timeline: state after each of the key's ops.
  std::map<uint64_t, std::vector<std::pair<size_t, std::optional<std::string>>>>
      Timeline;
  for (size_t I = 0; I != RunOps; ++I) {
    const SweepOp &Op = Ops[I];
    Timeline[Op.Key].emplace_back(
        I, Op.IsDelete ? std::nullopt
                       : std::optional<std::string>(Op.Val));
  }
  for (const auto &[Key, States] : Timeline) {
    std::string Got;
    bool Present = Store.shard(Store.shardOf(Key)).peek(Key, Got);
    std::optional<std::string> Actual =
        Present ? std::optional<std::string>(Got) : std::nullopt;
    // Acceptable states: initial absence if no op is durable for this
    // key, or the state after any op at index >= the key's last durable
    // op (per-key rollback can only drop an undurable suffix).
    size_t FirstAcceptable = 0;
    bool InitialOk = true;
    for (size_t J = 0; J != States.size(); ++J)
      if (States[J].first < Durable) {
        FirstAcceptable = J;
        InitialOk = false;
      }
    bool Ok = InitialOk && !Actual.has_value();
    for (size_t J = FirstAcceptable; J != States.size() && !Ok; ++J)
      Ok = States[J].second == Actual;
    EXPECT_TRUE(Ok) << "key " << Key << " holds "
                    << (Actual ? *Actual : std::string("<absent>"))
                    << " which matches no acceptable state (durable up to "
                    << Durable << ")";
  }
}

TEST(KvCrash, SweepCrashAtEveryOpBoundary) {
  const std::vector<SweepOp> Ops = sweepScript(60);
  for (size_t CrashAt = 1; CrashAt <= Ops.size(); ++CrashAt) {
    KvConfig KC = smallConfig(2);
    KC.EnablePersistCheck = true;
    KC.EnableTxRaceCheck = true;
    KC.EvictionPerMillion = 20000; // Cache-eviction chaos.
    KC.EvictionSeed = 77 + CrashAt;
    KvStore Store(KC);
    size_t Durable = runScript(Store, Ops, CrashAt, /*AckEvery=*/8);

    Store.simulateCrash();
    Store.recover();
    auditRecovered(Store, Ops, CrashAt, Durable);
    EXPECT_EQ(Store.checkerViolations(), 0u) << "crash at " << CrashAt;

    // Recovery must be idempotent: a second crash with no new work
    // recovers to the identical state.
    std::map<uint64_t, std::optional<std::string>> Before;
    for (uint64_t Key = 0; Key != 48; ++Key) {
      std::string V;
      Before[Key] = Store.shard(Store.shardOf(Key)).peek(Key, V)
                        ? std::optional<std::string>(V)
                        : std::nullopt;
    }
    Store.simulateCrash();
    Store.recover();
    for (uint64_t Key = 0; Key != 48; ++Key) {
      std::string V;
      std::optional<std::string> Now =
          Store.shard(Store.shardOf(Key)).peek(Key, V)
              ? std::optional<std::string>(V)
              : std::nullopt;
      EXPECT_EQ(Now, Before[Key]) << "fixpoint broken at key " << Key;
    }

    // The recovered store must remain fully operational.
    EXPECT_EQ(Store.set(0, 1000, "post-recovery"), KvStatus::Ok);
    std::string Out;
    EXPECT_EQ(Store.get(0, 1000, Out), KvStatus::Ok);
    EXPECT_EQ(Out, "post-recovery");
    EXPECT_EQ(Store.checkerViolations(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// File-backed reopen
//===----------------------------------------------------------------------===//

TEST(KvCrash, FileBackedStoreSurvivesReopen) {
  char Tmpl[] = "/tmp/kv_store_test.XXXXXX";
  ASSERT_NE(mkdtemp(Tmpl), nullptr);
  std::string Dir = Tmpl;

  KvConfig KC = smallConfig(2);
  KC.DataDir = Dir;
  {
    KvStore Store(KC);
    EXPECT_FALSE(Store.recoveredOnOpen());
    for (uint64_t K = 0; K != 40; ++K)
      EXPECT_EQ(Store.set(0, K, valueFor(K, 1)), KvStatus::Ok);
    Store.persistAll();
  }
  {
    // Second generation: attaches to the images, replays, serves, and
    // layers more writes on top.
    KvStore Store(KC);
    EXPECT_TRUE(Store.recoveredOnOpen());
    std::string Out;
    for (uint64_t K = 0; K != 40; ++K) {
      ASSERT_EQ(Store.get(0, K, Out), KvStatus::Ok) << "lost key " << K;
      EXPECT_EQ(Out, valueFor(K, 1));
    }
    for (uint64_t K = 40; K != 60; ++K)
      EXPECT_EQ(Store.set(0, K, valueFor(K, 2)), KvStatus::Ok);
    Store.persistAll();
  }
  {
    KvStore Store(KC);
    EXPECT_TRUE(Store.recoveredOnOpen());
    std::string Out;
    for (uint64_t K = 0; K != 40; ++K) {
      ASSERT_EQ(Store.get(0, K, Out), KvStatus::Ok);
      EXPECT_EQ(Out, valueFor(K, 1));
    }
    for (uint64_t K = 40; K != 60; ++K) {
      ASSERT_EQ(Store.get(0, K, Out), KvStatus::Ok);
      EXPECT_EQ(Out, valueFor(K, 2));
    }
  }
  for (unsigned S = 0; S != KC.NumShards; ++S)
    std::remove((Dir + "/shard" + std::to_string(S) + ".img").c_str());
  std::remove(Dir.c_str());
}

//===----------------------------------------------------------------------===//
// Durable page heap (large values)
//===----------------------------------------------------------------------===//

/// Values from 1 byte to the 64 KiB extent cap round-trip through the
/// store, crossing the inline/heap boundary in both directions, with the
/// heap audit (bitmap population == live heap cells, no staged WAL
/// records) holding at every rest point.
TEST(KvHeap, LargeValuesRoundTripThroughHeap) {
  KvConfig KC = heapConfig(2);
  KC.EnablePersistCheck = true;
  KC.EnableTxRaceCheck = true;
  KvStore Store(KC);
  EXPECT_EQ(KC.activeValueLimit(), heap::DurableHeap::MaxObjectBytes);

  std::string Out;
  const std::vector<size_t> Sizes = {1,    120,  121,   4096,
                                     4097, 60000, 65536};
  for (size_t I = 0; I != Sizes.size(); ++I) {
    std::string V = bigValueFor(I, 1, Sizes[I]);
    ASSERT_EQ(Store.set(0, I, V), KvStatus::Ok) << Sizes[I];
    ASSERT_EQ(Store.get(0, I, Out), KvStatus::Ok) << Sizes[I];
    EXPECT_EQ(Out, V) << Sizes[I];
  }
  KvHeapAudit A = Store.auditHeap();
  EXPECT_TRUE(A.Enabled);
  EXPECT_TRUE(A.consistent()) << A.BitmapPages << " bitmap vs "
                              << A.LivePages << " live";
  EXPECT_GT(A.LivePages, 0u);

  // Beyond the extent cap: typed rejection, value untouched.
  EXPECT_EQ(Store.set(0, 6, std::string(65537, 'z')), KvStatus::TooBig);
  ASSERT_EQ(Store.get(0, 6, Out), KvStatus::Ok);
  EXPECT_EQ(Out, bigValueFor(6, 1, 65536));

  // CAS against a heap value, replacing it with another heap value.
  std::string New = bigValueFor(6, 2, 30000);
  EXPECT_EQ(Store.cas(0, 6, "wrong", New), KvStatus::Mismatch);
  EXPECT_EQ(Store.cas(0, 6, bigValueFor(6, 1, 65536), New), KvStatus::Ok);
  ASSERT_EQ(Store.get(0, 6, Out), KvStatus::Ok);
  EXPECT_EQ(Out, New);

  // Overwrite transitions: heap -> inline frees the extent, inline ->
  // heap allocates one; DEL frees.
  ASSERT_EQ(Store.set(0, 5, "tiny"), KvStatus::Ok); // 60000 -> inline.
  ASSERT_EQ(Store.get(0, 5, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "tiny");
  ASSERT_EQ(Store.set(0, 0, bigValueFor(0, 3, 8000)), KvStatus::Ok);
  for (size_t I = 0; I != Sizes.size(); ++I)
    EXPECT_EQ(Store.del(0, I), KvStatus::Ok);
  A = Store.auditHeap();
  EXPECT_TRUE(A.consistent());
  EXPECT_EQ(A.LivePages, 0u);
  EXPECT_EQ(Store.checkerViolations(), 0u);
}

/// The batched MSET pipeline routes heap-sized values through per-chunk
/// pre-staging (allocAndStage before the transaction, publish inside it,
/// abandon on failure) without leaking.
TEST(KvHeap, BatchedMsetWithHeapValues) {
  KvConfig KC = heapConfig(2);
  KC.EnablePersistCheck = true;
  KC.EnableTxRaceCheck = true;
  KvStore Store(KC);
  // KvBatchItem::Val is a view; the strings must outlive the batch call.
  std::vector<std::string> Vals;
  for (uint64_t K = 0; K != 40; ++K) {
    size_t Len = K % 3 == 0 ? 80 : (K % 3 == 1 ? 5000 : 20000);
    Vals.push_back(bigValueFor(K, 1, Len));
  }
  std::vector<KvBatchItem> Items;
  for (uint64_t K = 0; K != 40; ++K)
    Items.push_back(KvBatchItem{K, Vals[K], KvStatus::Err});
  Store.msetBatch(0, Items);
  for (const KvBatchItem &Item : Items)
    EXPECT_EQ(Item.Status, KvStatus::Ok);
  std::string Out;
  for (uint64_t K = 0; K != 40; ++K) {
    size_t Len = K % 3 == 0 ? 80 : (K % 3 == 1 ? 5000 : 20000);
    ASSERT_EQ(Store.get(0, K, Out), KvStatus::Ok) << K;
    EXPECT_EQ(Out, bigValueFor(K, 1, Len)) << K;
  }
  KvHeapAudit A = Store.auditHeap();
  EXPECT_TRUE(A.consistent());
  EXPECT_EQ(Store.checkerViolations(), 0u);
}

/// The heap-enabled twin of SweepCrashAtEveryOpBoundary: a script mixing
/// inline and heap-sized values (so the stage -> publish -> free pipeline
/// is live at most boundaries) crashes at every op boundary; after
/// recovery the ledger audit must pass, the heap audit must balance
/// (zero leaked pages, zero staged WAL records), and both checkers must
/// stay silent.
TEST(KvHeapCrash, SweepCrashAtEveryOpBoundaryWithHeapValues) {
  std::vector<SweepOp> Ops;
  for (size_t I = 0; I != 36; ++I) {
    SweepOp Op;
    Op.Key = (I * 5) % 12;
    Op.IsDelete = I % 6 == 5;
    if (!Op.IsDelete) {
      size_t Len = I % 3 == 0 ? 80 : (I % 3 == 1 ? 5000 : 20000);
      Op.Val = bigValueFor(Op.Key, I, Len);
    }
    Ops.push_back(std::move(Op));
  }
  for (size_t CrashAt = 1; CrashAt <= Ops.size(); ++CrashAt) {
    KvConfig KC = heapConfig(2);
    KC.EnablePersistCheck = true;
    KC.EnableTxRaceCheck = true;
    KC.EvictionPerMillion = 20000;
    KC.EvictionSeed = 31 + CrashAt;
    KvStore Store(KC);
    size_t Durable = runScript(Store, Ops, CrashAt, /*AckEvery=*/8);

    Store.simulateCrash();
    Store.recover();
    auditRecovered(Store, Ops, CrashAt, Durable);
    KvHeapAudit A = Store.auditHeap();
    EXPECT_TRUE(A.consistent())
        << "crash at " << CrashAt << ": " << A.BitmapPages
        << " bitmap pages vs " << A.LivePages << " live, " << A.StagedWal
        << " staged WAL records";
    EXPECT_EQ(Store.checkerViolations(), 0u) << "crash at " << CrashAt;

    // The recovered store still serves heap-sized values.
    std::string Big = bigValueFor(1000, CrashAt, 30000), Out;
    EXPECT_EQ(Store.set(0, 1000, Big), KvStatus::Ok);
    ASSERT_EQ(Store.get(0, 1000, Out), KvStatus::Ok);
    EXPECT_EQ(Out, Big);
    EXPECT_EQ(Store.checkerViolations(), 0u);
  }
}

/// Heap values persist across process-style reopens of the same images:
/// three store generations layer writes, overwrites and deletes of
/// 64 KiB-class values, each generation auditing zero leaked pages.
TEST(KvHeapCrash, FileBackedHeapValuesSurviveReopen) {
  char Tmpl[] = "/tmp/kv_heap_test.XXXXXX";
  ASSERT_NE(mkdtemp(Tmpl), nullptr);
  std::string Dir = Tmpl;

  KvConfig KC = heapConfig(2);
  KC.DataDir = Dir;
  {
    KvStore Store(KC);
    EXPECT_FALSE(Store.recoveredOnOpen());
    for (uint64_t K = 0; K != 16; ++K)
      ASSERT_EQ(Store.set(0, K, bigValueFor(K, 1, 1000 * (K + 1))),
                KvStatus::Ok);
    ASSERT_EQ(Store.set(0, 99, bigValueFor(99, 1, 65536)), KvStatus::Ok);
    Store.persistAll();
  }
  {
    KvStore Store(KC);
    EXPECT_TRUE(Store.recoveredOnOpen());
    KvHeapAudit A = Store.auditHeap();
    EXPECT_TRUE(A.consistent()) << A.BitmapPages << " vs " << A.LivePages;
    std::string Out;
    for (uint64_t K = 0; K != 16; ++K) {
      ASSERT_EQ(Store.get(0, K, Out), KvStatus::Ok) << "lost key " << K;
      EXPECT_EQ(Out, bigValueFor(K, 1, 1000 * (K + 1)));
    }
    ASSERT_EQ(Store.get(0, 99, Out), KvStatus::Ok);
    EXPECT_EQ(Out, bigValueFor(99, 1, 65536));
    // Layer: overwrite half, delete a quarter.
    for (uint64_t K = 0; K != 8; ++K)
      ASSERT_EQ(Store.set(0, K, bigValueFor(K, 2, 7777)), KvStatus::Ok);
    for (uint64_t K = 12; K != 16; ++K)
      ASSERT_EQ(Store.del(0, K), KvStatus::Ok);
    Store.persistAll();
  }
  {
    KvStore Store(KC);
    EXPECT_TRUE(Store.recoveredOnOpen());
    KvHeapAudit A = Store.auditHeap();
    EXPECT_TRUE(A.consistent());
    EXPECT_EQ(A.StagedWal, 0u);
    std::string Out;
    for (uint64_t K = 0; K != 8; ++K) {
      ASSERT_EQ(Store.get(0, K, Out), KvStatus::Ok);
      EXPECT_EQ(Out, bigValueFor(K, 2, 7777));
    }
    for (uint64_t K = 8; K != 12; ++K) {
      ASSERT_EQ(Store.get(0, K, Out), KvStatus::Ok);
      EXPECT_EQ(Out, bigValueFor(K, 1, 1000 * (K + 1)));
    }
    for (uint64_t K = 12; K != 16; ++K)
      EXPECT_EQ(Store.get(0, K, Out), KvStatus::NotFound);
  }
  for (unsigned S = 0; S != KC.NumShards; ++S)
    std::remove((Dir + "/shard" + std::to_string(S) + ".img").c_str());
  std::remove(Dir.c_str());
}

//===----------------------------------------------------------------------===//
// Server / client smoke
//===----------------------------------------------------------------------===//

TEST(KvServerSmoke, EndToEndOverLoopback) {
  KvStore Store(smallConfig(2));
  KvServer Server(Store, KvServerConfig{});
  Server.start();
  ASSERT_NE(Server.port(), 0);

  KvClient Client;
  ASSERT_TRUE(Client.connect(Server.port()));
  EXPECT_TRUE(Client.ping());

  std::string Out;
  EXPECT_EQ(Client.get(5, Out), KvStatus::NotFound);
  EXPECT_EQ(Client.set(5, "net-value\nwith newline"), KvStatus::Ok);
  EXPECT_EQ(Client.get(5, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "net-value\nwith newline");
  EXPECT_EQ(Client.cas(5, "wrong", "x"), KvStatus::Mismatch);
  EXPECT_EQ(Client.cas(5, "net-value\nwith newline", "swapped"),
            KvStatus::Ok);
  EXPECT_EQ(Client.get(5, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "swapped");

  std::vector<std::pair<uint64_t, std::string>> Pairs;
  for (uint64_t K = 10; K != 42; ++K)
    Pairs.emplace_back(K, valueFor(K, 3));
  std::vector<KvStatus> Statuses;
  ASSERT_TRUE(Client.mset(Pairs, Statuses));
  ASSERT_EQ(Statuses.size(), Pairs.size());
  for (KvStatus St : Statuses)
    EXPECT_EQ(St, KvStatus::Ok);

  std::vector<uint64_t> Keys{10, 11, 999};
  std::vector<std::pair<KvStatus, std::string>> Results;
  ASSERT_TRUE(Client.mget(Keys, Results));
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_EQ(Results[0].first, KvStatus::Ok);
  EXPECT_EQ(Results[0].second, valueFor(10, 3));
  EXPECT_EQ(Results[2].first, KvStatus::NotFound);

  EXPECT_EQ(Client.del(5), KvStatus::Ok);
  EXPECT_EQ(Client.get(5, Out), KvStatus::NotFound);

  // A second concurrent connection sees the same data.
  KvClient Client2;
  ASSERT_TRUE(Client2.connect(Server.port()));
  EXPECT_EQ(Client2.get(11, Out), KvStatus::Ok);
  EXPECT_EQ(Out, valueFor(11, 3));
  Client2.quit();

  Client.quit();
  EXPECT_GT(Server.requestsServed(), 5u);
  Server.stop();
  EXPECT_EQ(Store.checkerViolations(), 0u);
}

//===----------------------------------------------------------------------===//
// Static/dynamic capacity consistency
//===----------------------------------------------------------------------===//

// crafty-lint's tx-capacity rule computes interprocedural static
// write-set bounds for the shard's transaction bodies, cross-checked
// in-source against the CRAFTY_TX_CAPACITY declarations in KvShard.h:
//   KvShard::writeCellTx  33 words (len word + MaxValueBytes / 8)
//   KvShard::setInTx      53 words (writeCellTx + map-slot publishes
//                                   + displaced-heap-extent free)
// This test pins the dynamic side of that contract: the largest write
// set any committed SET transaction actually produced (HtmStats, same
// 8-byte-word unit) must stay within the static bound, and a full-size
// value must come close enough to show the bound is not vacuous. The
// Non-durable backend runs transactions bare -- no undo-log stream
// inflating the write set -- so its figure is writeCellTx/setInTx alone.
TEST(KvStore, TxCapacityStaticBoundCoversDynamicWrites) {
  constexpr uint64_t StaticBoundSetInTx = 53;   // = CRAFTY_TX_CAPACITY
  constexpr uint64_t MinFullValueWords = 32;    // 1 len + 248 / 8 value.

  KvConfig KC;
  KC.NumShards = 1;
  KC.SlotsPerShard = 256;
  KC.MaxValueBytes = 248;
  KC.ThreadsPerShard = 1;
  KC.Backend = SystemKind::NonDurable;
  KC.DrainLatencyNs = 0;
  KvShard Shard(KC, 0);

  const std::string Full(KC.MaxValueBytes, 'x');
  for (uint64_t Key = 1; Key <= 64; ++Key)
    ASSERT_EQ(Shard.set(0, Key, Full), KvStatus::Ok);

  HtmStats Hw = Shard.backend().htmStats();
  ASSERT_GT(Hw.Commits, 0u);
  EXPECT_GE(Hw.MaxWriteWordsPerTxn, MinFullValueWords)
      << "a full-size SET must write at least the value cell";
  EXPECT_LE(Hw.MaxWriteWordsPerTxn, StaticBoundSetInTx)
      << "dynamic write set exceeds the static tx-capacity bound that "
         "crafty-lint certifies for KvShard::setInTx";
  EXPECT_GE(Hw.WriteWordsTotal, 64 * MinFullValueWords);
}

TEST(KvServerSmoke, MalformedRequestClosesConnection) {
  KvStore Store(smallConfig(1));
  KvServer Server(Store, KvServerConfig{});
  Server.start();
  KvClient Client;
  ASSERT_TRUE(Client.connect(Server.port()));
  // Raw garbage through the pipeline path.
  Client.sendGet(1); // Valid...
  ASSERT_TRUE(Client.flush());
  std::string Out;
  EXPECT_EQ(Client.recvValue(Out), KvStatus::NotFound);
  // ...then garbage: the server answers ERR and closes.
  Client.sendRaw("NONSENSE COMMAND\n");
  ASSERT_TRUE(Client.flush());
  EXPECT_EQ(Client.recvStatus(), KvStatus::Err);
  Server.stop();
}

/// The oversize-value protocol contract: a 64 KiB value is served through
/// the heap; a value above the active limit but within the parser's skim
/// cap gets a *clean* `ERR toobig` -- the request frames, the connection
/// survives; only beyond the skim cap does the server treat the client
/// as abusive (ERR proto + close).
TEST(KvServerSmoke, OversizeValueAnswersToobigAndKeepsConnection) {
  KvStore Store(heapConfig(1));
  KvServer Server(Store, KvServerConfig{});
  Server.start();
  KvClient Client;
  ASSERT_TRUE(Client.connect(Server.port()));

  // Inside the heap's envelope: full 64 KiB round trip over the wire.
  std::string Big(65536, 'q');
  EXPECT_EQ(Client.set(7, Big), KvStatus::Ok);
  std::string Out;
  ASSERT_EQ(Client.get(7, Out), KvStatus::Ok);
  EXPECT_EQ(Out, Big);

  // Above the active limit, below the wire cap: shard-level rejection.
  EXPECT_EQ(Client.set(8, std::string(100000, 'x')), KvStatus::TooBig);

  // Above the 1 MiB wire cap, below the 2 MiB skim cap: the parser skims
  // the payload, the server answers toobig, and the connection lives.
  EXPECT_EQ(Client.set(9, std::string((1 << 20) + 5000, 'y')),
            KvStatus::TooBig);
  EXPECT_TRUE(Client.ping()) << "connection must survive a skimmed value";

  // CAS with an oversize desired value short-circuits to toobig before
  // any shard sees it (no Mismatch even though the expect is wrong).
  EXPECT_EQ(Client.cas(7, "wrong", std::string((1 << 20) + 1, 'c')),
            KvStatus::TooBig);
  EXPECT_TRUE(Client.ping());
  ASSERT_EQ(Client.get(7, Out), KvStatus::Ok);
  EXPECT_EQ(Out, Big) << "skimmed CAS must not touch the value";

  // MSET: per-pair verdicts; the oversize pair is skimmed, its neighbors
  // commit.
  std::vector<std::pair<uint64_t, std::string>> Pairs;
  Pairs.emplace_back(20, std::string(2000, 'a'));
  Pairs.emplace_back(21, std::string((1 << 20) + 9, 'b'));
  Pairs.emplace_back(22, std::string(30, 'c'));
  std::vector<KvStatus> Statuses;
  ASSERT_TRUE(Client.mset(Pairs, Statuses));
  ASSERT_EQ(Statuses.size(), 3u);
  EXPECT_EQ(Statuses[0], KvStatus::Ok);
  EXPECT_EQ(Statuses[1], KvStatus::TooBig);
  EXPECT_EQ(Statuses[2], KvStatus::Ok);
  ASSERT_EQ(Client.get(20, Out), KvStatus::Ok);
  EXPECT_EQ(Out, std::string(2000, 'a'));
  EXPECT_EQ(Client.get(21, Out), KvStatus::NotFound);
  ASSERT_EQ(Client.get(22, Out), KvStatus::Ok);
  EXPECT_EQ(Out, std::string(30, 'c'));

  // Beyond the skim cap: malformed, ERR proto, close.
  Client.sendRaw("SET 30 3000000\n");
  ASSERT_TRUE(Client.flush());
  EXPECT_EQ(Client.recvStatus(), KvStatus::Err);

  KvHeapAudit A = Store.auditHeap();
  EXPECT_TRUE(A.consistent());
  Server.stop();
  EXPECT_EQ(Store.checkerViolations(), 0u);
}

//===----------------------------------------------------------------------===//
// Share-nothing server under concurrent load
//===----------------------------------------------------------------------===//

/// Four connections drive mixed operations against a 4-shard server with
/// four forced workers and both dynamic checkers attached. Each
/// connection owns a disjoint key partition (keys == T mod 4), so every
/// response is exactly predictable against a local model, while the
/// group-commit cycles interleave requests from all connections across
/// all shards.
TEST(KvServerConcurrent, FourShardMixedLoadWithCheckers) {
  KvConfig KC = smallConfig(4);
  KC.ThreadsPerShard = 4;
  KC.EnablePersistCheck = true;
  KC.EnableTxRaceCheck = true;
  KvStore Store(KC);
  KvServerConfig SC;
  SC.Workers = 4;
  KvServer Server(Store, SC);
  Server.start();
  ASSERT_NE(Server.port(), 0);

  constexpr unsigned NumConns = 4;
  constexpr uint64_t OpsPerConn = 400;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumConns; ++T) {
    Threads.emplace_back([&, T] {
      KvClient Client;
      if (!Client.connect(Server.port())) {
        ++Failures;
        return;
      }
      std::map<uint64_t, std::string> Model;
      auto Check = [&](bool Ok, const char *What) {
        if (!Ok) {
          ++Failures;
          ADD_FAILURE() << "conn " << T << ": " << What;
        }
      };
      std::string Out;
      for (uint64_t I = 0; I != OpsPerConn; ++I) {
        uint64_t Key = T + 4 * ((I * 13) % 48); // T's partition only.
        switch (I % 10) {
        case 3: { // Delete (present or not -- the model knows which).
          KvStatus Want =
              Model.count(Key) ? KvStatus::Ok : KvStatus::NotFound;
          Check(Client.del(Key) == Want, "DEL status");
          Model.erase(Key);
          break;
        }
        case 6: { // CAS from the model's value.
          auto It = Model.find(Key);
          if (It == Model.end()) {
            Check(Client.cas(Key, "x", "y") == KvStatus::NotFound,
                  "CAS on absent key");
          } else {
            std::string Next = valueFor(Key, I);
            Check(Client.cas(Key, It->second, Next) == KvStatus::Ok,
                  "CAS status");
            It->second = Next;
          }
          break;
        }
        case 9: { // Cross-shard MSET + MGET round trip.
          std::vector<std::pair<uint64_t, std::string>> Pairs;
          std::vector<uint64_t> Keys;
          for (uint64_t J = 0; J != 8; ++J) {
            uint64_t K = T + 4 * ((I + J * 7) % 48);
            Pairs.emplace_back(K, valueFor(K, I + J));
            Keys.push_back(K);
          }
          std::vector<KvStatus> Statuses;
          Check(Client.mset(Pairs, Statuses) &&
                    Statuses.size() == Pairs.size(),
                "MSET transport");
          for (const auto &P : Pairs)
            Model[P.first] = P.second;
          // Later pairs win duplicate keys; the model map replays that.
          for (auto &P : Pairs)
            P.second = Model[P.first];
          std::vector<std::pair<KvStatus, std::string>> Results;
          Check(Client.mget(Keys, Results) && Results.size() == Keys.size(),
                "MGET transport");
          for (size_t J = 0; J != Results.size(); ++J)
            Check(Results[J].first == KvStatus::Ok &&
                      Results[J].second == Model[Keys[J]],
                  "MGET value");
          break;
        }
        default: {
          if (I % 2) {
            std::string Val = valueFor(Key, I);
            Check(Client.set(Key, Val) == KvStatus::Ok, "SET status");
            Model[Key] = Val;
          } else {
            KvStatus St = Client.get(Key, Out);
            auto It = Model.find(Key);
            if (It == Model.end())
              Check(St == KvStatus::NotFound, "GET absent");
            else
              Check(St == KvStatus::Ok && Out == It->second, "GET value");
          }
          break;
        }
        }
      }
      Client.quit();
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GT(Server.requestsServed(), NumConns * OpsPerConn / 2);
  Server.stop();
  EXPECT_EQ(Store.checkerViolations(), 0u);
}

/// Cross-shard scatter-gather correctness, including the per-connection
/// ordering guarantee for requests pipelined behind an in-flight
/// scatter-gather: a GET queued after a cross-shard MSET on the same
/// connection must observe the MSET, and a cross-shard MSET must observe
/// (i.e. overwrite) a single-key SET queued just before it.
TEST(KvServerConcurrent, CrossShardScatterGatherPipelinedOrdering) {
  KvConfig KC = smallConfig(4);
  KC.ThreadsPerShard = 4;
  KvStore Store(KC);
  KvServerConfig SC;
  SC.Workers = 4; // Force one worker per shard: every multi-shard
                  // request takes the scatter-gather path.
  KvServer Server(Store, SC);
  Server.start();
  ASSERT_NE(Server.port(), 0);

  // One key per shard, so the MSETs below span all four workers.
  std::vector<uint64_t> KeyOnShard(4, ~0ull);
  for (uint64_t K = 0; K != 1000 && (KeyOnShard[0] == ~0ull ||
                                     KeyOnShard[1] == ~0ull ||
                                     KeyOnShard[2] == ~0ull ||
                                     KeyOnShard[3] == ~0ull);
       ++K)
    if (KeyOnShard[Store.shardOf(K)] == ~0ull)
      KeyOnShard[Store.shardOf(K)] = K;

  KvClient Client;
  ASSERT_TRUE(Client.connect(Server.port()));

  // SET then cross-shard MSET of the same key, then GET, all in one
  // flush: the staged SET must execute before the scatter-gather's
  // pieces, and the GET must wait for the scatter-gather to finish.
  uint64_t Hot = KeyOnShard[0];
  Client.sendSet(Hot, "pre-sg");
  std::vector<std::pair<uint64_t, std::string>> Pairs;
  for (unsigned S = 0; S != 4; ++S)
    Pairs.emplace_back(KeyOnShard[S], "sg-" + std::to_string(S));
  Client.sendMset(Pairs);
  Client.sendGet(Hot);
  Client.sendSet(Hot, "post-sg");
  Client.sendGet(Hot);
  ASSERT_TRUE(Client.flush());
  EXPECT_EQ(Client.recvStatus(), KvStatus::Ok); // SET pre-sg.
  std::vector<KvStatus> Statuses;
  ASSERT_TRUE(Client.recvStatuses(Pairs.size(), Statuses));
  for (KvStatus St : Statuses)
    EXPECT_EQ(St, KvStatus::Ok);
  std::string Out;
  EXPECT_EQ(Client.recvValue(Out), KvStatus::Ok);
  EXPECT_EQ(Out, "sg-0"); // The MSET overwrote the pipelined SET.
  EXPECT_EQ(Client.recvStatus(), KvStatus::Ok);
  EXPECT_EQ(Client.recvValue(Out), KvStatus::Ok);
  EXPECT_EQ(Out, "post-sg"); // The parked SET ran after the sg.

  // Cross-shard MGET sees every piece of the cross-shard MSET, in
  // request order, with misses interleaved.
  std::vector<uint64_t> Keys{KeyOnShard[3], 999983, KeyOnShard[1],
                             KeyOnShard[0], KeyOnShard[2]};
  std::vector<std::pair<KvStatus, std::string>> Results;
  ASSERT_TRUE(Client.mget(Keys, Results));
  ASSERT_EQ(Results.size(), Keys.size());
  EXPECT_EQ(Results[0].second, "sg-3");
  EXPECT_EQ(Results[1].first, KvStatus::NotFound);
  EXPECT_EQ(Results[2].second, "sg-1");
  EXPECT_EQ(Results[3].second, "post-sg");
  EXPECT_EQ(Results[4].second, "sg-2");

  // Two back-to-back cross-shard MSETs of the same keys, then an MGET:
  // the second MSET's values must win on every shard.
  for (auto &P : Pairs)
    P.second += "-v2";
  Client.sendMset(Pairs);
  for (auto &P : Pairs)
    P.second = P.second.substr(0, P.second.size() - 3) + "-v3";
  Client.sendMset(Pairs);
  ASSERT_TRUE(Client.flush());
  ASSERT_TRUE(Client.recvStatuses(Pairs.size(), Statuses));
  ASSERT_TRUE(Client.recvStatuses(Pairs.size(), Statuses));
  for (unsigned S = 0; S != 4; ++S) {
    ASSERT_EQ(Client.get(KeyOnShard[S], Out), KvStatus::Ok);
    EXPECT_EQ(Out, "sg-" + std::to_string(S) + "-v3");
  }

  Client.quit();
  Server.stop();
  EXPECT_EQ(Store.checkerViolations(), 0u);
}

//===----------------------------------------------------------------------===//
// SIGKILL under load
//===----------------------------------------------------------------------===//

/// Real process death: fork a file-backed 4-shard server, drive
/// write-heavy load from two connections, SIGKILL the child mid-flight,
/// then reopen the images in-process and audit acked-durability (every
/// acknowledged write survives; the unacked tail is absent or complete,
/// never torn).
TEST(KvCrash, SigkillUnderFourShardLoadRecoversAcked) {
  char Tmpl[] = "/tmp/kv_sigkill_test.XXXXXX";
  ASSERT_NE(mkdtemp(Tmpl), nullptr);
  KvConfig KC = smallConfig(4);
  KC.ThreadsPerShard = 4;
  KC.DataDir = Tmpl;

  int PortPipe[2];
  ASSERT_EQ(pipe(PortPipe), 0);
  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    close(PortPipe[0]);
    {
      KvStore Store(KC);
      KvServerConfig SC;
      SC.Workers = 4;
      KvServer Server(Store, SC);
      Server.start();
      char Msg[16];
      int N = std::snprintf(Msg, sizeof(Msg), "%u\n", Server.port());
      if (write(PortPipe[1], Msg, (size_t)N) != N)
        _exit(1);
      close(PortPipe[1]);
      // Serve until SIGKILLed -- that is the whole point.
      for (;;)
        pause();
    }
    _exit(0);
  }
  close(PortPipe[1]);
  std::string PortStr;
  char C;
  while (read(PortPipe[0], &C, 1) == 1 && C != '\n')
    PortStr += C;
  close(PortPipe[0]);
  uint16_t Port = (uint16_t)std::atoi(PortStr.c_str());
  ASSERT_NE(Port, 0);

  // Write-heavy load; connection T owns keys with Key % 2 == T, so each
  // key's write order is one connection's FIFO.
  struct Ledger {
    uint64_t Key;
    std::string Val;
    bool Acked;
  };
  constexpr unsigned NumConns = 2;
  std::atomic<uint64_t> Acked{0};
  std::atomic<bool> Killed{false};
  std::vector<std::vector<Ledger>> Ledgers(NumConns);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumConns; ++T) {
    Threads.emplace_back([&, T] {
      KvClient Client;
      if (!Client.connect(Port))
        return;
      uint64_t Seq = 0;
      while (!Killed.load(std::memory_order_relaxed)) {
        uint64_t Key = T + 2 * ((Seq * 11) % 40);
        Ledgers[T].push_back(Ledger{Key, valueFor(Key, Seq++), false});
        Ledger &E = Ledgers[T].back();
        if (Client.set(Key, E.Val) != KvStatus::Ok)
          break; // Transport death: unacknowledged.
        E.Acked = true;
        Acked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (Acked.load(std::memory_order_relaxed) < 300)
    std::this_thread::yield();
  kill(Pid, SIGKILL);
  int St = 0;
  waitpid(Pid, &St, 0);
  ASSERT_TRUE(WIFSIGNALED(St));
  Killed.store(true);
  for (auto &Th : Threads)
    Th.join();

  // Reopen the images in-process: attach + undo-log replay, then audit
  // against the ledgers with quiesced peeks.
  KvStore Store(KC);
  EXPECT_TRUE(Store.recoveredOnOpen());
  for (unsigned T = 0; T != NumConns; ++T) {
    std::map<uint64_t, std::vector<const Ledger *>> PerKey;
    for (const Ledger &E : Ledgers[T])
      PerKey[E.Key].push_back(&E);
    for (const auto &[Key, Writes] : PerKey) {
      size_t LastAcked = Writes.size();
      for (size_t I = Writes.size(); I-- > 0;)
        if (Writes[I]->Acked) {
          LastAcked = I;
          break;
        }
      std::string Got;
      bool Present = Store.shard(Store.shardOf(Key)).peek(Key, Got);
      bool Ok = false;
      if (LastAcked == Writes.size()) {
        Ok = !Present; // Nothing acked: absent or any complete value.
        for (const Ledger *W : Writes)
          Ok = Ok || (Present && W->Val == Got);
      } else {
        for (size_t I = LastAcked; I != Writes.size(); ++I)
          Ok = Ok || (Present && Writes[I]->Val == Got);
      }
      EXPECT_TRUE(Ok) << "key " << Key << " violates acked-durability ("
                      << (Present ? "present" : "absent") << ", last acked "
                      << (LastAcked == Writes.size() ? "none" : "exists")
                      << ")";
    }
  }
  // The recovered store still serves.
  EXPECT_EQ(Store.set(0, 5000, "post-recovery"), KvStatus::Ok);
  std::string Out;
  EXPECT_EQ(Store.get(0, 5000, Out), KvStatus::Ok);
  EXPECT_EQ(Out, "post-recovery");

  for (unsigned S = 0; S != KC.NumShards; ++S)
    std::remove((KC.DataDir + "/shard" + std::to_string(S) + ".img").c_str());
  std::remove(KC.DataDir.c_str());
}

} // namespace
