file(REMOVE_RECURSE
  "CMakeFiles/concurrent_bank.dir/concurrent_bank.cpp.o"
  "CMakeFiles/concurrent_bank.dir/concurrent_bank.cpp.o.d"
  "concurrent_bank"
  "concurrent_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
