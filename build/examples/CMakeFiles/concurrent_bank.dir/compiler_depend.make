# Empty compiler generated dependencies file for concurrent_bank.
# This may be replaced when dependencies are built.
