file(REMOVE_RECURSE
  "CMakeFiles/lock_durability.dir/lock_durability.cpp.o"
  "CMakeFiles/lock_durability.dir/lock_durability.cpp.o.d"
  "lock_durability"
  "lock_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
