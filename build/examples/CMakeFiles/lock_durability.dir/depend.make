# Empty dependencies file for lock_durability.
# This may be replaced when dependencies are built.
