# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(htm_test "/root/repo/build/tests/htm_test")
set_tests_properties(htm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pmem_test "/root/repo/build/tests/pmem_test")
set_tests_properties(pmem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(log_entry_test "/root/repo/build/tests/log_entry_test")
set_tests_properties(log_entry_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crafty_test "/root/repo/build/tests/crafty_test")
set_tests_properties(crafty_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(recovery_test "/root/repo/build/tests/recovery_test")
set_tests_properties(recovery_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crash_property_test "/root/repo/build/tests/crash_property_test")
set_tests_properties(crash_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(redo_pipeline_test "/root/repo/build/tests/redo_pipeline_test")
set_tests_properties(redo_pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pds_test "/root/repo/build/tests/pds_test")
set_tests_properties(pds_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_check_test "/root/repo/build/tests/model_check_test")
set_tests_properties(model_check_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;23;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;25;crafty_add_test;/root/repo/tests/CMakeLists.txt;0;")
