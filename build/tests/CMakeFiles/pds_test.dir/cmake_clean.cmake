file(REMOVE_RECURSE
  "CMakeFiles/pds_test.dir/PdsTest.cpp.o"
  "CMakeFiles/pds_test.dir/PdsTest.cpp.o.d"
  "pds_test"
  "pds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
