# Empty dependencies file for pds_test.
# This may be replaced when dependencies are built.
