
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/PdsTest.cpp" "tests/CMakeFiles/pds_test.dir/PdsTest.cpp.o" "gcc" "tests/CMakeFiles/pds_test.dir/PdsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crafty_core.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/crafty_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/crafty_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/crafty_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crafty_support.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/crafty_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
