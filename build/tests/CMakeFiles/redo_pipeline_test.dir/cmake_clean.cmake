file(REMOVE_RECURSE
  "CMakeFiles/redo_pipeline_test.dir/RedoPipelineTest.cpp.o"
  "CMakeFiles/redo_pipeline_test.dir/RedoPipelineTest.cpp.o.d"
  "redo_pipeline_test"
  "redo_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redo_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
