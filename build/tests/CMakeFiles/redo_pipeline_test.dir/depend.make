# Empty dependencies file for redo_pipeline_test.
# This may be replaced when dependencies are built.
