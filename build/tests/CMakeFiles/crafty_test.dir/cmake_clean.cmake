file(REMOVE_RECURSE
  "CMakeFiles/crafty_test.dir/CraftyTest.cpp.o"
  "CMakeFiles/crafty_test.dir/CraftyTest.cpp.o.d"
  "crafty_test"
  "crafty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
