# Empty compiler generated dependencies file for crafty_test.
# This may be replaced when dependencies are built.
