file(REMOVE_RECURSE
  "CMakeFiles/log_entry_test.dir/LogEntryTest.cpp.o"
  "CMakeFiles/log_entry_test.dir/LogEntryTest.cpp.o.d"
  "log_entry_test"
  "log_entry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_entry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
