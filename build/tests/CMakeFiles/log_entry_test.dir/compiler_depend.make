# Empty compiler generated dependencies file for log_entry_test.
# This may be replaced when dependencies are built.
