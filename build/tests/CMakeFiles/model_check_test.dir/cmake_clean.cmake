file(REMOVE_RECURSE
  "CMakeFiles/model_check_test.dir/ModelCheckTest.cpp.o"
  "CMakeFiles/model_check_test.dir/ModelCheckTest.cpp.o.d"
  "model_check_test"
  "model_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
