# Empty compiler generated dependencies file for fig6_bank.
# This may be replaced when dependencies are built.
