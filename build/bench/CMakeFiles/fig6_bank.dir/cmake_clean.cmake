file(REMOVE_RECURSE
  "CMakeFiles/fig6_bank.dir/fig6_bank.cpp.o"
  "CMakeFiles/fig6_bank.dir/fig6_bank.cpp.o.d"
  "fig6_bank"
  "fig6_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
