file(REMOVE_RECURSE
  "CMakeFiles/fig9_21_breakdowns.dir/fig9_21_breakdowns.cpp.o"
  "CMakeFiles/fig9_21_breakdowns.dir/fig9_21_breakdowns.cpp.o.d"
  "fig9_21_breakdowns"
  "fig9_21_breakdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_21_breakdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
