# Empty dependencies file for fig9_21_breakdowns.
# This may be replaced when dependencies are built.
