# Empty dependencies file for fig8_stamp.
# This may be replaced when dependencies are built.
