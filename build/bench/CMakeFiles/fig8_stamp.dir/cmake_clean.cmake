file(REMOVE_RECURSE
  "CMakeFiles/fig8_stamp.dir/fig8_stamp.cpp.o"
  "CMakeFiles/fig8_stamp.dir/fig8_stamp.cpp.o.d"
  "fig8_stamp"
  "fig8_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
