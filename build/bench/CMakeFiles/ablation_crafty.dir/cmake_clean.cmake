file(REMOVE_RECURSE
  "CMakeFiles/ablation_crafty.dir/ablation_crafty.cpp.o"
  "CMakeFiles/ablation_crafty.dir/ablation_crafty.cpp.o.d"
  "ablation_crafty"
  "ablation_crafty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crafty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
