# Empty dependencies file for ablation_crafty.
# This may be replaced when dependencies are built.
