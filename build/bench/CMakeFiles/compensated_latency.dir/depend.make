# Empty dependencies file for compensated_latency.
# This may be replaced when dependencies are built.
