file(REMOVE_RECURSE
  "CMakeFiles/compensated_latency.dir/compensated_latency.cpp.o"
  "CMakeFiles/compensated_latency.dir/compensated_latency.cpp.o.d"
  "compensated_latency"
  "compensated_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compensated_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
