file(REMOVE_RECURSE
  "CMakeFiles/table1_writes.dir/table1_writes.cpp.o"
  "CMakeFiles/table1_writes.dir/table1_writes.cpp.o.d"
  "table1_writes"
  "table1_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
