# Empty dependencies file for table1_writes.
# This may be replaced when dependencies are built.
