# Empty compiler generated dependencies file for fig7_btree.
# This may be replaced when dependencies are built.
