file(REMOVE_RECURSE
  "CMakeFiles/fig7_btree.dir/fig7_btree.cpp.o"
  "CMakeFiles/fig7_btree.dir/fig7_btree.cpp.o.d"
  "fig7_btree"
  "fig7_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
