# Empty compiler generated dependencies file for fig22_24_latency100.
# This may be replaced when dependencies are built.
