file(REMOVE_RECURSE
  "CMakeFiles/fig22_24_latency100.dir/fig22_24_latency100.cpp.o"
  "CMakeFiles/fig22_24_latency100.dir/fig22_24_latency100.cpp.o.d"
  "fig22_24_latency100"
  "fig22_24_latency100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_24_latency100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
