file(REMOVE_RECURSE
  "CMakeFiles/crafty_baselines.dir/BaselineCommon.cpp.o"
  "CMakeFiles/crafty_baselines.dir/BaselineCommon.cpp.o.d"
  "CMakeFiles/crafty_baselines.dir/DudeTm.cpp.o"
  "CMakeFiles/crafty_baselines.dir/DudeTm.cpp.o.d"
  "CMakeFiles/crafty_baselines.dir/Factory.cpp.o"
  "CMakeFiles/crafty_baselines.dir/Factory.cpp.o.d"
  "CMakeFiles/crafty_baselines.dir/NvHtm.cpp.o"
  "CMakeFiles/crafty_baselines.dir/NvHtm.cpp.o.d"
  "CMakeFiles/crafty_baselines.dir/NvHtmRecovery.cpp.o"
  "CMakeFiles/crafty_baselines.dir/NvHtmRecovery.cpp.o.d"
  "CMakeFiles/crafty_baselines.dir/RedoPipeline.cpp.o"
  "CMakeFiles/crafty_baselines.dir/RedoPipeline.cpp.o.d"
  "libcrafty_baselines.a"
  "libcrafty_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
