
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/BaselineCommon.cpp" "src/baselines/CMakeFiles/crafty_baselines.dir/BaselineCommon.cpp.o" "gcc" "src/baselines/CMakeFiles/crafty_baselines.dir/BaselineCommon.cpp.o.d"
  "/root/repo/src/baselines/DudeTm.cpp" "src/baselines/CMakeFiles/crafty_baselines.dir/DudeTm.cpp.o" "gcc" "src/baselines/CMakeFiles/crafty_baselines.dir/DudeTm.cpp.o.d"
  "/root/repo/src/baselines/Factory.cpp" "src/baselines/CMakeFiles/crafty_baselines.dir/Factory.cpp.o" "gcc" "src/baselines/CMakeFiles/crafty_baselines.dir/Factory.cpp.o.d"
  "/root/repo/src/baselines/NvHtm.cpp" "src/baselines/CMakeFiles/crafty_baselines.dir/NvHtm.cpp.o" "gcc" "src/baselines/CMakeFiles/crafty_baselines.dir/NvHtm.cpp.o.d"
  "/root/repo/src/baselines/NvHtmRecovery.cpp" "src/baselines/CMakeFiles/crafty_baselines.dir/NvHtmRecovery.cpp.o" "gcc" "src/baselines/CMakeFiles/crafty_baselines.dir/NvHtmRecovery.cpp.o.d"
  "/root/repo/src/baselines/RedoPipeline.cpp" "src/baselines/CMakeFiles/crafty_baselines.dir/RedoPipeline.cpp.o" "gcc" "src/baselines/CMakeFiles/crafty_baselines.dir/RedoPipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crafty_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/crafty_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/crafty_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crafty_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
