file(REMOVE_RECURSE
  "libcrafty_baselines.a"
)
