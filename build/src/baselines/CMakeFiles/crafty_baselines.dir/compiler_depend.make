# Empty compiler generated dependencies file for crafty_baselines.
# This may be replaced when dependencies are built.
