file(REMOVE_RECURSE
  "libcrafty_harness.a"
)
