file(REMOVE_RECURSE
  "CMakeFiles/crafty_harness.dir/Harness.cpp.o"
  "CMakeFiles/crafty_harness.dir/Harness.cpp.o.d"
  "libcrafty_harness.a"
  "libcrafty_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
