# Empty compiler generated dependencies file for crafty_harness.
# This may be replaced when dependencies are built.
