file(REMOVE_RECURSE
  "libcrafty_core.a"
)
