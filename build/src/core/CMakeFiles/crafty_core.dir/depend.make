# Empty dependencies file for crafty_core.
# This may be replaced when dependencies are built.
