file(REMOVE_RECURSE
  "CMakeFiles/crafty_core.dir/Crafty.cpp.o"
  "CMakeFiles/crafty_core.dir/Crafty.cpp.o.d"
  "libcrafty_core.a"
  "libcrafty_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
