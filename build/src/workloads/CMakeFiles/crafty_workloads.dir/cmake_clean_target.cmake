file(REMOVE_RECURSE
  "libcrafty_workloads.a"
)
