
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/BTree.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/BTree.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/BTree.cpp.o.d"
  "/root/repo/src/workloads/Bank.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/Bank.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/Bank.cpp.o.d"
  "/root/repo/src/workloads/Genome.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/Genome.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/Genome.cpp.o.d"
  "/root/repo/src/workloads/Intruder.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/Intruder.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/Intruder.cpp.o.d"
  "/root/repo/src/workloads/KMeans.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/KMeans.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/KMeans.cpp.o.d"
  "/root/repo/src/workloads/Labyrinth.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/Labyrinth.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/Labyrinth.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Ssca2.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/Ssca2.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/Ssca2.cpp.o.d"
  "/root/repo/src/workloads/Vacation.cpp" "src/workloads/CMakeFiles/crafty_workloads.dir/Vacation.cpp.o" "gcc" "src/workloads/CMakeFiles/crafty_workloads.dir/Vacation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crafty_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/crafty_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crafty_support.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/crafty_htm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
