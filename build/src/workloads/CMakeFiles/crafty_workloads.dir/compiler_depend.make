# Empty compiler generated dependencies file for crafty_workloads.
# This may be replaced when dependencies are built.
