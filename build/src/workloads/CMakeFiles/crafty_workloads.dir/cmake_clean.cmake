file(REMOVE_RECURSE
  "CMakeFiles/crafty_workloads.dir/BTree.cpp.o"
  "CMakeFiles/crafty_workloads.dir/BTree.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/Bank.cpp.o"
  "CMakeFiles/crafty_workloads.dir/Bank.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/Genome.cpp.o"
  "CMakeFiles/crafty_workloads.dir/Genome.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/Intruder.cpp.o"
  "CMakeFiles/crafty_workloads.dir/Intruder.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/KMeans.cpp.o"
  "CMakeFiles/crafty_workloads.dir/KMeans.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/Labyrinth.cpp.o"
  "CMakeFiles/crafty_workloads.dir/Labyrinth.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/Registry.cpp.o"
  "CMakeFiles/crafty_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/Ssca2.cpp.o"
  "CMakeFiles/crafty_workloads.dir/Ssca2.cpp.o.d"
  "CMakeFiles/crafty_workloads.dir/Vacation.cpp.o"
  "CMakeFiles/crafty_workloads.dir/Vacation.cpp.o.d"
  "libcrafty_workloads.a"
  "libcrafty_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
