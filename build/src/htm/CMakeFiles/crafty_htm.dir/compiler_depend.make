# Empty compiler generated dependencies file for crafty_htm.
# This may be replaced when dependencies are built.
