file(REMOVE_RECURSE
  "libcrafty_htm.a"
)
