file(REMOVE_RECURSE
  "CMakeFiles/crafty_htm.dir/Htm.cpp.o"
  "CMakeFiles/crafty_htm.dir/Htm.cpp.o.d"
  "libcrafty_htm.a"
  "libcrafty_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
