file(REMOVE_RECURSE
  "libcrafty_support.a"
)
