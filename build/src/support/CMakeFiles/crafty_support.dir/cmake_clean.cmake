file(REMOVE_RECURSE
  "CMakeFiles/crafty_support.dir/Clock.cpp.o"
  "CMakeFiles/crafty_support.dir/Clock.cpp.o.d"
  "libcrafty_support.a"
  "libcrafty_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
