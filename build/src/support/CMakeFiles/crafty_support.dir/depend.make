# Empty dependencies file for crafty_support.
# This may be replaced when dependencies are built.
