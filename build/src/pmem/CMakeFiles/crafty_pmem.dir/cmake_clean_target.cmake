file(REMOVE_RECURSE
  "libcrafty_pmem.a"
)
