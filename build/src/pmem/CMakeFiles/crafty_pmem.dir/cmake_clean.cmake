file(REMOVE_RECURSE
  "CMakeFiles/crafty_pmem.dir/PMemAllocator.cpp.o"
  "CMakeFiles/crafty_pmem.dir/PMemAllocator.cpp.o.d"
  "CMakeFiles/crafty_pmem.dir/PMemPool.cpp.o"
  "CMakeFiles/crafty_pmem.dir/PMemPool.cpp.o.d"
  "libcrafty_pmem.a"
  "libcrafty_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
