# Empty compiler generated dependencies file for crafty_pmem.
# This may be replaced when dependencies are built.
