file(REMOVE_RECURSE
  "libcrafty_recovery.a"
)
