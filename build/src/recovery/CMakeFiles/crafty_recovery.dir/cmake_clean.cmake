file(REMOVE_RECURSE
  "CMakeFiles/crafty_recovery.dir/Recovery.cpp.o"
  "CMakeFiles/crafty_recovery.dir/Recovery.cpp.o.d"
  "libcrafty_recovery.a"
  "libcrafty_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
