# Empty dependencies file for crafty_recovery.
# This may be replaced when dependencies are built.
