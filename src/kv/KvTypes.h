//===- kv/KvTypes.h - KV service common types ------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared types of the sharded durable key-value service (src/kv/): the
/// store configuration, operation status codes, and small helpers used by
/// the engine, the network front end and the load generator.
///
/// The service stores ⟨uint64_t key → byte-string value⟩ pairs. Keys are
/// 64-bit integers (the reserved DurableHashMap encodings exclude the two
/// largest values); values are opaque byte strings up to
/// KvConfig::activeValueLimit() -- MaxValueBytes inline, or the durable
/// heap's extent cap (64 KiB) when KvConfig::HeapPages enables the
/// large-object path. Every mutation is one persistent transaction
/// on the owning shard's backend, so a value is never torn across a
/// crash, and acknowledgements are withheld until the write is durable
/// (see KvShard::persistAck).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_KV_KVTYPES_H
#define CRAFTY_KV_KVTYPES_H

#include "baselines/Factory.h"
#include "heap/DurableHeap.h"
#include "pmem/PMemPool.h"

#include <cstdint>
#include <string>

namespace crafty {
namespace kv {

/// Outcome of one KV operation. Full / TooBig are recoverable conditions
/// reported to the client (`ERR full`, `ERR toobig`), never aborts.
enum class KvStatus : uint8_t {
  Ok,
  NotFound,
  Mismatch, // CAS expectation failed.
  Full,     // Shard table, value-cell freelist, or heap pages exhausted.
  TooBig,   // Value exceeds KvConfig::activeValueLimit().
  Err,      // Malformed request / internal error.
};

inline const char *kvStatusName(KvStatus S) {
  switch (S) {
  case KvStatus::Ok:
    return "OK";
  case KvStatus::NotFound:
    return "NOTFOUND";
  case KvStatus::Mismatch:
    return "MISMATCH";
  case KvStatus::Full:
    return "ERR full";
  case KvStatus::TooBig:
    return "ERR toobig";
  case KvStatus::Err:
    return "ERR internal";
  }
  return "ERR internal";
}

/// Configuration of a KvStore and its shards. One KvShard owns one
/// PMemPool + HtmRuntime + PtmBackend; the store hash-routes keys across
/// NumShards shards.
struct KvConfig {
  unsigned NumShards = 1;
  /// Hash-table slots per shard (rounded up to a power of two). The
  /// value-cell arena holds the same number of cells, so a shard can hold
  /// up to its slot count of live keys (probe lengths degrade near full).
  size_t SlotsPerShard = 1 << 14;
  /// Maximum value size in bytes; each cell is 8 (length word) +
  /// MaxValueBytes rounded up to a cache-line multiple.
  size_t MaxValueBytes = 248;
  /// Persistent-transaction system backing every shard. Crash recovery
  /// (attach to an existing pool image / recover()) is supported for the
  /// Crafty variants, whose undo logs the recovery observer replays.
  SystemKind Backend = SystemKind::Crafty;
  /// Worker transaction contexts per shard (the KvServer uses one worker
  /// thread per shard; tests may drive more).
  unsigned ThreadsPerShard = 1;
  size_t LogEntriesPerThread = 1 << 14;
  /// Cap on SETs folded into one batched transaction; larger MSETs split
  /// into several transactions (still one durability drain). Keeps batch
  /// write sets inside HTM capacity so batching does not force SGL mode.
  size_t BatchTxnLimit = 32;

  // Persistent-memory modeling (see pmem/PMemPool.h).
  PMemMode Mode = PMemMode::Tracked;
  uint64_t DrainLatencyNs = 300;
  uint32_t EvictionPerMillion = 0;
  uint64_t EvictionSeed = 42;
  /// When set, each shard's persistent image is backed by
  /// `<DataDir>/shard<i>.img`, so shard state survives process death and
  /// a restarted store attaches + recovers (KvStore's startup replay).
  std::string DataDir;

  /// Attach the dynamic checkers to each shard's runtime (Crafty only).
  bool EnablePersistCheck = false;
  bool EnableTxRaceCheck = false;

  /// Pages of the per-shard durable large-object heap
  /// (heap/DurableHeap.h); 0 disables the heap, confining values to the
  /// inline cell arena (the pre-heap behavior).
  size_t HeapPages = 0;
  /// Values strictly larger than this route through the heap (heap
  /// enabled only); 0 means MaxValueBytes, i.e. inline cells stay the
  /// small-value fast path and only values that cannot fit inline pay
  /// the stage-then-publish pipeline.
  size_t HeapValueThreshold = 0;
  /// WAL records for in-flight heap extents. Bounds concurrently staged
  /// but unpublished extents; keep >= BatchTxnLimit so one batch chunk
  /// can pre-stage entirely.
  size_t HeapWalSlots = 64;

  /// Bytes of one value cell: length word + padded value bytes.
  size_t cellBytes() const {
    return (8 + MaxValueBytes + CacheLineBytes - 1) &
           ~(size_t)(CacheLineBytes - 1);
  }

  /// Largest value the store accepts under this configuration: the heap
  /// extent cap when the heap is enabled, MaxValueBytes otherwise.
  size_t activeValueLimit() const {
    return HeapPages ? heap::DurableHeap::MaxObjectBytes : MaxValueBytes;
  }

  /// Inline/heap routing threshold actually applied (clamped so inline
  /// values always fit a cell).
  size_t heapThreshold() const {
    size_t T = HeapValueThreshold ? HeapValueThreshold : MaxValueBytes;
    return T < MaxValueBytes ? T : MaxValueBytes;
  }
};

/// Result of a quiesced heap leak audit (KvShard::auditHeap /
/// KvStore::auditHeap): the allocator's bitmap page count must equal the
/// pages owned by live heap-routed values, with no in-flight WAL records.
struct KvHeapAudit {
  bool Enabled = false;    ///< Any shard has a heap configured.
  uint64_t BitmapPages = 0; ///< Pages marked allocated in the bitmaps.
  uint64_t LivePages = 0;  ///< Pages owned by live heap-tagged cells.
  uint64_t StagedWal = 0;  ///< WAL records still in the Staged state.

  bool consistent() const {
    return !Enabled || (BitmapPages == LivePages && StagedWal == 0);
  }
  KvHeapAudit &operator+=(const KvHeapAudit &O) {
    Enabled |= O.Enabled;
    BitmapPages += O.BitmapPages;
    LivePages += O.LivePages;
    StagedWal += O.StagedWal;
    return *this;
  }
};

/// Result of one element of a multi-key operation.
struct KvResult {
  KvStatus Status = KvStatus::Err;
  std::string Value; // GET/MGET payload when Status == Ok.
};

/// Cumulative per-store operation counters (volatile; reporting only).
struct KvOpStats {
  uint64_t Gets = 0;
  uint64_t Sets = 0;
  uint64_t Dels = 0;
  uint64_t Cas = 0;
  uint64_t BatchedSets = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  KvOpStats &operator+=(const KvOpStats &O) {
    Gets += O.Gets;
    Sets += O.Sets;
    Dels += O.Dels;
    Cas += O.Cas;
    BatchedSets += O.BatchedSets;
    Hits += O.Hits;
    Misses += O.Misses;
    return *this;
  }
};

} // namespace kv
} // namespace crafty

#endif // CRAFTY_KV_KVTYPES_H
