//===- kv/KvProtocol.cpp - KV wire protocol -------------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "kv/KvProtocol.h"

#include <cstring>

using namespace crafty;
using namespace crafty::kv;

namespace {

/// Hard cap on any length field: a malformed line must not make the
/// server buffer gigabytes waiting for a block that never arrives.
constexpr uint64_t MaxBlockBytes = 1 << 20;
/// Blocks declared larger than MaxBlockBytes but at most this are
/// *skimmed*: the bytes are consumed and discarded and the request is
/// flagged too-large, so the server can answer `ERR toobig` and keep the
/// connection (KvServer::MaxBufferedBytes accommodates the wait). Beyond
/// this the client is abusive and the request is Malformed.
constexpr uint64_t MaxOversizeSkimBytes = 2 << 20;
constexpr uint64_t MaxMultiKeys = 1 << 16;

/// Splits the token up to the next space (or end) off the front of \p S.
std::string_view nextToken(std::string_view &S) {
  size_t B = 0;
  while (B != S.size() && S[B] == ' ')
    ++B;
  size_t E = B;
  while (E != S.size() && S[E] != ' ')
    ++E;
  std::string_view Tok = S.substr(B, E - B);
  S.remove_prefix(E);
  return Tok;
}

bool parseU64(std::string_view Tok, uint64_t &Out) {
  if (Tok.empty() || Tok.size() > 20)
    return false;
  uint64_t V = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return false;
    uint64_t D = (uint64_t)(C - '0');
    if (V > (~0ull - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[21];
  int N = std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  Out.append(Buf, (size_t)N);
}

/// Consumes a length-prefixed block of \p Len bytes plus its '\n'
/// terminator starting at \p Pos. Returns Ok/NeedMore/Malformed. With
/// \p TooLarge non-null, lengths in (MaxBlockBytes, MaxOversizeSkimBytes]
/// are skimmed -- consumed and discarded with *TooLarge set -- so the
/// request still frames cleanly and the server answers `ERR toobig`
/// without dropping the connection.
ParseResult::Kind takeBlock(std::string_view Buf, size_t &Pos, uint64_t Len,
                            std::string &Out, bool *TooLarge = nullptr) {
  if (Len > MaxBlockBytes) {
    if (!TooLarge || Len > MaxOversizeSkimBytes)
      return ParseResult::Malformed;
    if (Buf.size() - Pos < Len + 1)
      return ParseResult::NeedMore;
    Pos += Len;
    if (Buf[Pos] != '\n')
      return ParseResult::Malformed;
    ++Pos;
    *TooLarge = true;
    Out.clear();
    return ParseResult::Ok;
  }
  if (Buf.size() - Pos < Len + 1)
    return ParseResult::NeedMore;
  Out.assign(Buf.data() + Pos, Len);
  Pos += Len;
  if (Buf[Pos] != '\n')
    return ParseResult::Malformed;
  ++Pos;
  return ParseResult::Ok;
}

/// Finds the '\n'-terminated line starting at \p Pos; NeedMore if it has
/// not fully arrived.
ParseResult::Kind takeLine(std::string_view Buf, size_t &Pos,
                           std::string_view &Line) {
  size_t Nl = Buf.find('\n', Pos);
  if (Nl == std::string_view::npos)
    return Buf.size() - Pos > 4096 ? ParseResult::Malformed
                                   : ParseResult::NeedMore;
  Line = Buf.substr(Pos, Nl - Pos);
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  Pos = Nl + 1;
  return ParseResult::Ok;
}

} // namespace

ParseResult kv::parseRequest(std::string_view Buf, KvRequest &Out) {
  Out = KvRequest();
  size_t Pos = 0;
  std::string_view Line;
  ParseResult::Kind K = takeLine(Buf, Pos, Line);
  if (K != ParseResult::Ok)
    return {K, 0};

  std::string_view Rest = Line;
  std::string_view Cmd = nextToken(Rest);
  auto Done = [&]() -> ParseResult {
    return {ParseResult::Ok, Pos};
  };
  auto Fail = []() -> ParseResult { return {ParseResult::Malformed, 0}; };

  if (Cmd == "GET" || Cmd == "DEL") {
    if (!parseU64(nextToken(Rest), Out.Key) || !nextToken(Rest).empty())
      return Fail();
    Out.Op = Cmd == "GET" ? KvOp::Get : KvOp::Del;
    return Done();
  }
  if (Cmd == "SET") {
    uint64_t Len = 0;
    if (!parseU64(nextToken(Rest), Out.Key) ||
        !parseU64(nextToken(Rest), Len) || !nextToken(Rest).empty())
      return Fail();
    K = takeBlock(Buf, Pos, Len, Out.Val, &Out.ValTooLarge);
    if (K != ParseResult::Ok)
      return {K, 0};
    Out.Op = KvOp::Set;
    return Done();
  }
  if (Cmd == "CAS") {
    uint64_t ELen = 0, DLen = 0;
    if (!parseU64(nextToken(Rest), Out.Key) ||
        !parseU64(nextToken(Rest), ELen) ||
        !parseU64(nextToken(Rest), DLen) || !nextToken(Rest).empty())
      return Fail();
    if (ELen > MaxOversizeSkimBytes || DLen > MaxOversizeSkimBytes)
      return Fail();
    // Both blocks share one terminator: <expect><desired>\n.
    if (Buf.size() - Pos < ELen + DLen + 1)
      return {ParseResult::NeedMore, 0};
    if (ELen > MaxBlockBytes || DLen > MaxBlockBytes) {
      // Skim: frame the request but keep nothing; `ERR toobig` reply.
      Out.ValTooLarge = true;
    } else {
      Out.Expect.assign(Buf.data() + Pos, ELen);
      Out.Val.assign(Buf.data() + Pos + ELen, DLen);
    }
    Pos += ELen + DLen;
    if (Buf[Pos] != '\n')
      return Fail();
    ++Pos;
    Out.Op = KvOp::Cas;
    return Done();
  }
  if (Cmd == "MGET") {
    uint64_t N = 0;
    if (!parseU64(nextToken(Rest), N) || N > MaxMultiKeys)
      return Fail();
    Out.Keys.reserve(N);
    for (uint64_t I = 0; I != N; ++I) {
      uint64_t Key = 0;
      if (!parseU64(nextToken(Rest), Key))
        return Fail();
      Out.Keys.push_back(Key);
    }
    if (!nextToken(Rest).empty())
      return Fail();
    Out.Op = KvOp::Mget;
    return Done();
  }
  if (Cmd == "MSET") {
    uint64_t N = 0;
    if (!parseU64(nextToken(Rest), N) || N > MaxMultiKeys ||
        !nextToken(Rest).empty())
      return Fail();
    Out.Pairs.reserve(N);
    for (uint64_t I = 0; I != N; ++I) {
      std::string_view ItemLine;
      K = takeLine(Buf, Pos, ItemLine);
      if (K != ParseResult::Ok)
        return {K, 0};
      uint64_t Key = 0, Len = 0;
      std::string_view ItemRest = ItemLine;
      if (!parseU64(nextToken(ItemRest), Key) ||
          !parseU64(nextToken(ItemRest), Len) ||
          !nextToken(ItemRest).empty())
        return Fail();
      std::string Val;
      bool TooLarge = false;
      K = takeBlock(Buf, Pos, Len, Val, &TooLarge);
      if (K != ParseResult::Ok)
        return {K, 0};
      Out.Pairs.emplace_back(Key, std::move(Val));
      Out.PairTooLarge.push_back(TooLarge);
    }
    Out.Op = KvOp::Mset;
    return Done();
  }
  if (Cmd == "PING" && Rest.empty()) {
    Out.Op = KvOp::Ping;
    return Done();
  }
  if (Cmd == "STATS" && Rest.empty()) {
    Out.Op = KvOp::Stats;
    return Done();
  }
  if (Cmd == "QUIT" && Rest.empty()) {
    Out.Op = KvOp::Quit;
    return Done();
  }
  return Fail();
}

void kv::appendStatus(std::string &Out, KvStatus S) {
  Out += kvStatusName(S);
  Out += '\n';
}

void kv::appendValue(std::string &Out, std::string_view Val) {
  Out += "VALUE ";
  appendU64(Out, Val.size());
  Out += '\n';
  Out.append(Val.data(), Val.size());
  Out += '\n';
}

void kv::appendNotFound(std::string &Out) { Out += "NOTFOUND\n"; }

void kv::appendValuesHeader(std::string &Out, size_t K) {
  Out += "VALUES ";
  appendU64(Out, K);
  Out += '\n';
}

void kv::appendStatusesHeader(std::string &Out, size_t K) {
  Out += "STATUSES ";
  appendU64(Out, K);
  Out += '\n';
}

void kv::appendPong(std::string &Out) { Out += "PONG\n"; }

void kv::appendStatsPayload(std::string &Out, std::string_view Json) {
  Out += "STATS ";
  appendU64(Out, Json.size());
  Out += '\n';
  Out.append(Json.data(), Json.size());
  Out += '\n';
}

void kv::appendStatsRequest(std::string &Out) { Out += "STATS\n"; }

void kv::appendProtocolError(std::string &Out) { Out += "ERR proto\n"; }

void kv::appendGet(std::string &Out, uint64_t Key) {
  Out += "GET ";
  appendU64(Out, Key);
  Out += '\n';
}

void kv::appendSet(std::string &Out, uint64_t Key, std::string_view Val) {
  Out += "SET ";
  appendU64(Out, Key);
  Out += ' ';
  appendU64(Out, Val.size());
  Out += '\n';
  Out.append(Val.data(), Val.size());
  Out += '\n';
}

void kv::appendDel(std::string &Out, uint64_t Key) {
  Out += "DEL ";
  appendU64(Out, Key);
  Out += '\n';
}

void kv::appendCas(std::string &Out, uint64_t Key, std::string_view Expect,
                   std::string_view Desired) {
  Out += "CAS ";
  appendU64(Out, Key);
  Out += ' ';
  appendU64(Out, Expect.size());
  Out += ' ';
  appendU64(Out, Desired.size());
  Out += '\n';
  Out.append(Expect.data(), Expect.size());
  Out.append(Desired.data(), Desired.size());
  Out += '\n';
}

void kv::appendMget(std::string &Out, const std::vector<uint64_t> &Keys) {
  Out += "MGET ";
  appendU64(Out, Keys.size());
  for (uint64_t K : Keys) {
    Out += ' ';
    appendU64(Out, K);
  }
  Out += '\n';
}

void kv::appendMset(
    std::string &Out,
    const std::vector<std::pair<uint64_t, std::string>> &Pairs) {
  Out += "MSET ";
  appendU64(Out, Pairs.size());
  Out += '\n';
  for (const auto &[Key, Val] : Pairs) {
    appendU64(Out, Key);
    Out += ' ';
    appendU64(Out, Val.size());
    Out += '\n';
    Out.append(Val.data(), Val.size());
    Out += '\n';
  }
}

KvStatus kv::parseStatusLine(std::string_view Line) {
  if (Line == "OK")
    return KvStatus::Ok;
  if (Line == "NOTFOUND")
    return KvStatus::NotFound;
  if (Line == "MISMATCH")
    return KvStatus::Mismatch;
  if (Line == "ERR full")
    return KvStatus::Full;
  if (Line == "ERR toobig")
    return KvStatus::TooBig;
  return KvStatus::Err;
}
