//===- kv/KvProtocol.h - KV wire protocol ----------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RESP-like line protocol spoken between KvServer and KvClient over
/// loopback TCP. Commands are a text line terminated by '\n'; values are
/// length-prefixed byte blocks (so they may contain any bytes, newlines
/// included), each followed by a '\n' terminator byte:
///
///   GET <key>                      -> VALUE <n>\n<bytes>\n | NOTFOUND
///   SET <key> <n>\n<bytes>\n       -> OK | ERR full | ERR toobig
///   DEL <key>                      -> OK | NOTFOUND
///   CAS <key> <en> <dn>\n<e><d>\n  -> OK | MISMATCH | NOTFOUND
///   MGET <k> <key>*k               -> VALUES <k>\n then k of
///                                     VALUE <n>\n<bytes>\n | NOTFOUND\n
///   MSET <k>\n then k of
///        <key> <n>\n<bytes>\n      -> STATUSES <k>\n then k status lines
///   PING                           -> PONG
///   STATS                          -> STATS <n>\n<json bytes>\n
///   QUIT                           -> OK (server closes after flushing)
///
/// Keys are decimal uint64. The parser is incremental: it consumes
/// complete requests from a connection's read buffer and reports
/// NeedMore for partial ones, so request framing is independent of how
/// the bytes arrive.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_KV_KVPROTOCOL_H
#define CRAFTY_KV_KVPROTOCOL_H

#include "kv/KvTypes.h"

#include <string_view>
#include <utility>
#include <vector>

namespace crafty {
namespace kv {

enum class KvOp : uint8_t {
  Get,
  Set,
  Del,
  Cas,
  Mget,
  Mset,
  Ping,
  Stats,
  Quit
};

/// One parsed request.
struct KvRequest {
  KvOp Op = KvOp::Ping;
  uint64_t Key = 0;
  std::string Val;    // SET payload / CAS desired value.
  std::string Expect; // CAS expected value.
  std::vector<uint64_t> Keys;                           // MGET.
  std::vector<std::pair<uint64_t, std::string>> Pairs;  // MSET.
  /// SET/CAS: the declared block length exceeded the parser's cap; the
  /// bytes were consumed (skimmed) but not kept, so the server answers
  /// `ERR toobig` without touching a shard or dropping the connection.
  bool ValTooLarge = false;
  /// MSET: parallel to Pairs; nonzero entries were skimmed as above.
  std::vector<uint8_t> PairTooLarge;
};

/// Outcome of one parse attempt over the front of a read buffer.
struct ParseResult {
  enum Kind : uint8_t {
    Ok,       ///< One request parsed; Consumed bytes are spent.
    NeedMore, ///< The buffer holds a prefix of a request; read more.
    Malformed ///< The buffer front is not a valid request.
  };
  Kind St = NeedMore;
  size_t Consumed = 0;
};

/// Parses one request from the front of \p Buf into \p Out.
ParseResult parseRequest(std::string_view Buf, KvRequest &Out);

// Response formatting (appends to an output buffer).
void appendStatus(std::string &Out, KvStatus S);
void appendValue(std::string &Out, std::string_view Val);
void appendNotFound(std::string &Out);
void appendValuesHeader(std::string &Out, size_t K);
void appendStatusesHeader(std::string &Out, size_t K);
void appendPong(std::string &Out);
void appendProtocolError(std::string &Out);
/// STATS response: `STATS <n>\n` followed by \p Json and a terminator.
void appendStatsPayload(std::string &Out, std::string_view Json);

// Request formatting (client side).
void appendGet(std::string &Out, uint64_t Key);
void appendSet(std::string &Out, uint64_t Key, std::string_view Val);
void appendDel(std::string &Out, uint64_t Key);
void appendCas(std::string &Out, uint64_t Key, std::string_view Expect,
               std::string_view Desired);
void appendMget(std::string &Out, const std::vector<uint64_t> &Keys);
void appendStatsRequest(std::string &Out);
void appendMset(std::string &Out,
                const std::vector<std::pair<uint64_t, std::string>> &Pairs);

/// Parses a status line (without the '\n') back into a KvStatus;
/// KvStatus::Err for anything unrecognized.
KvStatus parseStatusLine(std::string_view Line);

} // namespace kv
} // namespace crafty

#endif // CRAFTY_KV_KVPROTOCOL_H
