//===- kv/KvServer.cpp - Networked KV front end ---------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "kv/KvServer.h"

#include "support/Compiler.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace crafty;
using namespace crafty::kv;

namespace {

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

KvServer::KvServer(KvStore &Store, const KvServerConfig &Cfg)
    : Store(Store), Cfg(Cfg) {
  if (Store.config().ThreadsPerShard < Store.numShards())
    fatalError("KvServer: the store needs ThreadsPerShard >= numShards so "
               "each worker owns a Tid on every shard");
}

KvServer::~KvServer() { stop(); }

void KvServer::start() {
  if (Started.exchange(true))
    return;

  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    fatalError("KvServer: socket() failed");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Cfg.Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    fatalError("KvServer: bind() failed");
  socklen_t AddrLen = sizeof(Addr);
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
  BoundPort = ntohs(Addr.sin_port);
  if (::listen(ListenFd, Cfg.ListenBacklog) < 0)
    fatalError("KvServer: listen() failed");
  setNonBlocking(ListenFd);

  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (EpollFd < 0 || WakeFd < 0)
    fatalError("KvServer: epoll/eventfd setup failed");
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = ListenFd;
  ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev);
  Ev.data.fd = WakeFd;
  ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);

  // Populate Workers fully before spawning any thread: workerLoop indexes
  // the vector, and a later push_back would reallocate it under a running
  // worker.
  for (unsigned W = 0; W != Store.numShards(); ++W)
    Workers.push_back(std::make_unique<Worker>());
  for (unsigned W = 0; W != Store.numShards(); ++W)
    Workers[W]->Thread = std::thread([this, W] { workerLoop(W); });
  IoThread = std::thread([this] { ioLoop(); });
}

void KvServer::stop() {
  if (!Started.load() || Stopping.exchange(true))
    return;
  // Workers first: they drain their queues and post their last
  // completions; the IO thread then flushes everything and exits.
  for (auto &W : Workers)
    W->Cv.notify_all();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
  uint64_t One = 1;
  (void)!::write(WakeFd, &One, sizeof(One));
  if (IoThread.joinable())
    IoThread.join();
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
  if (WakeFd >= 0)
    ::close(WakeFd);
  ListenFd = EpollFd = WakeFd = -1;
}

//===----------------------------------------------------------------------===//
// IO thread
//===----------------------------------------------------------------------===//

void KvServer::ioLoop() {
  std::vector<epoll_event> Events(64);
  while (true) {
    int N = ::epoll_wait(EpollFd, Events.data(), (int)Events.size(), 100);
    if (N < 0 && errno != EINTR)
      break;
    for (int I = 0; I < N; ++I) {
      int Fd = Events[I].data.fd;
      uint32_t Mask = Events[I].events;
      if (Fd == WakeFd) {
        uint64_t Junk;
        while (::read(WakeFd, &Junk, sizeof(Junk)) > 0)
          ;
        drainCompletions();
        continue;
      }
      if (Fd == ListenFd) {
        acceptReady();
        continue;
      }
      auto It = Conns.find(Fd);
      if (It == Conns.end())
        continue;
      std::shared_ptr<Conn> C = It->second;
      if (Mask & (EPOLLHUP | EPOLLERR)) {
        closeConn(C);
        continue;
      }
      if (Mask & EPOLLIN)
        readReady(C);
      if (!C->Closed.load(std::memory_order_relaxed) && (Mask & EPOLLOUT))
        writeReady(C);
    }
    if (Stopping.load(std::memory_order_acquire)) {
      // Workers are joined before the wake that lands us here, so every
      // completion is already posted; deliver them, flush, and leave.
      drainCompletions();
      for (auto &[Fd, C] : Conns) {
        int Spins = 0;
        while (!C->Closed.load(std::memory_order_relaxed) &&
               !C->OutBuf.empty() && Spins++ < 100) {
          writeReady(C);
          if (!C->OutBuf.empty()) {
            pollfd P{C->Fd, POLLOUT, 0};
            ::poll(&P, 1, 50);
          }
        }
        if (!C->Closed.load(std::memory_order_relaxed)) {
          ::close(C->Fd);
          C->Closed.store(true, std::memory_order_relaxed);
        }
      }
      Conns.clear();
      return;
    }
  }
}

void KvServer::acceptReady() {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return;
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
    Conns[Fd] = std::move(C);
  }
}

void KvServer::readReady(const std::shared_ptr<Conn> &C) {
  char Buf[16384];
  while (true) {
    ssize_t N = ::recv(C->Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C->In.append(Buf, (size_t)N);
      if (C->In.size() > Cfg.MaxBufferedBytes)
        return closeConn(C);
      continue;
    }
    if (N == 0)
      return closeConn(C);
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    return closeConn(C);
  }
  // Frame and dispatch every complete request at the buffer front.
  size_t Off = 0;
  while (Off < C->In.size()) {
    KvRequest Req;
    ParseResult R = parseRequest(
        std::string_view(C->In).substr(Off), Req);
    if (R.St == ParseResult::NeedMore)
      break;
    if (R.St == ParseResult::Malformed) {
      uint64_t Seq = C->NextSeq++;
      std::string Resp;
      appendProtocolError(Resp);
      Completion Comp{C, Seq, std::move(Resp), /*CloseAfter=*/true};
      deliver(Comp);
      C->In.clear();
      return;
    }
    Off += R.Consumed;
    dispatch(C, std::move(Req));
  }
  C->In.erase(0, Off);
}

void KvServer::dispatch(const std::shared_ptr<Conn> &C, KvRequest &&Req) {
  uint64_t Seq = C->NextSeq++;
  if (Req.Op == KvOp::Ping || Req.Op == KvOp::Quit) {
    std::string Resp;
    if (Req.Op == KvOp::Ping)
      appendPong(Resp);
    else
      appendStatus(Resp, KvStatus::Ok);
    Served.fetch_add(1, std::memory_order_relaxed);
    Completion Comp{C, Seq, std::move(Resp), Req.Op == KvOp::Quit};
    deliver(Comp);
    return;
  }
  unsigned W = 0;
  switch (Req.Op) {
  case KvOp::Get:
  case KvOp::Set:
  case KvOp::Del:
  case KvOp::Cas:
    W = Store.shardOf(Req.Key);
    break;
  case KvOp::Mget:
    W = Req.Keys.empty() ? 0 : Store.shardOf(Req.Keys[0]);
    break;
  case KvOp::Mset:
    W = Req.Pairs.empty() ? 0 : Store.shardOf(Req.Pairs[0].first);
    break;
  default:
    break;
  }
  Worker &Wk = *Workers[W];
  {
    MutexLock Lk(Wk.Mu);
    Wk.Queue.push_back(Work{C, Seq, std::move(Req)});
  }
  Wk.Cv.notify_one();
}

void KvServer::writeReady(const std::shared_ptr<Conn> &C) {
  while (!C->OutBuf.empty()) {
    ssize_t N = ::send(C->Fd, C->OutBuf.data(), C->OutBuf.size(),
                       MSG_NOSIGNAL);
    if (N > 0) {
      C->OutBuf.erase(0, (size_t)N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (N < 0 && errno == EINTR)
      continue;
    return closeConn(C);
  }
  if (C->OutBuf.empty() && C->CloseAfterFlush)
    return closeConn(C);
  updateWriteInterest(*C);
}

void KvServer::updateWriteInterest(Conn &C) {
  epoll_event Ev{};
  Ev.events = EPOLLIN | (C.OutBuf.empty() ? 0u : (uint32_t)EPOLLOUT);
  Ev.data.fd = C.Fd;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
}

void KvServer::deliver(Completion &Comp) {
  Conn &C = *Comp.C;
  if (C.Closed.load(std::memory_order_relaxed))
    return;
  C.Ready.emplace(Comp.Seq, std::move(Comp.Resp));
  if (Comp.CloseAfter)
    C.CloseAfterSeq = Comp.Seq;
  // Transmit strictly in request order.
  for (auto It = C.Ready.begin();
       It != C.Ready.end() && It->first == C.NextSend;
       It = C.Ready.erase(It), ++C.NextSend) {
    C.OutBuf += It->second;
    if (C.CloseAfterSeq == It->first)
      C.CloseAfterFlush = true;
  }
  writeReady(Comp.C);
}

void KvServer::drainCompletions() {
  std::vector<Completion> Batch;
  {
    MutexLock Lk(CompMu);
    Batch.swap(Completions);
  }
  for (Completion &Comp : Batch)
    deliver(Comp);
}

void KvServer::closeConn(const std::shared_ptr<Conn> &C) {
  if (C->Closed.exchange(true, std::memory_order_relaxed))
    return;
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, C->Fd, nullptr);
  ::close(C->Fd);
  Conns.erase(C->Fd);
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void KvServer::postCompletion(Completion &&Comp) {
  {
    MutexLock Lk(CompMu);
    Completions.push_back(std::move(Comp));
  }
  uint64_t One = 1;
  (void)!::write(WakeFd, &One, sizeof(One));
}

void KvServer::workerLoop(unsigned W) {
  Worker &Wk = *Workers[W];
  std::vector<Work> Batch;
  std::vector<bool> Touched(Store.numShards(), false);
  while (true) {
    Batch.clear();
    {
      MutexUniqueLock Lk(Wk.Mu);
      // Explicit wait loop (not the predicate overload): the analysis
      // sees the capability held for the whole scope, so the Queue
      // check stays inside it rather than in an unannotated lambda.
      while (Wk.Queue.empty() && !Stopping.load(std::memory_order_acquire))
        Wk.Cv.wait(Lk.raw());
      if (Wk.Queue.empty() && Stopping.load(std::memory_order_acquire))
        return;
      Batch.swap(Wk.Queue);
    }
    // Execute the whole drained batch, then make it durable with one
    // persist barrier per touched shard, then publish every response:
    // group commit -- no acknowledgement precedes durability.
    std::fill(Touched.begin(), Touched.end(), false);
    std::vector<Completion> Comps;
    Comps.reserve(Batch.size());
    for (Work &Item : Batch) {
      std::string Resp;
      execute(W, Item.Req, Resp, Touched);
      Comps.push_back(Completion{std::move(Item.C), Item.Seq,
                                 std::move(Resp), false});
    }
    for (unsigned S = 0; S != Touched.size(); ++S)
      if (Touched[S])
        Store.shard(S).persistAck(W);
    Served.fetch_add(Comps.size(), std::memory_order_relaxed);
    for (Completion &Comp : Comps)
      postCompletion(std::move(Comp));
  }
}

void KvServer::execute(unsigned W, const KvRequest &Req, std::string &Resp,
                       std::vector<bool> &Touched) {
  switch (Req.Op) {
  case KvOp::Get: {
    std::string Val;
    KvStatus St = Store.get(W, Req.Key, Val);
    if (St == KvStatus::Ok)
      appendValue(Resp, Val);
    else
      appendStatus(Resp, St);
    break;
  }
  case KvOp::Set: {
    KvStatus St = Store.set(W, Req.Key, Req.Val);
    if (St == KvStatus::Ok)
      Touched[Store.shardOf(Req.Key)] = true;
    appendStatus(Resp, St);
    break;
  }
  case KvOp::Del: {
    KvStatus St = Store.del(W, Req.Key);
    if (St == KvStatus::Ok)
      Touched[Store.shardOf(Req.Key)] = true;
    appendStatus(Resp, St);
    break;
  }
  case KvOp::Cas: {
    KvStatus St = Store.cas(W, Req.Key, Req.Expect, Req.Val);
    if (St == KvStatus::Ok)
      Touched[Store.shardOf(Req.Key)] = true;
    appendStatus(Resp, St);
    break;
  }
  case KvOp::Mget: {
    std::vector<KvResult> Results = Store.mget(W, Req.Keys);
    appendValuesHeader(Resp, Results.size());
    for (const KvResult &R : Results) {
      if (R.Status == KvStatus::Ok)
        appendValue(Resp, R.Value);
      else
        appendNotFound(Resp);
    }
    break;
  }
  case KvOp::Mset: {
    std::vector<KvBatchItem> Items;
    Items.reserve(Req.Pairs.size());
    for (const auto &[Key, Val] : Req.Pairs)
      Items.push_back(KvBatchItem{Key, Val, KvStatus::Err});
    // Durability comes from the group-commit barrier after the batch.
    Store.msetBatch(W, Items, /*Durable=*/false);
    appendStatusesHeader(Resp, Items.size());
    for (const KvBatchItem &Item : Items) {
      if (Item.Status == KvStatus::Ok)
        Touched[Store.shardOf(Item.Key)] = true;
      appendStatus(Resp, Item.Status);
    }
    break;
  }
  case KvOp::Ping:
    appendPong(Resp);
    break;
  case KvOp::Quit:
    appendStatus(Resp, KvStatus::Ok);
    break;
  }
}
