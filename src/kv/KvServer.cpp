//===- kv/KvServer.cpp - Share-nothing networked KV front end -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "kv/KvServer.h"

#include "core/Crafty.h"
#include "support/Clock.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

using namespace crafty;
using namespace crafty::kv;

namespace {

/// epoll payload tags below FirstConnId address the worker's own fds.
constexpr uint64_t WakeTag = 0;
constexpr uint64_t ListenTag = 1;
constexpr uint64_t FirstConnId = 2;

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

void appendJsonU64(std::string &Out, const char *Key, uint64_t V,
                   bool Comma = true) {
  Out += '"';
  Out += Key;
  Out += "\":";
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  Out += Buf;
  if (Comma)
    Out += ',';
}

} // namespace

unsigned KvServer::autoWorkerCount(unsigned Shards) {
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores == 0)
    Cores = 1;
  return std::min(Shards, Cores);
}

KvServer::KvServer(KvStore &Store, const KvServerConfig &Cfg)
    : Store(Store), Cfg(Cfg),
      NumWorkers(Cfg.Workers ? std::min(Cfg.Workers, Store.numShards())
                             : autoWorkerCount(Store.numShards())) {
  if (Store.config().ThreadsPerShard < NumWorkers)
    fatalError("KvServer: the store needs ThreadsPerShard >= the worker "
               "count so each worker owns a Tid on every shard");
}

KvServer::~KvServer() { stop(); }

void KvServer::start() {
  if (Started.exchange(true))
    return;

  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    fatalError("KvServer: socket() failed");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Cfg.Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    fatalError("KvServer: bind() failed");
  socklen_t AddrLen = sizeof(Addr);
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
  BoundPort = ntohs(Addr.sin_port);
  if (::listen(ListenFd, Cfg.ListenBacklog) < 0)
    fatalError("KvServer: listen() failed");
  setNonBlocking(ListenFd);

  // Populate Workers fully before spawning any thread: workerLoop and
  // postMsg index the vector, and a later push_back would reallocate it
  // under a running worker.
  for (unsigned W = 0; W != NumWorkers; ++W) {
    auto Wk = std::make_unique<Worker>();
    Wk->Idx = W;
    Wk->EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
    Wk->WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (Wk->EpollFd < 0 || Wk->WakeFd < 0)
      fatalError("KvServer: epoll/eventfd setup failed");
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.u64 = WakeTag;
    ::epoll_ctl(Wk->EpollFd, EPOLL_CTL_ADD, Wk->WakeFd, &Ev);
    Wk->NextConnId = FirstConnId;
    Wk->Touched.assign(Store.numShards(), 0);
    Wk->StagedOps.assign(Store.numShards(), {});
    Wk->S.OpsPerShard.assign(Store.numShards(), 0);
    Workers.push_back(std::move(Wk));
  }
  // Worker 0 owns the listener; accepted fds are handed round-robin.
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.u64 = ListenTag;
  ::epoll_ctl(Workers[0]->EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev);

  for (unsigned W = 0; W != NumWorkers; ++W)
    Workers[W]->Thread = std::thread([this, W] { workerLoop(W); });
}

void KvServer::stop() {
  if (!Started.load() || Stopping.exchange(true))
    return;
  for (auto &Wk : Workers) {
    uint64_t One = 1;
    (void)!::write(Wk->WakeFd, &One, sizeof(One));
  }
  for (auto &Wk : Workers)
    if (Wk->Thread.joinable())
      Wk->Thread.join();
  for (auto &Wk : Workers) {
    if (Wk->EpollFd >= 0)
      ::close(Wk->EpollFd);
    if (Wk->WakeFd >= 0)
      ::close(Wk->WakeFd);
    Wk->EpollFd = Wk->WakeFd = -1;
  }
  if (ListenFd >= 0)
    ::close(ListenFd);
  ListenFd = -1;
}

//===----------------------------------------------------------------------===//
// Worker event loop
//===----------------------------------------------------------------------===//

void KvServer::workerLoop(unsigned W) {
  Worker &Wk = *Workers[W];
  std::vector<epoll_event> Events(128);
  bool ListenerArmed = (W == 0);
  while (true) {
    bool Stop = Stopping.load(std::memory_order_acquire);
    if (Stop && ListenerArmed) {
      ::epoll_ctl(Wk.EpollFd, EPOLL_CTL_DEL, ListenFd, nullptr);
      ListenerArmed = false;
    }
    int N = ::epoll_wait(Wk.EpollFd, Events.data(), (int)Events.size(),
                         Stop ? 5 : -1);
    if (N < 0 && errno != EINTR)
      break;
    for (int I = 0; I < N; ++I) {
      uint64_t Tag = Events[I].data.u64;
      uint32_t Mask = Events[I].events;
      if (Tag == WakeTag) {
        uint64_t Junk;
        while (::read(Wk.WakeFd, &Junk, sizeof(Junk)) > 0)
          ;
        continue;
      }
      if (Tag == ListenTag) {
        if (!Stop)
          acceptReady(Wk);
        continue;
      }
      auto It = Wk.Conns.find(Tag);
      if (It == Wk.Conns.end())
        continue;
      if (Mask & (EPOLLHUP | EPOLLERR)) {
        closeConn(Wk, *It->second);
        continue;
      }
      if ((Mask & EPOLLIN) && !Stop) {
        readReady(Wk, *It->second);
        It = Wk.Conns.find(Tag); // readReady may close the connection.
        if (It == Wk.Conns.end())
          continue;
      }
      if (Mask & EPOLLOUT)
        flushConn(Wk, *It->second);
    }
    processInbox(Wk);
    commitCycle(Wk);
    if (Stop) {
      // Exit only once no cross-worker work can still land in the inbox:
      // scatter-gather pieces and their completions are all counted.
      MutexLock Lk(Wk.InboxMu);
      if (Wk.Inbox.empty() &&
          CrossInFlight.load(std::memory_order_acquire) == 0)
        break;
    }
  }
  // Final flush: every releasable response was marked Ready by the last
  // commitCycle; push the bytes out (bounded) and close. flushConn can
  // closeConn (QUIT slots), which erases the entry -- advance first.
  for (auto It = Wk.Conns.begin(); It != Wk.Conns.end();) {
    Conn &C = *It->second;
    ++It;
    for (int Spin = 0; Spin != 100; ++Spin) {
      flushConn(Wk, C);
      if (C.Fd < 0 || (C.OutBuf.empty() &&
                       (C.Pending.empty() ||
                        C.Pending.front().St != Slot::Ready)))
        break;
      pollfd P{C.Fd, POLLOUT, 0};
      ::poll(&P, 1, 50);
    }
    if (C.Fd >= 0) {
      ::close(C.Fd);
      C.Fd = -1;
    }
  }
  Wk.Conns.clear();
  Wk.Doomed.clear();
}

void KvServer::acceptReady(Worker &Wk) {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return;
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    unsigned Target = NextAcceptWorker;
    NextAcceptWorker = (NextAcceptWorker + 1) % NumWorkers;
    if (Target == Wk.Idx) {
      adoptConn(Wk, Fd);
    } else {
      InboxMsg Msg;
      Msg.K = InboxMsg::NewConn;
      Msg.Fd = Fd;
      postMsg(Target, std::move(Msg));
    }
  }
}

void KvServer::adoptConn(Worker &Wk, int Fd) {
  auto C = std::make_unique<Conn>();
  C->Fd = Fd;
  C->Id = Wk.NextConnId++;
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.u64 = C->Id;
  ::epoll_ctl(Wk.EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
  ++Wk.S.ConnsAccepted;
  Wk.Conns.emplace(C->Id, std::move(C));
}

void KvServer::closeConn(Worker &Wk, Conn &C) {
  ::epoll_ctl(Wk.EpollFd, EPOLL_CTL_DEL, C.Fd, nullptr);
  ::close(C.Fd);
  C.Fd = -1;
  // Outstanding scatter-gather requests keep their SgRequest alive via
  // shared_ptr; their completions will find no connection and drop.
  // The Conn object itself must outlive the cycle: staged operations may
  // hold destinations inside its slots, so it moves to the graveyard and
  // dies at the commit point.
  auto It = Wk.Conns.find(C.Id);
  if (It != Wk.Conns.end()) {
    Wk.Doomed.push_back(std::move(It->second));
    Wk.Conns.erase(It);
  }
}

void KvServer::markDirty(Worker &Wk, Conn &C) {
  if (std::find(Wk.DirtyConns.begin(), Wk.DirtyConns.end(), C.Id) ==
      Wk.DirtyConns.end())
    Wk.DirtyConns.push_back(C.Id);
}

KvServer::Slot &KvServer::appendSlot(Worker &Wk, Conn &C) {
  C.Pending.emplace_back();
  Slot &S = C.Pending.back();
  S.SlotSeq = C.NextSlotSeq++;
  markDirty(Wk, C);
  return S;
}

//===----------------------------------------------------------------------===//
// Request path (single worker, no handoffs)
//===----------------------------------------------------------------------===//

void KvServer::readReady(Worker &Wk, Conn &C) {
  char Buf[16384];
  while (true) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.In.append(Buf, (size_t)N);
      if (C.In.size() > Cfg.MaxBufferedBytes)
        return closeConn(Wk, C);
      continue;
    }
    if (N == 0)
      return closeConn(Wk, C);
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    return closeConn(Wk, C);
  }
  if (C.Draining) {
    C.In.clear();
    return;
  }
  uint64_t ArrivalNs = monotonicNanos();
  size_t Off = 0;
  while (Off < C.In.size()) {
    KvRequest Req;
    ParseResult R =
        parseRequest(std::string_view(C.In).substr(Off), Req);
    if (R.St == ParseResult::NeedMore)
      break;
    if (R.St == ParseResult::Malformed) {
      Slot &S = appendSlot(Wk, C);
      appendProtocolError(S.Resp);
      S.St = Slot::Ready;
      S.CloseAfter = true;
      C.Draining = true;
      C.In.clear();
      return;
    }
    Off += R.Consumed;
    handleRequest(Wk, C, std::move(Req), ArrivalNs);
  }
  C.In.erase(0, Off);
}

void KvServer::handleRequest(Worker &Wk, Conn &C, KvRequest &&Req,
                             uint64_t NowNs) {
  // A request behind an in-flight cross-shard operation of the same
  // connection waits for it: its effects must be visible (and durable)
  // before anything later executes. Parked before a slot exists --
  // finishSg replays in FIFO order, so slot order stays request order.
  if (C.SgInFlight) {
    C.Parked.push_back(ParkedReq{std::move(Req), NowNs});
    return;
  }
  dispatchRequest(Wk, C, std::move(Req), NowNs);
}

void KvServer::dispatchRequest(Worker &Wk, Conn &C, KvRequest &&Req,
                               uint64_t NowNs) {
  Slot &S = appendSlot(Wk, C);
  ++Wk.S.Requests;
  switch (Req.Op) {
  case KvOp::Ping:
    appendPong(S.Resp);
    S.St = Slot::Ready;
    Served.fetch_add(1, std::memory_order_relaxed);
    return;
  case KvOp::Quit:
    appendStatus(S.Resp, KvStatus::Ok);
    S.St = Slot::Ready;
    S.CloseAfter = true;
    Served.fetch_add(1, std::memory_order_relaxed);
    return;
  case KvOp::Stats:
    startStats(Wk, C, S);
    return;
  case KvOp::Get:
  case KvOp::Set:
  case KvOp::Del:
  case KvOp::Cas: {
    if (Req.ValTooLarge) {
      // The parser skimmed an oversize payload: answer `ERR toobig`
      // immediately without staging anything. The connection stays
      // healthy -- the request framed cleanly, it was just too big.
      appendStatus(S.Resp, KvStatus::TooBig);
      S.St = Slot::Ready;
      Served.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Stage the operation; the commit point executes it inside the
    // shard's cycle batch. The slot owns the payload the views target.
    unsigned Shard = Store.shardOf(Req.Key);
    S.Op = Req.Op;
    S.ArrivalNs = NowNs;
    S.Val = std::move(Req.Val);
    S.Expect = std::move(Req.Expect);
    KvCycleOp Op;
    Op.Key = Req.Key;
    if (Req.Op == KvOp::Get) {
      Op.K = KvCycleOp::Get;
      S.Results.resize(1);
      Op.Result = &S.Results[0];
    } else {
      Op.K = Req.Op == KvOp::Set   ? KvCycleOp::Set
             : Req.Op == KvOp::Del ? KvCycleOp::Del
                                   : KvCycleOp::Cas;
      Op.Val = S.Val;
      Op.Expect = S.Expect;
      S.Statuses.assign(1, KvStatus::Err);
      Op.Status = &S.Statuses[0];
    }
    // A single-shard request runs locally even on a foreign shard: the
    // handoff would cost more than shard affinity buys.
    Wk.StagedOps[Shard].push_back(Op);
    ++Wk.S.OpsPerShard[Shard];
    Served.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  case KvOp::Mget:
  case KvOp::Mset:
    break;
  }

  // Multi-key: stage on this worker unless the keys span shards owned
  // by other workers (then scatter-gather).
  size_t N = Req.Op == KvOp::Mget ? Req.Keys.size() : Req.Pairs.size();
  if (N == 0) {
    if (Req.Op == KvOp::Mget)
      appendValuesHeader(S.Resp, 0);
    else
      appendStatusesHeader(S.Resp, 0);
    S.St = Slot::Ready;
    Served.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::vector<std::vector<uint32_t>> ByShard(Store.numShards());
  bool Local = true;
  for (uint32_t I = 0; I != (uint32_t)N; ++I) {
    // Skimmed MSET pairs are answered `ERR toobig` in place and never
    // staged (their payload was discarded by the parser).
    if (Req.Op == KvOp::Mset && I < Req.PairTooLarge.size() &&
        Req.PairTooLarge[I])
      continue;
    uint64_t Key =
        Req.Op == KvOp::Mget ? Req.Keys[I] : Req.Pairs[I].first;
    unsigned Shard = Store.shardOf(Key);
    if (ByShard[Shard].empty())
      Local &= shardWorker(Shard) == Wk.Idx;
    ByShard[Shard].push_back(I);
  }
  unsigned Groups = 0;
  for (const auto &G : ByShard)
    Groups += !G.empty();
  if (!Local && Groups > 1)
    return startScatterGather(Wk, C, S, std::move(Req), ByShard, NowNs);

  // Local multi-key: stage each key on its shard in request order. The
  // per-shard lists keep arrival order, so the rendered response is
  // consistent with every earlier staged operation.
  S.Op = Req.Op;
  S.ArrivalNs = NowNs;
  if (Req.Op == KvOp::Mget) {
    std::vector<uint64_t> Keys = std::move(Req.Keys);
    S.Results.resize(N);
    for (uint32_t I = 0; I != (uint32_t)N; ++I) {
      KvCycleOp Op;
      Op.K = KvCycleOp::Get;
      Op.Key = Keys[I];
      Op.Result = &S.Results[I];
      unsigned Shard = Store.shardOf(Op.Key);
      Wk.StagedOps[Shard].push_back(Op);
      ++Wk.S.OpsPerShard[Shard];
    }
  } else {
    S.Pairs = std::move(Req.Pairs);
    S.Statuses.assign(N, KvStatus::Err);
    for (uint32_t I = 0; I != (uint32_t)N; ++I) {
      if (I < Req.PairTooLarge.size() && Req.PairTooLarge[I]) {
        S.Statuses[I] = KvStatus::TooBig;
        continue;
      }
      KvCycleOp Op;
      Op.K = KvCycleOp::Set;
      Op.Key = S.Pairs[I].first;
      Op.Val = S.Pairs[I].second;
      Op.Status = &S.Statuses[I];
      unsigned Shard = Store.shardOf(Op.Key);
      Wk.StagedOps[Shard].push_back(Op);
      ++Wk.S.OpsPerShard[Shard];
    }
  }
  Served.fetch_add(1, std::memory_order_relaxed);
}

void KvServer::executeStaged(Worker &Wk) {
  bool Any = false;
  for (const auto &Ops : Wk.StagedOps)
    if (!Ops.empty()) {
      Any = true;
      break;
    }
  if (!Any)
    return;
  uint64_t T1 = monotonicNanos();
  for (unsigned S = 0; S != (unsigned)Wk.StagedOps.size(); ++S) {
    std::vector<KvCycleOp> &Ops = Wk.StagedOps[S];
    if (Ops.empty())
      continue;
    if (Store.shard(S).runCycle(Wk.Idx, Ops.data(), Ops.size()))
      Wk.Touched[S] = 1;
    Ops.clear();
  }
  uint64_t T2 = monotonicNanos();
  Wk.S.ExecuteNs += T2 - T1;
  // Stamp the slots this execution covered: queue wait is arrival to
  // first execution, and ExecEndNs anchors commit-wait at release.
  for (uint64_t Id : Wk.DirtyConns) {
    auto It = Wk.Conns.find(Id);
    if (It == Wk.Conns.end())
      continue;
    for (Slot &S : It->second->Pending) {
      if (S.St != Slot::Staged || S.ExecEndNs)
        continue;
      S.ExecEndNs = T2;
      Wk.S.QueueWaitNs += T1 - std::min(S.ArrivalNs, T1);
      S.ArrivalNs = 0;
    }
  }
}

void KvServer::renderSlotResponse(Slot &S) {
  switch (S.Op) {
  case KvOp::Get: {
    const KvResult &R = S.Results[0];
    if (R.Status == KvStatus::Ok)
      appendValue(S.Resp, R.Value);
    else
      appendStatus(S.Resp, R.Status);
    break;
  }
  case KvOp::Set:
  case KvOp::Del:
  case KvOp::Cas:
    appendStatus(S.Resp, S.Statuses[0]);
    break;
  case KvOp::Mget:
    appendValuesHeader(S.Resp, S.Results.size());
    for (const KvResult &R : S.Results) {
      if (R.Status == KvStatus::Ok)
        appendValue(S.Resp, R.Value);
      else
        appendNotFound(S.Resp);
    }
    break;
  case KvOp::Mset:
    appendStatusesHeader(S.Resp, S.Statuses.size());
    for (KvStatus St : S.Statuses)
      appendStatus(S.Resp, St);
    break;
  default:
    appendProtocolError(S.Resp);
    break;
  }
  // Drop the staged payload; the rendered bytes are all that's left.
  S.Val.clear();
  S.Expect.clear();
  S.Pairs.clear();
  S.Results.clear();
  S.Statuses.clear();
}

//===----------------------------------------------------------------------===//
// Scatter-gather (cross-shard MGET/MSET, STATS)
//===----------------------------------------------------------------------===//

void KvServer::startScatterGather(
    Worker &Wk, Conn &C, Slot &S, KvRequest &&Req,
    const std::vector<std::vector<uint32_t>> &ByShard, uint64_t NowNs) {
  // Flush the staged batches first: pieces posted to other workers must
  // not overtake operations staged before this request (a pipelined SET
  // of a key this MGET reads, for instance). The executed slots stay
  // Staged and release at the commit point as usual.
  executeStaged(Wk);
  auto Sg = std::make_shared<SgRequest>();
  Sg->Op = Req.Op;
  Sg->OwnerWorker = Wk.Idx;
  Sg->ConnId = C.Id;
  Sg->SlotSeq = S.SlotSeq;
  Sg->PostedNs = NowNs;
  if (Req.Op == KvOp::Mget) {
    Sg->Keys = std::move(Req.Keys);
    Sg->Results.resize(Sg->Keys.size());
  } else {
    Sg->Pairs = std::move(Req.Pairs);
    Sg->Statuses.assign(Sg->Pairs.size(), KvStatus::Err);
    // Skimmed pairs were excluded from every piece; answer them here.
    for (size_t I = 0;
         I != Req.PairTooLarge.size() && I != Sg->Statuses.size(); ++I)
      if (Req.PairTooLarge[I])
        Sg->Statuses[I] = KvStatus::TooBig;
  }
  for (unsigned Shard = 0; Shard != ByShard.size(); ++Shard) {
    if (ByShard[Shard].empty())
      continue;
    Sg->Pieces.emplace_back();
    Sg->Pieces.back().Shard = Shard;
    Sg->Pieces.back().Idx = ByShard[Shard];
  }
  Sg->Remaining.store((unsigned)Sg->Pieces.size(),
                      std::memory_order_relaxed);
  S.St = Slot::WaitingSg;
  S.Sg = Sg;
  ++Wk.S.SgRequests;
  ++C.SgInFlight; // Later requests on this connection park behind it.
  CrossInFlight.fetch_add(1, std::memory_order_acq_rel);
  for (unsigned P = 0; P != Sg->Pieces.size(); ++P) {
    unsigned Target = shardWorker(Sg->Pieces[P].Shard);
    if (Target == Wk.Idx) {
      stageSgPiece(Wk, Sg, P, NowNs);
    } else {
      InboxMsg Msg;
      Msg.K = InboxMsg::SgPiece;
      Msg.Piece = P;
      Msg.Sg = Sg;
      postMsg(Target, std::move(Msg));
    }
  }
}

void KvServer::stageSgPiece(Worker &Wk,
                            const std::shared_ptr<SgRequest> &Sg,
                            unsigned Piece, uint64_t NowNs) {
  // Stage the piece's keys onto the shard's cycle batch; destinations
  // live in the shared SgRequest, disjoint per piece. Execution happens
  // at this worker's commit point, inside its group-commit batch.
  const SgRequest::Piece &P = Sg->Pieces[Piece];
  Wk.S.QueueWaitNs += NowNs - std::min(Sg->PostedNs, NowNs);
  ++Wk.S.SgPieces;
  for (uint32_t I : P.Idx) {
    KvCycleOp Op;
    if (Sg->Op == KvOp::Mget) {
      Op.K = KvCycleOp::Get;
      Op.Key = Sg->Keys[I];
      Op.Result = &Sg->Results[I];
    } else {
      Op.K = KvCycleOp::Set;
      Op.Key = Sg->Pairs[I].first;
      Op.Val = Sg->Pairs[I].second;
      Op.Status = &Sg->Statuses[I];
    }
    Wk.StagedOps[P.Shard].push_back(Op);
  }
  Wk.S.OpsPerShard[P.Shard] += P.Idx.size();
  // The completion decrement waits for this cycle's execution and
  // barrier: a piece is reported done only once its writes are durable.
  Wk.PieceDecs.push_back(Sg);
}

void KvServer::finishSg(Worker &Wk, const std::shared_ptr<SgRequest> &Sg) {
  CrossInFlight.fetch_sub(1, std::memory_order_acq_rel);
  auto It = Wk.Conns.find(Sg->ConnId);
  if (It == Wk.Conns.end())
    return; // Connection closed while the request was in flight.
  Conn &C = *It->second;
  for (Slot &S : C.Pending) {
    if (S.SlotSeq != Sg->SlotSeq)
      continue;
    if (Sg->Op == KvOp::Mget) {
      appendValuesHeader(S.Resp, Sg->Results.size());
      for (const KvResult &R : Sg->Results) {
        if (R.Status == KvStatus::Ok)
          appendValue(S.Resp, R.Value);
        else
          appendNotFound(S.Resp);
      }
    } else {
      appendStatusesHeader(S.Resp, Sg->Statuses.size());
      for (KvStatus St : Sg->Statuses)
        appendStatus(S.Resp, St);
    }
    S.St = Slot::Ready;
    S.Sg.reset();
    Wk.S.CommitWaitNs += monotonicNanos() - Sg->PostedNs;
    Served.fetch_add(1, std::memory_order_relaxed);
    markDirty(Wk, C);
    break;
  }
  // Replay requests parked behind this scatter-gather, in order. A
  // replayed cross-shard request re-parks whatever is still behind it.
  --C.SgInFlight;
  while (!C.Parked.empty() && C.SgInFlight == 0 && C.Fd >= 0) {
    ParkedReq P = std::move(C.Parked.front());
    C.Parked.pop_front();
    dispatchRequest(Wk, C, std::move(P.Req), P.ArrivalNs);
  }
}

void KvServer::startStats(Worker &Wk, Conn &C, Slot &S) {
  auto St = std::make_shared<StatsRequest>();
  St->OwnerWorker = Wk.Idx;
  St->ConnId = C.Id;
  St->SlotSeq = S.SlotSeq;
  St->PerWorker.resize(NumWorkers);
  St->Htm.assign(NumWorkers,
                 std::vector<HtmStats>(Store.numShards()));
  St->Remaining.store(NumWorkers, std::memory_order_relaxed);
  S.St = Slot::WaitingSg;
  S.Stats = St;
  CrossInFlight.fetch_add(1, std::memory_order_acq_rel);
  for (unsigned W = 0; W != NumWorkers; ++W) {
    if (W == Wk.Idx)
      continue;
    InboxMsg Msg;
    Msg.K = InboxMsg::StatsPiece;
    Msg.Stats = St;
    postMsg(W, std::move(Msg));
  }
  fillStatsContribution(Wk, St);
}

void KvServer::fillStatsContribution(
    Worker &Wk, const std::shared_ptr<StatsRequest> &St) {
  St->PerWorker[Wk.Idx] = Wk.S;
  for (unsigned S = 0; S != Store.numShards(); ++S)
    St->Htm[Wk.Idx][S] = Store.shard(S).htmStatsFor(Wk.Idx);
  if (St->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (St->OwnerWorker == Wk.Idx) {
      finishStats(Wk, St);
    } else {
      InboxMsg Msg;
      Msg.K = InboxMsg::StatsDone;
      Msg.Stats = St;
      postMsg(St->OwnerWorker, std::move(Msg));
    }
  }
}

std::string KvServer::formatStatsJson(const StatsRequest &St) {
  std::string J = "{\"version\":\"crafty-kv-stats-v1\",\"workers\":[";
  for (unsigned W = 0; W != NumWorkers; ++W) {
    const WorkerStats &S = St.PerWorker[W];
    if (W)
      J += ',';
    J += '{';
    appendJsonU64(J, "worker", W);
    appendJsonU64(J, "requests", S.Requests);
    appendJsonU64(J, "conns_accepted", S.ConnsAccepted);
    appendJsonU64(J, "queue_wait_ns", S.QueueWaitNs);
    appendJsonU64(J, "execute_ns", S.ExecuteNs);
    appendJsonU64(J, "commit_wait_ns", S.CommitWaitNs);
    appendJsonU64(J, "barriers", S.Barriers);
    appendJsonU64(J, "barrier_ns", S.BarrierNs);
    appendJsonU64(J, "sg_requests", S.SgRequests);
    appendJsonU64(J, "sg_pieces", S.SgPieces);
    J += "\"ops_per_shard\":[";
    for (unsigned Sh = 0; Sh != Store.numShards(); ++Sh) {
      if (Sh)
        J += ',';
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    (unsigned long long)S.OpsPerShard[Sh]);
      J += Buf;
    }
    J += "]}";
  }
  J += "],\"shards\":[";
  for (unsigned Sh = 0; Sh != Store.numShards(); ++Sh) {
    uint64_t Ops = 0;
    HtmStats H;
    for (unsigned W = 0; W != NumWorkers; ++W) {
      Ops += St.PerWorker[W].OpsPerShard[Sh];
      H += St.Htm[W][Sh];
    }
    PMemStats P = Store.shard(Sh).pool().stats();
    if (Sh)
      J += ',';
    J += '{';
    appendJsonU64(J, "shard", Sh);
    appendJsonU64(J, "ops", Ops);
    appendJsonU64(J, "htm_commits", H.Commits);
    appendJsonU64(J, "htm_aborts", H.aborts());
    appendJsonU64(J, "htm_abort_capacity", H.AbortCapacity);
    appendJsonU64(J, "clwb_calls", P.ClwbCalls);
    appendJsonU64(J, "lines_scheduled", P.LinesScheduled);
    appendJsonU64(J, "drains", P.Drains);
    appendJsonU64(J, "empty_drains", P.EmptyDrains);
    appendJsonU64(J, "evicted_lines", P.EvictedLines, /*Comma=*/false);
    J += '}';
  }
  J += "]}";
  return J;
}

void KvServer::finishStats(Worker &Wk,
                           const std::shared_ptr<StatsRequest> &St) {
  CrossInFlight.fetch_sub(1, std::memory_order_acq_rel);
  auto It = Wk.Conns.find(St->ConnId);
  if (It == Wk.Conns.end())
    return;
  Conn &C = *It->second;
  for (Slot &S : C.Pending) {
    if (S.SlotSeq != St->SlotSeq)
      continue;
    appendStatsPayload(S.Resp, formatStatsJson(*St));
    S.St = Slot::Ready;
    S.Stats.reset();
    Served.fetch_add(1, std::memory_order_relaxed);
    markDirty(Wk, C);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Inbox, group commit and response flushing
//===----------------------------------------------------------------------===//

void KvServer::postMsg(unsigned W, InboxMsg &&Msg) {
  Worker &Wk = *Workers[W];
  {
    MutexLock Lk(Wk.InboxMu);
    Wk.Inbox.push_back(std::move(Msg));
  }
  uint64_t One = 1;
  (void)!::write(Wk.WakeFd, &One, sizeof(One));
}

void KvServer::processInbox(Worker &Wk) {
  std::vector<InboxMsg> Batch;
  {
    MutexLock Lk(Wk.InboxMu);
    Batch.swap(Wk.Inbox);
  }
  uint64_t NowNs = Batch.empty() ? 0 : monotonicNanos();
  for (InboxMsg &Msg : Batch) {
    switch (Msg.K) {
    case InboxMsg::NewConn:
      adoptConn(Wk, Msg.Fd);
      break;
    case InboxMsg::SgPiece:
      stageSgPiece(Wk, Msg.Sg, Msg.Piece, NowNs);
      break;
    case InboxMsg::SgDone:
      finishSg(Wk, Msg.Sg);
      break;
    case InboxMsg::StatsPiece:
      fillStatsContribution(Wk, Msg.Stats);
      break;
    case InboxMsg::StatsDone:
      finishStats(Wk, Msg.Stats);
      break;
    }
  }
}

void KvServer::commitCycle(Worker &Wk) {
  // Rounds: completing scatter-gather pieces can unpark requests that
  // stage more work (finishSg replay), so repeat until quiescent before
  // releasing responses.
  while (true) {
    bool Any = false;
    for (const auto &Ops : Wk.StagedOps)
      if (!Ops.empty()) {
        Any = true;
        break;
      }
    if (!Any && Wk.PieceDecs.empty())
      break;
    // 1. Execute this round's staged batches (one runCycle per shard).
    executeStaged(Wk);
    // 2. Group commit, two-phase: begin the barrier on every shard this
    //    round wrote (cache write-back + forced commits), then end them
    //    all -- the per-shard fixed drain latencies overlap in the end
    //    pass instead of serializing.
    uint64_t T0 = monotonicNanos();
    std::vector<std::pair<unsigned, PersistBarrierTicket>> Open;
    for (unsigned S = 0; S != (unsigned)Wk.Touched.size(); ++S) {
      if (!Wk.Touched[S])
        continue;
      Wk.Touched[S] = 0;
      Open.emplace_back(S, PersistBarrierTicket{});
      Store.shard(S).persistAckBegin(Wk.Idx, Open.back().second);
    }
    for (auto &[S, T] : Open)
      Store.shard(S).persistAckEnd(Wk.Idx, T);
    if (!Open.empty()) {
      Wk.S.Barriers += Open.size();
      Wk.S.BarrierNs += monotonicNanos() - T0;
    }
    // 3. Report scatter-gather pieces done -- only now that their writes
    //    are durable. The last piece routes completion to the owner;
    //    finishSg may replay parked requests, staging the next round.
    std::vector<std::shared_ptr<SgRequest>> Decs;
    Decs.swap(Wk.PieceDecs);
    for (auto &Sg : Decs) {
      if (Sg->Remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
        continue;
      if (Sg->OwnerWorker == Wk.Idx) {
        finishSg(Wk, Sg);
      } else {
        InboxMsg Msg;
        Msg.K = InboxMsg::SgDone;
        Msg.Sg = Sg;
        postMsg(Sg->OwnerWorker, std::move(Msg));
      }
    }
  }
  // 4. Release every response staged this cycle (ack follows
  //    durability): render it from its executed destinations, then
  //    transmit ready runs with writev.
  if (!Wk.DirtyConns.empty()) {
    uint64_t CommitNs = monotonicNanos();
    std::vector<uint64_t> Dirty;
    Dirty.swap(Wk.DirtyConns);
    for (uint64_t Id : Dirty) {
      auto It = Wk.Conns.find(Id);
      if (It == Wk.Conns.end())
        continue;
      Conn &C = *It->second;
      for (Slot &S : C.Pending) {
        if (S.St != Slot::Staged)
          continue;
        renderSlotResponse(S);
        S.St = Slot::Ready;
        if (S.ExecEndNs)
          Wk.S.CommitWaitNs += CommitNs - std::min(S.ExecEndNs, CommitNs);
      }
      flushConn(Wk, C);
    }
  }
  // 5. Closed connections can die now: no staged operation can still
  //    point into their slots.
  Wk.Doomed.clear();
}

void KvServer::updateWriteInterest(Worker &Wk, Conn &C) {
  bool Want = !C.OutBuf.empty() ||
              (!C.Pending.empty() && C.Pending.front().St == Slot::Ready);
  if (Want == C.WantWrite)
    return;
  C.WantWrite = Want;
  epoll_event Ev{};
  Ev.events = EPOLLIN | (Want ? (uint32_t)EPOLLOUT : 0u);
  Ev.data.u64 = C.Id;
  ::epoll_ctl(Wk.EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
}

void KvServer::flushConn(Worker &Wk, Conn &C) {
  if (C.Fd < 0)
    return;
  constexpr int MaxIov = 64;
  while (true) {
    iovec Iov[MaxIov];
    int N = 0;
    if (!C.OutBuf.empty()) {
      Iov[N].iov_base = C.OutBuf.data();
      Iov[N].iov_len = C.OutBuf.size();
      ++N;
    }
    for (Slot &S : C.Pending) {
      if (S.St != Slot::Ready || N == MaxIov)
        break;
      Iov[N].iov_base = S.Resp.data();
      Iov[N].iov_len = S.Resp.size();
      ++N;
    }
    if (N == 0)
      break;
    ssize_t Sent = ::writev(C.Fd, Iov, N);
    if (Sent < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      return closeConn(Wk, C);
    }
    size_t Rem = (size_t)Sent;
    if (!C.OutBuf.empty()) {
      size_t Take = std::min(Rem, C.OutBuf.size());
      C.OutBuf.erase(0, Take);
      Rem -= Take;
    }
    while (!C.Pending.empty() && C.Pending.front().St == Slot::Ready) {
      Slot &S = C.Pending.front();
      if (Rem >= S.Resp.size()) {
        Rem -= S.Resp.size();
        bool Close = S.CloseAfter;
        C.Pending.pop_front();
        if (Close)
          return closeConn(Wk, C);
      } else {
        S.Resp.erase(0, Rem);
        Rem = 0;
        break;
      }
    }
  }
  updateWriteInterest(Wk, C);
}
