//===- kv/KvStore.h - Sharded durable key-value store ----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded store: KvConfig::NumShards KvShards, with keys hash-routed
/// by a splitmix64 of the key (so shard load stays balanced even for
/// sequential keyspaces). Each shard is an independent persistence domain
/// -- its own pool, undo logs and backend -- so shards never conflict and
/// scale is embarrassing by construction; cross-shard multi-key requests
/// (MGET, batched MSET) decompose into per-shard pieces with no
/// cross-shard atomicity (documented service semantics, as in production
/// sharded caches).
///
/// With KvConfig::DataDir set, each shard is file-backed and
/// KvStore::recover() / the constructor replay every shard's undo log on
/// startup, so the store as a whole survives process death.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_KV_KVSTORE_H
#define CRAFTY_KV_KVSTORE_H

#include "kv/KvShard.h"

#include <memory>
#include <vector>

namespace crafty {
namespace kv {

class KvStore {
public:
  /// Opens (and, for existing file-backed shard images, recovers) all
  /// shards.
  explicit KvStore(const KvConfig &Cfg);
  ~KvStore();
  KvStore(const KvStore &) = delete;
  KvStore &operator=(const KvStore &) = delete;

  const KvConfig &config() const { return Cfg; }
  unsigned numShards() const { return (unsigned)Shards.size(); }
  KvShard &shard(unsigned I) { return *Shards[I]; }
  /// The shard a key routes to.
  unsigned shardOf(uint64_t Key) const;

  /// True when any shard attached to an existing image and replayed its
  /// log during construction (the startup recovery path).
  bool recoveredOnOpen() const;
  /// Sum of undo-log sequences rolled back across all shards' last
  /// recoveries.
  size_t sequencesRolledBack() const;

  // Single-key operations. \p Tid indexes every shard's worker contexts,
  // so a caller owning Tid T may touch any shard with it.
  KvStatus get(unsigned Tid, uint64_t Key, std::string &Out);
  KvStatus set(unsigned Tid, uint64_t Key, std::string_view Val);
  KvStatus del(unsigned Tid, uint64_t Key);
  KvStatus cas(unsigned Tid, uint64_t Key, std::string_view Expect,
               std::string_view Desired);

  /// MGET: groups \p Keys by shard and runs each group through
  /// KvShard::getBatch (transactions of up to BatchTxnLimit keys).
  std::vector<KvResult> mget(unsigned Tid,
                             const std::vector<uint64_t> &Keys);

  /// Batched multi-SET: groups \p Items by shard and runs each group
  /// through KvShard::setBatch (few transactions, one ack drain per shard
  /// via persistAck when \p Durable). Statuses are written back into
  /// \p Items in their original order.
  void msetBatch(unsigned Tid, std::vector<KvBatchItem> &Items,
                 bool Durable = true);

  /// Persist barrier on every shard's worker \p Tid (call before
  /// acknowledging writes performed with that Tid).
  void persistAck(unsigned Tid);
  /// Persist barrier on all shards for workers [0, ThreadsPerShard).
  void persistAll();

  /// Simulated power failure on every shard (quiesce first).
  void simulateCrash();
  /// In-place recovery of every shard after simulateCrash(); returns the
  /// total sequences rolled back.
  size_t recover();

  /// Total dynamic-checker violations across all shards (0 when the
  /// checkers are disabled or clean).
  uint64_t checkerViolations();

  /// Quiesced heap leak audit summed over all shards: allocated bitmap
  /// pages must equal pages owned by live heap-routed values, with no
  /// in-flight staging WAL records (see KvHeapAudit::consistent).
  KvHeapAudit auditHeap() const;

  KvOpStats opStats() const;

private:
  KvConfig Cfg;
  std::vector<std::unique_ptr<KvShard>> Shards;
};

} // namespace kv
} // namespace crafty

#endif // CRAFTY_KV_KVSTORE_H
