//===- kv/KvClient.h - Minimal blocking KV client --------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the kv/KvProtocol.h line protocol: one
/// TCP connection, synchronous request/response, plus an explicit
/// pipeline mode (sendMset/sendSet + recv*) used by the load generator to
/// keep many requests in flight per connection.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_KV_KVCLIENT_H
#define CRAFTY_KV_KVCLIENT_H

#include "kv/KvProtocol.h"

#include <string>
#include <vector>

namespace crafty {
namespace kv {

class KvClient {
public:
  KvClient() = default;
  ~KvClient() { close(); }
  KvClient(const KvClient &) = delete;
  KvClient &operator=(const KvClient &) = delete;

  /// Connects to 127.0.0.1:\p Port. Returns false on failure.
  bool connect(uint16_t Port);
  void close();
  bool connected() const { return Fd >= 0; }

  // Synchronous operations; KvStatus::Err also covers transport failure.
  KvStatus get(uint64_t Key, std::string &Out);
  KvStatus set(uint64_t Key, std::string_view Val);
  KvStatus del(uint64_t Key);
  KvStatus cas(uint64_t Key, std::string_view Expect,
               std::string_view Desired);
  /// MGET; \p Out receives one result per key. False on transport error.
  bool mget(const std::vector<uint64_t> &Keys,
            std::vector<std::pair<KvStatus, std::string>> &Out);
  /// Batched MSET; returns per-pair statuses. False on transport error.
  bool mset(const std::vector<std::pair<uint64_t, std::string>> &Pairs,
            std::vector<KvStatus> &Statuses);
  bool ping();
  /// STATS: fetches the server's JSON statistics document (per-worker
  /// timing breakdown, per-shard throughput and runtime counters). False
  /// on transport error.
  bool stats(std::string &JsonOut);
  void quit();

  // Pipeline mode: queue requests, flush, then collect responses in
  // order with the matching recv call per queued request.
  void sendGet(uint64_t Key);
  void sendSet(uint64_t Key, std::string_view Val);
  void sendMset(const std::vector<std::pair<uint64_t, std::string>> &Pairs);
  /// Queues raw bytes (tests: exercise the server's malformed-input path).
  void sendRaw(std::string_view Bytes) { SendBuf.append(Bytes); }
  bool flush();
  KvStatus recvStatus();
  KvStatus recvValue(std::string &Out);
  bool recvStatuses(size_t N, std::vector<KvStatus> &Statuses);

private:
  bool writeAll(const char *Data, size_t Len);
  /// Reads until a '\n'-terminated line is buffered; false on EOF/error.
  bool readLine(std::string &Line);
  /// Reads exactly \p N payload bytes plus the '\n' terminator.
  bool readBlock(size_t N, std::string &Out);
  bool fill();

  int Fd = -1;
  std::string SendBuf;
  std::string RecvBuf;
  size_t RecvPos = 0;
};

} // namespace kv
} // namespace crafty

#endif // CRAFTY_KV_KVCLIENT_H
