//===- kv/KvServer.h - Networked KV front end ------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KV service front end: a loopback TCP server speaking the
/// kv/KvProtocol.h line protocol over a KvStore.
///
/// Threading model:
///
///  - One IO thread runs an epoll event loop: accepts connections, reads
///    into per-connection buffers, frames complete requests with the
///    incremental parser, and writes queued responses (non-blocking, with
///    per-connection output buffering and EPOLLOUT backpressure).
///
///  - One worker thread per shard executes transactions. A request is
///    dispatched to the worker of its key's shard (multi-key requests to
///    the first key's shard worker); worker W uses transaction context
///    Tid = W on every shard it touches, so contexts are never shared
///    (this is why the store must be built with ThreadsPerShard >= the
///    shard count).
///
///  - Group commit: a worker drains its whole queue, executes every
///    request, then runs ONE persist barrier per touched shard before
///    publishing any response (writes are never acknowledged before they
///    are durable; the barrier cost amortizes over the drained batch).
///
///  - Responses flow back to the IO thread through a completion queue +
///    eventfd wakeup. Each connection's responses carry the request
///    sequence number and are transmitted strictly in request order.
///
/// Shutdown is graceful: stop() closes the listener, lets workers drain
/// their queues, flushes every connection's pending output, then joins
/// all threads.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_KV_KVSERVER_H
#define CRAFTY_KV_KVSERVER_H

#include "kv/KvProtocol.h"
#include "kv/KvStore.h"
#include "support/Mutex.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

namespace crafty {
namespace kv {

struct KvServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t Port = 0;
  int ListenBacklog = 128;
  /// Read-buffer bytes above which a connection is dropped as abusive.
  size_t MaxBufferedBytes = 4 << 20;
};

class KvServer {
public:
  /// \p Store must be built with ThreadsPerShard >= numShards() (each
  /// worker uses its own Tid on every shard) and outlive the server.
  KvServer(KvStore &Store, const KvServerConfig &Cfg);
  ~KvServer();
  KvServer(const KvServer &) = delete;
  KvServer &operator=(const KvServer &) = delete;

  /// Binds, listens and launches the IO + worker threads.
  void start();
  /// Graceful shutdown: stop accepting, drain workers, flush and close
  /// every connection, join all threads. Idempotent.
  void stop();

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

private:
  struct Conn {
    int Fd = -1;
    std::string In;        // Unparsed request bytes.
    std::string OutBuf;    // Bytes queued for transmission.
    uint64_t NextSeq = 0;  // Next request sequence to assign.
    uint64_t NextSend = 0; // Next sequence to transmit.
    /// Out-of-order completions waiting for their turn (IO thread only).
    std::map<uint64_t, std::string> Ready;
    /// Sequence whose transmission should end the connection (QUIT /
    /// protocol error), or ~0 for none.
    uint64_t CloseAfterSeq = ~0ull;
    bool CloseAfterFlush = false;
    std::atomic<bool> Closed{false};
  };

  struct Work {
    std::shared_ptr<Conn> C;
    uint64_t Seq = 0;
    KvRequest Req;
  };

  struct Completion {
    std::shared_ptr<Conn> C;
    uint64_t Seq = 0;
    std::string Resp;
    bool CloseAfter = false;
  };

  struct Worker {
    Mutex Mu;
    std::condition_variable Cv;
    std::vector<Work> Queue CRAFTY_GUARDED_BY(Mu);
    std::thread Thread;
  };

  void ioLoop();
  void workerLoop(unsigned W);
  void execute(unsigned W, const KvRequest &Req, std::string &Resp,
               std::vector<bool> &TouchedShards);
  void dispatch(const std::shared_ptr<Conn> &C, KvRequest &&Req);
  void postCompletion(Completion &&Comp);
  void acceptReady();
  void readReady(const std::shared_ptr<Conn> &C);
  void writeReady(const std::shared_ptr<Conn> &C);
  void deliver(Completion &Comp);
  void drainCompletions();
  void closeConn(const std::shared_ptr<Conn> &C);
  void updateWriteInterest(Conn &C);

  KvStore &Store;
  KvServerConfig Cfg;
  uint16_t BoundPort = 0;

  int ListenFd = -1;
  int EpollFd = -1;
  int WakeFd = -1; // eventfd: completions posted / stop requested.

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> Served{0};

  std::thread IoThread;
  std::vector<std::unique_ptr<Worker>> Workers;

  Mutex CompMu;
  std::vector<Completion> Completions CRAFTY_GUARDED_BY(CompMu);

  /// Live connections, keyed by fd (IO thread only).
  std::map<int, std::shared_ptr<Conn>> Conns;
};

} // namespace kv
} // namespace crafty

#endif // CRAFTY_KV_KVSERVER_H
