//===- kv/KvServer.h - Share-nothing networked KV front end ----*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KV service front end: a loopback TCP server speaking the
/// kv/KvProtocol.h line protocol over a KvStore, structured as a
/// share-nothing worker model (one worker per shard).
///
/// Threading model:
///
///  - One worker thread per shard, capped at the machine's core count
///    (KvServerConfig::Workers overrides; shard S belongs to worker
///    S % workers). Each worker owns its slice of the network outright:
///    its own epoll loop, its own connections, its own buffers. Worker 0
///    additionally owns the listening socket and hands accepted fds to
///    workers round-robin -- the handoff at accept time is the only
///    moment a connection ever crosses threads. The cap matters on small
///    machines: more workers than cores just converts group-commit
///    batching into context switches.
///
///  - A single-shard request (GET/SET/DEL/CAS, and any MGET/MSET whose
///    keys all land on one shard) is parsed, executed, group-committed
///    and answered entirely on the worker owning its connection, which
///    uses transaction context Tid = its worker index on whatever shard
///    the key routes to. Contexts are never shared (hence the store must
///    be built with ThreadsPerShard >= the shard count), and the request
///    never crosses a thread: no dispatch queue, no completion queue, no
///    wakeup syscalls on the request path.
///
///  - Only an MGET/MSET whose keys span shards owned by OTHER workers
///    scatter-gathers: the owning worker splits it into per-shard pieces
///    posted to each shard's worker, and a per-request atomic completion
///    counter -- decremented by each piece worker only after its
///    group-commit barrier -- triggers the response. There is no global
///    re-sequencing queue. A multi-shard request whose shards all map to
///    the connection's worker (always, when one worker owns every shard)
///    executes inline like the single-shard case.
///
///  - Group commit per worker, at the transaction level too: requests
///    are not executed as they parse. Each one *stages* its operations
///    onto its shard's per-cycle list, and the cycle's commit point runs
///    one chunked transaction batch per shard (KvShard::runCycle) --
///    the whole cycle costs a handful of transactions instead of one
///    per request, which is what lets N shards on one core match one
///    shard. Then ONE persist barrier per touched shard runs in two
///    phases (begin all, then end all), so the shards' fixed drain
///    latencies overlap instead of serializing, and only then are the
///    cycle's responses released (writes are never acknowledged before
///    they are durable).
///
///  - Response ordering is per-connection and trivially correct: a
///    connection lives on exactly one worker, which appends one response
///    slot per request to the connection's pending deque in parse order
///    and transmits ready slots strictly from the front (batched with
///    writev). A slot awaiting scatter-gather completion simply holds
///    the line. Execution order matches too: staged operations run in
///    arrival order within each shard, a scatter-gather first flushes
///    the staged batches so its pieces cannot overtake earlier staged
///    writes, and requests arriving behind an in-flight scatter-gather
///    on the same connection are parked until it completes -- so a
///    pipelined GET always sees the pipelined SET before it, even
///    across the cross-shard path.
///
///  - STATS requests scatter to every worker too: each worker reports
///    counters only it writes (its request timing breakdown, its per-
///    shard op counts, its transaction contexts' HTM statistics), so the
///    document is assembled without cross-thread reads of hot state.
///
/// Shutdown is graceful: stop() wakes every worker; each drains its
/// inbox until no scatter-gather work is in flight anywhere, flushes
/// every connection's pending output, then exits.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_KV_KVSERVER_H
#define CRAFTY_KV_KVSERVER_H

#include "kv/KvProtocol.h"
#include "kv/KvStore.h"
#include "support/Mutex.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

namespace crafty {
namespace kv {

struct KvServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t Port = 0;
  int ListenBacklog = 128;
  /// Read-buffer bytes above which a connection is dropped as abusive.
  size_t MaxBufferedBytes = 4 << 20;
  /// Worker threads; 0 means autoWorkerCount(). More workers than shards
  /// never helps and is clamped down; fewer concentrates several shards
  /// on one worker (tests set this explicitly to force the cross-worker
  /// scatter-gather paths regardless of the machine).
  unsigned Workers = 0;
};

class KvServer {
public:
  /// The worker count a zero KvServerConfig::Workers resolves to:
  /// min(\p Shards, hardware cores). Exposed so load generators can size
  /// the store's ThreadsPerShard to match.
  static unsigned autoWorkerCount(unsigned Shards);

  /// \p Store must be built with ThreadsPerShard >= the worker count
  /// (each worker uses its own Tid on every shard) and outlive the
  /// server.
  KvServer(KvStore &Store, const KvServerConfig &Cfg);
  ~KvServer();
  KvServer(const KvServer &) = delete;
  KvServer &operator=(const KvServer &) = delete;

  /// Binds, listens and launches the worker threads.
  void start();
  /// Graceful shutdown: stop accepting, drain in-flight scatter-gather
  /// work, flush and close every connection, join all threads. Idempotent.
  void stop();

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

private:
  /// Counters a worker updates as it serves requests. Written only by
  /// the owning worker; other threads see them only through the STATS
  /// scatter, where the owner itself copies them out.
  struct WorkerStats {
    uint64_t Requests = 0;     ///< Requests whose response this worker built.
    uint64_t QueueWaitNs = 0;  ///< Arrival (or piece post) to execution start.
    uint64_t ExecuteNs = 0;    ///< Inside store transactions.
    uint64_t CommitWaitNs = 0; ///< Execution end to response release.
    uint64_t Barriers = 0;     ///< persistAck calls issued.
    uint64_t BarrierNs = 0;    ///< Time inside persistAck.
    uint64_t SgRequests = 0;   ///< Cross-shard requests this worker owned.
    uint64_t SgPieces = 0;     ///< Scatter-gather pieces executed here.
    uint64_t ConnsAccepted = 0;
    std::vector<uint64_t> OpsPerShard; ///< Executions against each shard.
  };

  /// One cross-shard MGET/MSET in flight. Shared by the owner's response
  /// slot and every piece message; disjoint Results/Statuses indices are
  /// written by distinct piece workers, and Remaining's release/acquire
  /// ordering publishes them to the owner.
  struct SgRequest {
    KvOp Op = KvOp::Mget;
    unsigned OwnerWorker = 0;
    uint64_t ConnId = 0;
    uint64_t SlotSeq = 0;
    uint64_t PostedNs = 0;
    std::vector<uint64_t> Keys;                          // Mget.
    std::vector<std::pair<uint64_t, std::string>> Pairs; // Mset.
    struct Piece {
      unsigned Shard = 0;
      std::vector<uint32_t> Idx; // Original positions of this shard's keys.
    };
    std::vector<Piece> Pieces;
    std::vector<KvResult> Results;  // Mget, by original position.
    std::vector<KvStatus> Statuses; // Mset, by original position.
    std::atomic<unsigned> Remaining{0};
  };

  /// One STATS request in flight: every worker deposits its contribution
  /// at its own index, the last decrement routes the document back.
  struct StatsRequest {
    unsigned OwnerWorker = 0;
    uint64_t ConnId = 0;
    uint64_t SlotSeq = 0;
    std::vector<WorkerStats> PerWorker;
    /// [Worker][Shard] HTM statistics of that worker's context.
    std::vector<std::vector<HtmStats>> Htm;
    std::atomic<unsigned> Remaining{0};
  };

  /// One queued response: slots join a connection's Pending deque in
  /// request order and leave from the front once Ready. A Staged slot
  /// owns its request's payload bytes and result destinations; the
  /// staged per-shard KvCycleOps point into them until the cycle's
  /// commit point executes the batch and renders the response.
  struct Slot {
    enum State : uint8_t {
      Staged,    ///< Ops staged; executed + released at the commit point.
      WaitingSg, ///< Awaiting scatter-gather completion.
      Ready      ///< Transmittable.
    };
    State St = Staged;
    bool CloseAfter = false; ///< QUIT / protocol error: close once sent.
    KvOp Op = KvOp::Ping;    ///< Renders a Staged slot's response.
    uint64_t SlotSeq = 0;
    uint64_t ArrivalNs = 0; ///< Queue-wait accounting (0 = accounted).
    uint64_t ExecEndNs = 0; ///< For commit-wait accounting (0 = not run).
    std::string Resp;
    std::string Val;    ///< SET value / CAS desired (staged view target).
    std::string Expect; ///< CAS expected value.
    std::vector<std::pair<uint64_t, std::string>> Pairs; ///< MSET payload.
    std::vector<KvResult> Results;  ///< GET/MGET destinations.
    std::vector<KvStatus> Statuses; ///< SET/DEL/CAS/MSET destinations.
    std::shared_ptr<SgRequest> Sg;
    std::shared_ptr<StatsRequest> Stats;
  };

  /// A request parked behind an in-flight scatter-gather on the same
  /// connection (see Conn::Parked).
  struct ParkedReq {
    KvRequest Req;
    uint64_t ArrivalNs = 0;
  };

  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    std::string In;     ///< Unparsed request bytes.
    std::string OutBuf; ///< Partially transmitted bytes (writev carry).
    std::deque<Slot> Pending;
    uint64_t NextSlotSeq = 0;
    /// Cross-shard requests of this connection still in flight. While
    /// nonzero, later requests are parked (Parked) and replayed once the
    /// scatter-gather completes: a pipelined operation behind a
    /// cross-shard write must not execute until that write is durable
    /// everywhere, preserving per-connection program order.
    unsigned SgInFlight = 0;
    std::deque<ParkedReq> Parked;
    bool Draining = false;  ///< Stop parsing (fatal protocol error seen).
    bool WantWrite = false; ///< EPOLLOUT currently armed.
  };

  /// Cross-worker message. NewConn carries a just-accepted fd; SgPiece /
  /// SgDone / StatsPiece / StatsDone move scatter-gather work and its
  /// completions (always to the shard owner resp. the request owner).
  struct InboxMsg {
    enum Kind : uint8_t {
      NewConn,
      SgPiece,
      SgDone,
      StatsPiece,
      StatsDone
    };
    Kind K = Kind::NewConn;
    int Fd = -1;
    unsigned Piece = 0;
    std::shared_ptr<SgRequest> Sg;
    std::shared_ptr<StatsRequest> Stats;
  };

  struct Worker {
    unsigned Idx = 0;
    int EpollFd = -1;
    int WakeFd = -1;
    Mutex InboxMu;
    std::vector<InboxMsg> Inbox CRAFTY_GUARDED_BY(InboxMu);
    /// Connections owned by this worker, keyed by worker-local id (the
    /// epoll payload; ids are never reused, unlike fds).
    std::map<uint64_t, std::unique_ptr<Conn>> Conns;
    uint64_t NextConnId = 0;
    /// Shards written during the current cycle (group-commit set).
    std::vector<uint8_t> Touched;
    /// Per-shard operations staged during the current cycle, executed as
    /// one chunked transaction batch per shard at the commit point (or
    /// earlier, if a scatter-gather must see them first) -- the cycle
    /// costs a handful of transactions instead of one per request.
    std::vector<std::vector<KvCycleOp>> StagedOps;
    /// Scatter-gather pieces staged this cycle whose completion
    /// decrement must wait for the commit barrier.
    std::vector<std::shared_ptr<SgRequest>> PieceDecs;
    /// Connections whose Pending deque changed this cycle.
    std::vector<uint64_t> DirtyConns;
    /// Connections closed mid-cycle: staged operations hold pointers
    /// into their slots, so destruction waits for the commit point.
    std::vector<std::unique_ptr<Conn>> Doomed;
    WorkerStats S;
    std::thread Thread;
  };

  /// The worker owning shard \p S (executes its scatter-gather pieces).
  unsigned shardWorker(unsigned S) const { return S % NumWorkers; }

  void workerLoop(unsigned W);
  void acceptReady(Worker &Wk);
  void adoptConn(Worker &Wk, int Fd);
  void readReady(Worker &Wk, Conn &C);
  /// Parks the request if the connection has a scatter-gather in flight,
  /// otherwise dispatches it.
  void handleRequest(Worker &Wk, Conn &C, KvRequest &&Req, uint64_t NowNs);
  /// Appends the request's response slot and stages (or scatters) its
  /// operations.
  void dispatchRequest(Worker &Wk, Conn &C, KvRequest &&Req,
                       uint64_t NowNs);
  /// Executes every staged per-shard batch (one runCycle per shard),
  /// marks the shards that took writes and stamps the covered slots'
  /// timing. Called at the commit point, and early by
  /// startScatterGather so pieces posted to other workers cannot
  /// overtake operations staged before them.
  void executeStaged(Worker &Wk);
  /// Renders a Staged slot's response from its executed destinations.
  void renderSlotResponse(Slot &S);
  void startScatterGather(Worker &Wk, Conn &C, Slot &S, KvRequest &&Req,
                          const std::vector<std::vector<uint32_t>> &ByShard,
                          uint64_t NowNs);
  void startStats(Worker &Wk, Conn &C, Slot &S);
  void stageSgPiece(Worker &Wk, const std::shared_ptr<SgRequest> &Sg,
                    unsigned Piece, uint64_t NowNs);
  void fillStatsContribution(Worker &Wk,
                             const std::shared_ptr<StatsRequest> &St);
  void finishSg(Worker &Wk, const std::shared_ptr<SgRequest> &Sg);
  void finishStats(Worker &Wk, const std::shared_ptr<StatsRequest> &St);
  std::string formatStatsJson(const StatsRequest &St);
  void processInbox(Worker &Wk);
  void commitCycle(Worker &Wk);
  void flushConn(Worker &Wk, Conn &C);
  void markDirty(Worker &Wk, Conn &C);
  void updateWriteInterest(Worker &Wk, Conn &C);
  void closeConn(Worker &Wk, Conn &C);
  void postMsg(unsigned W, InboxMsg &&Msg);
  Slot &appendSlot(Worker &Wk, Conn &C);

  KvStore &Store;
  KvServerConfig Cfg;
  unsigned NumWorkers = 0;
  uint16_t BoundPort = 0;

  int ListenFd = -1;
  /// Round-robin accept cursor (worker 0 only).
  unsigned NextAcceptWorker = 0;

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> Served{0};
  /// Cross-worker requests (scatter-gather + STATS) not yet completed;
  /// workers may not exit while any remain.
  std::atomic<uint64_t> CrossInFlight{0};

  std::vector<std::unique_ptr<Worker>> Workers;
};

} // namespace kv
} // namespace crafty

#endif // CRAFTY_KV_KVSERVER_H
