//===- kv/KvClient.cpp - Minimal blocking KV client -----------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "kv/KvClient.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace crafty;
using namespace crafty::kv;

bool KvClient::connect(uint16_t Port) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return false;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    close();
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return true;
}

void KvClient::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  SendBuf.clear();
  RecvBuf.clear();
  RecvPos = 0;
}

bool KvClient::writeAll(const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      close();
      return false;
    }
    Data += N;
    Len -= (size_t)N;
  }
  return true;
}

bool KvClient::fill() {
  if (RecvPos == RecvBuf.size()) {
    RecvBuf.clear();
    RecvPos = 0;
  }
  char Buf[16384];
  ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
  if (N <= 0) {
    if (N < 0 && errno == EINTR)
      return true;
    close();
    return false;
  }
  RecvBuf.append(Buf, (size_t)N);
  return true;
}

bool KvClient::readLine(std::string &Line) {
  while (Fd >= 0) {
    size_t Nl = RecvBuf.find('\n', RecvPos);
    if (Nl != std::string::npos) {
      Line.assign(RecvBuf, RecvPos, Nl - RecvPos);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      RecvPos = Nl + 1;
      return true;
    }
    if (!fill())
      return false;
  }
  return false;
}

bool KvClient::readBlock(size_t N, std::string &Out) {
  while (Fd >= 0 && RecvBuf.size() - RecvPos < N + 1)
    if (!fill())
      return false;
  if (Fd < 0)
    return false;
  Out.assign(RecvBuf, RecvPos, N);
  RecvPos += N;
  if (RecvBuf[RecvPos] != '\n') {
    close();
    return false;
  }
  ++RecvPos;
  return true;
}

//===----------------------------------------------------------------------===//
// Pipeline mode
//===----------------------------------------------------------------------===//

void KvClient::sendGet(uint64_t Key) { appendGet(SendBuf, Key); }

void KvClient::sendSet(uint64_t Key, std::string_view Val) {
  appendSet(SendBuf, Key, Val);
}

void KvClient::sendMset(
    const std::vector<std::pair<uint64_t, std::string>> &Pairs) {
  appendMset(SendBuf, Pairs);
}

bool KvClient::flush() {
  if (Fd < 0)
    return false;
  bool Ok = writeAll(SendBuf.data(), SendBuf.size());
  SendBuf.clear();
  return Ok;
}

KvStatus KvClient::recvStatus() {
  std::string Line;
  if (!readLine(Line))
    return KvStatus::Err;
  return parseStatusLine(Line);
}

KvStatus KvClient::recvValue(std::string &Out) {
  std::string Line;
  if (!readLine(Line))
    return KvStatus::Err;
  if (Line.rfind("VALUE ", 0) == 0) {
    size_t Len = std::strtoull(Line.c_str() + 6, nullptr, 10);
    if (!readBlock(Len, Out))
      return KvStatus::Err;
    return KvStatus::Ok;
  }
  return parseStatusLine(Line);
}

bool KvClient::recvStatuses(size_t N, std::vector<KvStatus> &Statuses) {
  std::string Line;
  if (!readLine(Line) || Line.rfind("STATUSES ", 0) != 0)
    return false;
  if (std::strtoull(Line.c_str() + 9, nullptr, 10) != N)
    return false;
  Statuses.clear();
  Statuses.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    if (!readLine(Line))
      return false;
    Statuses.push_back(parseStatusLine(Line));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Synchronous operations
//===----------------------------------------------------------------------===//

KvStatus KvClient::get(uint64_t Key, std::string &Out) {
  sendGet(Key);
  if (!flush())
    return KvStatus::Err;
  return recvValue(Out);
}

KvStatus KvClient::set(uint64_t Key, std::string_view Val) {
  sendSet(Key, Val);
  if (!flush())
    return KvStatus::Err;
  return recvStatus();
}

KvStatus KvClient::del(uint64_t Key) {
  appendDel(SendBuf, Key);
  if (!flush())
    return KvStatus::Err;
  return recvStatus();
}

KvStatus KvClient::cas(uint64_t Key, std::string_view Expect,
                       std::string_view Desired) {
  appendCas(SendBuf, Key, Expect, Desired);
  if (!flush())
    return KvStatus::Err;
  return recvStatus();
}

bool KvClient::mget(const std::vector<uint64_t> &Keys,
                    std::vector<std::pair<KvStatus, std::string>> &Out) {
  appendMget(SendBuf, Keys);
  if (!flush())
    return false;
  std::string Line;
  if (!readLine(Line) || Line.rfind("VALUES ", 0) != 0)
    return false;
  if (std::strtoull(Line.c_str() + 7, nullptr, 10) != Keys.size())
    return false;
  Out.clear();
  Out.resize(Keys.size());
  for (size_t I = 0; I != Keys.size(); ++I)
    Out[I].first = recvValue(Out[I].second);
  return connected();
}

bool KvClient::mset(
    const std::vector<std::pair<uint64_t, std::string>> &Pairs,
    std::vector<KvStatus> &Statuses) {
  sendMset(Pairs);
  if (!flush())
    return false;
  return recvStatuses(Pairs.size(), Statuses);
}

bool KvClient::stats(std::string &JsonOut) {
  appendStatsRequest(SendBuf);
  if (!flush())
    return false;
  std::string Line;
  if (!readLine(Line) || Line.rfind("STATS ", 0) != 0)
    return false;
  size_t Len = std::strtoull(Line.c_str() + 6, nullptr, 10);
  return readBlock(Len, JsonOut);
}

bool KvClient::ping() {
  SendBuf += "PING\n";
  if (!flush())
    return false;
  std::string Line;
  return readLine(Line) && Line == "PONG";
}

void KvClient::quit() {
  if (Fd < 0)
    return;
  SendBuf += "QUIT\n";
  flush();
  std::string Line;
  readLine(Line);
  close();
}
