//===- kv/KvShard.h - One durable key-value shard --------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shard of the durable KV service: a PMemPool (optionally file-backed
/// so it survives process death), an HtmRuntime, a persistent-transaction
/// backend created through baselines::Factory (so Crafty and the baseline
/// systems are comparable end-to-end), a pds::DurableHashMap from keys to
/// value-cell indices, and a persistent value-cell arena with a
/// transactional freelist.
///
/// Every mutation is one persistent transaction: the map update, the cell
/// bytes and the freelist manipulation commit or vanish together, so a
/// crash never exposes a torn value or a leaked cell. Overwrites reuse the
/// existing cell in place (transactional atomicity makes that safe);
/// inserts pop a cell from the freelist and deletes push it back, all
/// inside the same transaction as the map update -- which is what makes
/// recovery free: rolling back the undo log restores map, cells and
/// freelist to one consistent snapshot, with no allocator rebuild.
///
/// With KvConfig::HeapPages set, values above KvConfig::heapThreshold()
/// route through the shard's heap::DurableHeap: the bytes are staged to
/// fresh pages *before* the mutation's transaction (allocAndStage), and
/// the transaction itself only swings the cell to a heap-tagged ref
/// ([0] = HeapLenTag, [1] = packed extent ref), frees the extent the
/// cell previously owned, and closes the staging WAL record. That keeps
/// every transaction's write set small regardless of value size, lifting
/// the MaxValueBytes ceiling to the heap extent cap (64 KiB).
///
/// Durability of acknowledgements is explicit: commit alone does not make
/// a Crafty transaction durable (recovery may roll back a tail of
/// committed transactions, bounded by MAX_LAG). persistAck() runs the
/// on-demand persist barrier; the server calls it once per drained batch
/// of requests before acknowledging any of them (group commit).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_KV_KVSHARD_H
#define CRAFTY_KV_KVSHARD_H

#include "kv/KvTypes.h"
#include "pds/DurableHashMap.h"
#include "support/Annotations.h"
#include "recovery/Recovery.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace crafty {

class CraftyRuntime;
class HtmRuntime;
struct PersistBarrierTicket;

namespace kv {

/// One SET of a batched per-shard pipeline; Status is filled in by
/// setBatch.
struct KvBatchItem {
  uint64_t Key = 0;
  std::string_view Val;
  KvStatus Status = KvStatus::Err;
};

/// One operation of a server event-loop cycle, batched per shard and
/// executed in arrival order by KvShard::runCycle. The value views and
/// the Result/Status destinations must stay valid until runCycle
/// returns (the server parks them in the request's response slot).
struct KvCycleOp {
  enum Kind : uint8_t { Get, Set, Del, Cas } K = Get;
  uint64_t Key = 0;
  std::string_view Val;       ///< Set: value; Cas: desired value.
  std::string_view Expect;    ///< Cas: expected current value.
  KvResult *Result = nullptr; ///< Get destination.
  KvStatus *Status = nullptr; ///< Set/Del/Cas destination.
};

class KvShard {
public:
  /// Opens shard \p ShardIdx under \p Cfg. With a DataDir configured and
  /// an existing image file, the shard *attaches*: the undo logs in the
  /// image are replayed (recovery observer), the runtime re-attaches to
  /// the recovered pool, and the map adopts the surviving layout. A fresh
  /// shard is formatted and its freelist initialized.
  KvShard(const KvConfig &Cfg, unsigned ShardIdx);
  ~KvShard();
  KvShard(const KvShard &) = delete;
  KvShard &operator=(const KvShard &) = delete;

  unsigned shardIndex() const { return ShardIdx; }

  /// True when the shard was opened over an existing image and went
  /// through recovery; lastRecovery() then describes the replay.
  bool recoveredOnOpen() const { return RecoveredOnOpen; }
  const RecoveryReport &lastRecovery() const { return LastRecovery; }

  // Engine operations. \p Tid selects a backend worker context
  // (< KvConfig::ThreadsPerShard); use each Tid from one thread at a time.
  CRAFTY_TX_BODY KvStatus get(unsigned Tid, uint64_t Key, std::string &Out);
  CRAFTY_TX_BODY KvStatus set(unsigned Tid, uint64_t Key,
                              std::string_view Val);
  CRAFTY_TX_BODY KvStatus del(unsigned Tid, uint64_t Key);
  CRAFTY_TX_BODY KvStatus cas(unsigned Tid, uint64_t Key,
                              std::string_view Expect,
                              std::string_view Desired);
  /// Batched SET pipeline: runs \p Items in transactions of up to
  /// KvConfig::BatchTxnLimit SETs each -- one undo-log sequence and one
  /// flush per chunk instead of one per key -- filling in each item's
  /// Status. Call persistAck afterwards before acknowledging.
  CRAFTY_TX_BODY void setBatch(unsigned Tid, KvBatchItem *Items, size_t N);
  /// Batched GET pipeline: looks \p Keys up in transactions of up to
  /// KvConfig::BatchTxnLimit keys each (one HTM commit per chunk instead
  /// of one per key), writing each key's outcome into \p Results.
  CRAFTY_TX_BODY void getBatch(unsigned Tid, const uint64_t *Keys, size_t N,
                               KvResult *Results);
  /// Group-commit execution engine: runs one event-loop cycle's worth of
  /// operations against this shard -- any mix of GET/SET/DEL/CAS, in
  /// array order -- in transactions of up to KvConfig::BatchTxnLimit
  /// operations each. Arrival order is preserved exactly (a pipelined
  /// GET after a SET of the same key sees the SET), and the whole cycle
  /// costs a handful of transactions instead of one per request. Returns
  /// true if any operation mutated the shard (the caller then owes a
  /// persistAck before acknowledging).
  CRAFTY_TX_BODY bool runCycle(unsigned Tid, KvCycleOp *Ops, size_t N);

  /// Makes every transaction committed so far durable (Crafty: the
  /// Section 5.2 on-demand persist barrier). Acknowledgements must not be
  /// sent before this returns. No-op for the non-Crafty backends, whose
  /// commit already persists their redo log (their ack-durability story),
  /// and for Non-durable, which makes no durability promise at all.
  void persistAck(unsigned Tid);

  /// Two-phase persistAck for a worker committing several shards in one
  /// cycle: persistAckBegin on every touched shard first (cache
  /// write-backs and forced commits), then persistAckEnd on every shard
  /// (the fixed drain latencies overlap instead of serializing). The
  /// pair is equivalent to persistAck; non-Crafty backends no-op.
  CRAFTY_DRAIN_DEFERRED void persistAckBegin(unsigned Tid,
                                             PersistBarrierTicket &T);
  CRAFTY_DRAIN_API void persistAckEnd(unsigned Tid,
                                      PersistBarrierTicket &T);

  /// Simulated power failure (Tracked pools; quiesce all workers first).
  void simulateCrash();
  /// In-place recovery after simulateCrash(): replays the undo logs,
  /// re-creates the HTM runtime and re-attaches the backend. The map and
  /// cell regions keep their (recovered) content.
  void recoverInPlace();

  /// Quiesced, non-transactional audit read (post-recovery ledgers).
  bool peek(uint64_t Key, std::string &Out) const;
  /// Quiesced raw live-key count; ~0ull if map metadata is corrupt.
  uint64_t auditCount() const { return Map->auditCount(); }
  /// Quiesced heap leak audit: bitmap pages vs pages owned by live
  /// heap-tagged cells, plus in-flight WAL records. Enabled=false (and
  /// trivially consistent) when the heap is off.
  KvHeapAudit auditHeap() const;
  /// The shard's large-object heap, or null when HeapPages is 0.
  heap::DurableHeap *heap() { return Heap.get(); }
  /// Extents the last open-from-image recovery reclaimed from the heap
  /// WAL (staged but never published before the crash).
  size_t heapExtentsReclaimed() const { return HeapReclaimed; }

  PMemPool &pool() { return *Pool; }
  PtmBackend &backend() { return *Backend; }
  /// The backend as a CraftyRuntime, or null for non-Crafty backends.
  CraftyRuntime *crafty();
  KvOpStats opStats() const;
  /// Counters of \p Tid's context alone: owned by the thread driving that
  /// Tid, so it may read them while other workers run transactions.
  const KvOpStats &opStats(unsigned Tid) const { return Stats[Tid]; }
  /// See PtmBackend::htmStatsFor (same single-context safety contract).
  HtmStats htmStatsFor(unsigned Tid) const {
    return Backend->htmStatsFor(Tid);
  }

private:
  void openFresh();
  void openAttached();
  void carveKvRegions(bool Attach);
  void attachBackend();

  uint64_t *cellAt(uint64_t CellIdx) {
    return reinterpret_cast<uint64_t *>(CellsBase + CellIdx * CellBytes);
  }
  const uint64_t *cellAt(uint64_t CellIdx) const {
    return reinterpret_cast<const uint64_t *>(CellsBase +
                                              CellIdx * CellBytes);
  }
  /// Cell[0] value marking a heap-routed cell: Cell[1] then holds the
  /// packed extent ref. Never a valid inline length (inline lengths are
  /// <= MaxValueBytes).
  static constexpr uint64_t HeapLenTag = ~0ull;

  /// Pre-transaction arm of the large-value pipeline: routes \p Val
  /// (inline vs heap) and, for heap-bound values, reserves and stages an
  /// extent. Returns false with \p St set (TooBig / Full) when the value
  /// cannot be stored; the caller must not enter its transaction. On a
  /// non-Ok transaction outcome the caller abandons \p S.
  CRAFTY_DRAIN_DEFERRED bool prepareValue(unsigned Tid, std::string_view Val,
                                          heap::HeapStaged &S, KvStatus &St);
  /// Writes len + value bytes into a cell inside an open transaction.
  /// Worst case: the length word plus MaxValueBytes / 8 value words.
  CRAFTY_TX_CAPACITY(33)
  CRAFTY_TX_BODY void writeCellTx(TxnContext &Tx, uint64_t CellIdx,
                                  std::string_view Val);
  /// Publishes a staged heap extent into a cell: tag + packed ref.
  CRAFTY_TX_CAPACITY(2)
  CRAFTY_TX_BODY void writeHeapCellTx(TxnContext &Tx, uint64_t CellIdx,
                                      uint64_t Ref);
  /// Frees the heap extent a cell currently owns, if any (the
  /// overwrite/delete half of the publish transaction).
  CRAFTY_TX_CAPACITY(2)
  CRAFTY_TX_BODY void freeCellExtentTx(TxnContext &Tx, uint64_t CellIdx);
  /// Reads a cell's value inside an open transaction; false on corrupt
  /// length metadata. Heap-tagged cells are followed through the heap
  /// (raw extent copy; safe because the tag/ref loads above went through
  /// \p Tx -- see heap::DurableHeap::readExtent).
  CRAFTY_TX_BODY bool readCellTx(TxnContext &Tx, uint64_t CellIdx,
                                 std::string &Out);
  /// The SET engine shared by set/setBatch; runs inside an open txn.
  /// writeCellTx's budget plus the map-slot words (key publish + chains)
  /// plus freeing a displaced heap extent.
  CRAFTY_TX_CAPACITY(53)
  CRAFTY_TX_BODY KvStatus setInTx(TxnContext &Tx, uint64_t Key,
                                  std::string_view Val,
                                  const heap::HeapStaged &S);
  /// The DEL engine shared by del/runCycle: map tombstone + meta plus
  /// the two freelist words plus freeing the cell's heap extent.
  CRAFTY_TX_CAPACITY(10)
  CRAFTY_TX_BODY KvStatus delInTx(TxnContext &Tx, uint64_t Key);
  /// The CAS engine shared by cas/runCycle; \p Scratch receives the
  /// current value. writeCellTx's budget (the cell is reused) plus
  /// freeing a displaced heap extent.
  CRAFTY_TX_CAPACITY(35)
  CRAFTY_TX_BODY KvStatus casInTx(TxnContext &Tx, uint64_t Key,
                                  std::string_view Expect,
                                  std::string_view Desired,
                                  std::string &Scratch,
                                  const heap::HeapStaged &S);

  KvConfig Cfg;
  unsigned ShardIdx;
  size_t CellBytes;
  size_t NumCells;

  std::unique_ptr<PMemPool> Pool;
  std::unique_ptr<HtmRuntime> Htm;
  std::unique_ptr<PtmBackend> Backend;
  std::unique_ptr<DurableHashMap> Map;
  /// Large-object heap (carved after the freelist head); null when
  /// KvConfig::HeapPages is 0.
  std::unique_ptr<heap::DurableHeap> Heap;
  CRAFTY_PMEM uint8_t *CellsBase = nullptr;
  CRAFTY_PMEM uint64_t *NextFree = nullptr; // NumCells words; idx+1, 0 = end.
  CRAFTY_PMEM uint64_t *FreeHead = nullptr; // One word; idx+1, 0 = empty.

  bool RecoveredOnOpen = false;
  RecoveryReport LastRecovery;
  size_t HeapReclaimed = 0;

  /// Per-worker op counters (each Tid is single-threaded by contract).
  std::vector<KvOpStats> Stats;
};

} // namespace kv
} // namespace crafty

#endif // CRAFTY_KV_KVSHARD_H
