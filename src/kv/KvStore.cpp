//===- kv/KvStore.cpp - Sharded durable key-value store -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "kv/KvStore.h"

#include "check/PersistCheck.h"
#include "check/TxRaceCheck.h"
#include "core/Crafty.h"

using namespace crafty;
using namespace crafty::kv;

namespace {

/// splitmix64 finalizer: routes keys to shards independently of the
/// DurableHashMap's in-shard slot hash, so the two never correlate.
uint64_t mixKey(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

KvStore::KvStore(const KvConfig &Cfg) : Cfg(Cfg) {
  unsigned N = Cfg.NumShards ? Cfg.NumShards : 1;
  Shards.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Shards.push_back(std::make_unique<KvShard>(Cfg, I));
}

KvStore::~KvStore() = default;

unsigned KvStore::shardOf(uint64_t Key) const {
  return (unsigned)(mixKey(Key) % Shards.size());
}

bool KvStore::recoveredOnOpen() const {
  for (const auto &S : Shards)
    if (S->recoveredOnOpen())
      return true;
  return false;
}

size_t KvStore::sequencesRolledBack() const {
  size_t N = 0;
  for (const auto &S : Shards)
    N += S->lastRecovery().SequencesRolledBack;
  return N;
}

KvStatus KvStore::get(unsigned Tid, uint64_t Key, std::string &Out) {
  return Shards[shardOf(Key)]->get(Tid, Key, Out);
}

KvStatus KvStore::set(unsigned Tid, uint64_t Key, std::string_view Val) {
  return Shards[shardOf(Key)]->set(Tid, Key, Val);
}

KvStatus KvStore::del(unsigned Tid, uint64_t Key) {
  return Shards[shardOf(Key)]->del(Tid, Key);
}

KvStatus KvStore::cas(unsigned Tid, uint64_t Key, std::string_view Expect,
                      std::string_view Desired) {
  return Shards[shardOf(Key)]->cas(Tid, Key, Expect, Desired);
}

std::vector<KvResult> KvStore::mget(unsigned Tid,
                                    const std::vector<uint64_t> &Keys) {
  // Group by shard and run each group through the batched GET pipeline
  // (few transactions per shard instead of one per key), then scatter
  // the results back to the caller's order.
  std::vector<KvResult> Out(Keys.size());
  std::vector<std::vector<size_t>> ByShard(Shards.size());
  for (size_t I = 0; I != Keys.size(); ++I)
    ByShard[shardOf(Keys[I])].push_back(I);
  std::vector<uint64_t> GroupKeys;
  std::vector<KvResult> Group;
  for (size_t S = 0; S != Shards.size(); ++S) {
    if (ByShard[S].empty())
      continue;
    GroupKeys.clear();
    for (size_t I : ByShard[S])
      GroupKeys.push_back(Keys[I]);
    Group.assign(GroupKeys.size(), KvResult());
    Shards[S]->getBatch(Tid, GroupKeys.data(), GroupKeys.size(),
                        Group.data());
    for (size_t G = 0; G != Group.size(); ++G)
      Out[ByShard[S][G]] = std::move(Group[G]);
  }
  return Out;
}

void KvStore::msetBatch(unsigned Tid, std::vector<KvBatchItem> &Items,
                        bool Durable) {
  // Group by shard, run each shard's group as one batched pipeline, then
  // scatter the statuses back to the caller's order.
  std::vector<std::vector<size_t>> ByShard(Shards.size());
  for (size_t I = 0; I != Items.size(); ++I)
    ByShard[shardOf(Items[I].Key)].push_back(I);
  std::vector<KvBatchItem> Group;
  for (size_t S = 0; S != Shards.size(); ++S) {
    if (ByShard[S].empty())
      continue;
    Group.clear();
    for (size_t I : ByShard[S])
      Group.push_back(Items[I]);
    Shards[S]->setBatch(Tid, Group.data(), Group.size());
    if (Durable)
      Shards[S]->persistAck(Tid);
    for (size_t G = 0; G != Group.size(); ++G)
      Items[ByShard[S][G]].Status = Group[G].Status;
  }
}

void KvStore::persistAck(unsigned Tid) {
  for (auto &S : Shards)
    S->persistAck(Tid);
}

void KvStore::persistAll() {
  for (auto &S : Shards)
    for (unsigned T = 0; T != Cfg.ThreadsPerShard; ++T)
      S->persistAck(T);
}

void KvStore::simulateCrash() {
  for (auto &S : Shards)
    S->simulateCrash();
}

size_t KvStore::recover() {
  size_t N = 0;
  for (auto &S : Shards) {
    S->recoverInPlace();
    N += S->lastRecovery().SequencesRolledBack;
  }
  return N;
}

uint64_t KvStore::checkerViolations() {
  uint64_t N = 0;
  for (auto &S : Shards) {
    CraftyRuntime *Rt = S->crafty();
    if (!Rt)
      continue;
    if (PersistCheck *PC = Rt->persistCheck())
      N += PC->violationCount();
    if (TxRaceCheck *RC = Rt->raceCheck())
      N += RC->violationCount();
  }
  return N;
}

KvHeapAudit KvStore::auditHeap() const {
  KvHeapAudit A;
  for (const auto &Shard : Shards)
    A += Shard->auditHeap();
  return A;
}

KvOpStats KvStore::opStats() const {
  KvOpStats S;
  for (const auto &Shard : Shards)
    S += Shard->opStats();
  return S;
}
