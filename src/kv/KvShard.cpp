//===- kv/KvShard.cpp - One durable key-value shard -----------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "kv/KvShard.h"

#include "core/Crafty.h"
#include "log/PoolLayout.h"

#include <algorithm>
#include <cstring>

using namespace crafty;
using namespace crafty::kv;

namespace {

/// Pool bytes a shard needs: header + undo logs (or baseline redo logs) +
/// map + cells + freelist + slack for backend-internal carves.
size_t poolBytesFor(const KvConfig &Cfg) {
  size_t Cells = DurableHashMap::roundUpPow2(Cfg.SlotsPerShard);
  size_t Kv = DurableHashMap::bytesFor(Cfg.SlotsPerShard) +
              Cells * Cfg.cellBytes() + Cells * 8 + CacheLineBytes;
  if (Cfg.HeapPages)
    Kv += heap::DurableHeap::bytesFor(Cfg.HeapPages, Cfg.HeapWalSlots);
  size_t Backend = 0;
  switch (Cfg.Backend) {
  case SystemKind::Crafty:
  case SystemKind::CraftyNoValidate:
  case SystemKind::CraftyNoRedo:
    Backend = (size_t)Cfg.ThreadsPerShard * Cfg.LogEntriesPerThread *
              UndoLogRegion::EntryBytes;
    break;
  case SystemKind::NvHtm:
    Backend = (size_t)Cfg.ThreadsPerShard * (8 << 20);
    break;
  case SystemKind::DudeTm:
    Backend = 16 << 20;
    break;
  case SystemKind::NonDurable:
    break;
  }
  return Kv + Backend + (1 << 20); // Header + slack.
}

bool isCraftyKind(SystemKind K) {
  return K == SystemKind::Crafty || K == SystemKind::CraftyNoValidate ||
         K == SystemKind::CraftyNoRedo;
}

BackendOptions backendOptionsFor(const KvConfig &Cfg) {
  BackendOptions BO;
  BO.NumThreads = Cfg.ThreadsPerShard;
  BO.LogEntriesPerThread = Cfg.LogEntriesPerThread;
  BO.EnablePersistCheck = Cfg.EnablePersistCheck;
  BO.EnableTxRaceCheck = Cfg.EnableTxRaceCheck;
  return BO;
}

} // namespace

KvShard::KvShard(const KvConfig &Cfg, unsigned ShardIdx)
    : Cfg(Cfg), ShardIdx(ShardIdx), CellBytes(Cfg.cellBytes()),
      NumCells(DurableHashMap::roundUpPow2(Cfg.SlotsPerShard)),
      Stats(Cfg.ThreadsPerShard) {
  PMemConfig PC;
  PC.PoolBytes = poolBytesFor(Cfg);
  PC.Mode = Cfg.Mode;
  PC.DrainLatencyNs = Cfg.DrainLatencyNs;
  PC.EvictionPerMillion = Cfg.EvictionPerMillion;
  PC.EvictionSeed = Cfg.EvictionSeed + ShardIdx * 7919;
  PC.MaxThreads = Cfg.ThreadsPerShard + 4;
  if (!Cfg.DataDir.empty())
    PC.BackingPath =
        Cfg.DataDir + "/shard" + std::to_string(ShardIdx) + ".img";
  Pool = std::make_unique<PMemPool>(PC);
  if (Pool->attachedFromImage())
    openAttached();
  else
    openFresh();
}

KvShard::~KvShard() = default;

void KvShard::openFresh() {
  Htm = std::make_unique<HtmRuntime>(HtmConfig{});
  Backend = createBackend(Cfg.Backend, *Pool, *Htm, backendOptionsFor(Cfg));
  carveKvRegions(/*Attach=*/false);
}

void KvShard::openAttached() {
  if (!isCraftyKind(Cfg.Backend))
    fatalError("KvShard: attaching to an existing image requires a Crafty "
               "backend (undo-log recovery)");
  LastRecovery = RecoveryObserver::recoverPool(*Pool);
  if (!LastRecovery.HeaderValid)
    fatalError("KvShard: image backing file holds no valid pool header");
  // Undo-log entries hold virtual addresses of the mapping that wrote
  // them; recovery translated the old ones, and entries written from now
  // on must translate through *this* process's base.
  auto *Header = reinterpret_cast<PoolHeader *>(Pool->base());
  uint64_t NewBase = reinterpret_cast<uint64_t>(Pool->base());
  Pool->persistDirect(&Header->MappedBase, &NewBase, sizeof(NewBase));
  RecoveredOnOpen = true;
  attachBackend();
  // A fresh process's carve pointer starts at zero; advance it past the
  // regions formatPool carved (header, undo logs; no heap, no arenas) so
  // the KV regions re-carve at their formatted offsets.
  void *H = Pool->carve(sizeof(PoolHeader));
  Pool->carve((size_t)Cfg.ThreadsPerShard * Cfg.LogEntriesPerThread *
              UndoLogRegion::EntryBytes);
  if (H != Pool->base())
    fatalError("KvShard: attach carve layout does not match the image");
  carveKvRegions(/*Attach=*/true);
  // Undo replay restored bitmap/WAL consistency; now reclaim extents that
  // were staged (allocated + WAL intent durable) but never published.
  if (Heap)
    HeapReclaimed = Heap->recoverReclaim();
}

void KvShard::attachBackend() {
  Htm = std::make_unique<HtmRuntime>(HtmConfig{});
  CraftyConfig CC;
  CC.NumThreads = Cfg.ThreadsPerShard;
  CC.LogEntriesPerThread = Cfg.LogEntriesPerThread;
  CC.DisableValidate = Cfg.Backend == SystemKind::CraftyNoValidate;
  CC.DisableRedo = Cfg.Backend == SystemKind::CraftyNoRedo;
  CC.EnablePersistCheck = Cfg.EnablePersistCheck;
  CC.EnableTxRaceCheck = Cfg.EnableTxRaceCheck;
  Backend = CraftyRuntime::attach(*Pool, *Htm, CC);
}

void KvShard::carveKvRegions(bool Attach) {
  // Fixed carve order (format and attach must match): map, cells,
  // freelist links, freelist head, heap. The backend carved its own
  // regions (header, logs) first in both paths.
  Map = std::make_unique<DurableHashMap>(*Pool, Cfg.SlotsPerShard, Attach);
  CellsBase = static_cast<uint8_t *>(Pool->carve(NumCells * CellBytes));
  NextFree = static_cast<uint64_t *>(Pool->carve(NumCells * 8));
  FreeHead = static_cast<uint64_t *>(Pool->carve(CacheLineBytes));
  if (Cfg.HeapPages)
    Heap = std::make_unique<heap::DurableHeap>(*Pool, Cfg.HeapPages,
                                               Cfg.HeapWalSlots, Attach);
  if (!Attach) {
    // Chain every cell onto the freelist; setup-time direct persists.
    std::vector<uint64_t> Links(NumCells);
    for (size_t I = 0; I + 1 < NumCells; ++I)
      Links[I] = I + 2;
    Links[NumCells - 1] = 0;
    Pool->persistDirect(NextFree, Links.data(), NumCells * 8);
    uint64_t Head = 1;
    Pool->persistDirect(FreeHead, &Head, sizeof(Head));
  }
}

CraftyRuntime *KvShard::crafty() {
  if (!isCraftyKind(Cfg.Backend))
    return nullptr;
  return static_cast<CraftyRuntime *>(Backend.get());
}

void KvShard::writeCellTx(TxnContext &Tx, uint64_t CellIdx,
                          std::string_view Val) {
  uint64_t *Cell = cellAt(CellIdx);
  Tx.store(Cell, Val.size());
  for (size_t W = 0; W * 8 < Val.size(); ++W) {
    // Val.size() <= Cfg.MaxValueBytes (checked before the transaction),
    // so one cell write is at most 1 + MaxValueBytes/8 stores.
    CRAFTY_TX_BOUND(Cfg.MaxValueBytes / 8 + 1);
    uint64_t Word = 0;
    size_t N = std::min<size_t>(8, Val.size() - W * 8);
    std::memcpy(&Word, Val.data() + W * 8, N);
    Tx.store(Cell + 1 + W, Word);
  }
}

void KvShard::writeHeapCellTx(TxnContext &Tx, uint64_t CellIdx,
                              uint64_t Ref) {
  uint64_t *Cell = cellAt(CellIdx);
  Tx.store(Cell, HeapLenTag);
  Tx.store(Cell + 1, Ref);
}

void KvShard::freeCellExtentTx(TxnContext &Tx, uint64_t CellIdx) {
  if (!Heap)
    return;
  uint64_t *Cell = cellAt(CellIdx);
  if (Tx.load(Cell) != HeapLenTag)
    return;
  Heap->freeExtentInTx(Tx, Tx.load(Cell + 1));
}

bool KvShard::readCellTx(TxnContext &Tx, uint64_t CellIdx,
                         std::string &Out) {
  uint64_t *Cell = cellAt(CellIdx);
  uint64_t Len = Tx.load(Cell);
  if (Len == HeapLenTag)
    // Tag and ref were loaded transactionally: a concurrent free of this
    // extent rewrites these words and aborts us, so the raw extent copy
    // below can never commit torn.
    return Heap && Heap->readExtent(Tx.load(Cell + 1), Out);
  if (Len > Cfg.MaxValueBytes)
    return false;
  Out.resize(Len);
  for (size_t W = 0; W * 8 < Len; ++W) {
    uint64_t Word = Tx.load(Cell + 1 + W);
    size_t N = std::min<size_t>(8, Len - W * 8);
    std::memcpy(Out.data() + W * 8, &Word, N);
  }
  return true;
}

KvStatus KvShard::setInTx(TxnContext &Tx, uint64_t Key, std::string_view Val,
                          const heap::HeapStaged &S) {
  std::optional<uint64_t> Existing = Map->getTx(Tx, Key);
  uint64_t CellIdx;
  if (Existing) {
    // Overwrite in place: transaction atomicity makes the partial states
    // invisible, and no freelist traffic is needed.
    CellIdx = *Existing;
  } else {
    uint64_t Head = Tx.load(FreeHead);
    if (Head == 0)
      return KvStatus::Full;
    CellIdx = Head - 1;
    Tx.store(FreeHead, Tx.load(&NextFree[CellIdx]));
    if (!Map->putTx(Tx, Key, CellIdx)) {
      // Table full: push the popped cell back and report recoverably.
      Tx.store(&NextFree[CellIdx], Tx.load(FreeHead));
      Tx.store(FreeHead, CellIdx + 1);
      return KvStatus::Full;
    }
  }
  // Whatever extent the cell owned is displaced either way; freeing it
  // here keeps pointer swing + free in one atomic publish transaction.
  freeCellExtentTx(Tx, CellIdx);
  if (S) {
    writeHeapCellTx(Tx, CellIdx, S.Ref);
    Heap->closeWalInTx(Tx, S.WalSlot);
  } else {
    writeCellTx(Tx, CellIdx, Val);
  }
  return KvStatus::Ok;
}

bool KvShard::prepareValue(unsigned Tid, std::string_view Val,
                           heap::HeapStaged &S, KvStatus &St) {
  S = {};
  size_t Threshold = Heap ? Cfg.heapThreshold() : Cfg.MaxValueBytes;
  if (Val.size() <= Threshold)
    return true; // Inline cell fast path.
  if (!Heap || Val.size() > heap::DurableHeap::MaxObjectBytes) {
    St = KvStatus::TooBig;
    return false;
  }
  S = Heap->allocAndStage(*Backend, Tid, Val);
  if (!S) {
    // Exhaustion may be only barrier-deferred reuse (pages/WAL slots
    // freed since the last barrier are held back so rollback cannot
    // resurrect clobbered extents). Force a barrier and retry once
    // before reporting the shard genuinely full.
    persistAck(Tid);
    S = Heap->allocAndStage(*Backend, Tid, Val);
  }
  if (!S) {
    St = KvStatus::Full; // Pages or WAL records exhausted.
    return false;
  }
  // Crafty's next HTM commit (the publish transaction) fences the staged
  // writebacks; backends without that flush-without-drain trick pay an
  // explicit drain here, as the paper's baselines would.
  if (!crafty())
    Heap->stageDrain(Tid);
  return true;
}

KvStatus KvShard::get(unsigned Tid, uint64_t Key, std::string &Out) {
  KvStatus St = KvStatus::NotFound;
  Backend->run(Tid, [&](TxnContext &Tx) {
    St = KvStatus::NotFound; // Bodies may re-execute; restart clean.
    Out.clear();
    if (std::optional<uint64_t> Cell = Map->getTx(Tx, Key))
      St = readCellTx(Tx, *Cell, Out) ? KvStatus::Ok : KvStatus::Err;
  });
  ++Stats[Tid].Gets;
  ++(St == KvStatus::Ok ? Stats[Tid].Hits : Stats[Tid].Misses);
  return St;
}

KvStatus KvShard::set(unsigned Tid, uint64_t Key, std::string_view Val) {
  heap::HeapStaged S;
  KvStatus St = KvStatus::Err;
  if (!prepareValue(Tid, Val, S, St))
    return St;
  Backend->run(Tid, [&](TxnContext &Tx) { St = setInTx(Tx, Key, Val, S); });
  if (S && St != KvStatus::Ok)
    Heap->abandon(*Backend, Tid, S);
  ++Stats[Tid].Sets;
  return St;
}

KvStatus KvShard::delInTx(TxnContext &Tx, uint64_t Key) {
  std::optional<uint64_t> Cell = Map->getTx(Tx, Key);
  if (!Cell)
    return KvStatus::NotFound;
  Map->eraseTx(Tx, Key);
  freeCellExtentTx(Tx, *Cell);
  Tx.store(&NextFree[*Cell], Tx.load(FreeHead));
  Tx.store(FreeHead, *Cell + 1);
  return KvStatus::Ok;
}

KvStatus KvShard::casInTx(TxnContext &Tx, uint64_t Key,
                          std::string_view Expect, std::string_view Desired,
                          std::string &Scratch, const heap::HeapStaged &S) {
  std::optional<uint64_t> Cell = Map->getTx(Tx, Key);
  if (!Cell)
    return KvStatus::NotFound;
  if (!readCellTx(Tx, *Cell, Scratch))
    return KvStatus::Err;
  if (Scratch != Expect)
    return KvStatus::Mismatch;
  freeCellExtentTx(Tx, *Cell);
  if (S) {
    writeHeapCellTx(Tx, *Cell, S.Ref);
    Heap->closeWalInTx(Tx, S.WalSlot);
  } else {
    writeCellTx(Tx, *Cell, Desired);
  }
  return KvStatus::Ok;
}

KvStatus KvShard::del(unsigned Tid, uint64_t Key) {
  KvStatus St = KvStatus::NotFound;
  Backend->run(Tid, [&](TxnContext &Tx) { St = delInTx(Tx, Key); });
  ++Stats[Tid].Dels;
  return St;
}

KvStatus KvShard::cas(unsigned Tid, uint64_t Key, std::string_view Expect,
                      std::string_view Desired) {
  heap::HeapStaged S;
  KvStatus St = KvStatus::NotFound;
  if (!prepareValue(Tid, Desired, S, St))
    return St;
  std::string Cur;
  Backend->run(Tid, [&](TxnContext &Tx) {
    St = casInTx(Tx, Key, Expect, Desired, Cur, S);
  });
  if (S && St != KvStatus::Ok)
    Heap->abandon(*Backend, Tid, S);
  ++Stats[Tid].Cas;
  return St;
}

void KvShard::setBatch(unsigned Tid, KvBatchItem *Items, size_t N) {
  size_t Limit = Cfg.BatchTxnLimit ? Cfg.BatchTxnLimit : 1;
  std::vector<heap::HeapStaged> Staged(Limit);
  std::vector<uint8_t> Skip(Limit);
  for (size_t Begin = 0; Begin != N;) {
    size_t End = std::min(N, Begin + Limit);
    // Stage the chunk's heap-bound values before its transaction; items
    // that fail routing get their terminal status here and are skipped.
    // Limit <= HeapWalSlots keeps every chunk's staging within the WAL.
    for (size_t I = Begin; I != End; ++I)
      Skip[I - Begin] = !prepareValue(Tid, Items[I].Val, Staged[I - Begin],
                                      Items[I].Status);
    Backend->run(Tid, [&](TxnContext &Tx) {
      for (size_t I = Begin; I != End; ++I) {
        // End - Begin <= Limit: one transaction covers one batch chunk.
        CRAFTY_TX_BOUND(Cfg.BatchTxnLimit);
        KvBatchItem &Item = Items[I];
        if (Skip[I - Begin])
          continue; // Routing failed before the transaction.
        Item.Status = setInTx(Tx, Item.Key, Item.Val, Staged[I - Begin]);
      }
    });
    for (size_t I = Begin; I != End; ++I)
      if (Staged[I - Begin] && Items[I].Status != KvStatus::Ok)
        Heap->abandon(*Backend, Tid, Staged[I - Begin]);
    Stats[Tid].Sets += End - Begin;
    Stats[Tid].BatchedSets += End - Begin;
    Begin = End;
  }
}

void KvShard::getBatch(unsigned Tid, const uint64_t *Keys, size_t N,
                       KvResult *Results) {
  size_t Limit = Cfg.BatchTxnLimit ? Cfg.BatchTxnLimit : 1;
  for (size_t Begin = 0; Begin != N;) {
    size_t End = std::min(N, Begin + Limit);
    Backend->run(Tid, [&](TxnContext &Tx) {
      for (size_t I = Begin; I != End; ++I) {
        // End - Begin <= Limit: one transaction covers one batch chunk
        // (reads only; the bound keeps the HTM read set per chunk flat).
        CRAFTY_TX_BOUND(Cfg.BatchTxnLimit);
        KvResult &R = Results[I];
        R.Status = KvStatus::NotFound; // Bodies may re-execute.
        R.Value.clear();
        if (std::optional<uint64_t> Cell = Map->getTx(Tx, Keys[I]))
          R.Status = readCellTx(Tx, *Cell, R.Value) ? KvStatus::Ok
                                                    : KvStatus::Err;
      }
    });
    for (size_t I = Begin; I != End; ++I)
      ++(Results[I].Status == KvStatus::Ok ? Stats[Tid].Hits
                                           : Stats[Tid].Misses);
    Stats[Tid].Gets += End - Begin;
    Begin = End;
  }
}

bool KvShard::runCycle(unsigned Tid, KvCycleOp *Ops, size_t N) {
  size_t Limit = Cfg.BatchTxnLimit ? Cfg.BatchTxnLimit : 1;
  bool Wrote = false;
  std::string Scratch;
  std::vector<heap::HeapStaged> Staged(Limit);
  std::vector<uint8_t> Skip(Limit);
  for (size_t Begin = 0; Begin != N;) {
    size_t End = std::min(N, Begin + Limit);
    // Pre-stage the chunk's heap-bound SET/CAS values (see setBatch).
    for (size_t I = Begin; I != End; ++I) {
      KvCycleOp &Op = Ops[I];
      Staged[I - Begin] = {};
      Skip[I - Begin] = false;
      if (Op.K == KvCycleOp::Set || Op.K == KvCycleOp::Cas)
        Skip[I - Begin] =
            !prepareValue(Tid, Op.Val, Staged[I - Begin], *Op.Status);
    }
    Backend->run(Tid, [&](TxnContext &Tx) {
      for (size_t I = Begin; I != End; ++I) {
        // End - Begin <= Limit: one transaction covers one cycle chunk.
        CRAFTY_TX_BOUND(Cfg.BatchTxnLimit);
        KvCycleOp &Op = Ops[I];
        if (Skip[I - Begin])
          continue; // Routing failed before the transaction.
        switch (Op.K) {
        case KvCycleOp::Get: {
          KvResult &R = *Op.Result;
          R.Status = KvStatus::NotFound; // Bodies may re-execute.
          R.Value.clear();
          if (std::optional<uint64_t> Cell = Map->getTx(Tx, Op.Key))
            R.Status = readCellTx(Tx, *Cell, R.Value) ? KvStatus::Ok
                                                      : KvStatus::Err;
          break;
        }
        case KvCycleOp::Set:
          *Op.Status = setInTx(Tx, Op.Key, Op.Val, Staged[I - Begin]);
          break;
        case KvCycleOp::Del:
          *Op.Status = delInTx(Tx, Op.Key);
          break;
        case KvCycleOp::Cas:
          *Op.Status = casInTx(Tx, Op.Key, Op.Expect, Op.Val, Scratch,
                               Staged[I - Begin]);
          break;
        }
      }
    });
    for (size_t I = Begin; I != End; ++I)
      if (Staged[I - Begin] && *Ops[I].Status != KvStatus::Ok)
        Heap->abandon(*Backend, Tid, Staged[I - Begin]);
    for (size_t I = Begin; I != End; ++I) {
      const KvCycleOp &Op = Ops[I];
      switch (Op.K) {
      case KvCycleOp::Get:
        ++Stats[Tid].Gets;
        ++(Op.Result->Status == KvStatus::Ok ? Stats[Tid].Hits
                                             : Stats[Tid].Misses);
        break;
      case KvCycleOp::Set:
        ++Stats[Tid].Sets;
        ++Stats[Tid].BatchedSets;
        Wrote |= *Op.Status == KvStatus::Ok;
        break;
      case KvCycleOp::Del:
        ++Stats[Tid].Dels;
        Wrote |= *Op.Status == KvStatus::Ok;
        break;
      case KvCycleOp::Cas:
        ++Stats[Tid].Cas;
        Wrote |= *Op.Status == KvStatus::Ok;
        break;
      }
    }
    Begin = End;
  }
  return Wrote;
}

void KvShard::persistAck(unsigned Tid) {
  if (CraftyRuntime *Rt = crafty())
    Rt->persistBarrier(Tid);
  // NV-HTM / DudeTM persist their redo log inside run(); Non-durable
  // promises nothing. Neither needs (or has) an on-demand barrier.
  if (Heap)
    Heap->barrierReached();
}

void KvShard::persistAckBegin(unsigned Tid, PersistBarrierTicket &T) {
  if (CraftyRuntime *Rt = crafty())
    Rt->persistBarrierBegin(Tid, T);
  else
    T.Pending = false;
}

void KvShard::persistAckEnd(unsigned Tid, PersistBarrierTicket &T) {
  if (CraftyRuntime *Rt = crafty())
    Rt->persistBarrierEnd(Tid, T);
  if (Heap)
    Heap->barrierReached();
}

void KvShard::simulateCrash() { Pool->crash(); }

void KvShard::recoverInPlace() {
  // The pool survives in place (same mapping, same carve offsets), so
  // map/cell/freelist pointers stay valid; only the runtime state is
  // rebuilt, exactly as a restarted process would attach.
  Backend.reset();
  LastRecovery = RecoveryObserver::recoverPool(*Pool);
  attachBackend();
  if (Heap)
    HeapReclaimed = Heap->recoverReclaim();
}

bool KvShard::peek(uint64_t Key, std::string &Out) const {
  std::optional<uint64_t> Cell = Map->peek(Key);
  if (!Cell)
    return false;
  const uint64_t *C = cellAt(*Cell);
  uint64_t Len = C[0];
  if (Len == HeapLenTag)
    return Heap && Heap->readExtent(C[1], Out);
  if (Len > Cfg.MaxValueBytes)
    return false;
  Out.assign(reinterpret_cast<const char *>(C + 1), Len);
  return true;
}

KvHeapAudit KvShard::auditHeap() const {
  KvHeapAudit A;
  if (!Heap)
    return A;
  A.Enabled = true;
  A.BitmapPages = Heap->allocatedPages();
  A.StagedWal = Heap->stagedWalRecords();
  Map->forEachPeek([&](uint64_t, uint64_t CellIdx) {
    const uint64_t *C = cellAt(CellIdx);
    if (C[0] == HeapLenTag)
      A.LivePages +=
          heap::DurableHeap::pagesFor(heap::DurableHeap::refLen(C[1]));
  });
  return A;
}

KvOpStats KvShard::opStats() const {
  KvOpStats S;
  for (const KvOpStats &T : Stats)
    S += T;
  return S;
}
