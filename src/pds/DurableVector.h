//===- pds/DurableVector.h - Persistent append-only vector -----*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-safe append-only vector (a durable log of words): the size
/// word and the appended elements move atomically, so a recovered vector
/// is always a clean prefix of the appends -- the canonical shape for
/// write-ahead application logs and event journals.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_PDS_DURABLEVECTOR_H
#define CRAFTY_PDS_DURABLEVECTOR_H

#include "core/Ptm.h"
#include "support/Annotations.h"
#include "pmem/PMemPool.h"
#include "support/Compiler.h"

#include <optional>

namespace crafty {

/// Fixed-capacity append-only vector of uint64_t in persistent memory.
class DurableVector {
public:
  DurableVector(PMemPool &Pool, size_t Capacity) : Cap(Capacity) {
    Data = static_cast<uint64_t *>(Pool.carve(Capacity * 8));
    Meta = static_cast<uint64_t *>(Pool.carve(CacheLineBytes));
    uint64_t Zero = 0;
    Pool.persistDirect(Meta, &Zero, sizeof(Zero));
  }

  size_t capacity() const { return Cap; }

  /// Appends inside an open transaction; false when full.
  bool pushBackTx(TxnContext &Tx, uint64_t Value) {
    uint64_t N = Tx.load(Meta);
    if (N >= Cap)
      return false;
    Tx.store(&Data[N], Value);
    Tx.store(Meta, N + 1);
    return true;
  }

  /// Appends several words as one atomic record; false when they do not
  /// all fit.
  bool appendRecordTx(TxnContext &Tx, const uint64_t *Words, size_t Len) {
    uint64_t N = Tx.load(Meta);
    if (N + Len > Cap)
      return false;
    for (size_t I = 0; I != Len; ++I) {
      // Caller contract: records are sized to fit one hardware
      // transaction (Len words plus the Meta bump).
      CRAFTY_TX_BOUND(Len);
      Tx.store(&Data[N + I], Words[I]);
    }
    Tx.store(Meta, N + Len);
    return true;
  }

  std::optional<uint64_t> atTx(TxnContext &Tx, uint64_t Index) {
    if (Index >= Tx.load(Meta))
      return std::nullopt;
    return Tx.load(&Data[Index]);
  }

  uint64_t sizeTx(TxnContext &Tx) { return Tx.load(Meta); }

  bool pushBack(PtmBackend &B, unsigned Tid, uint64_t Value) {
    bool Ok = false;
    B.run(Tid, [&](TxnContext &Tx) { Ok = pushBackTx(Tx, Value); });
    return Ok;
  }
  std::optional<uint64_t> at(PtmBackend &B, unsigned Tid, uint64_t Index) {
    std::optional<uint64_t> Out;
    B.run(Tid, [&](TxnContext &Tx) { Out = atTx(Tx, Index); });
    return Out;
  }
  uint64_t size(PtmBackend &B, unsigned Tid) {
    uint64_t N = 0;
    B.run(Tid, [&](TxnContext &Tx) { N = sizeTx(Tx); });
    return N;
  }

  /// Non-transactional audit access (post-recovery checks).
  uint64_t rawSize() const { return *Meta; }
  uint64_t rawAt(uint64_t Index) const { return Data[Index]; }

private:
  size_t Cap;
  uint64_t *Data = nullptr;
  uint64_t *Meta = nullptr; // [0] size.
};

} // namespace crafty

#endif // CRAFTY_PDS_DURABLEVECTOR_H
