//===- pds/DurableHashMap.h - Persistent open-addressed map ----*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, crash-safe hash map over persistent transactions.
/// Every operation comes in two flavors: a `*Tx` primitive taking a
/// TxnContext, composable inside larger transactions (move a value
/// between structures atomically), and a convenience wrapper that runs
/// its own transaction on a backend. All state lives in persistent
/// memory; keys are uint64_t (a reserved empty/tombstone encoding), and
/// values are uint64_t words.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_PDS_DURABLEHASHMAP_H
#define CRAFTY_PDS_DURABLEHASHMAP_H

#include "core/Ptm.h"
#include "support/Annotations.h"
#include "pmem/PMemPool.h"
#include "support/Compiler.h"

#include <optional>

namespace crafty {

/// Open-addressed ⟨uint64_t → uint64_t⟩ map with linear probing and
/// tombstones. Capacity is fixed at creation (slot counts round up to a
/// power of two; keep load below ~70% for sane probe lengths). A full
/// table is a recoverable condition: putTx returns false and callers
/// surface it (the KV layer answers `ERR full`), never a process abort.
class DurableHashMap {
public:
  /// Lays the map out in \p Pool (setup-time; not transactional), or --
  /// with \p Attach -- adopts an existing layout after recovery: the same
  /// slot count carved in the same order, with the persisted slot and
  /// metadata content left untouched.
  DurableHashMap(PMemPool &Pool, size_t Slots, bool Attach = false)
      : NumSlots(roundUpPow2(Slots)) {
    Table = static_cast<uint64_t *>(Pool.carve(NumSlots * 16));
    Meta = static_cast<uint64_t *>(Pool.carve(CacheLineBytes));
    if (!Attach) {
      // Freshly carved memory is zero; persist the (zero) metadata word so
      // a crash image always decodes an empty map.
      uint64_t Zero = 0;
      Pool.persistDirect(Meta, &Zero, sizeof(Zero));
    }
  }

  /// Smallest power of two >= \p Slots (and >= 2, so the reserved
  /// encodings always leave room for at least one live key).
  static constexpr size_t roundUpPow2(size_t Slots) {
    size_t N = 2;
    while (N < Slots)
      N *= 2;
    return N;
  }

  /// Pool bytes a map of \p Slots (rounded up) occupies: use to size
  /// pools and to re-carve on attach (same carve order).
  static constexpr size_t bytesFor(size_t Slots) {
    return roundUpPow2(Slots) * 16 + CacheLineBytes;
  }

  size_t capacity() const { return NumSlots; }

  /// Inserts or overwrites inside an open transaction. Returns false if
  /// the table is full.
  bool putTx(TxnContext &Tx, uint64_t Key, uint64_t Value) {
    size_t Tomb = NumSlots;
    for (size_t P = 0; P != NumSlots; ++P) {
      // The probe itself only reads; each branch below stores at most
      // key+value+meta once, then returns.
      CRAFTY_TX_BOUND(3);
      size_t I = slotOf(Key, P);
      uint64_t K = Tx.load(keyWord(I));
      if (K == encode(Key)) {
        Tx.store(valWord(I), Value);
        return true;
      }
      if (K == Tombstone && Tomb == NumSlots)
        Tomb = I;
      if (K == Empty) {
        size_t Dst = Tomb != NumSlots ? Tomb : I;
        Tx.store(keyWord(Dst), encode(Key));
        Tx.store(valWord(Dst), Value);
        Tx.store(Meta, Tx.load(Meta) + 1);
        return true;
      }
    }
    if (Tomb != NumSlots) {
      Tx.store(keyWord(Tomb), encode(Key));
      Tx.store(valWord(Tomb), Value);
      Tx.store(Meta, Tx.load(Meta) + 1);
      return true;
    }
    return false;
  }

  /// Looks a key up inside an open transaction.
  std::optional<uint64_t> getTx(TxnContext &Tx, uint64_t Key) {
    for (size_t P = 0; P != NumSlots; ++P) {
      size_t I = slotOf(Key, P);
      uint64_t K = Tx.load(keyWord(I));
      if (K == encode(Key))
        return Tx.load(valWord(I));
      if (K == Empty)
        return std::nullopt;
    }
    return std::nullopt;
  }

  /// Erases a key inside an open transaction; returns true if present.
  bool eraseTx(TxnContext &Tx, uint64_t Key) {
    for (size_t P = 0; P != NumSlots; ++P) {
      // Read-only probe; the hit stores tombstone+meta once and returns.
      CRAFTY_TX_BOUND(2);
      size_t I = slotOf(Key, P);
      uint64_t K = Tx.load(keyWord(I));
      if (K == encode(Key)) {
        Tx.store(keyWord(I), Tombstone);
        Tx.store(Meta, Tx.load(Meta) - 1);
        return true;
      }
      if (K == Empty)
        return false;
    }
    return false;
  }

  /// Number of live keys inside an open transaction.
  uint64_t sizeTx(TxnContext &Tx) { return Tx.load(Meta); }

  // Convenience single-transaction wrappers.
  bool put(PtmBackend &B, unsigned Tid, uint64_t Key, uint64_t Value) {
    bool Ok = false;
    B.run(Tid, [&](TxnContext &Tx) { Ok = putTx(Tx, Key, Value); });
    return Ok;
  }
  std::optional<uint64_t> get(PtmBackend &B, unsigned Tid, uint64_t Key) {
    std::optional<uint64_t> Out;
    B.run(Tid, [&](TxnContext &Tx) { Out = getTx(Tx, Key); });
    return Out;
  }
  bool erase(PtmBackend &B, unsigned Tid, uint64_t Key) {
    bool Ok = false;
    B.run(Tid, [&](TxnContext &Tx) { Ok = eraseTx(Tx, Key); });
    return Ok;
  }
  uint64_t size(PtmBackend &B, unsigned Tid) {
    uint64_t N = 0;
    B.run(Tid, [&](TxnContext &Tx) { N = sizeTx(Tx); });
    return N;
  }

  /// Non-transactional raw-memory lookup for quiesced post-recovery
  /// audits (no isolation; never call concurrently with transactions).
  std::optional<uint64_t> peek(uint64_t Key) const {
    for (size_t P = 0; P != NumSlots; ++P) {
      size_t I = slotOf(Key, P);
      uint64_t K = Table[2 * I];
      if (K == encode(Key))
        return Table[2 * I + 1];
      if (K == Empty)
        return std::nullopt;
    }
    return std::nullopt;
  }

  /// Non-transactional raw-memory iteration over live entries for
  /// quiesced audits (the KV layer's heap leak accounting walks every
  /// live cell this way). Calls \p F(Key, Value) for each live pair.
  template <typename Fn> void forEachPeek(Fn F) const {
    for (size_t I = 0; I != NumSlots; ++I) {
      uint64_t K = Table[2 * I];
      if (K != Empty && K != Tombstone)
        F(K - 2, Table[2 * I + 1]);
    }
  }

  /// Non-transactional audit over raw memory (post-recovery checks):
  /// returns the live-key count or ~0ull if the slot states are corrupt.
  uint64_t auditCount() const {
    uint64_t Live = 0;
    for (size_t I = 0; I != NumSlots; ++I) {
      uint64_t K = Table[2 * I];
      if (K != Empty && K != Tombstone)
        ++Live;
    }
    return Live == *Meta ? Live : ~0ull;
  }

private:
  // Slot key encoding: 0 = never used, 1 = tombstone, else Key + 2.
  static constexpr uint64_t Empty = 0;
  static constexpr uint64_t Tombstone = 1;
  static uint64_t encode(uint64_t Key) {
    assert(Key < ~1ull && "key too large for the reserved encoding");
    return Key + 2;
  }

  size_t slotOf(uint64_t Key, size_t Probe) const {
    uint64_t H = (Key + 2) * 0x9e3779b97f4a7c15ull;
    return ((H >> 32) + Probe) & (NumSlots - 1);
  }
  uint64_t *keyWord(size_t I) { return &Table[2 * I]; }
  uint64_t *valWord(size_t I) { return &Table[2 * I + 1]; }

  size_t NumSlots;
  uint64_t *Table = nullptr; // ⟨encoded key, value⟩ pairs.
  uint64_t *Meta = nullptr;  // [0] live-key count.
};

} // namespace crafty

#endif // CRAFTY_PDS_DURABLEHASHMAP_H
