//===- pds/DurableQueue.h - Persistent bounded FIFO queue ------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-safe, multi-producer multi-consumer bounded FIFO over
/// persistent transactions. Transactional atomicity makes the classic
/// ring-buffer races trivial: an enqueue/dequeue is one transaction over
/// the head/tail words and a slot. `*Tx` primitives compose inside larger
/// transactions (e.g. atomically dequeue a job and record its result).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_PDS_DURABLEQUEUE_H
#define CRAFTY_PDS_DURABLEQUEUE_H

#include "core/Ptm.h"
#include "pmem/PMemPool.h"
#include "support/Compiler.h"

#include <optional>

namespace crafty {

/// Bounded FIFO of uint64_t values in persistent memory.
class DurableQueue {
public:
  /// Lays the queue out in \p Pool. \p Slots must be a power of two.
  DurableQueue(PMemPool &Pool, size_t Slots) : NumSlots(Slots) {
    if (Slots == 0 || (Slots & (Slots - 1)) != 0)
      fatalError("DurableQueue: slot count must be a power of two");
    Ring = static_cast<uint64_t *>(Pool.carve(Slots * 8));
    Meta = static_cast<uint64_t *>(Pool.carve(CacheLineBytes));
    uint64_t Zero[2] = {0, 0};
    Pool.persistDirect(Meta, Zero, sizeof(Zero));
  }

  size_t capacity() const { return NumSlots; }

  /// Appends inside an open transaction; false when full.
  bool enqueueTx(TxnContext &Tx, uint64_t Value) {
    uint64_t Tail = Tx.load(tailWord());
    uint64_t Head = Tx.load(headWord());
    if (Tail - Head >= NumSlots)
      return false;
    Tx.store(&Ring[Tail & (NumSlots - 1)], Value);
    Tx.store(tailWord(), Tail + 1);
    return true;
  }

  /// Pops inside an open transaction; nullopt when empty.
  std::optional<uint64_t> dequeueTx(TxnContext &Tx) {
    uint64_t Head = Tx.load(headWord());
    uint64_t Tail = Tx.load(tailWord());
    if (Head == Tail)
      return std::nullopt;
    uint64_t Value = Tx.load(&Ring[Head & (NumSlots - 1)]);
    Tx.store(headWord(), Head + 1);
    return Value;
  }

  uint64_t sizeTx(TxnContext &Tx) {
    return Tx.load(tailWord()) - Tx.load(headWord());
  }

  bool enqueue(PtmBackend &B, unsigned Tid, uint64_t Value) {
    bool Ok = false;
    B.run(Tid, [&](TxnContext &Tx) { Ok = enqueueTx(Tx, Value); });
    return Ok;
  }
  std::optional<uint64_t> dequeue(PtmBackend &B, unsigned Tid) {
    std::optional<uint64_t> Out;
    B.run(Tid, [&](TxnContext &Tx) { Out = dequeueTx(Tx); });
    return Out;
  }
  uint64_t size(PtmBackend &B, unsigned Tid) {
    uint64_t N = 0;
    B.run(Tid, [&](TxnContext &Tx) { N = sizeTx(Tx); });
    return N;
  }

  /// Non-transactional audit: head <= tail and length within capacity.
  bool auditShape() const {
    uint64_t Head = Meta[0], Tail = Meta[1];
    return Head <= Tail && Tail - Head <= NumSlots;
  }

private:
  uint64_t *headWord() { return &Meta[0]; }
  uint64_t *tailWord() { return &Meta[1]; }

  size_t NumSlots;
  uint64_t *Ring = nullptr;
  uint64_t *Meta = nullptr; // [0] head, [1] tail (monotone counters).
};

} // namespace crafty

#endif // CRAFTY_PDS_DURABLEQUEUE_H
