//===- pds/DurableBTree.h - Persistent B+tree ------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-safe B+tree of ⟨uint64_t → uint64_t⟩ over persistent
/// transactions: every node access goes through the transactional API,
/// and nodes are allocated through TxnContext::alloc so Crafty's
/// Validate phase can replay splits. Inserts split preemptively while
/// descending; removals are leaf-local (no rebalancing). This is the
/// reusable core behind the Figure 7 B+tree microbenchmark.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_PDS_DURABLEBTREE_H
#define CRAFTY_PDS_DURABLEBTREE_H

#include "core/Ptm.h"
#include "support/Annotations.h"
#include "pmem/PMemPool.h"
#include "support/Compiler.h"

#include <string>

namespace crafty {

/// B+tree with a fixed fanout; see the file comment. The backing
/// allocator (TxnContext::alloc) supplies node storage, so the creating
/// backend must be configured with per-thread arenas.
class DurableBTree {
public:
  /// Keys per node.
  static constexpr unsigned Order = 8;

  /// Carves the root pointer and an empty root leaf from \p Pool
  /// (setup-time; not transactional).
  explicit DurableBTree(PMemPool &Pool) {
    RootPtr = static_cast<uint64_t *>(Pool.carve(CacheLineBytes));
    auto *Root = static_cast<uint64_t *>(Pool.carve(NodeWords * 8));
    uint64_t Meta = makeMeta(/*Leaf=*/true, 0);
    Pool.persistDirect(Root, &Meta, sizeof(Meta));
    uint64_t RootVal = reinterpret_cast<uint64_t>(Root);
    Pool.persistDirect(RootPtr, &RootVal, sizeof(RootVal));
  }

  /// Inserts inside an open transaction; returns false (and writes
  /// nothing at the key) when the key is already present.
  bool insertTx(TxnContext &Tx, uint64_t Key, uint64_t Val) {
    auto *Cur = reinterpret_cast<uint64_t *>(Tx.load(RootPtr));
    uint64_t Meta = Tx.load(metaWord(Cur));
    if (countOf(Meta) == Order) {
      uint64_t *NewRoot = allocNode(Tx, /*Leaf=*/false);
      Tx.store(slotWord(NewRoot, 0), reinterpret_cast<uint64_t>(Cur));
      Tx.store(RootPtr, reinterpret_cast<uint64_t>(NewRoot));
      splitChild(Tx, NewRoot, 0);
      Cur = NewRoot;
      Meta = Tx.load(metaWord(Cur));
    }
    while (!isLeaf(Meta)) {
      // Descent depth is the tree height: <= log_{Order/2}(keys), far
      // under 64 levels for a 64-bit keyspace. Each level writes at most
      // one split (3 nodes + parent links).
      CRAFTY_TX_BOUND(64);
      unsigned Count = countOf(Meta);
      unsigned Idx = 0;
      while (Idx < Count && Key >= Tx.load(keyWord(Cur, Idx)))
        ++Idx;
      auto *Child =
          reinterpret_cast<uint64_t *>(Tx.load(slotWord(Cur, Idx)));
      if (countOf(Tx.load(metaWord(Child))) == Order) {
        splitChild(Tx, Cur, Idx);
        if (Key >= Tx.load(keyWord(Cur, Idx)))
          ++Idx;
        Child = reinterpret_cast<uint64_t *>(Tx.load(slotWord(Cur, Idx)));
      }
      Cur = Child;
      Meta = Tx.load(metaWord(Cur));
    }
    unsigned Count = countOf(Meta);
    unsigned Pos = 0;
    while (Pos < Count && Tx.load(keyWord(Cur, Pos)) < Key)
      ++Pos;
    if (Pos < Count && Tx.load(keyWord(Cur, Pos)) == Key)
      return false;
    for (unsigned I = Count; I > Pos; --I) {
      CRAFTY_TX_BOUND(Order); // Count <= Order: one node's entries.
      Tx.store(keyWord(Cur, I), Tx.load(keyWord(Cur, I - 1)));
      Tx.store(slotWord(Cur, I), Tx.load(slotWord(Cur, I - 1)));
    }
    Tx.store(keyWord(Cur, Pos), Key);
    Tx.store(slotWord(Cur, Pos), Val);
    Tx.store(metaWord(Cur), makeMeta(true, Count + 1));
    return true;
  }

  /// Looks up inside an open transaction.
  bool lookupTx(TxnContext &Tx, uint64_t Key, uint64_t *ValOut) {
    auto *Cur = reinterpret_cast<uint64_t *>(Tx.load(RootPtr));
    uint64_t Meta = Tx.load(metaWord(Cur));
    while (!isLeaf(Meta)) {
      unsigned Count = countOf(Meta);
      unsigned Idx = 0;
      while (Idx < Count && Key >= Tx.load(keyWord(Cur, Idx)))
        ++Idx;
      Cur = reinterpret_cast<uint64_t *>(Tx.load(slotWord(Cur, Idx)));
      Meta = Tx.load(metaWord(Cur));
    }
    unsigned Count = countOf(Meta);
    for (unsigned I = 0; I != Count; ++I)
      if (Tx.load(keyWord(Cur, I)) == Key) {
        if (ValOut)
          *ValOut = Tx.load(slotWord(Cur, I));
        return true;
      }
    return false;
  }

  /// Removes inside an open transaction; returns true if present.
  bool removeTx(TxnContext &Tx, uint64_t Key) {
    auto *Cur = reinterpret_cast<uint64_t *>(Tx.load(RootPtr));
    uint64_t Meta = Tx.load(metaWord(Cur));
    while (!isLeaf(Meta)) {
      unsigned Count = countOf(Meta);
      unsigned Idx = 0;
      while (Idx < Count && Key >= Tx.load(keyWord(Cur, Idx)))
        ++Idx;
      Cur = reinterpret_cast<uint64_t *>(Tx.load(slotWord(Cur, Idx)));
      Meta = Tx.load(metaWord(Cur));
    }
    unsigned Count = countOf(Meta);
    for (unsigned I = 0; I != Count; ++I) {
      CRAFTY_TX_BOUND(Order); // Count <= Order: one node's entries.
      if (Tx.load(keyWord(Cur, I)) != Key)
        continue;
      for (unsigned J = I; J + 1 < Count; ++J) {
        CRAFTY_TX_BOUND(Order);
        Tx.store(keyWord(Cur, J), Tx.load(keyWord(Cur, J + 1)));
        Tx.store(slotWord(Cur, J), Tx.load(slotWord(Cur, J + 1)));
      }
      Tx.store(metaWord(Cur), makeMeta(true, Count - 1));
      return true;
    }
    return false;
  }

  // Convenience single-transaction wrappers.
  bool insert(PtmBackend &B, unsigned Tid, uint64_t Key, uint64_t Val) {
    bool Ok = false;
    B.run(Tid, [&](TxnContext &Tx) { Ok = insertTx(Tx, Key, Val); });
    return Ok;
  }
  bool lookup(PtmBackend &B, unsigned Tid, uint64_t Key,
              uint64_t *ValOut = nullptr) {
    bool Ok = false;
    B.run(Tid, [&](TxnContext &Tx) { Ok = lookupTx(Tx, Key, ValOut); });
    return Ok;
  }
  bool remove(PtmBackend &B, unsigned Tid, uint64_t Key) {
    bool Ok = false;
    B.run(Tid, [&](TxnContext &Tx) { Ok = removeTx(Tx, Key); });
    return Ok;
  }

  /// Non-transactional structural audit over raw memory (single-threaded,
  /// post-run / post-recovery): checks ordering, range and value
  /// integrity via \p CheckValue; returns the key count, or sets \p Err.
  uint64_t auditCount(std::string &Err,
                      FunctionRef<bool(uint64_t Key, uint64_t Val)>
                          CheckValue = FunctionRef<bool(uint64_t,
                                                        uint64_t)>()) const {
    return walkCount(reinterpret_cast<const uint64_t *>(*RootPtr), 0, ~0ull,
                     Err, CheckValue);
  }

private:
  // Node layout (8-byte words):
  //   [0]            meta: (isLeaf << 32) | count
  //   [1 .. Order]   keys
  //   [Order+1 ..]   leaf: values[Order]; inner: children[Order+1]
  static constexpr size_t NodeWords = 1 + Order + (Order + 1);

  static uint64_t *metaWord(uint64_t *N) { return N; }
  static uint64_t *keyWord(uint64_t *N, unsigned I) { return N + 1 + I; }
  static uint64_t *slotWord(uint64_t *N, unsigned I) {
    return N + 1 + Order + I;
  }
  static bool isLeaf(uint64_t Meta) { return (Meta >> 32) != 0; }
  static unsigned countOf(uint64_t Meta) { return (unsigned)(Meta & ~0u); }
  static uint64_t makeMeta(bool Leaf, unsigned Count) {
    return ((uint64_t)(Leaf ? 1 : 0) << 32) | Count;
  }

  uint64_t *allocNode(TxnContext &Tx, bool Leaf) {
    auto *N = static_cast<uint64_t *>(Tx.alloc(NodeWords * 8));
    if (!N)
      fatalError("DurableBTree: allocator arena exhausted");
    Tx.store(metaWord(N), makeMeta(Leaf, 0));
    return N;
  }

  void splitChild(TxnContext &Tx, uint64_t *Parent, unsigned Idx) {
    auto *Child =
        reinterpret_cast<uint64_t *>(Tx.load(slotWord(Parent, Idx)));
    bool Leaf = isLeaf(Tx.load(metaWord(Child)));
    constexpr unsigned H = Order / 2;
    uint64_t *Right = allocNode(Tx, Leaf);
    uint64_t Separator;
    if (Leaf) {
      for (unsigned I = H; I != Order; ++I) {
        Tx.store(keyWord(Right, I - H), Tx.load(keyWord(Child, I)));
        Tx.store(slotWord(Right, I - H), Tx.load(slotWord(Child, I)));
      }
      Tx.store(metaWord(Right), makeMeta(true, Order - H));
      Tx.store(metaWord(Child), makeMeta(true, H));
      Separator = Tx.load(keyWord(Right, 0));
    } else {
      Separator = Tx.load(keyWord(Child, H));
      for (unsigned I = H + 1; I != Order; ++I) {
        Tx.store(keyWord(Right, I - H - 1), Tx.load(keyWord(Child, I)));
        Tx.store(slotWord(Right, I - H - 1), Tx.load(slotWord(Child, I)));
      }
      Tx.store(slotWord(Right, Order - H - 1),
               Tx.load(slotWord(Child, Order)));
      Tx.store(metaWord(Right), makeMeta(false, Order - H - 1));
      Tx.store(metaWord(Child), makeMeta(false, H));
    }
    uint64_t ParentMeta = Tx.load(metaWord(Parent));
    unsigned PCount = countOf(ParentMeta);
    for (unsigned I = PCount; I > Idx; --I) {
      CRAFTY_TX_BOUND(Order); // PCount < Order (parent is not full).
      Tx.store(keyWord(Parent, I), Tx.load(keyWord(Parent, I - 1)));
      Tx.store(slotWord(Parent, I + 1), Tx.load(slotWord(Parent, I)));
    }
    Tx.store(keyWord(Parent, Idx), Separator);
    Tx.store(slotWord(Parent, Idx + 1), reinterpret_cast<uint64_t>(Right));
    Tx.store(metaWord(Parent), makeMeta(false, PCount + 1));
  }

  uint64_t walkCount(const uint64_t *Node, uint64_t Lo, uint64_t Hi,
                     std::string &Err,
                     FunctionRef<bool(uint64_t, uint64_t)> CheckValue) const {
    uint64_t Meta = Node[0];
    unsigned Count = countOf(Meta);
    if (isLeaf(Meta)) {
      uint64_t Prev = Lo;
      for (unsigned I = 0; I != Count; ++I) {
        uint64_t K = Node[1 + I];
        if (K < Lo || K >= Hi || (I > 0 && K <= Prev)) {
          Err = "leaf key out of order or out of range";
          return 0;
        }
        Prev = K;
        if (CheckValue && !CheckValue(K, Node[1 + Order + I])) {
          Err = "leaf value fails the integrity check";
          return 0;
        }
      }
      return Count;
    }
    uint64_t Total = 0;
    uint64_t ChildLo = Lo;
    for (unsigned I = 0; I <= Count; ++I) {
      uint64_t ChildHi = I < Count ? Node[1 + I] : Hi;
      if (ChildHi < ChildLo) {
        Err = "inner separators out of order";
        return 0;
      }
      auto *Child = reinterpret_cast<const uint64_t *>(Node[1 + Order + I]);
      Total += walkCount(Child, ChildLo, ChildHi, Err, CheckValue);
      if (!Err.empty())
        return 0;
      ChildLo = ChildHi;
    }
    return Total;
  }

  uint64_t *RootPtr = nullptr;
};

} // namespace crafty

#endif // CRAFTY_PDS_DURABLEBTREE_H
