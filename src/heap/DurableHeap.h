//===- heap/DurableHeap.h - Page-managed durable heap ----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-consistent page-managed heap carved from a PMemPool, built for
/// objects too large to write inside one hardware transaction. Where the
/// volatile PMemAllocator (pmem/PMemAllocator.h) is paper-faithful -- its
/// metadata is rebuilt by the application after a crash -- this heap keeps
/// its metadata durable, following libgavran's progression: fixed 4 KiB
/// pages, a persistent free-space bitmap, a small write-ahead record for
/// in-flight extents, and a recovery pass that replays that WAL.
///
/// Reuse is *barrier-deferred*: pages and WAL slots freed by a committed
/// transaction stay unallocatable until the next persist barrier
/// (barrierReached). Recovery may roll back any sequence that has not
/// been covered by a barrier; if staging were allowed to clobber such
/// pages, rollback would resurrect an owning pointer to overwritten
/// data. Deferral keeps every roll-backable extent physically intact, so
/// any rollback suffix lands on a consistent heap.
///
/// The large-object pipeline decouples bulk data movement from the HTM
/// window, the publish-after-persist discipline of PMDK-style
/// transactional allocators:
///
///   1. alloc   -- a *small* Crafty transaction verifies-and-sets bitmap
///                 bits for a fresh extent, stamps per-page allocation
///                 epochs, and records a Staged WAL intent. The undo log
///                 covers all of it: if the transaction is rolled back at
///                 recovery, bitmap and WAL revert together.
///   2. stage   -- the value bytes are memcpy'd into the fresh pages and
///                 their cache lines are scheduled for writeback
///                 (persistImageWords) entirely outside HTM. The drain is
///                 deferred: the publishing transaction's HTM commit fence
///                 completes the writebacks (flush-without-drain, the same
///                 trick Crafty's Redo phase uses).
///   3. publish -- a tiny caller-owned Crafty transaction swings the
///                 owning pointer to the new extent, frees the old extent
///                 (freeExtentInTx) and closes the WAL record
///                 (closeWalInTx). One undo-logged transaction: the swing
///                 is atomic, and object size is independent of HTM write
///                 capacity.
///
/// A crash between (1) and (3) leaks nothing: recoverReclaim() scans the
/// WAL after log replay and returns any still-Staged extent to the bitmap.
/// Published extents are immutable until freed, and every free rewrites
/// the owning pointer transactionally, so readers that loaded the pointer
/// through their own transaction are aborted-and-re-executed rather than
/// shown a torn extent (see readExtent).
///
/// Each page carries the allocation epoch at which it was last handed
/// out -- the seam for online snapshot/backup: a backup at epoch E can
/// copy exactly the pages whose epoch moved past E.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_HEAP_DURABLEHEAP_H
#define CRAFTY_HEAP_DURABLEHEAP_H

#include "core/Ptm.h"
#include "pmem/PMemPool.h"
#include "support/Annotations.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace crafty {
namespace heap {

/// An extent the allocator has reserved and staged but not yet published.
/// Returned by DurableHeap::allocAndStage; consumed by a publish
/// transaction (store Ref into the owning pointer, then closeWalInTx) or
/// by abandon() when the operation is not going to publish.
struct HeapStaged {
  /// Packed HeapObjectRef (page+1 in the high word, byte length in the
  /// low word); 0 means the allocation failed.
  uint64_t Ref = 0;
  /// WAL slot holding the Staged intent for this extent.
  uint64_t WalSlot = 0;

  explicit operator bool() const { return Ref != 0; }
};

/// Crash-consistent page allocator + large-object store over a PMemPool
/// region. One instance per pool (the KV store creates one per shard);
/// transactional entry points follow the pool's usual rule that a given
/// ThreadId is driven by one thread at a time.
class DurableHeap {
public:
  /// Fixed page size, as in libgavran.
  static constexpr size_t PageBytes = 4096;
  /// Largest extent handed out, in pages. Bounds both the WAL record and
  /// the number of bitmap/epoch words one alloc transaction touches, so
  /// the metadata transaction stays far inside HTM write capacity.
  static constexpr size_t MaxExtentPages = 16;
  /// Largest object the heap stores (the KV layer's active value limit
  /// when the heap is enabled).
  static constexpr size_t MaxObjectBytes = PageBytes * MaxExtentPages;

  /// Packs page index + byte length into one word ((Page+1) << 32 | Len,
  /// so 0 is never a valid ref and a single transactional store swings an
  /// owning pointer).
  static uint64_t packRef(uint64_t Page, uint64_t Len) {
    return ((Page + 1) << 32) | Len;
  }
  static uint64_t refPage(uint64_t Ref) { return (Ref >> 32) - 1; }
  static uint64_t refLen(uint64_t Ref) { return Ref & 0xffffffffu; }
  /// Pages needed for \p Bytes (at least one: zero-length objects still
  /// occupy an extent so their ref stays non-zero).
  static size_t pagesFor(size_t Bytes) {
    return Bytes == 0 ? 1 : (Bytes + PageBytes - 1) / PageBytes;
  }

  /// Pool bytes a heap with \p NumPages pages and \p WalSlots WAL records
  /// carves (metadata + pages), for pool sizing.
  static size_t bytesFor(size_t NumPages, size_t WalSlots);

  /// Carves the heap's regions from \p Pool. With \p Attach false the
  /// metadata is formatted fresh (empty bitmap, free WAL, epoch 1); with
  /// Attach true the carve only recomputes pointers over an existing
  /// image, as KvShard does for every durable region on recovery.
  DurableHeap(PMemPool &Pool, size_t NumPages, size_t WalSlots, bool Attach);
  DurableHeap(const DurableHeap &) = delete;
  DurableHeap &operator=(const DurableHeap &) = delete;

  size_t numPages() const { return NumPages; }
  size_t walSlots() const { return WalSlots; }

  /// Steps 1+2 of the pipeline: reserves a fresh extent for \p Bytes in a
  /// small metadata transaction (bitmap verify-and-set + epoch stamp +
  /// Staged WAL record, all undo-logged), then copies the bytes into the
  /// extent and schedules their writeback *without* draining -- the
  /// caller's publish transaction commit fence is the drain. Callers that
  /// will not immediately publish under a fence-issuing backend should
  /// call stageDrain() themselves. Returns Ref==0 when \p Bytes exceeds
  /// MaxObjectBytes or no extent/WAL slot is free.
  CRAFTY_DRAIN_DEFERRED HeapStaged allocAndStage(PtmBackend &Backend,
                                                 unsigned Tid,
                                                 std::string_view Bytes);

  /// Completes any deferred staging writebacks immediately (used when the
  /// publishing backend's commit provides no fence, or before a clean
  /// shutdown).
  CRAFTY_DRAIN_API void stageDrain(unsigned Tid);

  /// Publish-transaction helper: frees the extent \p Ref (clears its
  /// bitmap bits). Call from the transaction that overwrites or deletes
  /// the owning pointer, so pointer and bitmap move atomically.
  CRAFTY_TX_BODY CRAFTY_TX_CAPACITY(2) void freeExtentInTx(TxnContext &Tx,
                                                           uint64_t Ref);

  /// Publish-transaction helper: closes the Staged WAL record once the
  /// owning pointer stores the new ref. After this commits, recovery will
  /// keep the extent.
  CRAFTY_TX_BODY CRAFTY_TX_CAPACITY(1) void closeWalInTx(TxnContext &Tx,
                                                         uint64_t WalSlot);

  /// Returns a staged-but-unpublished extent (one small transaction:
  /// bitmap bits cleared, WAL record freed). The pipeline's "abort" arm.
  void abandon(PtmBackend &Backend, unsigned Tid, const HeapStaged &S);

  /// Tells the heap a persist barrier has completed: every free committed
  /// before the barrier is now durable (recovery can no longer roll it
  /// back), so its pages and WAL slot become allocatable again. KvShard
  /// calls this from persistAck / persistAckEnd. Clearing is conservative
  /// in the racy direction -- a free whose transaction straddles the
  /// barrier merely stays deferred until the next one.
  void barrierReached();

  /// Copies the extent's bytes into \p Out. The copy itself is raw
  /// (extents are immutable once published and far larger than HTM read
  /// capacity); when called from a transaction body the caller must have
  /// loaded \p Ref through TxnContext so a concurrent free/republish of
  /// the owning pointer aborts and re-executes the body instead of
  /// exposing a torn extent. Returns false for an out-of-range ref.
  bool readExtent(uint64_t Ref, std::string &Out) const;

  /// Post-recovery, quiesced: scans the WAL and returns every Staged
  /// (allocated-but-unpublished) extent to the bitmap via persistDirect.
  /// Call after log replay (KvShard::recoverInPlace does). Returns the
  /// number of extents reclaimed.
  size_t recoverReclaim();

  /// Pages currently marked allocated in the bitmap (popcount); the
  /// leak-audit ground truth.
  uint64_t allocatedPages() const;
  /// WAL records currently in the Staged state (0 after recovery and
  /// after every quiesced pipeline).
  uint64_t stagedWalRecords() const;
  /// Allocation epoch stamped on \p Page (0 = never allocated).
  uint64_t pageEpoch(size_t Page) const;
  /// Next epoch the allocator will stamp.
  uint64_t currentEpoch() const;

private:
  /// WAL record layout: [State, PageStart, PageCount, pad].
  static constexpr size_t WalRecordWords = 4;
  static constexpr uint64_t WalFree = 0;
  static constexpr uint64_t WalStaged = 1;

  /// The metadata transaction of allocAndStage. Verifies the candidate
  /// extent's bitmap bits are still clear and the WAL slot still free
  /// (raw pre-scans race with other threads; the in-transaction loads
  /// make the claim atomic), sets the bits, stamps epochs, and fills the
  /// WAL record. Writes at most 2 bitmap words + 1 epoch counter +
  /// MaxExtentPages epoch stamps + 3 WAL words = 22.
  CRAFTY_TX_BODY CRAFTY_TX_CAPACITY(22) void
  allocInTx(TxnContext &Tx, uint64_t PageStart, uint64_t Pages,
            uint64_t WalSlot, bool &Ok);

  /// Raw next-fit scan for a run of \p Pages clear bits. Returns false
  /// when no run is found.
  bool findRun(uint64_t Pages, uint64_t &PageStart);
  /// Raw scan for a WAL slot in the Free state.
  bool findWalSlot(uint64_t &Slot);

  uint64_t *walRecord(uint64_t Slot) const {
    return Wal + Slot * WalRecordWords;
  }
  uint8_t *pageData(uint64_t Page) const { return Pages + Page * PageBytes; }

  PMemPool &Pool;
  size_t NumPages;
  size_t WalSlots;
  size_t BitmapWords;

  /// Free-space bitmap: bit set = page allocated. Durable; mutated only
  /// inside transactions (or persistDirect during format/recovery).
  CRAFTY_PMEM uint64_t *Bitmap = nullptr;
  /// Per-page allocation epoch (snapshot/backup seam). Durable.
  CRAFTY_PMEM uint64_t *PageEpochs = nullptr;
  /// Monotonic allocation epoch counter. Durable.
  CRAFTY_PMEM uint64_t *EpochCounter = nullptr;
  /// WAL records for in-flight (Staged) extents. Durable.
  CRAFTY_PMEM uint64_t *Wal = nullptr;
  /// The page payload region. Durable; written raw during staging.
  CRAFTY_PMEM uint8_t *Pages = nullptr;

  /// Volatile next-fit cursor (page index); purely a scan heuristic, so
  /// relaxed atomics suffice and it resets to 0 on restart.
  std::atomic<uint64_t> NextFitCursor{0};

  /// Barrier-deferred reuse masks (volatile; see the file comment). A set
  /// bit / nonzero slot was freed after the last persist barrier and must
  /// not be reallocated yet. fetch_or keeps transaction-body re-execution
  /// idempotent; barrierReached() zeroes them. Sized in the constructor.
  std::unique_ptr<std::atomic<uint64_t>[]> DeferredPages;
  std::unique_ptr<std::atomic<uint8_t>[]> DeferredWal;
};

} // namespace heap
} // namespace crafty

#endif // CRAFTY_HEAP_DURABLEHEAP_H
