//===- heap/DurableHeap.cpp - Page-managed durable heap -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "heap/DurableHeap.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace crafty {
namespace heap {

namespace {
/// Bitmap mask for the pages of word \p W covered by the extent
/// [PageStart, PageStart+Pages).
uint64_t wordMask(uint64_t PageStart, uint64_t Pages, uint64_t W) {
  uint64_t First = PageStart, Last = PageStart + Pages - 1;
  uint64_t Lo = W == First >> 6 ? (First & 63) : 0;
  uint64_t Hi = W == Last >> 6 ? (Last & 63) : 63;
  uint64_t High = Hi == 63 ? ~0ull : ((1ull << (Hi + 1)) - 1);
  return High & ~((1ull << Lo) - 1);
}
} // namespace

size_t DurableHeap::bytesFor(size_t NumPages, size_t WalSlots) {
  auto Align = [](size_t B) { return (B + 63) & ~size_t(63); };
  size_t BitmapWords = (NumPages + 63) / 64;
  return Align(BitmapWords * 8) + Align(NumPages * 8) + 64 /* epoch ctr */ +
         Align(WalSlots * WalRecordWords * 8) + NumPages * PageBytes +
         PageBytes /* page-alignment slack */;
}

DurableHeap::DurableHeap(PMemPool &P, size_t NPages, size_t NWalSlots,
                         bool Attach)
    : Pool(P), NumPages(NPages), WalSlots(NWalSlots),
      BitmapWords((NPages + 63) / 64) {
  // Carve order is part of the durable layout: openFresh and openAttached
  // must produce identical offsets, so both run exactly this sequence.
  DeferredPages = std::make_unique<std::atomic<uint64_t>[]>(BitmapWords);
  DeferredWal = std::make_unique<std::atomic<uint8_t>[]>(WalSlots);
  for (size_t W = 0; W < BitmapWords; ++W)
    DeferredPages[W].store(0, std::memory_order_relaxed);
  for (size_t S = 0; S < WalSlots; ++S)
    DeferredWal[S].store(0, std::memory_order_relaxed);
  Bitmap = static_cast<uint64_t *>(Pool.carve(BitmapWords * 8));
  PageEpochs = static_cast<uint64_t *>(Pool.carve(NumPages * 8));
  EpochCounter = static_cast<uint64_t *>(Pool.carve(sizeof(uint64_t)));
  Wal = static_cast<uint64_t *>(Pool.carve(WalSlots * WalRecordWords * 8));
  Pages = static_cast<uint8_t *>(Pool.carve(NumPages * PageBytes, PageBytes));
  if (!Bitmap || !PageEpochs || !EpochCounter || !Wal || !Pages) {
    std::fprintf(stderr, "DurableHeap: pool too small for %zu pages\n",
                 NumPages);
    std::abort();
  }
  if (Attach)
    return;
  // Fresh format: empty bitmap, zero epochs, free WAL, epoch counter 1
  // (so epoch 0 unambiguously means "never allocated").
  static const uint8_t Zeros[4096] = {};
  auto ZeroDirect = [&](void *Addr, size_t Len) {
    auto *Dst = static_cast<uint8_t *>(Addr);
    while (Len) {
      size_t Chunk = Len < sizeof(Zeros) ? Len : sizeof(Zeros);
      Pool.persistDirect(Dst, Zeros, Chunk);
      Dst += Chunk;
      Len -= Chunk;
    }
  };
  ZeroDirect(Bitmap, BitmapWords * 8);
  ZeroDirect(PageEpochs, NumPages * 8);
  ZeroDirect(Wal, WalSlots * WalRecordWords * 8);
  uint64_t One = 1;
  Pool.persistDirect(EpochCounter, &One, sizeof(One));
}

bool DurableHeap::findRun(uint64_t Need, uint64_t &PageStart) {
  // Next-fit over the raw bitmap. The scan is only a heuristic: another
  // thread can win the pages between this scan and our transaction, which
  // allocInTx detects (verify-and-set) so the caller rescans.
  uint64_t Start = NextFitCursor.load(std::memory_order_relaxed) % NumPages;
  auto Scan = [&](uint64_t From, uint64_t To) {
    uint64_t Run = 0, RunStart = 0;
    for (uint64_t Pg = From; Pg < To; ++Pg) {
      // Occupied = allocated in the bitmap OR freed since the last
      // persist barrier (deferred reuse; see the file comment).
      uint64_t Occ = Bitmap[Pg >> 6] |
                     DeferredPages[Pg >> 6].load(std::memory_order_relaxed);
      if ((Occ >> (Pg & 63)) & 1) {
        Run = 0;
        continue;
      }
      if (Run == 0)
        RunStart = Pg;
      if (++Run == Need) {
        PageStart = RunStart;
        return true;
      }
    }
    return false;
  };
  if (!Scan(Start, NumPages) && !Scan(0, NumPages))
    return false;
  NextFitCursor.store(PageStart + Need, std::memory_order_relaxed);
  return true;
}

bool DurableHeap::findWalSlot(uint64_t &Slot) {
  for (uint64_t S = 0; S < WalSlots; ++S)
    if (walRecord(S)[0] == WalFree &&
        !DeferredWal[S].load(std::memory_order_relaxed)) {
      Slot = S;
      return true;
    }
  return false;
}

void DurableHeap::allocInTx(TxnContext &Tx, uint64_t PageStart, uint64_t Need,
                            uint64_t WalSlot, bool &Ok) {
  Ok = false;
  uint64_t *Rec = walRecord(WalSlot);
  if (Tx.load(&Rec[0]) != WalFree)
    return; // Slot claimed since the raw scan; caller rescans.
  uint64_t W0 = PageStart >> 6, W1 = (PageStart + Need - 1) >> 6;
  for (uint64_t W = W0; W <= W1; ++W) {
    // MaxExtentPages <= 64, so an extent's bits span at most 2 words.
    CRAFTY_TX_BOUND(2);
    uint64_t Mask = wordMask(PageStart, Need, W);
    uint64_t Cur = Tx.load(&Bitmap[W]);
    if (Cur & Mask)
      return; // Pages claimed since the raw scan; caller rescans.
    Tx.store(&Bitmap[W], Cur | Mask);
  }
  uint64_t Epoch = Tx.load(EpochCounter);
  Tx.store(EpochCounter, Epoch + 1);
  for (uint64_t Pg = PageStart; Pg < PageStart + Need; ++Pg) {
    // One epoch stamp per extent page.
    CRAFTY_TX_BOUND(MaxExtentPages);
    Tx.store(&PageEpochs[Pg], Epoch);
  }
  Tx.store(&Rec[1], PageStart);
  Tx.store(&Rec[2], Need);
  Tx.store(&Rec[0], WalStaged);
  Ok = true;
}

HeapStaged DurableHeap::allocAndStage(PtmBackend &Backend, unsigned Tid,
                                      std::string_view Bytes) {
  if (Bytes.size() > MaxObjectBytes)
    return {};
  uint64_t Need = pagesFor(Bytes.size());
  for (unsigned Attempt = 0; Attempt < 32; ++Attempt) {
    uint64_t PageStart = 0, Slot = 0;
    if (!findRun(Need, PageStart) || !findWalSlot(Slot))
      return {}; // Genuinely out of pages / WAL slots.
    bool Ok = false;
    Backend.run(Tid, [&](TxnContext &Tx) {
      allocInTx(Tx, PageStart, Need, Slot, Ok);
    });
    if (!Ok)
      continue; // Lost the claim race; rescan with fresh state.
    // Stage: copy into the volatile view and schedule the image words.
    // Raw stores are safe here -- the extent is invisible to every other
    // thread until the publish transaction stores its ref.
    uint8_t *Dst = pageData(PageStart);
    if (!Bytes.empty())
      std::memcpy(Dst, Bytes.data(), Bytes.size());
    size_t Tail = Bytes.size() % 8;
    if (Tail)
      std::memset(Dst + Bytes.size(), 0, 8 - Tail);
    size_t Words = (Bytes.size() + 7) / 8;
    if (Words) {
      std::vector<PMemWordWrite> Writes(Words);
      auto *Src = reinterpret_cast<uint64_t *>(Dst);
      for (size_t I = 0; I < Words; ++I)
        Writes[I] = {&Src[I], Src[I]};
      Pool.persistImageWords(Tid, Writes.data(), Words);
      // No drain: the publish transaction's commit fence completes these
      // writebacks (flush-without-drain, as in Crafty's Redo phase).
    }
    return {packRef(PageStart, Bytes.size()), Slot};
  }
  return {};
}

void DurableHeap::stageDrain(unsigned Tid) { Pool.drain(Tid); }

void DurableHeap::freeExtentInTx(TxnContext &Tx, uint64_t Ref) {
  uint64_t PageStart = refPage(Ref);
  uint64_t Need = pagesFor(refLen(Ref));
  uint64_t W0 = PageStart >> 6, W1 = (PageStart + Need - 1) >> 6;
  for (uint64_t W = W0; W <= W1; ++W) {
    // MaxExtentPages <= 64, so an extent's bits span at most 2 words.
    CRAFTY_TX_BOUND(2);
    uint64_t Mask = wordMask(PageStart, Need, W);
    Tx.store(&Bitmap[W], Tx.load(&Bitmap[W]) & ~Mask);
    // Defer reuse until the free is barrier-durable: if recovery rolls
    // this transaction back, the resurrected extent must still hold its
    // bytes. fetch_or is idempotent across body re-execution.
    DeferredPages[W].fetch_or(Mask, std::memory_order_relaxed);
  }
}

void DurableHeap::closeWalInTx(TxnContext &Tx, uint64_t WalSlot) {
  Tx.store(&walRecord(WalSlot)[0], WalFree);
  // Same deferral as pages: a rolled-back close must not find its slot
  // re-staged by a different extent.
  DeferredWal[WalSlot].store(1, std::memory_order_relaxed);
}

void DurableHeap::barrierReached() {
  for (size_t W = 0; W < BitmapWords; ++W)
    DeferredPages[W].store(0, std::memory_order_relaxed);
  for (size_t S = 0; S < WalSlots; ++S)
    DeferredWal[S].store(0, std::memory_order_relaxed);
}

void DurableHeap::abandon(PtmBackend &Backend, unsigned Tid,
                          const HeapStaged &S) {
  if (!S)
    return;
  Backend.run(Tid, [&](TxnContext &Tx) {
    freeExtentInTx(Tx, S.Ref);
    closeWalInTx(Tx, S.WalSlot);
  });
}

bool DurableHeap::readExtent(uint64_t Ref, std::string &Out) const {
  if (Ref == 0)
    return false;
  uint64_t Page = refPage(Ref), Len = refLen(Ref);
  if (Len > MaxObjectBytes || Page >= NumPages ||
      Page + pagesFor(Len) > NumPages)
    return false;
  Out.assign(reinterpret_cast<const char *>(pageData(Page)), Len);
  return true;
}

size_t DurableHeap::recoverReclaim() {
  size_t Reclaimed = 0;
  for (uint64_t S = 0; S < WalSlots; ++S) {
    uint64_t *Rec = walRecord(S);
    if (Rec[0] != WalStaged)
      continue;
    uint64_t PageStart = Rec[1], Need = Rec[2];
    if (Need >= 1 && Need <= MaxExtentPages && PageStart < NumPages &&
        PageStart + Need <= NumPages) {
      uint64_t W0 = PageStart >> 6, W1 = (PageStart + Need - 1) >> 6;
      for (uint64_t W = W0; W <= W1; ++W) {
        uint64_t Val = Bitmap[W] & ~wordMask(PageStart, Need, W);
        Pool.persistDirect(&Bitmap[W], &Val, sizeof(Val));
      }
      ++Reclaimed;
    }
    uint64_t Free = WalFree;
    Pool.persistDirect(&Rec[0], &Free, sizeof(Free));
  }
  // Post-recovery state is by definition barrier-durable (there is
  // nothing left to roll back), so all deferrals lift.
  barrierReached();
  return Reclaimed;
}

uint64_t DurableHeap::allocatedPages() const {
  uint64_t N = 0;
  for (size_t W = 0; W < BitmapWords; ++W)
    N += static_cast<uint64_t>(__builtin_popcountll(Bitmap[W]));
  return N;
}

uint64_t DurableHeap::stagedWalRecords() const {
  uint64_t N = 0;
  for (uint64_t S = 0; S < WalSlots; ++S)
    N += walRecord(S)[0] == WalStaged;
  return N;
}

uint64_t DurableHeap::pageEpoch(size_t Page) const {
  return Page < NumPages ? PageEpochs[Page] : 0;
}

uint64_t DurableHeap::currentEpoch() const { return *EpochCounter; }

} // namespace heap
} // namespace crafty
