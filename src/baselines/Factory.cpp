//===- baselines/Factory.cpp - Backend factory ----------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/Factory.h"

#include "baselines/DudeTm.h"
#include "baselines/NonDurable.h"
#include "baselines/NvHtm.h"
#include "core/Crafty.h"

using namespace crafty;

const char *crafty::systemKindName(SystemKind Kind) {
  switch (Kind) {
  case SystemKind::NonDurable:
    return "Non-durable";
  case SystemKind::DudeTm:
    return "DudeTM";
  case SystemKind::NvHtm:
    return "NV-HTM";
  case SystemKind::Crafty:
    return "Crafty";
  case SystemKind::CraftyNoValidate:
    return "Crafty-NoValidate";
  case SystemKind::CraftyNoRedo:
    return "Crafty-NoRedo";
  }
  CRAFTY_UNREACHABLE("bad system kind");
}

std::unique_ptr<PtmBackend>
crafty::createBackend(SystemKind Kind, PMemPool &Pool, HtmRuntime &Htm,
                      const BackendOptions &Options) {
  switch (Kind) {
  case SystemKind::NonDurable:
    return std::make_unique<NonDurableBackend>(
        Pool, Htm, Options.NumThreads, Options.ArenaBytesPerThread,
        Options.SglAttemptThreshold);
  case SystemKind::DudeTm:
    return std::make_unique<DudeTmBackend>(
        Pool, Htm, Options.NumThreads, Options.ArenaBytesPerThread,
        Options.SglAttemptThreshold, Options.DudeTmLogBytesTotal);
  case SystemKind::NvHtm:
    return std::make_unique<NvHtmBackend>(
        Pool, Htm, Options.NumThreads, Options.ArenaBytesPerThread,
        Options.NvHtmLogBytesPerThread, Options.SglAttemptThreshold);
  case SystemKind::Crafty:
  case SystemKind::CraftyNoValidate:
  case SystemKind::CraftyNoRedo: {
    CraftyConfig C;
    C.NumThreads = Options.NumThreads;
    C.LogEntriesPerThread = Options.LogEntriesPerThread;
    C.ArenaBytesPerThread = Options.ArenaBytesPerThread;
    C.SglAttemptThreshold = Options.SglAttemptThreshold;
    C.DisableValidate = Kind == SystemKind::CraftyNoValidate;
    C.DisableRedo = Kind == SystemKind::CraftyNoRedo;
    C.CollectPhaseTimings = Options.CollectPhaseTimings;
    C.EnablePersistCheck = Options.EnablePersistCheck;
    C.EnableTxRaceCheck = Options.EnableTxRaceCheck;
    return std::make_unique<CraftyRuntime>(Pool, Htm, C);
  }
  }
  CRAFTY_UNREACHABLE("bad system kind");
}
