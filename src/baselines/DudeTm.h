//===- baselines/DudeTm.h - DudeTM baseline --------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of DudeTM (Liu et al., ASPLOS 2017) as described in
/// the paper's Section 2.3. Transactions execute in hardware against the
/// DRAM shadow; each writing transaction obtains its timestamp by
/// *incrementing a global counter inside the hardware transaction*, which
/// makes every pair of writing transactions conflict -- the property that
/// renders DudeTM "effectively incompatible with commodity HTM" and is
/// deliberately reproduced here. Durability is fully decoupled: a
/// background thread persists the redo logs and applies them to the
/// persistent heap in (dense) timestamp order.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_BASELINES_DUDETM_H
#define CRAFTY_BASELINES_DUDETM_H

#include "baselines/BaselineCommon.h"
#include "baselines/NvHtmRecovery.h"
#include "baselines/RedoPipeline.h"

namespace crafty {

class DudeTmBackend final : public BaselineBackend {
public:
  DudeTmBackend(PMemPool &Pool, HtmRuntime &Htm, unsigned NumThreads,
                size_t ArenaBytesPerThread = 0,
                unsigned SglAttemptThreshold = 10,
                size_t LogBytesTotal = 16 << 20);
  ~DudeTmBackend() override;

  const char *name() const override { return "DudeTM"; }
  void run(unsigned ThreadId, TxnBody Body) override;
  void quiesce() override { Pipeline.quiesce(); }

  /// Offset of the persistent layout header within the pool; pass to
  /// replayNvHtmPool / replayNvHtmImage (DudeTM's persist stage writes
  /// the same record format, in dense timestamp order).
  size_t layoutOffset() const { return LayoutOff; }

private:
  void postBody(unsigned Tid, HtmTx *T, bool HasWrites) override;
  static void persistRecord(void *Ctx, const RedoTxnRecord &R);

  alignas(CacheLineBytes) uint64_t GlobalCounter = 0;
  std::unique_ptr<uint64_t[]> CurTs; // Per-thread, volatile.
  uint64_t *LogRegion = nullptr;     // Persistent redo log (pipeline-owned).
  size_t LogWords = 0;
  size_t LogCursor = 0;
  size_t LayoutOff = 0;
  uint32_t LogPersistThreadId = 0;
  RedoPipeline Pipeline;
};

} // namespace crafty

#endif // CRAFTY_BASELINES_DUDETM_H
