//===- baselines/Factory.h - Backend factory -------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates any of the six evaluated configurations (paper Section 7.1):
/// Non-durable, DudeTM, NV-HTM, Crafty, Crafty-NoValidate, Crafty-NoRedo.
/// The harness, benches and tests construct systems only through this
/// factory so every experiment runs each configuration identically.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_BASELINES_FACTORY_H
#define CRAFTY_BASELINES_FACTORY_H

#include "core/Ptm.h"
#include "htm/Htm.h"
#include "pmem/PMemPool.h"

#include <array>
#include <memory>

namespace crafty {

/// The evaluated persistent-transaction systems.
enum class SystemKind : uint8_t {
  NonDurable,
  DudeTm,
  NvHtm,
  Crafty,
  CraftyNoValidate,
  CraftyNoRedo,
};

inline constexpr std::array<SystemKind, 6> AllSystems = {
    SystemKind::NonDurable,     SystemKind::DudeTm,
    SystemKind::NvHtm,          SystemKind::Crafty,
    SystemKind::CraftyNoValidate, SystemKind::CraftyNoRedo,
};

const char *systemKindName(SystemKind Kind);

/// Options common to all backends.
struct BackendOptions {
  unsigned NumThreads = 1;
  size_t ArenaBytesPerThread = 0;
  /// Crafty: per-thread circular undo-log entries (power of two).
  size_t LogEntriesPerThread = 1 << 14;
  /// NV-HTM: per-thread persistent redo-log bytes.
  size_t NvHtmLogBytesPerThread = 8 << 20;
  /// DudeTM: total persistent redo-log bytes (single pipeline writer).
  size_t DudeTmLogBytesTotal = 16 << 20;
  unsigned SglAttemptThreshold = 10;
  /// Crafty: collect per-phase wall-clock times into PtmStats.
  bool CollectPhaseTimings = false;
  /// Crafty: attach the PersistCheck persist-ordering checker.
  bool EnablePersistCheck = false;
  /// Crafty: attach the TxRaceCheck race/isolation checker.
  bool EnableTxRaceCheck = false;
};

/// Creates a backend of the requested kind over \p Pool and \p Htm (both
/// must outlive the backend and be freshly constructed per experiment).
std::unique_ptr<PtmBackend> createBackend(SystemKind Kind, PMemPool &Pool,
                                          HtmRuntime &Htm,
                                          const BackendOptions &Options);

} // namespace crafty

#endif // CRAFTY_BASELINES_FACTORY_H
