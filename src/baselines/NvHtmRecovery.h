//===- baselines/NvHtmRecovery.h - NV-HTM redo-replay recovery -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash recovery for the NV-HTM baseline: roll the persistent heap
/// *forward* by replaying COMMIT-marked redo-log records in timestamp
/// order. The commit fence guarantees that if a COMMIT marker exists for
/// timestamp T, markers exist for every earlier timestamp (paper Section
/// 2.3), so the marked records always form a replayable prefix.
///
/// NV-HTM's log layout is located through a small persistent header the
/// backend writes at construction. Like the Crafty recovery observer,
/// replay works on the live pool after PMemPool::crash() or on a
/// detached image (addresses translate through the recorded mapping
/// base). Caveat: run NV-HTM crash tests with spontaneous eviction
/// disabled -- the DRAM working snapshot is a separate physical copy in
/// the real system and must not leak into the NVM image.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_BASELINES_NVHTMRECOVERY_H
#define CRAFTY_BASELINES_NVHTMRECOVERY_H

#include "pmem/PMemPool.h"

#include <cstdint>
#include <vector>

namespace crafty {

/// Persistent header locating the NV-HTM redo logs in a pool.
struct NvHtmLayout {
  static constexpr uint64_t Magic = 0x4e56'48544d'00'01ull; // "NVHTM" v1.
  uint64_t MagicWord = 0;
  uint32_t NumThreads = 0;
  uint32_t Reserved = 0;
  uint64_t LogWordsPerThread = 0;
  uint64_t LogsOffset = 0; // From the pool base.
  uint64_t MappedBase = 0;
};

/// Log record encoding (per thread, sequential; no wraparound -- the
/// backend reports a fatal error when a log fills, as truncation requires
/// the checkpointer metadata this reproduction does not model):
///   [0]          header: RecordMagic | number of writes
///   [1 .. 2n]    ⟨virtual address, value⟩ pairs
///   [2n+1]       timestamp (written and persisted with the entries)
///   [2n+2]       COMMIT marker: timestamp | MarkerBit (persisted after
///                the commit fence)
inline constexpr uint64_t NvHtmRecordMagic = 0x4e56'5245'0000'0000ull;
inline constexpr uint64_t NvHtmRecordMagicMask = 0xffff'ffff'0000'0000ull;
inline constexpr uint64_t NvHtmMarkerBit = 1ull << 63;

/// Summary of a replay run.
struct NvHtmRecoveryReport {
  bool HeaderValid = false;
  size_t RecordsFound = 0;   // Complete, COMMIT-marked records.
  size_t RecordsReplayed = 0;
  size_t TailRecords = 0;    // Unmarked tails discarded.
  uint64_t WordsApplied = 0;
};

/// Replays the marked records of \p Base (a pool image of \p Bytes whose
/// layout header sits at \p LayoutOffset) onto the image itself.
NvHtmRecoveryReport replayNvHtmImage(uint8_t *Base, size_t Bytes,
                                     size_t LayoutOffset);

/// Replay in place on a crashed pool, persisting every applied word.
NvHtmRecoveryReport replayNvHtmPool(PMemPool &Pool, size_t LayoutOffset);

} // namespace crafty

#endif // CRAFTY_BASELINES_NVHTMRECOVERY_H
