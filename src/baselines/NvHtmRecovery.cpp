//===- baselines/NvHtmRecovery.cpp - NV-HTM redo-replay recovery ----------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/NvHtmRecovery.h"

#include "support/CacheLine.h"
#include "support/FunctionRef.h"

#include <algorithm>
#include <cstring>

using namespace crafty;

namespace {

struct ScannedRecord {
  uint64_t Ts = 0;
  const uint64_t *Pairs = nullptr;
  uint32_t NumWrites = 0;
};

/// Scans one thread's log. Appends complete records to \p Out and lowers
/// \p StopTs to the first incomplete (unmarked) record's timestamp: the
/// commit fence guarantees every *written* marker has a smaller timestamp
/// than any unmarked record, but markers are flushed without draining, so
/// the image can lack marker S while holding a later marker T -- records
/// at or above an unmarked tail's timestamp must not replay.
void scanThreadLog(const uint64_t *Log, uint64_t LogWords,
                   std::vector<ScannedRecord> &Out, uint64_t &StopTs) {
  uint64_t Cursor = 0;
  while (Cursor + 3 <= LogWords) {
    uint64_t Header = Log[Cursor];
    if ((Header & NvHtmRecordMagicMask) != NvHtmRecordMagic)
      return; // End of this thread's records (or an unpersisted header).
    uint64_t NumWrites = Header & ~NvHtmRecordMagicMask;
    if (Cursor + 2 * NumWrites + 3 > LogWords)
      return; // Corrupt length; treat as tail.
    uint64_t Ts = Log[Cursor + 2 * NumWrites + 1];
    uint64_t Marker = Log[Cursor + 2 * NumWrites + 2];
    if (Marker != (Ts | NvHtmMarkerBit)) {
      // Unmarked tail: its entries and timestamp are persisted (they are
      // drained before the fence), but the transaction never completed.
      StopTs = std::min(StopTs, Ts);
      return;
    }
    ScannedRecord R;
    R.Ts = Ts;
    R.Pairs = Log + Cursor + 1;
    R.NumWrites = (uint32_t)NumWrites;
    Out.push_back(R);
    Cursor += 2 * NumWrites + 3;
  }
}

} // namespace

namespace {

NvHtmRecoveryReport
replayWith(uint8_t *Base, size_t Bytes, size_t LayoutOffset,
           FunctionRef<void(uint64_t *Addr, uint64_t Val)> WriteWord) {
  NvHtmRecoveryReport Rep;
  if (LayoutOffset + sizeof(NvHtmLayout) > Bytes)
    return Rep;
  NvHtmLayout Layout;
  std::memcpy(&Layout, Base + LayoutOffset, sizeof(Layout));
  if (Layout.MagicWord != NvHtmLayout::Magic || Layout.NumThreads == 0)
    return Rep;
  size_t LogsEnd = Layout.LogsOffset + (size_t)Layout.NumThreads *
                                           Layout.LogWordsPerThread * 8;
  if (LogsEnd > Bytes)
    return Rep;
  Rep.HeaderValid = true;

  std::vector<ScannedRecord> Records;
  uint64_t StopTs = ~0ull;
  unsigned Tails = 0;
  for (unsigned T = 0; T != Layout.NumThreads; ++T) {
    uint64_t PrevStop = StopTs;
    const auto *Log = reinterpret_cast<const uint64_t *>(
        Base + Layout.LogsOffset + (size_t)T * Layout.LogWordsPerThread * 8);
    scanThreadLog(Log, Layout.LogWordsPerThread, Records, StopTs);
    if (StopTs != PrevStop)
      ++Tails;
  }
  Rep.RecordsFound = Records.size();
  Rep.TailRecords = Tails;

  std::sort(Records.begin(), Records.end(),
            [](const ScannedRecord &A, const ScannedRecord &B) {
              return A.Ts < B.Ts;
            });
  for (const ScannedRecord &R : Records) {
    if (R.Ts >= StopTs)
      break; // An earlier transaction's marker may be missing.
    for (uint32_t I = 0; I != R.NumWrites; ++I) {
      uint64_t Addr = R.Pairs[2 * I];
      uint64_t Val = R.Pairs[2 * I + 1];
      uint64_t Off = Addr - Layout.MappedBase;
      if (Off >= Bytes || (Off & 7) != 0)
        continue; // Tolerate corruption.
      WriteWord(reinterpret_cast<uint64_t *>(Base + Off), Val);
      ++Rep.WordsApplied;
    }
    ++Rep.RecordsReplayed;
  }
  return Rep;
}

} // namespace

NvHtmRecoveryReport crafty::replayNvHtmImage(uint8_t *Base, size_t Bytes,
                                             size_t LayoutOffset) {
  return replayWith(Base, Bytes, LayoutOffset,
                    [](uint64_t *Addr, uint64_t Val) { *Addr = Val; });
}

NvHtmRecoveryReport crafty::replayNvHtmPool(PMemPool &Pool,
                                            size_t LayoutOffset) {
  return replayWith(Pool.base(), Pool.size(), LayoutOffset,
                    [&Pool](uint64_t *Addr, uint64_t Val) {
                      Pool.persistDirect(Addr, &Val, sizeof(Val));
                    });
}
