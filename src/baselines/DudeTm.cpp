//===- baselines/DudeTm.cpp - DudeTM baseline -----------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/DudeTm.h"

using namespace crafty;

DudeTmBackend::DudeTmBackend(PMemPool &Pool, HtmRuntime &Htm,
                             unsigned NumThreads, size_t ArenaBytesPerThread,
                             unsigned SglAttemptThreshold,
                             size_t LogBytesTotal)
    : BaselineBackend(Pool, Htm, NumThreads, ArenaBytesPerThread,
                      SglAttemptThreshold),
      Pipeline(Pool, NumThreads, PipelineOrder::Dense,
               /*PersistThreadId=*/Pool.config().MaxThreads - 2) {
  CurTs = std::make_unique<uint64_t[]>(NumThreads);
  // The persist stage's redo log: one region, written only by the
  // pipeline thread, in dense timestamp order; the same record format
  // as NV-HTM so one replayer recovers both (baselines/NvHtmRecovery.h).
  auto *LayoutMem =
      static_cast<NvHtmLayout *>(Pool.carve(sizeof(NvHtmLayout)));
  LogWords = LogBytesTotal / 8;
  LogRegion = static_cast<uint64_t *>(Pool.carve(LogBytesTotal));
  NvHtmLayout Layout;
  Layout.MagicWord = NvHtmLayout::Magic;
  Layout.NumThreads = 1; // Single log, written by the pipeline.
  Layout.LogWordsPerThread = LogWords;
  Layout.LogsOffset = reinterpret_cast<uint8_t *>(LogRegion) - Pool.base();
  Layout.MappedBase = reinterpret_cast<uint64_t>(Pool.base());
  Pool.persistDirect(LayoutMem, &Layout, sizeof(Layout));
  LayoutOff = reinterpret_cast<uint8_t *>(LayoutMem) - Pool.base();
  LogPersistThreadId = Pool.config().MaxThreads - 2;
  Pipeline.setRecordSink(&DudeTmBackend::persistRecord, this);
  Pipeline.start();
}

void DudeTmBackend::persistRecord(void *Ctx, const RedoTxnRecord &R) {
  // DudeTM's persist stage: write the record and its COMMIT marker to
  // the persistent log and drain before the writeback stage applies it.
  auto *Self = static_cast<DudeTmBackend *>(Ctx);
  size_t Needed = 2 * R.Writes.size() + 3;
  if (Self->LogCursor + Needed > Self->LogWords)
    fatalError("DudeTM redo log exhausted; enlarge LogBytesTotal "
               "(log truncation needs writeback metadata this "
               "reproduction does not model)");
  uint64_t *Out = Self->LogRegion + Self->LogCursor;
  uint64_t *Start = Out;
  // Log slots are written once from their zeroed state (the log never
  // wraps), so each store's old value is 0.
  Out[0] = NvHtmRecordMagic | (uint64_t)R.Writes.size();
  Self->Pool.onCommittedStore(&Out[0], 0, Out[0]);
  Out += 1;
  for (const RedoEntry &E : R.Writes) {
    Out[0] = reinterpret_cast<uint64_t>(E.Addr);
    Out[1] = E.Val;
    Self->Pool.onCommittedStore(&Out[0], 0, Out[0]);
    Self->Pool.onCommittedStore(&Out[1], 0, Out[1]);
    Out += 2;
  }
  Out[0] = R.Ts;
  Out[1] = R.Ts | NvHtmMarkerBit;
  Self->Pool.onCommittedStore(&Out[0], 0, Out[0]);
  Self->Pool.onCommittedStore(&Out[1], 0, Out[1]);
  Self->LogCursor += Needed;
  Self->Pool.clwbRange(Self->LogPersistThreadId, Start, Needed * 8);
  Self->Pool.drain(Self->LogPersistThreadId);
}

DudeTmBackend::~DudeTmBackend() { Pipeline.stop(); }

void DudeTmBackend::postBody(unsigned Tid, HtmTx *T, bool HasWrites) {
  if (!HasWrites)
    return;
  // The DudeTM timestamp: increment a global counter inside the hardware
  // transaction. Every pair of writing transactions now conflicts on this
  // line, serializing them through aborts.
  if (T) {
    uint64_t Ts = T->load(&GlobalCounter) + 1;
    T->store(&GlobalCounter, Ts);
    CurTs[Tid] = Ts;
    return;
  }
  // SGL path: transactions are already excluded; plain bump.
  uint64_t Ts = Htm.nonTxLoad(&GlobalCounter) + 1;
  Htm.nonTxStore(&GlobalCounter, Ts);
  CurTs[Tid] = Ts;
}

void DudeTmBackend::run(unsigned ThreadId, TxnBody Body) {
  ExecResult R = execute(ThreadId, Body);
  if (!R.HasWrites)
    return;
  // Durability is decoupled: hand the redo record to the background
  // persist/apply pipeline and return immediately.
  RedoTxnRecord Record;
  Record.Ts = CurTs[ThreadId];
  Record.Writes = state(ThreadId).WriteLog;
  Pipeline.enqueue(ThreadId, std::move(Record));
}
