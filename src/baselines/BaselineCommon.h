//===- baselines/BaselineCommon.h - Shared baseline machinery --*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machinery shared by the evaluated baseline systems (paper Section 7.1):
/// Non-durable, NV-HTM [Castro et al., IPDPS'18] and DudeTM [Liu et al.,
/// ASPLOS'17]. All three execute transaction bodies in a hardware
/// transaction with a single-global-lock fallback; the durable ones
/// additionally record each write in a volatile redo log for their
/// decoupled persistence pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_BASELINES_BASELINECOMMON_H
#define CRAFTY_BASELINES_BASELINECOMMON_H

#include "core/Ptm.h"
#include "htm/Htm.h"
#include "log/RedoLog.h"
#include "pmem/PMemAllocator.h"
#include "pmem/PMemPool.h"

#include <memory>
#include <vector>

namespace crafty {

/// Base class implementing HTM-with-SGL-fallback execution and write
/// recording; concrete baselines add their timestamping (preBody /
/// postBody) and their durability tail after each committed transaction.
class BaselineBackend : public PtmBackend {
public:
  BaselineBackend(PMemPool &Pool, HtmRuntime &Htm, unsigned NumThreads,
                  size_t ArenaBytesPerThread, unsigned SglAttemptThreshold);
  ~BaselineBackend() override;

  unsigned maxThreads() const override { return NumThreads; }
  PtmStats txnStats() const override;
  HtmStats htmStats() const override;
  HtmStats htmStatsFor(unsigned Tid) const override;

  PMemPool &pool() { return Pool; }

protected:
  struct ThreadState;

  /// Result of executing a body to completion (always commits).
  struct ExecResult {
    bool UsedSgl = false;
    bool HasWrites = false;
    uint64_t CommitVersion = 0;
  };

  /// Executes \p Body atomically on behalf of \p Tid: hardware
  /// transaction attempts with retries, then the SGL. The thread state's
  /// WriteLog holds the committed writes afterwards.
  ExecResult execute(unsigned Tid, TxnBody Body);

  /// Called after begin (or before a direct SGL execution); \p T is null
  /// in the direct case.
  virtual void preBody(unsigned Tid, HtmTx *T) {}

  /// Called after the body ran, inside the still-open transaction (or
  /// directly under the SGL when \p T is null). \p HasWrites tells
  /// whether the body performed any store.
  virtual void postBody(unsigned Tid, HtmTx *T, bool HasWrites) {}

  struct ThreadState {
    explicit ThreadState(HtmRuntime &Htm, unsigned Tid)
        : Tx(Htm, Tid, Tid + 7777) {}
    HtmTx Tx;
    std::vector<RedoEntry> WriteLog;
    std::vector<void *> AllocLog;
    std::vector<void *> FreeLog;
    PtmStats Stats;
    bool Direct = false; // Executing under the SGL.
  };

  ThreadState &state(unsigned Tid) { return *Threads[Tid]; }

  PMemPool &Pool;
  HtmRuntime &Htm;
  unsigned NumThreads;
  unsigned SglAttemptThreshold;
  std::unique_ptr<PMemAllocator> Alloc;
  std::vector<std::unique_ptr<ThreadState>> Threads;
  alignas(CacheLineBytes) uint64_t Sgl = 0;

private:
  class Ctx;
  void resetAttempt(unsigned Tid, ThreadState &TS);
  void finishCommit(unsigned Tid, ThreadState &TS);
  void waitSglFree();
};

} // namespace crafty

#endif // CRAFTY_BASELINES_BASELINECOMMON_H
