//===- baselines/NvHtm.cpp - NV-HTM baseline ------------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/NvHtm.h"

#include "support/Spin.h"

using namespace crafty;

NvHtmBackend::NvHtmBackend(PMemPool &Pool, HtmRuntime &Htm,
                           unsigned NumThreads, size_t ArenaBytesPerThread,
                           size_t LogBytesPerThread,
                           unsigned SglAttemptThreshold)
    : BaselineBackend(Pool, Htm, NumThreads, ArenaBytesPerThread,
                      SglAttemptThreshold),
      Pipeline(Pool, NumThreads, PipelineOrder::SafeTs,
               /*PersistThreadId=*/Pool.config().MaxThreads - 1) {
  Extra = std::make_unique<PerThread[]>(NumThreads);
  // One contiguous block of per-thread log regions plus a persistent
  // layout header so the recovery replayer can find them in a crash
  // image (baselines/NvHtmRecovery.h).
  auto *LayoutMem = static_cast<NvHtmLayout *>(Pool.carve(sizeof(NvHtmLayout)));
  auto *Logs = static_cast<uint64_t *>(
      Pool.carve((size_t)NumThreads * LogBytesPerThread));
  for (unsigned I = 0; I != NumThreads; ++I) {
    Extra[I].LogRegion = Logs + (size_t)I * (LogBytesPerThread / 8);
    Extra[I].LogWords = LogBytesPerThread / 8;
  }
  NvHtmLayout Layout;
  Layout.MagicWord = NvHtmLayout::Magic;
  Layout.NumThreads = NumThreads;
  Layout.LogWordsPerThread = LogBytesPerThread / 8;
  Layout.LogsOffset = reinterpret_cast<uint8_t *>(Logs) - Pool.base();
  Layout.MappedBase = reinterpret_cast<uint64_t>(Pool.base());
  Pool.persistDirect(LayoutMem, &Layout, sizeof(Layout));
  LayoutOff = reinterpret_cast<uint8_t *>(LayoutMem) - Pool.base();
  Pipeline.setSafeTsBound(&NvHtmBackend::safeTsBound, this);
  Pipeline.start();
}

NvHtmBackend::~NvHtmBackend() { Pipeline.stop(); }

uint64_t NvHtmBackend::safeTsBound(void *Ctx) {
  auto *Self = static_cast<NvHtmBackend *>(Ctx);
  uint64_t Min = TsInfinity;
  for (unsigned I = 0; I != Self->NumThreads; ++I) {
    uint64_t V = Self->Extra[I].PublishedTs.load(std::memory_order_acquire);
    if (V < Min)
      Min = V;
  }
  return Min;
}

void NvHtmBackend::preBody(unsigned Tid, HtmTx *T) {
  // Read the clock inside the transaction (the RDTSC analogue): the
  // timestamp is *not* the serialization order, which is why the commit
  // fence below is needed for correct recovery ordering.
  uint64_t Ts = (Htm.globalClock() + 1) * NumThreads + Tid;
  Extra[Tid].CurTs = Ts;
  Extra[Tid].PublishedTs.store(Ts, std::memory_order_release);
}

void NvHtmBackend::appendLogAndPersist(unsigned Tid, uint64_t Ts) {
  // Write a redo record (header, entries, timestamp; see
  // baselines/NvHtmRecovery.h for the layout), then flush and drain it:
  // entries must be durable before the COMMIT marker may be written.
  PerThread &PT = Extra[Tid];
  const std::vector<RedoEntry> &Writes = state(Tid).WriteLog;
  size_t Needed = 2 * Writes.size() + 3;
  if (PT.LogCursor + Needed > PT.LogWords)
    fatalError("NV-HTM redo log exhausted; enlarge LogBytesPerThread "
               "(log truncation needs checkpointer metadata this "
               "reproduction does not model)");
  uint64_t *Out = PT.LogRegion + PT.LogCursor;
  uint64_t *Start = Out;
  // Log slots are written once from their zeroed state (the log never
  // wraps), so each store's old value is 0.
  Out[0] = NvHtmRecordMagic | (uint64_t)Writes.size();
  Pool.onCommittedStore(&Out[0], 0, Out[0]);
  Out += 1;
  for (const RedoEntry &E : Writes) {
    Out[0] = reinterpret_cast<uint64_t>(E.Addr);
    Out[1] = E.Val;
    Pool.onCommittedStore(&Out[0], 0, Out[0]);
    Pool.onCommittedStore(&Out[1], 0, Out[1]);
    Out += 2;
  }
  Out[0] = Ts; // The COMMIT marker slot (Out[1]) stays zero until after
  Pool.onCommittedStore(&Out[0], 0, Out[0]); // the fence.
  Out += 1;
  PT.LogCursor = (Out - PT.LogRegion) + 1;
  Pool.clwbRange(Tid, Start, (Out - Start) * 8);
  Pool.drain(Tid);
}

void NvHtmBackend::run(unsigned ThreadId, TxnBody Body) {
  PerThread &PT = Extra[ThreadId];
  ExecResult R = execute(ThreadId, Body);
  if (!R.HasWrites) {
    PT.PublishedTs.store(TsInfinity, std::memory_order_release);
    return;
  }
  uint64_t Ts = PT.CurTs;
  appendLogAndPersist(ThreadId, Ts);

  // The commit fence (paper Section 2.3): this transaction cannot write
  // its COMMIT marker until no ongoing transaction may still commit with
  // an earlier timestamp.
  SpinBackoff Backoff;
  for (unsigned U = 0; U != NumThreads; ++U) {
    if (U == ThreadId)
      continue;
    while (Extra[U].PublishedTs.load(std::memory_order_acquire) <= Ts)
      Backoff.pause();
  }

  // COMMIT marker: one persistent word, flushed without drain (recovery
  // tolerates missing markers via the stop-timestamp rule).
  uint64_t *Marker = PT.LogRegion + (PT.LogCursor - 1);
  *Marker = Ts | NvHtmMarkerBit;
  Pool.onCommittedStore(Marker, 0, *Marker);
  Pool.clwb(ThreadId, Marker);

  // Hand the writes to the checkpointer before unpublishing so the
  // safe-timestamp bound can never pass an unqueued transaction.
  RedoTxnRecord Record;
  Record.Ts = Ts;
  Record.Writes = state(ThreadId).WriteLog;
  Pipeline.enqueue(ThreadId, std::move(Record));
  PT.PublishedTs.store(TsInfinity, std::memory_order_release);
}
