//===- baselines/RedoPipeline.cpp - Asynchronous redo appliers ------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/RedoPipeline.h"

#include "support/CacheLine.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace crafty;

RedoPipeline::RedoPipeline(PMemPool &Pool, unsigned NumProducers,
                           PipelineOrder Order, uint32_t PersistThreadId,
                           size_t QueueCapacity)
    : Pool(Pool), Order(Order), PersistThreadId(PersistThreadId),
      QueueCapacity(QueueCapacity) {
  Queues.reserve(NumProducers);
  for (unsigned I = 0; I != NumProducers; ++I)
    Queues.push_back(std::make_unique<ProducerQueue>());
}

RedoPipeline::~RedoPipeline() { stop(); }

void RedoPipeline::start() {
  if (Order == PipelineOrder::SafeTs && !SafeTsFn)
    fatalError("RedoPipeline: SafeTs mode requires a bound callback");
  Applier = std::thread([this] { applierMain(); });
}

void RedoPipeline::enqueue(unsigned Producer, RedoTxnRecord Record) {
  ProducerQueue &PQ = *Queues[Producer];
  for (;;) {
    {
      std::lock_guard<std::mutex> G(PQ.Mu);
      if (PQ.Q.size() < QueueCapacity) {
        PQ.Q.push_back(std::move(Record));
        break;
      }
    }
    std::this_thread::yield(); // Backpressure from the applier.
  }
  Enqueued.fetch_add(1, std::memory_order_release);
}

std::vector<RedoTxnRecord> RedoPipeline::collectBatch() {
  std::vector<RedoTxnRecord> Batch;
  if (Order == PipelineOrder::SafeTs) {
    uint64_t Bound = SafeTsFn(SafeTsCtx);
    for (auto &PQPtr : Queues) {
      ProducerQueue &PQ = *PQPtr;
      std::lock_guard<std::mutex> G(PQ.Mu);
      while (!PQ.Q.empty() && PQ.Q.front().Ts < Bound) {
        Batch.push_back(std::move(PQ.Q.front()));
        PQ.Q.pop_front();
      }
    }
    std::sort(Batch.begin(), Batch.end(),
              [](const RedoTxnRecord &A, const RedoTxnRecord &B) {
                return A.Ts < B.Ts;
              });
    return Batch;
  }
  // Dense: pop records matching the consecutive-timestamp cursor.
  for (;;) {
    bool Found = false;
    for (auto &PQPtr : Queues) {
      ProducerQueue &PQ = *PQPtr;
      std::lock_guard<std::mutex> G(PQ.Mu);
      if (!PQ.Q.empty() && PQ.Q.front().Ts == NextDenseTs) {
        Batch.push_back(std::move(PQ.Q.front()));
        PQ.Q.pop_front();
        ++NextDenseTs;
        Found = true;
        break;
      }
    }
    if (!Found || Batch.size() >= 64)
      return Batch;
  }
}

void RedoPipeline::applierMain() {
  while (!Stop.load(std::memory_order_acquire) ||
         Applied.load(std::memory_order_relaxed) <
             Enqueued.load(std::memory_order_acquire)) {
    std::vector<RedoTxnRecord> Batch = collectBatch();
    if (Batch.empty()) {
      std::this_thread::yield();
      continue;
    }
    // Apply to the persistent heap in timestamp order, writing the
    // *logged* values to the NVM copy only (the DRAM snapshot the program
    // runs on is a separate physical copy), one drain per transaction.
    // The cross-transaction ordering requirement is what serializes this
    // stage (the bottleneck the paper identifies).
    for (const RedoTxnRecord &R : Batch) {
      if (SinkFn)
        SinkFn(SinkCtx, R); // Persist stage (e.g. DudeTM's redo log).
      PersistScratch.clear();
      for (const RedoEntry &E : R.Writes)
        PersistScratch.push_back(PMemWordWrite{E.Addr, E.Val});
      // Line-sort so same-line words form runs the pool counts as one
      // scheduled write-back each; stable keeps repeated writes to a
      // word in order (last-write-wins is preserved).
      std::stable_sort(PersistScratch.begin(), PersistScratch.end(),
                       [](const PMemWordWrite &A, const PMemWordWrite &B) {
                         return lineOf(A.Addr) < lineOf(B.Addr);
                       });
      Pool.persistImageWords(PersistThreadId, PersistScratch.data(),
                             PersistScratch.size());
      Pool.drain(PersistThreadId);
    }
    Applied.fetch_add(Batch.size(), std::memory_order_release);
  }
}

void RedoPipeline::quiesce() {
  while (Applied.load(std::memory_order_acquire) <
         Enqueued.load(std::memory_order_acquire))
    std::this_thread::yield();
}

void RedoPipeline::stop() {
  if (!Applier.joinable())
    return;
  quiesce();
  Stop.store(true, std::memory_order_release);
  Applier.join();
}
