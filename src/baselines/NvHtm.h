//===- baselines/NvHtm.h - NV-HTM baseline ---------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of NV-HTM (Castro, Romano, Barreto; IPDPS 2018) as
/// described in the paper's Section 2.3. Transactions execute in hardware
/// transactions against the DRAM working copy; after commit each
/// transaction persists a timestamped redo log, then *waits* until no
/// ongoing transaction may still commit with an earlier timestamp before
/// writing its COMMIT marker -- the first scalability bottleneck the
/// paper identifies. A background checkpointer applies the logs to the
/// persistent heap in timestamp order -- the second one.
///
/// Timestamps are read from the global clock inside the transaction (the
/// design's RDTSC analogue), so commit order and timestamp order can
/// disagree, which is exactly why the commit fence exists.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_BASELINES_NVHTM_H
#define CRAFTY_BASELINES_NVHTM_H

#include "baselines/BaselineCommon.h"
#include "support/Annotations.h"
#include "baselines/NvHtmRecovery.h"
#include "baselines/RedoPipeline.h"

#include <atomic>

namespace crafty {

class NvHtmBackend final : public BaselineBackend {
public:
  /// \p LogBytesPerThread: size of each thread's persistent redo-log
  /// region, carved from \p Pool.
  NvHtmBackend(PMemPool &Pool, HtmRuntime &Htm, unsigned NumThreads,
               size_t ArenaBytesPerThread = 0,
               size_t LogBytesPerThread = 1 << 20,
               unsigned SglAttemptThreshold = 10);
  ~NvHtmBackend() override;

  const char *name() const override { return "NV-HTM"; }
  /// The COMMIT marker is CLWB'd with no drain: NV-HTM recovery
  /// tolerates missing markers via the stop-timestamp rule, so the
  /// next fence (any later commit) is the drain.
  CRAFTY_DRAIN_DEFERRED void run(unsigned ThreadId, TxnBody Body) override;
  void quiesce() override { Pipeline.quiesce(); }

  /// Offset of the persistent layout header within the pool; pass to
  /// replayNvHtmPool / replayNvHtmImage for crash recovery.
  size_t layoutOffset() const { return LayoutOff; }

private:
  void preBody(unsigned Tid, HtmTx *T) override;
  void appendLogAndPersist(unsigned Tid, uint64_t Ts);
  static uint64_t safeTsBound(void *Ctx);

  static constexpr uint64_t TsInfinity = ~0ull;

  struct alignas(CacheLineBytes) PerThread {
    std::atomic<uint64_t> PublishedTs{~0ull};
    uint64_t CurTs = 0;
    uint64_t *LogRegion = nullptr; // Persistent redo-log words.
    size_t LogWords = 0;
    size_t LogCursor = 0;
  };

  std::unique_ptr<PerThread[]> Extra;
  size_t LayoutOff = 0;
  RedoPipeline Pipeline;
};

} // namespace crafty

#endif // CRAFTY_BASELINES_NVHTM_H
