//===- baselines/BaselineCommon.cpp - Shared baseline machinery -----------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "baselines/BaselineCommon.h"

#include "support/Spin.h"

using namespace crafty;

namespace {
constexpr uint32_t AbortBaselineSglHeld = 101;
} // namespace

/// TxnContext for baselines: loads/stores through the hardware
/// transaction (or directly under the SGL), recording writes for the redo
/// pipelines.
class BaselineBackend::Ctx final : public TxnContext {
public:
  Ctx(BaselineBackend &B, ThreadState &TS, unsigned Tid)
      : B(B), TS(TS), Tid(Tid) {}

  uint64_t load(const uint64_t *Addr) override {
    return TS.Direct ? B.Htm.nonTxLoad(Addr) : TS.Tx.load(Addr);
  }

  void store(uint64_t *Addr, uint64_t Val) override {
    TS.WriteLog.push_back(RedoEntry{Addr, Val});
    if (TS.Direct)
      B.Htm.nonTxStore(Addr, Val);
    else
      TS.Tx.store(Addr, Val);
  }

  void *alloc(size_t Bytes) override {
    if (!B.Alloc)
      fatalError("TxnContext::alloc without a configured allocator arena");
    void *P = B.Alloc->alloc(Tid, Bytes);
    if (P)
      TS.AllocLog.push_back(P);
    return P;
  }

  void dealloc(void *Ptr) override {
    if (Ptr)
      TS.FreeLog.push_back(Ptr);
  }

private:
  BaselineBackend &B;
  ThreadState &TS;
  unsigned Tid;
};

BaselineBackend::BaselineBackend(PMemPool &Pool, HtmRuntime &Htm,
                                 unsigned NumThreads,
                                 size_t ArenaBytesPerThread,
                                 unsigned SglAttemptThreshold)
    : Pool(Pool), Htm(Htm), NumThreads(NumThreads),
      SglAttemptThreshold(SglAttemptThreshold) {
  Htm.setMemoryHooks(Pool.htmHooks());
  if (ArenaBytesPerThread)
    Alloc = std::make_unique<PMemAllocator>(Pool, NumThreads,
                                            ArenaBytesPerThread);
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Threads.push_back(std::make_unique<ThreadState>(Htm, I));
}

BaselineBackend::~BaselineBackend() = default;

PtmStats BaselineBackend::txnStats() const {
  PtmStats S;
  for (const auto &T : Threads)
    S += T->Stats;
  return S;
}

HtmStats BaselineBackend::htmStats() const {
  HtmStats S;
  for (const auto &T : Threads)
    S += T->Tx.stats();
  return S;
}

HtmStats BaselineBackend::htmStatsFor(unsigned Tid) const {
  return Threads[Tid]->Tx.stats();
}

void BaselineBackend::resetAttempt(unsigned Tid, ThreadState &TS) {
  TS.WriteLog.clear();
  if (Alloc)
    for (void *P : TS.AllocLog)
      Alloc->dealloc(Tid, P);
  TS.AllocLog.clear();
  TS.FreeLog.clear();
}

void BaselineBackend::finishCommit(unsigned Tid, ThreadState &TS) {
  if (Alloc)
    for (void *P : TS.FreeLog)
      Alloc->dealloc(Tid, P);
  TS.FreeLog.clear();
  TS.AllocLog.clear();
  TS.Stats.Writes += TS.WriteLog.size();
}

void BaselineBackend::waitSglFree() {
  SpinBackoff Backoff;
  while (HtmRuntime::plainLoad(&Sgl) != 0)
    Backoff.pause();
}

BaselineBackend::ExecResult BaselineBackend::execute(unsigned Tid,
                                                     TxnBody Body) {
  ThreadState &TS = state(Tid);
  Ctx Context(*this, TS, Tid);
  unsigned Attempts = 0;
  while (Attempts < SglAttemptThreshold) {
    resetAttempt(Tid, TS);
    TS.Direct = false;
    bool HasWrites = false;
    TxResult R = runHtmTx(TS.Tx, [&](HtmTx &T) {
      if (T.load(&Sgl) != 0)
        T.abortExplicit(AbortBaselineSglHeld);
      preBody(Tid, &T);
      Body(Context);
      HasWrites = !TS.WriteLog.empty();
      postBody(Tid, &T, HasWrites);
    });
    if (R.Committed) {
      ++TS.Stats.NonCrafty;
      finishCommit(Tid, TS);
      return ExecResult{false, HasWrites, R.CommitVersion};
    }
    if (R.Code == AbortCode::Explicit && R.UserCode == AbortBaselineSglHeld) {
      waitSglFree();
      continue; // Not charged as an attempt.
    }
    ++Attempts;
  }

  // Single-global-lock fallback: direct execution.
  SpinBackoff Backoff;
  while (!Htm.nonTxCas(&Sgl, 0, 1))
    Backoff.pause();
  resetAttempt(Tid, TS);
  TS.Direct = true;
  preBody(Tid, nullptr);
  Body(Context);
  bool HasWrites = !TS.WriteLog.empty();
  postBody(Tid, nullptr, HasWrites);
  uint64_t Version = Htm.advanceClock();
  TS.Direct = false;
  ++TS.Stats.Sgl;
  finishCommit(Tid, TS);
  Htm.nonTxStore(&Sgl, 0);
  return ExecResult{true, HasWrites, Version};
}
