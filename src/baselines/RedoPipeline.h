//===- baselines/RedoPipeline.h - Asynchronous redo appliers ---*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous persistence pipeline shared by the NV-HTM and DudeTM
/// baselines: a background thread consumes committed transactions' redo
/// records and applies them to the persistent heap in timestamp order --
/// the inherently serialized stage the paper identifies as their
/// scalability bottleneck (Section 2.3).
///
/// Two ordering disciplines are supported:
///  - SafeTs (NV-HTM): a record with timestamp T may be applied once no
///    in-flight transaction can still commit with a timestamp <= T; the
///    bound comes from the per-thread published-timestamp table.
///  - Dense (DudeTM): timestamps are consecutive integers from the global
///    counter incremented inside each hardware transaction; records apply
///    strictly in counter order.
///
/// Applying a record costs NVM write-backs: the pipeline issues CLWBs for
/// every written line and a drain per batch, on its own persistence
/// context, so the simulator charges realistic latency.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_BASELINES_REDOPIPELINE_H
#define CRAFTY_BASELINES_REDOPIPELINE_H

#include "log/RedoLog.h"
#include "pmem/PMemPool.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace crafty {

/// One committed transaction's redo record.
struct RedoTxnRecord {
  uint64_t Ts = 0;
  std::vector<RedoEntry> Writes;
};

/// Ordering discipline; see the file comment.
enum class PipelineOrder : uint8_t { SafeTs, Dense };

class RedoPipeline {
public:
  /// \p SafeTsBound (SafeTs mode): returns a timestamp such that no
  /// in-flight transaction can still commit at or below it.
  /// \p PersistThreadId: the pool persistence context the applier uses.
  RedoPipeline(PMemPool &Pool, unsigned NumProducers, PipelineOrder Order,
               uint32_t PersistThreadId, size_t QueueCapacity = 256);
  ~RedoPipeline();
  RedoPipeline(const RedoPipeline &) = delete;
  RedoPipeline &operator=(const RedoPipeline &) = delete;

  /// SafeTs mode: installs the bound callback (must outlive the
  /// pipeline). Call before start().
  void setSafeTsBound(uint64_t (*Fn)(void *), void *Ctx) {
    SafeTsFn = Fn;
    SafeTsCtx = Ctx;
  }

  /// Optional persist stage: invoked for each record, in apply order,
  /// before its writes reach the persistent heap. DudeTM uses it to
  /// write and drain its persistent redo log (the "persist" stage of its
  /// decoupled pipeline). Call before start().
  void setRecordSink(void (*Fn)(void *, const RedoTxnRecord &), void *Ctx) {
    SinkFn = Fn;
    SinkCtx = Ctx;
  }

  /// Starts the applier thread.
  void start();

  /// Enqueues a committed transaction from \p Producer; blocks while the
  /// producer's queue is full (checkpointer backpressure).
  void enqueue(unsigned Producer, RedoTxnRecord Record);

  /// Blocks until every enqueued record has been applied.
  void quiesce();

  /// Stops the applier (implies quiesce).
  void stop();

  uint64_t appliedTxns() const {
    return Applied.load(std::memory_order_relaxed);
  }

private:
  void applierMain();
  /// Collects the next batch to apply, in timestamp order. Returns an
  /// empty batch when nothing is currently eligible.
  std::vector<RedoTxnRecord> collectBatch();

  struct ProducerQueue {
    std::mutex Mu;
    std::deque<RedoTxnRecord> Q;
  };

  PMemPool &Pool;
  PipelineOrder Order;
  uint32_t PersistThreadId;
  size_t QueueCapacity;
  uint64_t (*SafeTsFn)(void *) = nullptr;
  void *SafeTsCtx = nullptr;
  void (*SinkFn)(void *, const RedoTxnRecord &) = nullptr;
  void *SinkCtx = nullptr;
  std::vector<std::unique_ptr<ProducerQueue>> Queues;
  std::thread Applier;
  /// Applier-thread scratch for one record's line-sorted word persists.
  std::vector<PMemWordWrite> PersistScratch;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Enqueued{0};
  std::atomic<uint64_t> Applied{0};
  uint64_t NextDenseTs = 1; // Dense mode cursor.
};

} // namespace crafty

#endif // CRAFTY_BASELINES_REDOPIPELINE_H
