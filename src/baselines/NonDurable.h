//===- baselines/NonDurable.h - HTM with no durability ---------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Non-durable configuration (paper Section 6): each persistent
/// transaction simply runs in a hardware transaction with an SGL
/// fallback, providing no crash-consistency guarantee. It is the
/// normalization baseline of every throughput figure.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_BASELINES_NONDURABLE_H
#define CRAFTY_BASELINES_NONDURABLE_H

#include "baselines/BaselineCommon.h"

namespace crafty {

class NonDurableBackend final : public BaselineBackend {
public:
  NonDurableBackend(PMemPool &Pool, HtmRuntime &Htm, unsigned NumThreads,
                    size_t ArenaBytesPerThread = 0,
                    unsigned SglAttemptThreshold = 10)
      : BaselineBackend(Pool, Htm, NumThreads, ArenaBytesPerThread,
                        SglAttemptThreshold) {}

  const char *name() const override { return "Non-durable"; }

  void run(unsigned ThreadId, TxnBody Body) override {
    execute(ThreadId, Body);
  }
};

} // namespace crafty

#endif // CRAFTY_BASELINES_NONDURABLE_H
