//===- harness/Harness.cpp - Evaluation harness ---------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

#include "check/PersistCheck.h"
#include "check/TxRaceCheck.h"
#include "core/Crafty.h"
#include "support/Clock.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

using namespace crafty;

uint64_t crafty::defaultOpsPerThread(WorkloadKind Kind) {
  uint64_t Ops;
  switch (Kind) {
  case WorkloadKind::Labyrinth:
    Ops = 60; // ~170 writes per transaction.
    break;
  case WorkloadKind::BTreeInsert:
  case WorkloadKind::BTreeMixed:
  case WorkloadKind::KMeansHigh:
  case WorkloadKind::KMeansLow:
  case WorkloadKind::VacationHigh:
  case WorkloadKind::VacationLow:
    Ops = 600;
    break;
  default:
    Ops = 1000;
    break;
  }
  // Read once per experiment before worker threads spawn, so the
  // thread-unsafety of getenv is immaterial here.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char *Scale = std::getenv("CRAFTY_BENCH_OPS_SCALE")) {
    double F = std::atof(Scale);
    if (F > 0)
      Ops = (uint64_t)((double)Ops * F);
  }
  return Ops;
}

ExperimentResult crafty::runExperiment(const ExperimentConfig &Config) {
  PMemConfig PC;
  PC.PoolBytes = Config.PoolBytes;
  PC.Mode = PMemMode::LatencyOnly;
  PC.DrainLatencyNs = Config.DrainLatencyNs;
  PC.MaxThreads = Config.Threads + 4; // Background persistence contexts.
  PMemPool Pool(PC);
  HtmRuntime Htm(Config.Htm);

  std::unique_ptr<Workload> W = createWorkload(Config.Workload);
  BackendOptions BO;
  BO.NumThreads = Config.Threads;
  BO.ArenaBytesPerThread = W->arenaBytesPerThread();
  BO.CollectPhaseTimings = Config.CollectPhaseTimings;
  BO.EnablePersistCheck = Config.EnablePersistCheck;
  BO.EnableTxRaceCheck = Config.EnableTxRaceCheck;
  // Size the baseline redo logs for the run: records cost at most
  // ~2 words per write plus headers; budget generously (the formats do
  // not support truncation; see baselines/NvHtmRecovery.h).
  size_t RecordBudget = (size_t)Config.OpsPerThread * 800 * 8;
  BO.NvHtmLogBytesPerThread =
      std::max<size_t>(BO.NvHtmLogBytesPerThread, RecordBudget);
  BO.DudeTmLogBytesTotal = std::max<size_t>(
      BO.DudeTmLogBytesTotal, RecordBudget * Config.Threads);
  std::unique_ptr<PtmBackend> Backend =
      createBackend(Config.System, Pool, Htm, BO);
  W->setup(Pool, Config.Threads);

  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned T = 0; T != Config.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Rng R(Config.Seed * 7919 + T * 104729 + 1);
      Ready.fetch_add(1, std::memory_order_release);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (uint64_t I = 0; I != Config.OpsPerThread; ++I)
        W->runOp(*Backend, T, R);
    });
  }
  while (Ready.load(std::memory_order_acquire) != Config.Threads)
    std::this_thread::yield();
  uint64_t T0 = monotonicNanos();
  Go.store(true, std::memory_order_release);
  for (auto &Th : Threads)
    Th.join();
  Backend->quiesce();
  uint64_t T1 = monotonicNanos();

  ExperimentResult Res;
  Res.Seconds = (double)(T1 - T0) * 1e-9;
  Res.Ops = Config.OpsPerThread * Config.Threads;
  Res.OpsPerSecond = Res.Seconds > 0 ? (double)Res.Ops / Res.Seconds : 0;
  Res.Txn = Backend->txnStats();
  Res.Hw = Backend->htmStats();
  Res.Pmem = Pool.stats();
  Res.VerifyError = W->verify(Config.Threads, Res.Ops);
  if (auto *CR = dynamic_cast<CraftyRuntime *>(Backend.get())) {
    if (PersistCheck *PC2 = CR->persistCheck()) {
      Res.CheckViolations += PC2->violationCount();
      Res.CheckLints += PC2->lintCount();
      Res.CheckReportText += PC2->formatReports();
      PC2->checkReport().writeJsonToEnvDir("persistcheck_experiment");
    }
    if (TxRaceCheck *RC = CR->raceCheck()) {
      Res.CheckViolations += RC->violationCount();
      Res.CheckLints += RC->lintCount();
      Res.CheckReportText += RC->formatReports();
      RC->checkReport().writeJsonToEnvDir("txracecheck_experiment");
    }
  }
  return Res;
}

static void printBreakdowns(const char *System, unsigned Threads,
                            const ExperimentResult &R, std::FILE *Out) {
  double Txns = R.Txn.transactions() ? (double)R.Txn.transactions() : 1.0;
  std::fprintf(Out,
               "    %-18s t=%-2u  txns: nonCrafty=%llu readOnly=%llu "
               "redo=%llu validate=%llu sgl=%llu | hw: commit=%llu "
               "conflict=%llu capacity=%llu explicit=%llu zero=%llu | "
               "pmem/txn: clwb=%.1f drain=%.2f\n",
               System, Threads, (unsigned long long)R.Txn.NonCrafty,
               (unsigned long long)R.Txn.ReadOnly,
               (unsigned long long)R.Txn.Redo,
               (unsigned long long)R.Txn.Validate,
               (unsigned long long)R.Txn.Sgl,
               (unsigned long long)R.Hw.Commits,
               (unsigned long long)R.Hw.AbortConflict,
               (unsigned long long)R.Hw.AbortCapacity,
               (unsigned long long)R.Hw.AbortExplicit,
               (unsigned long long)R.Hw.AbortZero,
               (double)R.Pmem.ClwbCalls / Txns,
               (double)R.Pmem.drainsWithWork() / Txns);
}

void crafty::runThroughputSweep(const SweepOptions &Options, std::FILE *Out) {
  uint64_t Ops = Options.OpsPerThread ? Options.OpsPerThread
                                      : defaultOpsPerThread(Options.Workload);
  std::unique_ptr<Workload> Named = createWorkload(Options.Workload);
  std::fprintf(Out,
               "\n== %s | drain %llu ns | %llu ops/thread | normalized to "
               "1-thread Non-durable ==\n",
               Named->name(), (unsigned long long)Options.DrainLatencyNs,
               (unsigned long long)Ops);

  // Normalization baseline.
  ExperimentConfig Base;
  Base.Workload = Options.Workload;
  Base.System = SystemKind::NonDurable;
  Base.Threads = 1;
  Base.OpsPerThread = Ops;
  Base.DrainLatencyNs = Options.DrainLatencyNs;
  ExperimentResult BaseRes = runExperiment(Base);
  double BaseTput = BaseRes.OpsPerSecond;
  if (!BaseRes.VerifyError.empty())
    std::fprintf(Out, "  [verify] Non-durable baseline: %s\n",
                 BaseRes.VerifyError.c_str());

  std::fprintf(Out, "%-18s", "threads");
  for (unsigned T : Options.ThreadCounts)
    std::fprintf(Out, "%8u", T);
  std::fprintf(Out, "\n");

  std::vector<std::pair<std::string, ExperimentResult>> BreakdownRows;
  for (SystemKind System : Options.Systems) {
    std::fprintf(Out, "%-18s", systemKindName(System));
    for (unsigned T : Options.ThreadCounts) {
      ExperimentConfig C = Base;
      C.System = System;
      C.Threads = T;
      ExperimentResult R = runExperiment(C);
      double Norm = BaseTput > 0 ? R.OpsPerSecond / BaseTput : 0;
      std::fprintf(Out, "%8.2f", Norm);
      std::fflush(Out);
      if (!R.VerifyError.empty())
        std::fprintf(Out, "\n  [verify] %s t=%u: %s\n",
                     systemKindName(System), T, R.VerifyError.c_str());
      if (Options.PrintBreakdowns)
        BreakdownRows.emplace_back(
            std::string(systemKindName(System)) + "/" + std::to_string(T),
            R);
    }
    std::fprintf(Out, "\n");
  }
  if (Options.PrintBreakdowns) {
    std::fprintf(Out, "  breakdowns (persistent txn / hardware txn):\n");
    for (auto &[Label, R] : BreakdownRows) {
      auto Slash = Label.find('/');
      printBreakdowns(Label.substr(0, Slash).c_str(),
                      (unsigned)std::atoi(Label.c_str() + Slash + 1), R,
                      Out);
    }
  }
}

void crafty::runWritesPerTxnRow(WorkloadKind Kind,
                                const std::vector<unsigned> &Threads,
                                std::FILE *Out) {
  std::unique_ptr<Workload> Named = createWorkload(Kind);
  std::fprintf(Out, "%-26s", Named->name());
  for (unsigned T : Threads) {
    ExperimentConfig C;
    C.Workload = Kind;
    C.System = SystemKind::Crafty;
    C.Threads = T;
    C.OpsPerThread = defaultOpsPerThread(Kind);
    C.DrainLatencyNs = 0; // Writes/txn is latency independent.
    ExperimentResult R = runExperiment(C);
    double Avg = R.Txn.transactions()
                     ? (double)R.Txn.Writes / (double)R.Txn.transactions()
                     : 0;
    std::fprintf(Out, "%7.1f", Avg);
    std::fflush(Out);
  }
  std::fprintf(Out, "\n");
}
