//===- harness/Harness.h - Evaluation harness ------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation harness: runs one (workload x system x thread-count)
/// experiment with the paper's methodology (Section 7.1) -- every
/// configuration executes identical workload code; NVM write-back latency
/// is emulated at drains; throughput is the inverse of wall-clock time,
/// normalized to single-thread Non-durable -- and the sweep drivers that
/// regenerate each figure's series.
///
/// Host note: the reproduction machine exposes one hardware core, so
/// multi-thread points measure time-sliced execution; see EXPERIMENTS.md
/// for how that affects each figure's interpretation.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_HARNESS_HARNESS_H
#define CRAFTY_HARNESS_HARNESS_H

#include "baselines/Factory.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <string>
#include <vector>

namespace crafty {

/// One experiment cell.
struct ExperimentConfig {
  WorkloadKind Workload = WorkloadKind::BankMedium;
  SystemKind System = SystemKind::Crafty;
  unsigned Threads = 1;
  uint64_t OpsPerThread = 1000;
  uint64_t DrainLatencyNs = 300; // Paper default; 100 for Appendix A.
  size_t PoolBytes = 512ull << 20;
  HtmConfig Htm;
  uint64_t Seed = 1;
  /// Crafty backends: collect per-phase wall-clock times.
  bool CollectPhaseTimings = false;
  /// Crafty backends: run under the PersistCheck persist-ordering checker
  /// and report its findings in the result.
  bool EnablePersistCheck = false;
  /// Crafty backends: run under the TxRaceCheck race/isolation checker
  /// and report its findings in the result.
  bool EnableTxRaceCheck = false;
};

/// Measurements from one experiment cell.
struct ExperimentResult {
  double Seconds = 0;
  uint64_t Ops = 0;
  double OpsPerSecond = 0;
  PtmStats Txn;
  HtmStats Hw;
  PMemStats Pmem;
  /// Empty on success; a workload-invariant violation otherwise.
  std::string VerifyError;
  /// Checker findings (zero unless the matching Enable*Check was set).
  uint64_t CheckViolations = 0;
  uint64_t CheckLints = 0;
  /// Human-readable checker reports; empty when clean.
  std::string CheckReportText;
};

/// Runs one cell: fresh pool + HTM runtime + backend + workload.
ExperimentResult runExperiment(const ExperimentConfig &Config);

/// Standard thread counts of every figure in the paper.
inline const std::vector<unsigned> PaperThreadCounts = {1, 2, 4,
                                                        8, 12, 15, 16};

/// A full figure panel: all systems across the thread counts.
struct SweepOptions {
  WorkloadKind Workload = WorkloadKind::BankMedium;
  std::vector<SystemKind> Systems{AllSystems.begin(), AllSystems.end()};
  std::vector<unsigned> ThreadCounts = PaperThreadCounts;
  uint64_t OpsPerThread = 0; // 0: per-workload default.
  uint64_t DrainLatencyNs = 300;
  bool PrintBreakdowns = false;
};

/// Default operations per thread for a workload (sized so a full panel
/// completes in seconds on the reproduction host; scale with the
/// CRAFTY_BENCH_OPS_SCALE environment variable).
uint64_t defaultOpsPerThread(WorkloadKind Kind);

/// Runs a panel and prints its normalized-throughput series (and, when
/// requested, the appendix-style breakdown tables) to \p Out.
void runThroughputSweep(const SweepOptions &Options, std::FILE *Out);

/// Prints the Table 1 row for a workload: average persistent writes per
/// transaction across thread counts.
void runWritesPerTxnRow(WorkloadKind Kind, const std::vector<unsigned> &Threads,
                        std::FILE *Out);

} // namespace crafty

#endif // CRAFTY_HARNESS_HARNESS_H
