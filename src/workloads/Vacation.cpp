//===- workloads/Vacation.cpp - vacation reservation kernel ---------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Vacation.h"

#include "support/Annotations.h"

#include <string>

using namespace crafty;

void VacationWorkload::setup(PMemPool &Pool, unsigned NumThreads) {
  Resources = static_cast<uint64_t *>(
      Pool.carve((size_t)NumTables * RowsPerTable * CacheLineBytes));
  Customers = static_cast<uint64_t *>(
      Pool.carve((size_t)NumCustomers * CacheLineBytes));
  for (unsigned T = 0; T != NumTables; ++T)
    for (unsigned R = 0; R != RowsPerTable; ++R) {
      uint64_t Free = InitialFree, P = Price;
      Pool.persistDirect(&rowWord(T, R)[0], &Free, sizeof(Free));
      Pool.persistDirect(&rowWord(T, R)[1], &P, sizeof(P));
    }
  for (unsigned C = 0; C != NumCustomers; ++C) {
    uint64_t Zero = 0;
    Pool.persistDirect(&customerWord(C)[0], &Zero, sizeof(Zero));
    Pool.persistDirect(&customerWord(C)[1], &Zero, sizeof(Zero));
  }
}

void VacationWorkload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  // 20% of operations are cancellations (as in STAMP vacation's
  // make/cancel mix): return one seat and refund the customer.
  if (R.chance(1, 5)) {
    unsigned Customer = (unsigned)R.nextBounded(NumCustomers);
    unsigned Table = (unsigned)R.nextBounded(NumTables);
    unsigned Row = (unsigned)R.nextBounded(High ? 64 : RowsPerTable);
    Backend.run(Tid, [&](TxnContext &Tx) {
      uint64_t *Cust = customerWord(Customer);
      uint64_t Held = Tx.load(&Cust[1]);
      if (Held == 0)
        return; // Nothing to cancel: read-only.
      uint64_t *Res = rowWord(Table, Row);
      Tx.store(&Res[0], Tx.load(&Res[0]) + 1);
      Tx.store(&Cust[0], Tx.load(&Cust[0]) - Tx.load(&Res[1]));
      Tx.store(&Cust[1], Held - 1);
    });
    return;
  }
  // High contention: 6 bookings from a 64-row hot range; low: 3 or 4
  // bookings across the whole table (Table 1: 8 vs 5.5 writes/txn,
  // counting the two customer words).
  unsigned Bookings = High ? 6 : (3 + (unsigned)R.nextBounded(2));
  unsigned Range = High ? 64 : RowsPerTable;
  unsigned Customer = (unsigned)R.nextBounded(NumCustomers);
  unsigned Table[8], Row[8];
  for (unsigned I = 0; I != Bookings; ++I) {
    Table[I] = (unsigned)R.nextBounded(NumTables);
    Row[I] = (unsigned)R.nextBounded(Range);
  }
  Backend.run(Tid, [&](TxnContext &Tx) {
    uint64_t Charged = 0;
    uint64_t Booked = 0;
    for (unsigned I = 0; I != Bookings; ++I) {
      CRAFTY_TX_BOUND(8); // Bookings <= 6, scratch arrays hold 8.
      uint64_t *Res = rowWord(Table[I], Row[I]);
      uint64_t Free = Tx.load(&Res[0]);
      if (Free == 0)
        continue;
      Tx.store(&Res[0], Free - 1);
      Charged += Tx.load(&Res[1]);
      ++Booked;
    }
    if (Booked == 0)
      return; // Nothing available: read-only transaction.
    uint64_t *Cust = customerWord(Customer);
    Tx.store(&Cust[0], Tx.load(&Cust[0]) + Charged);
    Tx.store(&Cust[1], Tx.load(&Cust[1]) + Booked);
  });
}

std::string VacationWorkload::verify(unsigned NumThreads, uint64_t OpsDone) {
  uint64_t SeatsSold = 0;
  for (unsigned T = 0; T != NumTables; ++T)
    for (unsigned R = 0; R != RowsPerTable; ++R)
      SeatsSold += InitialFree - rowWord(T, R)[0];
  uint64_t Reservations = 0, Spent = 0;
  for (unsigned C = 0; C != NumCustomers; ++C) {
    Spent += customerWord(C)[0];
    Reservations += customerWord(C)[1];
  }
  if (SeatsSold != Reservations)
    return "seats sold " + std::to_string(SeatsSold) +
           " != customer reservations " + std::to_string(Reservations);
  if (Spent != SeatsSold * Price)
    return "customer spend inconsistent with bookings";
  return std::string();
}
