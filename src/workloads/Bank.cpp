//===- workloads/Bank.cpp - Bank transfer microbenchmark ------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Bank.h"

#include <string>

using namespace crafty;

BankWorkload::BankWorkload(BankContention Level) : Level(Level) {
  switch (Level) {
  case BankContention::High:
    NumAccounts = 1024;
    break;
  case BankContention::Medium:
    NumAccounts = 4096;
    break;
  case BankContention::None:
    NumAccounts = 4096; // Partitioned among threads at op time.
    break;
  }
}

const char *BankWorkload::name() const {
  switch (Level) {
  case BankContention::High:
    return "bank (high contention)";
  case BankContention::Medium:
    return "bank (medium contention)";
  case BankContention::None:
    return "bank (no contention)";
  }
  CRAFTY_UNREACHABLE("bad contention level");
}

void BankWorkload::setup(PMemPool &Pool, unsigned NumThreads) {
  this->NumThreads = NumThreads;
  Accounts = static_cast<uint64_t *>(
      Pool.carve((size_t)NumAccounts * CacheLineBytes));
  for (unsigned I = 0; I != NumAccounts; ++I) {
    uint64_t V = InitialBalance;
    Pool.persistDirect(accountWord(I), &V, sizeof(V));
  }
}

void BankWorkload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  // Pick the five transfers up front so re-executions (Crafty's Validate
  // phase re-runs the body) are deterministic.
  unsigned From[TransfersPerTxn], To[TransfersPerTxn];
  unsigned Lo = 0, Range = NumAccounts;
  if (Level == BankContention::None) {
    Range = NumAccounts / NumThreads;
    Lo = Tid * Range;
  }
  for (unsigned I = 0; I != TransfersPerTxn; ++I) {
    From[I] = Lo + (unsigned)R.nextBounded(Range);
    To[I] = Lo + (unsigned)((From[I] - Lo + 1 + R.nextBounded(Range - 1)) %
                            Range);
  }
  Backend.run(Tid, [&](TxnContext &Tx) {
    for (unsigned I = 0; I != TransfersPerTxn; ++I) {
      uint64_t *F = accountWord(From[I]);
      uint64_t *T = accountWord(To[I]);
      Tx.store(F, Tx.load(F) - 1);
      Tx.store(T, Tx.load(T) + 1);
    }
  });
}

std::string BankWorkload::verify(unsigned NumThreads, uint64_t OpsDone) {
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumAccounts; ++I)
    Total += *accountWord(I);
  uint64_t Expected = InitialBalance * NumAccounts;
  if (Total != Expected)
    return "bank total " + std::to_string(Total) + " != expected " +
           std::to_string(Expected);
  return std::string();
}
