//===- workloads/Bank.h - Bank transfer microbenchmark ---------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bank microbenchmark from the NV-HTM distribution as configured by
/// the paper (Section 7.1): each transaction performs five random
/// transfers (ten persistent writes) between cache-line-aligned accounts.
/// Contention is set by the account count -- 1024 (high), 4096 (medium)
/// -- or eliminated by partitioning the accounts among threads (none).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_BANK_H
#define CRAFTY_WORKLOADS_BANK_H

#include "workloads/Workload.h"

namespace crafty {

/// Contention level of the bank microbenchmark (Figure 6).
enum class BankContention : uint8_t { High, Medium, None };

class BankWorkload final : public Workload {
public:
  explicit BankWorkload(BankContention Level);

  const char *name() const override;
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr unsigned TransfersPerTxn = 5;
  static constexpr uint64_t InitialBalance = 1000;

private:
  uint64_t *accountWord(unsigned Idx) {
    return Accounts + (size_t)Idx * (CacheLineBytes / 8);
  }

  BankContention Level;
  unsigned NumAccounts = 0;
  unsigned NumThreads = 0;
  uint64_t *Accounts = nullptr;
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_BANK_H
