//===- workloads/Genome.cpp - genome segment-dedup kernel -----------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Genome.h"

#include <string>
#include <vector>

using namespace crafty;

void GenomeWorkload::setup(PMemPool &Pool, unsigned NumThreads) {
  size_t Bytes = TableSlots * 2 * 8;
  Table = static_cast<uint64_t *>(Pool.carve(Bytes));
  std::vector<uint8_t> Zero(Bytes, 0);
  Pool.persistDirect(Table, Zero.data(), Bytes);
  DistinctInserted.store(0, std::memory_order_relaxed);
  TotalCounted.store(0, std::memory_order_relaxed);
}

void GenomeWorkload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  // Segments are drawn from a bounded pool, so duplicates become the
  // common case as the run progresses (as in genome's dedup phase).
  uint64_t Segment = R.nextBounded(SegmentPool) * 0x9e3779b97f4a7c15ull;
  uint64_t Key = (Segment >> 8) + 1; // Nonzero.
  size_t Start = (Segment * 0xff51afd7ed558ccdull >> 32) % TableSlots;
  bool Inserted = false, Counted = false;
  Backend.run(Tid, [&](TxnContext &Tx) {
    Inserted = Counted = false;
    for (unsigned P = 0; P != MaxProbe; ++P) {
      uint64_t *S = slot((Start + P) % TableSlots);
      uint64_t Cur = Tx.load(&S[0]);
      if (Cur == Key) {
        Tx.store(&S[1], Tx.load(&S[1]) + 1);
        Counted = true;
        return;
      }
      if (Cur == 0) {
        Tx.store(&S[0], Key);
        Tx.store(&S[1], 1);
        Inserted = Counted = true;
        return;
      }
    }
    // Probe limit hit: dropped segment (read-only transaction).
  });
  if (Inserted)
    DistinctInserted.fetch_add(1, std::memory_order_relaxed);
  if (Counted)
    TotalCounted.fetch_add(1, std::memory_order_relaxed);
}

std::string GenomeWorkload::verify(unsigned NumThreads, uint64_t OpsDone) {
  uint64_t Distinct = 0, Occurrences = 0;
  for (size_t I = 0; I != TableSlots; ++I) {
    const uint64_t *S = slot(I);
    if (S[0] == 0) {
      if (S[1] != 0)
        return "empty slot with a nonzero count";
      continue;
    }
    ++Distinct;
    Occurrences += S[1];
  }
  if (Distinct != DistinctInserted.load(std::memory_order_relaxed))
    return "distinct segments " + std::to_string(Distinct) +
           " != ledger " +
           std::to_string(DistinctInserted.load(std::memory_order_relaxed));
  if (Occurrences != TotalCounted.load(std::memory_order_relaxed))
    return "occurrence total inconsistent with the ledger";
  return std::string();
}
