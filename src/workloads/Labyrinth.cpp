//===- workloads/Labyrinth.cpp - labyrinth routing kernel -----------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Labyrinth.h"

#include <string>

using namespace crafty;

void LabyrinthWorkload::setup(PMemPool &Pool, unsigned NumThreads) {
  size_t Bytes = (size_t)GridDim * GridDim * 8;
  Grid = static_cast<uint64_t *>(Pool.carve(Bytes));
  std::vector<uint8_t> Zero(Bytes, 0);
  Pool.persistDirect(Grid, Zero.data(), Bytes);
  Claimed.assign(NumThreads, {});
  CellsHeld.store(0, std::memory_order_relaxed);
}

void LabyrinthWorkload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  std::vector<Route> &Mine = Claimed[Tid];
  bool Release = !Mine.empty() && R.chance(1, 2);
  if (Release) {
    Route Rt = Mine.back();
    Mine.pop_back();
    size_t Cells = 0;
    Backend.run(Tid, [&](TxnContext &Tx) {
      Cells = 0;
      forEachCell(Rt, [&](unsigned X, unsigned Y) {
        Tx.store(cell(X, Y), 0);
        ++Cells;
      });
    });
    CellsHeld.fetch_sub((int64_t)Cells, std::memory_order_relaxed);
    return;
  }
  Route Rt;
  Rt.Sx = (unsigned)R.nextBounded(GridDim);
  Rt.Sy = (unsigned)R.nextBounded(GridDim);
  Rt.Dx = (unsigned)R.nextBounded(GridDim);
  Rt.Dy = (unsigned)R.nextBounded(GridDim);
  Rt.Id = ((uint64_t)(Tid + 1) << 48) | R.next() >> 32;
  bool Ok = false;
  size_t Cells = 0;
  Backend.run(Tid, [&](TxnContext &Tx) {
    // First pass: the route must be entirely free (reads only). A taken
    // cell turns this into a failed, read-only routing attempt.
    bool Free = true;
    forEachCell(Rt, [&](unsigned X, unsigned Y) {
      if (Tx.load(cell(X, Y)) != 0)
        Free = false;
    });
    Ok = Free;
    Cells = 0;
    if (!Free)
      return;
    forEachCell(Rt, [&](unsigned X, unsigned Y) {
      Tx.store(cell(X, Y), Rt.Id);
      ++Cells;
    });
  });
  if (Ok) {
    Mine.push_back(Rt);
    CellsHeld.fetch_add((int64_t)Cells, std::memory_order_relaxed);
  }
}

std::string LabyrinthWorkload::verify(unsigned NumThreads,
                                      uint64_t OpsDone) {
  int64_t Occupied = 0;
  for (unsigned Y = 0; Y != GridDim; ++Y)
    for (unsigned X = 0; X != GridDim; ++X)
      if (*cell(X, Y) != 0)
        ++Occupied;
  int64_t Held = CellsHeld.load(std::memory_order_relaxed);
  if (Occupied != Held)
    return "grid holds " + std::to_string(Occupied) +
           " claimed cells, ledger says " + std::to_string(Held);
  // Every claimed route must be wholly present with its own id.
  for (const auto &Stack : Claimed)
    for (const Route &Rt : Stack) {
      bool Intact = true;
      forEachCell(Rt, [&](unsigned X, unsigned Y) {
        if (*cell(X, Y) != Rt.Id)
          Intact = false;
      });
      if (!Intact)
        return "a committed route is not wholly present";
    }
  return std::string();
}
