//===- workloads/Registry.cpp - Workload catalogue ------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/Bank.h"
#include "workloads/BTree.h"
#include "workloads/Genome.h"
#include "workloads/Intruder.h"
#include "workloads/KMeans.h"
#include "workloads/Labyrinth.h"
#include "workloads/Ssca2.h"
#include "workloads/Vacation.h"

using namespace crafty;

Workload::~Workload() = default;

const char *crafty::workloadKindName(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::BankHigh:
    return "bank-high";
  case WorkloadKind::BankMedium:
    return "bank-medium";
  case WorkloadKind::BankNone:
    return "bank-none";
  case WorkloadKind::BTreeInsert:
    return "btree-insert";
  case WorkloadKind::BTreeMixed:
    return "btree-mixed";
  case WorkloadKind::KMeansHigh:
    return "kmeans-high";
  case WorkloadKind::KMeansLow:
    return "kmeans-low";
  case WorkloadKind::VacationHigh:
    return "vacation-high";
  case WorkloadKind::VacationLow:
    return "vacation-low";
  case WorkloadKind::Labyrinth:
    return "labyrinth";
  case WorkloadKind::Ssca2:
    return "ssca2";
  case WorkloadKind::Genome:
    return "genome";
  case WorkloadKind::Intruder:
    return "intruder";
  }
  CRAFTY_UNREACHABLE("bad workload kind");
}

std::unique_ptr<Workload> crafty::createWorkload(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::BankHigh:
    return std::make_unique<BankWorkload>(BankContention::High);
  case WorkloadKind::BankMedium:
    return std::make_unique<BankWorkload>(BankContention::Medium);
  case WorkloadKind::BankNone:
    return std::make_unique<BankWorkload>(BankContention::None);
  case WorkloadKind::BTreeInsert:
    return std::make_unique<BTreeWorkload>(BTreeMix::InsertOnly);
  case WorkloadKind::BTreeMixed:
    return std::make_unique<BTreeWorkload>(BTreeMix::Mixed);
  case WorkloadKind::KMeansHigh:
    return std::make_unique<KMeansWorkload>(/*HighContention=*/true);
  case WorkloadKind::KMeansLow:
    return std::make_unique<KMeansWorkload>(/*HighContention=*/false);
  case WorkloadKind::VacationHigh:
    return std::make_unique<VacationWorkload>(/*HighContention=*/true);
  case WorkloadKind::VacationLow:
    return std::make_unique<VacationWorkload>(/*HighContention=*/false);
  case WorkloadKind::Labyrinth:
    return std::make_unique<LabyrinthWorkload>();
  case WorkloadKind::Ssca2:
    return std::make_unique<Ssca2Workload>();
  case WorkloadKind::Genome:
    return std::make_unique<GenomeWorkload>();
  case WorkloadKind::Intruder:
    return std::make_unique<IntruderWorkload>();
  }
  CRAFTY_UNREACHABLE("bad workload kind");
}
