//===- workloads/BTree.cpp - B+tree microbenchmark ------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/BTree.h"

#include <string>

using namespace crafty;

void BTreeWorkload::setup(PMemPool &Pool, unsigned NumThreads) {
  Tree.emplace(Pool);
  NetInserted.store(0, std::memory_order_relaxed);
}

void BTreeWorkload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  uint64_t Key = R.nextBounded(KeySpace);
  unsigned Dice =
      Mix == BTreeMix::InsertOnly ? 0 : (unsigned)R.nextBounded(100);
  // Mixed: 60% insert, 20% lookup, 20% remove.
  if (Dice < 60) {
    if (Tree->insert(Backend, Tid, Key, Key * 2 + 1))
      NetInserted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Dice < 80) {
    (void)Tree->lookup(Backend, Tid, Key);
    return;
  }
  if (Tree->remove(Backend, Tid, Key))
    NetInserted.fetch_sub(1, std::memory_order_relaxed);
}

std::string BTreeWorkload::verify(unsigned NumThreads, uint64_t OpsDone) {
  std::string Err;
  uint64_t Keys = Tree->auditCount(Err, [](uint64_t Key, uint64_t Val) {
    return Val == Key * 2 + 1;
  });
  if (!Err.empty())
    return Err;
  auto Net = NetInserted.load(std::memory_order_relaxed);
  if ((int64_t)Keys != Net)
    return "tree holds " + std::to_string(Keys) + " keys, ledger says " +
           std::to_string(Net);
  return std::string();
}
