//===- workloads/Intruder.cpp - intruder packet kernel --------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Intruder.h"

#include <string>
#include <vector>

using namespace crafty;

void IntruderWorkload::setup(PMemPool &Pool, unsigned NumThreads) {
  QueueHead = static_cast<uint64_t *>(Pool.carve(CacheLineBytes));
  uint64_t Zero = 0;
  Pool.persistDirect(QueueHead, &Zero, sizeof(Zero));
  size_t Bytes = NumFlows * BlockWords * 8;
  Flows = static_cast<uint64_t *>(Pool.carve(Bytes));
  std::vector<uint8_t> Z(Bytes, 0);
  Pool.persistDirect(Flows, Z.data(), Bytes);
}

void IntruderWorkload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  // Transaction 1: pop a packet from the shared queue (every thread hits
  // the same head word).
  uint64_t Packet = 0;
  Backend.run(Tid, [&](TxnContext &Tx) {
    Packet = Tx.load(QueueHead);
    Tx.store(QueueHead, Packet + 1);
  });
  // The packet id determines its flow and size deterministically, as if
  // read from the queue slot.
  uint64_t Flow = (Packet * 0x9e3779b97f4a7c15ull >> 20) % NumFlows;
  uint64_t PacketBytes = 64 + (Packet % 1400);
  // Transaction 2: reassembly bookkeeping for the packet's flow. Larger
  // packets also update the flow's size histogram word, matching the
  // benchmark's ~1.8 writes per transaction profile (Table 1).
  uint64_t *Block = flowBlock(Flow);
  bool BigPacket = PacketBytes > 550;
  Backend.run(Tid, [&](TxnContext &Tx) {
    uint64_t Seen = Tx.load(&Block[0]) + 1;
    Tx.store(&Block[1], Tx.load(&Block[1]) + PacketBytes);
    if (BigPacket)
      Tx.store(&Block[3], Tx.load(&Block[3]) + 1);
    if (Seen == FragmentsPerFlow) {
      // Flow complete: hand to the detector and reset.
      Tx.store(&Block[2], Tx.load(&Block[2]) + 1);
      Tx.store(&Block[0], 0);
      return;
    }
    Tx.store(&Block[0], Seen);
  });
}

std::string IntruderWorkload::verify(unsigned NumThreads, uint64_t OpsDone) {
  if (*QueueHead != OpsDone)
    return "queue head " + std::to_string(*QueueHead) +
           " != operations " + std::to_string(OpsDone);
  uint64_t Fragments = 0;
  for (size_t F = 0; F != NumFlows; ++F) {
    const uint64_t *Block = flowBlock(F);
    Fragments += Block[0] + Block[2] * FragmentsPerFlow;
  }
  if (Fragments != OpsDone)
    return "reassembled fragments " + std::to_string(Fragments) +
           " != operations " + std::to_string(OpsDone);
  return std::string();
}
