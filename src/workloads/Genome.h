//===- workloads/Genome.h - genome segment-dedup kernel --------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sequence-assembly kernel reproducing STAMP genome's dominant
/// transactional phase: deduplicating DNA segments through a shared hash
/// set. Inserting a new segment writes its key and occurrence count (~2
/// writes, Table 1 reports 2.1); duplicate segments -- increasingly
/// common as the table fills -- update only the count or are read-only.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_GENOME_H
#define CRAFTY_WORKLOADS_GENOME_H

#include "workloads/Workload.h"

#include <atomic>

namespace crafty {

class GenomeWorkload final : public Workload {
public:
  const char *name() const override { return "genome"; }
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr size_t TableSlots = 1 << 17;
  static constexpr unsigned SegmentPool = 1 << 15; // Distinct segments.
  static constexpr unsigned MaxProbe = 64;

private:
  /// Two words per slot: [0] segment key (+1), [1] occurrence count.
  uint64_t *slot(size_t I) { return Table + 2 * I; }

  uint64_t *Table = nullptr;
  std::atomic<uint64_t> DistinctInserted{0};
  std::atomic<uint64_t> TotalCounted{0};
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_GENOME_H
