//===- workloads/Ssca2.cpp - ssca2 graph kernel ---------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Ssca2.h"

#include <string>
#include <vector>

using namespace crafty;

void Ssca2Workload::setup(PMemPool &Pool, unsigned NumThreads) {
  size_t Bytes = (size_t)NumNodes * BlockWords * 8;
  Adjacency = static_cast<uint64_t *>(Pool.carve(Bytes));
  std::vector<uint8_t> Zero(Bytes, 0);
  Pool.persistDirect(Adjacency, Zero.data(), Bytes);
  EdgesAdded.store(0, std::memory_order_relaxed);
}

void Ssca2Workload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  unsigned U = (unsigned)R.nextBounded(NumNodes);
  unsigned V = (unsigned)R.nextBounded(NumNodes);
  uint64_t *Block = nodeBlock(U);
  bool Added = false;
  Backend.run(Tid, [&](TxnContext &Tx) {
    uint64_t Degree = Tx.load(&Block[0]);
    Added = false;
    if (Degree >= AdjCapacity)
      return; // Saturated: read-only.
    Tx.store(&Block[1 + Degree], (uint64_t)V + 1);
    Tx.store(&Block[0], Degree + 1);
    Added = true;
  });
  if (Added)
    EdgesAdded.fetch_add(1, std::memory_order_relaxed);
}

std::string Ssca2Workload::verify(unsigned NumThreads, uint64_t OpsDone) {
  uint64_t Total = 0;
  for (unsigned N = 0; N != NumNodes; ++N) {
    const uint64_t *Block = nodeBlock(N);
    uint64_t Degree = Block[0];
    if (Degree > AdjCapacity)
      return "node degree exceeds capacity";
    for (uint64_t I = 0; I != Degree; ++I)
      if (Block[1 + I] == 0)
        return "missing neighbor below the recorded degree";
    Total += Degree;
  }
  uint64_t Ledger = EdgesAdded.load(std::memory_order_relaxed);
  if (Total != Ledger)
    return "graph holds " + std::to_string(Total) + " edges, ledger says " +
           std::to_string(Ledger);
  return std::string();
}
