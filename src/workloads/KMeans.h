//===- workloads/KMeans.h - kmeans clustering kernel -----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A kmeans kernel reproducing the STAMP benchmark's transactional
/// structure: each transaction adds one point to its nearest centroid's
/// persistent accumulator (the per-dimension sums plus the membership
/// count -- 25 writes with 24 dimensions, matching Table 1). Contention
/// is set by the cluster count: few clusters (high) make concurrent
/// updates collide; many clusters (low) spread them out, as in Figure
/// 8(a)/(b).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_KMEANS_H
#define CRAFTY_WORKLOADS_KMEANS_H

#include "workloads/Workload.h"

#include <vector>

namespace crafty {

class KMeansWorkload final : public Workload {
public:
  /// \p HighContention selects the 4-cluster (vs 40-cluster) config.
  explicit KMeansWorkload(bool HighContention)
      : NumClusters(HighContention ? 4 : 40), High(HighContention) {}

  const char *name() const override {
    return High ? "kmeans (high contention)" : "kmeans (low contention)";
  }
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr unsigned Dims = 24;
  static constexpr unsigned NumPoints = 4096;

private:
  /// Accumulator layout per cluster: [count, sum[0..Dims)], one aligned
  /// block per cluster.
  uint64_t *clusterBlock(unsigned C) {
    return Accums + (size_t)C * BlockWords;
  }
  static constexpr size_t BlockWords = 32; // 25 used; cache-line padded.

  unsigned NumClusters;
  bool High;
  uint64_t *Accums = nullptr;
  std::vector<uint32_t> Points;    // NumPoints x Dims coordinates.
  std::vector<uint32_t> Centroids; // NumClusters x Dims coordinates.
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_KMEANS_H
