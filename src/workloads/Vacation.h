//===- workloads/Vacation.h - vacation reservation kernel ------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A travel-reservation kernel reproducing STAMP vacation's transactional
/// structure: each transaction books a handful of resources (cars,
/// flights, rooms) for a customer, decrementing availability and charging
/// the customer. The high-contention configuration books more resources
/// per transaction from a small hot range; the low-contention one books
/// fewer across the whole table (Figure 8(c)/(d); Table 1 reports 8 and
/// 5.5 writes per transaction respectively).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_VACATION_H
#define CRAFTY_WORKLOADS_VACATION_H

#include "workloads/Workload.h"

namespace crafty {

class VacationWorkload final : public Workload {
public:
  explicit VacationWorkload(bool HighContention) : High(HighContention) {}

  const char *name() const override {
    return High ? "vacation (high contention)"
                : "vacation (low contention)";
  }
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr unsigned NumTables = 3; // Cars, flights, rooms.
  static constexpr unsigned RowsPerTable = 1024;
  static constexpr unsigned NumCustomers = 4096;
  static constexpr uint64_t InitialFree = 1u << 30;
  static constexpr uint64_t Price = 50;

private:
  // One cache line per row: [0] free seats, [1] price.
  uint64_t *rowWord(unsigned Table, unsigned Row) {
    return Resources +
           ((size_t)Table * RowsPerTable + Row) * (CacheLineBytes / 8);
  }
  // One cache line per customer: [0] balance(signed), [1] reservations.
  uint64_t *customerWord(unsigned C) {
    return Customers + (size_t)C * (CacheLineBytes / 8);
  }

  bool High;
  uint64_t *Resources = nullptr;
  uint64_t *Customers = nullptr;
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_VACATION_H
