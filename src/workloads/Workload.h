//===- workloads/Workload.h - Benchmark workload interface -----*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload interface used by the evaluation harness and benches. A
/// workload lays out persistent data in the pool at setup, then worker
/// threads repeatedly call runOp, each op issuing one (or more)
/// persistent transactions through the backend-generic PtmBackend
/// interface -- the same methodology as the paper's Section 7.1, where
/// every configuration runs identical benchmark code.
///
/// The catalogue mirrors the paper's evaluated programs: the bank and
/// B+tree microbenchmarks and self-contained kernels reproducing the
/// transactional structure of the STAMP benchmarks (see DESIGN.md for the
/// substitution rationale). Table 1's writes-per-transaction profile is
/// the calibration target for each kernel.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_WORKLOAD_H
#define CRAFTY_WORKLOADS_WORKLOAD_H

#include "core/Ptm.h"
#include "pmem/PMemPool.h"
#include "support/Rng.h"

#include <memory>
#include <string>

namespace crafty {

/// A benchmark workload; one instance drives all threads of one run.
class Workload {
public:
  virtual ~Workload();

  /// Display name, e.g. "bank (high contention)".
  virtual const char *name() const = 0;

  /// Bytes of allocator arena each thread needs (0 if none).
  virtual size_t arenaBytesPerThread() const { return 0; }

  /// Lays out persistent data; called once before threads start.
  virtual void setup(PMemPool &Pool, unsigned NumThreads) = 0;

  /// Executes one operation (one or more persistent transactions) on
  /// behalf of worker \p Tid. \p R is the worker's private generator.
  virtual void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) = 0;

  /// Checks workload invariants after a run (and after quiesce); returns
  /// an empty string on success, else a description of the violation.
  virtual std::string verify(unsigned NumThreads, uint64_t OpsDone) {
    return std::string();
  }
};

/// The evaluated workload configurations, one per figure/panel.
enum class WorkloadKind : uint8_t {
  BankHigh,       // Fig. 6(a): 1024 accounts.
  BankMedium,     // Fig. 6(b): 4096 accounts.
  BankNone,       // Fig. 6(c): partitioned accounts.
  BTreeInsert,    // Fig. 7(a): insert only.
  BTreeMixed,     // Fig. 7(b): lookup/insert/remove.
  KMeansHigh,     // Fig. 8(a).
  KMeansLow,      // Fig. 8(b).
  VacationHigh,   // Fig. 8(c).
  VacationLow,    // Fig. 8(d).
  Labyrinth,      // Fig. 8(e).
  Ssca2,          // Fig. 8(f).
  Genome,         // Fig. 8(g).
  Intruder,       // Fig. 8(h).
};

inline constexpr WorkloadKind AllWorkloads[] = {
    WorkloadKind::BankHigh,     WorkloadKind::BankMedium,
    WorkloadKind::BankNone,     WorkloadKind::BTreeInsert,
    WorkloadKind::BTreeMixed,   WorkloadKind::KMeansHigh,
    WorkloadKind::KMeansLow,    WorkloadKind::VacationHigh,
    WorkloadKind::VacationLow,  WorkloadKind::Labyrinth,
    WorkloadKind::Ssca2,        WorkloadKind::Genome,
    WorkloadKind::Intruder,
};

const char *workloadKindName(WorkloadKind Kind);

/// Creates a workload instance of the requested kind.
std::unique_ptr<Workload> createWorkload(WorkloadKind Kind);

} // namespace crafty

#endif // CRAFTY_WORKLOADS_WORKLOAD_H
