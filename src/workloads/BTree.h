//===- workloads/BTree.h - B+tree microbenchmark ---------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The B+tree microbenchmark (paper Section 7.1, adapted from Zardoshti
/// et al.): transactions insert into / look up / remove from a persistent
/// B+tree (pds/DurableBTree.h) whose every node access goes through the
/// transactional API. Two variants match Figure 7: insert-only, and a
/// mixed lookup/insert/remove workload.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_BTREE_H
#define CRAFTY_WORKLOADS_BTREE_H

#include "pds/DurableBTree.h"
#include "workloads/Workload.h"

#include <atomic>
#include <optional>

namespace crafty {

/// Operation mix of the B+tree microbenchmark (Figure 7).
enum class BTreeMix : uint8_t { InsertOnly, Mixed };

class BTreeWorkload final : public Workload {
public:
  explicit BTreeWorkload(BTreeMix Mix) : Mix(Mix) {}

  const char *name() const override {
    return Mix == BTreeMix::InsertOnly ? "B+tree (insert only)"
                                       : "B+tree (mixed ops)";
  }
  size_t arenaBytesPerThread() const override { return 8 << 20; }
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr uint64_t KeySpace = 1 << 20;

private:
  BTreeMix Mix;
  std::optional<DurableBTree> Tree;
  std::atomic<int64_t> NetInserted{0};
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_BTREE_H
