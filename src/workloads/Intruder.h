//===- workloads/Intruder.h - intruder packet kernel -----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A packet-processing kernel reproducing STAMP intruder's transactional
/// structure: tiny transactions popping packets off one shared queue (a
/// single hot word -- the benchmark's notorious contention point)
/// followed by a fragment-reassembly insertion into a flow table.
/// Averages ~1.8 writes per transaction (Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_INTRUDER_H
#define CRAFTY_WORKLOADS_INTRUDER_H

#include "workloads/Workload.h"

#include <atomic>

namespace crafty {

class IntruderWorkload final : public Workload {
public:
  const char *name() const override { return "intruder"; }
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr size_t NumFlows = 1 << 12;
  static constexpr unsigned FragmentsPerFlow = 6;

private:
  /// Per flow: [0] fragments seen, [1] bytes, [2] completions,
  /// [3] big-packet count.
  uint64_t *flowBlock(size_t F) { return Flows + F * BlockWords; }
  static constexpr size_t BlockWords = 8;

  uint64_t *QueueHead = nullptr; // The hot word.
  uint64_t *Flows = nullptr;
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_INTRUDER_H
