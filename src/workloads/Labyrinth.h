//===- workloads/Labyrinth.h - labyrinth routing kernel --------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A maze-routing kernel reproducing STAMP labyrinth's transactional
/// structure: each transaction claims every cell of a long path through a
/// shared grid (L-shaped routes averaging ~170 cells, matching Table 1's
/// ~177 writes per transaction), aborting the claim if any cell is taken.
/// To keep the grid from saturating over long runs, operations release
/// previously claimed paths with the same probability they claim new ones
/// (a steady-state variation of the claim-only original; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_LABYRINTH_H
#define CRAFTY_WORKLOADS_LABYRINTH_H

#include "workloads/Workload.h"

#include <atomic>
#include <vector>

namespace crafty {

class LabyrinthWorkload final : public Workload {
public:
  const char *name() const override { return "labyrinth"; }
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr unsigned GridDim = 256;

private:
  struct Route {
    unsigned Sx, Sy, Dx, Dy;
    uint64_t Id;
  };

  uint64_t *cell(unsigned X, unsigned Y) {
    return Grid + (size_t)Y * GridDim + X;
  }
  /// Visits each cell of the L-shaped route (horizontal leg at Sy, then
  /// vertical leg at Dx) exactly once.
  template <typename Fn> static void forEachCell(const Route &Rt, Fn F) {
    int StepX = Rt.Dx >= Rt.Sx ? 1 : -1;
    for (unsigned X = Rt.Sx;; X += StepX) {
      F(X, Rt.Sy);
      if (X == Rt.Dx)
        break;
    }
    int StepY = Rt.Dy >= Rt.Sy ? 1 : -1;
    for (unsigned Y = Rt.Sy; Y != Rt.Dy;) {
      Y += StepY;
      F(Rt.Dx, Y);
    }
  }

  uint64_t *Grid = nullptr;
  /// Per-thread stacks of claimed routes (only the owner touches its own).
  std::vector<std::vector<Route>> Claimed;
  std::atomic<int64_t> CellsHeld{0};
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_LABYRINTH_H
