//===- workloads/KMeans.cpp - kmeans clustering kernel --------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/KMeans.h"

#include <string>

using namespace crafty;

void KMeansWorkload::setup(PMemPool &Pool, unsigned NumThreads) {
  Accums = static_cast<uint64_t *>(
      Pool.carve(NumClusters * BlockWords * 8, 256));
  for (unsigned C = 0; C != NumClusters; ++C)
    for (unsigned W = 0; W != BlockWords; ++W) {
      uint64_t Z = 0;
      Pool.persistDirect(&clusterBlock(C)[W], &Z, sizeof(Z));
    }
  // Deterministic synthetic data: points clustered around the centroids.
  Rng R(12345);
  Centroids.resize(NumClusters * Dims);
  for (auto &V : Centroids)
    V = (uint32_t)R.nextBounded(1 << 16);
  Points.resize((size_t)NumPoints * Dims);
  for (unsigned P = 0; P != NumPoints; ++P) {
    unsigned Home = (unsigned)R.nextBounded(NumClusters);
    for (unsigned D = 0; D != Dims; ++D)
      Points[(size_t)P * Dims + D] =
          Centroids[(size_t)Home * Dims + D] + (uint32_t)R.nextBounded(512);
  }
}

void KMeansWorkload::runOp(PtmBackend &Backend, unsigned Tid, Rng &R) {
  unsigned P = (unsigned)R.nextBounded(NumPoints);
  const uint32_t *Pt = &Points[(size_t)P * Dims];
  // Nearest centroid: volatile computation, outside the transaction (the
  // STAMP kernel computes assignments from a read-only snapshot too).
  unsigned Best = 0;
  uint64_t BestDist = ~0ull;
  for (unsigned C = 0; C != NumClusters; ++C) {
    uint64_t Dist = 0;
    const uint32_t *Cen = &Centroids[(size_t)C * Dims];
    for (unsigned D = 0; D != Dims; ++D) {
      int64_t Diff = (int64_t)Pt[D] - (int64_t)Cen[D];
      Dist += (uint64_t)(Diff * Diff);
    }
    if (Dist < BestDist) {
      BestDist = Dist;
      Best = C;
    }
  }
  uint64_t *Block = clusterBlock(Best);
  Backend.run(Tid, [&](TxnContext &Tx) {
    Tx.store(&Block[0], Tx.load(&Block[0]) + 1);
    for (unsigned D = 0; D != Dims; ++D)
      Tx.store(&Block[1 + D], Tx.load(&Block[1 + D]) + Pt[D]);
  });
}

std::string KMeansWorkload::verify(unsigned NumThreads, uint64_t OpsDone) {
  uint64_t Members = 0;
  for (unsigned C = 0; C != NumClusters; ++C)
    Members += clusterBlock(C)[0];
  if (Members != OpsDone)
    return "kmeans membership " + std::to_string(Members) +
           " != operations " + std::to_string(OpsDone);
  return std::string();
}
