//===- workloads/Ssca2.h - ssca2 graph kernel ------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A graph-construction kernel reproducing STAMP ssca2's transactional
/// structure: tiny transactions appending one edge to a node's adjacency
/// list (two writes -- Table 1 reports 2.0), with very low contention
/// because endpoints are drawn uniformly from a large node set.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_WORKLOADS_SSCA2_H
#define CRAFTY_WORKLOADS_SSCA2_H

#include "workloads/Workload.h"

#include <atomic>

namespace crafty {

class Ssca2Workload final : public Workload {
public:
  const char *name() const override { return "ssca2"; }
  void setup(PMemPool &Pool, unsigned NumThreads) override;
  void runOp(PtmBackend &Backend, unsigned Tid, Rng &R) override;
  std::string verify(unsigned NumThreads, uint64_t OpsDone) override;

  static constexpr unsigned NumNodes = 1 << 14;
  static constexpr unsigned AdjCapacity = 22;

private:
  /// Per node: [0] degree, [1 .. AdjCapacity] neighbors (stored + 1).
  uint64_t *nodeBlock(unsigned N) {
    return Adjacency + (size_t)N * BlockWords;
  }
  static constexpr size_t BlockWords = 24; // 64-byte multiple.

  uint64_t *Adjacency = nullptr;
  std::atomic<uint64_t> EdgesAdded{0};
};

} // namespace crafty

#endif // CRAFTY_WORKLOADS_SSCA2_H
