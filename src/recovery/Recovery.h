//===- recovery/Recovery.h - Crash-recovery observer -----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recovery observer (paper Section 5). The paper describes the
/// algorithm but leaves its implementation and evaluation to future work;
/// this module implements and tests it.
///
/// Given a crash image of a Crafty-formatted pool, recovery:
///
///  1. Scans each thread's circular undo log, decoding entries through
///     the wraparound-bit scheme (log/LogEntry.h). A position holds a
///     complete current-pass entry, a complete previous-pass entry, or a
///     torn entry (wraparound bits disagree). A *fully persisted
///     sequence* is a maximal run of complete data entries concluded by a
///     complete LOGGED/COMMITTED tag (which carries the sequence
///     timestamp).
///
///  2. Computes the rollback threshold: the minimum, over threads with at
///     least one sequence, of each thread's newest sequence timestamp --
///     each thread's last transaction must be rolled back because its
///     writes may be only partially persisted (Crafty flushes without
///     draining), and the Section 5.1 closure rule ("roll back every
///     sequence with a timestamp >= that of any rolled-back sequence")
///     makes the set upward closed.
///
///  3. Rolls back every sequence with timestamp >= threshold, newest
///     first (sequences with equal timestamps -- an SGL section's chunks
///     -- are unwound in reverse log order), applying each sequence's
///     ⟨addr, oldValue⟩ entries in reverse. Sequences whose transactions
///     never performed writes (abandoned Log phases, chunks whose writes
///     did not persist) roll back as no-ops by construction: at their
///     point in the rollback order, memory already holds the logged old
///     values. The recovered state is the consistent transaction
///     snapshot at the threshold.
///
/// Logged addresses are virtual addresses of the original mapping; they
/// are translated through PoolHeader::MappedBase, so recovery works both
/// in-place on a crashed PMemPool and on a relocated image buffer.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_RECOVERY_RECOVERY_H
#define CRAFTY_RECOVERY_RECOVERY_H

#include "log/PoolLayout.h"
#include "pmem/PMemPool.h"
#include "support/FunctionRef.h"

#include <cstdint>
#include <vector>

namespace crafty {

/// One fully persisted sequence found in a thread's log.
struct RecoveredSequence {
  unsigned ThreadId = 0;
  uint64_t Ts = 0;
  /// Slot of the concluding tag entry.
  size_t TagSlot = 0;
  bool TagIsCommitted = false;
  /// ⟨virtual address, old value⟩ in the order they were logged.
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
};

/// Summary of a recovery run.
struct RecoveryReport {
  bool HeaderValid = false;
  uint64_t ThresholdTs = 0;
  size_t SequencesFound = 0;
  size_t SequencesRolledBack = 0;
  size_t WordsRestored = 0;
};

/// Scans and repairs a Crafty pool image after a (simulated) crash.
class RecoveryObserver {
public:
  /// \p Base points at a pool image of \p Bytes bytes whose offset zero
  /// holds a PoolHeader.
  RecoveryObserver(uint8_t *Base, size_t Bytes);

  /// True if the image carries a valid pool header.
  bool valid() const { return HeaderOk; }

  /// Scans all logs and returns every fully persisted sequence, in no
  /// particular order. Analysis only; does not modify the image.
  std::vector<RecoveredSequence> scanSequences() const;

  /// Full recovery: scan, compute the threshold, roll back, and zero the
  /// logs so a restarted runtime begins with clean wraparound state.
  /// Writes go through \p WriteWord so callers control persistence.
  RecoveryReport
  recover(FunctionRef<void(uint64_t *Addr, uint64_t Val)> WriteWord);

  /// Convenience: recovery in place on a crashed pool (after
  /// PMemPool::crash()), persisting every repair.
  static RecoveryReport recoverPool(PMemPool &Pool);

  /// Convenience: recovery on a detached image buffer (plain stores).
  static RecoveryReport recoverImage(std::vector<uint8_t> &Image);

private:
  std::vector<RecoveredSequence> scanThread(unsigned ThreadId) const;
  void zeroLogs(FunctionRef<void(uint64_t *Addr, uint64_t Val)> WriteWord);

  uint8_t *Base;
  size_t Bytes;
  bool HeaderOk = false;
  PoolHeader Header;
};

} // namespace crafty

#endif // CRAFTY_RECOVERY_RECOVERY_H
