//===- recovery/Recovery.cpp - Crash-recovery observer --------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "recovery/Recovery.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

using namespace crafty;

RecoveryObserver::RecoveryObserver(uint8_t *Base, size_t Bytes)
    : Base(Base), Bytes(Bytes) {
  if (Bytes < sizeof(PoolHeader))
    return;
  std::memcpy(&Header, Base, sizeof(Header));
  if (Header.Magic != PoolMagic)
    return;
  size_t LogsEnd = Header.LogsOffset +
                   (size_t)Header.NumThreads *
                       (size_t)Header.LogEntriesPerThread * 16;
  if (LogsEnd > Bytes || Header.LogEntriesPerThread == 0 ||
      (Header.LogEntriesPerThread & (Header.LogEntriesPerThread - 1)) != 0)
    return;
  HeaderOk = true;
}

std::vector<RecoveredSequence>
RecoveryObserver::scanThread(unsigned ThreadId) const {
  UndoLogRegion R = logRegionFor(Base, Header, ThreadId);
  size_t N = R.NumEntries;
  std::vector<DecodedEntry> D(N);
  for (size_t I = 0; I != N; ++I)
    D[I] = decodeEntry(*R.addrWordAt(I), *R.valWordAt(I));

  std::vector<RecoveredSequence> Out;
  for (size_t T = 0; T != N; ++T) {
    if (!D[T].isTag())
      continue;
    RecoveredSequence Seq;
    Seq.ThreadId = ThreadId;
    Seq.Ts = D[T].Ts;
    Seq.TagSlot = T;
    Seq.TagIsCommitted = D[T].K == DecodedEntry::Kind::Committed;
    // Walk backward over the sequence's data entries. The wraparound
    // pass bit flips when the walk crosses from slot 0 to slot N-1.
    unsigned ExpPass = D[T].Pass;
    size_t Cur = T;
    std::vector<std::pair<uint64_t, uint64_t>> Rev;
    for (size_t Step = 1; Step != N; ++Step) {
      if (Cur == 0)
        ExpPass ^= 1;
      size_t Prev = (Cur + N - 1) & (N - 1);
      const DecodedEntry &E = D[Prev];
      if (E.K != DecodedEntry::Kind::Data || E.Pass != ExpPass)
        break; // Tag, torn, never-written, or older-pass entry.
      Rev.emplace_back(E.Addr, E.Value);
      Cur = Prev;
    }
    Seq.Entries.assign(Rev.rbegin(), Rev.rend());
    Out.push_back(std::move(Seq));
  }
  return Out;
}

std::vector<RecoveredSequence> RecoveryObserver::scanSequences() const {
  std::vector<RecoveredSequence> All;
  if (!HeaderOk)
    return All;
  for (unsigned T = 0; T != Header.NumThreads; ++T) {
    std::vector<RecoveredSequence> S = scanThread(T);
    All.insert(All.end(), std::make_move_iterator(S.begin()),
               std::make_move_iterator(S.end()));
  }
  return All;
}

namespace {
/// Orders the tag slots of an equal-timestamp group (one SGL section's
/// chunks) chronologically. The group spans less than half the circular
/// log, so the largest circular gap between occupied slots separates the
/// newest chunk from the oldest one.
std::vector<size_t> chronologicalOrder(std::vector<size_t> Slots,
                                       size_t LogEntries) {
  std::sort(Slots.begin(), Slots.end());
  size_t M = Slots.size();
  if (M <= 1)
    return Slots;
  size_t BestGap = 0, BestIdx = 0;
  for (size_t I = 0; I != M; ++I) {
    size_t Next = Slots[(I + 1) % M];
    size_t Gap = (Next + LogEntries - Slots[I]) % LogEntries;
    if (Gap > BestGap) {
      BestGap = Gap;
      BestIdx = I;
    }
  }
  std::vector<size_t> Order;
  Order.reserve(M);
  for (size_t I = 0; I != M; ++I)
    Order.push_back(Slots[(BestIdx + 1 + I) % M]);
  return Order;
}
} // namespace

RecoveryReport RecoveryObserver::recover(
    FunctionRef<void(uint64_t *Addr, uint64_t Val)> WriteWord) {
  RecoveryReport Rep;
  Rep.HeaderValid = HeaderOk;
  if (!HeaderOk)
    return Rep;

  std::vector<RecoveredSequence> All = scanSequences();
  Rep.SequencesFound = All.size();

  // Rollback threshold (Section 5.1): each thread's newest sequence must
  // be rolled back because its writes may be only partially persisted;
  // the closure rule ("roll back everything with ts >= any rolled-back
  // ts") makes the set everything at or above the minimum of those.
  uint64_t Threshold = ~0ull;
  bool Any = false;
  for (unsigned T = 0; T != Header.NumThreads; ++T) {
    uint64_t MaxTs = 0;
    bool Has = false;
    for (const RecoveredSequence &S : All) {
      if (S.ThreadId != T)
        continue;
      Has = true;
      MaxTs = std::max(MaxTs, S.Ts);
    }
    if (Has) {
      Any = true;
      Threshold = std::min(Threshold, MaxTs);
    }
  }
  if (!Any) {
    zeroLogs(WriteWord);
    return Rep;
  }
  Rep.ThresholdTs = Threshold;

  std::vector<const RecoveredSequence *> Roll;
  for (const RecoveredSequence &S : All)
    if (S.Ts >= Threshold)
      Roll.push_back(&S);

  // Newest first. Timestamps are unique across threads except within one
  // SGL section (one thread); equal-timestamp chunks unwind in reverse
  // chronological log order.
  std::sort(Roll.begin(), Roll.end(),
            [](const RecoveredSequence *A, const RecoveredSequence *B) {
              return A->Ts > B->Ts;
            });
  std::vector<const RecoveredSequence *> Ordered;
  Ordered.reserve(Roll.size());
  for (size_t I = 0; I != Roll.size();) {
    size_t J = I;
    while (J != Roll.size() && Roll[J]->Ts == Roll[I]->Ts)
      ++J;
    if (J - I == 1) {
      Ordered.push_back(Roll[I]);
    } else {
      std::vector<size_t> Slots;
      for (size_t K = I; K != J; ++K)
        Slots.push_back(Roll[K]->TagSlot);
      std::vector<size_t> Chrono =
          chronologicalOrder(std::move(Slots), Header.LogEntriesPerThread);
      for (auto It = Chrono.rbegin(); It != Chrono.rend(); ++It)
        for (size_t K = I; K != J; ++K)
          if (Roll[K]->TagSlot == *It)
            Ordered.push_back(Roll[K]);
    }
    I = J;
  }

  for (const RecoveredSequence *S : Ordered) {
    ++Rep.SequencesRolledBack;
    for (auto It = S->Entries.rbegin(); It != S->Entries.rend(); ++It) {
      uint64_t Off = It->first - Header.MappedBase;
      if (Off >= Bytes || (Off & 7) != 0)
        continue; // Tolerate a corrupt entry rather than abort recovery.
      WriteWord(reinterpret_cast<uint64_t *>(Base + Off), It->second);
      ++Rep.WordsRestored;
    }
  }

  zeroLogs(WriteWord);
  return Rep;
}

void RecoveryObserver::zeroLogs(
    FunctionRef<void(uint64_t *Addr, uint64_t Val)> WriteWord) {
  // A restarted runtime must observe clean wraparound state: stale
  // entries from before the crash would otherwise alias future passes.
  for (unsigned T = 0; T != Header.NumThreads; ++T) {
    UndoLogRegion R = logRegionFor(Base, Header, T);
    for (size_t S = 0; S != R.NumEntries; ++S) {
      WriteWord(R.addrWordAt(S), 0);
      WriteWord(R.valWordAt(S), 0);
    }
  }
}

RecoveryReport RecoveryObserver::recoverPool(PMemPool &Pool) {
  RecoveryObserver Obs(Pool.base(), Pool.size());
  return Obs.recover([&Pool](uint64_t *Addr, uint64_t Val) {
    Pool.persistDirect(Addr, &Val, sizeof(Val));
  });
}

RecoveryReport RecoveryObserver::recoverImage(std::vector<uint8_t> &Image) {
  RecoveryObserver Obs(Image.data(), Image.size());
  return Obs.recover([](uint64_t *Addr, uint64_t Val) { *Addr = Val; });
}
