//===- check/PersistCheck.cpp - Persist-ordering checker ------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "check/PersistCheck.h"

#include "support/CacheLine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace crafty;

const char *crafty::persistDiagName(PersistDiag Kind) {
  switch (Kind) {
  case PersistDiag::UnflushedStore:
    return "unflushed-store";
  case PersistDiag::RedundantClwb:
    return "redundant-clwb";
  case PersistDiag::EarlyWrite:
    return "early-write";
  case PersistDiag::UnloggedStore:
    return "unlogged-store";
  case PersistDiag::BrokenFlushChain:
    return "broken-flush-chain";
  }
  return "unknown";
}

PersistCheck::PersistCheck(PMemPool &Pool)
    : Pool(Pool), PoolBegin(reinterpret_cast<uintptr_t>(Pool.base())),
      PoolEnd(PoolBegin + Pool.size()),
      Pending(Pool.config().MaxThreads) {}

PersistCheck::~PersistCheck() { detach(); }

void PersistCheck::attach() {
  Pool.setObserver(this);
  Attached = true;
}

void PersistCheck::detach() {
  if (Attached && Pool.observer() == this)
    Pool.setObserver(nullptr);
  Attached = false;
}

void PersistCheck::registerLogRegion(uint32_t ThreadId,
                                     const uint64_t *Slots,
                                     size_t NumEntries) {
  MutexLock Guard(M);
  auto Begin = reinterpret_cast<uintptr_t>(Slots);
  LogRegions.push_back(
      LogRegion{Begin, Begin + NumEntries * 2 * sizeof(uint64_t), ThreadId});
}

size_t PersistCheck::lineIndexOf(const void *Addr) const {
  return (reinterpret_cast<uintptr_t>(Addr) - PoolBegin) >> CacheLineShift;
}

const PersistCheck::LogRegion *
PersistCheck::findLogRegion(uintptr_t Addr) const {
  for (const LogRegion &R : LogRegions)
    if (Addr >= R.Begin && Addr < R.End)
      return &R;
  return nullptr;
}

PersistCheck::TxnScope *PersistCheck::currentScope() {
  auto It = Scopes.find(std::this_thread::get_id());
  if (It == Scopes.end() || !It->second.Active)
    return nullptr;
  return &It->second;
}

void PersistCheck::markLinePersisted(LineState &LS, uint64_t Seq,
                                     bool ByEvict) {
  LS.LastPersist = Seq;
  LS.CleanByEvict = ByEvict;
}

void PersistCheck::report(PersistDiag Kind, uint32_t ThreadId,
                          uint64_t TxnIndex, size_t PoolOffset,
                          const char *Phase, const char *Event) {
  ++Counts[static_cast<unsigned>(Kind)];
  if (Reports.size() < MaxStoredReports)
    Reports.push_back(PersistReport{Kind, ThreadId, TxnIndex, PoolOffset,
                                    Phase ? Phase : "", Event});
}

void PersistCheck::beginTxn(uint32_t ThreadId) {
  MutexLock Guard(M);
  TxnScope &S = Scopes[std::this_thread::get_id()];
  S.ThreadId = ThreadId;
  S.ScopeId = NextScopeId++;
  S.TxnIndex = ++TxnCounter;
  S.Phase = "";
  S.Active = true;
  S.StoredLines.clear();
  S.ReportedWords.clear();
  S.Covered.clear();
}

void PersistCheck::setPhase(const char *Tag) {
  MutexLock Guard(M);
  if (TxnScope *S = currentScope())
    S->Phase = Tag;
}

void PersistCheck::endTxn() {
  MutexLock Guard(M);
  TxnScope *S = currentScope();
  if (!S)
    return;
  // Diagnostic 1: every line this transaction stored to must have been
  // flush-scheduled (or otherwise persisted) no earlier than its last
  // store. Comparing against the line's global CLWB/persist sequences
  // keeps concurrent scopes on shared lines independent.
  for (const auto &[Line, Seq] : S->StoredLines) {
    const LineState &LS = Lines[Line];
    if (LS.LastClwb < Seq && LS.LastPersist < Seq)
      report(PersistDiag::UnflushedStore, S->ThreadId, S->TxnIndex,
             Line << CacheLineShift, S->Phase, "commit");
  }
  S->Active = false;
  S->StoredLines.clear();
  S->ReportedWords.clear();
}

void PersistCheck::decodeLogStore(const LogRegion &Region, uintptr_t Addr,
                                  uint64_t NewVal, uint64_t Seq,
                                  TxnScope *Scope) {
  size_t WordIdx = (Addr - Region.Begin) / sizeof(uint64_t);
  if ((WordIdx & 1) == 0) {
    // AddrWord slot: a data entry's AddrWord is the covered word's address
    // with the pass and old-value-LSB bits packed into the low bits
    // (log/LogEntry.h). Tag entries and cleared slots decode to small
    // integers, never pool addresses.
    uint64_t Field = NewVal & ~7ull;
    if (Field >= PoolBegin && Field < PoolEnd) {
      SlotWord[Addr] = Field;
      if (Scope)
        Scope->Covered[Field] =
            Coverage{Seq, lineIndexOf(reinterpret_cast<void *>(Addr))};
    } else {
      SlotWord.erase(Addr);
    }
    return;
  }
  // ValWord slot: extend the owning entry's staging sequence -- the entry
  // has persisted only once *both* its words have (a torn entry is
  // detectable but does not protect the covered write).
  if (!Scope)
    return;
  auto It = SlotWord.find(Addr - sizeof(uint64_t));
  if (It == SlotWord.end())
    return;
  auto Cov = Scope->Covered.find(It->second);
  if (Cov != Scope->Covered.end() && Cov->second.Seq < Seq)
    Cov->second.Seq = Seq;
}

void PersistCheck::onStore(void *Addr, uint64_t OldVal, uint64_t NewVal,
                           bool ValuesKnown) {
  MutexLock Guard(M);
  auto A = reinterpret_cast<uintptr_t>(Addr);
  const LogRegion *Region = findLogRegion(A);
  // A store that leaves the word unchanged is invisible to persistence:
  // Crafty's nondestructive rollback relies on the write buffer merging
  // the body's store with its rollback into a no-op. Log-region slots are
  // exempt -- a wrapped log may restage a bit-identical entry, and its
  // coverage must still be recorded.
  if (!Region && ValuesKnown && OldVal == NewVal)
    return;
  uint64_t Seq = NextSeq++;
  size_t Line = lineIndexOf(Addr);
  LineState &LS = Lines[Line];
  LS.LastStore = Seq;
  LS.CleanByEvict = false;
  TxnScope *Scope = currentScope();
  LS.LastStoreTid = Scope ? Scope->ThreadId : ~0u;
  if (Scope)
    Scope->StoredLines[Line] = Seq;
  if (Region) {
    decodeLogStore(*Region, A, NewVal, Seq, Scope);
    return;
  }
  if (!Scope || Scope->ReportedWords.count(A))
    return;
  // Diagnostics 3/4: a program write inside a transaction body is
  // persistable the moment it lands in the (volatile) cache; by then a
  // covering undo entry staged by this same scope must already have
  // persisted. The entry's persist sequence is sticky, so later dirtying
  // of the entry's line (e.g. a forced tag) cannot un-cover the write.
  auto Cov = Scope->Covered.find(A);
  if (Cov == Scope->Covered.end()) {
    report(PersistDiag::UnloggedStore, Scope->ThreadId, Scope->TxnIndex,
           A - PoolBegin, Scope->Phase, "store");
    Scope->ReportedWords.insert(A);
  } else if (Lines[Cov->second.EntryLine].LastPersist < Cov->second.Seq) {
    report(PersistDiag::EarlyWrite, Scope->ThreadId, Scope->TxnIndex,
           A - PoolBegin, Scope->Phase, "store");
    Scope->ReportedWords.insert(A);
  }
}

void PersistCheck::onClwb(uint32_t ThreadId, const void *Addr) {
  MutexLock Guard(M);
  uint64_t Seq = NextSeq++;
  size_t Line = lineIndexOf(Addr);
  LineState &LS = Lines[Line];
  // Diagnostic 2 (lint): flushing a line with nothing unpersisted. Only
  // lines the checker has seen stores to are eligible (setup writes
  // bypass the instrumented paths), and eviction-cleaned lines are
  // exempt: software cannot know the hardware already wrote them back.
  if (LS.LastStore != 0 && LS.LastStore <= LS.LastPersist &&
      !LS.CleanByEvict) {
    TxnScope *Scope = currentScope();
    report(PersistDiag::RedundantClwb, ThreadId,
           Scope ? Scope->TxnIndex : 0, Line << CacheLineShift,
           Scope ? Scope->Phase : "", "clwb");
  }
  LS.LastClwb = Seq;
  assert(ThreadId < Pending.size() && "thread id out of range");
  Pending[ThreadId].push_back(PendingClwb{Line, Seq});
}

void PersistCheck::onDrain(uint32_t ThreadId, bool Remote) {
  MutexLock Guard(M);
  uint64_t Seq = NextSeq++;
  assert(ThreadId < Pending.size() && "thread id out of range");
  std::vector<PendingClwb> &Queue = Pending[ThreadId];
  size_t ReportedBefore = Reports.size();
  for (const PendingClwb &P : Queue) {
    LineState &LS = Lines[P.Line];
    // Diagnostic 5: the draining thread stored to the line after this
    // CLWB was scheduled and no one re-flushed it, yet the drain persists
    // its current content. Real hardware may have completed the old
    // write-back before the late store, leaving it unpersisted -- a
    // broken flush chain. A *different* thread's late store to a shared
    // line is not flagged here: that store is the other thread's own
    // flush-chain (its commit-time check catches an unflushed claim).
    // Stores of unknown origin (outside any scope) stay eligible.
    // Remote drains (forceEmptyCommit moving a delinquent thread's
    // rollback horizon) are exempt entirely: they assert old CLWBs
    // completed by the passage of time and sample the victim's chain at
    // an arbitrary instant -- the victim may legitimately sit between a
    // store and its own CLWB.
    if (!Remote && LS.LastStore > P.Seq &&
        (LS.LastStoreTid == ThreadId || LS.LastStoreTid == ~0u) &&
        LS.LastClwb < LS.LastStore && LS.LastPersist < LS.LastStore) {
      bool AlreadyReported = false;
      for (size_t I = ReportedBefore; I != Reports.size(); ++I)
        if (Reports[I].PoolOffset == P.Line << CacheLineShift) {
          AlreadyReported = true;
          break;
        }
      if (!AlreadyReported) {
        TxnScope *Scope = currentScope();
        report(PersistDiag::BrokenFlushChain, ThreadId,
               Scope ? Scope->TxnIndex : 0, P.Line << CacheLineShift,
               Scope ? Scope->Phase : "", "drain");
      }
    }
    markLinePersisted(LS, Seq, /*ByEvict=*/false);
  }
  Queue.clear();
}

void PersistCheck::onEvict(const void *LineAddr) {
  MutexLock Guard(M);
  uint64_t Seq = NextSeq++;
  markLinePersisted(Lines[lineIndexOf(LineAddr)], Seq, /*ByEvict=*/true);
}

void PersistCheck::onPersistDirect(const void *Addr, size_t Len) {
  if (Len == 0)
    return;
  MutexLock Guard(M);
  uint64_t Seq = NextSeq++;
  size_t First = lineIndexOf(Addr);
  size_t Last =
      lineIndexOf(reinterpret_cast<const uint8_t *>(Addr) + Len - 1);
  for (size_t Line = First; Line <= Last; ++Line) {
    LineState &LS = Lines[Line];
    LS.LastStore = Seq;
    markLinePersisted(LS, Seq, /*ByEvict=*/false);
  }
}

void PersistCheck::onPersistImageWord(uint32_t ThreadId, const void *Addr,
                                      uint64_t Val) {
  // Image-only writes (the checkpointer path) leave the volatile view --
  // and therefore the line state machine -- untouched.
  (void)ThreadId;
  (void)Addr;
  (void)Val;
}

void PersistCheck::onFlushEverything() {
  MutexLock Guard(M);
  uint64_t Seq = NextSeq++;
  for (auto &[Line, LS] : Lines) {
    (void)Line;
    markLinePersisted(LS, Seq, /*ByEvict=*/false);
  }
}

void PersistCheck::onCrash() {
  MutexLock Guard(M);
  // The volatile view now equals the image and all pending CLWBs are
  // gone; diagnostics survive, transient state does not.
  Lines.clear();
  SlotWord.clear();
  Scopes.clear();
  for (auto &Queue : Pending)
    Queue.clear();
}

void PersistCheck::onReset() { onCrash(); }

uint64_t PersistCheck::violationCount() const {
  MutexLock Guard(M);
  uint64_t N = 0;
  for (unsigned K = 0; K != NumPersistDiags; ++K)
    if (isPersistViolation(static_cast<PersistDiag>(K)))
      N += Counts[K];
  return N;
}

uint64_t PersistCheck::lintCount() const {
  MutexLock Guard(M);
  return Counts[static_cast<unsigned>(PersistDiag::RedundantClwb)];
}

uint64_t PersistCheck::count(PersistDiag Kind) const {
  MutexLock Guard(M);
  return Counts[static_cast<unsigned>(Kind)];
}

std::vector<PersistReport> PersistCheck::reports() const {
  MutexLock Guard(M);
  return Reports;
}

static std::string formatSelected(const std::vector<PersistReport> &Reports,
                                  size_t MaxLines, bool ViolationsOnly) {
  std::string Out;
  size_t Printed = 0, Matched = 0;
  for (const PersistReport &R : Reports) {
    if (ViolationsOnly && !isPersistViolation(R.Kind))
      continue;
    ++Matched;
    if (Printed == MaxLines)
      continue;
    ++Printed;
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "persistcheck: %s at pool+0x%zx [thread %d txn %llu "
                  "phase %s via %s]\n",
                  persistDiagName(R.Kind), R.PoolOffset,
                  R.ThreadId == ~0u ? -1 : (int)R.ThreadId,
                  (unsigned long long)R.TxnIndex,
                  R.Phase[0] ? R.Phase : "-", R.Event);
    Out += Buf;
  }
  if (Matched > Printed) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "... and %zu more\n", Matched - Printed);
    Out += Buf;
  }
  return Out;
}

std::string PersistCheck::formatReports(size_t MaxLines) const {
  MutexLock Guard(M);
  return formatSelected(Reports, MaxLines, /*ViolationsOnly=*/false);
}

std::string PersistCheck::formatViolations(size_t MaxLines) const {
  MutexLock Guard(M);
  return formatSelected(Reports, MaxLines, /*ViolationsOnly=*/true);
}

CheckReport PersistCheck::checkReport() const {
  MutexLock Guard(M);
  CheckReport CR;
  CR.Checker = "persistcheck";
  for (unsigned K = 0; K != NumPersistDiags; ++K) {
    auto Kind = static_cast<PersistDiag>(K);
    CR.Counts.emplace_back(persistDiagName(Kind), Counts[K]);
    if (isPersistViolation(Kind))
      CR.Violations += Counts[K];
    else
      CR.Lints += Counts[K];
  }
  for (const PersistReport &R : Reports)
    CR.Entries.push_back(CheckReportEntry{
        persistDiagName(R.Kind), isPersistViolation(R.Kind), R.ThreadId,
        /*OtherThreadId=*/~0u, R.TxnIndex, R.PoolOffset, R.Phase, R.Event});
  return CR;
}

void PersistCheck::clearReports() {
  MutexLock Guard(M);
  Reports.clear();
  for (uint64_t &C : Counts)
    C = 0;
}
