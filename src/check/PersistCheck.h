//===- check/PersistCheck.h - Persist-ordering checker ---------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PersistCheck: a dynamic persist-ordering and durability-race checker.
///
/// The checker installs itself as the pool's PMemObserver and replays every
/// persistence-relevant event -- committed stores (with before/after
/// values), CLWB scheduling, drains, spontaneous evictions, direct persists
/// and crashes -- into a per-cache-line shadow state machine:
///
///     clean --store--> dirty --clwb--> flush-scheduled --drain--> persisted
///                        \________________evict_________________/
///
/// Each line carries monotonic sequence numbers of its last store, last
/// CLWB and last persist; comparing them classifies every event. On top of
/// the line machine, an explicit transaction-scope API (beginTxn /
/// setPhase / endTxn, driven by CraftyThread::run) and a decoder for the
/// registered undo-log regions let the checker tie program writes to the
/// undo entries that cover them. Five diagnostic classes result:
///
///  1. unflushed-store     a transaction's store to pool memory was never
///                         CLWB'd (nor otherwise persisted) by commit.
///  2. redundant-clwb      CLWB of a line with nothing unpersisted -- a
///                         pure waste of write-back bandwidth. Advisory
///                         lint: correct code may flush defensively (e.g.
///                         the predecessor-slot flush of Section 5.2), and
///                         lines cleaned by spontaneous eviction are not
///                         flagged (software cannot know they are clean).
///  3. early-write         a program write became persistable (entered the
///                         dirty cache) before the undo-log entry covering
///                         it had persisted -- the core Crafty invariant
///                         (paper Sections 4.1-4.2).
///  4. unlogged-store      a program write inside a transaction body with
///                         no covering undo-log entry staged this
///                         transaction.
///  5. broken-flush-chain  a drain persisted a line the draining thread
///                         stored to after its CLWB was scheduled, with no
///                         covering re-flush: on real hardware the late
///                         store may miss the write-back
///                         (flush-without-drain chains must be closed by a
///                         commit fence *before* the line is dirtied
///                         again). Another thread's late store to a shared
///                         line is that thread's own chain and is judged
///                         at its commit instead, and remote drains
///                         (forceEmptyCommit) are exempt: they sample the
///                         victim's chain at an arbitrary instant.
///
/// Classes 1 and 3-5 are violations: correct runtimes must produce none,
/// under any adversarial eviction schedule. Class 2 is a lint and is
/// reported separately. Diagnostics are deduplicated so one seeded bug
/// yields one report, and each report carries its source tag: the thread,
/// transaction index, Crafty phase and pool offset involved.
///
/// Thread safety: one internal mutex serializes all events. Callbacks may
/// run under pool-internal locks; the checker never calls back into the
/// pool or the HTM runtime, so no lock order cycle exists.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_CHECK_PERSISTCHECK_H
#define CRAFTY_CHECK_PERSISTCHECK_H

#include "check/CheckReport.h"
#include "pmem/PMemPool.h"
#include "support/Mutex.h"

#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace crafty {

/// Diagnostic classes; see the file comment for their definitions.
enum class PersistDiag : uint8_t {
  UnflushedStore,
  RedundantClwb, // Lint, not a violation.
  EarlyWrite,
  UnloggedStore,
  BrokenFlushChain,
};

inline constexpr unsigned NumPersistDiags = 5;

/// Returns the diagnostic's stable name ("unflushed-store", ...).
const char *persistDiagName(PersistDiag Kind);

/// True for the diagnostic classes counted as violations (all but the
/// redundant-clwb lint).
inline bool isPersistViolation(PersistDiag Kind) {
  return Kind != PersistDiag::RedundantClwb;
}

/// One source-tagged diagnostic.
struct PersistReport {
  PersistDiag Kind;
  /// Pool thread id the event is attributed to; ~0u when unknown.
  uint32_t ThreadId;
  /// Global index of the transaction scope involved; 0 outside any scope.
  uint64_t TxnIndex;
  /// Byte offset into the pool of the word (or line) involved.
  size_t PoolOffset;
  /// Crafty phase tag active in the scope ("log", "redo", ...; "" none).
  const char *Phase;
  /// Checker event that detected the problem ("store", "clwb", "commit",
  /// "drain").
  const char *Event;
};

class PersistCheck final : public PMemObserver {
public:
  /// Creates a checker for \p Pool. Call attach() (or let the owner call
  /// Pool.setObserver) to start receiving events.
  explicit PersistCheck(PMemPool &Pool);
  ~PersistCheck() override;

  PersistCheck(const PersistCheck &) = delete;
  PersistCheck &operator=(const PersistCheck &) = delete;

  /// Installs / removes this checker as the pool's observer.
  void attach();
  void detach();

  /// Declares [\p Slots, \p Slots + 2 * \p NumEntries) as \p ThreadId's
  /// undo-log region. Stores into registered regions are decoded as log
  /// entries (building the coverage map for diagnostics 3/4) instead of
  /// being treated as program writes.
  void registerLogRegion(uint32_t ThreadId, const uint64_t *Slots,
                         size_t NumEntries);

  /// Opens a transaction scope for the calling OS thread, attributing its
  /// subsequent events to pool thread \p ThreadId. Scopes do not nest.
  void beginTxn(uint32_t ThreadId);

  /// Tags the calling thread's open scope with a phase name (a pointer to
  /// a string with static storage duration). No-op without an open scope.
  void setPhase(const char *Tag);

  /// Closes the calling thread's scope, running the commit-time checks
  /// (diagnostic 1). No-op without an open scope.
  void endTxn();

  /// Diagnostic queries. reports() returns at most MaxStoredReports
  /// entries; the counters are exact.
  uint64_t violationCount() const;
  uint64_t lintCount() const;
  uint64_t count(PersistDiag Kind) const;
  std::vector<PersistReport> reports() const;
  /// Human-readable rendering of up to \p MaxLines stored reports.
  std::string formatReports(size_t MaxLines = 32) const;
  /// Like formatReports, but skips lints: only violations are rendered.
  /// Useful when a lint storm would push the violation past MaxLines.
  std::string formatViolations(size_t MaxLines = 32) const;
  /// Machine-readable rendering (check/CheckReport.h).
  CheckReport checkReport() const;
  void clearReports();

  /// Cap on stored (not counted) reports, to bound memory under lint
  /// storms in long runs.
  static constexpr size_t MaxStoredReports = 1024;

  // PMemObserver implementation.
  void onStore(void *Addr, uint64_t OldVal, uint64_t NewVal,
               bool ValuesKnown) override;
  void onClwb(uint32_t ThreadId, const void *Addr) override;
  void onDrain(uint32_t ThreadId, bool Remote) override;
  void onEvict(const void *LineAddr) override;
  void onPersistDirect(const void *Addr, size_t Len) override;
  void onPersistImageWord(uint32_t ThreadId, const void *Addr,
                          uint64_t Val) override;
  void onFlushEverything() override;
  void onCrash() override;
  void onReset() override;

private:
  /// Shadow state of one cache line. Sequence number 0 means "never".
  struct LineState {
    uint64_t LastStore = 0;
    uint64_t LastClwb = 0;
    uint64_t LastPersist = 0;
    /// Pool thread id of the scope that issued the last store; ~0u when
    /// the store ran outside any scope. Scopes flush chains they dirtied
    /// themselves; a concurrent thread's store to a shared line is that
    /// thread's own flushing responsibility (diagnostic 5).
    uint32_t LastStoreTid = ~0u;
    /// The line's cleanliness came from a spontaneous eviction, which
    /// software cannot observe; suppresses the redundant-clwb lint.
    bool CleanByEvict = false;
  };

  /// A scheduled-but-undrained CLWB.
  struct PendingClwb {
    size_t Line;
    uint64_t Seq;
  };

  /// A registered undo-log region.
  struct LogRegion {
    uintptr_t Begin;
    uintptr_t End;
    uint32_t ThreadId;
  };

  /// Undo-entry coverage of one program word: the entry's staging store
  /// sequence (the later of its two word stores) and the line holding the
  /// entry.
  struct Coverage {
    uint64_t Seq;
    size_t EntryLine;
  };

  /// Per-OS-thread transaction scope.
  struct TxnScope {
    uint32_t ThreadId = ~0u;
    uint64_t ScopeId = 0;
    uint64_t TxnIndex = 0;
    const char *Phase = "";
    bool Active = false;
    /// line -> sequence of the scope's last store to it (diagnostic 1).
    std::unordered_map<size_t, uint64_t> StoredLines;
    /// Program words already reported this scope (one report per word).
    std::unordered_set<uintptr_t> ReportedWords;
    /// program word -> undo entry this scope staged for it. Kept per
    /// scope: concurrent transactions may each cover the same word (the
    /// loser's validation will fail and restart), and a shared map would
    /// let one scope's entry shadow another's.
    std::unordered_map<uintptr_t, Coverage> Covered;
  };

  size_t lineIndexOf(const void *Addr) const;
  const LogRegion *findLogRegion(uintptr_t Addr) const CRAFTY_REQUIRES(M);
  TxnScope *currentScope() CRAFTY_REQUIRES(M);
  void markLinePersisted(LineState &LS, uint64_t Seq, bool ByEvict)
      CRAFTY_REQUIRES(M);
  void decodeLogStore(const LogRegion &Region, uintptr_t Addr,
                      uint64_t NewVal, uint64_t Seq, TxnScope *Scope)
      CRAFTY_REQUIRES(M);
  void report(PersistDiag Kind, uint32_t ThreadId, uint64_t TxnIndex,
              size_t PoolOffset, const char *Phase, const char *Event)
      CRAFTY_REQUIRES(M);

  PMemPool &Pool;
  const uintptr_t PoolBegin;
  const uintptr_t PoolEnd;
  bool Attached = false;

  mutable Mutex M;
  uint64_t NextSeq CRAFTY_GUARDED_BY(M) = 1;
  uint64_t NextScopeId CRAFTY_GUARDED_BY(M) = 1;
  uint64_t TxnCounter CRAFTY_GUARDED_BY(M) = 0;
  std::unordered_map<size_t, LineState> Lines CRAFTY_GUARDED_BY(M);
  std::vector<std::vector<PendingClwb>> Pending
      CRAFTY_GUARDED_BY(M); // [pool thread id]
  std::vector<LogRegion> LogRegions CRAFTY_GUARDED_BY(M);
  /// AddrWord slot address -> program word it currently covers (lets the
  /// ValWord store extend the entry's staging sequence).
  std::unordered_map<uintptr_t, uintptr_t> SlotWord CRAFTY_GUARDED_BY(M);
  std::unordered_map<std::thread::id, TxnScope> Scopes CRAFTY_GUARDED_BY(M);

  uint64_t Counts[NumPersistDiags] CRAFTY_GUARDED_BY(M) = {};
  std::vector<PersistReport> Reports CRAFTY_GUARDED_BY(M);
};

} // namespace crafty

#endif // CRAFTY_CHECK_PERSISTCHECK_H
