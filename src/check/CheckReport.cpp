//===- check/CheckReport.cpp - Machine-readable checker reports -----------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "check/CheckReport.h"

#include <cstdio>
#include <cstdlib>

using namespace crafty;

/// Appends \p S as a JSON string literal. The emitted strings are static
/// diagnostic identifiers, but escape defensively anyway.
static void appendJsonString(std::string &Out, const char *S) {
  Out += '"';
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  Out += '"';
}

static void appendUnsigned(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  Out += Buf;
}

std::string CheckReport::toJson() const {
  std::string Out;
  Out.reserve(256 + Entries.size() * 128);
  Out += "{\n  \"checker\": ";
  appendJsonString(Out, Checker);
  Out += ",\n  \"violations\": ";
  appendUnsigned(Out, Violations);
  Out += ",\n  \"lints\": ";
  appendUnsigned(Out, Lints);
  Out += ",\n  \"counts\": {";
  for (size_t I = 0; I != Counts.size(); ++I) {
    Out += I ? ", " : " ";
    appendJsonString(Out, Counts[I].first);
    Out += ": ";
    appendUnsigned(Out, Counts[I].second);
  }
  Out += " },\n  \"reports\": [";
  for (size_t I = 0; I != Entries.size(); ++I) {
    const CheckReportEntry &E = Entries[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{ \"kind\": ";
    appendJsonString(Out, E.Kind);
    Out += ", \"violation\": ";
    Out += E.Violation ? "true" : "false";
    if (E.ThreadId != ~0u) {
      Out += ", \"thread\": ";
      appendUnsigned(Out, E.ThreadId);
    }
    if (E.OtherThreadId != ~0u) {
      Out += ", \"otherThread\": ";
      appendUnsigned(Out, E.OtherThreadId);
    }
    Out += ", \"txn\": ";
    appendUnsigned(Out, E.TxnIndex);
    Out += ", \"poolOffset\": ";
    appendUnsigned(Out, E.PoolOffset);
    Out += ", \"phase\": ";
    appendJsonString(Out, E.Phase);
    Out += ", \"event\": ";
    appendJsonString(Out, E.Event);
    Out += " }";
  }
  Out += Entries.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

bool CheckReport::writeJson(const char *Path) const {
  std::string Json = toJson();
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

bool CheckReport::writeJsonToEnvDir(const char *FileStem) const {
  // Read once at dump time; tests set this before threads spawn, so the
  // thread-unsafety of getenv is immaterial here.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char *Dir = std::getenv("CRAFTY_CHECK_REPORT_DIR");
  if (!Dir || !*Dir)
    return false;
  std::string Path = Dir;
  if (Path.back() != '/')
    Path += '/';
  Path += FileStem;
  Path += ".json";
  return writeJson(Path.c_str());
}
