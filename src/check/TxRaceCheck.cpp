//===- check/TxRaceCheck.cpp - HTM-layer race & isolation checker ---------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "check/TxRaceCheck.h"

#include "htm/Htm.h"
#include "pmem/PMemPool.h"

#include <cstdio>
#include <cstring>

using namespace crafty;

const char *crafty::raceDiagName(RaceDiag Kind) {
  switch (Kind) {
  case RaceDiag::TxNonTxRace:
    return "tx-nontx-race";
  case RaceDiag::SglNotHeld:
    return "sgl-not-held";
  case RaceDiag::NonTxRace:
    return "nontx-race";
  case RaceDiag::NondetValidate:
    return "nondet-validate";
  case RaceDiag::UnscopedStore:
    return "unscoped-store";
  }
  CRAFTY_UNREACHABLE("bad race diagnostic");
}

//===----------------------------------------------------------------------===//
// Construction and hook installation
//===----------------------------------------------------------------------===//

TxRaceCheck::TxRaceCheck(PMemPool &Pool)
    : PoolBegin(reinterpret_cast<uintptr_t>(Pool.base())),
      PoolEnd(PoolBegin + Pool.size()) {}

TxRaceCheck::~TxRaceCheck() = default;

namespace {
TxRaceCheck *checker(void *Ctx) { return static_cast<TxRaceCheck *>(Ctx); }

void onTxBeginTramp(void *Ctx, uint32_t Tid, uint64_t Snapshot) {
  checker(Ctx)->txBegin(Tid, Snapshot);
}
void onTxLoadTramp(void *Ctx, uint32_t Tid, const void *Addr) {
  checker(Ctx)->txLoad(Tid, Addr);
}
void onTxStoreTramp(void *Ctx, uint32_t Tid, void *Addr) {
  checker(Ctx)->txStore(Tid, Addr);
}
void onTxCommitTramp(void *Ctx, uint32_t Tid, uint64_t Version,
                     bool HadWrites) {
  checker(Ctx)->txCommit(Tid, Version, HadWrites);
}
void onTxAbortTramp(void *Ctx, uint32_t Tid) { checker(Ctx)->txAbort(Tid); }
void onNonTxLoadTramp(void *Ctx, const void *Addr) {
  checker(Ctx)->nonTxLoad(Addr);
}
void onNonTxStoreTramp(void *Ctx, void *Addr, uint64_t Version) {
  checker(Ctx)->nonTxStore(Addr, Version);
}
} // namespace

void TxRaceCheck::installHtmHooks(HtmRuntime &Htm) {
  AccessHooks H;
  H.Ctx = this;
  H.OnTxBegin = onTxBeginTramp;
  H.OnTxLoad = onTxLoadTramp;
  H.OnTxStore = onTxStoreTramp;
  H.OnTxCommit = onTxCommitTramp;
  H.OnTxAbort = onTxAbortTramp;
  H.OnNonTxLoad = onNonTxLoadTramp;
  H.OnNonTxStore = onNonTxStoreTramp;
  Htm.setAccessHooks(H);
  HooksInstalled = true;
}

void TxRaceCheck::removeHtmHooks(HtmRuntime &Htm) {
  if (!HooksInstalled)
    return;
  Htm.setAccessHooks(AccessHooks());
  HooksInstalled = false;
}

void TxRaceCheck::registerExemptRegion(const void *Begin, size_t Bytes) {
  auto B = reinterpret_cast<uintptr_t>(Begin);
  Exempt.push_back(ExemptRegion{B, B + Bytes});
}

bool TxRaceCheck::tracked(const void *Addr) const {
  auto A = reinterpret_cast<uintptr_t>(Addr);
  if (A < PoolBegin || A >= PoolEnd)
    return false;
  for (const ExemptRegion &R : Exempt)
    if (A >= R.Begin && A < R.End)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Vector-clock plumbing
//===----------------------------------------------------------------------===//

void TxRaceCheck::joinInto(VectorClock &Dst, const VectorClock &Src) {
  if (Src.size() > Dst.size())
    Dst.resize(Src.size(), 0);
  for (size_t I = 0; I != Src.size(); ++I)
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

TxRaceCheck::ThreadState &TxRaceCheck::stateFor(uint32_t Tid) {
  ThreadState &T = ThreadStates[Tid];
  if (T.C.size() <= Tid) {
    T.C.resize(Tid + 1, 0);
    T.C[Tid] = 1; // Epochs start at 1 so "never synchronized" compares low.
  }
  return T;
}

TxRaceCheck::TxnScope *TxRaceCheck::scopeFor(uint32_t Tid) {
  auto It = Scopes.find(Tid);
  return It == Scopes.end() ? nullptr : &It->second;
}

uint32_t TxRaceCheck::boundTid() {
  auto [It, Inserted] = Bindings.try_emplace(std::this_thread::get_id(), 0);
  if (Inserted)
    It->second = NextSyntheticTid++;
  return It->second;
}

void TxRaceCheck::joinPrefix(VectorClock &Dst, uint64_t UpTo) {
  if (UpTo == 0)
    return;
  // Folding may pull a few entries above a small UpTo into the base; that
  // only adds (sound but conservative) edges, never reports a false race.
  if (FoldedUpTo != 0)
    joinInto(Dst, FoldedVC);
  for (auto It = Published.begin();
       It != Published.end() && It->first <= UpTo; ++It)
    joinInto(Dst, It->second);
}

void TxRaceCheck::publish(uint64_t Version, const VectorClock &C) {
  Published[Version] = C;
  joinInto(AllVC, C);
  if (Published.size() <= kMaxPrefixEntries)
    return;
  size_t ToFold = Published.size() / 2;
  auto It = Published.begin();
  for (size_t I = 0; I != ToFold; ++I, ++It) {
    joinInto(FoldedVC, It->second);
    FoldedUpTo = It->first;
  }
  Published.erase(Published.begin(), It);
}

//===----------------------------------------------------------------------===//
// Shadow-state update and race checks
//===----------------------------------------------------------------------===//

void TxRaceCheck::applyAccess(uint32_t Tid, uintptr_t Addr, bool IsWrite,
                              bool IsTx, const char *Event) {
  ThreadState &T = stateFor(Tid);
  WordState &W = Words[Addr];
  uint64_t Seq = NextSeq++;
  uint64_t MyClk = clockOf(T.C, Tid);
  bool IsSgl = T.SglDepth != 0;

  // Committed-transaction pairs are never races: the HTM serializes them
  // (two blind transactional writers are legal under TL2). A committed
  // transaction and an SGL-section access are likewise always ordered by
  // lock subscription: the transaction read SglWord at begin and
  // validated it at commit, so it serialized wholly before the acquire
  // or wholly after the release. That pair cannot always be proved by
  // clocks alone -- a read-only commit publishes nothing for the section
  // to join -- hence the explicit suppression.
  auto racy = [&](uint32_t OtherTid, uint64_t OtherClk, bool OtherTx,
                  bool OtherSgl) {
    return OtherTid != Tid && !(OtherTx && IsTx) &&
           !(OtherSgl && IsTx) && !(OtherTx && IsSgl) &&
           OtherClk > clockOf(T.C, OtherTid);
  };
  auto kindOf = [&](bool OtherTx) {
    return (OtherTx || IsTx) ? RaceDiag::TxNonTxRace : RaceDiag::NonTxRace;
  };

  if (W.WTid != ~0u && racy(W.WTid, W.WClk, W.WTx, W.WSgl))
    report(kindOf(W.WTx), Tid, W.WTid, Addr, Event);
  if (IsWrite) {
    for (const ReadEntry &R : W.Reads)
      if (racy(R.Tid, R.Clk, R.Tx, R.Sgl))
        report(kindOf(R.Tx), Tid, R.Tid, Addr, Event);
    W.WTid = Tid;
    W.WClk = MyClk;
    W.WTx = IsTx;
    W.WSgl = IsSgl;
    W.WSeq = Seq;
    W.Reads.clear();
  } else {
    for (ReadEntry &R : W.Reads)
      if (R.Tid == Tid) {
        R.Clk = MyClk;
        R.Tx = IsTx;
        R.Sgl = IsSgl;
        return;
      }
    W.Reads.push_back(ReadEntry{Tid, MyClk, IsTx, IsSgl});
  }
}

void TxRaceCheck::checkChunkedExclusion(uint32_t Tid, uintptr_t Addr,
                                        const char *Event) {
  TxnScope *S = scopeFor(Tid);
  if (!S || !S->Active || std::strcmp(S->Phase, "chunked") != 0)
    return;
  if (S->SglNotHeldReported)
    return;
  ThreadState &T = stateFor(Tid);
  if (T.SglDepth != 0 || T.SyncHeld != 0)
    return;
  // A lone chunked scope cannot race anyone; the thread-unsafe mode is
  // legal single-threaded (and under app-level locks, which syncAcquire
  // declares). Only flag when exclusion is demonstrably needed.
  if (ActiveScopes <= 1)
    return;
  S->SglNotHeldReported = true;
  report(RaceDiag::SglNotHeld, Tid, ~0u, Addr, Event);
}

void TxRaceCheck::report(RaceDiag Kind, uint32_t Tid, uint32_t OtherTid,
                         uintptr_t Addr, const char *Event) {
  if (Kind == RaceDiag::TxNonTxRace || Kind == RaceDiag::NonTxRace) {
    if (!RaceReportedWords.insert(Addr).second)
      return; // One report per racy word.
  } else if (Kind == RaceDiag::UnscopedStore) {
    if (!LintReportedWords.insert(Addr).second)
      return;
  }
  ++Counts[(unsigned)Kind];
  if (Reports.size() >= MaxStoredReports)
    return;
  TxnScope *S = scopeFor(Tid);
  bool InScope = S && S->Active;
  Reports.push_back(TxRaceReport{Kind, Tid, OtherTid,
                                 InScope ? S->TxnIndex : 0,
                                 Addr >= PoolBegin ? Addr - PoolBegin : 0,
                                 InScope ? S->Phase : "", Event});
}

//===----------------------------------------------------------------------===//
// Scope API
//===----------------------------------------------------------------------===//

void TxRaceCheck::beginTxn(uint32_t ThreadId) {
  MutexLock L(M);
  Bindings[std::this_thread::get_id()] = ThreadId;
  TxnScope &S = Scopes[ThreadId];
  if (!S.Active)
    ++ActiveScopes;
  S.Active = true;
  S.TxnIndex = ++TxnCounter;
  S.Phase = "";
  S.SglNotHeldReported = false;
  S.LogStartSeq = NextSeq;
  S.Footprint.clear();
}

void TxRaceCheck::setPhase(uint32_t ThreadId, const char *Tag) {
  MutexLock L(M);
  TxnScope *S = scopeFor(ThreadId);
  if (!S || !S->Active)
    return;
  S->Phase = Tag;
  if (std::strcmp(Tag, "log") == 0) {
    // Each Log phase (including restarts) opens a fresh determinism
    // window for the nondet-validate analysis.
    S->LogStartSeq = NextSeq;
    S->Footprint.clear();
  }
}

void TxRaceCheck::endTxn(uint32_t ThreadId) {
  MutexLock L(M);
  TxnScope *S = scopeFor(ThreadId);
  if (!S || !S->Active)
    return;
  S->Active = false;
  S->Phase = "";
  S->Footprint.clear();
  --ActiveScopes;
}

void TxRaceCheck::sglAcquired(uint32_t ThreadId) {
  MutexLock L(M);
  ThreadState &T = stateFor(ThreadId);
  ++T.SglDepth;
  // Everything published so far is ordered before the section: any
  // transaction that read SglWord == 0 and committed validated against
  // the stripe the SGL CAS bumped. (Per-access re-joins in nonTxLoad /
  // nonTxStore / txCommit keep this current for commits whose hooks land
  // after this acquire.)
  joinInto(T.C, AllVC);
}

void TxRaceCheck::sglReleased(uint32_t ThreadId) {
  MutexLock L(M);
  ThreadState &T = stateFor(ThreadId);
  if (T.SglDepth)
    --T.SglDepth;
  if (ThreadId < T.C.size())
    ++T.C[ThreadId];
}

void TxRaceCheck::syncAcquire(uint32_t ThreadId, const void *Obj) {
  MutexLock L(M);
  ThreadState &T = stateFor(ThreadId);
  ++T.SyncHeld;
  auto It = SyncClocks.find(Obj);
  if (It != SyncClocks.end())
    joinInto(T.C, It->second);
}

void TxRaceCheck::syncRelease(uint32_t ThreadId, const void *Obj) {
  MutexLock L(M);
  ThreadState &T = stateFor(ThreadId);
  if (T.SyncHeld)
    --T.SyncHeld;
  VectorClock &SC = SyncClocks[Obj];
  joinInto(SC, T.C);
  if (ThreadId < T.C.size())
    ++T.C[ThreadId];
}

void TxRaceCheck::noteValidateDivergence(uint32_t ThreadId,
                                         const void *GotAddr,
                                         const void *WantAddr) {
  MutexLock L(M);
  TxnScope *S = scopeFor(ThreadId);
  if (!S || !S->Active)
    return;
  // A divergence is a *conflict*, not a bug, whenever another thread
  // wrote any word this transaction accessed since its Log phase began
  // (paper Section 4.3: validation exists to catch exactly that). With
  // no such write, the body read the same state twice and still behaved
  // differently: nondeterminism.
  auto Explained = [&](uintptr_t A) {
    auto It = Words.find(A);
    return It != Words.end() && It->second.WSeq >= S->LogStartSeq &&
           It->second.WTid != ThreadId;
  };
  for (uintptr_t A : S->Footprint)
    if (Explained(A))
      return;
  uintptr_t Landmark = 0;
  for (const void *P : {GotAddr, WantAddr}) {
    if (!P || !tracked(P))
      continue;
    auto A = reinterpret_cast<uintptr_t>(P);
    if (Explained(A))
      return;
    if (!Landmark)
      Landmark = A;
  }
  report(RaceDiag::NondetValidate, ThreadId, ~0u, Landmark, "validate");
}

//===----------------------------------------------------------------------===//
// Event API
//===----------------------------------------------------------------------===//

void TxRaceCheck::txBegin(uint32_t ThreadId, uint64_t Snapshot) {
  MutexLock L(M);
  ThreadState &T = stateFor(ThreadId);
  T.InTx = true;
  T.Snapshot = Snapshot;
  T.TxAccesses.clear();
}

void TxRaceCheck::txLoad(uint32_t ThreadId, const void *Addr) {
  MutexLock L(M);
  if (!tracked(Addr))
    return;
  auto A = reinterpret_cast<uintptr_t>(Addr);
  ThreadState &T = stateFor(ThreadId);
  T.TxAccesses.push_back(Access{A, /*IsWrite=*/false});
  if (TxnScope *S = scopeFor(ThreadId); S && S->Active)
    S->Footprint.insert(A);
  checkChunkedExclusion(ThreadId, A, "load");
}

void TxRaceCheck::txStore(uint32_t ThreadId, void *Addr) {
  MutexLock L(M);
  if (!tracked(Addr))
    return;
  auto A = reinterpret_cast<uintptr_t>(Addr);
  ThreadState &T = stateFor(ThreadId);
  T.TxAccesses.push_back(Access{A, /*IsWrite=*/true});
  if (TxnScope *S = scopeFor(ThreadId); S && S->Active)
    S->Footprint.insert(A);
  checkChunkedExclusion(ThreadId, A, "store");
}

void TxRaceCheck::txCommit(uint32_t ThreadId, uint64_t Version,
                           bool HadWrites) {
  MutexLock L(M);
  ThreadState &T = stateFor(ThreadId);
  T.InTx = false;
  if (T.TxAccesses.empty() && !HadWrites)
    return;
  // The join happens here, at apply time, not at begin: for any pair of
  // conflicting operations the commit hook of the earlier one precedes
  // this event (hooks fire before stripe release), so the prefix map is
  // complete for everything this transaction could have observed.
  joinPrefix(T.C, T.Snapshot);
  if (T.SglDepth != 0)
    joinInto(T.C, AllVC);
  for (const Access &A : T.TxAccesses)
    applyAccess(ThreadId, A.Addr, A.IsWrite, /*IsTx=*/true, "commit");
  T.TxAccesses.clear();
  if (HadWrites) {
    publish(Version, T.C);
    if (ThreadId < T.C.size())
      ++T.C[ThreadId];
  }
}

void TxRaceCheck::txAbort(uint32_t ThreadId) {
  MutexLock L(M);
  ThreadState &T = stateFor(ThreadId);
  T.InTx = false;
  T.TxAccesses.clear(); // Speculative accesses never happened.
}

void TxRaceCheck::nonTxLoad(const void *Addr) {
  MutexLock L(M);
  if (!tracked(Addr))
    return;
  auto A = reinterpret_cast<uintptr_t>(Addr);
  uint32_t Tid = boundTid();
  ThreadState &T = stateFor(Tid);
  if (T.SglDepth != 0)
    joinInto(T.C, AllVC);
  checkChunkedExclusion(Tid, A, "load");
  if (TxnScope *S = scopeFor(Tid); S && S->Active)
    S->Footprint.insert(A);
  applyAccess(Tid, A, /*IsWrite=*/false, /*IsTx=*/false, "load");
}

void TxRaceCheck::nonTxStore(void *Addr, uint64_t Version) {
  MutexLock L(M);
  if (!tracked(Addr))
    return;
  auto A = reinterpret_cast<uintptr_t>(Addr);
  uint32_t Tid = boundTid();
  ThreadState &T = stateFor(Tid);
  if (T.SglDepth != 0)
    joinInto(T.C, AllVC);
  checkChunkedExclusion(Tid, A, "store");
  TxnScope *S = scopeFor(Tid);
  if (!S || !S->Active)
    report(RaceDiag::UnscopedStore, Tid, ~0u, A, "store");
  else
    S->Footprint.insert(A);
  applyAccess(Tid, A, /*IsWrite=*/true, /*IsTx=*/false, "store");
  // Later transactions whose snapshot covers Version validated against
  // the bumped stripe; publish so they join this store. The store itself
  // joins nothing: it performs no acquire.
  publish(Version, T.C);
  if (Tid < T.C.size())
    ++T.C[Tid];
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

uint64_t TxRaceCheck::violationCount() const {
  MutexLock L(M);
  uint64_t N = 0;
  for (unsigned I = 0; I != NumRaceDiags; ++I)
    if (isRaceViolation((RaceDiag)I))
      N += Counts[I];
  return N;
}

uint64_t TxRaceCheck::lintCount() const {
  MutexLock L(M);
  return Counts[(unsigned)RaceDiag::UnscopedStore];
}

uint64_t TxRaceCheck::count(RaceDiag Kind) const {
  MutexLock L(M);
  return Counts[(unsigned)Kind];
}

std::vector<TxRaceReport> TxRaceCheck::reports() const {
  MutexLock L(M);
  return Reports;
}

std::string TxRaceCheck::formatReports(size_t MaxLines) const {
  std::vector<TxRaceReport> Copy = reports();
  std::string Out;
  size_t N = 0;
  for (const TxRaceReport &R : Copy) {
    if (N++ == MaxLines) {
      Out += "  ... (more reports suppressed)\n";
      break;
    }
    char Line[256];
    if (R.OtherThreadId != ~0u)
      std::snprintf(Line, sizeof(Line),
                    "  [%s] thread %u vs %u txn %llu pool+0x%zx phase=%s "
                    "event=%s\n",
                    raceDiagName(R.Kind), R.ThreadId, R.OtherThreadId,
                    (unsigned long long)R.TxnIndex, R.PoolOffset, R.Phase,
                    R.Event);
    else
      std::snprintf(Line, sizeof(Line),
                    "  [%s] thread %u txn %llu pool+0x%zx phase=%s "
                    "event=%s\n",
                    raceDiagName(R.Kind), R.ThreadId,
                    (unsigned long long)R.TxnIndex, R.PoolOffset, R.Phase,
                    R.Event);
    Out += Line;
  }
  return Out;
}

CheckReport TxRaceCheck::checkReport() const {
  MutexLock L(M);
  CheckReport CR;
  CR.Checker = "txracecheck";
  for (unsigned I = 0; I != NumRaceDiags; ++I) {
    CR.Counts.emplace_back(raceDiagName((RaceDiag)I), Counts[I]);
    if (isRaceViolation((RaceDiag)I))
      CR.Violations += Counts[I];
    else
      CR.Lints += Counts[I];
  }
  for (const TxRaceReport &R : Reports)
    CR.Entries.push_back(CheckReportEntry{
        raceDiagName(R.Kind), isRaceViolation(R.Kind), R.ThreadId,
        R.OtherThreadId, R.TxnIndex, R.PoolOffset, R.Phase, R.Event});
  return CR;
}

void TxRaceCheck::clearReports() {
  MutexLock L(M);
  for (uint64_t &C : Counts)
    C = 0;
  Reports.clear();
  RaceReportedWords.clear();
  LintReportedWords.clear();
}
