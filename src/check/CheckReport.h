//===- check/CheckReport.h - Machine-readable checker reports --*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A machine-readable (JSON) rendering of a dynamic checker's findings,
/// shared by PersistCheck and TxRaceCheck. CI's sanitizer-matrix jobs run
/// the checker-enabled tests with CRAFTY_CHECK_REPORT_DIR set and upload
/// the dumped files as build artifacts, so a red run carries its evidence.
///
/// Schema (one object per file):
/// \code{.json}
///   {
///     "checker": "txracecheck",
///     "violations": 1,
///     "lints": 0,
///     "counts": { "tx-nontx-race": 1, ... },
///     "reports": [
///       { "kind": "tx-nontx-race", "violation": true, "thread": 0,
///         "otherThread": 1, "txn": 3, "poolOffset": 4096,
///         "phase": "log", "event": "store" }, ...
///     ]
///   }
/// \endcode
/// "otherThread" is omitted for single-thread diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_CHECK_CHECKREPORT_H
#define CRAFTY_CHECK_CHECKREPORT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace crafty {

/// One diagnostic, in checker-independent form.
struct CheckReportEntry {
  const char *Kind = "";
  bool Violation = true;
  /// Pool thread id the event is attributed to; ~0u when unknown.
  uint32_t ThreadId = ~0u;
  /// Second thread of a race pair; ~0u for single-thread diagnostics.
  uint32_t OtherThreadId = ~0u;
  uint64_t TxnIndex = 0;
  size_t PoolOffset = 0;
  const char *Phase = "";
  const char *Event = "";
};

/// A checker's complete findings, ready for serialization.
struct CheckReport {
  const char *Checker = "";
  uint64_t Violations = 0;
  uint64_t Lints = 0;
  /// Exact per-diagnostic counters (stored entries may be capped).
  std::vector<std::pair<const char *, uint64_t>> Counts;
  std::vector<CheckReportEntry> Entries;

  /// Serializes the report; see the file comment for the schema.
  std::string toJson() const;

  /// Writes toJson() to \p Path; false (with no partial file promise) on
  /// I/O failure.
  bool writeJson(const char *Path) const;

  /// Writes to $CRAFTY_CHECK_REPORT_DIR/<FileStem>.json when that
  /// environment variable is set; returns false (harmlessly) otherwise.
  bool writeJsonToEnvDir(const char *FileStem) const;
};

} // namespace crafty

#endif // CRAFTY_CHECK_CHECKREPORT_H
