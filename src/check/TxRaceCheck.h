//===- check/TxRaceCheck.h - HTM-layer race & isolation checker -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TxRaceCheck: a FastTrack-style dynamic happens-before race and
/// isolation checker for the HTM/transaction layer.
///
/// PersistCheck (Section 5.1 of DESIGN.md) validates persist *ordering*;
/// this checker validates the *synchronization* assumptions those
/// orderings rest on: transaction bodies must be data-race-free and
/// deterministic (the Validate phase re-executes them, paper Section 4.3),
/// and non-transactional pool accesses must never race in-flight
/// transactions (the SGL fallback and the chunked thread-unsafe mode rely
/// on external mutual exclusion nothing else verifies).
///
/// The checker consumes the HtmRuntime AccessHooks stream (htm/Htm.h) and
/// maintains per-thread vector clocks plus a per-word shadow cell holding
/// the last write's epoch and the last read epoch per reader. The
/// happens-before edges, in checker event order (DESIGN.md Section 5.2):
///
///  - Commit order. Every writing commit at version V publishes the
///    committer's vector clock into a version-indexed prefix map P; a
///    transaction with snapshot S joins P(S) -- the join of all commit
///    clocks with version <= S -- when its buffered accesses are applied
///    at commit. The TL2 engine guarantees a committed transaction
///    serializes after every commit its snapshot covers, so these
///    "global-clock edges from the versioned write-locks" are real
///    synchronization.
///  - Non-transactional stores publish into P at their stripe version
///    (they are ordered before any later transaction that validates
///    against the bumped stripe) but do NOT join P: a bare nonTxStore
///    performs no acquire, and treating it as one would mask exactly the
///    weak-isolation races this checker exists to find.
///  - SGL order. While a thread holds the SGL (sglAcquired/sglReleased),
///    its accesses join the clocks of *all* published commits: any
///    transaction that read SglWord == 0 and committed validates against
///    the stripe the SGL CAS bumped, so everything published is genuinely
///    ordered before the section.
///  - Annotated external synchronization. The chunked thread-unsafe mode
///    (paper Figure 4) is racy by design unless the *application*
///    provides exclusion (examples/lock_durability.cpp). syncAcquire /
///    syncRelease declare those app-level lock operations, TSan-annotation
///    style, carrying a per-object vector clock.
///
/// Transactional accesses are buffered while speculative and applied to
/// the shadow state only at commit (aborted transactions touched
/// nothing). Committed transaction pairs are never reported as races: the
/// HTM serializes them regardless of clock order (two blind transactional
/// writers are legal). A committed transaction and an SGL-section access
/// are likewise never reported: every transaction reads SglWord at begin
/// and validates it at commit (lock subscription), so it serializes
/// wholly before the acquire or wholly after the release -- this covers
/// read-only commits, which publish no clock for the section to join.
/// Only pool addresses are tracked; registered exempt
/// regions (the per-thread undo logs, written by design from many
/// threads' forced commits) are ignored.
///
/// Diagnostics:
///
///  1. tx-nontx-race    a committed transactional access and a
///                      non-transactional access to the same word, on
///                      different threads, with no happens-before edge: a
///                      weak-isolation violation (the outcome depends on
///                      where the non-transactional access lands relative
///                      to the commit).
///  2. sgl-not-held     a chunked/SGL-mode pool access by a scope holding
///                      neither the SGL nor any annotated sync object
///                      while another transaction scope is concurrently
///                      active -- the Figure 4 flow is thread-unsafe by
///                      design and relies on exclusion being held.
///  3. nontx-race       both accesses non-transactional, different
///                      threads, no happens-before edge.
///  4. nondet-validate  a Validate-phase re-execution diverged from the
///                      Log phase (address mismatch, undo-value mismatch
///                      or length mismatch) although no other thread
///                      wrote any word the transaction accessed since the
///                      Log phase began: the body itself is
///                      nondeterministic, which Crafty cannot tolerate
///                      (paper Section 4.3).
///  5. unscoped-store   advisory lint: a non-transactional store to a
///                      pool data word outside any transaction scope --
///                      legal for setup code, but invisible to recovery.
///
/// Classes 1-4 are violations; class 5 is a lint. Race diagnostics are
/// deduplicated per word and sgl-not-held per scope, so one seeded bug
/// yields one report.
///
/// Thread safety: one internal mutex serializes all events. The checker
/// never calls back into the HTM runtime or the pool, so no lock-order
/// cycle exists with the stripe locks its callbacks may run under.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_CHECK_TXRACECHECK_H
#define CRAFTY_CHECK_TXRACECHECK_H

#include "check/CheckReport.h"
#include "support/Mutex.h"

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace crafty {

class HtmRuntime;
class PMemPool;

/// Diagnostic classes; see the file comment for their definitions.
enum class RaceDiag : uint8_t {
  TxNonTxRace,
  SglNotHeld,
  NonTxRace,
  NondetValidate,
  UnscopedStore, // Lint, not a violation.
};

inline constexpr unsigned NumRaceDiags = 5;

/// Returns the diagnostic's stable name ("tx-nontx-race", ...).
const char *raceDiagName(RaceDiag Kind);

/// True for the diagnostic classes counted as violations (all but the
/// unscoped-store lint).
inline bool isRaceViolation(RaceDiag Kind) {
  return Kind != RaceDiag::UnscopedStore;
}

/// One source-tagged diagnostic.
struct TxRaceReport {
  RaceDiag Kind;
  /// Pool thread id of the access that completed the race (or the scope
  /// for sgl-not-held / nondet-validate); ~0u when unknown.
  uint32_t ThreadId;
  /// The racing partner's pool thread id; ~0u for single-thread kinds.
  uint32_t OtherThreadId;
  /// Global index of the transaction scope involved; 0 outside any scope.
  uint64_t TxnIndex;
  /// Byte offset into the pool of the word involved.
  size_t PoolOffset;
  /// Crafty phase tag active in the scope ("log", "chunked", ...; "").
  const char *Phase;
  /// Access that detected the problem ("load", "store", "commit",
  /// "validate").
  const char *Event;
};

class TxRaceCheck {
public:
  /// Creates a checker scoped to \p Pool's address range. Call
  /// installHtmHooks to start receiving events.
  explicit TxRaceCheck(PMemPool &Pool);
  ~TxRaceCheck();

  TxRaceCheck(const TxRaceCheck &) = delete;
  TxRaceCheck &operator=(const TxRaceCheck &) = delete;

  /// Installs this checker's trampolines as \p Htm's AccessHooks /
  /// removes them again. Not thread-safe (same contract as
  /// HtmRuntime::setAccessHooks).
  void installHtmHooks(HtmRuntime &Htm);
  void removeHtmHooks(HtmRuntime &Htm);

  /// Declares [\p Begin, \p Begin + \p Bytes) exempt from race tracking
  /// (undo-log regions: written by design from many threads' forced
  /// commits, always inside transactions).
  void registerExemptRegion(const void *Begin, size_t Bytes);

  //===--------------------------------------------------------------------===
  // Scope API, driven by CraftyThread::run (mirrors PersistCheck's).
  //===--------------------------------------------------------------------===

  /// Opens a transaction scope for pool thread \p ThreadId and binds the
  /// calling OS thread to it (subsequent raw non-transactional events on
  /// this OS thread are attributed to \p ThreadId). Scopes do not nest.
  void beginTxn(uint32_t ThreadId);
  /// Tags \p ThreadId's open scope with a phase name (a pointer with
  /// static storage duration). "log" additionally resets the scope's read
  /// footprint and conflict horizon for the nondet-validate analysis.
  void setPhase(uint32_t ThreadId, const char *Tag);
  /// Closes \p ThreadId's scope.
  void endTxn(uint32_t ThreadId);

  /// The SGL was acquired / released by \p ThreadId (diagnostic 2 and the
  /// SGL happens-before edge).
  void sglAcquired(uint32_t ThreadId);
  void sglReleased(uint32_t ThreadId);

  /// Declares an application-level synchronization operation on the
  /// opaque object \p Obj (e.g. a std::mutex's address): acquire joins
  /// the object's clock, release stores the thread's clock into it. This
  /// is how externally synchronized thread-unsafe-mode programs
  /// (examples/lock_durability.cpp) tell the checker about ordering it
  /// cannot see.
  void syncAcquire(uint32_t ThreadId, const void *Obj);
  void syncRelease(uint32_t ThreadId, const void *Obj);

  /// The Validate phase diverged from the Log phase: a body write hit
  /// \p GotAddr where the undo record expected \p WantAddr (either may be
  /// null: value mismatches pass the common address, length mismatches
  /// pass null). Classified as nondet-validate unless a foreign write to
  /// the scope's footprint explains the divergence (diagnostic 4).
  void noteValidateDivergence(uint32_t ThreadId, const void *GotAddr,
                              const void *WantAddr);

  //===--------------------------------------------------------------------===
  // Event API: called by the AccessHooks trampolines; public so tests can
  // drive the checker deterministically without a runtime.
  //===--------------------------------------------------------------------===

  void txBegin(uint32_t ThreadId, uint64_t Snapshot);
  void txLoad(uint32_t ThreadId, const void *Addr);
  void txStore(uint32_t ThreadId, void *Addr);
  void txCommit(uint32_t ThreadId, uint64_t Version, bool HadWrites);
  void txAbort(uint32_t ThreadId);
  /// Raw non-transactional accesses, attributed to the calling OS
  /// thread's bound pool thread (or a synthetic id when unbound).
  void nonTxLoad(const void *Addr);
  void nonTxStore(void *Addr, uint64_t Version);

  //===--------------------------------------------------------------------===
  // Diagnostic queries (same shape as PersistCheck's).
  //===--------------------------------------------------------------------===

  uint64_t violationCount() const;
  uint64_t lintCount() const;
  uint64_t count(RaceDiag Kind) const;
  std::vector<TxRaceReport> reports() const;
  /// Human-readable rendering of up to \p MaxLines stored reports.
  std::string formatReports(size_t MaxLines = 32) const;
  /// Machine-readable rendering (check/CheckReport.h).
  CheckReport checkReport() const;
  void clearReports();

  /// Cap on stored (not counted) reports.
  static constexpr size_t MaxStoredReports = 1024;

  /// First thread id handed to unbound OS threads; real pool thread ids
  /// must stay below it.
  static constexpr uint32_t FirstSyntheticTid = 1024;

private:
  using VectorClock = std::vector<uint64_t>;

  /// One buffered speculative access of a live transaction.
  struct Access {
    uintptr_t Addr;
    bool IsWrite;
  };

  /// Last-reader record of a shadow word (one per reading thread).
  struct ReadEntry {
    uint32_t Tid;
    uint64_t Clk;
    bool Tx;
    /// Issued while the reader held the SGL.
    bool Sgl;
  };

  /// Per-word shadow cell.
  struct WordState {
    uint32_t WTid = ~0u;
    uint64_t WClk = 0;
    bool WTx = false;
    /// Last write was issued while its thread held the SGL.
    bool WSgl = false;
    /// Global event sequence of the last write (nondet-validate horizon).
    uint64_t WSeq = 0;
    std::vector<ReadEntry> Reads;
  };

  /// Per-thread vector-clock state.
  struct ThreadState {
    VectorClock C;
    uint64_t Snapshot = 0;
    bool InTx = false;
    unsigned SglDepth = 0;
    /// Count of annotated sync objects currently held (diagnostic 2).
    unsigned SyncHeld = 0;
    std::vector<Access> TxAccesses;
  };

  /// Per-pool-thread transaction scope.
  struct TxnScope {
    uint64_t TxnIndex = 0;
    const char *Phase = "";
    bool Active = false;
    bool SglNotHeldReported = false;
    /// Event sequence at the last setPhase("log"): foreign writes after
    /// this explain a Validate divergence (diagnostic 4).
    uint64_t LogStartSeq = 0;
    /// Pool data words this scope accessed since the Log phase began.
    std::unordered_set<uintptr_t> Footprint;
  };

  struct ExemptRegion {
    uintptr_t Begin;
    uintptr_t End;
  };

  /// True for pool words the checker tracks (in pool, not exempt).
  bool tracked(const void *Addr) const;

  ThreadState &stateFor(uint32_t Tid) CRAFTY_REQUIRES(M);
  TxnScope *scopeFor(uint32_t Tid) CRAFTY_REQUIRES(M);
  uint32_t boundTid() CRAFTY_REQUIRES(M);

  static uint64_t clockOf(const VectorClock &C, uint32_t Tid) {
    return Tid < C.size() ? C[Tid] : 0;
  }
  static void joinInto(VectorClock &Dst, const VectorClock &Src);

  /// P(UpTo): join of all commit clocks published at versions <= UpTo.
  void joinPrefix(VectorClock &Dst, uint64_t UpTo) CRAFTY_REQUIRES(M);
  /// Publishes \p C at \p Version into the prefix map (folding old
  /// entries beyond kMaxPrefixEntries into the cumulative base).
  void publish(uint64_t Version, const VectorClock &C) CRAFTY_REQUIRES(M);

  /// Shadow-state update with race checks. \p Event names the access for
  /// reports.
  void applyAccess(uint32_t Tid, uintptr_t Addr, bool IsWrite, bool IsTx,
                   const char *Event) CRAFTY_REQUIRES(M);
  /// Diagnostic 2: chunked-phase access with no exclusion held.
  void checkChunkedExclusion(uint32_t Tid, uintptr_t Addr, const char *Event)
      CRAFTY_REQUIRES(M);
  void report(RaceDiag Kind, uint32_t Tid, uint32_t OtherTid, uintptr_t Addr,
              const char *Event) CRAFTY_REQUIRES(M);

  const uintptr_t PoolBegin;
  const uintptr_t PoolEnd;
  bool HooksInstalled = false;

  mutable Mutex M;
  uint64_t NextSeq CRAFTY_GUARDED_BY(M) = 1;
  uint64_t TxnCounter CRAFTY_GUARDED_BY(M) = 0;
  uint32_t NextSyntheticTid CRAFTY_GUARDED_BY(M) = FirstSyntheticTid;
  std::vector<ExemptRegion> Exempt; // Written before events flow.
  std::unordered_map<uintptr_t, WordState> Words CRAFTY_GUARDED_BY(M);
  std::unordered_map<uint32_t, ThreadState> ThreadStates CRAFTY_GUARDED_BY(M);
  std::unordered_map<uint32_t, TxnScope> Scopes CRAFTY_GUARDED_BY(M);
  std::unordered_map<std::thread::id, uint32_t> Bindings CRAFTY_GUARDED_BY(M);
  std::unordered_map<const void *, VectorClock> SyncClocks
      CRAFTY_GUARDED_BY(M);
  unsigned ActiveScopes CRAFTY_GUARDED_BY(M) = 0;

  /// Commit-order prefix map: individual published clocks by version,
  /// with versions <= FoldedUpTo already joined into FoldedVC. Folding
  /// can only add (sound) extra edges to queries below FoldedUpTo.
  static constexpr size_t kMaxPrefixEntries = 256;
  std::map<uint64_t, VectorClock> Published CRAFTY_GUARDED_BY(M);
  VectorClock FoldedVC CRAFTY_GUARDED_BY(M);
  uint64_t FoldedUpTo CRAFTY_GUARDED_BY(M) = 0;
  /// Join of every published clock (the SGL-section acquire edge).
  VectorClock AllVC CRAFTY_GUARDED_BY(M);

  std::unordered_set<uintptr_t> RaceReportedWords CRAFTY_GUARDED_BY(M);
  std::unordered_set<uintptr_t> LintReportedWords CRAFTY_GUARDED_BY(M);
  uint64_t Counts[NumRaceDiags] CRAFTY_GUARDED_BY(M) = {};
  std::vector<TxRaceReport> Reports CRAFTY_GUARDED_BY(M);
};

} // namespace crafty

#endif // CRAFTY_CHECK_TXRACECHECK_H
