//===- support/Compiler.h - Compiler portability annotations ---*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability layer for compiler builtins used across the project.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_COMPILER_H
#define CRAFTY_SUPPORT_COMPILER_H

#include "support/Annotations.h"

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define CRAFTY_LIKELY(x) __builtin_expect(!!(x), 1)
#define CRAFTY_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define CRAFTY_NOINLINE __attribute__((noinline))
#define CRAFTY_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define CRAFTY_LIKELY(x) (x)
#define CRAFTY_UNLIKELY(x) (x)
#define CRAFTY_NOINLINE
#define CRAFTY_ALWAYS_INLINE inline
#endif

// Clang Thread Safety Analysis annotations (-Wthread-safety). GCC accepts
// none of these attributes, so they expand to nothing there; the dedicated
// Clang CI lane enforces them. See https://clang.llvm.org/docs/
// ThreadSafetyAnalysis.html for the attribute semantics.
#if defined(__clang__)
#define CRAFTY_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CRAFTY_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability (e.g. a mutex wrapper).
#define CRAFTY_CAPABILITY(x) CRAFTY_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define CRAFTY_SCOPED_CAPABILITY CRAFTY_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the given capability.
#define CRAFTY_GUARDED_BY(x) CRAFTY_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by the given capability.
#define CRAFTY_PT_GUARDED_BY(x) CRAFTY_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability and does not release it.
#define CRAFTY_ACQUIRE(...)                                                  \
  CRAFTY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases a capability acquired earlier.
#define CRAFTY_RELEASE(...)                                                  \
  CRAFTY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function attempts acquisition; the first argument is the success value.
#define CRAFTY_TRY_ACQUIRE(...)                                              \
  CRAFTY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability when calling the function.
#define CRAFTY_REQUIRES(...)                                                 \
  CRAFTY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (non-reentrant acquisition).
#define CRAFTY_EXCLUDES(...)                                                 \
  CRAFTY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for functions whose locking is deliberately unusual.
#define CRAFTY_NO_THREAD_SAFETY_ANALYSIS                                     \
  CRAFTY_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace crafty {

/// Aborts the process after printing \p Msg. Used for invariant violations
/// that must be diagnosable even in release builds (the library is built
/// without exceptions in spirit; fatal errors terminate).
///
/// CRAFTY_TX_SAFE: deliberate HTM boundary. fprintf/abort would abort a
/// hardware transaction, but every call site is a fatal invariant
/// violation -- the retry path re-executes under the SGL fallback where
/// the report runs outside HTM, and the process terminates either way.
CRAFTY_TX_SAFE [[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "crafty fatal error: %s\n", Msg);
  std::abort();
}

} // namespace crafty

/// Marks a point in code that must be unreachable if program invariants hold.
#define CRAFTY_UNREACHABLE(msg) ::crafty::fatalError("unreachable: " msg)

#endif // CRAFTY_SUPPORT_COMPILER_H
