//===- support/Compiler.h - Compiler portability annotations ---*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability layer for compiler builtins used across the project.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_COMPILER_H
#define CRAFTY_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define CRAFTY_LIKELY(x) __builtin_expect(!!(x), 1)
#define CRAFTY_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define CRAFTY_NOINLINE __attribute__((noinline))
#define CRAFTY_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define CRAFTY_LIKELY(x) (x)
#define CRAFTY_UNLIKELY(x) (x)
#define CRAFTY_NOINLINE
#define CRAFTY_ALWAYS_INLINE inline
#endif

namespace crafty {

/// Aborts the process after printing \p Msg. Used for invariant violations
/// that must be diagnosable even in release builds (the library is built
/// without exceptions in spirit; fatal errors terminate).
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "crafty fatal error: %s\n", Msg);
  std::abort();
}

} // namespace crafty

/// Marks a point in code that must be unreachable if program invariants hold.
#define CRAFTY_UNREACHABLE(msg) ::crafty::fatalError("unreachable: " msg)

#endif // CRAFTY_SUPPORT_COMPILER_H
