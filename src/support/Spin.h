//===- support/Spin.h - Spin-wait helpers ----------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spin-wait helpers. Every spin loop in the project yields to the scheduler
/// after a short burst: the reproduction host may have fewer cores than
/// runnable threads (the evaluation sweeps up to 16 threads), and a pure
/// busy-wait would starve the thread being waited on.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_SPIN_H
#define CRAFTY_SUPPORT_SPIN_H

#include <cstdint>
#include <thread>

namespace crafty {

/// Cooperative exponential-ish backoff: pause a few times, then yield.
class SpinBackoff {
public:
  void pause() {
    if (++Count < 16) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
      return;
    }
    Count = 0;
    std::this_thread::yield();
  }

  void reset() { Count = 0; }

private:
  uint32_t Count = 0;
};

} // namespace crafty

#endif // CRAFTY_SUPPORT_SPIN_H
