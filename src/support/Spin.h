//===- support/Spin.h - Spin-wait helpers ----------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spin-wait helpers. Every spin loop in the project yields to the scheduler
/// after a short burst: the reproduction host may have fewer cores than
/// runnable threads (the evaluation sweeps up to 16 threads), and a pure
/// busy-wait would starve the thread being waited on.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_SPIN_H
#define CRAFTY_SUPPORT_SPIN_H

#include <cstdint>
#include <thread>

namespace crafty {

/// One CPU pause (x86 PAUSE); a compiler barrier elsewhere.
inline void cpuPause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Cooperative exponential-ish backoff: pause a few times, then yield.
class SpinBackoff {
public:
  void pause() {
    if (++Count < 16) {
      cpuPause();
      return;
    }
    Count = 0;
    std::this_thread::yield();
  }

  void reset() { Count = 0; }

private:
  uint32_t Count = 0;
};

/// Bounded exponential backoff with jitter for abort-retry loops (the
/// STO_SPIN_EXPBACKOFF discipline): each call pauses for a jittered window
/// that doubles up to a cap, and once the window is capped every further
/// call also yields to the scheduler. The jitter desynchronizes threads
/// that aborted on the same conflict; the yield keeps an oversubscribed
/// host from burning a waiter's whole quantum while the conflicting
/// committer is descheduled (the dominant multi-thread failure mode on a
/// host with fewer cores than threads).
class ExpBackoff {
public:
  /// \p MinSpins is the first window, \p MaxSpins the cap; \p Seed
  /// decorrelates the jitter streams of different threads. MaxSpins == 0
  /// degenerates to yield-per-call (no pausing).
  ExpBackoff(uint32_t MinSpins, uint32_t MaxSpins, uint64_t Seed)
      : MinSpins(MinSpins ? MinSpins : 1), MaxSpins(MaxSpins),
        Window(this->MinSpins),
        RngState(Seed * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull) {}

  /// Escalating wait: call once after each failed attempt.
  void backoff() {
    if (Window > MaxSpins) {
      std::this_thread::yield();
      return;
    }
    // Jitter uniformly over [Window/2, Window].
    uint32_t Spins = Window / 2 + (uint32_t)(nextRand() % (Window / 2 + 1));
    for (uint32_t I = 0; I != Spins; ++I)
      cpuPause();
    if (Window == MaxSpins)
      Window = MaxSpins + 1; // Saturated: yield from now on.
    else
      Window = Window * 2 < MaxSpins ? Window * 2 : MaxSpins;
  }

  void reset() { Window = MinSpins; }

private:
  uint64_t nextRand() {
    // xorshift64*: cheap thread-local jitter, no shared state.
    RngState ^= RngState >> 12;
    RngState ^= RngState << 25;
    RngState ^= RngState >> 27;
    return RngState * 0x2545f4914f6cdd1dull;
  }

  uint32_t MinSpins;
  uint32_t MaxSpins;
  uint32_t Window;
  uint64_t RngState;
};

} // namespace crafty

#endif // CRAFTY_SUPPORT_SPIN_H
