//===- support/FunctionRef.h - Non-owning callable reference ---*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal function_ref in the spirit of llvm::function_ref: a cheap,
/// non-owning reference to a callable, used to pass transaction bodies
/// without allocation. The referenced callable must outlive the call.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_FUNCTIONREF_H
#define CRAFTY_SUPPORT_FUNCTIONREF_H

#include <cstdint>
#include <type_traits>
#include <utility>

namespace crafty {

template <typename Fn> class FunctionRef;

template <typename Ret, typename... Params> class FunctionRef<Ret(Params...)> {
public:
  FunctionRef() = default;

  template <typename Callable>
  FunctionRef(Callable &&Fn,
              std::enable_if_t<!std::is_same_v<std::remove_cvref_t<Callable>,
                                               FunctionRef>> * = nullptr)
      : Callback(callbackFn<std::remove_reference_t<Callable>>),
        Callee(reinterpret_cast<void *>(&Fn)) {}

  Ret operator()(Params... Args) const {
    return Callback(Callee, std::forward<Params>(Args)...);
  }

  explicit operator bool() const { return Callback != nullptr; }

private:
  template <typename Callable>
  static Ret callbackFn(void *Callee, Params... Args) {
    return (*reinterpret_cast<Callable *>(Callee))(
        std::forward<Params>(Args)...);
  }

  Ret (*Callback)(void *, Params...) = nullptr;
  void *Callee = nullptr;
};

} // namespace crafty

#endif // CRAFTY_SUPPORT_FUNCTIONREF_H
