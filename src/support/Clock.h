//===- support/Clock.h - Timestamp sources ---------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timestamp sources. The paper's prototype takes Lamport timestamps from
/// RDTSC inside hardware transactions. In this reproduction, transaction
/// commit timestamps come from the HTM emulation's global version clock
/// (see htm/Htm.h), which is exactly consistent with the serialization
/// order. The wall-clock here is used only for measurement and for
/// MAX_LAG-style bounds where a physical-time notion is convenient.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_CLOCK_H
#define CRAFTY_SUPPORT_CLOCK_H

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace crafty {

/// Reads the processor timestamp counter, or a monotonic nanosecond clock on
/// platforms without one. Values from different calls on the same core are
/// monotonically increasing.
inline uint64_t rdtsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return (uint64_t)Ts.tv_sec * 1000000000ull + (uint64_t)Ts.tv_nsec;
#endif
}

/// Returns a monotonic wall-clock reading in nanoseconds.
uint64_t monotonicNanos();

/// Busy-waits for approximately \p Nanos nanoseconds. Used by the
/// persistent-memory simulator to emulate NVM write-back latency exactly as
/// the paper's methodology does (300 ns per drain by default).
void spinForNanos(uint64_t Nanos);

} // namespace crafty

#endif // CRAFTY_SUPPORT_CLOCK_H
