//===- support/Mutex.h - Annotated locking primitives ----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin locking wrappers carrying Clang Thread Safety Analysis capability
/// annotations (support/Compiler.h). libstdc++'s std::mutex is not
/// annotated, so code that wants -Wthread-safety coverage uses these
/// instead; under GCC the annotations vanish and the wrappers compile to
/// the underlying primitives.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_MUTEX_H
#define CRAFTY_SUPPORT_MUTEX_H

#include "support/Compiler.h"

#include <atomic>
#include <mutex>

namespace crafty {

/// An annotated std::mutex.
class CRAFTY_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() CRAFTY_ACQUIRE() { M.lock(); }
  void unlock() CRAFTY_RELEASE() { M.unlock(); }

private:
  std::mutex M;
};

/// Annotated scoped lock (std::lock_guard equivalent) over Mutex.
class CRAFTY_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) CRAFTY_ACQUIRE(M) : M(M) { M.lock(); }
  ~MutexLock() CRAFTY_RELEASE() { M.unlock(); }
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  Mutex &M;
};

/// An annotated test-and-set spin lock (used where the critical section is
/// a few loads/stores and blocking primitives would dominate).
class CRAFTY_CAPABILITY("mutex") SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() CRAFTY_ACQUIRE() {
    while (Flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() CRAFTY_RELEASE() { Flag.clear(std::memory_order_release); }

private:
  std::atomic_flag Flag = ATOMIC_FLAG_INIT;
};

} // namespace crafty

#endif // CRAFTY_SUPPORT_MUTEX_H
