//===- support/Mutex.h - Annotated locking primitives ----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin locking wrappers carrying Clang Thread Safety Analysis capability
/// annotations (support/Compiler.h). libstdc++'s std::mutex is not
/// annotated, so code that wants -Wthread-safety coverage uses these
/// instead; under GCC the annotations vanish and the wrappers compile to
/// the underlying primitives.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_MUTEX_H
#define CRAFTY_SUPPORT_MUTEX_H

#include "support/Compiler.h"

#include <atomic>
#include <mutex>

namespace crafty {

/// An annotated std::mutex.
class CRAFTY_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() CRAFTY_ACQUIRE() { M.lock(); }
  void unlock() CRAFTY_RELEASE() { M.unlock(); }

  /// The wrapped std::mutex, for std::condition_variable interop only
  /// (MutexUniqueLock::raw()). Locking through it bypasses the analysis.
  std::mutex &native() { return M; }

private:
  std::mutex M;
};

/// Annotated scoped lock (std::lock_guard equivalent) over Mutex.
class CRAFTY_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) CRAFTY_ACQUIRE(M) : M(M) { M.lock(); }
  ~MutexLock() CRAFTY_RELEASE() { M.unlock(); }
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  Mutex &M;
};

/// Annotated unique lock over Mutex for condition-variable waits:
/// std::condition_variable requires a std::unique_lock<std::mutex>, which
/// raw() exposes. The wait's internal unlock/relock is invisible to the
/// analysis, which treats the capability as held for the whole scope --
/// the right model for the guarded data, since the lock is always re-held
/// whenever control is in this scope.
class CRAFTY_SCOPED_CAPABILITY MutexUniqueLock {
public:
  explicit MutexUniqueLock(Mutex &M) CRAFTY_ACQUIRE(M) : Lk(M.native()) {}
  ~MutexUniqueLock() CRAFTY_RELEASE() = default;
  MutexUniqueLock(const MutexUniqueLock &) = delete;
  MutexUniqueLock &operator=(const MutexUniqueLock &) = delete;

  std::unique_lock<std::mutex> &raw() { return Lk; }

private:
  std::unique_lock<std::mutex> Lk;
};

/// An annotated test-and-set spin lock (used where the critical section is
/// a few loads/stores and blocking primitives would dominate).
class CRAFTY_CAPABILITY("mutex") SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() CRAFTY_ACQUIRE() {
    while (Flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() CRAFTY_RELEASE() { Flag.clear(std::memory_order_release); }

private:
  std::atomic_flag Flag = ATOMIC_FLAG_INIT;
};

} // namespace crafty

#endif // CRAFTY_SUPPORT_MUTEX_H
