//===- support/Annotations.h - crafty-lint annotation vocabulary -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source annotations consumed by the compile-time persistence and
/// HTM-discipline analyzer (tools/crafty-lint). Crafty's correctness rests
/// on rules the compiler never sees: every store to persistent memory must
/// go through the transactional API so the undo log can roll it back, a
/// flush must be followed by a drain (or deliberately deferred to the next
/// HTM commit fence) before durability is claimed, code reachable from a
/// hardware-transaction body must avoid HTM-aborting operations, and loops
/// issuing transactional stores must carry a visible bound so they stay
/// inside HTM write capacity. These macros make that discipline explicit
/// in the source so the analyzer can enforce it on every path, in CI.
///
/// Under Clang each macro expands to a [[clang::annotate("crafty::...")]]
/// attribute, so an AST-based frontend (or clang-query) sees the same
/// vocabulary; under other compilers they expand to nothing. crafty-lint's
/// built-in frontend recognizes the macro spellings directly and therefore
/// works with any toolchain.
///
/// Vocabulary:
///  - CRAFTY_PMEM           pointer whose pointee (or field whose storage)
///                          lives in persistent memory. Raw stores through
///                          it bypass the undo log: rule pm-raw-store.
///  - CRAFTY_TX_SAFE        function is safe inside a hardware transaction;
///                          the call-graph traversal of htm-unsafe-call
///                          trusts it and does not descend.
///  - CRAFTY_HTM_UNSAFE     function must never execute inside a hardware
///                          transaction (syscalls, I/O, unbounded locking).
///  - CRAFTY_TX_BODY        transaction-body entry point: a root for the
///                          htm-unsafe-call reachability analysis.
///  - CRAFTY_TX_STORE_API   a transactional store primitive: the legal way
///                          to write persistent memory, and the event the
///                          unbounded-tx-writes loop rule counts.
///  - CRAFTY_FLUSH_API      schedules cache-line write-backs (clwb family);
///                          arms the flush-without-drain CFG rule.
///  - CRAFTY_DRAIN_API      completes the calling thread's write-backs
///                          (drain/persist barrier); clears the rule.
///  - CRAFTY_DRAIN_DEFERRED function deliberately returns with scheduled
///                          but undrained flushes -- Crafty's signature
///                          flush-without-drain optimization, where the
///                          next hardware transaction's commit fence is
///                          the drain (paper Section 4.1).
///  - CRAFTY_TX_BOUND(N)    statement macro asserting the enclosing loop's
///                          transactional writes are bounded by N, which
///                          the author has checked against HTM capacity.
///  - CRAFTY_PM_PUBLISH     commit-marker / pointer-publish field: a store
///                          to it makes earlier persistent stores reachable
///                          after a crash, so those stores must be flushed
///                          AND drained first (rule persist-ordering).
///  - CRAFTY_TX_CAPACITY(N) declares a transaction body's per-transaction
///                          write budget in 8-byte words; tx-capacity
///                          cross-checks the interprocedural static bound
///                          against it (and against the HTM budget).
///
/// A finding on a deliberate pattern can be silenced in place with
///   // crafty-lint: suppress(<rule>) <justification>
/// on the diagnosed line or the line above it, or accepted into the
/// committed baseline (tools/crafty-lint/baseline.json). See DESIGN.md
/// Section 5.3 for rule semantics and the baseline workflow.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_ANNOTATIONS_H
#define CRAFTY_SUPPORT_ANNOTATIONS_H

#if defined(__clang__)
#define CRAFTY_ANNOTATE(x) [[clang::annotate(x)]]
#else
#define CRAFTY_ANNOTATE(x)
#endif

#define CRAFTY_PMEM CRAFTY_ANNOTATE("crafty::pmem")
#define CRAFTY_TX_SAFE CRAFTY_ANNOTATE("crafty::tx_safe")
#define CRAFTY_HTM_UNSAFE CRAFTY_ANNOTATE("crafty::htm_unsafe")
#define CRAFTY_TX_BODY CRAFTY_ANNOTATE("crafty::tx_body")
#define CRAFTY_TX_STORE_API CRAFTY_ANNOTATE("crafty::tx_store_api")
#define CRAFTY_FLUSH_API CRAFTY_ANNOTATE("crafty::flush_api")
#define CRAFTY_DRAIN_API CRAFTY_ANNOTATE("crafty::drain_api")
#define CRAFTY_DRAIN_DEFERRED CRAFTY_ANNOTATE("crafty::drain_deferred")

#define CRAFTY_PM_PUBLISH CRAFTY_ANNOTATE("crafty::pm_publish")

/// Evaluates nothing at run time; the operand is unevaluated, so runtime
/// expressions (config fields, locals) are legal bounds.
#define CRAFTY_TX_BOUND(n) ((void)sizeof((n)))

/// Declaration annotation (place before the function like the other
/// macros); the operand is unevaluated.
#if defined(__clang__)
#define CRAFTY_TX_CAPACITY(n) [[clang::annotate("crafty::tx_capacity")]]
#else
#define CRAFTY_TX_CAPACITY(n)
#endif

#endif // CRAFTY_SUPPORT_ANNOTATIONS_H
