//===- support/CacheLine.h - Cache-line geometry helpers -------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line geometry constants and address arithmetic used by the HTM
/// emulation (line-granular conflict detection) and the persistent-memory
/// simulator (line-granular flush/drain/eviction).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_CACHELINE_H
#define CRAFTY_SUPPORT_CACHELINE_H

#include <cstddef>
#include <cstdint>

namespace crafty {

/// Cache-line size assumed throughout the project (x86).
inline constexpr size_t CacheLineBytes = 64;
inline constexpr size_t CacheLineShift = 6;

/// Returns the byte address of the cache line containing \p Addr.
inline uintptr_t lineOf(const void *Addr) {
  return reinterpret_cast<uintptr_t>(Addr) & ~(uintptr_t)(CacheLineBytes - 1);
}

/// Returns true if \p Addr is aligned to an 8-byte word, the granularity at
/// which all persistent writes are expressed (paper Section 6).
inline bool isWordAligned(const void *Addr) {
  return (reinterpret_cast<uintptr_t>(Addr) & 7) == 0;
}

} // namespace crafty

#endif // CRAFTY_SUPPORT_CACHELINE_H
