//===- support/Rng.h - Deterministic pseudo-random generator ---*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable xoshiro256** generator. Workload generators,
/// failure injection (spurious "zero" aborts), and the persistent-memory
/// evictor all use explicit seeds so experiments and crash tests replay
/// deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_SUPPORT_RNG_H
#define CRAFTY_SUPPORT_RNG_H

#include <cstdint>

namespace crafty {

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Resets the generator state from \p Seed using splitmix64 expansion.
  void reseed(uint64_t Seed) {
    for (auto &Word : State) {
      Seed += 0x9e3779b97f4a7c15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      Word = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBounded(uint64_t Bound) { return next() % Bound; }

  /// Returns true with probability \p Numer / \p Denom.
  bool chance(uint64_t Numer, uint64_t Denom) {
    return nextBounded(Denom) < Numer;
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace crafty

#endif // CRAFTY_SUPPORT_RNG_H
