//===- support/Clock.cpp - Timestamp sources ------------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Clock.h"

#include <ctime>

namespace crafty {

uint64_t monotonicNanos() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return (uint64_t)Ts.tv_sec * 1000000000ull + (uint64_t)Ts.tv_nsec;
}

void spinForNanos(uint64_t Nanos) {
  if (Nanos == 0)
    return;
  uint64_t Deadline = monotonicNanos() + Nanos;
  while (monotonicNanos() < Deadline) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

} // namespace crafty
