//===- log/RedoLog.h - Volatile per-transaction redo log --------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The volatile redo log Crafty's Log phase builds while rolling back its
/// writes (paper Section 4.1). It is not needed once the persistent
/// transaction completes, so each transaction reuses it from the start.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LOG_REDOLOG_H
#define CRAFTY_LOG_REDOLOG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crafty {

/// A ⟨address, new value⟩ pair to be applied by the Redo phase.
struct RedoEntry {
  uint64_t *Addr;
  uint64_t Val;
};

/// Volatile, thread-local redo log.
class RedoLog {
public:
  void clear() { Entries.clear(); }
  void append(uint64_t *Addr, uint64_t Val) {
    Entries.push_back(RedoEntry{Addr, Val});
  }
  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  /// Entries in the order the Log phase recorded them (reverse program
  /// order); the Redo phase iterates them in reverse, i.e. program order.
  const std::vector<RedoEntry> &entries() const { return Entries; }

private:
  std::vector<RedoEntry> Entries;
};

} // namespace crafty

#endif // CRAFTY_LOG_REDOLOG_H
