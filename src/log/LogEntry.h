//===- log/LogEntry.h - Undo-log entry encoding ----------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding of persistent undo-log entries (paper Sections 5.2 and 6).
///
/// Each entry is two 8-byte words. Because every logged address is 8-byte
/// aligned, its low three bits are stolen:
///
///   AddrWord: [addr bits 63..3 | stolen-value-LSB | wraparound bit W]
///   ValWord:  [value bits 63..1                   | wraparound bit W]
///
/// The value word's real low bit lives in the addr word (bit 1) so both
/// words carry the wraparound bit. NVM persists at word granularity, so
/// the recovery observer checks both words' W bits: if they disagree the
/// entry is torn (only one word persisted) and is not part of any fully
/// persisted sequence. If both words still carry the previous pass's W,
/// the position holds the complete *previous-pass* entry, which is equally
/// decodable -- that is why a single wraparound bit suffices.
///
/// LOGGED and COMMITTED tags are reserved, 8-byte-aligned "addresses".
/// A tag's value word holds the sequence timestamp shifted left by one
/// (timestamps are commit versions; keeping the payload LSB zero means a
/// torn stolen bit can never corrupt a timestamp). The implementation
/// merges LOGGED and COMMITTED into one entry whose timestamp is
/// overwritten on commit (paper Section 6); a separate COMMITTED tag marks
/// the end of an SGL section.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LOG_LOGENTRY_H
#define CRAFTY_LOG_LOGENTRY_H

#include <cassert>
#include <cstdint>

namespace crafty {

/// Reserved tag "addresses" (8-byte aligned, never real heap addresses).
inline constexpr uint64_t TagLogged = 8;
inline constexpr uint64_t TagCommitted = 16;

/// One encoded undo-log entry: two words as laid out in persistent memory.
struct EncodedEntry {
  uint64_t AddrWord;
  uint64_t ValWord;
};

/// Encodes a data entry ⟨Addr, OldValue⟩ for wraparound pass \p Pass.
inline EncodedEntry encodeDataEntry(uint64_t Addr, uint64_t OldValue,
                                    unsigned Pass) {
  assert((Addr & 7) == 0 && "logged addresses must be 8-byte aligned");
  assert(Addr != 0 && Addr != TagLogged && Addr != TagCommitted &&
         "address collides with a reserved tag");
  EncodedEntry E;
  E.AddrWord = Addr | ((OldValue & 1) << 1) | (Pass & 1);
  E.ValWord = (OldValue & ~1ull) | (Pass & 1);
  return E;
}

/// Encodes a LOGGED or COMMITTED tag carrying timestamp \p Ts.
inline EncodedEntry encodeTagEntry(uint64_t Tag, uint64_t Ts, unsigned Pass) {
  assert((Tag == TagLogged || Tag == TagCommitted) && "not a tag");
  assert(Ts < (1ull << 62) && "timestamp overflows the shifted payload");
  EncodedEntry E;
  E.AddrWord = Tag | (Pass & 1); // Payload LSB is always zero.
  E.ValWord = (Ts << 1) | (Pass & 1);
  return E;
}

/// The timestamp payload of a tag entry whose value word will be written
/// with HtmTx::storeCommitVersion: Shift = 1 and OrMask = Pass reproduce
/// encodeTagEntry's ValWord for Ts = the commit version.
inline constexpr unsigned TagTsCommitVersionShift = 1;

/// A decoded undo-log entry.
struct DecodedEntry {
  enum class Kind : uint8_t {
    /// Torn (wraparound bits disagree) or never written.
    Invalid,
    /// ⟨addr, oldValue⟩ data entry.
    Data,
    Logged,
    Committed,
  };
  Kind K = Kind::Invalid;
  /// Wraparound pass bit carried by the entry (valid unless Invalid).
  unsigned Pass = 0;
  /// Data entries: the logged address and old value.
  uint64_t Addr = 0;
  uint64_t Value = 0;
  /// Tag entries: the sequence timestamp.
  uint64_t Ts = 0;

  bool isTag() const { return K == Kind::Logged || K == Kind::Committed; }
};

/// Decodes the two words of a log slot as the recovery observer sees them
/// in the persistent image.
inline DecodedEntry decodeEntry(uint64_t AddrWord, uint64_t ValWord) {
  DecodedEntry D;
  unsigned WA = AddrWord & 1, WV = ValWord & 1;
  if (WA != WV)
    return D; // Torn: only one word of the entry persisted.
  D.Pass = WA;
  uint64_t AddrField = AddrWord & ~7ull;
  if (AddrField == 0)
    return D; // Never written (zero-initialized log, pass-0 region).
  if (AddrField == TagLogged || AddrField == TagCommitted) {
    D.K = AddrField == TagLogged ? DecodedEntry::Kind::Logged
                                 : DecodedEntry::Kind::Committed;
    D.Ts = ValWord >> 1;
    return D;
  }
  D.K = DecodedEntry::Kind::Data;
  D.Addr = AddrField;
  D.Value = (ValWord & ~1ull) | ((AddrWord >> 1) & 1);
  return D;
}

} // namespace crafty

#endif // CRAFTY_LOG_LOGENTRY_H
