//===- log/PoolLayout.h - On-pmem pool layout -------------------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layout of a Crafty-formatted persistent pool. A header at offset zero
/// locates each thread's circular undo log and the persistent heap, so the
/// recovery observer can find them in a crash image without any volatile
/// state. The header is persisted once at format time.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_LOG_POOLLAYOUT_H
#define CRAFTY_LOG_POOLLAYOUT_H

#include "log/LogEntry.h"
#include "pmem/PMemPool.h"
#include "support/Annotations.h"

#include <cstdint>

namespace crafty {

inline constexpr uint64_t PoolMagic = 0xC7AF77F0C7AF77F0ull;

/// Pool header, at pool offset zero. All offsets are from the pool base.
struct PoolHeader {
  /// The format-time commit marker: recovery trusts the rest of the
  /// header (and everything it locates) only once Magic is durable, so
  /// stores to the other fields must be flushed and drained before any
  /// store publishing Magic.
  CRAFTY_PMEM CRAFTY_PM_PUBLISH uint64_t Magic = 0;
  CRAFTY_PMEM uint32_t NumThreads = 0;
  CRAFTY_PMEM uint32_t LogEntriesPerThread = 0; // Power of two.
  CRAFTY_PMEM uint64_t LogsOffset = 0; // NumThreads consecutive log regions.
  CRAFTY_PMEM uint64_t HeapOffset = 0;
  CRAFTY_PMEM uint64_t HeapBytes = 0;
  /// Virtual address the pool was mapped at when the logs were written.
  /// Undo-log entries hold virtual addresses; a recovery observer working
  /// on a crash image mapped elsewhere translates through this base.
  CRAFTY_PMEM uint64_t MappedBase = 0;
};

/// Geometry of one thread's circular undo-log region (2 words per entry).
struct UndoLogRegion {
  /// Bytes per slot: the addr word and val word are adjacent, so a slot
  /// never straddles a cache line and flushing a slot run is one
  /// contiguous byte range.
  static constexpr size_t EntryBytes = 2 * sizeof(uint64_t);

  CRAFTY_PMEM uint64_t *Slots = nullptr; // Pointee is in-pool log memory.
  size_t NumEntries = 0; // Power of two.

  uint64_t *addrWordAt(size_t Slot) const { return Slots + 2 * Slot; }
  uint64_t *valWordAt(size_t Slot) const { return Slots + 2 * Slot + 1; }

  size_t slotFor(uint64_t AbsPos) const { return AbsPos & (NumEntries - 1); }

  /// Wraparound pass bit for an absolute (monotonic) log position. The
  /// first pass writes W = 1 so zero-initialized slots (W = 0) read as
  /// never written.
  unsigned passFor(uint64_t AbsPos) const {
    return 1 ^ (unsigned)((AbsPos / NumEntries) & 1);
  }

  size_t regionBytes() const { return NumEntries * EntryBytes; }
};

/// Formats \p Pool: carves the header, \p NumThreads undo logs of
/// \p LogEntries entries each, and a heap of \p HeapBytes; persists the
/// header. Returns a pointer to the in-pool header.
inline PoolHeader *formatPool(PMemPool &Pool, unsigned NumThreads,
                              size_t LogEntries, size_t HeapBytes) {
  assert((LogEntries & (LogEntries - 1)) == 0 &&
         "log entry count must be a power of two");
  auto *Header = static_cast<PoolHeader *>(Pool.carve(sizeof(PoolHeader)));
  void *Logs = Pool.carve(NumThreads * LogEntries * UndoLogRegion::EntryBytes);
  void *Heap = HeapBytes ? Pool.carve(HeapBytes) : nullptr;
  PoolHeader H;
  H.Magic = PoolMagic;
  H.NumThreads = NumThreads;
  H.LogEntriesPerThread = (uint32_t)LogEntries;
  H.LogsOffset = static_cast<uint8_t *>(Logs) - Pool.base();
  H.HeapOffset = Heap ? static_cast<uint8_t *>(Heap) - Pool.base() : 0;
  H.HeapBytes = HeapBytes;
  H.MappedBase = reinterpret_cast<uint64_t>(Pool.base());
  Pool.persistDirect(Header, &H, sizeof(H));
  return Header;
}

/// Returns thread \p ThreadId's undo-log region for a pool whose base is
/// \p PoolBase (either the live pool or a crash image).
inline UndoLogRegion logRegionFor(uint8_t *PoolBase, const PoolHeader &H,
                                  unsigned ThreadId) {
  UndoLogRegion R;
  R.NumEntries = H.LogEntriesPerThread;
  R.Slots = reinterpret_cast<uint64_t *>(PoolBase + H.LogsOffset +
                                         (size_t)ThreadId * R.regionBytes());
  return R;
}

} // namespace crafty

#endif // CRAFTY_LOG_POOLLAYOUT_H
