//===- core/Ptm.h - Persistent-transaction backend interface ---*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend-generic persistent-transaction interface. Crafty (and its
/// NoRedo / NoValidate variants) and the baselines (Non-durable, NV-HTM,
/// DudeTM) all implement PtmBackend, so examples, tests, workloads and the
/// evaluation harness are written once against this interface -- mirroring
/// how the paper evaluates every system on the same benchmarks.
///
/// Transactions are expressed as callables receiving a TxnContext, through
/// which all persistent loads and stores go (8-byte aligned words, as in
/// the paper's implementation). A body may run more than once (Crafty's
/// Log and Validate phases re-execute it; aborted attempts restart it), so
/// bodies must be idempotent with respect to function-local state, exactly
/// as the paper requires (Section 6). Allocation inside transactions must
/// go through TxnContext::alloc/dealloc so Crafty can log and replay it.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_CORE_PTM_H
#define CRAFTY_CORE_PTM_H

#include "htm/Htm.h"
#include "support/Annotations.h"
#include "support/FunctionRef.h"

#include <cstddef>
#include <cstdint>

namespace crafty {

/// How a persistent transaction completed; categories match the paper's
/// appendix breakdowns (Figures 9-21).
struct PtmStats {
  /// Completed in a plain hardware transaction (Non-durable / NV-HTM /
  /// DudeTM; labeled "Non-Crafty" in the paper's figures).
  uint64_t NonCrafty = 0;
  /// Read-only fast path (Crafty skips Redo and Validate).
  uint64_t ReadOnly = 0;
  /// Crafty: committed by the Redo phase.
  uint64_t Redo = 0;
  /// Crafty: committed by the Validate phase.
  uint64_t Validate = 0;
  /// Completed under the single-global-lock fallback.
  uint64_t Sgl = 0;
  /// Total persistent writes executed by committed transactions.
  uint64_t Writes = 0;
  /// Crafty: attempts that observed the SGL held and waited it out
  /// (waitSglFree) before retrying -- the fallback-path serialization the
  /// contention work drives down.
  uint64_t SglWaits = 0;
  /// Wall-clock nanoseconds spent in each Crafty phase (including aborted
  /// attempts); populated only when phase timing is enabled
  /// (CraftyConfig::CollectPhaseTimings) and zero for the baselines.
  uint64_t LogPhaseNs = 0;
  uint64_t RedoPhaseNs = 0;
  uint64_t ValidatePhaseNs = 0;
  uint64_t SglNs = 0;

  uint64_t transactions() const {
    return NonCrafty + ReadOnly + Redo + Validate + Sgl;
  }

  PtmStats &operator+=(const PtmStats &O) {
    NonCrafty += O.NonCrafty;
    ReadOnly += O.ReadOnly;
    Redo += O.Redo;
    Validate += O.Validate;
    Sgl += O.Sgl;
    Writes += O.Writes;
    SglWaits += O.SglWaits;
    LogPhaseNs += O.LogPhaseNs;
    RedoPhaseNs += O.RedoPhaseNs;
    ValidatePhaseNs += O.ValidatePhaseNs;
    SglNs += O.SglNs;
    return *this;
  }
};

/// Handle through which a transaction body accesses persistent memory.
class TxnContext {
public:
  /// Reads the 8-byte word at \p Addr.
  CRAFTY_TX_SAFE virtual uint64_t load(const uint64_t *Addr) = 0;

  /// Writes the 8-byte word at \p Addr.
  CRAFTY_TX_SAFE CRAFTY_TX_STORE_API virtual void store(uint64_t *Addr,
                                                       uint64_t Val) = 0;

  /// Allocates \p Bytes of persistent memory. The allocation is logged:
  /// if the body re-executes (Crafty's Validate phase), the same pointer
  /// is returned again. Returns nullptr when the arena is exhausted.
  virtual void *alloc(size_t Bytes) = 0;

  /// Frees a persistent allocation. The free is deferred until the
  /// transaction commits, so an aborted or re-executed body never
  /// double-frees.
  virtual void dealloc(void *Ptr) = 0;

  /// Convenience typed accessors for word-sized values.
  template <typename T> CRAFTY_TX_SAFE T loadAs(const T *Addr) {
    static_assert(sizeof(T) == 8, "transactional accesses are 8-byte words");
    uint64_t V = load(reinterpret_cast<const uint64_t *>(Addr));
    T Out;
    __builtin_memcpy(&Out, &V, sizeof(T));
    return Out;
  }
  template <typename T>
  CRAFTY_TX_SAFE CRAFTY_TX_STORE_API void storeAs(T *Addr, T Val) {
    static_assert(sizeof(T) == 8, "transactional accesses are 8-byte words");
    uint64_t V;
    __builtin_memcpy(&V, &Val, sizeof(Val));
    store(reinterpret_cast<uint64_t *>(Addr), V);
  }

protected:
  ~TxnContext() = default;
};

/// A transaction body: may run several times; see the file comment.
using TxnBody = FunctionRef<void(TxnContext &)>;

/// A persistent-transaction system under evaluation.
class PtmBackend {
public:
  virtual ~PtmBackend();

  /// Short configuration name as used in the paper's figures, e.g.
  /// "Crafty", "NV-HTM".
  virtual const char *name() const = 0;

  /// Number of worker threads this backend instance supports.
  virtual unsigned maxThreads() const = 0;

  /// Executes \p Body as one persistent transaction on behalf of worker
  /// \p ThreadId. Blocks until the transaction has committed (durability
  /// semantics beyond that point are backend-specific, as in the paper);
  /// the commit fence gives it drain semantics for any flush the caller
  /// issued before entering.
  CRAFTY_TX_SAFE CRAFTY_DRAIN_API virtual void run(unsigned ThreadId,
                                                   TxnBody Body) = 0;

  /// Drains background work (checkpointers, log appliers). Called before
  /// reading final statistics or simulating a clean shutdown.
  virtual void quiesce() {}

  /// Aggregated persistent-transaction completion statistics.
  virtual PtmStats txnStats() const = 0;

  /// Aggregated hardware-transaction statistics.
  virtual HtmStats htmStats() const = 0;

  /// Hardware-transaction statistics of \p ThreadId's context alone.
  /// Unlike htmStats(), this reads only state owned by that context, so
  /// the thread currently driving \p ThreadId may call it concurrently
  /// with other threads' transactions (the KV server's STATS command
  /// collects per-worker contributions this way).
  virtual HtmStats htmStatsFor(unsigned ThreadId) const {
    (void)ThreadId;
    return HtmStats();
  }
};

/// Runs \p Body as a *publish* transaction: the small pointer-swing
/// transaction of the stage-then-publish large-object discipline
/// (heap/DurableHeap.h). Behaviorally identical to Backend.run; it exists
/// to name the ordering contract that discipline leans on: any writeback
/// the caller scheduled before entering (CRAFTY_DRAIN_DEFERRED staging)
/// is completed by this transaction's commit fence, so staged bytes are
/// persistent no later than the pointer swing that makes them reachable.
CRAFTY_TX_SAFE CRAFTY_DRAIN_API inline void
runPublish(PtmBackend &Backend, unsigned ThreadId, TxnBody Body) {
  Backend.run(ThreadId, Body);
}

} // namespace crafty

#endif // CRAFTY_CORE_PTM_H
