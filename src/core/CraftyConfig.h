//===- core/CraftyConfig.h - Crafty runtime configuration ------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the Crafty runtime: execution mode (paper Section 4),
/// the evaluated variants (Section 7.1), fallback thresholds, and the
/// Section 5.2 log-maintenance parameters.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_CORE_CRAFTYCONFIG_H
#define CRAFTY_CORE_CRAFTYCONFIG_H

#include <cstddef>
#include <cstdint>

namespace crafty {

/// Crafty execution mode (paper Figures 3 and 4).
enum class CraftyMode : uint8_t {
  /// Crafty provides both thread atomicity and durability (full ACID).
  ThreadSafe,
  /// The program provides atomicity (e.g. locks); Crafty provides only
  /// durability, using the chunked Log/Redo flow of Figure 4.
  ThreadUnsafe,
};

struct CraftyConfig {
  CraftyMode Mode = CraftyMode::ThreadSafe;

  /// Crafty-NoRedo: skip the Redo phase, committing via Validate.
  bool DisableRedo = false;
  /// Crafty-NoValidate: skip the Validate phase; a failed Redo check
  /// restarts the whole transaction.
  bool DisableValidate = false;

  /// Worker threads (contexts are created eagerly).
  unsigned NumThreads = 1;

  /// Entries per per-thread circular undo log (power of two). Must hold at
  /// least two maximal sequences: the largest transaction may write at
  /// most LogEntriesPerThread / 2 - 2 words.
  size_t LogEntriesPerThread = 1 << 14;

  /// Per-thread allocator arena carved from the pool; 0 disables
  /// TxnContext::alloc support.
  size_t ArenaBytesPerThread = 0;

  /// Aborts (across Log/Redo/Validate) before falling back to the SGL.
  unsigned SglAttemptThreshold = 10;

  /// Non-check-failure Redo retries before trying Validate.
  unsigned RedoRetries = 3;

  /// Initial persistent writes per hardware transaction in the chunked
  /// (thread-unsafe / SGL) mode; halved after each abort (Section 4.4).
  unsigned InitialChunkK = 64;

  /// Section 5.2: maximum logical-time distance recovery may need to roll
  /// back. The paper defines MAX_LAG in time units; commit timestamps here
  /// are global-version-clock values, so the lag is a commit-count bound.
  uint64_t MaxLag = 1ull << 32;

  /// Retries when forcing a delinquent thread's empty commit.
  unsigned ForceRetryLimit = 64;

  //===--------------------------------------------------------------------===//
  // Contention knobs (multi-thread scaling). The first three forward into
  // the HtmRuntime's tuning (HtmTuning) at construction; the backoff and
  // SGL-wait bounds govern the Crafty retry loops directly.
  //===--------------------------------------------------------------------===//

  /// Read-only transactions commit by sample-and-validate without
  /// advancing the global version clock. Off (the ablation's naive
  /// position) bumps the clock once per read-only commit, the behavior of
  /// a runtime that timestamps every commit -- and the reason read-mostly
  /// phases invalidate every core's clock line.
  bool ReadOnlyClockElision = true;

  /// Timestamp extension on reads (HtmTuning::SnapshotExtension): a read
  /// of a stripe newer than the snapshot revalidates the read set against
  /// the current clock and continues instead of aborting.
  bool SnapshotExtension = true;

  /// Commit-time write-stripe locking in sorted address order
  /// (HtmTuning::SortWriteSet).
  bool SortWriteSet = true;

  /// Dense-array write-set lookup below this size, hash table above
  /// (HtmTuning::WriteSetHashThreshold). 0 = always hash -- the default;
  /// measured faster on this host at every write-set size (the probed
  /// table lines stay cache-resident; DESIGN.md 7.3).
  size_t WriteSetHashThreshold = 0;

  /// Abort-retry backoff (support/Spin.h ExpBackoff): first and maximum
  /// pause window of the bounded exponential backoff with jitter applied
  /// between aborted attempts; past the cap every retry also yields.
  /// BackoffMaxSpins = 0 retries with a bare yield (no pausing).
  unsigned BackoffMinSpins = 32;
  unsigned BackoffMaxSpins = 4096;

  /// waitSglFree pauses at most this many times before yielding on every
  /// further iteration, so a descheduled SGL holder cannot livelock
  /// waiters on a loaded box.
  unsigned SglWaitSpinBound = 128;

  /// Collect per-phase wall-clock times into PtmStats (two clock reads
  /// per phase; off by default to keep the hot path clean).
  bool CollectPhaseTimings = false;

  /// Attach the PersistCheck persist-ordering checker (check/PersistCheck.h)
  /// to the pool for this runtime's lifetime: every committed store, CLWB,
  /// drain and eviction is validated against the Crafty durability
  /// invariants. Near-zero cost when false (one predicted branch per
  /// transaction); intended for tests and debugging, not production runs.
  bool EnablePersistCheck = false;

  /// Attach the TxRaceCheck happens-before race and isolation checker
  /// (check/TxRaceCheck.h) to the HTM runtime for this runtime's
  /// lifetime: every transactional and non-transactional pool access is
  /// checked for weak-isolation races, missing SGL/sync exclusion in the
  /// chunked mode, and nondeterministic Validate re-execution. Near-zero
  /// cost when false (a null-hook check per access); intended for tests
  /// and debugging, not production runs.
  bool EnableTxRaceCheck = false;

  /// Test-only hook: invoked after a Log phase commits and its entries
  /// are flushed, before the Redo phase runs. Lets tests interleave
  /// conflicting commits deterministically into the Log->Redo window.
  /// Must stay null in production use.
  void (*TestAfterLogCommit)(void *Ctx, unsigned ThreadId) = nullptr;
  void *TestHookCtx = nullptr;
};

/// Explicit-abort (XABORT) payloads used by the Crafty phases.
inline constexpr uint32_t AbortUserSglHeld = 1;
inline constexpr uint32_t AbortUserRedoCheck = 2;
inline constexpr uint32_t AbortUserValidateFail = 3;
inline constexpr uint32_t AbortUserSeqOverflow = 4;

} // namespace crafty

#endif // CRAFTY_CORE_CRAFTYCONFIG_H
